// cfp-benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark trajectories can be tracked across PRs
// (see docs/PERFORMANCE.md and the Makefile's `bench` target).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/dse/ | cfp-benchjson -o BENCH_explore.json \
//	    -baseline internal/dse/testdata/bench_baseline_pr2.txt \
//	    -baseline-note "pre-optimization seed"
//
// The parser understands the standard benchmark line shape — a tab- or
// space-separated name, an iteration count, then repeated "value unit"
// pairs — and ignores everything else (goos/pkg headers, PASS, ok).
// When a baseline is given, the output also reports per-metric deltas
// for benchmarks present on both sides.
//
// Regression-gate mode (the Makefile's `bench-diff` target):
//
//	go test -bench BenchmarkExploreSubset ./internal/dse/ | \
//	    cfp-benchjson -against BENCH_explore.json
//
// compares the tracked metrics (-regress-bench/-regress-metrics, a
// comma-separated list defaulting to ns/op and allocs/op) of the fresh
// run against the recorded document and exits nonzero when any of them
// regressed by more than -max-regress (default 10%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"customfit/internal/cli"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Delta compares one metric of one benchmark against the baseline.
type Delta struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	// Change is (current-baseline)/baseline; negative means improvement
	// for cost-like metrics (ns/op, B/op, allocs/op).
	Change float64 `json:"change"`
}

// Environment records where the numbers came from, so a trajectory
// diff across PRs can tell a code change from a machine change. The
// CPU model, OS and architecture come from the `go test` header lines;
// GOMAXPROCS from the benchmark-name "-N" decoration (falling back to
// this process); the Go version from the toolchain that built this
// tool — the same one that ran the benchmarks in a `make bench` run.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type document struct {
	Generated    string       `json:"generated"`
	Environment  *Environment `json:"environment,omitempty"`
	Benchmarks   []Benchmark  `json:"benchmarks"`
	BaselineNote string       `json:"baseline_note,omitempty"`
	Baseline     []Benchmark  `json:"baseline,omitempty"`
	Deltas       []Delta      `json:"deltas,omitempty"`
}

func main() {
	var (
		out      = flag.String("o", "", "write JSON here (default stdout)")
		baseFile = flag.String("baseline", "", "baseline `go test -bench` text to embed and diff against")
		baseNote = flag.String("baseline-note", "", "free-form provenance note for the baseline")

		against        = flag.String("against", "", "recorded cfp-benchjson document to gate against (exit 1 on regression; suppresses JSON output unless -o is given)")
		maxRegress     = flag.Float64("max-regress", 0.10, "with -against: fail when a tracked metric grew by more than this fraction")
		regressBench   = flag.String("regress-bench", "BenchmarkExploreSubset", "with -against: benchmark to gate on")
		regressMetrics = flag.String("regress-metrics", "ns/op,allocs/op", "with -against: comma-separated metrics to gate on")
	)
	tool := cli.NewTool("cfp-benchjson")
	flag.Parse()
	if err := tool.Start(); err != nil {
		tool.Fatal(err)
	}
	defer tool.Close()

	cur, env, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if *against != "" {
		for _, metric := range strings.Split(*regressMetrics, ",") {
			metric = strings.TrimSpace(metric)
			if metric == "" {
				continue
			}
			if err := checkRegression(*against, cur, *regressBench, metric, *maxRegress); err != nil {
				fatal(err)
			}
		}
		if *out == "" {
			return
		}
	}
	doc := document{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Environment:  env,
		Benchmarks:   cur,
		BaselineNote: *baseNote,
	}
	if *baseFile != "" {
		f, err := os.Open(*baseFile)
		if err != nil {
			fatal(err)
		}
		doc.Baseline, _, err = parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *baseFile, err))
		}
		doc.Deltas = diff(doc.Baseline, cur)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark lines and the environment header
// (goos/goarch/cpu lines, GOMAXPROCS name decorations) from go test
// -bench output.
func parse(r io.Reader) ([]Benchmark, *Environment, error) {
	env := &Environment{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			switch {
			case strings.HasPrefix(line, "goos: "):
				env.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			case strings.HasPrefix(line, "goarch: "):
				env.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			case strings.HasPrefix(line, "cpu: "):
				env.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			}
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if suffix := goMaxProcsSuffix(fields[0]); suffix != "" {
			if n, err := strconv.Atoi(suffix); err == nil {
				env.GOMAXPROCS = n
			}
		}
		b := Benchmark{
			Name:       strings.TrimSuffix(fields[0], "-"+goMaxProcsSuffix(fields[0])),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, env, sc.Err()
}

// goMaxProcsSuffix returns the trailing "-N" procs decoration of a
// benchmark name if present ("" otherwise), so BenchmarkFoo-8 and
// BenchmarkFoo compare as the same benchmark across machines.
func goMaxProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	tail := name[i+1:]
	if _, err := strconv.Atoi(tail); err != nil {
		return ""
	}
	return tail
}

func diff(base, cur []Benchmark) []Delta {
	byName := map[string]Benchmark{}
	for _, b := range base {
		byName[b.Name] = b
	}
	var out []Delta
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		for metric, bv := range b.Metrics {
			cv, ok := c.Metrics[metric]
			if !ok || bv == 0 {
				continue
			}
			out = append(out, Delta{
				Benchmark: c.Name,
				Metric:    metric,
				Baseline:  bv,
				Current:   cv,
				Change:    (cv - bv) / bv,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// checkRegression gates one (benchmark, metric) of the fresh run
// against a previously recorded document: an increase beyond maxRegress
// is an error, everything else prints a one-line verdict.
func checkRegression(path string, cur []Benchmark, benchName, metric string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	recorded, err := findMetric(doc.Benchmarks, benchName, metric)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fresh, err := findMetric(cur, benchName, metric)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}
	if recorded <= 0 {
		return fmt.Errorf("%s: recorded %s %s is %g, cannot gate", path, benchName, metric, recorded)
	}
	change := (fresh - recorded) / recorded
	fmt.Printf("%s %s: recorded %.4g, current %.4g (%+.1f%%), limit +%.0f%%\n",
		benchName, metric, recorded, fresh, 100*change, 100*maxRegress)
	if change > maxRegress {
		return fmt.Errorf("%s %s regressed %.1f%% (limit %.0f%%)", benchName, metric, 100*change, 100*maxRegress)
	}
	return nil
}

// findMetric locates one metric value by benchmark name (GOMAXPROCS
// suffixes already stripped by parse; recorded documents are stored
// stripped too). Repeated measurements of the same benchmark (`go test
// -count=N`) are reduced to their minimum — the standard noise-robust
// statistic for cost metrics, since interference only ever inflates.
func findMetric(bs []Benchmark, benchName, metric string) (float64, error) {
	best, found := 0.0, false
	for _, b := range bs {
		if b.Name != benchName {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			return 0, fmt.Errorf("%s has no %q metric", benchName, metric)
		}
		if !found || v < best {
			best, found = v, true
		}
	}
	if !found {
		return 0, fmt.Errorf("benchmark %s not found", benchName)
	}
	return best, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfp-benchjson:", err)
	os.Exit(1)
}
