// cfp-serve runs the custom-fit toolchain as an HTTP/JSON service:
// compile, simulate, design-space exploration and custom-fit as
// submittable jobs over a bounded worker pool.
//
// Usage:
//
//	cfp-serve -addr :8717 -cache-dir .cfp-cache
//
// Endpoints (see docs/SERVER.md for the full request/response schema):
//
//	POST   /v1/compile           submit a compile job
//	POST   /v1/simulate          submit a verified simulation job
//	POST   /v1/explore           submit a design-space exploration
//	POST   /v1/fit               submit the custom-fit loop
//	GET    /v1/jobs/{id}         poll a job (state, progress, result)
//	GET    /v1/jobs/{id}/events  server-sent progress + done events
//	DELETE /v1/jobs/{id}         cancel a job (prompt: the evaluation
//	                             stack is context-threaded end to end)
//	GET    /v1/cache/{shard}/{key}  fleet cache read-through (one entry)
//	POST   /v1/cache/{shard}     fleet cache batched put / has-check
//	GET    /healthz              liveness (503 while draining), capacity
//	                             and backend fingerprint
//	GET    /metrics              obs counters/gauges/span totals as JSON
//
// Identical explore/fit requests coalesce onto one in-flight job, and
// -cache-dir shares the persistent evaluation cache across every
// request, so a warm exploration answers near-instantly and
// bit-identically to the cold one (and to cfp-explore).
//
// A cfp-serve node is also a distributed-exploration worker: point
// `cfp-explore -workers http://h1:8717,http://h2:8717` at a fleet and
// the coordinator shards the grid over POST /v1/explore, using /healthz
// for capacity discovery and fingerprint admission (see
// docs/DISTRIBUTED.md). Give each worker its own -cache-dir to make
// re-runs near-instant.
//
// SIGINT/SIGTERM drains: in-flight jobs finish (up to -drain-timeout,
// then they are cancelled), the cache and telemetry flush, and the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"customfit/internal/cli"
	olog "customfit/internal/obs/log"
	"customfit/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8717", "listen address")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		queueDepth   = flag.Int("queue", 16, "queued-job bound (submits beyond it get 503)")
		evalWorkers  = flag.Int("eval-workers", 0, "compile workers per explore/fit job (0 = GOMAXPROCS)")
		maxJobs      = flag.Int("max-jobs", 256, "retained finished jobs before eviction")
		cacheGC      = flag.Int("cache-gc", 0, "resident cache-entry budget: past it, shards no recent job references are dropped (0 = no GC)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "grace period for in-flight jobs on shutdown before they are cancelled")
	)
	tool := cli.NewTool("cfp-serve", cli.WithCache())
	flag.Parse()
	if err := tool.Start(); err != nil {
		tool.Fatal(err)
	}
	defer tool.Close()

	cache, err := tool.OpenCache()
	if err != nil {
		tool.Fatal(err)
	}
	srv := serve.New(serve.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		EvalParallelism: *evalWorkers,
		Cache:           cache,
		CacheGCEntries:  *cacheGC,
		MaxJobs:         *maxJobs,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		olog.Info("draining").Str("tool", "cfp-serve").Dur("timeout", *drainTimeout).Log()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain jobs first so SSE streams see their done events, then
		// close the HTTP side.
		if err := srv.Shutdown(dctx); err != nil {
			olog.Warn("drain timeout, jobs cancelled").Str("tool", "cfp-serve").Log()
		}
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer hcancel()
		_ = hs.Shutdown(hctx)
	}()

	olog.Info("listening").Str("tool", "cfp-serve").Str("addr", "http://"+*addr).
		Int("workers", int64(*workers)).Int("queue", int64(*queueDepth)).Log()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		tool.Fatal(err)
	}
	olog.Info("stopped").Str("tool", "cfp-serve").Log()
}
