// cfp-sim compiles a built-in benchmark for one architecture, runs it
// on the cycle-accurate VLIW simulator against a generated workload,
// verifies the output against the benchmark's golden model, and reports
// cycles, IPC and memory traffic.
//
// Usage:
//
//	cfp-sim -bench A -arch "8 4 256 1 4 2" -width 256 -unroll 2
//
// Telemetry: -trace FILE writes a Chrome trace of compile+simulate
// spans, -metrics FILE writes the counter/span dump, -pprof ADDR serves
// live profiles. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/machine"
)

var tool *cli.Tool

func main() {
	var (
		benchName = flag.String("bench", "A", "benchmark name (A..H, GF, GEF, DH, DHEF), or \"all\"")
		archStr   = flag.String("arch", "1 1 64 1 8 1", "architecture tuple: \"a m r p2 l2 c\"")
		unroll    = flag.Int("unroll", 1, "pixel-loop unroll factor")
		width     = flag.Int("width", 256, "workload width in pixels")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	tool = cli.NewTool("cfp-sim")
	flag.Parse()
	if err := tool.Start(); err != nil {
		fatal(err)
	}
	defer tool.Close()

	arch, err := cli.ParseArch(*archStr)
	if err != nil {
		fatal(err)
	}
	if *benchName == "all" {
		for _, b := range bench.All() {
			runOne(b, arch, *unroll, *width, *seed)
		}
		return
	}
	b := bench.ByName(*benchName)
	if b == nil {
		fatal(fmt.Errorf("unknown benchmark %q (have %v)", *benchName, bench.Names()))
	}
	runOne(b, arch, *unroll, *width, *seed)
}

// runOne compiles, simulates and verifies one benchmark.
func runOne(b *bench.Benchmark, arch machine.Arch, unroll, width int, seed int64) {

	k, err := core.ParseKernel(b.Source)
	if err != nil {
		fatal(err)
	}
	c, err := k.Compile(arch, unroll)
	if err != nil {
		fatal(err)
	}

	cse := b.NewCase(width, seed)
	run := cse.Clone()
	st, err := c.Run(run.Args, run.Mem)
	if err != nil {
		fatal(err)
	}

	// Verify against the golden model.
	want := cse.Golden()
	errors := 0
	for _, name := range cse.Outputs {
		w, g := want[name], run.Mem[name]
		for i := range w {
			if w[i] != g[i] {
				errors++
			}
		}
	}

	fmt.Printf("benchmark %s on %s (unroll %d, width %d)\n", b.Name, arch, unroll, width)
	fmt.Printf("  cycles        %d\n", st.Cycles)
	fmt.Printf("  time          %.0f (cycle derate %.2f)\n", st.Time, machine.DefaultCycleModel.Derate(arch))
	fmt.Printf("  operations    %d  (IPC %.2f)\n", st.Ops, st.IPC)
	fmt.Printf("  mem accesses  %d\n", st.MemAccesses)
	fmt.Printf("  occupancy     ALU %.0f%%  MUL %.0f%%  L1 %.0f%%  L2 %.0f%%  (bound by %s, %d stall cycles)\n",
		100*st.ALUOcc, 100*st.MULOcc, 100*st.L1Occ, 100*st.L2Occ, st.Bound, st.StallCycles)
	fmt.Printf("  spilled regs  %d\n", c.Spilled)
	fmt.Printf("  arch cost     %.2f\n", machine.DefaultCostModel.Cost(arch))
	if errors == 0 {
		fmt.Printf("  output        VERIFIED against golden model\n")
	} else {
		fmt.Printf("  output        %d MISMATCHES vs golden model\n", errors)
		os.Exit(1)
	}
}

func fatal(err error) {
	if tool != nil {
		tool.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "cfp-sim:", err)
	os.Exit(1)
}
