// cfp-search compares design-space search strategies (exhaustive, hill
// climbing, simulated annealing, genetic) at finding the best
// architecture for a benchmark under a cost cap — the paper's third
// research question, quantified.
//
// The objective is the real thing: each evaluation compiles the
// benchmark for the candidate machine and measures speedup over the
// baseline, so use -sample to thin the space for quick runs.
//
// Usage:
//
//	cfp-search -bench A -cost 10 -sample 4
//
// Telemetry: -trace FILE writes a Chrome trace of every candidate
// compilation, -metrics FILE writes the counter/span dump, -pprof ADDR
// serves live profiles. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/search"
)

func main() {
	var (
		benchName = flag.String("bench", "A", "benchmark to fit")
		costCap   = flag.Float64("cost", 10, "cost budget (relative to baseline)")
		sample    = flag.Int("sample", 4, "evaluate every Nth machine of the space")
		seed      = flag.Int64("seed", 1, "random seed for the stochastic strategies")
		width     = flag.Int("width", 64, "reference workload width")
		prune     = flag.Bool("prune", true, "bound-guided pruning for the deterministic strategies (exact: identical optima, fewer compiles; see sched.LowerBound)")
	)
	tel := cli.AddTelemetryFlags()
	cacheCfg := cli.AddCacheFlags()
	flag.Parse()
	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "cfp-search:", err)
		os.Exit(1)
	}
	defer func() {
		if err := tel.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "cfp-search: telemetry:", err)
		}
	}()

	b := bench.ByName(*benchName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "cfp-search: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}
	space := search.SubLattice()
	if *sample > 1 {
		var thinned []machine.Arch
		for i := 0; i < len(space); i += *sample {
			thinned = append(thinned, space[i])
		}
		space = thinned
	}

	ev := dse.NewEvaluator()
	ev.Width = *width
	cache, err := cacheCfg.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfp-search:", err)
		os.Exit(1)
	}
	if cache != nil {
		ev.Cache = cache
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cfp-search: cache:", err)
			}
		}()
	}
	baseline := ev.Evaluate(b, machine.Baseline)
	if baseline.Failed {
		fmt.Fprintln(os.Stderr, "cfp-search: baseline evaluation failed")
		os.Exit(1)
	}
	cost := machine.DefaultCostModel
	obj := func(a machine.Arch) float64 {
		if cost.Cost(a) > *costCap {
			return math.Inf(-1)
		}
		e := ev.Evaluate(b, a)
		if e.Failed {
			return math.Inf(-1)
		}
		return baseline.Time / e.Time
	}

	var bound search.Bound
	if *prune {
		bound = ev.SpeedupBound(b, baseline.Time, cost, *costCap)
	}

	fmt.Printf("fitting %s under cost %.1f over %d machines (search sub-lattice)\n",
		b.Name, *costCap, len(space))
	results := search.CompareWithBound(space, obj, bound, *seed)
	fmt.Printf("%-12s %-22s %9s %7s %7s %11s\n", "strategy", "best arch", "speedup", "evals", "pruned", "of optimum")
	for _, r := range results {
		fmt.Printf("%-12s %-22s %9.2f %7d %7d %10.1f%%\n",
			r.Strategy, r.Best, r.BestScore, r.Evaluations, r.Pruned, 100*r.Optimality)
	}
}
