// cfp-search compares design-space search strategies (exhaustive, hill
// climbing, simulated annealing, genetic) at finding the best
// architecture for a benchmark under a cost cap — the paper's third
// research question, quantified.
//
// The objective is the real thing: each evaluation compiles the
// benchmark for the candidate machine and measures speedup over the
// baseline, so use -sample to thin the space for quick runs.
//
// Usage:
//
//	cfp-search -bench A -cost 10 -sample 4
//
// Telemetry: -trace FILE writes a Chrome trace of every candidate
// compilation, -metrics FILE writes the counter/span dump, -pprof ADDR
// serves live profiles. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/search"
)

func main() {
	var (
		benchName = flag.String("bench", "A", "benchmark to fit")
		costCap   = flag.Float64("cost", 10, "cost budget (relative to baseline)")
		sample    = flag.Int("sample", 4, "evaluate every Nth machine of the space")
		seed      = flag.Int64("seed", 1, "random seed for the stochastic strategies")
		width     = flag.Int("width", 64, "reference workload width")
		noDelta   = flag.Bool("no-delta", false, "disable delta compilation (block-schedule reuse across neighboring architectures; see docs/PERFORMANCE.md)")
	)
	tool := cli.NewTool("cfp-search", cli.WithCache(), cli.WithPrune(true), cli.WithOps())
	flag.Parse()
	if err := tool.Start(); err != nil {
		tool.Fatal(err)
	}
	defer tool.Close()

	b := bench.ByName(*benchName)
	if b == nil {
		tool.Fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	cache, err := tool.OpenCache()
	if err != nil {
		tool.Fatal(err)
	}
	opSet, err := core.ResolveOps(*tool.OpsSel, []*bench.Benchmark{b}, *width, *tool.OpsN)
	if err != nil {
		tool.Fatal(err)
	}
	space := search.SubLattice()
	machines := (len(space) + *sample - 1) / max(*sample, 1)
	if opSet != nil {
		machines *= 2 // every point also appears with the full op set enabled
	}
	fmt.Printf("fitting %s under cost %.1f over %d machines (search sub-lattice)\n",
		b.Name, *costCap, machines)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	results, err := core.SearchCompare(ctx, core.SearchOptions{
		Benchmark:    b,
		CostCap:      *costCap,
		Space:        space,
		Ops:          opSet,
		Sample:       *sample,
		Width:        *width,
		Seed:         *seed,
		Prune:        *tool.Prune,
		Cache:        cache,
		DisableDelta: *noDelta,
	})
	stop()
	if errors.Is(err, core.ErrCancelled) {
		fmt.Fprintln(os.Stderr, "cfp-search: interrupted")
		tool.Close()
		os.Exit(130)
	}
	if err != nil {
		tool.Fatal(err)
	}
	fmt.Printf("%-12s %-22s %9s %7s %7s %11s\n", "strategy", "best arch", "speedup", "evals", "pruned", "of optimum")
	for _, r := range results {
		fmt.Printf("%-12s %-22s %9.2f %7d %7d %10.1f%%\n",
			r.Strategy, r.Best, r.BestScore, r.Evaluations, r.Pruned, 100*r.Optimality)
	}
}
