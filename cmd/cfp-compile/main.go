// cfp-compile retargets a CKC kernel to one architecture and prints the
// scheduled VLIW assembly, compilation statistics, or the intermediate
// representation.
//
// Usage:
//
//	cfp-compile -arch "8 4 256 2 4 2" kernel.ck
//	cfp-compile -bench A -arch "4 2 256 1 4 4" -unroll 2
//	cfp-compile -bench F -ir            # dump lowered IR instead
//
// Telemetry: -trace FILE writes a Chrome trace of the compilation
// phases (parse, opt passes, partition, schedule, regalloc, spill),
// -metrics FILE writes the counter/span dump, -pprof ADDR serves live
// profiles. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/machine"
)

var tool *cli.Tool

func main() {
	var (
		archStr   = flag.String("arch", "1 1 64 1 8 1", "architecture tuple: \"a m r p2 l2 c\"")
		benchName = flag.String("bench", "", "compile a built-in benchmark (A..H, GF, GEF, DH, DHEF) instead of a file")
		unroll    = flag.Int("unroll", 1, "pixel-loop unroll factor")
		dumpIR    = flag.Bool("ir", false, "print the lowered IR and exit")
		dumpOps   = flag.Bool("dump-ops", false, "mine custom-op candidates from the benchmark's dataflow graph (requires -bench) and exit")
		quiet     = flag.Bool("quiet", false, "print statistics only, not the assembly")
	)
	tool = cli.NewTool("cfp-compile")
	flag.Parse()
	if err := tool.Start(); err != nil {
		fatal(err)
	}
	defer tool.Close()

	if *dumpOps {
		b := bench.ByName(*benchName)
		if b == nil {
			fatal(fmt.Errorf("-dump-ops needs -bench NAME (mining weighs patterns by the reference workload's execution frequencies)"))
		}
		cands, err := core.MineOps([]*bench.Benchmark{b}, 0)
		if err != nil {
			fatal(err)
		}
		if len(cands) == 0 {
			fmt.Printf("; %s: no fusable clusters found\n", b.Name)
			return
		}
		fmt.Printf("; %s: %d custom-op candidates (frequency × latency saved, best first)\n", b.Name, len(cands))
		for _, c := range cands {
			fmt.Printf("%-40s ; count=%.0f saving=%d score=%.0f\n", c.Spec, c.Count, c.Saving, c.Score)
		}
		return
	}

	src, name, err := loadSource(*benchName, flag.Args())
	if err != nil {
		fatal(err)
	}
	k, err := core.ParseKernel(src)
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(k.IR())
		return
	}
	arch, err := cli.ParseArch(*archStr)
	if err != nil {
		fatal(err)
	}
	c, err := k.Compile(arch, *unroll)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %s on %s, unroll %d\n", name, arch, *unroll)
	fmt.Printf("; bundles=%d ops=%d static IPC=%.2f spilled=%d regs, cost=%.2f derate=%.2f\n",
		c.Prog.BundleCount(), c.Prog.OpCount(), c.Prog.IPC(), c.Spilled,
		machine.DefaultCostModel.Cost(arch), machine.DefaultCycleModel.Derate(arch))
	u := c.Prog.Utilization()
	fmt.Printf("; utilization: ALU %.0f%%, MUL %.0f%%, L1 %.2f/bundle, L2 %.2f/bundle, bus %.0f%%, moves %.0f%% of ops\n",
		100*u.ALU, 100*u.MUL, u.L1, u.L2, 100*u.Bus, 100*u.Moves)
	if !*quiet {
		fmt.Print(c.Assembly())
	}
}

func loadSource(benchName string, args []string) (src, name string, err error) {
	if benchName != "" {
		b := bench.ByName(benchName)
		if b == nil {
			return "", "", fmt.Errorf("unknown benchmark %q (have %v)", benchName, bench.Names())
		}
		return b.Source, benchName, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: cfp-compile [-bench NAME | file.ck]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}

func fatal(err error) {
	if tool != nil {
		tool.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "cfp-compile:", err)
	os.Exit(1)
}
