// cfp-frontier prints, from a saved exploration, each benchmark's best
// architecture under a sweep of cost caps (a textual reading of the
// paper's Figures 3/4 frontiers) and the overall per-benchmark maxima.
//
// Usage:
//
//	cfp-frontier -load results.json -caps 5,10,15
//	cfp-frontier -explore -cache-dir .cfp-cache -caps 5,10,15
//
// With -explore the tool runs the exploration itself instead of
// loading a file; combined with -cache-dir (see docs/PERFORMANCE.md) a
// warm re-run costs almost nothing, making the saved-results file
// optional. -save persists the freshly explored results.
//
// Telemetry: -trace FILE / -metrics FILE / -pprof ADDR enable the
// standard observability flags (mostly useful with -explore; the load
// path compiles nothing). See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/tables"
)

func main() {
	var (
		load    = flag.String("load", "results_full.json", "saved exploration results (cfp-explore -save)")
		caps    = flag.String("caps", "5,10,15,100", "comma-separated cost caps")
		explore = flag.Bool("explore", false, "run the exploration instead of loading a file (pairs well with -cache-dir)")
		save    = flag.String("save", "", "with -explore: save the results to this JSON file")
		width   = flag.Int("width", 96, "with -explore: reference workload width in pixels")
	)
	tool := cli.NewTool("cfp-frontier", cli.WithCache(), cli.WithOps())
	flag.Parse()
	if err := tool.Start(); err != nil {
		tool.Fatal(err)
	}
	defer tool.Close()

	var res *dse.Results
	var err error
	if *explore {
		opSet, oerr := core.ResolveOps(*tool.OpsSel, bench.All(), *width, *tool.OpsN)
		if oerr != nil {
			tool.Fatal(oerr)
		}
		e := dse.NewExplorer()
		e.Width = *width
		if opSet != nil {
			fmt.Printf("custom ops: %s\n", strings.Join(opSet.Wire(), " | "))
			e.Archs = machine.CrossOps(machine.FullSpace(), opSet, machine.DefaultMasks(opSet))
		}
		cache, cerr := tool.OpenCache()
		if cerr != nil {
			tool.Fatal(cerr)
		}
		e.Cache = cache
		res, err = e.Run()
		if err == nil && *save != "" {
			err = res.Save(*save)
		}
	} else {
		res, err = dse.Load(*load)
	}
	if err != nil {
		tool.Fatal(err)
	}
	var capList []float64
	for _, s := range strings.Split(*caps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			tool.Fatal(fmt.Errorf("bad cap: %s", s))
		}
		capList = append(capList, v)
	}
	names := res.Benches
	fmt.Print(tables.FrontierSummary(res, names, capList))
	fmt.Println()
	for _, n := range names {
		best, cost := 0.0, 0.0
		var arch string
		for _, p := range res.Scatter(n) {
			if p.Speedup > best {
				best, cost, arch = p.Speedup, p.Cost, p.Arch.String()
			}
		}
		fmt.Printf("%-5s max speedup %.2fx at cost %.1f on %s\n", n, best, cost, arch)
	}
	opsGains(res, names)
}

// opsGains reports, for op-aware explorations, each benchmark's best
// simulated-cycle improvement from enabling custom ops on a machine
// versus the same base machine without them (the datapath is the same
// 6-tuple; the cost delta is exactly the op hardware's price). Silent
// when the results carry no op-enabled architectures.
func opsGains(res *dse.Results, names []string) {
	hasOps := false
	for _, a := range res.Archs {
		if !a.Ops.Empty() {
			hasOps = true
			break
		}
	}
	if !hasOps {
		return
	}
	fmt.Println("\n== Custom-op gains (best cycle improvement vs the same machine without ops) ==")
	improved := 0
	for _, n := range names {
		evs := res.Eval[n]
		// Best op-free cycles per base 6-tuple.
		plain := map[machine.Arch]int64{}
		for _, ev := range evs {
			if ev.Failed || !ev.Arch.Ops.Empty() {
				continue
			}
			if c, ok := plain[ev.Arch]; !ok || ev.Cycles < c {
				plain[ev.Arch] = ev.Cycles
			}
		}
		type gain struct {
			pct        float64
			was, now   int64
			cost, base float64
			arch       machine.Arch
		}
		var best *gain
		for _, ev := range evs {
			if ev.Failed || ev.Arch.Ops.Empty() {
				continue
			}
			base := ev.Arch
			base.Ops = machine.OpConfig{}
			was, ok := plain[base]
			if !ok || ev.Cycles >= was {
				continue
			}
			g := gain{
				pct:  100 * float64(was-ev.Cycles) / float64(was),
				was:  was,
				now:  ev.Cycles,
				cost: machine.DefaultCostModel.Cost(ev.Arch),
				base: machine.DefaultCostModel.Cost(base),
				arch: ev.Arch,
			}
			if best == nil || g.pct > best.pct {
				best = &g
			}
		}
		if best == nil {
			fmt.Printf("%-5s no cycle improvement from the op set\n", n)
			continue
		}
		improved++
		fmt.Printf("%-5s cycles %d -> %d  (-%.1f%%)  cost %.2f -> %.2f  on %s\n",
			n, best.was, best.now, best.pct, best.base, best.cost, best.arch)
	}
	fmt.Printf("custom ops improved simulated cycles on %d/%d benchmarks\n", improved, len(names))
}
