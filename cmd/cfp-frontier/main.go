// cfp-frontier prints, from a saved exploration, each benchmark's best
// architecture under a sweep of cost caps (a textual reading of the
// paper's Figures 3/4 frontiers) and the overall per-benchmark maxima.
//
// Usage:
//
//	cfp-frontier -load results.json -caps 5,10,15
//	cfp-frontier -explore -cache-dir .cfp-cache -caps 5,10,15
//
// With -explore the tool runs the exploration itself instead of
// loading a file; combined with -cache-dir (see docs/PERFORMANCE.md) a
// warm re-run costs almost nothing, making the saved-results file
// optional. -save persists the freshly explored results.
//
// Telemetry: -trace FILE / -metrics FILE / -pprof ADDR enable the
// standard observability flags (mostly useful with -explore; the load
// path compiles nothing). See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"customfit/internal/cli"
	"customfit/internal/dse"
	"customfit/internal/tables"
)

func main() {
	var (
		load    = flag.String("load", "results_full.json", "saved exploration results (cfp-explore -save)")
		caps    = flag.String("caps", "5,10,15,100", "comma-separated cost caps")
		explore = flag.Bool("explore", false, "run the exploration instead of loading a file (pairs well with -cache-dir)")
		save    = flag.String("save", "", "with -explore: save the results to this JSON file")
		width   = flag.Int("width", 96, "with -explore: reference workload width in pixels")
	)
	tool := cli.NewTool("cfp-frontier", cli.WithCache())
	flag.Parse()
	if err := tool.Start(); err != nil {
		tool.Fatal(err)
	}
	defer tool.Close()

	var res *dse.Results
	var err error
	if *explore {
		e := dse.NewExplorer()
		e.Width = *width
		cache, cerr := tool.OpenCache()
		if cerr != nil {
			tool.Fatal(cerr)
		}
		e.Cache = cache
		res, err = e.Run()
		if err == nil && *save != "" {
			err = res.Save(*save)
		}
	} else {
		res, err = dse.Load(*load)
	}
	if err != nil {
		tool.Fatal(err)
	}
	var capList []float64
	for _, s := range strings.Split(*caps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			tool.Fatal(fmt.Errorf("bad cap: %s", s))
		}
		capList = append(capList, v)
	}
	names := res.Benches
	fmt.Print(tables.FrontierSummary(res, names, capList))
	fmt.Println()
	for _, n := range names {
		best, cost := 0.0, 0.0
		var arch string
		for _, p := range res.Scatter(n) {
			if p.Speedup > best {
				best, cost, arch = p.Speedup, p.Cost, p.Arch.String()
			}
		}
		fmt.Printf("%-5s max speedup %.2fx at cost %.1f on %s\n", n, best, cost, arch)
	}
}
