// cfp-explore runs the paper's design-space exploration and regenerates
// its tables and figures.
//
// Typical usage:
//
//	cfp-explore -save results.json          # full run (all machines × all benchmarks)
//	cfp-explore -load results.json -table 8 # reprint Table 8 from a saved run
//	cfp-explore -load results.json -figure 3 -ascii
//	cfp-explore -table 6                    # cost model only, no exploration
//
// Observability (see docs/OBSERVABILITY.md):
//
// Persistent caching (see docs/PERFORMANCE.md):
//
//	cfp-explore -cache-dir .cfp-cache -save results.json
//	  First run fills the cache; re-runs with the same flags are
//	  near-instant and bit-identical. -cache=off ignores the directory
//	  for one run without clearing it.
//
// Observability, continued:
//
//	cfp-explore -sample 8 -trace trace.json -metrics metrics.json
//	  -trace FILE    Chrome trace_event JSON of every pipeline span
//	                 (parse, opt passes, partition, schedule, regalloc,
//	                 spill, reference sim) — open in chrome://tracing or
//	                 Perfetto
//	  -metrics FILE  flat JSON dump: compiles/sec, failures, per-worker
//	                 busy/queue-wait time, per-phase span totals
//	  -pprof ADDR    live net/http/pprof endpoint while exploring
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/dist"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/tables"
)

// parseWorkers interprets the dual-mode -workers flag: a bare integer
// is the local compile-worker count; anything else is a comma-separated
// list of cfp-serve base URLs ("http://" assumed when no scheme is
// given) selecting a distributed run.
func parseWorkers(s string) (fleet []string, local int, err error) {
	s = strings.TrimSpace(s)
	if n, aerr := strconv.Atoi(s); aerr == nil {
		return nil, n, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		fleet = append(fleet, part)
	}
	if len(fleet) == 0 {
		return nil, 0, fmt.Errorf("-workers %q: want a worker count or a comma-separated list of cfp-serve URLs", s)
	}
	return fleet, 0, nil
}

var tool *cli.Tool

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate a paper table (3, 6, 7, 8, 9, 10); 0 = all")
		figure     = flag.Int("figure", 0, "emit a paper figure's data (3 or 4)")
		ascii      = flag.Bool("ascii", true, "render figures as ASCII scatter plots (false = CSV)")
		svgDir     = flag.String("svg", "", "also write figures as SVG files into this directory")
		width      = flag.Int("width", 96, "reference workload width in pixels")
		workers    = flag.String("workers", "0", "parallel compile workers (0 = GOMAXPROCS), or a comma-separated list of cfp-serve URLs for a distributed run (e.g. http://h1:8080,http://h2:8080 — see docs/DISTRIBUTED.md)")
		save       = flag.String("save", "", "save exploration results to this JSON file")
		load       = flag.String("load", "", "load previously saved results instead of exploring")
		sample     = flag.Int("sample", 1, "evaluate every Nth machine (1 = full space)")
		progress   = flag.Bool("progress", true, "print progress while exploring")
		noMemo     = flag.Bool("no-memo", false, "disable arch-signature memoization (every arrangement runs real compiles; see docs/PERFORMANCE.md)")
		noDelta    = flag.Bool("no-delta", false, "disable delta compilation (block-schedule reuse across neighboring architectures; see docs/PERFORMANCE.md)")
		claims     = flag.Bool("claims", false, "print the paper's headline-claim quantities from the results")
		cachePush  = flag.Bool("cache-push", true, "distributed runs: ship warm cache entries with each shard so workers skip compiles the fleet already did (needs -cache-dir; see docs/DISTRIBUTED.md)")
		ablation   = flag.Bool("ablation", false, "run the compiler design-choice ablation study and exit")
		corr       = flag.Bool("correction", false, "run the cluster-correction validation study and exit")
		repertoire = flag.Bool("repertoire", false, "run the min/max ALU repertoire study and exit")
	)
	tool = cli.NewTool("cfp-explore", cli.WithCache(), cli.WithOps())
	flag.Parse()
	if err := tool.Start(); err != nil {
		fatal(err)
	}
	defer tool.Close()

	if *ablation {
		runAblation(*width)
		return
	}
	if *corr {
		runCorrection(*width)
		return
	}
	if *repertoire {
		benches := []*bench.Benchmark{
			bench.ByName("H"), bench.ByName("DH"), bench.ByName("DHEF"),
			bench.ByName("D"), bench.ByName("A"),
		}
		archs := []machine.Arch{
			{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 1},
			{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 2},
			{ALUs: 16, MULs: 4, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 4},
		}
		fmt.Print(dse.SummarizeRepertoireStudy(dse.RunRepertoireStudy(benches, archs, *width)))
		return
	}

	// Tables 1/2/6/7 need no exploration.
	if *table == 1 || *table == 2 {
		var ind, jam []tables.BenchDesc
		for _, b := range bench.Individual() {
			ind = append(ind, tables.BenchDesc{Name: b.Name, Desc: b.Desc})
		}
		for _, b := range bench.Jammed() {
			jam = append(jam, tables.BenchDesc{Name: b.Name, Desc: b.Desc})
		}
		fmt.Print(tables.Table1And2(ind, jam))
		return
	}
	if *table == 6 {
		fmt.Print(tables.Table6(machine.DefaultCostModel))
		return
	}
	if *table == 7 {
		fmt.Print(tables.Table7(machine.DefaultCycleModel))
		return
	}

	var res *dse.Results
	var err error
	if *load != "" {
		res, err = dse.Load(*load)
		if err != nil {
			fatal(err)
		}
	} else {
		fleet, localWorkers, werr := parseWorkers(*workers)
		if werr != nil {
			fatal(werr)
		}
		// Custom-op axis: "off" (nil set) keeps the exploration
		// bit-identical to the 6-tuple era; "auto" mines the suite.
		opSet, oerr := core.ResolveOps(*tool.OpsSel, bench.All(), *width, *tool.OpsN)
		if oerr != nil {
			fatal(oerr)
		}
		if opSet != nil {
			fmt.Fprintf(os.Stderr, "custom ops: %s\n", strings.Join(opSet.Wire(), " | "))
		}
		// Ctrl-C stops scheduling new evaluations (and, distributed,
		// drains the fleet's in-flight shard jobs) and exits promptly
		// instead of killing the process mid-flight (telemetry and the
		// cache still flush).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		if len(fleet) > 0 {
			// Distributed run: shard the grid across cfp-serve workers
			// and merge to the same Results a local run would produce.
			// The coordinator's cache (when configured) seeds warm-up
			// pushes; -cache=off rides every shard request so the whole
			// fleet runs cold.
			cache, cerr := tool.OpenCache()
			if cerr != nil {
				fatal(cerr)
			}
			res, err = dist.Explore(ctx, dist.Options{
				Workers:    fleet,
				Width:      *width,
				Sample:     *sample,
				Ops:        opSet,
				Cache:      cache,
				PushWarmup: *cachePush,
				CacheMode:  tool.CacheCfg.Mode,
			})
		} else {
			e := dse.NewExplorer()
			e.Width = *width
			e.Workers = localWorkers
			e.DisableMemo = *noMemo
			e.DisableDelta = *noDelta
			cache, cerr := tool.OpenCache()
			if cerr != nil {
				fatal(cerr)
			}
			e.Cache = cache
			if *sample > 1 || opSet != nil {
				archs := machine.FullSpace()
				if *sample > 1 {
					var thinned []machine.Arch
					for i := 0; i < len(archs); i += *sample {
						thinned = append(thinned, archs[i])
					}
					archs = thinned
				}
				// The baseline must be present for speedups.
				hasBase := false
				for _, a := range archs {
					if a == machine.Baseline {
						hasBase = true
					}
				}
				if !hasBase {
					archs = append(archs, machine.Baseline)
				}
				if opSet != nil {
					archs = machine.CrossOps(archs, opSet, machine.DefaultMasks(opSet))
				}
				e.Archs = archs
			}
			if *progress {
				e.Progress = func(p dse.ProgressInfo) {
					if p.Done%25 == 0 || p.Done == p.Total {
						fmt.Fprintf(os.Stderr, "\rexploring: %d/%d evaluations  %.1f/s  ETA %-8v failures %d",
							p.Done, p.Total, p.RatePerSec, p.ETA.Round(time.Second), p.Failed)
						if p.Cancelled > 0 {
							fmt.Fprintf(os.Stderr, " cancelled %d", p.Cancelled)
						}
						fmt.Fprint(os.Stderr, " ")
						if p.Done == p.Total {
							fmt.Fprintln(os.Stderr)
						}
					}
				}
			}
			res, err = e.RunCtx(ctx)
		}
		stop()
		if errors.Is(err, dse.ErrCancelled) {
			fmt.Fprintln(os.Stderr, "\ncfp-explore: interrupted, exploration abandoned")
			tool.Close()
			os.Exit(130)
		}
		if err != nil {
			fatal(err)
		}
		if *save != "" {
			if err := res.Save(*save); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "results saved to %s\n", *save)
		}
	}

	if *claims {
		fmt.Print(res.ComputeClaims().String())
		return
	}

	if *figure != 0 {
		var names []string
		switch *figure {
		case 3:
			for _, b := range bench.Individual() {
				if b.Name != "E" { // the paper's Figure 3 shows A C D F G H
					names = append(names, b.Name)
				}
			}
		case 4:
			for _, b := range bench.Jammed() {
				names = append(names, b.Name)
			}
		default:
			fatal(fmt.Errorf("unknown figure %d", *figure))
		}
		for _, n := range names {
			if *svgDir != "" {
				path := fmt.Sprintf("%s/figure%d-%s.svg", *svgDir, *figure, n)
				if err := os.WriteFile(path, []byte(tables.ScatterSVG(res, n, 0, 0)), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
			if *ascii {
				fmt.Print(tables.ScatterASCII(res, n, 72, 16))
			} else {
				fmt.Print(tables.ScatterCSV(res, n))
			}
		}
		return
	}

	ranges0 := []float64{0, 0.10, math.Inf(1)}
	ranges50 := []float64{0, 0.10, 0.50, math.Inf(1)}
	switch *table {
	case 0:
		fmt.Print(tables.Table6(machine.DefaultCostModel))
		fmt.Println()
		fmt.Print(tables.Table7(machine.DefaultCycleModel))
		fmt.Println()
		fmt.Print(tables.Stats(res.Stats))
		fmt.Println()
		fmt.Println("== Table 8: low cost (< 5.0) ==")
		fmt.Print(tables.Selection(res, 5, ranges0))
		fmt.Println("== Table 9: medium cost (< 10.0) ==")
		fmt.Print(tables.Selection(res, 10, ranges50))
		fmt.Println("== Table 10: high cost (< 15.0) ==")
		fmt.Print(tables.Selection(res, 15, ranges0))
	case 3:
		fmt.Print(tables.Stats(res.Stats))
	case 8:
		fmt.Print(tables.Selection(res, 5, ranges0))
	case 9:
		fmt.Print(tables.Selection(res, 10, ranges50))
	case 10:
		fmt.Print(tables.Selection(res, 15, ranges0))
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
}

func fatal(err error) {
	if tool != nil {
		tool.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "cfp-explore:", err)
	os.Exit(1)
}

// runAblation measures each compiler design choice's contribution by
// disabling it in isolation (internal/dse/ablation.go).
func runAblation(width int) {
	benches := []*bench.Benchmark{
		bench.ByName("A"), bench.ByName("F"), bench.ByName("H"), bench.ByName("DHEF"),
	}
	archs := []machine.Arch{
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
		{ALUs: 16, MULs: 4, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 4},
		{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8},
	}
	results := dse.RunAblation(benches, archs, width)
	fmt.Print(dse.SummarizeAblation(results))
}

// runCorrection reproduces and validates the paper's cluster-correction
// approximation (internal/dse/correction.go).
func runCorrection(width int) {
	ev := dse.NewEvaluator()
	ev.Width = width
	fitBenches := []*bench.Benchmark{bench.ByName("D"), bench.ByName("G"), bench.ByName("C")}
	fitPoints := []machine.Arch{
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 2, L2Lat: 4, Clusters: 1},
	}
	cor, err := dse.FitCorrections(ev, fitBenches, fitPoints)
	if err != nil {
		fatal(err)
	}
	valBenches := []*bench.Benchmark{
		bench.ByName("A"), bench.ByName("F"), bench.ByName("H"), bench.ByName("DH"),
	}
	valPoints := []machine.Arch{
		{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 16, MULs: 4, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 1},
	}
	errs := dse.ValidateCorrections(ev, cor, valBenches, valPoints)
	fmt.Print(dse.SummarizeCorrectionStudy(cor, errs))
}
