GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The telemetry subsystem and the parallel explorer are the two places
# where data races could hide; run them under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/dse/...

# Extended verify: everything the tier-1 gate runs, plus vet and the
# race pass (see ROADMAP.md).
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem
