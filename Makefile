GO ?= go

.PHONY: build test vet staticcheck race check bench bench-smoke bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 20m ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The tool is not vendored and `make check`
# must work in a hermetic container, so the target is a no-op (with a
# notice) when staticcheck is not on PATH; CI installs a pinned version
# so the gate always runs there (see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# The telemetry subsystem, the parallel explorer, the backend's
# shared-kernel/scratch machinery, the persistent evaluation cache,
# the job-queueing HTTP server, and the distributed-exploration
# coordinator (plus the context-cancellation paths threaded through
# all of them) are the places where data races could hide; run them
# under the race detector. Explicit -timeout so a deadlock fails the
# build with goroutine dumps instead of hanging CI to its job limit.
race:
	$(GO) test -race -timeout 20m ./internal/obs/... ./internal/dse/... ./internal/sched/... ./internal/evcache/... ./internal/fleetcache/... ./internal/serve/... ./internal/dist/... ./internal/ops/...

# One-iteration pass over the exploration and fleet benchmarks: catches
# bit-rot in the benchmark harness without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/dse/
	$(GO) test -run '^$$' -bench BenchmarkFleetWarm -benchtime 1x ./internal/dist/

# Extended verify: everything the tier-1 gate runs, plus vet,
# staticcheck (when installed), the race pass, and the benchmark smoke
# (see ROADMAP.md).
check: build vet staticcheck test race bench-smoke

# Measure the exploration and fleet benchmarks and record the
# trajectory against the pre-optimization baseline (the cfp-benchjson
# parser handles multi-package `go test` output; see
# docs/PERFORMANCE.md).
bench:
	( $(GO) test -run '^$$' -bench . -benchmem ./internal/dse/ && \
	  $(GO) test -run '^$$' -bench BenchmarkFleetWarm -benchmem ./internal/dist/ ) | \
		$(GO) run ./cmd/cfp-benchjson \
			-baseline internal/dse/testdata/bench_baseline_pr2.txt \
			-baseline-note "pre-optimization seed (PR2 start)" \
			-o BENCH_explore.json
	@echo wrote BENCH_explore.json

# Regression gate: re-measure the tracked benchmarks and fail if one
# regressed beyond its limit against the recorded trajectory in
# BENCH_explore.json. Repeats gated on the minimum, so scheduler noise
# cannot fail an unchanged tree. BenchmarkExploreSubset gates ns/op and
# allocs/op at 10%. BenchmarkExploreOpsSubset (the op-crossed grid, so
# pattern rewrite and custom-unit scheduling are on the measured path)
# gates ns/op only, at 15% — fused placement makes its allocation
# profile noisier than the op-free twin. BenchmarkFleetWarm gates
# ns/op only, at 30%: its
# per-op time is dominated by HTTP round trips and job-poll alignment
# (tens-of-ms scale), which even a minimum-of-repeats does not fully
# de-noise — while a broken cache tier (recomputing instead of reading
# through) is several-fold slower, so the loose limit still catches the
# failure mode.
bench-diff:
	$(GO) test -run '^$$' -bench BenchmarkExploreSubset -benchtime 3x -count 3 ./internal/dse/ | \
		$(GO) run ./cmd/cfp-benchjson -against BENCH_explore.json
	$(GO) test -run '^$$' -bench BenchmarkExploreOpsSubset -benchtime 3x -count 3 ./internal/dse/ | \
		$(GO) run ./cmd/cfp-benchjson -against BENCH_explore.json \
			-regress-bench BenchmarkExploreOpsSubset -regress-metrics ns/op -max-regress 0.15
	$(GO) test -run '^$$' -bench BenchmarkFleetWarm -benchtime 10x -count 3 ./internal/dist/ | \
		$(GO) run ./cmd/cfp-benchjson -against BENCH_explore.json \
			-regress-bench BenchmarkFleetWarm -regress-metrics ns/op -max-regress 0.30
