// Package customfit reproduces "Custom-Fit Processors: Letting
// Applications Define Architectures" (Fisher, Faraboschi, Desoli;
// HP Laboratories Cambridge, MICRO-29, 1996) as a Go library: a
// retargetable clustered-VLIW compiler for a restricted C dialect, a
// cycle-accurate simulator, datapath cost and cycle-time models, the
// paper's image-processing benchmark suite, and the design-space
// exploration that "custom-fits" an architecture to an application.
//
// The root package is a thin facade; see the README for the package
// map and DESIGN.md for the system inventory.
//
// A minimal session:
//
//	k, _ := customfit.ParseKernel(src)          // CKC source
//	c, _ := k.Compile(customfit.Arch{ALUs: 8, MULs: 2, Regs: 256,
//	        L2Ports: 2, L2Lat: 4, Clusters: 2}, 4)
//	stats, _ := c.Run(args, mem)                // cycle-accurate run
//
// and the paper's headline flow:
//
//	fit, _ := customfit.Fit([]*customfit.Benchmark{customfit.BenchmarkByName("A")}, 10)
//	fmt.Println(fit.Best, fit.Speedups)
package customfit

import (
	"context"

	"customfit/internal/bench"
	"customfit/internal/core"
	"customfit/internal/dse"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/search"
)

// Sentinel errors. Every context-threaded entry point classifies its
// failures into one of these; test with errors.Is. ErrCancelled always
// also matches the underlying context.Canceled / DeadlineExceeded.
var (
	ErrCancelled  = core.ErrCancelled
	ErrInfeasible = core.ErrInfeasible
	ErrBadKernel  = core.ErrBadKernel
)

// Arch is an architecture in the paper's template: the 6-tuple
// (ALUs, MULs, Regs, L2Ports, L2Lat, Clusters), optionally extended
// with an enabled subset of a custom-op catalog (Arch.Ops).
type Arch = machine.Arch

// Baseline is the paper's reference machine (cost 1.0, derating 1.0).
var Baseline = machine.Baseline

// CustomOp is one fused-instruction candidate: a short dataflow of
// two-input ALU/MUL steps collapsed into a single multi-input
// operation (a MAC, an SAD step, a clip...). Parse one from its codec
// text with ParseCustomOp; mine them from kernels with MineOps.
type CustomOp = ir.FusedSpec

// OpSet is an immutable catalog of custom ops an exploration may draw
// from. Construct with NewOpSet or Template.Ops; architectures enable
// subsets of a catalog via Arch.WithOps.
type OpSet = machine.OpSet

// ParseCustomOp parses a custom op from its codec text, e.g.
//
//	mac/3/2: mul $0 $1; add %0 $2
//
// ($i = external input i, %i = result of step i, name/nin/lat header).
func ParseCustomOp(text string) (*CustomOp, error) { return ir.ParseFusedSpec(text) }

// NewOpSet interns a catalog of custom ops. Equal catalogs (same specs
// in the same order) return the identical *OpSet, so architectures
// drawing from them stay comparable with ==.
func NewOpSet(specs []*CustomOp) (*OpSet, error) { return machine.NewOpSet(specs) }

// Template is the extensible architecture template of the redesigned
// API: the paper's 6-tuple axes plus an optional custom-op catalog.
// The zero Template is exactly the paper's template.
type Template struct {
	// Ops, when non-nil, adds the op-set axis to the design space:
	// every 6-tuple point is crossed with the enable masks of
	// machine.DefaultMasks (none, all).
	Ops *OpSet
}

// Space enumerates the template's concrete design points. With a nil
// catalog it is exactly FullSpace.
func (t Template) Space() []Arch {
	space := machine.FullSpace()
	if t.Ops == nil {
		return space
	}
	return machine.CrossOps(space, t.Ops, machine.DefaultMasks(t.Ops))
}

// Kernel is a parsed CKC kernel; Compiled is a kernel scheduled for one
// concrete machine.
type (
	Kernel   = core.Kernel
	Compiled = core.Compiled
	RunStats = core.RunStats
)

// Benchmark is one kernel of the paper's suite (or a caller-defined
// workload in the same shape).
type Benchmark = bench.Benchmark

// FitResult is the outcome of a custom-fit search.
type FitResult = core.FitResult

// Results holds every measurement from one exploration (see
// internal/dse for the full API: Scatter, SelectConstrained, Save...).
type Results = dse.Results

// Evaluation is one (benchmark, architecture) measurement of a Results.
type Evaluation = dse.Evaluation

// ProgressInfo snapshots an in-flight exploration for progress
// reporting.
type ProgressInfo = dse.ProgressInfo

// SearchResult reports one search strategy's outcome.
type SearchResult = search.Result

// Options structs of the context-threaded entry points.
type (
	ExploreOptions = core.ExploreOptions
	FitOptions     = core.FitOptions
	SearchOptions  = core.SearchOptions
)

// ParseKernel compiles CKC source containing exactly one kernel.
func ParseKernel(src string) (*Kernel, error) { return core.ParseKernel(src) }

// BenchmarkByName returns a paper benchmark by its tag (A, C, D, E, F,
// G, H, GF, GEF, DH, DHEF), or nil.
func BenchmarkByName(name string) *Benchmark { return bench.ByName(name) }

// Benchmarks returns the paper's full suite.
func Benchmarks() []*Benchmark { return bench.All() }

// MineOps mines custom-op candidates from the benchmarks' kernel
// dataflow graphs on the reference workloads and returns the
// top-scoring catalog of at most n ops (a small default when n <= 0),
// or nil when no cluster qualifies. Feed the result to Template,
// ExploreOptions.Ops, or FitOptions.Ops.
func MineOps(benchmarks []*Benchmark, n int) (*OpSet, error) {
	return core.AutoOps(benchmarks, 0, n)
}

// DesignSpace enumerates the unclustered design points of the paper's
// search space; FullSpace adds every valid cluster arrangement.
func DesignSpace() []Arch { return machine.DesignSpace() }

// FullSpace returns every concrete machine the explorer evaluates.
func FullSpace() []Arch { return machine.FullSpace() }

// Cost returns an architecture's datapath cost relative to the
// baseline, under the model fit to the paper's Table 6.
func Cost(a Arch) float64 { return machine.DefaultCostModel.Cost(a) }

// CycleDerate returns the cycle-time derating factor relative to the
// baseline, under the model fit to the paper's Table 7.
func CycleDerate(a Arch) float64 { return machine.DefaultCycleModel.Derate(a) }

// Explore runs the paper's design-space exploration under ctx: every
// machine of the (optionally sampled) space against every requested
// benchmark. Cancelling ctx stops scheduling new evaluations
// immediately and returns an error wrapping ErrCancelled; results of a
// completed run are bit-identical whether or not a persistent cache
// (ExploreOptions.CacheDir) is used, warm or cold.
func Explore(ctx context.Context, opts ExploreOptions) (*Results, error) {
	return core.Explore(ctx, opts)
}

// FitContext is the paper's custom-fit loop under a context: explore,
// then select the best architecture for opts.Benchmarks within
// opts.CostCap (backed off by opts.Range toward cheaper machines when
// nonzero). Returns ErrInfeasible when nothing fits the cap and
// ErrCancelled when ctx ends first.
func FitContext(ctx context.Context, opts FitOptions) (*FitResult, error) {
	return core.CustomFitCtx(ctx, opts)
}

// Search compares design-space search strategies (exhaustive, hill
// climbing, annealing, genetic) at fitting opts.Benchmark under
// opts.CostCap, scoring each against the exhaustive optimum. The
// objective compiles and measures for real; cancelling ctx stops the
// in-flight strategy promptly with ErrCancelled.
func Search(ctx context.Context, opts SearchOptions) ([]SearchResult, error) {
	return core.SearchCompare(ctx, opts)
}

// Fit searches the full design space for the architecture maximizing
// mean speedup over the given benchmarks within the cost budget — the
// paper's custom-fit loop. For large budgets of time rather than cost,
// see internal/dse and cmd/cfp-explore for the full experiment.
//
// Deprecated: use FitContext, which takes a context (cancellable) and
// an options struct instead of positional knobs. This thin wrapper
// behaves exactly as before.
func Fit(benchmarks []*Benchmark, costCap float64) (*FitResult, error) {
	return core.CustomFitCtx(context.Background(), FitOptions{Benchmarks: benchmarks, CostCap: costCap})
}

// FitIn is Fit over a caller-chosen subset of machines (for quick,
// sampled runs).
//
// Deprecated: use FitContext with FitOptions.Archs. This thin wrapper
// behaves exactly as before.
func FitIn(benchmarks []*Benchmark, costCap float64, archs []Arch) (*FitResult, error) {
	return core.CustomFitCtx(context.Background(), FitOptions{Benchmarks: benchmarks, CostCap: costCap, Archs: archs})
}
