module customfit

go 1.22
