package customfit_test

import (
	"context"
	"errors"
	"testing"

	"customfit"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	k, err := customfit.ParseKernel(`
		kernel negate(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) { out[i] = 0 - in[i]; }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := k.Compile(customfit.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []int32{3, -4, 5}
	out := make([]int32, 3)
	st, err := c.Run([]int32{3}, map[string][]int32{"in": in, "out": out})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		if out[i] != -v {
			t.Errorf("out[%d] = %d, want %d", i, out[i], -v)
		}
	}
	if st.Cycles <= 0 {
		t.Error("no cycles reported")
	}
}

func TestPublicAPIModelsAndSpaces(t *testing.T) {
	if c := customfit.Cost(customfit.Baseline); c != 1 {
		t.Errorf("baseline cost = %f", c)
	}
	if d := customfit.CycleDerate(customfit.Baseline); d != 1 {
		t.Errorf("baseline derate = %f", d)
	}
	if n := len(customfit.DesignSpace()); n != 234 {
		t.Errorf("design space = %d points", n)
	}
	if len(customfit.FullSpace()) <= len(customfit.DesignSpace()) {
		t.Error("full space should add cluster arrangements")
	}
	if customfit.BenchmarkByName("A") == nil || len(customfit.Benchmarks()) != 11 {
		t.Error("benchmark registry broken through the facade")
	}
}

func TestPublicAPIFitIn(t *testing.T) {
	space := []customfit.Arch{
		customfit.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2},
	}
	fit, err := customfit.FitIn([]*customfit.Benchmark{customfit.BenchmarkByName("G")}, 5, space)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Cost > 5 {
		t.Errorf("fit over budget: %f", fit.Cost)
	}
	if fit.Results == nil || fit.Speedups["G"] <= 0 {
		t.Error("fit result incomplete")
	}
}

func smallSpace() []customfit.Arch {
	return []customfit.Arch{
		customfit.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2},
		{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
	}
}

func TestPublicAPIExplore(t *testing.T) {
	res, err := customfit.Explore(context.Background(), customfit.ExploreOptions{
		Benchmarks: []*customfit.Benchmark{customfit.BenchmarkByName("G")},
		Archs:      smallSpace(),
		Width:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archs) != 3 || len(res.Eval["G"]) != 3 {
		t.Fatalf("unexpected result shape: %d archs", len(res.Archs))
	}
	for _, ev := range res.Eval["G"] {
		if ev.Failed || ev.Speedup <= 0 {
			t.Errorf("evaluation failed on %v", ev.Arch)
		}
	}
}

func TestPublicAPIExploreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := customfit.Explore(ctx, customfit.ExploreOptions{
		Benchmarks: []*customfit.Benchmark{customfit.BenchmarkByName("G")},
		Archs:      smallSpace(),
		Width:      32,
	})
	if !errors.Is(err, customfit.ErrCancelled) {
		t.Errorf("error %v does not wrap ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

func TestPublicAPIFitContextMatchesDeprecatedFitIn(t *testing.T) {
	benches := []*customfit.Benchmark{customfit.BenchmarkByName("G")}
	old, err := customfit.FitIn(benches, 5, smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	ctxFit, err := customfit.FitContext(context.Background(), customfit.FitOptions{
		Benchmarks: benches, CostCap: 5, Archs: smallSpace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if old.Best != ctxFit.Best || old.Cost != ctxFit.Cost {
		t.Errorf("FitContext picked (%v, %f), FitIn picked (%v, %f)",
			ctxFit.Best, ctxFit.Cost, old.Best, old.Cost)
	}
}

func TestPublicAPIFitInfeasible(t *testing.T) {
	_, err := customfit.FitContext(context.Background(), customfit.FitOptions{
		Benchmarks: []*customfit.Benchmark{customfit.BenchmarkByName("G")},
		CostCap:    0.001,
		Archs:      smallSpace(),
		Width:      32,
	})
	if !errors.Is(err, customfit.ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
}

func TestPublicAPIFitRangePicksCheaper(t *testing.T) {
	// With an infinite tolerance band every feasible machine qualifies,
	// so Range must select the cheapest one — the baseline.
	fit, err := customfit.FitContext(context.Background(), customfit.FitOptions{
		Benchmarks: []*customfit.Benchmark{customfit.BenchmarkByName("G")},
		CostCap:    20,
		Range:      1000,
		Archs:      smallSpace(),
		Width:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Best != customfit.Baseline {
		t.Errorf("Range-relaxed fit picked %v, want the cheapest (baseline)", fit.Best)
	}
}

func TestPublicAPIBadKernel(t *testing.T) {
	_, err := customfit.ParseKernel("kernel broken( {")
	if !errors.Is(err, customfit.ErrBadKernel) {
		t.Errorf("error %v does not wrap ErrBadKernel", err)
	}
}

func TestPublicAPISearch(t *testing.T) {
	results, err := customfit.Search(context.Background(), customfit.SearchOptions{
		Benchmark: customfit.BenchmarkByName("G"),
		CostCap:   10,
		Space:     smallSpace(),
		Width:     32,
		Seed:      1,
		Prune:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no strategy results")
	}
	for _, r := range results {
		if r.Strategy == "exhaustive" && r.Optimality != 1 {
			t.Errorf("exhaustive optimality %f, want 1", r.Optimality)
		}
	}
}

func TestPublicAPISearchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := customfit.Search(ctx, customfit.SearchOptions{
		Benchmark: customfit.BenchmarkByName("G"),
		CostCap:   10,
		Space:     smallSpace(),
		Width:     32,
	})
	if !errors.Is(err, customfit.ErrCancelled) {
		t.Errorf("error %v does not wrap ErrCancelled", err)
	}
}
