package customfit_test

import (
	"testing"

	"customfit"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	k, err := customfit.ParseKernel(`
		kernel negate(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) { out[i] = 0 - in[i]; }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := k.Compile(customfit.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []int32{3, -4, 5}
	out := make([]int32, 3)
	st, err := c.Run([]int32{3}, map[string][]int32{"in": in, "out": out})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		if out[i] != -v {
			t.Errorf("out[%d] = %d, want %d", i, out[i], -v)
		}
	}
	if st.Cycles <= 0 {
		t.Error("no cycles reported")
	}
}

func TestPublicAPIModelsAndSpaces(t *testing.T) {
	if c := customfit.Cost(customfit.Baseline); c != 1 {
		t.Errorf("baseline cost = %f", c)
	}
	if d := customfit.CycleDerate(customfit.Baseline); d != 1 {
		t.Errorf("baseline derate = %f", d)
	}
	if n := len(customfit.DesignSpace()); n != 234 {
		t.Errorf("design space = %d points", n)
	}
	if len(customfit.FullSpace()) <= len(customfit.DesignSpace()) {
		t.Error("full space should add cluster arrangements")
	}
	if customfit.BenchmarkByName("A") == nil || len(customfit.Benchmarks()) != 11 {
		t.Error("benchmark registry broken through the facade")
	}
}

func TestPublicAPIFitIn(t *testing.T) {
	space := []customfit.Arch{
		customfit.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2},
	}
	fit, err := customfit.FitIn([]*customfit.Benchmark{customfit.BenchmarkByName("G")}, 5, space)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Cost > 5 {
		t.Errorf("fit over budget: %f", fit.Cost)
	}
	if fit.Results == nil || fit.Speedups["G"] <= 0 {
		t.Error("fit result incomplete")
	}
}
