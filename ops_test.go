package customfit_test

import (
	"strings"
	"testing"

	"customfit"
)

// TestTemplateSpace pins the extensible template: the zero template is
// exactly the paper's space, and an op catalog doubles it (every point
// op-free and fully enabled).
func TestTemplateSpace(t *testing.T) {
	plain := customfit.Template{}.Space()
	if len(plain) != len(customfit.FullSpace()) {
		t.Fatalf("zero template has %d points, FullSpace has %d", len(plain), len(customfit.FullSpace()))
	}
	set, err := customfit.MineOps([]*customfit.Benchmark{customfit.BenchmarkByName("A")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil {
		t.Fatal("mining A produced no ops")
	}
	crossed := customfit.Template{Ops: set}.Space()
	if len(crossed) != 2*len(plain) {
		t.Fatalf("op-crossed template has %d points, want %d", len(crossed), 2*len(plain))
	}
}

// TestParseCustomOpRoundTrip pins the public codec.
func TestParseCustomOpRoundTrip(t *testing.T) {
	const text = "mac/3/2:mul $0 $1;add %0 $2"
	op, err := customfit.ParseCustomOp(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := op.String(); got != text {
		t.Fatalf("round trip: %q -> %q", text, got)
	}
	if op.NIn != 3 || op.Lat != 2 || len(op.Steps) != 2 {
		t.Fatalf("parsed spec %+v", op)
	}
}

// TestFusedDifferentialAllKernels is the differential simulation gate:
// for every kernel of the paper's suite, compile and run the same
// machine with and without its mined op set, and require both cycle-
// accurate runs to produce memory images identical to the golden
// reference model. Fused execution must change cycle counts, never
// values. Also asserts the headline acceptance: the op set improves
// simulated cycles on at least 3 kernels.
func TestFusedDifferentialAllKernels(t *testing.T) {
	// Roomy single-cluster machine: fusion limited by patterns, not ports.
	base := customfit.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 1}
	improved := 0
	suite := customfit.Benchmarks()
	for _, b := range suite {
		set, err := customfit.MineOps([]*customfit.Benchmark{b}, 4)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if set == nil {
			t.Logf("%s: no fusable clusters", b.Name)
			continue
		}
		k, err := customfit.ParseKernel(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		fusedArch := base.WithOps(set, set.FullMask())
		plain, err := k.Compile(base, 1)
		if err != nil {
			t.Fatalf("%s plain: %v", b.Name, err)
		}
		fused, err := k.Compile(fusedArch, 1)
		if err != nil {
			t.Fatalf("%s fused: %v", b.Name, err)
		}

		cse := b.NewCase(48, 1)
		runPlain, runFused := cse.Clone(), cse.Clone()
		stPlain, err := plain.Run(runPlain.Args, runPlain.Mem)
		if err != nil {
			t.Fatalf("%s plain run: %v", b.Name, err)
		}
		stFused, err := fused.Run(runFused.Args, runFused.Mem)
		if err != nil {
			t.Fatalf("%s fused run: %v", b.Name, err)
		}
		for _, name := range cse.Outputs {
			want := cse.Golden()[name]
			for i := range want {
				if got := runFused.Mem[name][i]; got != want[i] {
					t.Fatalf("%s: fused run diverges from golden at %s[%d]: %d != %d",
						b.Name, name, i, got, want[i])
				}
				if got := runPlain.Mem[name][i]; got != want[i] {
					t.Fatalf("%s: plain run diverges from golden at %s[%d]: %d != %d",
						b.Name, name, i, got, want[i])
				}
			}
		}
		if stFused.Cycles < stPlain.Cycles {
			improved++
		}
		t.Logf("%s: cycles %d -> %d with %d ops", b.Name, stPlain.Cycles, stFused.Cycles, set.Len())
	}
	if improved < 3 {
		t.Errorf("custom ops improved only %d/%d kernels, want >= 3", improved, len(suite))
	}
}

// TestOpSetCostIsPriced pins that enabling ops is never free hardware:
// the cost model must charge for the fused datapath.
func TestOpSetCostIsPriced(t *testing.T) {
	set, err := customfit.MineOps([]*customfit.Benchmark{customfit.BenchmarkByName("A")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil {
		t.Fatal("mining A produced no ops")
	}
	a := customfit.Baseline
	withOps := a.WithOps(set, set.FullMask())
	if customfit.Cost(withOps) <= customfit.Cost(a) {
		t.Errorf("op hardware is free: cost %.3f with ops, %.3f without", customfit.Cost(withOps), customfit.Cost(a))
	}
	if !strings.Contains(withOps.String(), "+ops:") {
		t.Errorf("op-enabled arch renders as %q, want an +ops suffix", withOps.String())
	}
}
