package customfit_test

import (
	"math"
	"os"
	"testing"

	"customfit/internal/dse"
	"customfit/internal/machine"
)

// TestShippedResultsSanity guards the results artifact checked into the
// repository (results_full.json, produced by cmd/cfp-explore): the
// headline structure EXPERIMENTS.md reports must hold in the shipped
// data. Skipped when the artifact is absent (fresh checkouts that have
// not run the exploration).
func TestShippedResultsSanity(t *testing.T) {
	if _, err := os.Stat("results_full.json"); err != nil {
		t.Skip("results_full.json not present; run cmd/cfp-explore -save results_full.json")
	}
	res, err := dse.Load("results_full.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) != 11 {
		t.Fatalf("benches = %d, want 11", len(res.Benches))
	}
	if res.Stats.Architectures < 700 {
		t.Errorf("architectures = %d, want full space", res.Stats.Architectures)
	}

	// The baseline must be present with speedup exactly 1 everywhere.
	baseIdx := -1
	for i, a := range res.Archs {
		if a == machine.Baseline {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		t.Fatal("baseline missing from results")
	}
	for _, b := range res.Benches {
		if su := res.Eval[b][baseIdx].Speedup; math.Abs(su-1) > 1e-9 {
			t.Errorf("%s baseline speedup = %f", b, su)
		}
	}

	// Headline structure (EXPERIMENTS.md §5):
	claims := res.ComputeClaims()
	over5 := 0
	for _, v := range claims.SpreadByBench {
		if v >= 5 {
			over5++
		}
	}
	if over5 < 6 {
		t.Errorf("only %d benchmarks show a >=5x similar-cost spread", over5)
	}
	if claims.WorstCrossFraction > 0.5 {
		t.Errorf("worst cross fraction %.2f — the specialization danger vanished", claims.WorstCrossFraction)
	}
	if claims.BackoffRecovery < 1.0 {
		t.Errorf("back-off recovery %.2f < 1 — RANGE selection broken", claims.BackoffRecovery)
	}

	// Per-benchmark character: A's peak beats C's peak (register/mul
	// hunger pays off at the top of the space); F's frontier is flat
	// (saturates cheap).
	peak := func(b string) (float64, float64) {
		best, cost := 0.0, 0.0
		for _, p := range res.Scatter(b) {
			if p.Speedup > best {
				best, cost = p.Speedup, p.Cost
			}
		}
		return best, cost
	}
	aPeak, _ := peak("A")
	cPeak, _ := peak("C")
	fPeak, fCost := peak("F")
	if aPeak <= cPeak {
		t.Errorf("A peak %.1f <= C peak %.1f", aPeak, cPeak)
	}
	if fPeak > 5 {
		t.Errorf("F peak %.1f — the error-diffusion recurrence should cap it", fPeak)
	}
	if fCost > 10 {
		t.Errorf("F's best machine costs %.1f — it should saturate on cheap machines", fCost)
	}

	// Selection sanity at every paper cost cap.
	for _, cap := range []float64{5, 10, 15} {
		rows := res.SelectConstrained(cap, 0)
		if len(rows) != len(dse.DisplayBenches) {
			t.Errorf("cap %.0f: %d selection rows", cap, len(rows))
		}
		for _, ch := range rows {
			if ch.Cost > cap {
				t.Errorf("cap %.0f: %s selected cost %.1f", cap, ch.Target, ch.Cost)
			}
		}
	}
}
