// Custom-fit an architecture to one algorithm, then discover the
// paper's central warning: the machine tailored for one kernel can be a
// poor — even pathological — choice for its neighbour from the same
// application domain.
//
//	go run ./examples/customfit
//
// This drives the paper's Section 4.2 experiment on a sampled design
// space (the full space takes tens of minutes single-threaded; use
// cmd/cfp-explore for the real thing).
package main

import (
	"fmt"
	"log"

	"customfit/internal/bench"
	"customfit/internal/core"
	"customfit/internal/machine"
)

func main() {
	// Sample the design space for a quick run.
	full := machine.FullSpace()
	var space []machine.Arch
	for i := 0; i < len(full); i += 16 {
		space = append(space, full[i])
	}
	fmt.Printf("searching %d of %d machines, cost budget 10.0\n\n", len(space), len(full))

	budget := 10.0
	a := bench.ByName("A") // 7x7 FIR: multiply- and register-hungry
	h := bench.ByName("H") // 3x3 median: pure ALU issue width

	fitA, err := core.CustomFitIn([]*bench.Benchmark{a}, budget, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom fit for %s: %s (cost %.1f) -> %.2fx on %s\n",
		a.Name, fitA.Best, fitA.Cost, fitA.Speedups["A"], a.Name)

	fitH, err := core.CustomFitIn([]*bench.Benchmark{h}, budget, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom fit for %s: %s (cost %.1f) -> %.2fx on %s\n\n",
		h.Name, fitH.Best, fitH.Cost, fitH.Speedups["H"], h.Name)

	// Cross-evaluate: run each kernel on the other's machine.
	crossEval := func(b *bench.Benchmark, arch machine.Arch) float64 {
		fit, err := core.CustomFitIn([]*bench.Benchmark{b}, 1e9, []machine.Arch{arch})
		if err != nil {
			log.Fatal(err)
		}
		return fit.Speedups[b.Name]
	}
	aOnH := crossEval(a, fitH.Best)
	hOnA := crossEval(h, fitA.Best)
	fmt.Printf("design for one algorithm, run another (the paper's Section 4.2):\n")
	fmt.Printf("  %s on %s's machine: %.2fx (vs %.2fx on its own)\n", a.Name, h.Name, aOnH, fitA.Speedups["A"])
	fmt.Printf("  %s on %s's machine: %.2fx (vs %.2fx on its own)\n", h.Name, a.Name, hOnA, fitH.Speedups["H"])

	// And the compromise: fit for both at once.
	both, err := core.CustomFitIn([]*bench.Benchmark{a, h}, budget, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfit for both: %s (cost %.1f) -> A %.2fx, H %.2fx\n",
		both.Best, both.Cost, both.Speedups["A"], both.Speedups["H"])
}
