// A 3x3 unsharp-mask sharpening kernel over an RGB row triplet —
// an example CKC source file for cfp-compile:
//
//   go run ./cmd/cfp-compile -arch "8 2 256 2 4 2" -unroll 2 examples/kernels/sharpen.ck
//
// Sharpened = clamp(2*center - blur), with a [1 2 1; 2 4 2; 1 2 1]/16
// blur kernel.
kernel sharpen(byte r0[], byte r1[], byte r2[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int c;
		for (c = 0; c < 3; c++) {
			int blur; int center;
			blur =  r0[i * 3 + c]           + 2 * r0[(i + 1) * 3 + c] + r0[(i + 2) * 3 + c]
			     + 2 * r1[i * 3 + c]        + 4 * r1[(i + 1) * 3 + c] + 2 * r1[(i + 2) * 3 + c]
			     +  r2[i * 3 + c]           + 2 * r2[(i + 1) * 3 + c] + r2[(i + 2) * 3 + c];
			center = r1[(i + 1) * 3 + c];
			out[i * 3 + c] = clamp(2 * center - ((blur + 8) >> 4), 0, 255);
		}
	}
}
