// The tail of a JPEG decoder — dequantize+IDCT (benchmark C), 1-D
// bilinear upsampling (G), YCbCr→RGB conversion (E) — as one
// application with several kernels sharing a single custom-fit machine.
// This is the paper's motivating scenario: "people build chips to do
// specifically one subtask of an application ... additionally, we now
// have media processors, which are specialized for an application
// area."
//
//	go run ./examples/jpeg-tail
package main

import (
	"fmt"
	"log"

	"customfit/internal/bench"
	"customfit/internal/core"
	"customfit/internal/machine"
)

func main() {
	kernels := []*bench.Benchmark{
		bench.ByName("C"), // dequantize + IDCT
		bench.ByName("G"), // upsample
		bench.ByName("E"), // YCbCr → RGB
	}
	fmt.Println("JPEG decoder tail: IDCT (C) → upsample (G) → color convert (E)")

	// A quick sampled fit (full space in cmd/cfp-explore).
	full := machine.FullSpace()
	var space []machine.Arch
	for i := 0; i < len(full); i += 12 {
		space = append(space, full[i])
	}
	budget := 8.0
	fit, err := core.CustomFitIn(kernels, budget, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfit for the whole tail under cost %.1f: %s (cost %.1f)\n",
		budget, fit.Best, fit.Cost)
	for _, k := range kernels {
		fmt.Printf("  %-2s speedup %.2fx\n", k.Name, fit.Speedups[k.Name])
	}

	// Compare against specializing for each stage alone: the machine
	// that maximizes one stage is rarely the one you should build.
	fmt.Println("\nspecializing for a single stage instead:")
	for _, target := range kernels {
		only, err := core.CustomFitIn([]*bench.Benchmark{target}, budget, space)
		if err != nil {
			log.Fatal(err)
		}
		cross, err := core.CustomFitIn(kernels, budget, []machine.Arch{only.Best})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fit %-2s -> %s (cost %.1f): C %.2fx  G %.2fx  E %.2fx\n",
			target.Name, only.Best, only.Cost,
			cross.Speedups["C"], cross.Speedups["G"], cross.Speedups["E"])
	}

	// Run the whole tail on the fitted machine, cycle-accurately, and
	// verify each stage against its golden model.
	fmt.Println("\ncycle-accurate run of each stage on the fitted machine:")
	for _, b := range kernels {
		k, err := core.ParseKernel(b.Source)
		if err != nil {
			log.Fatal(err)
		}
		c, err := k.Compile(fit.Best, 2)
		if err != nil {
			log.Fatal(err)
		}
		cse := b.NewCase(192, 11)
		run := cse.Clone()
		st, err := c.Run(run.Args, run.Mem)
		if err != nil {
			log.Fatal(err)
		}
		want := cse.Golden()
		for _, name := range cse.Outputs {
			for i, w := range want[name] {
				if run.Mem[name][i] != w {
					log.Fatalf("%s: %s[%d] mismatch", b.Name, name, i)
				}
			}
		}
		fmt.Printf("  %-2s %7d cycles  IPC %.2f  verified\n", b.Name, st.Cycles, st.IPC)
	}
}
