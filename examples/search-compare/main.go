// Compare design-space search strategies on a real objective: speedup
// of the color-conversion kernel D under a cost budget, where every
// evaluation retargets the compiler and prices the schedule — the
// paper's third research question ("How effective are search methods
// aimed at finding the appropriate architecture?") answered with data.
//
//	go run ./examples/search-compare
package main

import (
	"fmt"
	"log"
	"math"

	"customfit/internal/bench"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/search"
)

func main() {
	b := bench.ByName("D")
	// A dense sub-lattice keeps the ±1-step neighborhoods intact, which
	// the local search strategies need.
	space := search.SubLattice()

	ev := dse.NewEvaluator()
	ev.Width = 64
	baseline := ev.Evaluate(b, machine.Baseline)
	if baseline.Failed {
		log.Fatal("baseline evaluation failed")
	}
	budget := 8.0
	obj := func(a machine.Arch) float64 {
		if machine.DefaultCostModel.Cost(a) > budget {
			return math.Inf(-1)
		}
		e := ev.Evaluate(b, a)
		if e.Failed {
			return math.Inf(-1)
		}
		return baseline.Time / e.Time
	}

	fmt.Printf("fitting %s (%s)\nbudget %.1f over %d machines; every evaluation is a real compile\n\n",
		b.Name, b.Desc, budget, len(space))
	results := search.Compare(space, obj, 2026)
	fmt.Printf("%-12s %-20s %9s %7s %12s\n", "strategy", "best arch", "speedup", "evals", "of optimum")
	for _, r := range results {
		fmt.Printf("%-12s %-20s %8.2fx %7d %11.1f%%\n",
			r.Strategy, r.Best, r.BestScore, r.Evaluations, 100*r.Optimality)
	}
	fmt.Println("\nthe paper's conjecture (§2.2): \"any good search technique could cut down")
	fmt.Println("significantly on processing time without greatly affecting the results\"")
}
