// Quickstart: write a kernel in CKC, retarget it to two different VLIW
// machines from the paper's template, run both on the cycle-accurate
// simulator, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"customfit/internal/core"
	"customfit/internal/machine"
)

// A 5-tap symmetric smoothing filter over a byte row — the kind of
// kernel the paper's whole methodology is aimed at.
const kernelSrc = `
const int taps[5] = {1, 4, 6, 4, 1};
kernel smooth(byte in[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int acc; int k;
		acc = 0;
		for (k = 0; k < 5; k++) {
			acc += in[i + k] * taps[k];
		}
		out[i] = (acc + 8) >> 4;
	}
}`

func main() {
	k, err := core.ParseKernel(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's baseline machine and a mid-range custom machine.
	baseline := machine.Baseline
	custom := machine.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 2}

	width := 256
	in := make([]int32, width+4)
	for i := range in {
		in[i] = int32((i*37 + 11) % 256)
	}

	var baseTime float64
	for _, arch := range []machine.Arch{baseline, custom} {
		compiled, err := k.Compile(arch, 4) // unroll the pixel loop 4x
		if err != nil {
			log.Fatal(err)
		}
		out := make([]int32, width)
		stats, err := compiled.Run([]int32{int32(width)}, map[string][]int32{
			"in": append([]int32(nil), in...), "out": out,
		})
		if err != nil {
			log.Fatal(err)
		}
		cost := machine.DefaultCostModel.Cost(arch)
		fmt.Printf("%-22s cycles=%6d  time=%8.0f  IPC=%4.2f  cost=%5.2f  spilled=%d\n",
			arch.String(), stats.Cycles, stats.Time, stats.IPC, cost, compiled.Spilled)
		if arch == baseline {
			baseTime = stats.Time
		} else {
			fmt.Printf("\nspeedup of %s over baseline: %.2fx at %.1fx the cost\n",
				arch, baseTime/stats.Time, cost)
		}
		// Spot-check output correctness against direct arithmetic.
		for i := 0; i < 4; i++ {
			want := (in[i] + 4*in[i+1] + 6*in[i+2] + 4*in[i+3] + in[i+4] + 8) >> 4
			if out[i] != want {
				log.Fatalf("out[%d] = %d, want %d", i, out[i], want)
			}
		}
	}
	fmt.Println("\noutput verified against direct computation")
}
