// Run the paper's biggest jammed benchmark — the full imaging pipeline
// DHEF (RGB→YCbCr conversion, 3x3 median filter, YCbCr→RGB conversion,
// Floyd-Steinberg halftoning fused into a single loop) — on three
// machines, verify every output bit against the golden model, and show
// where each machine's cycles go.
//
//	go run ./examples/imaging-pipeline
package main

import (
	"fmt"
	"log"

	"customfit/internal/bench"
	"customfit/internal/core"
	"customfit/internal/machine"
)

func main() {
	b := bench.ByName("DHEF")
	fmt.Println(b.Desc)
	k, err := core.ParseKernel(b.Source)
	if err != nil {
		log.Fatal(err)
	}

	width := 240
	machines := []struct {
		name string
		arch machine.Arch
		u    int
	}{
		{"baseline", machine.Baseline, 1},
		{"mid-range", machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2}, 2},
		{"wide", machine.Arch{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 4, Clusters: 4}, 2},
	}

	var baseTime float64
	for _, m := range machines {
		compiled, err := k.Compile(m.arch, m.u)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		cse := b.NewCase(width, 7)
		run := cse.Clone()
		stats, err := compiled.Run(run.Args, run.Mem)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		// Bit-exact verification against the golden pipeline
		// (composition of the individual kernels' models).
		want := cse.Golden()
		for _, name := range cse.Outputs {
			for i, w := range want[name] {
				if run.Mem[name][i] != w {
					log.Fatalf("%s: %s[%d] = %d, want %d", m.name, name, i, run.Mem[name][i], w)
				}
			}
		}
		if m.name == "baseline" {
			baseTime = stats.Time
		}
		fmt.Printf("%-10s %s  cycles/pixel %5.1f  IPC %4.2f  mem/pixel %4.1f  spilled %2d  cost %5.2f  speedup %4.2fx\n",
			m.name, m.arch,
			float64(stats.Cycles)/float64(width), stats.IPC,
			float64(stats.MemAccesses)/float64(width),
			compiled.Spilled,
			machine.DefaultCostModel.Cost(m.arch),
			baseTime/stats.Time)
	}
	fmt.Println("\nall outputs verified bit-exactly against the golden model")
	fmt.Println("(fusing the pipeline keeps every intermediate pixel in registers —")
	fmt.Println(" the paper's Table 2 'jammed' benchmarks avoid the memory round-trips)")
}
