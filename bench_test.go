// Benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation section. Each benchmark regenerates its
// table/figure from a shared sampled exploration (the full-space run is
// cmd/cfp-explore; see EXPERIMENTS.md for full-space numbers) and
// reports the headline quantities as custom metrics.
//
//	go test -bench=. -benchmem
package customfit_test

import (
	"math"
	"sync"
	"testing"

	"customfit"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/search"
	"customfit/internal/tables"
)

// sharedResults runs one sampled exploration (every 16th machine plus
// the paper's own example architectures) reused by every table/figure
// benchmark below.
var (
	resultsOnce sync.Once
	results     *dse.Results
	resultsErr  error
)

func sharedResults(b *testing.B) *dse.Results {
	b.Helper()
	resultsOnce.Do(func() {
		full := machine.FullSpace()
		seen := map[machine.Arch]bool{}
		var archs []machine.Arch
		add := func(a machine.Arch) {
			if !seen[a] {
				seen[a] = true
				archs = append(archs, a)
			}
		}
		for i := 0; i < len(full); i += 16 {
			add(full[i])
		}
		add(machine.Baseline)
		// The architectures the paper's Tables 8-10 select.
		for _, t := range [][6]int{
			{4, 2, 256, 1, 4, 4}, {8, 2, 128, 1, 4, 4}, {8, 2, 128, 1, 8, 4},
			{8, 4, 256, 1, 4, 4}, {8, 2, 256, 1, 4, 4}, {16, 4, 128, 1, 4, 8},
			{16, 4, 256, 2, 4, 8}, {16, 4, 512, 1, 4, 8}, {8, 4, 512, 1, 4, 4},
			{16, 4, 512, 1, 8, 8}, {16, 8, 256, 1, 4, 8}, {8, 2, 256, 1, 8, 4},
		} {
			a := machine.Arch{ALUs: t[0], MULs: t[1], Regs: t[2], L2Ports: t[3], L2Lat: t[4], Clusters: t[5]}
			if a.Validate() == nil {
				add(a)
			}
		}
		e := dse.NewExplorer()
		e.Archs = archs
		e.Width = 64
		results, resultsErr = e.Run()
	})
	if resultsErr != nil {
		b.Fatal(resultsErr)
	}
	return results
}

// BenchmarkTable3_ExperimentStats regenerates the Table 3 analog:
// compilation counts and per-run cost of the exploration itself.
func BenchmarkTable3_ExperimentStats(b *testing.B) {
	res := sharedResults(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = tables.Stats(res.Stats)
	}
	_ = out
	b.ReportMetric(float64(res.Stats.Runs), "runs")
	b.ReportMetric(float64(res.Stats.Architectures), "architectures")
	b.ReportMetric(float64(res.Stats.PerRun.Microseconds()), "µs/run")
}

// BenchmarkTable6_CostModel regenerates the paper's Table 6 from the
// fitted cost model and reports the worst-case error vs the paper.
func BenchmarkTable6_CostModel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = tables.Table6(machine.DefaultCostModel)
	}
	_ = out
	b.ReportMetric(100*machine.MaxRelErrCost(machine.DefaultCostModel), "worst%err")
}

// BenchmarkTable7_CycleModel regenerates the paper's Table 7.
func BenchmarkTable7_CycleModel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = tables.Table7(machine.DefaultCycleModel)
	}
	_ = out
	b.ReportMetric(100*machine.MaxRelErrCycle(machine.DefaultCycleModel), "worst%err")
}

// selection regenerates one of Tables 8/9/10 and reports the paper's
// headline quantities at that cost level: the best own-speedup across
// targets and the Range=∞ average.
func selection(b *testing.B, costCap float64, ranges []float64) {
	res := sharedResults(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = tables.Selection(res, costCap, ranges)
	}
	_ = out
	bestOwn := 0.0
	for _, ch := range res.SelectConstrained(costCap, 0) {
		if ch.OwnSpeedup > bestOwn {
			bestOwn = ch.OwnSpeedup
		}
	}
	b.ReportMetric(bestOwn, "best-own-speedup")
	if bo := res.BestOverall(costCap); bo != nil {
		b.ReportMetric(bo.Average, "range∞-avg")
	}
}

// BenchmarkTable8_LowCost regenerates Table 8 (cost < 5).
func BenchmarkTable8_LowCost(b *testing.B) {
	selection(b, 5, []float64{0, 0.10, math.Inf(1)})
}

// BenchmarkTable9_MediumCost regenerates Table 9 (cost < 10, including
// the Range=50% block with the paper's GEF back-off story).
func BenchmarkTable9_MediumCost(b *testing.B) {
	selection(b, 10, []float64{0, 0.10, 0.50, math.Inf(1)})
}

// BenchmarkTable10_HighCost regenerates Table 10 (cost < 15).
func BenchmarkTable10_HighCost(b *testing.B) {
	selection(b, 15, []float64{0, 0.10, math.Inf(1)})
}

// figure regenerates a Figure 3/4 scatter set and reports the frontier
// span of the first benchmark (max frontier speedup).
func figure(b *testing.B, names []string) {
	res := sharedResults(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			out = tables.ScatterCSV(res, n)
		}
	}
	_ = out
	maxSu := 0.0
	for _, p := range res.Scatter(names[0]) {
		if p.Best && p.Speedup > maxSu {
			maxSu = p.Speedup
		}
	}
	b.ReportMetric(maxSu, names[0]+"-max-speedup")
}

// BenchmarkFigure3_Scatter regenerates the Figure 3 cost/speedup
// scatter series (individual benchmarks A C D F G H).
func BenchmarkFigure3_Scatter(b *testing.B) {
	figure(b, []string{"A", "C", "D", "F", "G", "H"})
}

// BenchmarkFigure4_Scatter regenerates the Figure 4 series (jammed
// benchmarks GF GEF DH DHEF).
func BenchmarkFigure4_Scatter(b *testing.B) {
	figure(b, []string{"GF", "GEF", "DH", "DHEF"})
}

// BenchmarkCompileKernel measures raw compiler throughput: retargeting
// benchmark D to a mid-range machine (the paper's Table 3 reports 28 s
// per benchmark compile on a 1996 workstation).
func BenchmarkCompileKernel(b *testing.B) {
	k, err := customfit.ParseKernel(customfit.BenchmarkByName("D").Source)
	if err != nil {
		b.Fatal(err)
	}
	arch := customfit.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Compile(arch, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures simulator throughput on the compiled D
// kernel (cycles simulated per wall-second reported as a metric).
func BenchmarkSimulate(b *testing.B) {
	bm := customfit.BenchmarkByName("D")
	k, err := customfit.ParseKernel(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	c, err := k.Compile(customfit.Baseline, 2)
	if err != nil {
		b.Fatal(err)
	}
	cse := bm.NewCase(256, 1)
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cse.Clone()
		st, err := c.Run(run.Args, run.Mem)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/row")
}

// BenchmarkSearchMethods compares search strategies' evaluation counts
// (the paper's §1.1 third question) on the model-based objective.
func BenchmarkSearchMethods(b *testing.B) {
	res := sharedResults(b)
	// Objective from the sampled results: speedup of A under cost 10.
	idx := map[machine.Arch]int{}
	for i, a := range res.Archs {
		idx[a] = i
	}
	obj := func(a machine.Arch) float64 {
		i, ok := idx[a]
		if !ok || res.Cost[i] > 10 || res.Eval["A"][i].Failed {
			return math.Inf(-1)
		}
		return res.Eval["A"][i].Speedup
	}
	var cmp []search.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp = search.Compare(res.Archs, obj, int64(i)+1)
	}
	for _, r := range cmp {
		b.ReportMetric(float64(r.Evaluations), r.Strategy+"-evals")
		b.ReportMetric(100*r.Optimality, r.Strategy+"-%opt")
	}
}

// BenchmarkAblations measures the compiler design-choice ablation suite
// (DESIGN.md §3b / EXPERIMENTS.md): mean cycle slowdown with each
// choice disabled, reported as metrics.
func BenchmarkAblations(b *testing.B) {
	var results []dse.AblationResult
	for i := 0; i < b.N; i++ {
		results = dse.RunAblation(
			[]*customfit.Benchmark{customfit.BenchmarkByName("A"), customfit.BenchmarkByName("F")},
			[]machine.Arch{{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2}},
			48,
		)
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range results {
		if !r.Failed && r.Slowdown > 0 {
			sums[r.Config] += r.Slowdown
			counts[r.Config]++
		}
	}
	for cfg, s := range sums {
		if cfg == "full" {
			continue
		}
		b.ReportMetric(s/float64(counts[cfg]), cfg+"-slowdown")
	}
}

// BenchmarkRepertoireStudy measures the min/max opcode-choice extension.
func BenchmarkRepertoireStudy(b *testing.B) {
	var results []dse.RepertoireResult
	for i := 0; i < b.N; i++ {
		results = dse.RunRepertoireStudy(
			[]*customfit.Benchmark{customfit.BenchmarkByName("H")},
			[]machine.Arch{{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 2}},
			48,
		)
	}
	for _, r := range results {
		b.ReportMetric(r.Gain, r.Bench+"-minmax-gain")
	}
}
