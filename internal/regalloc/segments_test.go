package regalloc

import (
	"testing"
	"testing/quick"
)

func TestSegmentHelpers(t *testing.T) {
	rg := &Range{Segments: []Segment{{2, 5}, {9, 12}}}
	if rg.Span() != 10 {
		t.Errorf("Span = %d, want 10", rg.Span())
	}
	for _, c := range []struct {
		p    int
		want bool
	}{{1, false}, {2, true}, {5, true}, {7, false}, {12, true}, {13, false}} {
		if got := rg.Covers(c.p); got != c.want {
			t.Errorf("Covers(%d) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOverlapsAny(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		s1 := Segment{int(a0 % 50), int(a0%50) + int(a1%10)}
		s2 := Segment{int(b0 % 50), int(b0%50) + int(b1%10)}
		got := overlapsAny([]Segment{s1}, []Segment{s2})
		want := s1.Start <= s2.End && s2.Start <= s1.End
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeSegmentsSorted(t *testing.T) {
	a := []Segment{{1, 2}, {8, 9}}
	b := []Segment{{4, 5}}
	out := mergeInto(nil, a, b)
	if len(out) != 3 || out[0].Start != 1 || out[1].Start != 4 || out[2].Start != 8 {
		t.Errorf("merge = %v", out)
	}
}
