// Package regalloc performs per-cluster register allocation over
// scheduled VLIW programs. It computes exact per-cycle liveness from
// the schedule (matching the scheduler's pressure throttle), measures
// peak pressure, colors live-range segment unions onto physical
// registers, and suggests spill candidates when a cluster's register
// file is exceeded. The paper's central compiler feedback — "when the
// compiler started spilling register contents for a given unrolling, we
// stopped considering that unrolling factor" — comes from this
// package's Fits verdict.
package regalloc

import (
	"sort"

	"customfit/internal/ir"
	"customfit/internal/obs"
	"customfit/internal/opt"
	"customfit/internal/vliw"
)

// Segment is one contiguous live span in linearized schedule
// coordinates (inclusive).
type Segment struct {
	Start, End int
}

// Range is a virtual register's full live range: a union of segments.
type Range struct {
	Reg      ir.Reg
	Cluster  int
	Segments []Segment
}

// Span returns the distance from first birth to last death — the spill
// heuristic's "length".
func (rg *Range) Span() int {
	if len(rg.Segments) == 0 {
		return 0
	}
	return rg.Segments[len(rg.Segments)-1].End - rg.Segments[0].Start
}

// Covers reports whether the range is live at linear position p.
func (rg *Range) Covers(p int) bool {
	for _, s := range rg.Segments {
		if s.Start <= p && p <= s.End {
			return true
		}
	}
	return false
}

// Result reports allocation for one program.
type Result struct {
	// MaxLive is peak simultaneous pressure per cluster (exact).
	MaxLive []int
	// Capacity is registers per cluster.
	Capacity int
	// Fits is true when every cluster both stays within capacity and
	// colors successfully.
	Fits bool
	// Overflow is max(0, MaxLive-Capacity) per cluster.
	Overflow []int
	// Victims lists spill candidates, best first (longest spans in
	// overflowing clusters). The compile driver filters and applies.
	Victims []ir.Reg
	// Assign maps vreg -> physical register within its cluster, or -1.
	Assign []int
}

// Scratch is the allocator's reusable per-worker buffer arena: the
// liveness bitsets, per-register segment builders, flattened range
// tables and coloring state that dominate its allocation profile.
// Nothing built on a Scratch outlives the Allocate call that used it
// (AllocateReuse additionally hands out the arena-owned Result), so
// one arena serves a worker's whole compile stream. Not safe for
// concurrent use.
type Scratch struct {
	segments [][]Segment
	segEnd   []int
	isLive   []bool
	liveCnt  []int
	peakAt   []int

	// Flattened range storage: ranges holds Range values, byCluster
	// holds per-cluster index lists into it (the gopherjs-style
	// flat-tables idiom: indices instead of pointer graphs).
	ranges    []Range
	byCluster [][]int32

	// Coloring state: per-physical-register busy segment lists and the
	// merge double-buffer.
	busy     [][]Segment
	mergeBuf []Segment

	// AllocateReuse's arena-owned Result and its backing arrays.
	res         Result
	resMaxLive  []int
	resOverflow []int
	resAssign   []int
}

// NewScratch returns an empty allocator arena; buffers grow on first
// use and are retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

// Allocate computes exact liveness, pressure and physical registers for
// a scheduled program.
func Allocate(prog *vliw.Program) *Result {
	return AllocateSpan(nil, prog)
}

// AllocateSpan is Allocate recorded as a telemetry span under sp,
// carrying the allocation verdict (capacity, peak pressure, fit).
func AllocateSpan(sp *obs.Span, prog *vliw.Program) *Result {
	return AllocateWith(sp, prog, nil, nil)
}

// AllocateWith is the compile driver's entry point: lv, when non-nil,
// is a liveness analysis already computed over prog.F (the scheduler's
// own — allocation recomputing it is pure waste), and sc, when non-nil,
// is a reusable scratch arena. The returned Result is freshly
// allocated and safe to retain.
func AllocateWith(sp *obs.Span, prog *vliw.Program, lv *opt.Liveness, sc *Scratch) *Result {
	res := &Result{
		MaxLive:  make([]int, prog.Arch.Clusters),
		Overflow: make([]int, prog.Arch.Clusters),
		Assign:   make([]int, prog.F.NumRegs()),
	}
	return finishAllocate(sp, prog, lv, sc, res)
}

// AllocateReuse is AllocateWith with the Result itself drawn from the
// scratch arena: the delta compiler's steady state runs it with zero
// heap allocation. The returned Result (and every slice it carries) is
// valid only until the next Allocate call through the same Scratch;
// callers that retain results must use AllocateWith.
func AllocateReuse(sp *obs.Span, prog *vliw.Program, lv *opt.Liveness, sc *Scratch) *Result {
	if sc == nil {
		sc = NewScratch()
	}
	res := &sc.res
	res.MaxLive = growInts(&sc.resMaxLive, prog.Arch.Clusters)
	res.Overflow = growInts(&sc.resOverflow, prog.Arch.Clusters)
	res.Assign = growInts(&sc.resAssign, prog.F.NumRegs())
	res.Victims = res.Victims[:0]
	res.Fits = false
	res.Capacity = 0
	return finishAllocate(sp, prog, lv, sc, res)
}

// finishAllocate runs the allocation into res (whose MaxLive/Overflow/
// Assign must be zeroed and sized) and records the telemetry span.
func finishAllocate(sp *obs.Span, prog *vliw.Program, lv *opt.Liveness, sc *Scratch, res *Result) *Result {
	asp := obs.Under(sp, "regalloc")
	allocate(prog, lv, sc, res)
	if asp != nil {
		maxLive := 0
		for _, m := range res.MaxLive {
			if m > maxLive {
				maxLive = m
			}
		}
		fits := int64(0)
		if res.Fits {
			fits = 1
		}
		asp.Int("capacity", int64(res.Capacity)).Int("max_live", int64(maxLive)).
			Int("fits", fits).Int("victims", int64(len(res.Victims))).End()
	}
	return res
}

func allocate(prog *vliw.Program, lv *opt.Liveness, sc *Scratch, res *Result) {
	f := prog.F
	nregs := f.NumRegs()
	nclusters := prog.Arch.Clusters
	rc := prog.Arch.RegsPC()

	res.Capacity = rc
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	clusterOf := func(r ir.Reg) int {
		if int(r) < len(prog.RegCluster) {
			return prog.RegCluster[r]
		}
		return 0
	}

	if lv == nil {
		lv = opt.ComputeLiveness(f)
	}
	if sc == nil {
		sc = NewScratch()
	}
	// Segments are collected back-to-front per register. Nothing built
	// from these scratch buffers escapes this call: the Ranges below are
	// consumed before returning and the Result carries only register
	// ids and the assignment array.
	segments := sc.growSegments(nregs)
	segEnd := growInts(&sc.segEnd, nregs)
	isLive := growBools(&sc.isLive, nregs)
	liveCnt := growInts(&sc.liveCnt, nclusters)
	peakAt := growInts(&sc.peakAt, nclusters) // linear position of each cluster's pressure peak

	addLive := func(r ir.Reg, at int) {
		if !isLive[r] {
			isLive[r] = true
			segEnd[r] = at
			liveCnt[clusterOf(r)]++
		}
	}
	dropLive := func(r ir.Reg, at int) {
		if isLive[r] {
			isLive[r] = false
			segments[r] = append(segments[r], Segment{Start: at, End: segEnd[r]})
			liveCnt[clusterOf(r)]--
		}
	}

	// Blocks are linearized in order; b0 is the running base position.
	b0 := 0
	for _, sb := range prog.Blocks {
		// sb.Ops is emitted in non-decreasing cycle order, so the ops of
		// each cycle form a contiguous window scanned back-to-front —
		// no per-cycle bucket slices.
		ops := sb.Ops
		hi := len(ops)
		// Backward sweep seeded with the block's live-out set.
		for r := ir.Reg(0); int(r) < nregs; r++ {
			if lv.LiveOut(sb.IR, r) {
				addLive(r, b0+sb.Len)
			}
		}
		for t := sb.Len - 1; t >= 0; t-- {
			at := b0 + t
			lo := hi
			for lo > 0 && ops[lo-1].Cycle == t {
				lo--
			}
			cyc := ops[lo:hi]
			hi = lo
			for i := range cyc {
				in := cyc[i].Instr
				for _, a := range in.Args {
					if a.IsReg() {
						addLive(a.Reg, at)
					}
				}
				if in.Op.HasDest() {
					addLive(in.Dest, at)
				}
			}
			for c := 0; c < nclusters; c++ {
				if liveCnt[c] > res.MaxLive[c] {
					res.MaxLive[c] = liveCnt[c]
					peakAt[c] = at
				}
			}
			// A register defined here stops being live below this cycle
			// unless this cycle also reads its old value.
			for i := range cyc {
				in := cyc[i].Instr
				if !in.Op.HasDest() {
					continue
				}
				d := in.Dest
				usedHere := false
				for j := range cyc {
					for _, a := range cyc[j].Instr.Args {
						if a.IsReg() && a.Reg == d {
							usedHere = true
						}
					}
				}
				if !usedHere {
					dropLive(d, at)
				}
			}
		}
		// Anything still live at block start is live-in; close its
		// segment at the block's first cycle.
		for r := ir.Reg(0); int(r) < nregs; r++ {
			if isLive[r] {
				dropLive(r, b0)
			}
		}
		b0 += sb.Len + 1
	}

	// Build ranges. Segments are collected back-to-front within each
	// block but front-to-back across blocks, so sort by start and
	// coalesce overlaps — the overlap and coloring routines require
	// sorted, disjoint segment lists. Ranges live flat in the scratch
	// arena and are referenced by index; byCluster holds per-cluster
	// index lists.
	ranges := sc.ranges[:0]
	byCluster := sc.growClusters(nclusters)
	for r := 0; r < nregs; r++ {
		if len(segments[r]) == 0 {
			continue
		}
		segs := segments[r]
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		merged := segs[:1]
		for _, sg := range segs[1:] {
			last := &merged[len(merged)-1]
			if sg.Start <= last.End+1 {
				if sg.End > last.End {
					last.End = sg.End
				}
				continue
			}
			merged = append(merged, sg)
		}
		c := clusterOf(ir.Reg(r))
		byCluster[c] = append(byCluster[c], int32(len(ranges)))
		ranges = append(ranges, Range{Reg: ir.Reg(r), Cluster: c, Segments: merged})
	}
	sc.ranges = ranges

	res.Fits = true
	var atPeak, others []int32
	for c := 0; c < nclusters; c++ {
		if res.MaxLive[c] > rc {
			res.Fits = false
			res.Overflow[c] = res.MaxLive[c] - rc
			// Ranges alive at the cluster's peak are the victims that
			// provably lower it; everything else is fallback.
			for _, ri := range byCluster[c] {
				if ranges[ri].Covers(peakAt[c]) {
					atPeak = append(atPeak, ri)
				} else {
					others = append(others, ri)
				}
			}
		}
	}
	victims := atPeak
	sort.Slice(victims, func(i, j int) bool { return ranges[victims[i]].Span() > ranges[victims[j]].Span() })
	sort.Slice(others, func(i, j int) bool { return ranges[others[i]].Span() > ranges[others[j]].Span() })
	victims = append(victims, others...)
	if res.Fits {
		// Color each cluster; pressure fitting does not guarantee
		// colorability of segment-union graphs, so a failure here
		// reports the uncolorable range as the spill victim.
		for c := 0; c < nclusters; c++ {
			if bad := colorCluster(byCluster[c], ranges, rc, res.Assign, sc); bad >= 0 {
				res.Fits = false
				res.Overflow[c]++
				victims = append([]int32{bad}, victims...)
			}
		}
	}
	if !res.Fits {
		seen := map[ir.Reg]bool{}
		for _, ri := range victims {
			if !seen[ranges[ri].Reg] {
				seen[ranges[ri].Reg] = true
				res.Victims = append(res.Victims, ranges[ri].Reg)
			}
		}
		for i := range res.Assign {
			res.Assign[i] = -1
		}
	}
}

// colorCluster assigns physical registers to the cluster's ranges
// (given by index into the flat range table), first-birth first,
// choosing the lowest physical register whose busy segments do not
// overlap the range. Returns the index of the first uncolorable range,
// or -1. Busy lists and the merge double-buffer live in the scratch
// arena.
func colorCluster(idx []int32, ranges []Range, rc int, assign []int, sc *Scratch) int32 {
	sort.Slice(idx, func(i, j int) bool {
		return ranges[idx[i]].Segments[0].Start < ranges[idx[j]].Segments[0].Start
	})
	busy := sc.growBusy(rc)
	for _, ri := range idx {
		rg := &ranges[ri]
		placed := false
		for p := 0; p < rc && !placed; p++ {
			if overlapsAny(busy[p], rg.Segments) {
				continue
			}
			sc.mergeBuf = mergeInto(sc.mergeBuf[:0], busy[p], rg.Segments)
			busy[p] = append(busy[p][:0], sc.mergeBuf...)
			assign[rg.Reg] = p
			placed = true
		}
		if !placed {
			return ri
		}
	}
	return -1
}

// overlapsAny reports whether any segment in b overlaps any in s (both
// sorted by Start).
func overlapsAny(b, s []Segment) bool {
	i, j := 0, 0
	for i < len(b) && j < len(s) {
		if b[i].End < s[j].Start {
			i++
		} else if s[j].End < b[i].Start {
			j++
		} else {
			return true
		}
	}
	return false
}

// growSegments sizes the per-register segment builders to n registers,
// emptying each while keeping its backing array for reuse.
func (sc *Scratch) growSegments(n int) [][]Segment {
	if cap(sc.segments) < n {
		old := sc.segments[:cap(sc.segments)]
		sc.segments = make([][]Segment, n)
		copy(sc.segments, old)
	}
	sc.segments = sc.segments[:n]
	for i := range sc.segments {
		sc.segments[i] = sc.segments[i][:0]
	}
	return sc.segments
}

// growInts resizes buf to n zeroed entries, reusing capacity.
func growInts(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// growBools is growInts for bool buffers.
func growBools(buf *[]bool, n int) []bool {
	s := *buf
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = false
		}
	}
	*buf = s
	return s
}

// mergeInto merges two sorted segment lists into out (appending),
// returning the extended slice — allocation-free once out's backing
// array has grown to the working-set size.
func mergeInto(out, a, b []Segment) []Segment {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i].Start <= b[j].Start:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// growClusters sizes the per-cluster range-index lists to n clusters,
// emptying each while keeping backing arrays for reuse.
func (sc *Scratch) growClusters(n int) [][]int32 {
	if cap(sc.byCluster) < n {
		old := sc.byCluster[:cap(sc.byCluster)]
		sc.byCluster = make([][]int32, n)
		copy(sc.byCluster, old)
	}
	sc.byCluster = sc.byCluster[:n]
	for i := range sc.byCluster {
		sc.byCluster[i] = sc.byCluster[i][:0]
	}
	return sc.byCluster
}

// growBusy sizes the per-physical-register busy lists to n registers,
// emptying each while keeping backing arrays for reuse.
func (sc *Scratch) growBusy(n int) [][]Segment {
	if cap(sc.busy) < n {
		old := sc.busy[:cap(sc.busy)]
		sc.busy = make([][]Segment, n)
		copy(sc.busy, old)
	}
	sc.busy = sc.busy[:n]
	for i := range sc.busy {
		sc.busy[i] = sc.busy[i][:0]
	}
	return sc.busy
}
