package regalloc_test

import (
	"testing"

	"customfit/internal/cc"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/regalloc"
	"customfit/internal/sched"
)

const testSrc = `
	const int w[8] = {1,2,3,4,4,3,2,1};
	kernel k(int in[], int out[], int n) {
		int i;
		for (i = 0; i < n; i++) {
			int acc; int t;
			acc = 0;
			for (t = 0; t < 8; t++) { acc += in[i+t] * w[t]; }
			out[i] = acc >> 4;
		}
	}`

func compileFor(t *testing.T, arch machine.Arch, unroll int) *regalloc.Result {
	t.Helper()
	fn, err := cc.CompileKernel(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, unroll)
	if err != nil {
		t.Fatal(err)
	}
	g := prepared.Clone()
	pl := sched.Partition(g, arch)
	prog, err := sched.Schedule(g, arch, pl)
	if err != nil {
		t.Fatal(err)
	}
	return regalloc.Allocate(prog)
}

func TestAllocateFitsRichMachine(t *testing.T) {
	arch := machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2}
	res := compileFor(t, arch, 2)
	if !res.Fits {
		t.Fatalf("allocation did not fit: maxlive=%v capacity=%d", res.MaxLive, res.Capacity)
	}
	for c, ml := range res.MaxLive {
		if ml > arch.RegsPC() {
			t.Errorf("cluster %d pressure %d exceeds %d", c, ml, arch.RegsPC())
		}
	}
}

func TestAssignmentWithinCapacity(t *testing.T) {
	res := compileFor(t, machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 2}, 2)
	if !res.Fits {
		t.Fatal("expected fit")
	}
	for r, p := range res.Assign {
		if p >= res.Capacity {
			t.Errorf("reg v%d assigned phys %d beyond capacity %d", r, p, res.Capacity)
		}
	}
}

func TestOverflowReportsVictims(t *testing.T) {
	res := compileFor(t, machine.Arch{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8}, 8)
	if res.Fits {
		t.Skip("machine unexpectedly fit; pressure-dependent")
	}
	if len(res.Victims) == 0 {
		t.Error("overflow without victims")
	}
	seen := map[int32]bool{}
	for _, v := range res.Victims {
		if seen[int32(v)] {
			t.Errorf("duplicate victim v%d", v)
		}
		seen[int32(v)] = true
	}
}
