package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"customfit/internal/dse"
	"customfit/internal/evcache"
	"customfit/internal/obs"
)

// newTestServer spins up a Server (with a fresh globally installed obs
// collector, so counters are isolated per test) behind httptest.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *obs.Collector) {
	t.Helper()
	col := obs.NewCollector()
	obs.Install(col)
	t.Cleanup(func() { obs.Install(nil) })
	opts.Collector = col
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts, col
}

// postJSON posts body and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJob fetches a job's status.
func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, base, id string, deadline time.Duration) JobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		st := getJob(t, base, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %v", id, st.State, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCompileSubmitPoll(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	code := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	if sub.ID == "" || sub.Coalesced {
		t.Fatalf("unexpected submit response %+v", sub)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	var res CompileResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Bundles <= 0 || res.Assembly == "" || res.Kernel == "" {
		t.Errorf("implausible compile result %+v", res)
	}
}

func TestSimulateSSE(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Bench: "A", Arch: "2 1 64 1 4 1", Width: 48}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	// Read events until "done"; the stream format is
	// "event: NAME\ndata: JSON\n\n".
	var doneData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "done":
			doneData = strings.TrimPrefix(line, "data: ")
		}
		if doneData != "" {
			break
		}
	}
	if doneData == "" {
		t.Fatalf("stream ended without a done event (scan err %v)", sc.Err())
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(doneData), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("done event carries state %s (%s)", st.State, st.Error)
	}
	var res SimulateResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Cycles <= 0 {
		t.Errorf("simulation not verified: %+v", res)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"unknown bench", "/v1/simulate", SimulateRequest{Bench: "nope", Arch: "2 1 64 1 4 1"}},
		{"bad arch", "/v1/compile", CompileRequest{Bench: "A", Arch: "banana"}},
		{"no kernel", "/v1/compile", CompileRequest{Arch: "2 1 64 1 4 1"}},
		{"fit without cap", "/v1/fit", FitRequest{Benchmarks: []string{"A"}}},
		{"explore unknown bench", "/v1/explore", ExploreRequest{Benchmarks: []string{"ZZ"}}},
	}
	for _, c := range cases {
		var e ErrorResponse
		if code := postJSON(t, ts.URL+c.url, c.body, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
		} else if e.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestCoalescing pins the coalescing contract: while an identical
// explore request is queued or running, submits return the same job id,
// and an identical request after completion answers from the warm
// evaluation cache (visible on the /metrics hit counter).
func TestCoalescing(t *testing.T) {
	cache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	s, ts, _ := newTestServer(t, Options{Workers: 1, Cache: cache})

	// Park the single worker on a job we control, so the explores below
	// stay deterministically queued while we submit them.
	release := make(chan struct{})
	blocker, _, err := s.submit("block", "", obs.SpanContext{}, func(ctx context.Context, _ *Job) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	req := ExploreRequest{Benchmarks: []string{"G"}, Sample: 97, Width: 32}
	var first, second, third SubmitResponse
	postJSON(t, ts.URL+"/v1/explore", req, &first)
	postJSON(t, ts.URL+"/v1/explore", req, &second)
	other := req
	other.Width = 24
	postJSON(t, ts.URL+"/v1/explore", other, &third)
	if first.Coalesced {
		t.Error("first submit reported coalesced")
	}
	if !second.Coalesced || second.ID != first.ID {
		t.Errorf("identical submit got %+v, want coalesced onto %s", second, first.ID)
	}
	if third.ID == first.ID {
		t.Error("different request coalesced onto the same job")
	}

	close(release)
	if st := waitTerminal(t, ts.URL, blocker.ID, 10*time.Second); st.State != StateDone {
		t.Fatalf("blocker finished %s", st.State)
	}
	st := waitTerminal(t, ts.URL, first.ID, 120*time.Second)
	if st.State != StateDone {
		t.Fatalf("explore finished %s (%s)", st.State, st.Error)
	}
	if _, err := dse.FromJSON(st.Result); err != nil {
		t.Fatalf("explore result is not a Results document: %v", err)
	}

	// Same request again, after completion: a fresh job, served from the
	// warm persistent cache.
	var fourth SubmitResponse
	postJSON(t, ts.URL+"/v1/explore", req, &fourth)
	if fourth.Coalesced || fourth.ID == first.ID {
		t.Errorf("post-completion submit got %+v, want a fresh job", fourth)
	}
	if st := waitTerminal(t, ts.URL, fourth.ID, 120*time.Second); st.State != StateDone {
		t.Fatalf("warm explore finished %s (%s)", st.State, st.Error)
	}

	m := fetchMetrics(t, ts.URL)
	if m.Counters["serve.jobs_coalesced"] != 1 {
		t.Errorf("serve.jobs_coalesced = %d, want 1", m.Counters["serve.jobs_coalesced"])
	}
	if m.Counters["evcache.hits"] == 0 {
		t.Error("warm re-explore recorded no evcache hits")
	}
}

// metricsDoc mirrors the /metrics JSON shape (obs.WriteMetrics).
type metricsDoc struct {
	Counters map[string]int64 `json:"counters"`
}

func fetchMetrics(t *testing.T, base string) metricsDoc {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCancelMidExplore submits a long exploration, cancels it once it
// has made progress, and requires a prompt "cancelled" (never "failed")
// terminal state — the context-threading acceptance criterion.
func TestCancelMidExplore(t *testing.T) {
	_, ts, col := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	// Full 762-arch space on one benchmark: long enough to catch
	// mid-flight at any -race/-short setting.
	if code := postJSON(t, ts.URL+"/v1/explore",
		ExploreRequest{Benchmarks: []string{"DH"}, Width: 96}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	// Wait for real progress so the cancel lands mid-exploration.
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getJob(t, ts.URL, sub.ID)
		if st.State == StateRunning && st.Progress != nil {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %s before it could be cancelled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st := waitTerminal(t, ts.URL, sub.ID, 60*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("cancelled job finished %s (%s), want cancelled", st.State, st.Error)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt", took)
	}
	if v := col.Counter("serve.jobs_cancelled").Value(); v != 1 {
		t.Errorf("serve.jobs_cancelled = %d, want 1", v)
	}
	if v := col.Counter("serve.jobs_failed").Value(); v != 0 {
		t.Errorf("serve.jobs_failed = %d after a cancellation, want 0", v)
	}

	// The server keeps serving after a cancel.
	var sub2 SubmitResponse
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub2)
	if st := waitTerminal(t, ts.URL, sub2.ID, 30*time.Second); st.State != StateDone {
		t.Errorf("post-cancel compile finished %s", st.State)
	}
}

func TestShutdownDrains(t *testing.T) {
	col := obs.NewCollector()
	obs.Install(col)
	defer obs.Install(nil)
	s := New(Options{Workers: 1, Collector: col})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sub SubmitResponse
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if st := getJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Errorf("queued job not drained: %s (%s)", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: %d, want 503", resp.StatusCode)
	}
	var e ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &e); code != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: %d, want 503", code)
	}
}

func TestHealthzOK(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz %d %+v", resp.StatusCode, h)
	}
}

// TestGoldenExploreViaServer is the server-path equivalence acceptance
// test: an exploration submitted over HTTP must answer bit-identically
// to the library/CLI path pinned by internal/dse's golden snapshot —
// cold cache and warm cache alike (timing-only Stats fields aside).
func TestGoldenExploreViaServer(t *testing.T) {
	if testing.Short() {
		t.Skip("explores the full 762-arch space")
	}
	if raceEnabled {
		t.Skip("full-space exploration is minutes-slow under the race detector")
	}
	cache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	_, ts, _ := newTestServer(t, Options{Workers: 1, Cache: cache})

	want, err := dse.Load("../dse/testdata/golden_fullspace.json")
	if err != nil {
		t.Fatal(err)
	}
	req := ExploreRequest{Benchmarks: []string{"G", "F", "DH"}, Width: 48}

	var coldID string
	passes := []struct {
		pass     string
		wantHits bool
	}{{"cold", false}, {"warm", true}}
	for _, p := range passes {
		pass, wantHits := p.pass, p.wantHits
		var sub SubmitResponse
		if code := postJSON(t, ts.URL+"/v1/explore", req, &sub); code != http.StatusAccepted {
			t.Fatalf("%s: submit returned %d", pass, code)
		}
		if sub.ID == coldID {
			t.Fatalf("%s: coalesced with the finished cold job", pass)
		}
		coldID = sub.ID
		st := waitTerminal(t, ts.URL, sub.ID, 20*time.Minute)
		if st.State != StateDone {
			t.Fatalf("%s: explore finished %s (%s)", pass, st.State, st.Error)
		}
		got, err := dse.FromJSON(st.Result)
		if err != nil {
			t.Fatalf("%s: result is not a Results document: %v", pass, err)
		}
		if a, b := canonicalJSON(t, got), canonicalJSON(t, want); !bytes.Equal(a, b) {
			t.Errorf("%s: server results differ from golden (len %d vs %d)", pass, len(a), len(b))
		}
		if got.Stats.Runs != want.Stats.Runs {
			t.Errorf("%s: logical run count %d, golden %d", pass, got.Stats.Runs, want.Stats.Runs)
		}
		m := fetchMetrics(t, ts.URL)
		if wantHits && m.Counters["evcache.hits"] == 0 {
			t.Error("warm pass recorded no evcache hits")
		}
	}
}

// canonicalJSON strips the timing-dependent Stats fields and marshals,
// so two equivalent Results compare bit-identically.
func canonicalJSON(t *testing.T, r *dse.Results) []byte {
	t.Helper()
	c := *r
	c.Stats.WallTime = 0
	c.Stats.PerArch = 0
	c.Stats.PerRun = 0
	c.Stats.Phases = dse.PhaseTimes{}
	data, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJobEventsAfterDone: subscribing to a finished job yields an
// immediate done event rather than a hang.
func TestJobEventsAfterDone(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub)
	waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no done event for finished job (err %v)", sc.Err())
	}
}

// readEvent parses the next SSE event ("id: N\nevent: NAME\ndata: JSON")
// off the scanner, returning ok=false at stream end.
func readEvent(sc *bufio.Scanner) (id, name, data string, ok bool) {
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && name != "":
			return id, name, data, true
		}
	}
	return "", "", "", false
}

// getEvents opens a job's SSE stream, optionally resuming with
// Last-Event-ID (the standard EventSource reconnect header).
func getEvents(t *testing.T, base, id, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSSEReconnectAfterDone pins the reconnect contract: a client that
// drops after consuming progress (or even after the job finished) and
// reconnects with Last-Event-ID must still receive the terminal "done"
// event — it can never be missed — while already-seen progress is not
// replayed.
func TestSSEReconnectAfterDone(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitTerminal(t, ts.URL, sub.ID, 30*time.Second)

	// First connection (no Last-Event-ID): exactly one done event, with
	// an id the client could resume from.
	resp := getEvents(t, ts.URL, sub.ID, "")
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	id, name, data, ok := readEvent(sc)
	if !ok || name != "done" {
		t.Fatalf("first event = (%q, %q), want done", name, data)
	}
	if id == "" || id == "0" {
		t.Fatalf("done event id = %q, want a positive SSE id", id)
	}

	// Reconnect claiming to have seen everything up to the done id
	// itself: the done event must be re-sent regardless.
	resp2 := getEvents(t, ts.URL, sub.ID, id)
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 1<<20), 1<<20)
	id2, name2, data2, ok := readEvent(sc2)
	if !ok || name2 != "done" {
		t.Fatalf("reconnect event = (%q, %q), want done re-sent", name2, data2)
	}
	if id2 != id {
		t.Errorf("reconnected done id %q, first saw %q", id2, id)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(data2), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("reconnected done carries state %s", st.State)
	}
}

// TestSubscribeReplaySemantics exercises the job-level Last-Event-ID
// logic directly: stored progress is replayed only to subscribers that
// have not seen it yet.
func TestSubscribeReplaySemantics(t *testing.T) {
	j := &Job{ID: "t", Kind: "explore", state: StateQueued}
	if !j.startRunning() {
		t.Fatal("startRunning failed")
	}
	j.setProgress(json.RawMessage(`{"done":1}`))
	j.setProgress(json.RawMessage(`{"done":2}`))

	// A fresh subscriber (afterID 0) gets the latest snapshot replayed.
	ch, unsub := j.subscribe(0)
	select {
	case ev := <-ch:
		if ev.Name != "progress" || ev.ID != 2 || string(ev.Data) != `{"done":2}` {
			t.Errorf("fresh subscriber got %+v, want progress id 2", ev)
		}
	default:
		t.Error("fresh subscriber got no replay")
	}
	unsub()

	// A reconnecting subscriber that already saw id 2 gets nothing.
	ch2, unsub2 := j.subscribe(2)
	select {
	case ev := <-ch2:
		t.Errorf("reconnected subscriber got stale replay %+v", ev)
	default:
	}
	unsub2()

	// Finishing assigns the largest id to the terminal event and closes
	// subscriber channels.
	ch3, _ := j.subscribe(2)
	j.finish(StateDone, json.RawMessage(`{}`), "")
	if _, open := <-ch3; open {
		t.Error("subscriber channel not closed on finish")
	}
	if got := j.doneEventID(); got != 3 {
		t.Errorf("doneEventID = %d, want 3", got)
	}
}

// TestExploreExactArchs pins the shard-dispatch wire contract: an
// explicit archs grid is explored verbatim (no baseline appended), the
// out-of-grid baseline work is accounted in Stats.BaselineRuns, and
// archs+sample is rejected.
func TestExploreExactArchs(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})

	var e ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/explore",
		ExploreRequest{Archs: []string{"2 1 64 1 4 1"}, Sample: 4}, &e); code != http.StatusBadRequest {
		t.Fatalf("archs+sample: status %d, want 400", code)
	}

	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
		Benchmarks: []string{"G"},
		Width:      32,
		Archs:      []string{"2 1 64 1 4 1", "4 1 64 1 4 1"},
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 120*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	res, err := dse.FromJSON(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archs) != 2 {
		t.Fatalf("explored %d archs, want exactly the 2 given (no baseline appended)", len(res.Archs))
	}
	if res.Stats.BaselineRuns <= 0 {
		t.Errorf("Stats.BaselineRuns = %d, want > 0 for an out-of-grid baseline", res.Stats.BaselineRuns)
	}
	for i, ev := range res.Eval["G"] {
		if ev.Speedup <= 0 {
			t.Errorf("arch %d: speedup %g, want > 0 (baseline still measured)", i, ev.Speedup)
		}
	}
}
