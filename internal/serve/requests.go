package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"customfit/internal/bench"
	"customfit/internal/cli"
	"customfit/internal/core"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/obs"
)

// decodeJSON reads a request body into v (empty body = zero value, so
// defaultable requests need no payload).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil && err.Error() != "EOF" {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// resolveBenches maps names to benchmarks; empty means the full suite.
func resolveBenches(names []string) ([]*bench.Benchmark, error) {
	if len(names) == 0 {
		return bench.All(), nil
	}
	out := make([]*bench.Benchmark, 0, len(names))
	for _, n := range names {
		b := bench.ByName(n)
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q (have %v)", n, bench.Names())
		}
		out = append(out, b)
	}
	return out, nil
}

// CompileRequest asks for one kernel × architecture compilation.
// Exactly one of Bench (a built-in benchmark tag) or Source (CKC text)
// selects the kernel.
type CompileRequest struct {
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	// Arch is the paper's positional tuple "a m r p2 l2 c".
	Arch   string `json:"arch"`
	Unroll int    `json:"unroll,omitempty"` // default 1
}

// CompileResult is a compile job's payload.
type CompileResult struct {
	Kernel    string  `json:"kernel"`
	Arch      string  `json:"arch"`
	Unroll    int     `json:"unroll"`
	Bundles   int     `json:"bundles"`
	Ops       int     `json:"ops"`
	StaticIPC float64 `json:"static_ipc"`
	Spilled   int     `json:"spilled"`
	Cost      float64 `json:"cost"`
	Derate    float64 `json:"derate"`
	Assembly  string  `json:"assembly"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	src := req.Source
	if req.Bench != "" {
		b := bench.ByName(req.Bench)
		if b == nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown benchmark %q", req.Bench))
			return
		}
		src = b.Source
	}
	if src == "" {
		writeErr(w, http.StatusBadRequest, "one of bench or source is required")
		return
	}
	arch, err := cli.ParseArch(req.Arch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Unroll <= 0 {
		req.Unroll = 1
	}
	key := coalesceKey("compile", struct {
		Src    string
		Arch   machine.Arch
		Unroll int
	}{src, arch, req.Unroll})
	s.respondSubmit(w, remoteContext(r), "compile", key, func(ctx context.Context, _ *Job) (json.RawMessage, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", dse.ErrCancelled, context.Cause(ctx))
		}
		k, err := core.ParseKernelCtx(ctx, src)
		if err != nil {
			return nil, err
		}
		c, err := k.CompileCtx(ctx, arch, req.Unroll)
		if err != nil {
			return nil, err
		}
		return json.Marshal(CompileResult{
			Kernel:    k.Name,
			Arch:      arch.String(),
			Unroll:    req.Unroll,
			Bundles:   c.Prog.BundleCount(),
			Ops:       c.Prog.OpCount(),
			StaticIPC: c.Prog.IPC(),
			Spilled:   c.Spilled,
			Cost:      machine.DefaultCostModel.Cost(arch),
			Derate:    machine.DefaultCycleModel.Derate(arch),
			Assembly:  c.Assembly(),
		})
	})
}

// SimulateRequest asks for a cycle-accurate run of a built-in benchmark
// against its generated workload, verified against the golden model.
type SimulateRequest struct {
	Bench  string `json:"bench"`
	Arch   string `json:"arch"`
	Unroll int    `json:"unroll,omitempty"` // default 1
	Width  int    `json:"width,omitempty"`  // default 96
	Seed   int64  `json:"seed,omitempty"`   // default 1
}

// SimulateResult is a simulate job's payload.
type SimulateResult struct {
	Bench       string  `json:"bench"`
	Arch        string  `json:"arch"`
	Cycles      int64   `json:"cycles"`
	Time        float64 `json:"time"`
	Ops         int64   `json:"ops"`
	IPC         float64 `json:"ipc"`
	MemAccesses int64   `json:"mem_accesses"`
	StallCycles int64   `json:"stall_cycles"`
	Bound       string  `json:"bound"`
	Spilled     int     `json:"spilled"`
	Cost        float64 `json:"cost"`
	Verified    bool    `json:"verified"`
	Mismatches  int     `json:"mismatches"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b := bench.ByName(req.Bench)
	if b == nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown benchmark %q (have %v)", req.Bench, bench.Names()))
		return
	}
	arch, err := cli.ParseArch(req.Arch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Unroll <= 0 {
		req.Unroll = 1
	}
	if req.Width <= 0 {
		req.Width = 96
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	key := coalesceKey("simulate", req)
	s.respondSubmit(w, remoteContext(r), "simulate", key, func(ctx context.Context, _ *Job) (json.RawMessage, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", dse.ErrCancelled, context.Cause(ctx))
		}
		k, err := core.ParseKernelCtx(ctx, b.Source)
		if err != nil {
			return nil, err
		}
		c, err := k.CompileCtx(ctx, arch, req.Unroll)
		if err != nil {
			return nil, err
		}
		cse := b.NewCase(req.Width, req.Seed)
		run := cse.Clone()
		st, err := c.RunCtx(ctx, run.Args, run.Mem)
		if err != nil {
			return nil, err
		}
		mismatches := 0
		for _, name := range cse.Outputs {
			want, got := cse.Golden()[name], run.Mem[name]
			for i := range want {
				if want[i] != got[i] {
					mismatches++
				}
			}
		}
		return json.Marshal(SimulateResult{
			Bench:       b.Name,
			Arch:        arch.String(),
			Cycles:      st.Cycles,
			Time:        st.Time,
			Ops:         st.Ops,
			IPC:         st.IPC,
			MemAccesses: st.MemAccesses,
			StallCycles: st.StallCycles,
			Bound:       st.Bound,
			Spilled:     c.Spilled,
			Cost:        machine.DefaultCostModel.Cost(arch),
			Verified:    mismatches == 0,
			Mismatches:  mismatches,
		})
	})
}

// SchemaVersion is the newest explore-request schema this server
// understands. Schema 1 (implicit: the zero Schema field) is the
// 6-tuple era; schema 2 adds the custom-op fields (Ops, op-enabled
// arch tuples). Requests declaring a newer schema than the server
// supports are refused with 409 Conflict rather than silently
// misinterpreted — an op-aware coordinator must never have its op
// grids quietly evaluated op-free by an op-unaware worker.
const SchemaVersion = 2

// ExploreRequest asks for a design-space exploration. The zero value is
// the paper's full Table-3 run (full space × full suite, width 96).
type ExploreRequest struct {
	// Benchmarks restricts the suite (empty = all).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Sample > 1 keeps every Nth machine of the space.
	Sample int `json:"sample,omitempty"`
	// Width is the reference workload width (default 96).
	Width int `json:"width,omitempty"`
	// Archs, when non-empty, explores exactly these architectures
	// (positional tuples "a m r p2 l2 c") instead of the sampled full
	// space; Sample must then be unset. The baseline machine is NOT
	// appended implicitly — shard dispatch needs exact grids — but
	// speedups are still measured against it (evaluated out of grid
	// when absent, accounted in Stats.BaselineRuns). This is the wire
	// form the distributed coordinator (internal/dist) uses to farm
	// shards out to workers. With a custom-op catalog (Ops) the tuples
	// may carry an " ops=<hexmask>" suffix (cli.ParseArchOps).
	Archs []string `json:"archs,omitempty"`
	// Schema declares the request schema the sender speaks (see
	// SchemaVersion). Zero means 1, the 6-tuple era; senders set it only
	// when they use newer fields, keeping classic requests byte-identical
	// on the wire.
	Schema int `json:"schema,omitempty"`
	// Ops is the shared custom-op catalog (codec texts, see
	// ir.ParseFusedSpec) that the arch tuples' " ops=" masks index into.
	// Requires Schema >= 2. Part of the coalesce key: requests differing
	// only in Ops are different work and never share a job.
	Ops []string `json:"ops,omitempty"`
	// TraceParent propagates the submitter's trace ("00-<trace>-<span>-01",
	// same syntax as the traceparent header, which it overrides). The
	// job's spans then join that trace and come back in JobStatus.Spans.
	// Excluded from coalescing: it never affects the result.
	TraceParent string `json:"traceparent,omitempty"`
	// Cache, when "off", runs this job without the server's shared
	// evaluation cache — the distributed coordinator propagates its
	// operator's -cache=off fleet-wide with it. Excluded from
	// coalescing: results are bit-identical with or without the cache
	// (pinned by the golden cold/warm server tests), only the work
	// performed differs.
	Cache string `json:"cache,omitempty"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	benches, err := resolveBenches(req.Benchmarks)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Schema > SchemaVersion {
		// 409, not 400: the request is well-formed, this worker is just
		// too old to honor it — the coordinator should find another.
		writeErr(w, http.StatusConflict, fmt.Sprintf(
			"request schema %d exceeds supported %d (op-aware request on an op-unaware worker?)",
			req.Schema, SchemaVersion))
		return
	}
	if len(req.Ops) > 0 && req.Schema < 2 {
		writeErr(w, http.StatusBadRequest, "ops requires schema >= 2")
		return
	}
	if len(req.Archs) > 0 && req.Sample > 1 {
		writeErr(w, http.StatusBadRequest, "archs and sample are mutually exclusive")
		return
	}
	var opSet *machine.OpSet
	if len(req.Ops) > 0 {
		opSet, err = machine.ParseOpCatalog(req.Ops)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	var archs []machine.Arch
	for _, tuple := range req.Archs {
		a, err := cli.ParseArchOps(tuple, opSet)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		archs = append(archs, a)
	}
	if req.Sample < 1 {
		req.Sample = 1
	}
	if req.Width <= 0 {
		req.Width = 96
	}
	remote := remoteContext(r)
	if req.TraceParent != "" {
		if sc, ok := obs.ParseTraceParent(req.TraceParent); ok {
			remote = sc
		}
	}
	// The key carries exactly the result-affecting fields; worker counts,
	// caching and trace identity are excluded because the pipeline is
	// deterministic regardless of them.
	keyReq := req
	keyReq.TraceParent = ""
	keyReq.Cache = ""
	key := coalesceKey("explore", keyReq)
	cache := s.opts.Cache
	if req.Cache == "off" {
		cache = nil
	}
	s.respondSubmit(w, remote, "explore", key, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		res, err := core.Explore(ctx, core.ExploreOptions{
			Benchmarks:  benches,
			Archs:       archs,
			ExactArchs:  len(archs) > 0,
			Ops:         opSet,
			Sample:      req.Sample,
			Width:       req.Width,
			Parallelism: s.opts.EvalParallelism,
			Cache:       cache,
			Progress:    progressPublisher(j),
		})
		if err != nil {
			return nil, err
		}
		if cache != nil {
			s.noteCacheUse(benchNames(benches)...)
		}
		// The result is the exact schema dse.Save persists, so a client
		// can feed it straight back to cfp-explore -load / cfp-frontier.
		return res.JSON()
	})
}

// benchNames maps benchmarks to their cache-shard names.
func benchNames(bs []*bench.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// FitRequest asks for the paper's custom-fit loop: explore, then select
// the best architecture for the benchmarks under the cost cap.
type FitRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"` // empty = full suite
	CostCap    float64  `json:"cost_cap"`
	// Range > 0 backs off pure specialization: among feasible machines
	// within Range of the best mean speedup, pick the cheapest.
	Range  float64 `json:"range,omitempty"`
	Sample int     `json:"sample,omitempty"`
	Width  int     `json:"width,omitempty"`
	// Cache "off" bypasses the server's shared evaluation cache (see
	// ExploreRequest.Cache). Excluded from coalescing: result-neutral.
	Cache string `json:"cache,omitempty"`
}

// FitResultJSON is a fit job's payload.
type FitResultJSON struct {
	Best     string             `json:"best"`
	Cost     float64            `json:"cost"`
	Speedups map[string]float64 `json:"speedups"`
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	benches, err := resolveBenches(req.Benchmarks)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.CostCap <= 0 {
		writeErr(w, http.StatusBadRequest, "cost_cap must be positive")
		return
	}
	if req.Sample < 1 {
		req.Sample = 1
	}
	if req.Width <= 0 {
		req.Width = 96
	}
	keyReq := req
	keyReq.Cache = ""
	key := coalesceKey("fit", keyReq)
	cache := s.opts.Cache
	if req.Cache == "off" {
		cache = nil
	}
	s.respondSubmit(w, remoteContext(r), "fit", key, func(ctx context.Context, j *Job) (json.RawMessage, error) {
		fit, err := core.CustomFitCtx(ctx, core.FitOptions{
			Benchmarks:  benches,
			CostCap:     req.CostCap,
			Range:       req.Range,
			Sample:      req.Sample,
			Width:       req.Width,
			Parallelism: s.opts.EvalParallelism,
			Cache:       cache,
			Progress:    progressPublisher(j),
		})
		if err != nil {
			return nil, err
		}
		if cache != nil {
			s.noteCacheUse(benchNames(benches)...)
		}
		return json.Marshal(FitResultJSON{
			Best:     fit.Best.String(),
			Cost:     fit.Cost,
			Speedups: fit.Speedups,
		})
	})
}

// progressPublisher adapts the explorer's progress callback to the
// job's SSE stream.
func progressPublisher(j *Job) func(dse.ProgressInfo) {
	return func(p dse.ProgressInfo) {
		if data, err := json.Marshal(p); err == nil {
			j.setProgress(data)
		}
	}
}

// coalesceKey canonically encodes a request's result-affecting fields.
func coalesceKey(kind string, v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Unencodable requests simply never coalesce.
		return ""
	}
	return kind + ":" + string(data)
}
