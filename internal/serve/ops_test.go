package serve

import (
	"net/http"
	"testing"
	"time"

	"customfit/internal/dse"
)

// opCatalog is a tiny fixed catalog for wire tests (a paper MAC).
var opCatalog = []string{"mac/3/2:mul $0 $1;add %0 $2"}

// TestOpsRequestsNeverCoalesce pins the coalescing boundary of the
// op-set axis: two explore requests identical except for their Ops
// catalogs (present vs absent, and two different masks) must run as
// distinct jobs — op-aware and op-free work can never share a result.
func TestOpsRequestsNeverCoalesce(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})

	submit := func(req ExploreRequest) SubmitResponse {
		t.Helper()
		var sub SubmitResponse
		code := postJSON(t, ts.URL+"/v1/explore", req, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit returned %d, want 202", code)
		}
		return sub
	}

	plain := submit(ExploreRequest{
		Benchmarks: []string{"G"}, Width: 48,
		Archs: []string{"1 1 64 1 8 1"},
	})
	opAware := submit(ExploreRequest{
		Benchmarks: []string{"G"}, Width: 48,
		Archs:  []string{"1 1 64 1 8 1 ops=1"},
		Schema: SchemaVersion,
		Ops:    opCatalog,
	})
	if opAware.Coalesced || opAware.ID == plain.ID {
		t.Fatalf("op-aware request coalesced with op-free request (ids %s, %s)", plain.ID, opAware.ID)
	}
	// Same grid and catalog but mask 0 (tuple without the suffix):
	// differs from both above.
	maskZero := submit(ExploreRequest{
		Benchmarks: []string{"G"}, Width: 48,
		Archs:  []string{"1 1 64 1 8 1"},
		Schema: SchemaVersion,
		Ops:    opCatalog,
	})
	if maskZero.ID == plain.ID || maskZero.ID == opAware.ID {
		t.Fatalf("requests differing only in Ops share a job: %s %s %s", plain.ID, opAware.ID, maskZero.ID)
	}
	for _, id := range []string{plain.ID, opAware.ID, maskZero.ID} {
		if st := waitTerminal(t, ts.URL, id, 60*time.Second); st.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
	}
}

// TestOpsSchemaGate pins the version negotiation: requests declaring a
// schema newer than this server's are refused with 409 Conflict, and
// op catalogs without the schema bump are rejected outright.
func TestOpsSchemaGate(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})

	var e ErrorResponse
	code := postJSON(t, ts.URL+"/v1/explore",
		ExploreRequest{Benchmarks: []string{"G"}, Schema: SchemaVersion + 1}, &e)
	if code != http.StatusConflict {
		t.Fatalf("future-schema request returned %d, want 409", code)
	}

	code = postJSON(t, ts.URL+"/v1/explore",
		ExploreRequest{Benchmarks: []string{"G"}, Ops: opCatalog}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("ops without schema returned %d, want 400", code)
	}

	// An op-enabled tuple without a catalog cannot be resolved.
	code = postJSON(t, ts.URL+"/v1/explore",
		ExploreRequest{
			Benchmarks: []string{"G"},
			Archs:      []string{"1 1 64 1 8 1 ops=1"},
			Schema:     SchemaVersion,
		}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("op tuple without catalog returned %d, want 400", code)
	}
}

// TestOpAwareExploreEndToEnd runs a tiny op-aware exploration through
// the HTTP API and checks the op-enabled architecture comes back with
// its mask and catalog intact in the persisted-results payload.
func TestOpAwareExploreEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	code := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
		Benchmarks: []string{"A"}, Width: 48,
		Archs:  []string{"1 1 64 1 8 1", "1 1 64 1 8 1 ops=1"},
		Schema: SchemaVersion,
		Ops:    opCatalog,
	}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	res, err := dse.FromJSON(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Archs) != 2 {
		t.Fatalf("got %d archs, want 2", len(res.Archs))
	}
	if res.Archs[0].Ops.Empty() == res.Archs[1].Ops.Empty() {
		t.Fatalf("expected one op-free and one op-enabled arch, got %v", res.Archs)
	}
	for _, evs := range res.Eval {
		for _, ev := range evs {
			if ev.Failed {
				t.Errorf("evaluation failed on %v", ev.Arch)
			}
		}
	}
}
