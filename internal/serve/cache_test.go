package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/sched"
)

func cacheEntry(i int) evcache.Entry {
	return evcache.Entry{Unroll: 1 + i%4, Cycles: int64(100 + i), Runs: 1}
}

func TestCacheEndpoints(t *testing.T) {
	cache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	_, ts, col := newTestServer(t, Options{Workers: 1, Cache: cache})
	cache.Put("G", "k1", cacheEntry(1))

	// GET hit: entry + fingerprint header.
	resp, err := http.Get(ts.URL + "/v1/cache/G/k1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET hit status %s", resp.Status)
	}
	if fp := resp.Header.Get(fleetcache.FingerprintHeader); fp != sched.Fingerprint() {
		t.Errorf("fingerprint header %q, want %q", fp, sched.Fingerprint())
	}
	var e evcache.Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e != cacheEntry(1) {
		t.Fatalf("GET body = %+v, %v", e, err)
	}
	resp.Body.Close()

	// GET miss: 404 (still fingerprinted).
	resp, err = http.Get(ts.URL + "/v1/cache/G/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss status %s, want 404", resp.Status)
	}

	// Batched put + has via the client.
	cl := fleetcache.New(ts.URL, nil)
	if err := cl.StoreBatch("G", []evcache.Record{{Key: "k2", Entry: cacheEntry(2)}}); err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.Peek("G", "k2"); !ok || got != cacheEntry(2) {
		t.Errorf("put entry = %+v, %v", got, ok)
	}
	miss, err := cl.Missing("G", []string{"k1", "k2", "k3"})
	if err != nil || len(miss) != 1 || miss[0] != "k3" {
		t.Fatalf("Missing = %v, %v", miss, err)
	}

	if v := col.Counter("serve.cache_gets").Value(); v != 1 {
		t.Errorf("serve.cache_gets = %d, want 1", v)
	}
	if v := col.Counter("serve.cache_get_misses").Value(); v != 1 {
		t.Errorf("serve.cache_get_misses = %d, want 1", v)
	}
	if v := col.Counter("serve.cache_puts").Value(); v != 1 {
		t.Errorf("serve.cache_puts = %d, want 1", v)
	}
}

func TestCacheGCDropsUnreferencedShards(t *testing.T) {
	cache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, _, col := newTestServer(t, Options{
		Workers: 1, Cache: cache,
		CacheGCEntries: 10, CacheGCJobs: 2,
	})
	// Three shards, 6 entries each: over the 10-entry budget.
	for _, sh := range []string{"A", "B", "C"} {
		for i := 0; i < 6; i++ {
			cache.Put(sh, fmt.Sprintf("k%d", i), cacheEntry(i))
		}
	}
	// Recent jobs reference only B and C; A is unreferenced and must be
	// dropped to move back toward the budget.
	s.noteCacheUse("B", "C")
	s.noteCacheUse("B", "C")
	if cache.Contains("A", "k0") {
		t.Error("unreferenced shard A survived GC over budget")
	}
	if !cache.Contains("B", "k0") || !cache.Contains("C", "k0") {
		t.Error("referenced shard dropped by GC")
	}
	if v := col.Counter("serve.cache_gc_shards").Value(); v < 1 {
		t.Errorf("serve.cache_gc_shards = %d, want >= 1", v)
	}
	// Referenced shards are never dropped, even while still over budget:
	// B+C hold 12 > 10 entries, but both are in the window.
	if cache.Resident() != 12 {
		t.Errorf("Resident = %d, want 12 (only A dropped)", cache.Resident())
	}
}

// TestExploreCacheOff: a request carrying Cache:"off" must bypass the
// server's cache entirely — the fleet-wide -cache=off contract.
func TestExploreCacheOff(t *testing.T) {
	cache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	_, ts, col := newTestServer(t, Options{Workers: 1, Cache: cache})

	req := ExploreRequest{
		Benchmarks: []string{"G"},
		Width:      32,
		Archs:      []string{"2 1 64 1 4 1", "4 1 64 1 4 1"},
		Cache:      "off",
	}
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/explore", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if st := waitTerminal(t, ts.URL, sub.ID, 120*time.Second); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if n := cache.Resident(); n != 0 {
		t.Errorf("cache holds %d entries after a -cache=off job, want 0", n)
	}
	if v := col.Counter("evcache.misses").Value(); v != 0 {
		t.Errorf("evcache.misses = %d after a -cache=off job, want 0 (cache bypassed)", v)
	}
}
