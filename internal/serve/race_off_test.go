//go:build !race

package serve

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_on_test.go). The full-space golden test skips
// under the detector: instrumentation makes it minutes-slow without
// exercising any concurrency the fast tests do not.
const raceEnabled = false
