// Package serve is the cfp exploration service: an HTTP/JSON front end
// over the custom-fit toolchain (compile, simulate, explore, fit)
// backed by a bounded worker pool and job queue.
//
// Every POST /v1/{compile,simulate,explore,fit} submits a job and
// returns 202 with its id; clients poll GET /v1/jobs/{id} or stream
// GET /v1/jobs/{id}/events (server-sent events: "progress" snapshots,
// then one "done" carrying the terminal status). DELETE /v1/jobs/{id}
// cancels — promptly, because the whole evaluation stack underneath is
// context-threaded (see dse.ErrCancelled).
//
// Identical explore/fit requests coalesce onto one in-flight job (the
// pipeline is deterministic, so equal requests have equal answers), and
// concurrent distinct explorations still share work through the
// arch-signature memo and the optional persistent evaluation cache.
// When a cache is attached it is additionally served to the fleet:
// GET /v1/cache/{shard}/{key} and batched POST /v1/cache/{shard}
// (put/has) make this process a cache peer other workers read through
// and write behind to (see internal/fleetcache and docs/DISTRIBUTED.md),
// with fingerprint-gated admission and optional reference-counted GC
// (Options.CacheGCEntries).
// GET /healthz reports liveness (503 while draining); GET /metrics
// dumps the obs collector's counters, gauges and span totals.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"customfit/internal/dse"
	"customfit/internal/evcache"
	"customfit/internal/obs"
	olog "customfit/internal/obs/log"
	"customfit/internal/sched"
)

// Options configures a Server. The zero value serves with two job
// workers, a queue of 16, no persistent cache and the default metrics
// collector.
type Options struct {
	// Workers is the number of jobs run concurrently (default 2). Each
	// explore job additionally fans out EvalParallelism compile workers,
	// so total CPU use is roughly Workers × EvalParallelism.
	Workers int
	// QueueDepth bounds the submit queue (default 16); submits beyond it
	// are rejected with 503 rather than buffered without bound.
	QueueDepth int
	// EvalParallelism is the per-job compile worker count
	// (0 = GOMAXPROCS).
	EvalParallelism int
	// Cache is a pre-opened persistent evaluation cache shared by every
	// job (optional; caller keeps ownership and closes it after
	// Shutdown). When set it is also served to the fleet over
	// GET/POST /v1/cache/{shard} (see internal/fleetcache).
	Cache *evcache.Cache
	// CacheGCEntries, when > 0, bounds the shared cache's resident
	// entries: once exceeded, shards not referenced by any of the last
	// CacheGCJobs jobs (or cache requests) are dropped whole —
	// reference-counted GC for a long-lived server.
	CacheGCEntries int
	// CacheGCJobs is the GC reference window (default 32).
	CacheGCJobs int
	// MaxJobs bounds retained terminal jobs (default 256); the oldest
	// finished jobs are evicted first. Live jobs are never evicted.
	MaxJobs int
	// Collector backs /metrics. Nil uses the installed obs collector,
	// installing a fresh one if none is active (a server wants its
	// counters even when the operator asked for no -metrics file).
	Collector *obs.Collector
	// SpanLimit bounds the spans returned per traced job (default
	// 16384); overflow is dropped and counted on serve.spans_dropped.
	SpanLimit int
	// Logger receives the server's structured log entries. Nil falls
	// back to the process-global obs/log logger at each call (so a
	// logger installed by cli.Tool is picked up without plumbing).
	Logger *olog.Logger
}

// Server is the exploration service. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	opts      Options
	mux       *http.ServeMux
	collector *obs.Collector
	started   time.Time

	queue     chan *Job
	wg        sync.WaitGroup
	baseCtx   context.Context
	baseStop  context.CancelFunc
	closeOnce sync.Once

	// gc is the shared cache's reference-counted GC (nil when
	// CacheGCEntries is 0).
	gc *cacheGC

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // insertion order, for eviction
	inflight map[string]*Job
	nextID   int64
}

// New starts a Server's worker pool. Callers must eventually Shutdown.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 256
	}
	if opts.SpanLimit <= 0 {
		opts.SpanLimit = 16384
	}
	col := opts.Collector
	if col == nil {
		col = obs.Active()
	}
	if col == nil {
		col = obs.NewCollector()
		obs.Install(col)
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		collector: col,
		started:   time.Now(),
		queue:     make(chan *Job, opts.QueueDepth),
		baseCtx:   ctx,
		baseStop:  stop,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		gc:        newCacheGC(opts.CacheGCEntries, opts.CacheGCJobs),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/fit", s.handleFit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/cache/{shard}/{key}", s.handleCacheGet)
	s.mux.HandleFunc("POST /v1/cache/{shard}", s.handleCachePut)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler (mountable under httptest
// or an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains: new submits are rejected (and /healthz turns 503),
// queued and running jobs run to completion, workers exit. If ctx
// expires first, the remaining jobs are cancelled (they finish as
// "cancelled" promptly — the stack is context-threaded) and Shutdown
// returns ctx.Err() after they do.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.logger().Info("draining").Log()
	s.closeOnce.Do(func() { close(s.queue) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseStop()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job and classifies its outcome. Cancellation
// (anything wrapping dse.ErrCancelled or the context errors) is
// recorded as "cancelled", not "failed" — operators must be able to
// tell aborted work from genuinely broken requests.
//
// The job's serve.job span continues the submitter's trace when the
// request carried a traceparent, and the span rides j's context so the
// whole evaluation stack underneath (dse.explore, evaluate, compile,
// sched, sim) parents under it. After the job ends, its span subtree is
// removed from the collector — keeping a long-lived server's event
// buffer bounded — and, for traced jobs, returned in JobStatus.Spans.
func (s *Server) runJob(j *Job) {
	if !j.startRunning() {
		s.clearInflight(j)
		return
	}
	start := time.Now()
	sp := obs.StartSpanIn(j.remote, "serve.job")
	sp.Str("kind", j.Kind).Str("id", j.ID)
	result, err := j.run(obs.ContextWithSpan(j.ctx, sp), j)
	sp.End()
	evs := sp.TakeSubtree()
	if j.remote.Valid() && len(evs) > 0 {
		if len(evs) > s.opts.SpanLimit {
			obs.GetCounter("serve.spans_dropped").Add(int64(len(evs) - s.opts.SpanLimit))
			evs = evs[:s.opts.SpanLimit]
		}
		j.setSpans(obs.ToWire(evs))
	}
	s.clearInflight(j)
	var state State
	switch {
	case err == nil:
		state = StateDone
		j.finish(StateDone, result, "")
		obs.GetCounter("serve.jobs_done").Inc()
	case errors.Is(err, dse.ErrCancelled), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		state = StateCancelled
		j.finish(StateCancelled, nil, err.Error())
		obs.GetCounter("serve.jobs_cancelled").Inc()
	default:
		state = StateFailed
		j.finish(StateFailed, nil, err.Error())
		obs.GetCounter("serve.jobs_failed").Inc()
	}
	s.logger().Info("job finished").
		Str("job", j.ID).Str("kind", j.Kind).Str("state", string(state)).
		Dur("dur", time.Since(start)).
		Str("trace", sp.Context().Trace.String()).
		Err(err).Log()
}

// logger returns the server's log sink: the explicit Options.Logger, or
// the process-global one at call time (nil — a silent no-op chain —
// when neither is configured).
func (s *Server) logger() *olog.Logger {
	if s.opts.Logger != nil {
		return s.opts.Logger
	}
	return olog.Default()
}

// clearInflight drops the job from the coalescing index once it can no
// longer absorb newcomers.
func (s *Server) clearInflight(j *Job) {
	if j.coalesceKey == "" {
		return
	}
	s.mu.Lock()
	if s.inflight[j.coalesceKey] == j {
		delete(s.inflight, j.coalesceKey)
	}
	s.mu.Unlock()
}

var (
	errDraining  = errors.New("serve: shutting down, not accepting jobs")
	errQueueFull = errors.New("serve: job queue full")
)

// submit creates (or coalesces onto) a job. coalesceKey must be a
// canonical encoding of everything that affects the job's result —
// identical keys share one execution and one job id. remote is the
// submitter's propagated span context (zero = untraced); a request that
// coalesces onto an in-flight job keeps that job's original trace — the
// newcomer's traceparent is dropped, since the work runs once.
func (s *Server) submit(kind, coalesceKey string, remote obs.SpanContext, run func(ctx context.Context, j *Job) (json.RawMessage, error)) (j *Job, coalesced bool, err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, errDraining
	}
	if coalesceKey != "" {
		if live, ok := s.inflight[coalesceKey]; ok {
			s.mu.Unlock()
			obs.GetCounter("serve.jobs_coalesced").Inc()
			return live, true, nil
		}
	}
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j = &Job{
		ID:          id,
		Kind:        kind,
		run:         run,
		ctx:         ctx,
		cancel:      cancel,
		coalesceKey: coalesceKey,
		created:     time.Now(),
		remote:      remote,
		state:       StateQueued,
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		obs.GetCounter("serve.queue_rejects").Inc()
		s.logger().Warn("queue full, job rejected").Str("kind", kind).Log()
		return nil, false, errQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	if coalesceKey != "" {
		s.inflight[coalesceKey] = j
	}
	s.evictLocked()
	s.mu.Unlock()
	obs.GetCounter("serve.jobs_submitted").Inc()
	s.logger().Debug("job accepted").
		Str("job", id).Str("kind", kind).
		Str("trace", remote.Trace.String()).Log()
	return j, false, nil
}

// evictLocked trims the oldest terminal jobs beyond MaxJobs.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) > s.opts.MaxJobs && j.State().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// job looks up a job by id.
func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// SubmitResponse acknowledges a submit.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Coalesced marks that an identical request was already in flight
	// and this id refers to its job.
	Coalesced bool `json:"coalesced,omitempty"`
}

// remoteContext extracts the submitter's span context from the
// traceparent request header (zero when absent or malformed — an
// unparseable header degrades to an untraced job, never an error).
func remoteContext(r *http.Request) obs.SpanContext {
	sc, _ := obs.ParseTraceParent(r.Header.Get("traceparent"))
	return sc
}

// respondSubmit runs the common tail of every submit handler.
func (s *Server) respondSubmit(w http.ResponseWriter, remote obs.SpanContext, kind, key string, run func(ctx context.Context, j *Job) (json.RawMessage, error)) {
	j, coalesced, err := s.submit(kind, key, remote, run)
	switch {
	case errors.Is(err, errDraining), errors.Is(err, errQueueFull):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID, State: j.State(), Coalesced: coalesced})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if j.requestCancel() {
		obs.GetCounter("serve.cancel_requests").Inc()
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleJobEvents streams SSE: replayed + live "progress" events, then
// exactly one "done" with the terminal JobStatus. The job finishing
// closes the subscription channel; the handler then emits "done" from a
// fresh Status read, so the terminal event cannot be lost to a full
// buffer. Every event carries an id, and a reconnecting client sending
// Last-Event-ID (the standard EventSource behavior) skips progress it
// already consumed; the done event is re-sent regardless, so a client
// that drops mid-job can never miss the terminal state.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// A malformed header is treated as a fresh connection (replay all).
	lastID, _ := strconv.ParseInt(r.Header.Get("Last-Event-ID"), 10, 64)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ch, unsubscribe := j.subscribe(lastID)
	defer unsubscribe()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				data, _ := json.Marshal(j.Status())
				fmt.Fprintf(w, "id: %d\nevent: done\ndata: %s\n\n", j.doneEventID(), data)
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// HealthResponse is the GET /healthz body. Beyond liveness it carries
// what a distributed coordinator (internal/dist) needs for capacity
// discovery and fleet admission: the job-worker capacity and the
// backend fingerprint (a coordinator refuses workers whose fingerprint
// differs from its own — mixed backends would break the determinism
// guarantee).
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "draining"
	Jobs   int    `json:"jobs"`
	Queued int    `json:"queued"`
	// Running is the in-flight job count (jobs currently executing).
	// Together with Queued it lets a coordinator or load balancer prefer
	// idle workers: Running+Queued is the worker's present load.
	Running int `json:"running"`
	// Workers is the concurrent-job capacity (Options.Workers).
	Workers int `json:"workers"`
	// Fingerprint is sched.Fingerprint(): the backend's code-generation
	// identity.
	Fingerprint string `json:"fingerprint"`
}

// jobStateCounts tallies retained jobs by lifecycle state.
func (s *Server) jobStateCounts() map[State]int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	counts := make(map[State]int, 5)
	for _, j := range jobs {
		counts[j.State()]++
	}
	return counts
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	n := len(s.jobs)
	s.mu.Unlock()
	h := HealthResponse{
		Status:      "ok",
		Jobs:        n,
		Queued:      len(s.queue),
		Running:     s.jobStateCounts()[StateRunning],
		Workers:     s.opts.Workers,
		Fingerprint: sched.Fingerprint(),
	}
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// setLiveGauges refreshes the collector's live server-state gauges so
// every scrape (JSON or Prometheus) sees current values rather than
// whatever the last exploration left behind.
func (s *Server) setLiveGauges() {
	counts := s.jobStateCounts()
	c := s.collector
	c.SetGauge("serve.queue_depth", float64(len(s.queue)))
	c.SetGauge("serve.worker_capacity", float64(s.opts.Workers))
	c.SetGauge("serve.active_workers", float64(counts[StateRunning]))
	c.SetGauge("serve.jobs_state_queued", float64(counts[StateQueued]))
	c.SetGauge("serve.jobs_state_running", float64(counts[StateRunning]))
	c.SetGauge("serve.jobs_state_done", float64(counts[StateDone]))
	c.SetGauge("serve.jobs_state_failed", float64(counts[StateFailed]))
	c.SetGauge("serve.jobs_state_cancelled", float64(counts[StateCancelled]))
	c.SetGauge("serve.uptime_seconds", time.Since(s.started).Seconds())
	if s.opts.Cache != nil {
		c.SetGauge("serve.cache_resident_entries", float64(s.opts.Cache.Resident()))
	}
}

// handleMetrics serves the collector in two formats, content-negotiated
// on Accept: Prometheus text exposition (version 0.0.4) when the client
// asks for text/plain or openmetrics (or ?format=prometheus), the
// original JSON dump otherwise. Stock Prometheus sends an Accept header
// matching the former, so a fleet is scrapeable unconfigured.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.setLiveGauges()
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") ||
		r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.collector.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.collector.WriteMetrics(w); err != nil {
		// Too late for a status code; the truncated body says enough.
		return
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
