package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"customfit/internal/obs"
)

// postJSONTraced is postJSON with a traceparent header attached.
func postJSONTraced(t *testing.T, url, traceparent string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestTracedJobReturnsSpans pins the worker half of cross-process
// tracing: a compile submitted with a traceparent header finishes with
// its span subtree in the job status — a serve.job root carrying the
// caller's trace ID, with the pipeline phases underneath.
func TestTracedJobReturnsSpans(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	const traceHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	tp := "00-" + traceHex + "-00f067aa0ba902b7-01"
	var sub SubmitResponse
	if code := postJSONTraced(t, ts.URL+"/v1/compile", tp,
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	if len(st.Spans) == 0 {
		t.Fatal("traced job returned no spans")
	}
	var root *obs.WireSpan
	names := map[string]bool{}
	for i := range st.Spans {
		w := &st.Spans[i]
		names[w.Name] = true
		if w.TraceID != traceHex {
			t.Errorf("span %s has trace %s, want %s", w.Name, w.TraceID, traceHex)
		}
		if w.Name == "serve.job" {
			root = w
		}
	}
	if root == nil {
		t.Fatalf("no serve.job root in %v", names)
	}
	if root.Parent != "00f067aa0ba902b7" {
		t.Errorf("serve.job parent %s, want the caller's span ID", root.Parent)
	}
	for _, phase := range []string{"frontend", "compile"} {
		if !names[phase] {
			t.Errorf("traced compile missing %q span (got %v)", phase, names)
		}
	}
}

// TestUntracedJobReturnsNoSpans: without a traceparent, the job result
// must not carry spans (local work stays local).
func TestUntracedJobReturnsNoSpans(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s, want done", st.State)
	}
	if len(st.Spans) != 0 {
		t.Errorf("untraced job returned %d spans, want 0", len(st.Spans))
	}
}

// TestTraceParentBodyField: the explore request's traceparent JSON
// field works without the header (and is excluded from coalescing, so
// two differently-traced identical requests still coalesce).
func TestTraceParentBodyField(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	const traceHex = "0af7651916cd43dd8448eb211c80319c"
	req := ExploreRequest{
		Benchmarks:  []string{"G"},
		Sample:      12,
		Width:       32,
		TraceParent: "00-" + traceHex + "-b7ad6b7169203331-01",
	}
	var sub SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/explore", req, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	// An identical request with a different traceparent coalesces.
	req2 := req
	req2.TraceParent = "00-ffffffffffffffffffffffffffffffff-b7ad6b7169203331-01"
	var sub2 SubmitResponse
	if code := postJSON(t, ts.URL+"/v1/explore", req2, &sub2); code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}
	if sub2.ID != sub.ID || !sub2.Coalesced {
		t.Errorf("differently-traced identical explores did not coalesce: %+v vs %+v", sub, sub2)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	if len(st.Spans) == 0 {
		t.Fatal("body-field traced explore returned no spans")
	}
	names := map[string]bool{}
	for _, w := range st.Spans {
		names[w.Name] = true
		if w.TraceID != traceHex {
			t.Errorf("span %s trace %s, want %s (first submitter wins)", w.Name, w.TraceID, traceHex)
		}
	}
	for _, phase := range []string{"serve.job", "dse.explore", "evaluate"} {
		if !names[phase] {
			t.Errorf("traced explore missing %q span (got %v)", phase, names)
		}
	}
}

// TestSpanLimitTruncates: a tiny SpanLimit drops overflow and counts it.
func TestSpanLimitTruncates(t *testing.T) {
	_, ts, col := newTestServer(t, Options{Workers: 1, SpanLimit: 2})
	tp := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	var sub SubmitResponse
	if code := postJSONTraced(t, ts.URL+"/v1/compile", tp,
		CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s, want done", st.State)
	}
	if len(st.Spans) != 2 {
		t.Errorf("got %d spans, want SpanLimit=2", len(st.Spans))
	}
	_ = col // dropped-span counter lives on the collector's metrics dump
	doc := fetchMetrics(t, ts.URL)
	if doc.Counters["serve.spans_dropped"] <= 0 {
		t.Errorf("serve.spans_dropped = %d, want > 0", doc.Counters["serve.spans_dropped"])
	}
}

// TestHealthzReportsLoad: queue depth and in-flight count are live.
func TestHealthzReportsLoad(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	blocked, _, err := s.submit("block", "", obs.SpanContext{}, func(ctx context.Context, _ *Job) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := s.submit("block2", "", obs.SpanContext{}, func(ctx context.Context, _ *Job) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first job to be running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := fetchHealth(t, ts.URL)
		if h.Running == 1 && h.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never showed running=1 queued>=1: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	waitTerminal(t, ts.URL, blocked.ID, 10*time.Second)
	waitTerminal(t, ts.URL, queued.ID, 10*time.Second)
	h := fetchHealth(t, ts.URL)
	if h.Running != 0 || h.Queued != 0 {
		t.Errorf("idle healthz %+v, want running=0 queued=0", h)
	}
}

func fetchHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMetricsContentNegotiation: /metrics answers JSON by default and
// Prometheus text when asked, and the text parses cleanly.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	var sub SubmitResponse
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Bench: "A", Arch: "2 1 64 1 4 1"}, &sub)
	waitTerminal(t, ts.URL, sub.ID, 30*time.Second)

	// Default: JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	var doc map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics not JSON (ct %q, err %v)", ct, err)
	}

	// Accept: text/plain → Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prometheus content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := obs.LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics prometheus output does not lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"cfp_serve_queue_depth",
		"cfp_serve_active_workers",
		"cfp_serve_uptime_seconds",
		"cfp_serve_jobs_state_done",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// ?format=prometheus works without the header.
	resp2, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("?format=prometheus content type %q", ct)
	}
}
