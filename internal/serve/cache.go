package serve

import (
	"fmt"
	"net/http"
	"sync"

	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/obs"
	"customfit/internal/sched"
)

// This file is the serving side of the fleet-wide evaluation cache
// (see internal/fleetcache for the protocol and client): two endpoints
// exposing Options.Cache to peers, plus reference-counted GC keeping a
// long-lived server's resident entries bounded by what recent jobs
// actually touch.

// handleCacheGet serves GET /v1/cache/{shard}/{key}. Every response
// carries the backend fingerprint so clients can refuse skewed
// entries; a server without a cache answers 404 — to a read-through
// client that is just a miss.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(fleetcache.FingerprintHeader, sched.Fingerprint())
	if s.opts.Cache == nil {
		writeErr(w, http.StatusNotFound, "no evaluation cache attached")
		return
	}
	shard, key := r.PathValue("shard"), r.PathValue("key")
	e, ok := s.opts.Cache.Get(shard, key)
	if !ok {
		obs.GetCounter("serve.cache_get_misses").Inc()
		writeErr(w, http.StatusNotFound, "no such entry")
		return
	}
	obs.GetCounter("serve.cache_gets").Inc()
	s.noteCacheUse(shard)
	writeJSON(w, http.StatusOK, e)
}

// handleCachePut serves POST /v1/cache/{shard}: a batched put and/or
// has-check (fleetcache.PutRequest). Version-skewed batches are
// refused with 409 — the cache-tier analogue of the coordinator
// refusing fingerprint-mismatched workers.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if s.opts.Cache == nil {
		writeErr(w, http.StatusNotFound, "no evaluation cache attached")
		return
	}
	var req fleetcache.PutRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Fingerprint != sched.Fingerprint() || req.Schema != evcache.SchemaVersion {
		obs.GetCounter("serve.cache_put_refused").Inc()
		writeErr(w, http.StatusConflict, fmt.Sprintf(
			"cache admission refused: sender fingerprint/schema %q/%d vs server %q/%d (mixed backends would poison fleet results)",
			req.Fingerprint, req.Schema, sched.Fingerprint(), evcache.SchemaVersion))
		return
	}
	shard := r.PathValue("shard")
	resp := fleetcache.PutResponse{}
	if len(req.Put) > 0 {
		// The local store's StoreBatch cannot fail.
		_ = s.opts.Cache.StoreBatch(shard, req.Put)
		resp.Accepted = len(req.Put)
		obs.GetCounter("serve.cache_puts").Add(int64(len(req.Put)))
	}
	if len(req.Has) > 0 {
		resp.Missing, _ = s.opts.Cache.Missing(shard, req.Has)
	}
	s.noteCacheUse(shard)
	writeJSON(w, http.StatusOK, resp)
}

// cacheGC reference-counts shard use over a sliding window of recent
// jobs (explore/fit jobs reference their benchmarks' shards; cache
// endpoint traffic references the shard it touches). When the shared
// cache's resident entries exceed the budget, shards nothing in the
// window references are dropped whole — entries a live fleet still
// wants stay hot, abandoned job residue is reclaimed.
type cacheGC struct {
	limit int // resident-entry budget

	mu     sync.Mutex
	window []map[string]bool // ring: one slot per recent reference set
	next   int
	refs   map[string]int // shard -> live window slots referencing it
}

func newCacheGC(limit, jobs int) *cacheGC {
	if limit <= 0 {
		return nil
	}
	if jobs <= 0 {
		jobs = 32
	}
	return &cacheGC{limit: limit, window: make([]map[string]bool, jobs), refs: map[string]int{}}
}

// note records one reference set, retiring the oldest window slot.
func (g *cacheGC) note(shards ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for sh := range g.window[g.next] {
		if g.refs[sh]--; g.refs[sh] <= 0 {
			delete(g.refs, sh)
		}
	}
	cur := make(map[string]bool, len(shards))
	for _, sh := range shards {
		if !cur[sh] {
			cur[sh] = true
			g.refs[sh]++
		}
	}
	g.window[g.next] = cur
	g.next = (g.next + 1) % len(g.window)
}

// unreferenced filters names down to shards with zero window refs.
func (g *cacheGC) unreferenced(names []string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for _, n := range names {
		if g.refs[n] == 0 {
			out = append(out, n)
		}
	}
	return out
}

// noteCacheUse records shard references from one job or cache request
// and, past the resident budget, drops unreferenced shards until back
// under it (or none are droppable — referenced shards are never
// dropped, so a hot working set larger than the budget stays whole).
func (s *Server) noteCacheUse(shards ...string) {
	if s.gc == nil || s.opts.Cache == nil {
		return
	}
	s.gc.note(shards...)
	cache := s.opts.Cache
	if cache.Resident() <= s.gc.limit {
		return
	}
	for _, name := range s.gc.unreferenced(cache.ShardNames()) {
		if cache.Resident() <= s.gc.limit {
			break
		}
		if err := cache.DropShard(name); err == nil {
			obs.GetCounter("serve.cache_gc_shards").Inc()
			s.logger().Debug("cache shard dropped by GC").Str("shard", name).Log()
		}
	}
}
