package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"customfit/internal/obs"
)

// State is a job's lifecycle phase. Transitions are
// queued → running → {done, failed, cancelled}, with cancellation also
// possible straight from queued.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state admits no further transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one server-sent event on a job's stream: "progress" carries
// a snapshot, "done" the terminal JobStatus. ID is the job-scoped SSE
// event id (monotonically increasing), so a client that reconnects with
// Last-Event-ID can tell replayed state from new state.
type Event struct {
	Name string
	ID   int64
	Data json.RawMessage
}

// JobStatus is the wire form of a job, returned by GET /v1/jobs/{id}
// and as the "done" SSE event.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Error is set for failed and cancelled jobs.
	Error string `json:"error,omitempty"`
	// Progress is the latest progress snapshot (explore/fit jobs).
	Progress json.RawMessage `json:"progress,omitempty"`
	// Result is the job's payload once done: the compile/simulate
	// response object, the exploration's full persisted-results JSON, or
	// the fit selection.
	Result json.RawMessage `json:"result,omitempty"`
	// Spans carries the job's telemetry spans when the submit carried a
	// traceparent (the dist coordinator grafts them under its own shard
	// span for one fleet-wide trace). Populated only on terminal jobs.
	Spans []obs.WireSpan `json:"spans,omitempty"`
}

// Job is one queued unit of work. All mutable fields are guarded by mu;
// the identity fields are written once before the job is published.
type Job struct {
	ID   string
	Kind string

	// run does the work; its ctx is cancelled by DELETE and by server
	// shutdown past the drain deadline. It receives the job itself so
	// long runners can publish progress.
	run    func(ctx context.Context, j *Job) (json.RawMessage, error)
	ctx    context.Context
	cancel context.CancelFunc
	// coalesceKey indexes the server's in-flight map ("" = never
	// coalesced).
	coalesceKey string
	created     time.Time
	// remote is the submitter's propagated span context (zero when the
	// request carried no traceparent). When valid, the job's spans are
	// recorded under the remote trace and returned in JobStatus.Spans.
	remote obs.SpanContext

	mu       sync.Mutex
	state    State
	errMsg   string
	result   json.RawMessage
	progress json.RawMessage
	spans    []obs.WireSpan
	subs     map[chan Event]struct{}
	// seq numbers the job's SSE events; progressSeq/doneSeq remember
	// which ids the latest progress snapshot and the terminal event
	// carry, so reconnects with Last-Event-ID skip already-seen replays
	// (the done event is always re-sent — it must never be missed).
	seq         int64
	progressSeq int64
	doneSeq     int64
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.ID,
		Kind:     j.Kind,
		State:    j.state,
		Error:    j.errMsg,
		Progress: j.progress,
		Result:   j.result,
		Spans:    j.spans,
	}
}

// setSpans stores the job's captured telemetry spans. Must run before
// finish so the terminal status (polled or streamed) carries them.
func (j *Job) setSpans(spans []obs.WireSpan) {
	j.mu.Lock()
	j.spans = spans
	j.mu.Unlock()
}

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// startRunning moves queued → running. It returns false when the job
// was cancelled while waiting in the queue, in which case the worker
// must skip it.
func (j *Job) startRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// setProgress records and publishes a progress snapshot. Publishes are
// lossy (a slow subscriber drops intermediate snapshots, never the
// terminal event).
func (j *Job) setProgress(snapshot json.RawMessage) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.progress = snapshot
	j.seq++
	j.progressSeq = j.seq
	// Send under the lock: every send and close of a subscriber channel
	// holds j.mu, so finish can never close a channel mid-send.
	ev := Event{Name: "progress", ID: j.seq, Data: snapshot}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes every subscriber
// by closing its channel (the SSE handler then re-reads Status and
// emits the "done" event, so the terminal notification can never be
// dropped by a full buffer).
func (j *Job) finish(state State, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.seq++
	j.doneSeq = j.seq
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
}

// subscribe registers an SSE listener. The returned channel delivers
// progress events and is closed once the job reaches a terminal state
// (including before the call — a subscriber to a finished job gets an
// immediately closed channel). afterID is the reconnecting client's
// Last-Event-ID (0 for a fresh connection): the stored progress
// snapshot is replayed only when it is newer, so reconnects never see
// state they already consumed. unsubscribe is idempotent.
func (j *Job) subscribe(afterID int64) (ch chan Event, unsubscribe func()) {
	ch = make(chan Event, 8)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	if j.progress != nil && j.progressSeq > afterID {
		ch <- Event{Name: "progress", ID: j.progressSeq, Data: j.progress}
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
		}
		j.mu.Unlock()
	}
}

// doneEventID returns the SSE id of the terminal event (meaningful once
// the job is terminal; monotonically the largest id the job assigns).
func (j *Job) doneEventID() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneSeq
}

// requestCancel cancels the job: immediately terminal when still
// queued, via context when running (the worker then finishes it as
// cancelled). Reports whether the job was still live.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateQueued:
		j.finish(StateCancelled, nil, "cancelled before starting")
		return true
	case StateRunning:
		j.cancel()
		return true
	default:
		return false
	}
}
