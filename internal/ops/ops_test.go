package ops

import (
	"reflect"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

// prepared compiles and prepares every benchmark kernel at unroll 1.
func preparedKernels(t *testing.T) map[string]*ir.Func {
	t.Helper()
	out := map[string]*ir.Func{}
	for _, b := range bench.All() {
		fn, err := cc.CompileKernel(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		g, err := opt.Prepare(fn, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		out[b.Name] = g
	}
	return out
}

func mineAll(t *testing.T, kernels map[string]*ir.Func) []Candidate {
	t.Helper()
	acc := map[string]*Candidate{}
	for _, b := range bench.All() {
		Mine(kernels[b.Name], func(string) float64 { return 1 }, acc)
	}
	return Rank(acc)
}

// TestMinerCandidateBounds checks every mined candidate against the
// template's structural constraints: a valid spec, operand count within
// the fused-unit port budget, 2..4 internal steps, a positive saving,
// and the chained-datapath latency model.
func TestMinerCandidateBounds(t *testing.T) {
	kernels := preparedKernels(t)
	cands := mineAll(t, kernels)
	if len(cands) == 0 {
		t.Fatal("mining the full suite found no candidates")
	}
	for _, c := range cands {
		if err := c.Spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", c.Spec, err)
		}
		if c.Spec.NIn < 2 || c.Spec.NIn > machine.MaxFusedIn {
			t.Errorf("%s: NIn %d outside [2, %d]", c.Spec, c.Spec.NIn, machine.MaxFusedIn)
		}
		if n := len(c.Spec.Steps); n < 2 || n > 4 {
			t.Errorf("%s: %d steps outside [2, 4]", c.Spec, n)
		}
		if c.Saving < 1 {
			t.Errorf("%s: saving %d, fusion must save latency", c.Spec, c.Saving)
		}
		if want := c.Spec.ChainLatency(); c.Spec.Lat != want {
			t.Errorf("%s: Lat %d, chained model says %d", c.Spec, c.Spec.Lat, want)
		}
		if c.Score != c.Count*float64(c.Saving) {
			t.Errorf("%s: score %g != count %g × saving %d", c.Spec, c.Score, c.Count, c.Saving)
		}
	}
}

// TestMinerDeterminism pins mining as a pure function of the input:
// two independent passes over the same kernels produce identical
// ranked candidate lists.
func TestMinerDeterminism(t *testing.T) {
	a := mineAll(t, preparedKernels(t))
	b := mineAll(t, preparedKernels(t))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mining is not deterministic: %d vs %d candidates", len(a), len(b))
	}
}

// TestRewriteConvexity exercises the convexity requirement end to end:
// rewriting every kernel with its own mined catalog must leave a
// well-formed function (a non-convex cluster would fuse across an
// escaping intermediate and break the def-before-use invariant that
// Verify checks).
func TestRewriteConvexity(t *testing.T) {
	kernels := preparedKernels(t)
	for _, b := range bench.All() {
		acc := map[string]*Candidate{}
		Mine(kernels[b.Name], func(string) float64 { return 1 }, acc)
		set := Select(Rank(acc), 4)
		if set == nil {
			continue
		}
		cfg := machine.Arch{}.WithOps(set, set.FullMask()).Ops
		fused := Rewrite(kernels[b.Name], cfg)
		if fused == 0 {
			t.Errorf("%s: mined %d ops but rewrote nothing", b.Name, set.Len())
		}
		if err := kernels[b.Name].Verify(); err != nil {
			t.Errorf("%s: rewritten kernel fails verification: %v", b.Name, err)
		}
	}
}

// TestRewriteEmptyConfigIsIdentity pins the -ops=off invariant at the
// lowest level: an empty op config rewrites nothing.
func TestRewriteEmptyConfigIsIdentity(t *testing.T) {
	kernels := preparedKernels(t)
	for name, k := range kernels {
		if n := Rewrite(k, machine.OpConfig{}); n != 0 {
			t.Errorf("%s: empty config fused %d clusters", name, n)
		}
	}
}
