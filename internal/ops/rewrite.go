package ops

import (
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

// Rewrite replaces matched dataflow clusters in f with single fused
// instructions for every op the architecture's config enables,
// returning how many rewrites it performed. Like the backend's min/max
// repertoire fusion, it is a per-architecture transformation: it runs
// on the backend's working clone, never on the shared prepared IR.
//
// Matching is structural and positional (the miner canonicalizes specs
// from the same cleaned IR the rewriter sees, so positional matching
// re-finds every mined occurrence), deterministic (blocks and roots in
// program order, specs in canonical catalog order, first match wins),
// and safe: an interior value is fused away only when every use of it
// sits inside the matched cluster and it is dead across the block
// boundary.
func Rewrite(f *ir.Func, cfg machine.OpConfig) int {
	specs := cfg.Enabled()
	if len(specs) == 0 {
		return 0
	}
	lv := opt.ComputeLiveness(f)
	total := 0
	for _, b := range f.Blocks {
		total += rewriteBlock(b, specs, lv)
	}
	return total
}

// matcher holds one block's indices during matching.
type matcher struct {
	instrs   []*ir.Instr
	defIdx   map[ir.Reg]int
	defCount map[ir.Reg]int
	uses     map[ir.Reg][]int // body reads, by instruction index
	termUse  map[ir.Reg]bool
	consumed []bool // instruction already part of a fused rewrite
}

func rewriteBlock(b *ir.Block, specs []*ir.FusedSpec, lv *opt.Liveness) int {
	m := &matcher{
		instrs:   b.Instrs,
		defIdx:   map[ir.Reg]int{},
		defCount: map[ir.Reg]int{},
		uses:     map[ir.Reg][]int{},
		termUse:  map[ir.Reg]bool{},
		consumed: make([]bool, len(b.Instrs)),
	}
	for i, in := range b.Instrs {
		if in.Op.HasDest() {
			m.defIdx[in.Dest] = i
			m.defCount[in.Dest]++
		}
		if in.Op.IsTerminator() {
			for _, a := range in.Args {
				if a.IsReg() {
					m.termUse[a.Reg] = true
				}
			}
			continue
		}
		for _, a := range in.Args {
			if a.IsReg() {
				m.uses[a.Reg] = append(m.uses[a.Reg], i)
			}
		}
	}
	deleted := make([]bool, len(b.Instrs))
	n := 0
	for root := range b.Instrs {
		if m.consumed[root] {
			continue
		}
		for _, spec := range specs {
			fused, interiors, ok := m.match(b, spec, root, lv)
			if !ok {
				continue
			}
			b.Instrs[root] = fused
			for _, i := range interiors {
				deleted[i] = true
			}
			n++
			break
		}
	}
	if n > 0 {
		kept := b.Instrs[:0]
		for i, in := range b.Instrs {
			if !deleted[i] {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	return n
}

// match tries to root spec's final step at instruction index root. On
// success it returns the replacement fused instruction and the interior
// member indices to delete.
func (m *matcher) match(b *ir.Block, spec *ir.FusedSpec, root int, lv *opt.Liveness) (*ir.Instr, []int, bool) {
	last := len(spec.Steps) - 1
	stepAt := make([]int, len(spec.Steps))
	for i := range stepAt {
		stepAt[i] = -1
	}
	instrStep := map[int]int{}
	ext := make([]ir.Operand, spec.NIn)
	extSet := make([]bool, spec.NIn)

	var bindStep func(step, at int) bool
	bindStep = func(step, at int) bool {
		if stepAt[step] >= 0 {
			return stepAt[step] == at // shared step: must be the same instr
		}
		if s, taken := instrStep[at]; taken && s != step {
			return false
		}
		in := m.instrs[at]
		if m.consumed[at] || in.Op != spec.Steps[step].Op {
			return false
		}
		stepAt[step], instrStep[at] = at, step
		st := spec.Steps[step]
		for ai, ref := range []int{st.A, st.B} {
			arg := in.Args[ai]
			if ir.IsStepRef(ref) {
				if !arg.IsReg() || m.defCount[arg.Reg] != 1 {
					return false
				}
				def, ok := m.defIdx[arg.Reg]
				if !ok || !bindStep(ir.RefStep(ref), def) {
					return false
				}
			} else {
				if extSet[ref] {
					if ext[ref] != canonOperand(arg) {
						return false
					}
				} else {
					ext[ref], extSet[ref] = canonOperand(arg), true
				}
			}
		}
		return true
	}
	if !bindStep(last, root) {
		return nil, nil, false
	}
	// Every step bound to a distinct instruction, and every interior
	// result fully consumed by the cluster and dead past the block.
	var interiors []int
	for step, at := range stepAt {
		if at < 0 {
			return nil, nil, false
		}
		if step == last {
			continue
		}
		dest := m.instrs[at].Dest
		if m.termUse[dest] || lv.LiveOut(b, dest) {
			return nil, nil, false
		}
		for _, u := range m.uses[dest] {
			if _, member := instrStep[u]; !member {
				return nil, nil, false
			}
		}
		interiors = append(interiors, at)
	}
	rootIn := m.instrs[root]
	fused := &ir.Instr{Op: ir.OpFused, Dest: rootIn.Dest, Args: ext, Fused: spec}
	for at := range instrStep {
		m.consumed[at] = true
	}
	return fused, interiors, true
}

// canonOperand normalizes an operand for binding equality: immediates
// compare by value, registers by id (the unused fields are zeroed so
// Operand's == is exact).
func canonOperand(a ir.Operand) ir.Operand {
	if a.IsImm() {
		return ir.Imm(a.Imm)
	}
	return ir.R(a.Reg)
}
