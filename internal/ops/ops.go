// Package ops implements custom-operation identification and use: it
// mines recurring dataflow clusters (MAC, SAD/abs-diff, clip/saturate
// arithmetic) from kernel DDGs as fused-instruction candidates, and
// rewrites matched clusters into single fused ops for architectures
// whose template enables them (machine.Arch.Ops).
//
// This is the paper's thesis pushed one level further: the application
// defines not just the datapath widths but the instruction set. The
// machinery follows the automatic ISA-extension literature (see
// PAPERS.md): candidates are connected convex subgraphs of a block's
// value-dependence DAG under operand-count constraints, scored by
// execution frequency × latency saved, priced by the datapath area of
// the chained stages they hardwire, and explored jointly with the
// datapath axes by the DSE layer. See docs/CUSTOMOPS.md.
package ops

import (
	"sort"
	"strconv"

	"customfit/internal/ir"
	"customfit/internal/machine"
)

// MaxClusterSize bounds a candidate's internal step count. Four chained
// simple stages is two derated cycles — deeper clusters stop paying for
// themselves once the chained latency catches up with the unfused code.
const MaxClusterSize = 4

// Candidate is one mined custom-op candidate with its evidence.
type Candidate struct {
	// Spec is the canonical fused spec (Lat already set to the chained
	// datapath model, ir.FusedSpec.ChainLatency).
	Spec *ir.FusedSpec
	// Count is the visit-weighted occurrence count across the mined
	// kernels (one block occurrence counts the block's execution
	// frequency).
	Count float64
	// Saving is the latency the chained datapath saves per occurrence:
	// the cluster's critical path as individual ops minus the fused
	// latency.
	Saving int
	// Score ranks candidates: Count × Saving (frequency × latency
	// saved).
	Score float64
}

// eligible reports whether an instruction may become an internal step
// of a fused op: the two-operand integer ALU repertoire. Moves carry no
// datapath work, select needs three operands, memory and control ops
// have side effects, and min/max only exist after the backend's own
// repertoire fusion (the miner runs before it).
func eligible(in *ir.Instr) bool {
	return in.Op.IsALU() && in.Op.NArgs() == 2 && in.Op != ir.OpFused
}

// extKey identifies a distinct external input of a cluster: operands
// with equal kind and value share one fused-instruction input.
type extKey struct {
	kind ir.OperandKind
	val  int32
}

func keyOf(o ir.Operand) extKey {
	if o.IsImm() {
		return extKey{ir.OperImm, o.Imm}
	}
	return extKey{ir.OperReg, int32(o.Reg)}
}

// Mine accumulates candidates from every block of f into acc (keyed by
// spec content key), weighting each block's occurrences by
// weight(blockName) — the reference workload's visit count in the DSE
// pipeline, 1 for unweighted callers. Deterministic: blocks, seeds and
// grown subsets are all enumerated in program order.
func Mine(f *ir.Func, weight func(block string) float64, acc map[string]*Candidate) {
	for _, b := range f.Blocks {
		w := 1.0
		if weight != nil {
			w = weight(b.Name)
		}
		if w <= 0 {
			continue
		}
		mineBlock(f, b, w, acc)
	}
}

// blockCtx is the per-block value graph the enumerator walks.
type blockCtx struct {
	instrs []*ir.Instr      // block body in program order
	defIdx map[ir.Reg]int   // dest reg -> defining index (body only)
	uses   map[ir.Reg][]int // reg -> indices of body instrs reading it
	term   map[ir.Reg]bool  // regs the terminator reads
}

func mineBlock(f *ir.Func, b *ir.Block, w float64, acc map[string]*Candidate) {
	ctx := &blockCtx{
		instrs: b.Instrs,
		defIdx: map[ir.Reg]int{},
		uses:   map[ir.Reg][]int{},
		term:   map[ir.Reg]bool{},
	}
	for i, in := range b.Instrs {
		if in.Op.HasDest() {
			ctx.defIdx[in.Dest] = i
		}
		if in.Op.IsTerminator() {
			for _, a := range in.Args {
				if a.IsReg() {
					ctx.term[a.Reg] = true
				}
			}
			continue
		}
		for _, a := range in.Args {
			if a.IsReg() {
				ctx.uses[a.Reg] = append(ctx.uses[a.Reg], i)
			}
		}
	}
	// Enumerate connected subsets by growth: every connected subset of
	// size ≤ MaxClusterSize whose minimum member index is the seed is
	// reached exactly once (members above the seed are added in
	// ascending order through the frontier, deduplicated per seed).
	for seed, in := range b.Instrs {
		if !eligible(in) {
			continue
		}
		seen := map[string]bool{}
		grow(ctx, []int{seed}, seed, seen, w, acc)
	}
}

// setKey renders a member-index set canonically for dedup.
func setKey(members []int) string {
	s := append([]int(nil), members...)
	sort.Ints(s)
	k := ""
	for _, i := range s {
		k += strconv.Itoa(i) + "."
	}
	return k
}

// grow extends the connected subset `members` (all ≥ seed, containing
// seed) by one eligible neighbor at a time, emitting every subset of
// size ≥ 2 it visits.
func grow(ctx *blockCtx, members []int, seed int, seen map[string]bool, w float64, acc map[string]*Candidate) {
	if len(members) >= 2 {
		emit(ctx, members, w, acc)
	}
	if len(members) >= MaxClusterSize {
		return
	}
	inSet := map[int]bool{}
	for _, i := range members {
		inSet[i] = true
	}
	// Neighbors over value edges: producers of member operands and
	// consumers of member results, eligible and above the seed.
	var nbrs []int
	addNbr := func(j int) {
		if j > seed && !inSet[j] && eligible(ctx.instrs[j]) {
			nbrs = append(nbrs, j)
		}
	}
	for _, i := range members {
		in := ctx.instrs[i]
		for _, a := range in.Args {
			if a.IsReg() {
				if j, ok := ctx.defIdx[a.Reg]; ok {
					addNbr(j)
				}
			}
		}
		if in.Op.HasDest() {
			for _, j := range ctx.uses[in.Dest] {
				addNbr(j)
			}
		}
	}
	sort.Ints(nbrs)
	prev := -1
	for _, j := range nbrs {
		if j == prev {
			continue
		}
		prev = j
		next := append(append([]int(nil), members...), j)
		k := setKey(next)
		if seen[k] {
			continue
		}
		seen[k] = true
		grow(ctx, next, seed, seen, w, acc)
	}
}

// emit checks the subset's custom-op constraints (single external
// output, operand bound, interior values fully consumed) and, when they
// hold, accumulates its canonical spec.
func emit(ctx *blockCtx, members []int, w float64, acc map[string]*Candidate) {
	spec, ok := specOf(ctx, members)
	if !ok {
		return
	}
	saving := spec.Depth() - spec.Lat
	if saving <= 0 {
		return // chaining buys nothing; not a candidate
	}
	key := spec.Key()
	c := acc[key]
	if c == nil {
		c = &Candidate{Spec: spec, Saving: saving}
		acc[key] = c
	}
	c.Count += w
	c.Score = c.Count * float64(c.Saving)
}

// specOf builds the canonical FusedSpec of a member set, or reports it
// ineligible. Members must form: exactly one externally-used result
// (the root, a sink within the set), every other member's result
// consumed only inside the set (and not by the terminator), and at most
// machine.MaxFusedIn distinct external inputs.
func specOf(ctx *blockCtx, members []int) (*ir.FusedSpec, bool) {
	s := append([]int(nil), members...)
	sort.Ints(s)
	inSet := map[int]int{} // member index -> step number
	for step, i := range s {
		inSet[i] = step
	}
	root := -1
	for _, i := range s {
		in := ctx.instrs[i]
		external := ctx.term[in.Dest]
		internalUses := 0
		for _, j := range ctx.uses[in.Dest] {
			if _, ok := inSet[j]; ok {
				internalUses++
			} else {
				external = true
			}
		}
		if external {
			if root >= 0 {
				return nil, false // two escaping results
			}
			if internalUses > 0 {
				return nil, false // output also feeds the cluster: not a sink
			}
			root = i
		} else if internalUses == 0 {
			return nil, false // dead inside the set (disconnected value)
		}
	}
	if root != s[len(s)-1] {
		return nil, false // the output must be the topologically last step
	}
	// Number external inputs in first-use order; build steps in program
	// order (which respects dependences within a block).
	ext := map[extKey]int{}
	spec := &ir.FusedSpec{}
	for _, i := range s {
		in := ctx.instrs[i]
		st := ir.FusedStep{Op: in.Op}
		for ai, a := range in.Args {
			ref, internal := 0, false
			if a.IsReg() {
				if j, ok := ctx.defIdx[a.Reg]; ok {
					if step, member := inSet[j]; member {
						ref, internal = ir.StepRef(step), true
					}
				}
			}
			if !internal {
				k := keyOf(a)
				n, ok := ext[k]
				if !ok {
					n = len(ext)
					if n >= machine.MaxFusedIn {
						return nil, false // too many distinct inputs
					}
					ext[k] = n
				}
				ref = ir.Ext(n)
			}
			if ai == 0 {
				st.A = ref
			} else {
				st.B = ref
			}
		}
		spec.Steps = append(spec.Steps, st)
	}
	spec.NIn = len(ext)
	if spec.NIn == 0 {
		return nil, false // fully constant cluster; the folder's job
	}
	spec.Lat = spec.ChainLatency()
	spec.Name = nameOf(spec)
	if spec.Validate() != nil {
		return nil, false
	}
	return spec, true
}

// nameOf derives a deterministic mnemonic from the step pattern,
// special-casing the classic shapes.
func nameOf(s *ir.FusedSpec) string {
	muls, adds, subs := 0, 0, 0
	name := ""
	for i, st := range s.Steps {
		switch st.Op {
		case ir.OpMul:
			muls++
		case ir.OpAdd:
			adds++
		case ir.OpSub:
			subs++
		}
		if i > 0 {
			name += "_"
		}
		name += st.Op.String()
	}
	switch {
	case muls == 1 && adds == len(s.Steps)-1 && adds > 0:
		return "mac"
	case subs > 0 && muls == 0 && adds+subs == len(s.Steps):
		return "sad"
	}
	return name
}

// Rank flattens an accumulator into candidates ordered best-first
// (score descending, spec key ascending for determinism).
func Rank(acc map[string]*Candidate) []Candidate {
	out := make([]Candidate, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Spec.Key() < out[j].Spec.Key()
	})
	return out
}

// Select builds the op set of the top-scoring n candidates (nil when
// none qualify).
func Select(cands []Candidate, n int) *machine.OpSet {
	if n > machine.MaxOpSetSize {
		n = machine.MaxOpSetSize
	}
	var specs []*ir.FusedSpec
	for _, c := range cands {
		if len(specs) >= n {
			break
		}
		specs = append(specs, c.Spec)
	}
	if len(specs) == 0 {
		return nil
	}
	set, err := machine.NewOpSet(specs)
	if err != nil {
		return nil // mined specs always validate; belt and braces
	}
	return set
}
