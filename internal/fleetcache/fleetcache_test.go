// External test package: these tests drive the client against a real
// serve.Server (importing serve from the internal package would cycle).
package fleetcache_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/sched"
	"customfit/internal/serve"
)

func newPeer(t *testing.T) (*fleetcache.Client, *evcache.Cache) {
	t.Helper()
	cache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{Workers: 1, QueueDepth: 4, Cache: cache})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return fleetcache.New(hs.URL, hs.Client()), cache
}

func entry(i int) evcache.Entry {
	return evcache.Entry{Unroll: 1 + i%4, Cycles: int64(100 + i), Runs: 1}
}

func TestLookupHitMiss(t *testing.T) {
	cl, cache := newPeer(t)
	cache.Put("G", "k1", entry(1))

	e, ok, err := cl.Lookup("G", "k1")
	if err != nil || !ok || e != entry(1) {
		t.Fatalf("Lookup hit = %+v, %v, %v", e, ok, err)
	}
	// A miss is ok=false with a nil error — absence is not a failure.
	if _, ok, err := cl.Lookup("G", "absent"); ok || err != nil {
		t.Fatalf("Lookup miss = %v, %v; want false, nil", ok, err)
	}
	// Keys embed ':' and arch signatures; they must round-trip the URL.
	gnarly := "abc123def456:a8m2r128p1l4c2/x"
	cache.Put("G", gnarly, entry(2))
	if e, ok, err := cl.Lookup("G", gnarly); err != nil || !ok || e != entry(2) {
		t.Fatalf("gnarly key Lookup = %+v, %v, %v", e, ok, err)
	}
}

func TestStoreBatchAndMissing(t *testing.T) {
	cl, cache := newPeer(t)
	recs := []evcache.Record{
		{Key: "k1", Entry: entry(1)},
		{Key: "k2", Entry: entry(2)},
	}
	if err := cl.StoreBatch("G", recs); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if e, ok := cache.Peek("G", r.Key); !ok || e != r.Entry {
			t.Errorf("server cache %s = %+v, %v after StoreBatch", r.Key, e, ok)
		}
	}
	miss, err := cl.Missing("G", []string{"k1", "k2", "k3"})
	if err != nil || len(miss) != 1 || miss[0] != "k3" {
		t.Fatalf("Missing = %v, %v; want [k3]", miss, err)
	}
}

func TestNoCacheAttachedIsMiss(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 1, QueueDepth: 4})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := fleetcache.New(hs.URL, hs.Client())
	// GET against a cacheless peer is a plain miss.
	if _, ok, err := cl.Lookup("G", "k"); ok || err != nil {
		t.Errorf("cacheless Lookup = %v, %v; want miss, nil", ok, err)
	}
	// PUT is an error (404), surfaced so write-behind counts the drop.
	if err := cl.StoreBatch("G", []evcache.Record{{Key: "k", Entry: entry(1)}}); err == nil {
		t.Error("StoreBatch against cacheless peer succeeded")
	}
}

// TestFingerprintRefusedOnGet: an entry served under a wrong backend
// fingerprint must be refused with an error (feeding the circuit
// breaker), never returned as a hit.
func TestFingerprintRefusedOnGet(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleetcache.FingerprintHeader, "bogus-backend-v0")
		json.NewEncoder(w).Encode(entry(1))
	}))
	defer hs.Close()
	cl := fleetcache.New(hs.URL, hs.Client())
	if _, ok, err := cl.Lookup("G", "k"); ok || err == nil {
		t.Fatalf("skewed-fingerprint Lookup = %v, %v; want refused error", ok, err)
	}
}

// TestCorruptEntryRefused: a 200 with garbage JSON is refused with an
// error, not decoded into a zero entry.
func TestCorruptEntryRefused(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleetcache.FingerprintHeader, sched.Fingerprint())
		w.Write([]byte("!!not json!!"))
	}))
	defer hs.Close()
	cl := fleetcache.New(hs.URL, hs.Client())
	if _, ok, err := cl.Lookup("G", "k"); ok || err == nil {
		t.Fatalf("corrupt-body Lookup = %v, %v; want refused error", ok, err)
	}
}

// TestPutFingerprintRefused: the server 409s a version-skewed batch and
// admits nothing.
func TestPutFingerprintRefused(t *testing.T) {
	cl, cache := newPeer(t)
	body, _ := json.Marshal(fleetcache.PutRequest{
		Fingerprint: "bogus-backend-v0",
		Schema:      evcache.SchemaVersion,
		Put:         []evcache.Record{{Key: "poison", Entry: entry(1)}},
	})
	resp, err := http.Post(cl.BaseURL()+"/v1/cache/G", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("skewed put status = %s, want 409", resp.Status)
	}
	if _, ok := cache.Peek("G", "poison"); ok {
		t.Error("skewed batch was admitted")
	}
}

// TestRemoteUnreachable: connection errors surface as errors (for the
// circuit breaker), not as misses or panics.
func TestRemoteUnreachable(t *testing.T) {
	cl := fleetcache.New("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, _, err := cl.Lookup("G", "k"); err == nil {
		t.Error("Lookup against dead peer returned nil error")
	}
	if err := cl.StoreBatch("G", []evcache.Record{{Key: "k", Entry: entry(1)}}); err == nil {
		t.Error("StoreBatch against dead peer returned nil error")
	}
}

// TestTieredOverHTTP wires the full two-level composition over a real
// HTTP peer: local miss → read-through hit; local compute → write-behind
// lands on the peer.
func TestTieredOverHTTP(t *testing.T) {
	cl, peerCache := newPeer(t)
	peerCache.Put("G", "warm", entry(9))

	local, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	local.SetRemote(cl, evcache.RemoteOptions{})
	defer local.Close()

	// Read-through: no compute for a fleet-warm key.
	e, hit := local.Do("G", "warm", func() evcache.Entry { return entry(0) })
	if !hit || e != entry(9) {
		t.Fatalf("read-through Do = %+v, %v", e, hit)
	}
	// Write-behind: a local compute becomes fleet-visible.
	local.Do("G", "cold", func() evcache.Entry { return entry(5) })
	local.SyncRemote()
	if got, ok := peerCache.Peek("G", "cold"); !ok || got != entry(5) {
		t.Errorf("peer cache after write-behind = %+v, %v", got, ok)
	}
	st := local.Stats()
	if st.NetHits != 1 || st.Computes != 1 || st.WriteBehindFlushed != 1 {
		t.Errorf("stats %+v: want 1 net hit, 1 compute, 1 flushed", st)
	}
}
