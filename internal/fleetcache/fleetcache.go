// Package fleetcache is the network level of the fleet-wide evaluation
// cache: an evcache.Store implemented over a cfp-serve peer's
// /v1/cache endpoints, so one process's compiled sweeps are readable
// (and writable, via write-behind) by the whole fleet.
//
// Protocol (see docs/DISTRIBUTED.md):
//
//	GET  /v1/cache/{shard}/{key}   -> 200 Entry JSON + X-CFP-Fingerprint
//	                                  404 miss (or no cache attached)
//	POST /v1/cache/{shard}         -> batched put/has (PutRequest), 200
//	                                  PutResponse; 409 on admission refusal
//
// Admission is fingerprint-gated in both directions, mirroring the
// distributed coordinator's worker admission: a PutRequest carries the
// sender's sched.Fingerprint() and evcache.SchemaVersion (a skewed
// batch is refused with 409), and every GET response carries the
// server's fingerprint, which Lookup verifies before trusting the
// entry — a version-skewed or corrupt peer degrades the caller to
// local-only (the error feeds evcache's circuit breaker), it never
// poisons results.
package fleetcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"customfit/internal/evcache"
	"customfit/internal/obs"
	"customfit/internal/sched"
)

// FingerprintHeader carries the serving backend's sched.Fingerprint()
// on every GET /v1/cache response.
const FingerprintHeader = "X-CFP-Fingerprint"

// DefaultTimeout bounds each cache round trip when the caller supplies
// no http.Client. Cache traffic must stay snappy: a slow peer is a
// miss, not a stall.
const DefaultTimeout = 5 * time.Second

// maxEntryBytes bounds a GET response body; real entries are tens of
// bytes.
const maxEntryBytes = 1 << 16

// PutRequest is the body of POST /v1/cache/{shard}: a batched put
// and/or has-check in one round trip.
type PutRequest struct {
	// Fingerprint is the sender's sched.Fingerprint(); the server
	// refuses mismatches the way the dist coordinator refuses
	// version-skewed workers.
	Fingerprint string `json:"fingerprint"`
	// Schema is the sender's evcache.SchemaVersion.
	Schema int `json:"schema"`
	// Put is admitted into the shard.
	Put []evcache.Record `json:"put,omitempty"`
	// Has asks which of these keys the server is missing.
	Has []string `json:"has,omitempty"`
}

// PutResponse answers a PutRequest.
type PutResponse struct {
	// Accepted is how many Put records were admitted.
	Accepted int `json:"accepted"`
	// Missing are the Has keys the server does not hold.
	Missing []string `json:"missing,omitempty"`
}

// Client speaks the cache protocol against one peer. It is stateless
// and safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

var _ evcache.Store = (*Client)(nil)

// New returns a client for the peer at baseURL ("http://host:port").
// A nil hc uses a private client with DefaultTimeout.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: hc}
}

// BaseURL returns the peer this client talks to.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) shardURL(shard string) string {
	return c.base + "/v1/cache/" + url.PathEscape(shard)
}

// Lookup fetches one entry. A 404 is a plain miss; a fingerprint
// mismatch or an undecodable body is refused with an error (counted on
// evcache.net_refused) so the local tier's circuit breaker sees it.
func (c *Client) Lookup(shard, key string) (evcache.Entry, bool, error) {
	var e evcache.Entry
	resp, err := c.http.Get(c.shardURL(shard) + "/" + url.PathEscape(key))
	if err != nil {
		return e, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		return e, false, nil
	default:
		return e, false, fmt.Errorf("fleetcache: GET %s/%s: %s", shard, key, resp.Status)
	}
	if fp := resp.Header.Get(FingerprintHeader); fp != sched.Fingerprint() {
		obs.GetCounter("evcache.net_refused").Inc()
		return e, false, fmt.Errorf("fleetcache: peer %s backend fingerprint %q does not match ours %q; refusing entry", c.base, fp, sched.Fingerprint())
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&e); err != nil {
		obs.GetCounter("evcache.net_refused").Inc()
		return e, false, fmt.Errorf("fleetcache: GET %s/%s: corrupt entry: %w", shard, key, err)
	}
	return e, true, nil
}

// StoreBatch ships a batch of records into the peer's shard.
func (c *Client) StoreBatch(shard string, recs []evcache.Record) error {
	_, err := c.post(shard, PutRequest{
		Fingerprint: sched.Fingerprint(),
		Schema:      evcache.SchemaVersion,
		Put:         recs,
	})
	return err
}

// Missing asks the peer which keys it lacks.
func (c *Client) Missing(shard string, keys []string) ([]string, error) {
	pr, err := c.post(shard, PutRequest{
		Fingerprint: sched.Fingerprint(),
		Schema:      evcache.SchemaVersion,
		Has:         keys,
	})
	if err != nil {
		return nil, err
	}
	return pr.Missing, nil
}

func (c *Client) post(shard string, req PutRequest) (PutResponse, error) {
	var out PutResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := c.http.Post(c.shardURL(shard), "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return out, fmt.Errorf("fleetcache: POST %s: %s: %s", shard, resp.Status, strings.TrimSpace(string(data)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("fleetcache: POST %s: %w", shard, err)
	}
	return out, nil
}
