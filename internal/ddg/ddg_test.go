package ddg

import (
	"testing"

	"customfit/internal/ir"
	"customfit/internal/machine"
)

// block builds a basic block from instructions, appending a Ret.
func block(ins ...*ir.Instr) *ir.Block {
	b := &ir.Block{Name: "b"}
	b.Instrs = append(b.Instrs, ins...)
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet, Dest: ir.NoReg})
	return b
}

func edgeBetween(g *Graph, from, to int) (int, bool) {
	for _, e := range g.Nodes[from].Succs {
		if e.To == g.Nodes[to] {
			return e.MinDelta, true
		}
	}
	return 0, false
}

func TestTrueDependenceCarriesLatency(t *testing.T) {
	arch := machine.Baseline
	b := block(
		ir.NewInstr(ir.OpMul, 1, ir.R(0), ir.Imm(3)), // lat 2
		ir.NewInstr(ir.OpAdd, 2, ir.R(1), ir.Imm(1)),
	)
	g := Build(b, arch)
	d, ok := edgeBetween(g, 0, 1)
	if !ok || d != machine.LatMUL {
		t.Errorf("mul->add edge = %d,%v, want %d", d, ok, machine.LatMUL)
	}
}

func TestAntiDependenceZeroDelta(t *testing.T) {
	b := block(
		ir.NewInstr(ir.OpAdd, 1, ir.R(0), ir.Imm(1)), // uses r0
		ir.NewInstr(ir.OpMov, 0, ir.Imm(9)),          // redefines r0
	)
	g := Build(b, machine.Baseline)
	d, ok := edgeBetween(g, 0, 1)
	if !ok || d != 0 {
		t.Errorf("anti edge = %d,%v, want 0,true", d, ok)
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	m := &ir.MemRef{Name: "a", Space: ir.L2, Elem: ir.ElemI32, Size: 64}
	other := &ir.MemRef{Name: "b", Space: ir.L2, Elem: ir.ElemI32, Size: 64}
	st := func(mem *ir.MemRef, base ir.Reg, off int32) *ir.Instr {
		return &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
			Args: []ir.Operand{ir.R(base), ir.Imm(0)}, Mem: mem, Off: off, Elem: ir.ElemI32}
	}
	ld := func(mem *ir.MemRef, base ir.Reg, off int32, dst ir.Reg) *ir.Instr {
		return &ir.Instr{Op: ir.OpLoad, Dest: dst,
			Args: []ir.Operand{ir.R(base)}, Mem: mem, Off: off, Elem: ir.ElemI32}
	}
	cases := []struct {
		name string
		a, b *ir.Instr
		dep  bool
	}{
		{"store-load same base same off", st(m, 0, 4), ld(m, 0, 4, 1), true},
		{"store-load same base diff off", st(m, 0, 4), ld(m, 0, 5, 1), false},
		{"store-load diff base", st(m, 0, 4), ld(m, 2, 4, 1), true}, // conservative
		{"store-load diff array", st(m, 0, 4), ld(other, 0, 4, 1), false},
		{"store-store same base same off", st(m, 0, 4), st(m, 0, 4), true},
		{"load-load", ld(m, 0, 4, 1), ld(m, 0, 4, 3), false},
	}
	for _, c := range cases {
		b := block(c.a, c.b)
		g := Build(b, machine.Baseline)
		_, got := edgeBetween(g, 0, 1)
		if got != c.dep {
			t.Errorf("%s: dependent=%v, want %v", c.name, got, c.dep)
		}
	}
}

func TestTerminatorDrainsMemoryPorts(t *testing.T) {
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 8, Clusters: 1}
	m := &ir.MemRef{Name: "a", Space: ir.L2, Elem: ir.ElemI32, Size: 64, IsParam: true}
	b := block(&ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(0), ir.Imm(1)}, Mem: m, Elem: ir.ElemI32})
	g := Build(b, arch)
	d, ok := edgeBetween(g, 0, 1)
	if !ok || d != arch.L2Lat-1 {
		t.Errorf("store->term edge = %d,%v, want %d (port drain)", d, ok, arch.L2Lat-1)
	}
}

func TestCriticalPathOfChain(t *testing.T) {
	// r1 = r0*3; r2 = r1*3; r3 = r2+1  -> 2+2+1 = 5 (plus none for ret)
	b := block(
		ir.NewInstr(ir.OpMul, 1, ir.R(0), ir.Imm(3)),
		ir.NewInstr(ir.OpMul, 2, ir.R(1), ir.Imm(3)),
		ir.NewInstr(ir.OpAdd, 3, ir.R(2), ir.Imm(1)),
	)
	g := Build(b, machine.Baseline)
	if cp := g.CriticalPath(); cp != 5 {
		t.Errorf("critical path = %d, want 5", cp)
	}
}

func TestHeightsMonotoneAlongEdges(t *testing.T) {
	b := block(
		ir.NewInstr(ir.OpAdd, 1, ir.R(0), ir.Imm(1)),
		ir.NewInstr(ir.OpMul, 2, ir.R(1), ir.R(1)),
		ir.NewInstr(ir.OpSub, 3, ir.R(2), ir.R(0)),
		ir.NewInstr(ir.OpAdd, 4, ir.R(3), ir.R(1)),
	)
	g := Build(b, machine.Baseline)
	for _, nd := range g.Nodes {
		for _, e := range nd.Succs {
			if nd.Height < e.MinDelta+e.To.Height {
				t.Errorf("height(%v)=%d < %d+height(succ)=%d",
					nd.Instr, nd.Height, e.MinDelta, e.To.Height)
			}
		}
	}
}

func TestOutputDependenceOrdersCommits(t *testing.T) {
	m := &ir.MemRef{Name: "a", Space: ir.L2, Elem: ir.ElemI32, Size: 8, IsParam: true}
	// r1 = load (L2, lat 8); r1 = mov 5 — the mov commits after the load.
	b := block(
		&ir.Instr{Op: ir.OpLoad, Dest: 1, Args: []ir.Operand{ir.Imm(0)}, Mem: m, Elem: ir.ElemI32},
		ir.NewInstr(ir.OpMov, 1, ir.Imm(5)),
	)
	arch := machine.Baseline // L2Lat 8
	g := Build(b, arch)
	d, ok := edgeBetween(g, 0, 1)
	if !ok || d != 8-1+1 {
		t.Errorf("output edge = %d,%v, want 8 (loadLat-movLat+1)", d, ok)
	}
}
