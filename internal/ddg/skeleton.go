package ddg

import (
	"customfit/internal/ir"
	"customfit/internal/machine"
)

// SkelEdge is a dependence edge in index form: the successor's position
// in the block and the minimum issue-cycle distance.
type SkelEdge struct {
	To       int
	MinDelta int
}

// Skeleton is the dependence structure of one basic block with no
// ir.Instr pointers: successors, predecessor counts and critical-path
// heights are all keyed by instruction index. Because the only
// architecture parameter the dependence rules read is the Level-2
// latency (see Latency and Occupancy), a skeleton built once per
// (block, L2Lat) class is valid for every architecture in that class
// and can be shared across concurrent compiles — it is immutable after
// construction.
type Skeleton struct {
	// Succs[i] lists i's forward dependence edges.
	Succs [][]SkelEdge
	// NPreds[i] is the number of incoming dependence edges of i.
	NPreds []int
	// Heights[i] is the latency-weighted critical-path distance from i
	// to the end of the block (the scheduler's priority).
	Heights []int
	// HasTerm records whether the final instruction is the block
	// terminator (carrying the drain edges).
	HasTerm bool
}

// BuildSkeleton constructs the index-form dependence graph for a block
// under the given architecture's latency class. The edge set and
// heights are identical to Build's; Build is implemented on top of it.
func BuildSkeleton(b *ir.Block, arch machine.Arch) *Skeleton {
	ins := b.Instrs
	n := len(ins)
	sk := &Skeleton{
		Succs:   make([][]SkelEdge, n),
		NPreds:  make([]int, n),
		Heights: make([]int, n),
	}
	if n == 0 {
		return sk
	}
	addEdge := func(from, to, d int) {
		// Keep only the strongest constraint between a pair.
		succs := sk.Succs[from]
		for i := range succs {
			if succs[i].To == to {
				if d > succs[i].MinDelta {
					succs[i].MinDelta = d
				}
				return
			}
		}
		sk.Succs[from] = append(succs, SkelEdge{To: to, MinDelta: d})
		sk.NPreds[to]++
	}

	// Dense def/use tables sized by the largest register the block
	// touches (maps here dominate graph-construction cost).
	maxReg := -1
	for _, in := range ins {
		for _, a := range in.Args {
			if a.IsReg() && int(a.Reg) > maxReg {
				maxReg = int(a.Reg)
			}
		}
		if in.Op.HasDest() && int(in.Dest) > maxReg {
			maxReg = int(in.Dest)
		}
	}
	lastDef := make([]int, maxReg+1) // node index + 1; 0 = no def seen
	lastUses := make([][]int, maxReg+1)
	var memOps []int

	for i, in := range ins {
		// Register dependences.
		for _, a := range in.Args {
			if !a.IsReg() {
				continue
			}
			if def := lastDef[a.Reg]; def != 0 {
				addEdge(def-1, i, Latency(ins[def-1], arch)) // true
			}
			lastUses[a.Reg] = append(lastUses[a.Reg], i)
		}
		if in.Op.HasDest() {
			r := in.Dest
			if def := lastDef[r]; def != 0 {
				// Output: later def must commit strictly after earlier.
				d := Latency(ins[def-1], arch) - Latency(in, arch) + 1
				if d < 0 {
					d = 0
				}
				addEdge(def-1, i, d)
			}
			for _, u := range lastUses[r] {
				if u != i {
					addEdge(u, i, 0) // anti
				}
			}
			lastDef[r] = i + 1
			lastUses[r] = nil
		}
		// Memory dependences.
		if in.Op.IsMem() {
			for _, m := range memOps {
				if d, dep := memDependence(ins[m], in); dep {
					addEdge(m, i, d)
				}
			}
			memOps = append(memOps, i)
		}
	}

	// Terminator constraints: every result committed and every memory
	// port drained by the end of the block, so no state is in flight
	// across block boundaries.
	if b.Terminator() != nil {
		sk.HasTerm = true
		for i, in := range ins[:n-1] {
			d := 0
			if in.Op.HasDest() {
				d = Latency(in, arch) - 1
			}
			if occ := Occupancy(in, arch); occ-1 > d {
				d = occ - 1
			}
			addEdge(i, n-1, d)
		}
	}

	// Latency-weighted critical-path heights by a reverse topological
	// sweep (program order is a valid topological order).
	for i := n - 1; i >= 0; i-- {
		in := ins[i]
		h := Latency(in, arch)
		if !in.Op.HasDest() {
			h = 1
		}
		for _, e := range sk.Succs[i] {
			if v := e.MinDelta + sk.Heights[e.To]; v > h {
				h = v
			}
		}
		sk.Heights[i] = h
	}
	return sk
}

// Materialize expands the skeleton into a pointer-form Graph over the
// given block's instructions. The block must be structurally identical
// to the one the skeleton was built from (same instruction sequence);
// the prepared-kernel cache guarantees this by only reusing skeletons
// for unmodified clones of the source function.
func (sk *Skeleton) Materialize(b *ir.Block) *Graph {
	g := &Graph{Nodes: make([]*Node, len(b.Instrs))}
	for i, in := range b.Instrs {
		g.Nodes[i] = &Node{Index: i, Instr: in, Height: sk.Heights[i]}
	}
	for i, succs := range sk.Succs {
		from := g.Nodes[i]
		for _, e := range succs {
			to := g.Nodes[e.To]
			from.Succs = append(from.Succs, Edge{To: to, MinDelta: e.MinDelta})
			to.Preds = append(to.Preds, Edge{To: from, MinDelta: e.MinDelta})
		}
	}
	if sk.HasTerm && len(g.Nodes) > 0 {
		g.Term = g.Nodes[len(g.Nodes)-1]
	}
	return g
}

// CriticalPath returns the skeleton's critical path length in cycles.
func (sk *Skeleton) CriticalPath() int {
	cp := 0
	for _, h := range sk.Heights {
		if h > cp {
			cp = h
		}
	}
	return cp
}
