// Package ddg builds data-dependence DAGs over basic blocks for the
// clustered-VLIW list scheduler. Edges carry minimum issue-distance
// weights derived from operation latencies:
//
//   - true dependences (def→use) weigh the producer's latency;
//   - anti dependences (use→def) weigh 0: a VLIW reads registers at
//     issue and commits writes after the latency, so a redefinition may
//     issue in the same cycle as the last reader;
//   - output dependences order commits;
//   - memory dependences use a base+offset disambiguator: accesses to
//     different arrays, or to the same array at provably different
//     offsets from the same base register, are independent — everything
//     else is ordered conservatively.
//
// After the optimizer's regional renaming, anti and output edges are
// rare inside hot blocks; what remains are the kernel's genuine
// recurrences (Floyd-Steinberg's error chain), which is exactly what
// should limit ILP.
package ddg

import (
	"customfit/internal/ir"
	"customfit/internal/machine"
)

// Node is one schedulable operation.
type Node struct {
	Index int // position in block
	Instr *ir.Instr
	Succs []Edge
	Preds []Edge

	// Height is the critical-path distance to the end of the block
	// (latency-weighted), the scheduler's priority.
	Height int
}

// Edge is a dependence with a minimum issue-cycle distance.
type Edge struct {
	To       *Node
	MinDelta int // successor must issue >= this many cycles after predecessor
}

// Graph is the dependence DAG of one basic block. The terminator, if
// present, is the last node and has incoming edges enforcing that every
// write and every memory-port occupancy completes before control
// leaves the block.
type Graph struct {
	Nodes []*Node
	Term  *Node // terminator node, or nil
}

// Latency returns the def-use latency of an instruction's result.
func Latency(in *ir.Instr, arch machine.Arch) int {
	switch in.Op {
	case ir.OpFused:
		// Custom ops execute on the dedicated chained-datapath unit;
		// the spec carries its modeled latency (ir.FusedSpec.ChainLatency).
		return in.Fused.Lat
	case ir.OpMul:
		return machine.LatMUL
	case ir.OpLoad:
		if in.Mem.Space == ir.L1 {
			return machine.LatL1
		}
		return arch.L2Lat
	case ir.OpXMov:
		return machine.LatMove
	default:
		return machine.LatALU
	}
}

// Occupancy returns how many cycles an instruction holds its memory
// port. L2's ports are non-pipelined (busy for the full configurable
// latency, paper Table 4); the fixed-throughput L1 port accepts one
// access per cycle. Non-memory operations return 0.
func Occupancy(in *ir.Instr, arch machine.Arch) int {
	if !in.Op.IsMem() {
		return 0
	}
	if in.Mem.Space == ir.L1 {
		return machine.L1Occupancy
	}
	return arch.L2Lat
}

// Build constructs the dependence graph for a block under the given
// architecture's latencies. It is the pointer-form view of
// BuildSkeleton; the scheduler consumes skeletons directly (optionally
// cached per latency class), while the validator and tests use this
// materialized form.
func Build(b *ir.Block, arch machine.Arch) *Graph {
	return BuildSkeleton(b, arch).Materialize(b)
}

// memDependence classifies the ordering constraint between two memory
// operations, returning (minDelta, dependent).
func memDependence(a, b *ir.Instr) (int, bool) {
	if a.Op == ir.OpLoad && b.Op == ir.OpLoad {
		return 0, false
	}
	if a.Mem != b.Mem {
		return 0, false
	}
	if disjoint(a, b) {
		return 0, false
	}
	if a.Op == ir.OpStore && b.Op == ir.OpLoad {
		return 1, true // store visible to loads issued in later cycles
	}
	if a.Op == ir.OpStore && b.Op == ir.OpStore {
		return 1, true
	}
	return 0, true // load then store: same-cycle is safe (read-old)
}

// disjoint reports whether two accesses to the same array provably
// touch different elements: both constant addresses that differ, or the
// same base register with different offsets.
func disjoint(a, b *ir.Instr) bool {
	ai, bi := a.Args[0], b.Args[0]
	if ai.IsImm() && bi.IsImm() {
		return ai.Imm+a.Off != bi.Imm+b.Off
	}
	if ai.IsReg() && bi.IsReg() && ai.Reg == bi.Reg {
		return a.Off != b.Off
	}
	return false
}

// computeHeights fills in latency-weighted critical-path heights by a
// reverse topological sweep (nodes are in program order, a valid
// topological order).
func (g *Graph) computeHeights(arch machine.Arch) {
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		nd := g.Nodes[i]
		h := Latency(nd.Instr, arch)
		if !nd.Instr.Op.HasDest() {
			h = 1
		}
		for _, e := range nd.Succs {
			if v := e.MinDelta + e.To.Height; v > h {
				h = v
			}
		}
		nd.Height = h
	}
}

// CriticalPath returns the graph's critical path length in cycles — a
// lower bound on the block's schedule length regardless of resources.
func (g *Graph) CriticalPath() int {
	cp := 0
	for _, nd := range g.Nodes {
		if nd.Height > cp {
			cp = nd.Height
		}
	}
	return cp
}
