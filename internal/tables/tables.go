// Package tables renders the reproduction's results in the layout of
// the paper's tables and figures: fixed-width text tables for Tables
// 3/6/7/8/9/10, CSV series and ASCII scatter plots for Figures 3/4.
package tables

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"customfit/internal/dse"
	"customfit/internal/machine"
)

// Table6 renders the cost model over the paper's example
// configurations next to the paper's published values.
func Table6(cm machine.CostModel) string {
	var sb strings.Builder
	sb.WriteString("Table 6: architecture costs (relative to baseline)\n")
	sb.WriteString("IALU IMUL L2MEM REGS CLUSTERS |  paper  model\n")
	for _, pt := range machine.Table6 {
		a := pt.Arch
		fmt.Fprintf(&sb, "%4d %4d %5d %4d %8d | %6.1f %6.2f\n",
			a.ALUs, a.MULs, a.L2Ports, a.Regs, a.Clusters, pt.Cost, cm.Cost(a))
	}
	fmt.Fprintf(&sb, "worst-case relative error: %.1f%%\n", 100*machine.MaxRelErrCost(cm))
	return sb.String()
}

// Table7 renders the cycle-speed derating model against the paper.
func Table7(cm machine.CycleModel) string {
	var sb strings.Builder
	sb.WriteString("Table 7: cycle-speed derating factors (relative to baseline)\n")
	sb.WriteString("IALU L2MEM CLUSTERS |  paper  model\n")
	for _, pt := range machine.Table7 {
		a := pt.Arch
		fmt.Fprintf(&sb, "%4d %5d %8d | %6.1f %6.2f\n",
			a.ALUs, a.L2Ports, a.Clusters, pt.Derate, cm.Derate(a))
	}
	fmt.Fprintf(&sb, "worst-case relative error: %.1f%%\n", 100*machine.MaxRelErrCycle(cm))
	return sb.String()
}

// Stats renders the exploration statistics in the shape of Table 3.
func Stats(st dse.Stats) string {
	var sb strings.Builder
	sb.WriteString("Table 3 (analog): experiment computation time\n")
	fmt.Fprintf(&sb, "  # runs                         %d\n", st.Runs)
	fmt.Fprintf(&sb, "  # architectures (clustered)    %d\n", st.Architectures)
	fmt.Fprintf(&sb, "  # design points                %d\n", st.DesignPoints)
	fmt.Fprintf(&sb, "  # benchmarks                   %d\n", st.Benchmarks)
	fmt.Fprintf(&sb, "  runtime per architecture       %v\n", st.PerArch.Round(1000000))
	fmt.Fprintf(&sb, "  compile+evaluate per run       %v\n", st.PerRun.Round(1000))
	fmt.Fprintf(&sb, "  total time                     %v\n", st.WallTime.Round(1000000))
	// Per-phase breakdown (absent from runs saved before the Phases
	// field existed — those print the classic table only).
	if st.Phases != (dse.PhaseTimes{}) || st.Failures > 0 {
		fmt.Fprintf(&sb, "  failed evaluations             %d\n", st.Failures)
		fmt.Fprintf(&sb, "  compile time (cum)             %v\n", st.Phases.Compile.Round(1000000))
		fmt.Fprintf(&sb, "  simulate time (cum)            %v\n", st.Phases.Simulate.Round(1000000))
		fmt.Fprintf(&sb, "  cost-model time (cum)          %v\n", st.Phases.CostModel.Round(1000))
	}
	return sb.String()
}

// rangeName formats a back-off range for headers.
func rangeName(rng float64) string {
	if math.IsInf(rng, 1) {
		return "∞"
	}
	return fmt.Sprintf("%.0f%%", rng*100)
}

// Selection renders one Table 8/9/10 block: selections for each target
// benchmark under the cost cap at each back-off range, in the paper's
// layout.
func Selection(res *dse.Results, costCap float64, ranges []float64) string {
	var sb strings.Builder
	for _, rng := range ranges {
		fmt.Fprintf(&sb, "Cost=%.1f Range=%s\n", costCap, rangeName(rng))
		header := fmt.Sprintf("%-26s %-12s", "Arch Desc", "(su,c)")
		for _, b := range dse.DisplayBenches {
			header += fmt.Sprintf(" %6s", b)
		}
		sb.WriteString(header + "    avg\n")
		if math.IsInf(rng, 1) {
			if ch := res.BestOverall(costCap); ch != nil {
				sb.WriteString(selectionRow(res, "all", *ch))
			}
		} else {
			for _, ch := range res.SelectConstrained(costCap, rng) {
				sb.WriteString(selectionRow(res, ch.Target, ch))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func selectionRow(res *dse.Results, label string, ch dse.Choice) string {
	arch := res.Archs[ch.ArchIdx]
	row := fmt.Sprintf("%-26s (%4.1f %4.1f)", label+arch.String(), ch.OwnSpeedup, ch.Cost)
	for _, b := range dse.DisplayBenches {
		row += fmt.Sprintf(" %6.2f", ch.Speedups[b])
	}
	row += fmt.Sprintf(" %6.2f\n", ch.Average)
	return row
}

// ScatterCSV emits a Figure 3/4 data series for one benchmark:
// cost,speedup,best per design point (best cluster arrangement).
func ScatterCSV(res *dse.Results, benchName string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# figure data for benchmark %s: cost,speedup,frontier,arch\n", benchName)
	for _, p := range res.Scatter(benchName) {
		best := 0
		if p.Best {
			best = 1
		}
		fmt.Fprintf(&sb, "%.3f,%.3f,%d,%s\n", p.Cost, p.Speedup, best, p.Arch)
	}
	return sb.String()
}

// ScatterASCII draws the cost/speedup scatter for one benchmark as an
// ASCII plot in the style of the paper's Figures 3/4 (log-x cost axis,
// linear speedup axis, '*' = frontier, '.' = other points).
func ScatterASCII(res *dse.Results, benchName string, width, height int) string {
	pts := res.Scatter(benchName)
	if len(pts) == 0 {
		return fmt.Sprintf("%s: no data\n", benchName)
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	maxSu := 0.0
	minC, maxC := math.Inf(1), 0.0
	for _, p := range pts {
		if p.Speedup > maxSu {
			maxSu = p.Speedup
		}
		if p.Cost < minC {
			minC = p.Cost
		}
		if p.Cost > maxC {
			maxC = p.Cost
		}
	}
	if maxSu <= 0 {
		maxSu = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	lx := func(c float64) int {
		if maxC <= minC {
			return 0
		}
		f := (math.Log(c) - math.Log(minC)) / (math.Log(maxC) - math.Log(minC))
		x := int(f * float64(width-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	ly := func(su float64) int {
		y := height - 1 - int(su/maxSu*float64(height-1))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		return y
	}
	for _, p := range pts {
		x, y := lx(p.Cost), ly(p.Speedup)
		ch := byte('.')
		if p.Best {
			ch = '*'
		}
		if grid[y][x] == ' ' || ch == '*' {
			grid[y][x] = ch
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (speedup 0..%.1f vs cost %.1f..%.1f, log x; * = best frontier)\n",
		benchName, maxSu, minC, maxC)
	for _, row := range grid {
		sb.WriteString("  |" + string(row) + "\n")
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return sb.String()
}

// FrontierSummary lists each benchmark's best architecture at a few
// cost levels — a textual reading of Figures 3/4.
func FrontierSummary(res *dse.Results, benchNames []string, costCaps []float64) string {
	var sb strings.Builder
	sort.Float64s(costCaps)
	for _, b := range benchNames {
		pts := res.Scatter(b)
		fmt.Fprintf(&sb, "%-5s", b)
		for _, cap := range costCaps {
			best := -1.0
			var bestArch machine.Arch
			for _, p := range pts {
				if p.Cost <= cap && p.Speedup > best {
					best = p.Speedup
					bestArch = p.Arch
				}
			}
			if best < 0 {
				fmt.Fprintf(&sb, "  cost<%.0f: -", cap)
			} else {
				fmt.Fprintf(&sb, "  cost<%.0f: %5.2fx %s", cap, best, bestArch)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table1And2 renders the benchmark suite in the layout of the paper's
// Tables 1 (individual) and 2 (jammed).
func Table1And2(individual, jammed []BenchDesc) string {
	var sb strings.Builder
	sb.WriteString("Table 1: the individual benchmarks\n")
	for _, b := range individual {
		fmt.Fprintf(&sb, "  %-5s %s\n", b.Name, b.Desc)
	}
	sb.WriteString("\nTable 2: the jammed benchmarks\n")
	for _, b := range jammed {
		fmt.Fprintf(&sb, "  %-5s %s\n", b.Name, b.Desc)
	}
	return sb.String()
}

// BenchDesc is a (name, description) pair for Table1And2; defined here
// to keep tables decoupled from the bench package.
type BenchDesc struct {
	Name, Desc string
}
