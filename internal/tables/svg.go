package tables

import (
	"fmt"
	"math"
	"strings"

	"customfit/internal/dse"
)

// ScatterSVG renders one benchmark's cost/speedup scatter as a
// standalone SVG document in the style of the paper's Figures 3/4:
// logarithmic cost axis, linear speedup axis, hollow points for the
// population and a line through the best cost/performance frontier.
func ScatterSVG(res *dse.Results, benchName string, width, height int) string {
	pts := res.Scatter(benchName)
	if width <= 0 {
		width = 440
	}
	if height <= 0 {
		height = 300
	}
	const mL, mR, mT, mB = 54, 16, 30, 42
	plotW := float64(width - mL - mR)
	plotH := float64(height - mT - mB)

	maxSu, minC, maxC := 0.0, math.Inf(1), 0.0
	for _, p := range pts {
		maxSu = math.Max(maxSu, p.Speedup)
		minC = math.Min(minC, p.Cost)
		maxC = math.Max(maxC, p.Cost)
	}
	if len(pts) == 0 || maxSu <= 0 {
		return fmt.Sprintf("<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\"><text x=\"10\" y=\"20\">%s: no data</text></svg>\n", width, height, benchName)
	}
	maxSu = math.Ceil(maxSu)
	lx := func(c float64) float64 {
		f := (math.Log(c) - math.Log(minC)) / (math.Log(maxC) - math.Log(minC))
		return float64(mL) + f*plotW
	}
	ly := func(su float64) float64 {
		return float64(mT) + (1-su/maxSu)*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n", mL, benchName)

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		mL, height-mB, width-mR, height-mB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		mL, mT, mL, height-mB)
	// Y ticks at integer speedups (at most ~6 labels).
	step := math.Max(1, math.Ceil(maxSu/6))
	for v := 0.0; v <= maxSu+1e-9; v += step {
		y := ly(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n", mL, y, width-mR, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%g</text>`+"\n", mL-6, y+4, v)
	}
	// X ticks at powers of two within range.
	for c := 1.0; c <= maxC*1.01; c *= 2 {
		if c < minC {
			continue
		}
		x := lx(c)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`+"\n", x, mT, x, height-mB)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%g</text>`+"\n", x, height-mB+16, c)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">cost (log)</text>`+"\n",
		mL+int(plotW/2), height-8)
	fmt.Fprintf(&sb, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">speedup</text>`+"\n",
		mT+int(plotH/2), mT+int(plotH/2))

	// Frontier polyline (staircase through the best points).
	var frontier []string
	for _, p := range pts {
		if p.Best {
			frontier = append(frontier, fmt.Sprintf("%.1f,%.1f", lx(p.Cost), ly(p.Speedup)))
		}
	}
	if len(frontier) > 1 {
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="#1565c0" stroke-width="1.5"/>`+"\n",
			strings.Join(frontier, " "))
	}
	// Points.
	for _, p := range pts {
		if p.Best {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3.2" fill="#1565c0"><title>%s: %.2fx at %.2f</title></circle>`+"\n",
				lx(p.Cost), ly(p.Speedup), p.Arch, p.Speedup, p.Cost)
		} else {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="none" stroke="#777"><title>%s: %.2fx at %.2f</title></circle>`+"\n",
				lx(p.Cost), ly(p.Speedup), p.Arch, p.Speedup, p.Cost)
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
