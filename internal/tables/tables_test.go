package tables

import (
	"math"
	"strings"
	"testing"

	"customfit/internal/dse"
	"customfit/internal/machine"
)

// fakeResults builds a small synthetic Results so rendering can be
// tested without running the explorer.
func fakeResults() *dse.Results {
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 2},
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
	}
	r := &dse.Results{Archs: archs}
	for _, a := range archs {
		r.Cost = append(r.Cost, machine.DefaultCostModel.Cost(a))
	}
	r.Eval = map[string][]dse.Evaluation{}
	for bi, b := range dse.DisplayBenches {
		evs := make([]dse.Evaluation, len(archs))
		for i := range archs {
			su := 1.0 + float64(i)*0.7 + float64(bi)*0.1
			if i == 0 {
				su = 1
			}
			evs[i] = dse.Evaluation{Arch: archs[i], Bench: b, Speedup: su, Unroll: 1, Cycles: 1000}
		}
		r.Eval[b] = evs
	}
	r.Benches = append([]string(nil), dse.DisplayBenches...)
	return r
}

func TestTable6And7Render(t *testing.T) {
	s6 := Table6(machine.DefaultCostModel)
	if !strings.Contains(s6, "93.4") || !strings.Contains(s6, "worst-case") {
		t.Errorf("Table6 incomplete:\n%s", s6)
	}
	s7 := Table7(machine.DefaultCycleModel)
	if !strings.Contains(s7, "7.3") {
		t.Errorf("Table7 incomplete:\n%s", s7)
	}
}

func TestSelectionRender(t *testing.T) {
	r := fakeResults()
	s := Selection(r, 10, []float64{0, 0.10, math.Inf(1)})
	for _, want := range []string{"Cost=10.0 Range=0%", "Range=10%", "Range=∞", "Arch Desc", "all("} {
		if !strings.Contains(s, want) {
			t.Errorf("Selection missing %q:\n%s", want, s)
		}
	}
	// Every display bench appears as a column header.
	for _, b := range dse.DisplayBenches {
		if !strings.Contains(s, b) {
			t.Errorf("missing column %s", b)
		}
	}
}

func TestScatterCSVAndASCII(t *testing.T) {
	r := fakeResults()
	csv := ScatterCSV(r, "A")
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 3 { // header + >=2 design points
		t.Errorf("CSV too short:\n%s", csv)
	}
	art := ScatterASCII(r, "A", 40, 10)
	if !strings.Contains(art, "*") {
		t.Errorf("ASCII scatter has no frontier markers:\n%s", art)
	}
	if ScatterASCII(r, "nope", 40, 10) == "" {
		t.Error("unknown benchmark should still render a message")
	}
}

func TestStatsRender(t *testing.T) {
	s := Stats(dse.Stats{Runs: 5730, Architectures: 191, Benchmarks: 11})
	if !strings.Contains(s, "5730") || !strings.Contains(s, "191") {
		t.Errorf("Stats incomplete:\n%s", s)
	}
}

func TestFrontierSummary(t *testing.T) {
	r := fakeResults()
	s := FrontierSummary(r, []string{"A", "H"}, []float64{5, 15})
	if !strings.Contains(s, "cost<5") || !strings.Contains(s, "cost<15") {
		t.Errorf("FrontierSummary incomplete:\n%s", s)
	}
}

func TestTable1And2(t *testing.T) {
	s := Table1And2(
		[]BenchDesc{{"A", "FIR"}, {"C", "IDCT"}},
		[]BenchDesc{{"GF", "scale+halftone"}},
	)
	for _, want := range []string{"Table 1", "Table 2", "A", "GF", "IDCT"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1And2 missing %q", want)
		}
	}
}

func TestScatterSVG(t *testing.T) {
	r := fakeResults()
	svg := ScatterSVG(r, "A", 0, 0)
	for _, want := range []string{"<svg", "</svg>", "polyline", "circle", "speedup"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if !strings.Contains(ScatterSVG(r, "nope", 100, 100), "no data") {
		t.Error("unknown benchmark should render a message")
	}
}
