package dse

import (
	"math"
	"strings"
	"testing"

	"customfit/internal/machine"
)

// syntheticResults builds a Results with controlled speedups so claim
// extraction can be verified exactly.
func syntheticResults() *Results {
	archs := []machine.Arch{
		machine.Baseline, // cost 1
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 2},
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 4},
	}
	r := &Results{Archs: archs}
	for _, a := range archs {
		r.Cost = append(r.Cost, machine.DefaultCostModel.Cost(a))
	}
	r.Eval = map[string][]Evaluation{}
	// Benchmark X loves arch 1, collapses on arch 3; Y is the opposite.
	su := map[string][]float64{}
	for _, b := range DisplayBenches {
		su[b] = []float64{1, 2, 2.5, 3}
	}
	su["A"] = []float64{1, 10, 2, 0.5}
	su["H"] = []float64{1, 0.8, 2, 6}
	for b, sus := range su {
		evs := make([]Evaluation, len(archs))
		for i := range archs {
			evs[i] = Evaluation{Arch: archs[i], Bench: b, Speedup: sus[i], Unroll: 1, Cycles: 100}
		}
		r.Eval[b] = evs
	}
	r.Benches = append([]string(nil), DisplayBenches...)
	return r
}

func TestComputeClaims(t *testing.T) {
	r := syntheticResults()
	c := r.ComputeClaims()
	if c.SpreadByBench["A"] < 2 {
		t.Errorf("A spread = %f, want >= 2", c.SpreadByBench["A"])
	}
	// A's own machine gives 10x; H's machine (arch 3) gives A 0.5x ->
	// fraction 0.05. The worst cross pair must find something <= that.
	if c.WorstCrossFraction > 0.051 {
		t.Errorf("worst cross fraction = %f, want <= 0.05", c.WorstCrossFraction)
	}
	if c.WorstCrossTarget != "A" {
		t.Errorf("worst cross target = %s, want A", c.WorstCrossTarget)
	}
	if math.IsNaN(c.BackoffRecovery) || c.BackoffRecovery < 1 {
		t.Errorf("backoff recovery = %f, want >= 1", c.BackoffRecovery)
	}
	s := c.String()
	for _, want := range []string{"factor of 5", "17%", "Range=50%"} {
		if !strings.Contains(s, want) {
			t.Errorf("claims text missing %q", want)
		}
	}
}
