package dse

import (
	"fmt"
	"sort"
	"strings"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

// The paper did not compile for every cluster arrangement: "To account
// for clustering, we computed a 'correction value' as a function of the
// number of clusters, by running a set of separate experiments for a
// few significant architecture data points ... In our experience, this
// approximation is enough to account for the effects of clustering."
//
// This file reproduces that methodology AND validates it — an ablation
// the paper could not publish. FitCorrections plays the paper's role
// (fit κ(c) on a few data points); CorrectionStudy then measures, on
// held-out points, how far κ(c)-predicted performance is from really
// compiling with the cluster partitioner.

// Correction holds per-cluster-count cycle multipliers relative to the
// single-cluster compilation of the same design point (κ(1) = 1).
type Correction struct {
	Kappa map[int]float64
	// Samples is how many (point, benchmark) pairs informed each κ.
	Samples map[int]int
}

// String renders κ in cluster order.
func (c *Correction) String() string {
	var ks []int
	for k := range c.Kappa {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var sb strings.Builder
	for _, k := range ks {
		fmt.Fprintf(&sb, "κ(%d)=%.3f ", k, c.Kappa[k])
	}
	return strings.TrimSpace(sb.String())
}

// FitCorrections fits cluster-correction factors the way the paper did:
// compile a few significant design points at every cluster arrangement
// and average the cycle ratios vs the single-cluster compile. The
// returned κ(c) multiplies a c=1 cycle count to estimate the c-cluster
// cycle count (before cycle-time derating, which is analytic anyway).
func FitCorrections(ev *Evaluator, benches []*bench.Benchmark, points []machine.Arch) (*Correction, error) {
	cor := &Correction{Kappa: map[int]float64{1: 1}, Samples: map[int]int{}}
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, pt := range points {
		for _, b := range benches {
			base := ev.Evaluate(b, pt.WithClusters(1))
			if base.Failed {
				continue
			}
			for _, c := range machine.ClusterArrangements(pt) {
				if c == 1 {
					continue
				}
				e := ev.Evaluate(b, pt.WithClusters(c))
				if e.Failed {
					continue
				}
				sums[c] += float64(e.Cycles) / float64(base.Cycles)
				counts[c]++
			}
		}
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("dse: no cluster arrangements to fit corrections from")
	}
	for c, s := range sums {
		cor.Kappa[c] = s / float64(counts[c])
		cor.Samples[c] = counts[c]
	}
	return cor, nil
}

// CorrectionError is one held-out validation measurement.
type CorrectionError struct {
	Arch      machine.Arch
	Bench     string
	Predicted float64 // c=1 cycles × κ(c)
	Actual    float64 // really compiled with the partitioner
	RelErr    float64 // |pred-act| / act
}

// ValidateCorrections measures the correction approximation on held-out
// (point, benchmark) pairs, returning per-pair errors.
func ValidateCorrections(ev *Evaluator, cor *Correction, benches []*bench.Benchmark, points []machine.Arch) []CorrectionError {
	var out []CorrectionError
	for _, pt := range points {
		for _, b := range benches {
			base := ev.Evaluate(b, pt.WithClusters(1))
			if base.Failed {
				continue
			}
			for _, c := range machine.ClusterArrangements(pt) {
				if c == 1 {
					continue
				}
				k, ok := cor.Kappa[c]
				if !ok {
					continue
				}
				e := ev.Evaluate(b, pt.WithClusters(c))
				if e.Failed {
					continue
				}
				pred := float64(base.Cycles) * k
				act := float64(e.Cycles)
				rel := pred - act
				if rel < 0 {
					rel = -rel
				}
				out = append(out, CorrectionError{
					Arch:      pt.WithClusters(c),
					Bench:     b.Name,
					Predicted: pred,
					Actual:    act,
					RelErr:    rel / act,
				})
			}
		}
	}
	return out
}

// SummarizeCorrectionStudy formats mean/max error per cluster count.
func SummarizeCorrectionStudy(cor *Correction, errs []CorrectionError) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster correction factors (paper §2.4 methodology): %s\n", cor)
	byC := map[int][]float64{}
	for _, e := range errs {
		byC[e.Arch.Clusters] = append(byC[e.Arch.Clusters], e.RelErr)
	}
	var cs []int
	for c := range byC {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	for _, c := range cs {
		mean, max := 0.0, 0.0
		for _, e := range byC[c] {
			mean += e
			if e > max {
				max = e
			}
		}
		mean /= float64(len(byC[c]))
		fmt.Fprintf(&sb, "  c=%d: held-out cycle prediction error mean %.1f%%, max %.1f%% (%d pairs)\n",
			c, 100*mean, 100*max, len(byC[c]))
	}
	return sb.String()
}
