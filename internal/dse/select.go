package dse

import (
	"math"
	"sort"
)

// DisplayBenches are the columns of the paper's Tables 8-10 (benchmark
// E is evaluated but not displayed, matching the paper).
var DisplayBenches = []string{"A", "C", "D", "F", "G", "H", "GF", "GEF", "DH", "DHEF"}

// Choice is one row of a Table 8/9/10 block: the architecture selected
// for a target benchmark under a cost cap and back-off range, and its
// speedup on every displayed benchmark.
type Choice struct {
	Target     string
	ArchIdx    int
	OwnSpeedup float64 // speedup on the target
	Cost       float64
	Speedups   map[string]float64 // per displayed benchmark
	Average    float64            // mean over displayed benchmarks
}

// SelectConstrained reproduces the paper's Section 4.2 designer
// scenarios. For each target benchmark it picks, among architectures
// costing at most costCap, the one that maximizes average speedup on
// the other applications while staying within `rng` (e.g. 0.10 = 10%)
// of the best achievable speedup on the target itself. rng = 0 is pure
// specialization; math.Inf(1) reproduces the "Range=∞" row where every
// target gets the global-average-best machine.
func (r *Results) SelectConstrained(costCap, rng float64) []Choice {
	var out []Choice
	for _, target := range DisplayBenches {
		c := r.selectFor(target, costCap, rng)
		if c != nil {
			out = append(out, *c)
		}
	}
	return out
}

func (r *Results) selectFor(target string, costCap, rng float64) *Choice {
	evs := r.Eval[target]
	if evs == nil {
		return nil
	}
	// Feasible candidates under the cost cap.
	var cands []int
	bestOwn := 0.0
	for i := range evs {
		if evs[i].Failed || r.Cost[i] > costCap {
			continue
		}
		if !r.allBenchesValid(i) {
			continue
		}
		cands = append(cands, i)
		if evs[i].Speedup > bestOwn {
			bestOwn = evs[i].Speedup
		}
	}
	if len(cands) == 0 {
		return nil
	}
	floor := bestOwn * (1 - rng)
	if math.IsInf(rng, 1) {
		floor = 0
	}
	best := -1
	bestScore := -1.0
	for _, i := range cands {
		if evs[i].Speedup < floor {
			continue
		}
		score := r.avgOthers(i, target)
		if math.IsInf(rng, 1) {
			score = r.avgAll(i)
		}
		if rng == 0 {
			// Pure specialization: maximize own speedup; break ties by
			// average on the others, then by lower cost.
			score = evs[i].Speedup*1e6 + r.avgOthers(i, target)
		}
		if score > bestScore || (score == bestScore && best >= 0 && r.Cost[i] < r.Cost[best]) {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return nil
	}
	ch := &Choice{
		Target:     target,
		ArchIdx:    best,
		OwnSpeedup: evs[best].Speedup,
		Cost:       r.Cost[best],
		Speedups:   map[string]float64{},
	}
	sum := 0.0
	for _, b := range DisplayBenches {
		su := r.Eval[b][best].Speedup
		ch.Speedups[b] = su
		sum += su
	}
	ch.Average = sum / float64(len(DisplayBenches))
	return ch
}

func (r *Results) allBenchesValid(i int) bool {
	for _, b := range DisplayBenches {
		evs := r.Eval[b]
		if evs == nil || evs[i].Failed {
			return false
		}
	}
	return true
}

// avgOthers is the mean speedup at arch i over displayed benchmarks
// other than the target.
func (r *Results) avgOthers(i int, target string) float64 {
	sum, n := 0.0, 0
	for _, b := range DisplayBenches {
		if b == target {
			continue
		}
		sum += r.Eval[b][i].Speedup
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r *Results) avgAll(i int) float64 {
	sum := 0.0
	for _, b := range DisplayBenches {
		sum += r.Eval[b][i].Speedup
	}
	return sum / float64(len(DisplayBenches))
}

// BestOverall returns the single architecture maximizing average
// speedup under the cost cap (the Range=∞ bottom line of each table).
func (r *Results) BestOverall(costCap float64) *Choice {
	best := -1
	bestScore := -1.0
	for i := range r.Archs {
		if r.Cost[i] > costCap || !r.allBenchesValid(i) {
			continue
		}
		score := r.avgAll(i)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return nil
	}
	ch := &Choice{
		Target:   "all",
		ArchIdx:  best,
		Cost:     r.Cost[best],
		Speedups: map[string]float64{},
	}
	sum := 0.0
	for _, b := range DisplayBenches {
		su := r.Eval[b][best].Speedup
		ch.Speedups[b] = su
		sum += su
	}
	ch.Average = sum / float64(len(DisplayBenches))
	ch.OwnSpeedup = ch.Average
	return ch
}

// SpreadAtCost measures the paper's headline "factor of 5 between
// similar-cost reasonable architectures": among architectures within
// [cost*(1-tol), cost*(1+tol)], the ratio of best to worst speedup on
// the given benchmark.
func (r *Results) SpreadAtCost(benchName string, cost, tol float64) (lo, hi float64) {
	evs := r.Eval[benchName]
	lo, hi = math.Inf(1), 0
	for i := range evs {
		if evs[i].Failed {
			continue
		}
		if r.Cost[i] < cost*(1-tol) || r.Cost[i] > cost*(1+tol) {
			continue
		}
		su := evs[i].Speedup
		if su < lo {
			lo = su
		}
		if su > hi {
			hi = su
		}
	}
	if math.IsInf(lo, 1) {
		lo = 0
	}
	return lo, hi
}

// SortedCosts returns the distinct architecture costs, ascending
// (useful for choosing cost-cap sweeps in reports).
func (r *Results) SortedCosts() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, c := range r.Cost {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Float64s(out)
	return out
}
