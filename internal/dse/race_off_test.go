//go:build !race

package dse

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_on_test.go). The heavyweight full-space tests
// skip under the detector: instrumentation makes them minutes-slow
// without exercising any concurrency the fast tests do not.
const raceEnabled = false
