package dse

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
)

// smallCancelExplorer is a fast configuration for the cancellation
// tests: one benchmark over a thin arch slice at a small width. It
// stays cheap enough to run under the race detector, which is the
// point — these tests are in the `make check` -race set.
func smallCancelExplorer() *Explorer {
	e := NewExplorer()
	full := machine.FullSpace()
	var archs []machine.Arch
	for i := 0; i < len(full); i += 31 {
		archs = append(archs, full[i])
	}
	archs = append(archs, machine.Baseline)
	e.Archs = archs
	e.Width = 32
	e.Benchmarks = []*bench.Benchmark{bench.ByName("G")}
	return e
}

func TestEvaluateCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := NewEvaluator()
	ev.Width = 32
	evl := ev.EvaluateCtx(ctx, bench.ByName("G"), machine.Baseline)
	if !evl.Cancelled {
		t.Error("evaluation under a cancelled context not marked Cancelled")
	}
	if evl.Failed {
		t.Error("cancelled evaluation marked Failed: cancellation is not a compile failure")
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := smallCancelExplorer().RunCtx(ctx)
	if res != nil {
		t.Error("cancelled run returned partial results")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("error %v does not wrap ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunCtxCancelMidFlight cancels from inside the progress callback —
// so the cancellation provably lands while workers are mid-exploration —
// and requires a prompt ErrCancelled with cancelled work never counted
// as failure.
func TestRunCtxCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := smallCancelExplorer()
	var fired atomic.Bool
	var sawFailedAfterCancel atomic.Bool
	e.Progress = func(p ProgressInfo) {
		if p.Done >= 2 && fired.CompareAndSwap(false, true) {
			cancel()
		}
		if fired.Load() && p.Failed > 0 {
			sawFailedAfterCancel.Store(true)
		}
	}
	res, err := e.RunCtx(ctx)
	if res != nil {
		t.Error("cancelled run returned partial results")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("error %v does not wrap ErrCancelled", err)
	}
	if !fired.Load() {
		t.Fatal("exploration finished before the cancel point — shrink the trigger")
	}
	if sawFailedAfterCancel.Load() {
		t.Error("evaluations abandoned by cancellation were counted as failures")
	}
}

// TestCancelDoesNotPoisonCaches: a cancelled run must leave the memo
// and the persistent cache in a state where a subsequent uncancelled
// run over the same Evaluator/cache still produces the uncached
// results.
func TestCancelDoesNotPoisonCaches(t *testing.T) {
	dir := t.TempDir()

	// Reference: a clean, uncached run.
	ref, err := smallCancelExplorer().Run()
	if err != nil {
		t.Fatal(err)
	}

	// Cancelled run against a fresh persistent cache.
	cache, err := evcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := smallCancelExplorer()
	e.Cache = cache
	var fired atomic.Bool
	e.Progress = func(p ProgressInfo) {
		if p.Done >= 2 && fired.CompareAndSwap(false, true) {
			cancel()
		}
	}
	if _, err := e.RunCtx(ctx); !errors.Is(err, ErrCancelled) {
		cancel()
		t.Fatalf("cancelled run: %v", err)
	}
	cancel()
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Uncancelled run over the same (partially filled) cache directory.
	warm, err := evcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := smallCancelExplorer()
	e2.Cache = warm
	res, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	for bi, b := range ref.Benches {
		if res.Benches[bi] != b {
			t.Fatalf("bench lists differ: %v vs %v", res.Benches, ref.Benches)
		}
		for i := range ref.Eval[b] {
			g, w := res.Eval[b][i], ref.Eval[b][i]
			if g.Cancelled {
				t.Fatalf("%s on %v: stale Cancelled evaluation leaked from the aborted run", b, w.Arch)
			}
			if g.Unroll != w.Unroll || g.Cycles != w.Cycles || g.Spilled != w.Spilled ||
				g.Failed != w.Failed || g.Time != w.Time || g.Speedup != w.Speedup {
				t.Fatalf("%s on %v: post-cancel run %+v differs from clean run %+v", b, w.Arch, g, w)
			}
		}
	}
	if res.Stats.Runs != ref.Stats.Runs {
		t.Errorf("logical run count %d after cancelled warm-up, clean run counted %d",
			res.Stats.Runs, ref.Stats.Runs)
	}
	if res.Stats.Cancelled != 0 {
		t.Errorf("completed run reports %d cancelled evaluations", res.Stats.Cancelled)
	}
}
