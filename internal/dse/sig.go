package dse

import (
	"fmt"

	"customfit/internal/machine"
)

// archSig is the backend-relevant signature of a concrete architecture:
// the complete set of parameters the compiler backend (partition,
// schedule, allocate, spill) can observe. Two architectures with equal
// signatures are compiled identically — they differ only in datapath
// cost and in the cycle-time derate, both applied outside the backend —
// so the evaluator reuses one sweep for the whole signature class.
//
// Field inventory against the backend's reads:
//
//   - Clusters, ALUsPC, MULsPC: issue-slot model and partitioning
//     (ALUs = ALUsPC × Clusters exactly, by Arch.Validate's
//     divisibility rule, so the scheduler's scan budget is covered;
//     MULsPC's min-1 floor means total MULs may differ inside a class,
//     but the backend never reads the total);
//   - RegsPC: the pressure throttle's budget and the allocator's
//     capacity;
//   - L2Ports, L2Lat: global memory-port occupancy and the dependence
//     latencies (L2PathsPC and Buses derive from these and Clusters);
//   - MinMax: the opcode-repertoire fusion pass;
//   - OpsKey: the custom-op rewrite pass (machine.OpConfig.Key — the
//     enabled specs' content keys, so two masks enabling the same specs
//     share a class and op-free machines keep the historical empty key).
//
// The cycle-time derate reads RegPorts = 3·ALUsPC + 2·(1 + L2PathsPC),
// which is signature-determined, so even Time is constant per class up
// to the shared derate factor.
type archSig struct {
	Clusters int
	ALUsPC   int
	MULsPC   int
	RegsPC   int
	L2Ports  int
	L2Lat    int
	MinMax   bool
	OpsKey   string
}

// key renders the signature as the stable string that, combined with
// the kernel-class hash, content-addresses a persistent cache entry
// (see internal/evcache and Evaluator.Cache).
func (s archSig) key() string {
	k := fmt.Sprintf("c%d.a%d.m%d.r%d.p%d.l%d",
		s.Clusters, s.ALUsPC, s.MULsPC, s.RegsPC, s.L2Ports, s.L2Lat)
	if s.MinMax {
		k += ".mm"
	}
	if s.OpsKey != "" {
		k += ".ops{" + s.OpsKey + "}"
	}
	return k
}

// SigKey returns the architecture's backend-signature key: the stable
// string identifying its signature class. Two architectures with equal
// keys are compiled identically (see archSig), so anything that
// partitions the design space across evaluators — the distributed
// coordinator in internal/dist — should keep equal-keyed architectures
// in one partition: the memo layer then deduplicates their backend
// work exactly as a single local run would.
func SigKey(a machine.Arch) string { return sigOf(a).key() }

// sigOf maps an architecture to its backend signature.
func sigOf(a machine.Arch) archSig {
	return archSig{
		Clusters: a.Clusters,
		ALUsPC:   a.ALUsPC(),
		MULsPC:   a.MULsPC(),
		RegsPC:   a.RegsPC(),
		L2Ports:  a.L2Ports,
		L2Lat:    a.L2Lat,
		MinMax:   a.MinMax,
		OpsKey:   a.Ops.Key(),
	}
}
