package dse

import (
	"fmt"
	"strings"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

// RepertoireResult measures the min/max ALU repertoire extension on one
// benchmark × machine.
type RepertoireResult struct {
	Bench        string
	Arch         machine.Arch
	PlainCycles  int64
	MinMaxCycles int64
	// Gain is PlainCycles / MinMaxCycles (>1 = repertoire helped).
	Gain float64
}

// RunRepertoireStudy evaluates each benchmark on each machine with and
// without the min/max repertoire — the opcode-choice experiment the
// paper's methodology supports but its evaluation deliberately skipped.
func RunRepertoireStudy(benches []*bench.Benchmark, archs []machine.Arch, width int) []RepertoireResult {
	ev := NewEvaluator()
	ev.Width = width
	var out []RepertoireResult
	for _, b := range benches {
		for _, a := range archs {
			plain := ev.Evaluate(b, a)
			mm := ev.Evaluate(b, a.WithMinMax())
			if plain.Failed || mm.Failed {
				continue
			}
			out = append(out, RepertoireResult{
				Bench:        b.Name,
				Arch:         a,
				PlainCycles:  plain.Cycles,
				MinMaxCycles: mm.Cycles,
				Gain:         float64(plain.Cycles) / float64(mm.Cycles),
			})
		}
	}
	return out
}

// SummarizeRepertoireStudy renders per-benchmark gains.
func SummarizeRepertoireStudy(results []RepertoireResult) string {
	var sb strings.Builder
	sb.WriteString("ALU repertoire extension: cycle gain from single-cycle min/max\n")
	sb.WriteString("(paper §2.2: \"our philosophy ... is to design an architecture from\n")
	sb.WriteString(" building blocks rather than synthesizing special-purpose hardware\" —\n")
	sb.WriteString(" this measures what one such block would have bought)\n")
	byBench := map[string][]RepertoireResult{}
	var order []string
	for _, r := range results {
		if _, ok := byBench[r.Bench]; !ok {
			order = append(order, r.Bench)
		}
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	for _, b := range order {
		rs := byBench[b]
		mean, best := 0.0, 0.0
		var bestArch machine.Arch
		for _, r := range rs {
			mean += r.Gain
			if r.Gain > best {
				best, bestArch = r.Gain, r.Arch
			}
		}
		mean /= float64(len(rs))
		fmt.Fprintf(&sb, "  %-5s mean %.2fx, best %.2fx on %s\n", b, mean, best, bestArch)
	}
	return sb.String()
}
