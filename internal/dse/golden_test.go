package dse

import (
	"flag"
	"math"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_fullspace.json from the current code")

const goldenPath = "testdata/golden_fullspace.json"

// goldenExplorer reproduces the configuration the golden artifact was
// captured with: the full concrete space on the three benchmarks the
// paper tables share, at the fast 48-pixel reference width.
func goldenExplorer() *Explorer {
	e := NewExplorer()
	e.Archs = machine.FullSpace()
	e.Width = 48
	e.Benchmarks = nil
	for _, n := range []string{"G", "F", "DH"} {
		e.Benchmarks = append(e.Benchmarks, bench.ByName(n))
	}
	return e
}

// TestGoldenFullSpaceEquivalence pins the exploration's numbers to a
// snapshot taken before the performance layers (shared skeletons,
// signature memoization, scratch reuse) existed. The optimizations must
// be invisible in the Results: identical Unroll, Cycles, Spilled and
// Failed per (benchmark, architecture), identical Speedup up to float
// noise, and the same logical run count (memo hits re-count the cached
// sweep, so Table 3 accounting is unchanged).
//
// Regenerate after an intentional behavior change with:
//
//	go test ./internal/dse/ -run TestGoldenFullSpace -update
func TestGoldenFullSpaceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("explores the full 762-arch space")
	}
	if raceEnabled {
		t.Skip("full-space exploration is minutes-slow under the race detector")
	}
	res, err := goldenExplorer().Run()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := res.Save(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d archs, %d runs)", goldenPath, len(res.Archs), res.Stats.Runs)
		return
	}
	want, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("loading golden: %v", err)
	}
	if len(res.Archs) != len(want.Archs) {
		t.Fatalf("arch count %d, golden has %d", len(res.Archs), len(want.Archs))
	}
	for i := range want.Archs {
		if res.Archs[i] != want.Archs[i] {
			t.Fatalf("arch %d is %v, golden has %v (space enumeration changed?)", i, res.Archs[i], want.Archs[i])
		}
	}
	if len(res.Benches) != len(want.Benches) {
		t.Fatalf("bench lists differ: %v vs golden %v", res.Benches, want.Benches)
	}
	mismatches := 0
	for bi, b := range want.Benches {
		if res.Benches[bi] != b {
			t.Fatalf("bench %d is %s, golden has %s", bi, res.Benches[bi], b)
		}
		got, wnt := res.Eval[b], want.Eval[b]
		if len(got) != len(wnt) {
			t.Fatalf("%s: %d evaluations, golden has %d", b, len(got), len(wnt))
		}
		for i := range wnt {
			g, w := got[i], wnt[i]
			if g.Unroll != w.Unroll || g.Cycles != w.Cycles || g.Spilled != w.Spilled || g.Failed != w.Failed {
				if mismatches < 10 {
					t.Errorf("%s on %v: got (u=%d cyc=%d spill=%d fail=%v), golden (u=%d cyc=%d spill=%d fail=%v)",
						b, w.Arch, g.Unroll, g.Cycles, g.Spilled, g.Failed, w.Unroll, w.Cycles, w.Spilled, w.Failed)
				}
				mismatches++
				continue
			}
			if relDiff(g.Speedup, w.Speedup) > 1e-12 || relDiff(g.Time, w.Time) > 1e-12 {
				if mismatches < 10 {
					t.Errorf("%s on %v: speedup %.15g / time %.15g, golden %.15g / %.15g",
						b, w.Arch, g.Speedup, g.Time, w.Speedup, w.Time)
				}
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d evaluations diverge from the golden snapshot", mismatches)
	}
	if res.Stats.Runs != want.Stats.Runs {
		t.Errorf("logical run count %d, golden has %d (memo accounting must preserve Table 3)",
			res.Stats.Runs, want.Stats.Runs)
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}
