package dse

import (
	"flag"
	"math"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/search"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_fullspace.json from the current code")

const goldenPath = "testdata/golden_fullspace.json"

// goldenExplorer reproduces the configuration the golden artifact was
// captured with: the full concrete space on the three benchmarks the
// paper tables share, at the fast 48-pixel reference width.
func goldenExplorer() *Explorer {
	e := NewExplorer()
	e.Archs = machine.FullSpace()
	e.Width = 48
	e.Benchmarks = nil
	for _, n := range []string{"G", "F", "DH"} {
		e.Benchmarks = append(e.Benchmarks, bench.ByName(n))
	}
	return e
}

// TestGoldenFullSpaceEquivalence pins the exploration's numbers to a
// snapshot taken before any of the performance layers (shared
// skeletons, signature memoization, scratch reuse, the persistent
// evaluation cache, bound-guided pruning) existed. Every layer must be
// invisible in the Results. The test runs the full space three ways:
//
//  1. cold persistent cache (first run fills it),
//  2. warm persistent cache (second run over the same directory, which
//     must be a 100% hit rate and still bit-identical),
//  3. bound-pruned cost-capped search over the warm evaluator, which
//     must find the exact unpruned optimum while pruning candidates.
//
// Identical means: same Unroll, Cycles, Spilled and Failed per
// (benchmark, architecture), Speedup/Time equal up to float noise, and
// the same logical run count (memo and cache hits re-count the cached
// sweep, so Table 3 accounting is unchanged).
//
// Regenerate after an intentional behavior change with:
//
//	go test ./internal/dse/ -run TestGoldenFullSpace -update
func TestGoldenFullSpaceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("explores the full 762-arch space")
	}
	if raceEnabled {
		t.Skip("full-space exploration is minutes-slow under the race detector")
	}
	dir := t.TempDir()

	// --- Pass 1: cold cache ---
	cold, err := evcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := goldenExplorer()
	e.Cache = cold
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := res.Save(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d archs, %d runs)", goldenPath, len(res.Archs), res.Stats.Runs)
		return
	}
	want, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("loading golden: %v", err)
	}
	compareToGolden(t, "cold-cache", res, want)
	if st := cold.Stats(); st.Hits != 0 || st.Misses == 0 {
		t.Errorf("cold cache stats %+v: want zero hits, nonzero misses", st)
	}
	if err := cold.Close(); err != nil {
		t.Fatalf("flushing cache: %v", err)
	}

	// --- Pass 2: warm cache, fresh process state ---
	col := obs.NewCollector()
	obs.Install(col)
	warm, err := evcache.Open(dir)
	if err != nil {
		obs.Install(nil)
		t.Fatal(err)
	}
	e2 := goldenExplorer()
	e2.Cache = warm
	res2, err := e2.Run()
	obs.Install(nil)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "warm-cache", res2, want)
	st := warm.Stats()
	if st.Misses != 0 {
		t.Errorf("warm run missed %d times: not a 100%% hit rate", st.Misses)
	}
	if st.Hits == 0 {
		t.Error("warm run recorded no cache hits")
	}
	if v := col.Counter("evcache.hits").Value(); v != st.Hits || v == 0 {
		t.Errorf("evcache.hits counter %d, cache reports %d hits", v, st.Hits)
	}
	if v := col.Counter("evcache.misses").Value(); v != 0 {
		t.Errorf("evcache.misses counter %d on a fully warm run", v)
	}

	// --- Pass 3: bound-pruned cost-capped search, exact optimum ---
	t.Run("PrunedCostCappedSearch", func(t *testing.T) {
		ev := NewEvaluator()
		ev.Width = 48
		ev.Cache = warm
		b := bench.ByName("G")
		baseline := ev.Evaluate(b, machine.Baseline)
		if baseline.Failed {
			t.Fatal("baseline evaluation failed")
		}
		cost := machine.DefaultCostModel
		const costCap = 10.0
		obj := func(a machine.Arch) float64 {
			if cost.Cost(a) > costCap {
				return math.Inf(-1)
			}
			evl := ev.Evaluate(b, a)
			if evl.Failed {
				return math.Inf(-1)
			}
			return baseline.Time / evl.Time
		}
		pcol := obs.NewCollector()
		obs.Install(pcol)
		defer obs.Install(nil)
		space := res2.Archs
		plain := search.Exhaustive(space, obj)
		bounded := search.ExhaustiveBounded(space, obj, ev.SpeedupBound(b, baseline.Time, cost, costCap))
		if bounded.Best != plain.Best || bounded.BestScore != plain.BestScore {
			t.Errorf("pruned selector found (%v, %g), exhaustive found (%v, %g)",
				bounded.Best, bounded.BestScore, plain.Best, plain.BestScore)
		}
		if bounded.Pruned == 0 {
			t.Error("cost-capped selector pruned nothing over the full space")
		}
		if v := pcol.Counter("search.pruned").Value(); int(v) != bounded.Pruned {
			t.Errorf("search.pruned counter %d, result reports %d", v, bounded.Pruned)
		}
	})
}

// compareToGolden asserts res matches the golden snapshot exactly (see
// TestGoldenFullSpaceEquivalence for what exactly means).
func compareToGolden(t *testing.T, pass string, res, want *Results) {
	t.Helper()
	if len(res.Archs) != len(want.Archs) {
		t.Fatalf("%s: arch count %d, golden has %d", pass, len(res.Archs), len(want.Archs))
	}
	for i := range want.Archs {
		if res.Archs[i] != want.Archs[i] {
			t.Fatalf("%s: arch %d is %v, golden has %v (space enumeration changed?)", pass, i, res.Archs[i], want.Archs[i])
		}
	}
	if len(res.Benches) != len(want.Benches) {
		t.Fatalf("%s: bench lists differ: %v vs golden %v", pass, res.Benches, want.Benches)
	}
	mismatches := 0
	for bi, b := range want.Benches {
		if res.Benches[bi] != b {
			t.Fatalf("%s: bench %d is %s, golden has %s", pass, bi, res.Benches[bi], b)
		}
		got, wnt := res.Eval[b], want.Eval[b]
		if len(got) != len(wnt) {
			t.Fatalf("%s: %s: %d evaluations, golden has %d", pass, b, len(got), len(wnt))
		}
		for i := range wnt {
			g, w := got[i], wnt[i]
			if g.Unroll != w.Unroll || g.Cycles != w.Cycles || g.Spilled != w.Spilled || g.Failed != w.Failed {
				if mismatches < 10 {
					t.Errorf("%s: %s on %v: got (u=%d cyc=%d spill=%d fail=%v), golden (u=%d cyc=%d spill=%d fail=%v)",
						pass, b, w.Arch, g.Unroll, g.Cycles, g.Spilled, g.Failed, w.Unroll, w.Cycles, w.Spilled, w.Failed)
				}
				mismatches++
				continue
			}
			if relDiff(g.Speedup, w.Speedup) > 1e-12 || relDiff(g.Time, w.Time) > 1e-12 {
				if mismatches < 10 {
					t.Errorf("%s: %s on %v: speedup %.15g / time %.15g, golden %.15g / %.15g",
						pass, b, w.Arch, g.Speedup, g.Time, w.Speedup, w.Time)
				}
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%s: %d evaluations diverge from the golden snapshot", pass, mismatches)
	}
	if res.Stats.Runs != want.Stats.Runs {
		t.Errorf("%s: logical run count %d, golden has %d (cache accounting must preserve Table 3)",
			pass, res.Stats.Runs, want.Stats.Runs)
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}
