package dse

import (
	"reflect"
	"strings"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
)

func testOpSet(t *testing.T) *machine.OpSet {
	t.Helper()
	ev := NewEvaluator()
	ev.Width = 48
	set, err := ev.AutoOps([]*bench.Benchmark{bench.ByName("A"), bench.ByName("H")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil {
		t.Fatal("auto-mining A and H produced no op set")
	}
	return set
}

// TestOpSigSeparation pins the memoization boundary: an op-enabled
// architecture must never share a signature class — and therefore never
// share memoized sweeps or evaluation-cache entries — with its op-free
// base, or with the same base under a different mask.
func TestOpSigSeparation(t *testing.T) {
	set := testOpSet(t)
	base := machine.Baseline
	full := base.WithOps(set, set.FullMask())
	one := base.WithOps(set, 1)
	if SigKey(base) == SigKey(full) {
		t.Errorf("op-enabled arch shares SigKey %q with its op-free base", SigKey(base))
	}
	if SigKey(full) == SigKey(one) {
		t.Errorf("different masks share SigKey %q", SigKey(full))
	}
	if SigKey(base) != SigKey(base.WithOps(set, 0)) {
		t.Error("mask 0 must be identical to no ops at all")
	}
}

// TestOpsResultsRoundTrip pins the persisted schema: an op-aware
// exploration's results survive JSON encode/decode with the shared
// catalog and every mask intact, and evaluations preserved exactly.
func TestOpsResultsRoundTrip(t *testing.T) {
	set := testOpSet(t)
	archs := machine.CrossOps(
		[]machine.Arch{machine.Baseline, {ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 1}},
		set, machine.DefaultMasks(set))
	e := NewExplorer()
	e.Archs = archs
	e.Width = 48
	e.Benchmarks = []*bench.Benchmark{bench.ByName("A")}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Archs, res.Archs) {
		t.Fatalf("archs diverge after round trip:\n got %v\nwant %v", back.Archs, res.Archs)
	}
	if !reflect.DeepEqual(back.Eval, res.Eval) {
		t.Fatal("evaluations diverge after round trip")
	}
	// The interned catalog must come back as the identical pointer, so
	// decoded archs stay ==-comparable with locally built ones.
	for i, a := range back.Archs {
		if !a.Ops.Empty() && a.Ops.Set != set {
			t.Fatalf("arch %d decoded a distinct catalog instance", i)
		}
	}
}

// TestOpFreeResultsBytesUnchanged pins the wire/file compatibility
// satellite: results without op-enabled architectures encode without
// any op fields at all.
func TestOpFreeResultsBytesUnchanged(t *testing.T) {
	e := NewExplorer()
	e.Archs = []machine.Arch{machine.Baseline}
	e.Width = 48
	e.Benchmarks = []*bench.Benchmark{bench.ByName("G")}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"ops"`) {
		t.Fatalf("op-free results leak an \"ops\" field into the persisted schema:\n%s", data)
	}
}

// TestConcurrentOpAwareExploration runs an op-crossed grid through the
// parallel explorer with a live evaluation cache — the concurrency
// surface the race target exercises. Beyond not racing, the parallel
// result must equal a serial run's.
func TestConcurrentOpAwareExploration(t *testing.T) {
	set := testOpSet(t)
	grid := machine.CrossOps(
		[]machine.Arch{
			machine.Baseline,
			{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 1},
			{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
		},
		set, machine.DefaultMasks(set))
	benches := []*bench.Benchmark{bench.ByName("A"), bench.ByName("H")}

	cache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	par := NewExplorer()
	par.Archs = grid
	par.Width = 48
	par.Benchmarks = benches
	par.Workers = 4
	par.Cache = cache
	pres, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}

	ser := NewExplorer()
	ser.Archs = grid
	ser.Width = 48
	ser.Benchmarks = benches
	ser.Workers = 1
	sres, err := ser.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		p, s := pres.Eval[b.Name], sres.Eval[b.Name]
		if len(p) != len(s) {
			t.Fatalf("%s: %d vs %d evaluations", b.Name, len(p), len(s))
		}
		for i := range s {
			if p[i].Cycles != s[i].Cycles || p[i].Unroll != s[i].Unroll || p[i].Spilled != s[i].Spilled {
				t.Errorf("%s on %v: parallel (u=%d cyc=%d) vs serial (u=%d cyc=%d)",
					b.Name, s[i].Arch, p[i].Unroll, p[i].Cycles, s[i].Unroll, s[i].Cycles)
			}
		}
	}
}
