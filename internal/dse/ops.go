package dse

import (
	"customfit/internal/bench"
	"customfit/internal/machine"
	"customfit/internal/ops"
)

// DefaultOpSetSize is how many top-ranked mined candidates the
// automatic op-set selection keeps. Small by design: every op is a
// hardware commitment (datapath area, register ports), and the classic
// MAC/SAD/clip patterns dominate the score long before the tail.
const DefaultOpSetSize = 4

// MineOps mines fused-instruction candidates from the prepared kernels
// of the given benchmarks (at unroll 1 — the canonical kernel shape;
// unrolled bodies replicate the same patterns and the rewriter matches
// them structurally), weighting every block's occurrences by the
// reference workload's visit counts, so candidates rank by the
// paper-style frequency × latency-saved score on real executions.
// Deterministic for a fixed workload.
func (e *Evaluator) MineOps(benches []*bench.Benchmark) ([]ops.Candidate, error) {
	acc := map[string]*ops.Candidate{}
	for _, b := range benches {
		p := e.prepare(nil, b, 1)
		if p.err != nil {
			return nil, p.err
		}
		visits := p.visits
		ops.Mine(p.kernel.F, func(block string) float64 {
			return float64(visits[block]) // unexecuted blocks weigh 0
		}, acc)
	}
	return ops.Rank(acc), nil
}

// AutoOps mines the benchmarks and returns the top-scoring op set of at
// most n specs (DefaultOpSetSize when n <= 0), or nil when no cluster
// qualifies.
func (e *Evaluator) AutoOps(benches []*bench.Benchmark, n int) (*machine.OpSet, error) {
	if n <= 0 {
		n = DefaultOpSetSize
	}
	cands, err := e.MineOps(benches)
	if err != nil {
		return nil, err
	}
	return ops.Select(cands, n), nil
}
