package dse

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

func TestClusterCorrectionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles dozens of configurations")
	}
	ev := NewEvaluator()
	ev.Width = 48

	fitBenches := []*bench.Benchmark{bench.ByName("D"), bench.ByName("G")}
	fitPoints := []machine.Arch{
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 2, L2Lat: 4, Clusters: 1},
	}
	cor, err := FitCorrections(ev, fitBenches, fitPoints)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering costs cycles: κ must be >= 1 and (weakly) grow with c.
	prev := 1.0
	for _, c := range []int{2, 4, 8} {
		k, ok := cor.Kappa[c]
		if !ok {
			continue
		}
		if k < 0.95 {
			t.Errorf("κ(%d) = %.3f < 1: clustering made code faster?", c, k)
		}
		if k < prev-0.25 {
			t.Errorf("κ(%d) = %.3f far below κ(%d-) = %.3f", c, k, c, prev)
		}
		prev = k
	}

	// Validate on held-out benchmarks/points.
	valBenches := []*bench.Benchmark{bench.ByName("H")}
	valPoints := []machine.Arch{
		{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
	}
	errs := ValidateCorrections(ev, cor, valBenches, valPoints)
	if len(errs) == 0 {
		t.Fatal("no held-out validation pairs")
	}
	summary := SummarizeCorrectionStudy(cor, errs)
	t.Logf("\n%s", summary)
	// The paper claims "this approximation is enough"; our honest bound
	// is loose, but it must not be wildly wrong on average.
	mean := 0.0
	for _, e := range errs {
		mean += e.RelErr
	}
	mean /= float64(len(errs))
	if mean > 0.6 {
		t.Errorf("mean held-out correction error %.0f%% — approximation unusable", 100*mean)
	}
}
