package dse

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
	"customfit/internal/sched"
	"customfit/internal/search"
)

// TestDeltaNeighborWalksBitIdentical is the delta-compilation property
// test: random neighbor walks — the exact move set the stochastic
// search strategies use (search.Neighbors) — evaluated with delta
// compilation enabled must be bit-identical to a fresh full evaluation
// of every visited architecture. Two walkers per kernel share one
// delta-enabled evaluator, so under -race this also exercises
// concurrent access to the per-kernel delta caches (block-schedule
// ring, allocation memo, partition-class state construction).
func TestDeltaNeighborWalksBitIdentical(t *testing.T) {
	space := machine.FullSpace()
	inSpace := make(map[machine.Arch]bool, len(space))
	for _, a := range space {
		inSpace[a] = true
	}

	// Both evaluators skip signature memoization so every step compares
	// real compiles: the delta path on one side, the full driver on the
	// other.
	delta := NewEvaluator()
	delta.Width = 32
	delta.DisableMemo = true
	fresh := NewEvaluator()
	fresh.Width = 32
	fresh.DisableMemo = true
	fresh.DisableDelta = true

	// Full kernel sweep with long walks normally; under the race
	// detector (or -short) shrink to two kernels and shorter walks. The
	// delta caches are per-kernel, so race coverage needs concurrent
	// walkers on a shared kernel — not the whole suite — and race
	// instrumentation makes compiles minutes-slow.
	kernels := bench.All()
	steps := 6
	if raceEnabled || testing.Short() {
		kernels = kernels[:2]
		steps = 2
	}
	const walkers = 2

	var wg sync.WaitGroup
	errs := make(chan error, len(kernels)*walkers)
	for bi, bm := range kernels {
		for w := 0; w < walkers; w++ {
			wg.Add(1)
			go func(bm *bench.Benchmark, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				cur := space[rng.Intn(len(space))]
				sc := sched.NewScratch()
				for s := 0; s < steps; s++ {
					got := delta.EvaluateScratch(bm, cur, sc)
					want := fresh.Evaluate(bm, cur)
					if got != want {
						errs <- fmt.Errorf("%s step %d arch %+v: delta %+v != fresh %+v",
							bm.Name, s, cur, got, want)
						return
					}
					ns := search.Neighbors(cur, inSpace)
					if len(ns) == 0 {
						break
					}
					cur = ns[rng.Intn(len(ns))]
				}
			}(bm, int64(1000*bi+w))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// deltaNeighborRing is a one-parameter neighbor ring around a midsize
// single-cluster machine: each member differs from the base in exactly
// one template parameter, the move shape stochastic search produces.
// Shared by the steady-state allocation pin and BenchmarkEvaluateDelta.
func deltaNeighborRing() []machine.Arch {
	base := machine.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 1}
	ring := []machine.Arch{base, base, base, base, base}
	ring[1].Regs = 512
	ring[2].L2Lat = 2
	ring[3].L2Ports = 1
	ring[4].MULs = 4
	return ring
}

// TestDeltaSteadyStateAllocs pins the steady-state allocation count of
// delta-compiled neighbor re-evaluation: once the per-kernel caches are
// warm, cycling through a one-parameter neighbor ring must run
// allocation-free apart from small constant bookkeeping — the arenas in
// sched.Scratch and regalloc.Scratch absorb everything sized by the
// kernel or the architecture.
func TestDeltaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation accounting")
	}
	ev := NewEvaluator()
	ev.Width = 48
	ev.DisableMemo = true
	bm := bench.ByName("G")
	ring := deltaNeighborRing()
	sc := sched.NewScratch()
	for r := 0; r < 2; r++ {
		for _, a := range ring {
			if got := ev.EvaluateScratch(bm, a, sc); got.Failed {
				t.Fatalf("warmup compile failed for %+v", a)
			}
		}
	}
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		ev.EvaluateScratch(bm, ring[i%len(ring)], sc)
		i++
	})
	// Budget with headroom over the measured steady state (~0); the cold
	// full driver spends thousands of allocations per evaluation.
	if avg > 24 {
		t.Errorf("steady-state neighbor re-evaluation allocates %.1f allocs/op, want <= 24", avg)
	}
}
