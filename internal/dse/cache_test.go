package dse

import (
	"sync"
	"testing"
	"time"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/sched"
)

// subsetExplorer is the benchmark subset configuration (one benchmark
// over the clustered, signature-dense region) with a cache attached.
func subsetExplorer(c *evcache.Cache) *Explorer {
	e := NewExplorer()
	e.Archs = exploreBenchArchs()
	e.Width = 48
	e.Benchmarks = []*bench.Benchmark{bench.ByName("G")}
	e.Cache = c
	return e
}

// TestWarmCacheSpeedsUpExploration is the cache's reason to exist: a
// second run over the same cache directory must cost less than 10% of
// the cold run's wall time (it skips every backend compile, every
// frontend compile, and every reference-interpreter run) while
// producing identical results.
func TestWarmCacheSpeedsUpExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("explores a few hundred architectures")
	}
	if raceEnabled {
		t.Skip("wall-clock ratio assertions are unreliable under race instrumentation")
	}
	dir := t.TempDir()
	cold, err := evcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res1, err := subsetExplorer(cold).Run()
	coldWall := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := evcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	res2, err := subsetExplorer(warm).Run()
	warmWall := time.Since(t1)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("warm run stats %+v: want all hits", st)
	}
	if warmWall*10 >= coldWall {
		t.Errorf("warm run took %v, not <10%% of cold %v", warmWall, coldWall)
	}

	// And warm must be invisible in the numbers.
	for b, wnt := range res1.Eval {
		got := res2.Eval[b]
		if len(got) != len(wnt) {
			t.Fatalf("%s: %d vs %d evaluations", b, len(got), len(wnt))
		}
		for i := range wnt {
			g, w := got[i], wnt[i]
			if g.Unroll != w.Unroll || g.Cycles != w.Cycles || g.Spilled != w.Spilled ||
				g.Failed != w.Failed || g.Time != w.Time || g.Speedup != w.Speedup {
				t.Fatalf("%s on %v: warm %+v differs from cold %+v", b, w.Arch, g, w)
			}
		}
	}
	if res1.Stats.Runs != res2.Stats.Runs {
		t.Errorf("logical runs: cold %d, warm %d", res1.Stats.Runs, res2.Stats.Runs)
	}
}

// TestSharedCacheConcurrentEvaluators exercises the cache's concurrent
// paths the way separate warm processes would: several evaluators (each
// with its own memo) sharing one cache, racing on the same keys.
func TestSharedCacheConcurrentEvaluators(t *testing.T) {
	cache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	b := bench.ByName("G")
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2},
	}
	const evaluators = 4
	results := make([][]Evaluation, evaluators)
	var wg sync.WaitGroup
	for w := 0; w < evaluators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := NewEvaluator()
			ev.Width = 32
			ev.Cache = cache
			sc := sched.NewScratch()
			for _, a := range archs {
				results[w] = append(results[w], ev.EvaluateScratch(b, a, sc))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < evaluators; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("evaluator %d arch %d: %+v differs from %+v",
					w, i, results[w][i], results[0][i])
			}
		}
	}
	st := cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Error("shared cache never deduplicated across evaluators")
	}
}

// TestLowerBoundCyclesAdmissible pins the dse-level bound to the real
// sweep: the visit-weighted lower bound must never exceed the cycles
// the full unroll sweep actually achieves.
func TestLowerBoundCyclesAdmissible(t *testing.T) {
	ev := NewEvaluator()
	ev.Width = 32
	b := bench.ByName("G")
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 2, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 8, Clusters: 1},
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 1},
		{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 4},
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2},
		{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 4},
	}
	for _, a := range archs {
		lb, ok := ev.LowerBoundCycles(b, a)
		if !ok {
			t.Fatalf("no bound for %v", a)
		}
		if lb <= 0 {
			t.Errorf("%v: non-positive bound %d", a, lb)
		}
		evl := ev.Evaluate(b, a)
		if evl.Failed {
			continue
		}
		if lb > evl.Cycles {
			t.Errorf("%v: bound %d exceeds real sweep cycles %d (inadmissible)", a, lb, evl.Cycles)
		}
	}
}

// TestCacheDisabledWithMemoOff pins DisableMemo's contract: it bypasses
// the persistent cache too, so honest per-compile measurements stay
// honest even with a warm cache attached.
func TestCacheDisabledWithMemoOff(t *testing.T) {
	cache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	b := bench.ByName("G")
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1}

	warmer := NewEvaluator()
	warmer.Width = 32
	warmer.Cache = cache
	warmer.Evaluate(b, arch)
	if cache.Stats().Misses == 0 {
		t.Fatal("warmer never touched the cache")
	}

	ev := NewEvaluator()
	ev.Width = 32
	ev.Cache = cache
	ev.DisableMemo = true
	before := cache.Stats()
	ev.Evaluate(b, arch)
	ev.Evaluate(b, arch)
	after := cache.Stats()
	if after != before {
		t.Errorf("DisableMemo run touched the cache: %+v -> %+v", before, after)
	}
	if got := ev.Compilations.Load(); got < 2 {
		t.Errorf("DisableMemo performed %d compilations for 2 evaluations", got)
	}
	// CacheCovers must report false under DisableMemo even though the
	// key is resident.
	if ev.CacheCovers(b, []machine.Arch{arch}) {
		t.Error("CacheCovers ignored DisableMemo")
	}
}
