package dse

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/ddg"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every ablation configuration")
	}
	benches := []*bench.Benchmark{bench.ByName("A"), bench.ByName("F")}
	archs := []machine.Arch{
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
	}
	results := RunAblation(benches, archs, 48)
	t.Logf("\n%s", SummarizeAblation(results))

	by := map[[2]string]AblationResult{}
	for _, r := range results {
		by[[2]string{r.Config, r.Bench}] = r
	}
	// Reassociation's effect is structural: it must shorten the FIR
	// reduction's critical path (on memory-bound machines cycles can
	// coincide, so assert on the dependence graph, not end cycles).
	assertReassociationShortensCriticalPath(t)
	if by[[2]string{"no-reassociation", "A"}].Failed {
		t.Fatal("A without reassociation failed to compile")
	}
	// If-conversion is what lets F's branchy loop body unroll; without
	// it the unroll factor is pinned at 1.
	noIf := by[[2]string{"no-if-conversion", "F"}]
	if !noIf.Failed && noIf.Unroll > 1 {
		t.Errorf("F without if-conversion still unrolled %dx", noIf.Unroll)
	}
	// LICM removal must not change results, only cycles (correctness is
	// covered elsewhere); here assert it compiled.
	if by[[2]string{"no-licm", "A"}].Failed {
		t.Error("A without LICM failed to compile")
	}
}

// assertReassociationShortensCriticalPath compares the loop-body
// critical path of benchmark A at unroll 4 with and without
// reassociation.
func assertReassociationShortensCriticalPath(t *testing.T) {
	t.Helper()
	fn, err := bench.ByName("A").Compile()
	if err != nil {
		t.Fatal(err)
	}
	arch := machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 1}
	cp := func() int {
		g, err := opt.Prepare(fn, 4)
		if err != nil {
			t.Fatal(err)
		}
		return ddg.Build(g.Loop.Header, arch).CriticalPath()
	}
	with := cp()
	opt.AblateReassociation = true
	without := cp()
	opt.AblateReassociation = false
	if with >= without {
		t.Errorf("reassociation did not shorten the critical path: %d vs %d", with, without)
	}
	t.Logf("A unroll-4 loop critical path: %d with reassociation, %d without", with, without)
}
