package dse

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/sched"
)

// ProgressInfo snapshots an in-flight exploration for progress
// reporting.
type ProgressInfo struct {
	Done, Total int
	// Failed counts evaluations where no unroll factor compiled.
	// Work abandoned because the context was cancelled is counted in
	// Cancelled, never here.
	Failed int64
	// Cancelled counts evaluations abandoned by context cancellation.
	Cancelled int64
	// Elapsed is wall time since the exploration started.
	Elapsed time.Duration
	// RatePerSec is evaluations completed per second of wall time.
	RatePerSec float64
	// ETA estimates remaining wall time at the current rate.
	ETA time.Duration
}

// Explorer runs the full experiment: every concrete machine in the
// design space (design points × cluster arrangements) against every
// benchmark.
type Explorer struct {
	Cost       machine.CostModel
	Cycle      machine.CycleModel
	Benchmarks []*bench.Benchmark
	Archs      []machine.Arch // default: machine.FullSpace()
	Workers    int            // default: GOMAXPROCS
	Width      int            // reference workload width (default 96)
	// DisableMemo turns off the evaluator's arch-signature memoization
	// (see docs/PERFORMANCE.md) so every arrangement runs real backend
	// compiles.
	DisableMemo bool
	// DisableDelta turns off the evaluator's delta compilation (see
	// Evaluator.DisableDelta); results are bit-identical either way.
	DisableDelta bool
	// Cache, when set, is the persistent evaluation cache threaded into
	// the evaluator (see internal/evcache). Results are identical with
	// or without it; a warm cache skips backend work entirely, and when
	// it covers a benchmark's whole (arch × kernel) slice the prepare
	// warm-up is skipped too.
	Cache *evcache.Cache
	// Progress, if set, is called with monotonically increasing Done
	// counts as evaluations complete. Calls are serialized, but never
	// block the workers: when the sink is slower than the fleet,
	// intermediate updates are dropped; the final update (Done == Total)
	// is always delivered.
	Progress func(ProgressInfo)
}

// NewExplorer returns an explorer over the full space and benchmark
// suite with default models.
func NewExplorer() *Explorer {
	return &Explorer{
		Cost:       machine.DefaultCostModel,
		Cycle:      machine.DefaultCycleModel,
		Benchmarks: bench.All(),
		Archs:      machine.FullSpace(),
		Width:      96,
	}
}

// PhaseTimes breaks exploration wall time down by pipeline phase.
// Times are cumulative across workers, so their sum can exceed the
// single wall-clock duration on multi-worker runs.
type PhaseTimes struct {
	// Compile is time in the backend (partition/schedule/allocate/spill).
	Compile time.Duration
	// Simulate is time in reference-workload interpreter runs.
	Simulate time.Duration
	// CostModel is time computing datapath costs for the space.
	CostModel time.Duration
}

// Stats summarizes an exploration run (the paper's Table 3).
type Stats struct {
	Runs          int64 // benchmark compilations
	Architectures int   // concrete machines evaluated
	DesignPoints  int   // unclustered design points
	Benchmarks    int
	WallTime      time.Duration
	PerArch       time.Duration // wall time / architectures
	PerRun        time.Duration // wall time / runs
	// Failures counts evaluations where no unroll factor compiled.
	// Zero-valued in files saved before this field existed. Evaluations
	// abandoned by context cancellation are counted in Cancelled, not
	// here (a cancelled run is not a compile failure).
	Failures int64
	// Cancelled counts evaluations abandoned because the exploration's
	// context ended. Always zero for a run that completed.
	Cancelled int64 `json:",omitempty"`
	// BaselineRuns counts the compilations (logical, like Runs — and
	// included in it) spent evaluating the baseline machine when it is
	// not part of the explored grid. Zero whenever the baseline is in
	// Archs (the full space includes it), so files saved from full runs
	// are unchanged. The distributed coordinator (internal/dist)
	// subtracts it when merging shards: every shard evaluates the
	// baseline for its speedup denominators, but only the shard that
	// owns the baseline's grid cell may count it.
	BaselineRuns int64 `json:",omitempty"`
	// Phases attributes cumulative time to compile vs simulate vs
	// cost-model work. Zero-valued in files saved before this field
	// existed.
	Phases PhaseTimes
}

// Results holds every measurement from one exploration.
type Results struct {
	Archs   []machine.Arch
	Benches []string
	Cost    []float64               // per arch
	Eval    map[string][]Evaluation // bench -> per-arch evaluations
	Stats   Stats
	CostMdl machine.CostModel
}

// Run executes the exploration to completion (RunCtx with a background
// context).
func (e *Explorer) Run() (*Results, error) {
	return e.RunCtx(context.Background())
}

// RunCtx executes the exploration under ctx. Cancelling ctx stops the
// scheduling of new evaluations immediately, lets in-flight backend
// compiles finish (each is milliseconds), and returns an error wrapping
// ErrCancelled; no partial Results are returned. When ctx is never
// cancelled the Results are bit-identical to Run's.
func (e *Explorer) RunCtx(ctx context.Context) (*Results, error) {
	// The run's root span: parented under the context's span when one is
	// there (a serve.job continuing a coordinator's trace), a standalone
	// root otherwise. Threading it back through ctx parents every
	// per-evaluation span underneath.
	rsp := obs.StartSpanCtx(ctx, "dse.explore")
	defer rsp.End()
	ctx = obs.ContextWithSpan(ctx, rsp)

	archs := e.Archs
	if archs == nil {
		archs = machine.FullSpace()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	width := e.Width
	if width <= 0 {
		width = 96
	}

	ev := NewEvaluator()
	ev.Width = width
	ev.Cycle = e.Cycle
	ev.DisableMemo = e.DisableMemo
	ev.DisableDelta = e.DisableDelta
	ev.Cache = e.Cache

	res := &Results{
		Archs:   archs,
		Eval:    map[string][]Evaluation{},
		CostMdl: e.Cost,
	}
	for _, b := range e.Benchmarks {
		res.Benches = append(res.Benches, b.Name)
		res.Eval[b.Name] = make([]Evaluation, len(archs))
	}
	start := time.Now()
	res.Cost = make([]float64, len(archs))
	for i, a := range archs {
		res.Cost[i] = e.Cost.Cost(a)
	}
	costTime := time.Since(start)

	// Warm the per-benchmark caches serially (one prepare per unroll)
	// so workers do not duplicate the work under the cache lock. When
	// the persistent cache already covers a benchmark's whole slice of
	// the space, skip its warm-up: no sweep will run, so the frontend
	// compiles and reference runs — the dominant cost of a warm re-run —
	// are never needed.
	for _, b := range e.Benchmarks {
		if ctx.Err() != nil {
			return nil, cancelledErr(ctx)
		}
		if ev.CacheCovers(b, archs) {
			continue
		}
		for _, u := range UnrollFactors {
			ev.prepare(rsp, b, u)
		}
	}

	type job struct {
		bi, ai int
	}
	jobs := make(chan job, workers*2)
	var wg sync.WaitGroup
	var done atomic.Int64
	var failed atomic.Int64
	var cancelled atomic.Int64
	// cbMu serializes the Progress callback without ever making workers
	// wait on it: the snapshot is assembled lock-free from the atomics,
	// and a contended intermediate update is simply dropped. lastDone
	// (under cbMu) keeps delivered updates monotonic when snapshots race.
	var cbMu sync.Mutex
	lastDone := 0
	total := len(e.Benchmarks) * len(archs)
	report := func(d int64) {
		elapsed := time.Since(start)
		p := ProgressInfo{
			Done:      int(d),
			Total:     total,
			Failed:    failed.Load(),
			Cancelled: cancelled.Load(),
			Elapsed:   elapsed,
		}
		if elapsed > 0 {
			p.RatePerSec = float64(d) / elapsed.Seconds()
		}
		if p.RatePerSec > 0 {
			p.ETA = time.Duration(float64(total-int(d)) / p.RatePerSec * float64(time.Second))
		}
		if int(d) == total {
			cbMu.Lock() // the final update must not be dropped
		} else if !cbMu.TryLock() {
			return // sink busy: skip this intermediate update
		}
		if p.Done > lastDone {
			lastDone = p.Done
			e.Progress(p)
		}
		cbMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := sched.NewScratch()
			var busy, wait time.Duration
			for {
				t0 := time.Now()
				j, ok := <-jobs
				wait += time.Since(t0)
				if !ok {
					break
				}
				b := e.Benchmarks[j.bi]
				t1 := time.Now()
				evl := ev.EvaluateScratchCtx(ctx, b, archs[j.ai], sc)
				busy += time.Since(t1)
				res.Eval[b.Name][j.ai] = evl
				switch {
				case evl.Cancelled:
					cancelled.Add(1)
				case evl.Failed:
					failed.Add(1)
				}
				d := done.Add(1)
				if e.Progress != nil {
					report(d)
				}
			}
			obs.GetHistogram("dse.worker_busy_seconds").Observe(busy.Seconds())
			obs.GetHistogram("dse.worker_queue_wait_seconds").Observe(wait.Seconds())
		}()
	}
	// Feed the fleet; a cancelled context stops scheduling right here —
	// workers then drain only what is already queued, and each of those
	// evaluations short-circuits to Cancelled before compiling.
feed:
	for bi := range e.Benchmarks {
		for ai := range archs {
			select {
			case jobs <- job{bi, ai}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()

	if ctx.Err() != nil {
		return nil, cancelledErr(ctx)
	}

	// Baseline times and speedups. The baseline machine is evaluated
	// like any other (it is in the space); if absent, evaluate it now
	// and attribute those runs to Stats.BaselineRuns (grid runs and
	// out-of-grid baseline runs must stay separable for distributed
	// merges).
	baseIdx := -1
	for i, a := range archs {
		if a == machine.Baseline {
			baseIdx = i
			break
		}
	}
	preBaselineRuns := ev.Compilations.Load()
	for _, b := range e.Benchmarks {
		var baseTime float64
		if baseIdx >= 0 {
			baseTime = res.Eval[b.Name][baseIdx].Time
		} else {
			bev := ev.EvaluateCtx(ctx, b, machine.Baseline)
			if bev.Cancelled {
				return nil, cancelledErr(ctx)
			}
			baseTime = bev.Time
		}
		if baseTime <= 0 {
			return nil, fmt.Errorf("dse: baseline failed on %s", b.Name)
		}
		evs := res.Eval[b.Name]
		for i := range evs {
			if !evs[i].Failed && evs[i].Time > 0 {
				evs[i].Speedup = baseTime / evs[i].Time
			}
		}
	}

	wall := time.Since(start)
	runs := ev.Compilations.Load()
	compileTime, simTime := ev.PhaseTimes()
	res.Stats = Stats{
		Runs:          runs,
		Architectures: len(archs),
		DesignPoints:  len(machine.DesignSpace()),
		Benchmarks:    len(e.Benchmarks),
		WallTime:      wall,
		Failures:      failed.Load(),
		Cancelled:     cancelled.Load(),
		BaselineRuns:  runs - preBaselineRuns,
		Phases: PhaseTimes{
			Compile:   compileTime,
			Simulate:  simTime,
			CostModel: costTime,
		},
	}
	if len(archs) > 0 {
		res.Stats.PerArch = wall / time.Duration(len(archs))
	}
	if runs > 0 {
		res.Stats.PerRun = wall / time.Duration(runs)
	}
	if obs.Enabled() && wall > 0 {
		obs.SetGauge("dse.compiles_per_sec", float64(runs)/wall.Seconds())
		obs.SetGauge("dse.evals_per_sec", float64(total)/wall.Seconds())
		obs.GetCounter("dse.evaluations").Add(int64(total))
	}
	return res, nil
}

// ScatterPoint is one (cost, speedup) point of Figures 3/4.
type ScatterPoint struct {
	Arch    machine.Arch
	Cost    float64
	Speedup float64
	Best    bool // on the best cost/performance frontier
}

// Scatter builds the Figure 3/4 data for one benchmark: each design
// point appears once with its best cluster arrangement (the paper:
// "after the best cluster arrangement had been selected"), and the
// Pareto frontier of best cost/performance alternatives is marked.
func (r *Results) Scatter(benchName string) []ScatterPoint {
	evs, ok := r.Eval[benchName]
	if !ok {
		return nil
	}
	// Group by unclustered design point; keep the best-speedup cluster
	// arrangement. The op set is part of the design point (it changes
	// the datapath, and the cost), so op-enabled variants chart as their
	// own points rather than collapsing into their 6-tuple base.
	type key struct {
		a, m, reg, p2, l2 int
		ops               string
	}
	best := map[key]int{}
	for i, ev := range evs {
		if ev.Failed {
			continue
		}
		k := key{ev.Arch.ALUs, ev.Arch.MULs, ev.Arch.Regs, ev.Arch.L2Ports, ev.Arch.L2Lat, ev.Arch.Ops.Key()}
		if j, ok := best[k]; !ok || ev.Speedup > evs[j].Speedup {
			best[k] = i
		}
	}
	var pts []ScatterPoint
	for _, i := range best {
		pts = append(pts, ScatterPoint{
			Arch:    evs[i].Arch,
			Cost:    r.Cost[i],
			Speedup: evs[i].Speedup,
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		return pts[i].Speedup > pts[j].Speedup
	})
	// Pareto frontier: increasing cost must strictly improve speedup.
	bestSu := 0.0
	for i := range pts {
		if pts[i].Speedup > bestSu {
			pts[i].Best = true
			bestSu = pts[i].Speedup
		}
	}
	return pts
}
