package dse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

// Explorer runs the full experiment: every concrete machine in the
// design space (design points × cluster arrangements) against every
// benchmark.
type Explorer struct {
	Cost       machine.CostModel
	Cycle      machine.CycleModel
	Benchmarks []*bench.Benchmark
	Archs      []machine.Arch // default: machine.FullSpace()
	Workers    int            // default: GOMAXPROCS
	Width      int            // reference workload width (default 96)
	Progress   func(done, total int)
}

// NewExplorer returns an explorer over the full space and benchmark
// suite with default models.
func NewExplorer() *Explorer {
	return &Explorer{
		Cost:       machine.DefaultCostModel,
		Cycle:      machine.DefaultCycleModel,
		Benchmarks: bench.All(),
		Archs:      machine.FullSpace(),
		Width:      96,
	}
}

// Stats summarizes an exploration run (the paper's Table 3).
type Stats struct {
	Runs          int64 // benchmark compilations
	Architectures int   // concrete machines evaluated
	DesignPoints  int   // unclustered design points
	Benchmarks    int
	WallTime      time.Duration
	PerArch       time.Duration // wall time / architectures
	PerRun        time.Duration // wall time / runs
}

// Results holds every measurement from one exploration.
type Results struct {
	Archs   []machine.Arch
	Benches []string
	Cost    []float64               // per arch
	Eval    map[string][]Evaluation // bench -> per-arch evaluations
	Stats   Stats
	CostMdl machine.CostModel
}

// Run executes the exploration.
func (e *Explorer) Run() (*Results, error) {
	archs := e.Archs
	if archs == nil {
		archs = machine.FullSpace()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	width := e.Width
	if width <= 0 {
		width = 96
	}

	ev := NewEvaluator()
	ev.Width = width
	ev.Cycle = e.Cycle

	res := &Results{
		Archs:   archs,
		Eval:    map[string][]Evaluation{},
		CostMdl: e.Cost,
	}
	for _, b := range e.Benchmarks {
		res.Benches = append(res.Benches, b.Name)
		res.Eval[b.Name] = make([]Evaluation, len(archs))
	}
	res.Cost = make([]float64, len(archs))
	for i, a := range archs {
		res.Cost[i] = e.Cost.Cost(a)
	}

	// Warm the per-benchmark caches serially (one prepare per unroll)
	// so workers do not duplicate the work under the cache lock.
	for _, b := range e.Benchmarks {
		for _, u := range UnrollFactors {
			ev.prepare(b, u)
		}
	}

	type job struct {
		bi, ai int
	}
	jobs := make(chan job, workers*2)
	var wg sync.WaitGroup
	var done int64
	var doneMu sync.Mutex
	total := len(e.Benchmarks) * len(archs)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				b := e.Benchmarks[j.bi]
				res.Eval[b.Name][j.ai] = ev.Evaluate(b, archs[j.ai])
				if e.Progress != nil {
					doneMu.Lock()
					done++
					e.Progress(int(done), total)
					doneMu.Unlock()
				}
			}
		}()
	}
	for bi := range e.Benchmarks {
		for ai := range archs {
			jobs <- job{bi, ai}
		}
	}
	close(jobs)
	wg.Wait()

	// Baseline times and speedups. The baseline machine is evaluated
	// like any other (it is in the space); if absent, evaluate it now.
	baseIdx := -1
	for i, a := range archs {
		if a == machine.Baseline {
			baseIdx = i
			break
		}
	}
	for _, b := range e.Benchmarks {
		var baseTime float64
		if baseIdx >= 0 {
			baseTime = res.Eval[b.Name][baseIdx].Time
		} else {
			bev := ev.Evaluate(b, machine.Baseline)
			baseTime = bev.Time
		}
		if baseTime <= 0 {
			return nil, fmt.Errorf("dse: baseline failed on %s", b.Name)
		}
		evs := res.Eval[b.Name]
		for i := range evs {
			if !evs[i].Failed && evs[i].Time > 0 {
				evs[i].Speedup = baseTime / evs[i].Time
			}
		}
	}

	wall := time.Since(start)
	res.Stats = Stats{
		Runs:          ev.Compilations,
		Architectures: len(archs),
		DesignPoints:  len(machine.DesignSpace()),
		Benchmarks:    len(e.Benchmarks),
		WallTime:      wall,
	}
	if len(archs) > 0 {
		res.Stats.PerArch = wall / time.Duration(len(archs))
	}
	if ev.Compilations > 0 {
		res.Stats.PerRun = wall / time.Duration(ev.Compilations)
	}
	return res, nil
}

// ScatterPoint is one (cost, speedup) point of Figures 3/4.
type ScatterPoint struct {
	Arch    machine.Arch
	Cost    float64
	Speedup float64
	Best    bool // on the best cost/performance frontier
}

// Scatter builds the Figure 3/4 data for one benchmark: each design
// point appears once with its best cluster arrangement (the paper:
// "after the best cluster arrangement had been selected"), and the
// Pareto frontier of best cost/performance alternatives is marked.
func (r *Results) Scatter(benchName string) []ScatterPoint {
	evs, ok := r.Eval[benchName]
	if !ok {
		return nil
	}
	// Group by unclustered design point; keep the best-speedup cluster
	// arrangement.
	type key struct{ a, m, reg, p2, l2 int }
	best := map[key]int{}
	for i, ev := range evs {
		if ev.Failed {
			continue
		}
		k := key{ev.Arch.ALUs, ev.Arch.MULs, ev.Arch.Regs, ev.Arch.L2Ports, ev.Arch.L2Lat}
		if j, ok := best[k]; !ok || ev.Speedup > evs[j].Speedup {
			best[k] = i
		}
	}
	var pts []ScatterPoint
	for _, i := range best {
		pts = append(pts, ScatterPoint{
			Arch:    evs[i].Arch,
			Cost:    r.Cost[i],
			Speedup: evs[i].Speedup,
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		return pts[i].Speedup > pts[j].Speedup
	})
	// Pareto frontier: increasing cost must strictly improve speedup.
	bestSu := 0.0
	for i := range pts {
		if pts[i].Speedup > bestSu {
			pts[i].Best = true
			bestSu = pts[i].Speedup
		}
	}
	return pts
}
