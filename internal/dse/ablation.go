package dse

import (
	"fmt"
	"strings"

	"customfit/internal/bench"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sched"
)

// AblationResult measures one benchmark × machine under one
// configuration of the compiler's design choices.
type AblationResult struct {
	Config string
	Bench  string
	Arch   machine.Arch
	Cycles int64
	Unroll int
	// Slowdown is Cycles / full-pipeline Cycles (1.0 = no effect).
	Slowdown float64
	Failed   bool
}

// ablationConfigs enumerates the compiler design choices DESIGN.md
// calls out, each switched off in isolation.
var ablationConfigs = []struct {
	name  string
	set   func()
	unset func()
}{
	{"full", func() {}, func() {}},
	{"no-reassociation",
		func() { opt.AblateReassociation = true },
		func() { opt.AblateReassociation = false }},
	{"no-licm",
		func() { opt.AblateLICM = true },
		func() { opt.AblateLICM = false }},
	{"no-if-conversion",
		func() { opt.AblateIfConversion = true },
		func() { opt.AblateIfConversion = false }},
	{"no-pressure-throttle",
		func() { sched.AblatePressureThrottle = true },
		func() { sched.AblatePressureThrottle = false }},
}

// RunAblation evaluates each benchmark on each machine with each design
// choice disabled in isolation. It is single-threaded by construction
// (the ablation switches are globals).
func RunAblation(benches []*bench.Benchmark, archs []machine.Arch, width int) []AblationResult {
	var out []AblationResult
	baseCycles := map[string]int64{}
	for _, cfg := range ablationConfigs {
		cfg.set()
		ev := NewEvaluator() // fresh caches: prepared IR depends on the switches
		ev.Width = width
		for _, b := range benches {
			for _, a := range archs {
				e := ev.Evaluate(b, a)
				r := AblationResult{
					Config: cfg.name, Bench: b.Name, Arch: a,
					Cycles: e.Cycles, Unroll: e.Unroll, Failed: e.Failed,
				}
				key := b.Name + a.String()
				if cfg.name == "full" {
					baseCycles[key] = e.Cycles
				}
				if base := baseCycles[key]; base > 0 && !e.Failed {
					r.Slowdown = float64(e.Cycles) / float64(base)
				}
				out = append(out, r)
			}
		}
		cfg.unset()
	}
	return out
}

// SummarizeAblation renders mean slowdown per configuration.
func SummarizeAblation(results []AblationResult) string {
	var sb strings.Builder
	sb.WriteString("ablation: cycle slowdown vs the full pipeline (mean over benchmark×machine)\n")
	order := []string{}
	sums := map[string]float64{}
	counts := map[string]int{}
	fails := map[string]int{}
	for _, r := range results {
		if _, seen := sums[r.Config]; !seen {
			order = append(order, r.Config)
		}
		if r.Failed {
			fails[r.Config]++
			continue
		}
		if r.Slowdown > 0 {
			sums[r.Config] += r.Slowdown
			counts[r.Config]++
		}
	}
	for _, cfg := range order {
		if counts[cfg] == 0 {
			fmt.Fprintf(&sb, "  %-22s all failed\n", cfg)
			continue
		}
		fmt.Fprintf(&sb, "  %-22s %.2fx", cfg, sums[cfg]/float64(counts[cfg]))
		if fails[cfg] > 0 {
			fmt.Fprintf(&sb, "  (%d configurations failed to compile)", fails[cfg])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
