package dse

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/sched"
)

// exploreBenchArchs is the exploration benchmarks' architecture subset:
// the clustered, signature-dense region of the full space (8- and
// 16-ALU machines with large register files), which is where the
// backend spends most of its time on a real full-space run and where
// cluster arrangements collapse onto shared backend signatures.
func exploreBenchArchs() []machine.Arch {
	var out []machine.Arch
	for _, a := range machine.FullSpace() {
		if a.ALUs >= 8 && a.Regs >= 256 && a.L2Lat != 8 {
			out = append(out, a)
		}
	}
	return out
}

// BenchmarkEvaluate measures the per-evaluation backend cost (unroll
// sweep, partition, schedule, allocate) with the prepared-IR cache warm,
// cycling through distinct architectures so every iteration performs
// real backend work. Signature memoization and delta compilation are
// both disabled so the number is an honest cold per-compile cost — the
// baseline BenchmarkEvaluateDelta is measured against — and a reused
// Scratch arena matches the explorer worker's steady state.
func BenchmarkEvaluate(b *testing.B) {
	ev := NewEvaluator()
	ev.Width = 48
	ev.DisableMemo = true
	ev.DisableDelta = true
	bm := bench.ByName("G")
	archs := exploreBenchArchs()
	for _, u := range UnrollFactors {
		ev.prepare(nil, bm, u)
	}
	sc := sched.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateScratch(bm, archs[i%len(archs)], sc)
	}
}

// BenchmarkEvaluateDelta measures the steady-state neighbor
// re-evaluation path the stochastic search strategies sit on: delta
// compilation enabled, caches warm, cycling through a one-parameter
// neighbor ring so every iteration is the kind of move hill climbing
// and annealing generate. Compare against BenchmarkEvaluate (the cold
// full driver) for the delta speedup.
func BenchmarkEvaluateDelta(b *testing.B) {
	ev := NewEvaluator()
	ev.Width = 48
	ev.DisableMemo = true
	bm := bench.ByName("G")
	ring := deltaNeighborRing()
	for _, u := range UnrollFactors {
		ev.prepare(nil, bm, u)
	}
	sc := sched.NewScratch()
	for r := 0; r < 2; r++ {
		for _, a := range ring {
			ev.EvaluateScratch(bm, a, sc)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateScratch(bm, ring[i%len(ring)], sc)
	}
}

// BenchmarkEvaluateWarmCache measures the persistent-cache hit path as
// a fresh process would see it: a new evaluator per iteration (so the
// in-process memo never hits and the kernel-class hash is recomputed)
// resolving evaluations from a shared warm cache.
func BenchmarkEvaluateWarmCache(b *testing.B) {
	cache, err := evcache.Open("")
	if err != nil {
		b.Fatal(err)
	}
	bm := bench.ByName("G")
	archs := exploreBenchArchs()
	warmer := NewEvaluator()
	warmer.Width = 48
	warmer.Cache = cache
	for _, a := range archs {
		warmer.Evaluate(bm, a)
	}
	if cache.Stats().Misses == 0 {
		b.Fatal("cache never filled")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator()
		ev.Width = 48
		ev.Cache = cache
		evl := ev.Evaluate(bm, archs[i%len(archs)])
		if evl.Failed && evl.Cycles != 0 {
			b.Fatal("inconsistent cached evaluation")
		}
	}
}

// BenchmarkExploreOpsSubset is BenchmarkExploreSubset's op-aware twin:
// the same subspace crossed with a fixed two-op catalog (the paper's
// MAC plus an add-add chain), so every iteration pays the pattern
// rewrite, the custom-unit scheduling path, and the doubled grid. The
// catalog is pinned rather than mined so the measurement tracks the
// explorer, not the miner.
func BenchmarkExploreOpsSubset(b *testing.B) {
	set, err := machine.ParseOpCatalog([]string{
		"mac/3/2:mul $0 $1;add %0 $2",
		"add_add/3/1:add $0 $1;add %0 $2",
	})
	if err != nil {
		b.Fatal(err)
	}
	archs := machine.CrossOps(exploreBenchArchs(), set, machine.DefaultMasks(set))
	benches := []*bench.Benchmark{bench.ByName("G")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewExplorer()
		e.Archs = archs
		e.Width = 48
		e.Benchmarks = benches
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(archs)*len(benches)), "evals")
			b.ReportMetric(float64(res.Stats.Runs), "runs")
		}
	}
}

// BenchmarkExploreSubset measures end-to-end exploration wall time over
// a fixed subspace, including prepare, the cross-architecture caching
// layers, and speedup post-processing — the number trajectory tracked
// across PRs in BENCH_explore.json.
func BenchmarkExploreSubset(b *testing.B) {
	archs := exploreBenchArchs()
	benches := []*bench.Benchmark{bench.ByName("G")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewExplorer()
		e.Archs = archs
		e.Width = 48
		e.Benchmarks = benches
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(archs)*len(benches)), "evals")
			b.ReportMetric(float64(res.Stats.Runs), "runs")
		}
	}
}
