package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"customfit/internal/machine"
)

// resultsJSON is the serialized form of Results (Stats durations encode
// as nanoseconds via time.Duration's integer representation). The
// schema only grows: files saved before Stats gained Failures and the
// per-phase time breakdown (Phases) still load, with those fields
// zero-valued.
type resultsJSON struct {
	Archs   []archJSON              `json:"archs"`
	Benches []string                `json:"benches"`
	Cost    []float64               `json:"cost"`
	Eval    map[string][]Evaluation `json:"eval"`
	Stats   Stats                   `json:"stats"`
	// Ops is the shared custom-op catalog (codec texts, see
	// ir.ParseFusedSpec) when the explored grid carried an op axis.
	// Absent for op-free runs, keeping their files byte-identical to the
	// 6-tuple era.
	Ops []string `json:"ops,omitempty"`
}

type archJSON struct {
	A, M, R, P2, L2, C int
	// Ops is the architecture's enable mask over the results' shared
	// catalog, in hex; omitted for op-free architectures.
	Ops string `json:"ops,omitempty"`
}

// JSON encodes the results in the persisted schema (the same bytes
// Save writes). It is the wire format of cfp-serve's explore jobs, so
// a server-side exploration round-trips through FromJSON into the
// exact Results a local run would have produced.
func (r *Results) JSON() ([]byte, error) {
	out := resultsJSON{
		Benches: r.Benches,
		Cost:    r.Cost,
		Eval:    r.Eval,
		Stats:   r.Stats,
	}
	var set *machine.OpSet
	for _, a := range r.Archs {
		aj := archJSON{A: a.ALUs, M: a.MULs, R: a.Regs, P2: a.L2Ports, L2: a.L2Lat, C: a.Clusters}
		if !a.Ops.Empty() {
			switch {
			case set == nil:
				set = a.Ops.Set
				out.Ops = set.Wire()
			case set != a.Ops.Set:
				return nil, fmt.Errorf("dse: encode results: architectures draw from different op catalogs")
			}
			aj.Ops = strconv.FormatUint(a.Ops.Mask, 16)
		}
		out.Archs = append(out.Archs, aj)
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("dse: encode results: %w", err)
	}
	return data, nil
}

// FromJSON decodes results encoded by JSON (or saved by Save).
func FromJSON(data []byte) (*Results, error) {
	var in resultsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("dse: decode results: %w", err)
	}
	r := &Results{
		Benches: in.Benches,
		Cost:    in.Cost,
		Eval:    in.Eval,
		Stats:   in.Stats,
	}
	var set *machine.OpSet
	if len(in.Ops) > 0 {
		s, err := machine.ParseOpCatalog(in.Ops)
		if err != nil {
			return nil, fmt.Errorf("dse: decode results: %w", err)
		}
		set = s
	}
	for _, a := range in.Archs {
		arch := machine.Arch{
			ALUs: a.A, MULs: a.M, Regs: a.R, L2Ports: a.P2, L2Lat: a.L2, Clusters: a.C,
		}
		if a.Ops != "" {
			if set == nil {
				return nil, fmt.Errorf("dse: decode results: arch op mask %q without a catalog", a.Ops)
			}
			mask, err := strconv.ParseUint(a.Ops, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("dse: decode results: bad op mask %q: %w", a.Ops, err)
			}
			arch = arch.WithOps(set, mask)
			if err := arch.Validate(); err != nil {
				return nil, fmt.Errorf("dse: decode results: %w", err)
			}
		}
		r.Archs = append(r.Archs, arch)
	}
	return r, nil
}

// Save writes the results to path as JSON.
func (r *Results) Save(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads results saved by Save.
func Load(path string) (*Results, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", path, err)
	}
	return r, nil
}
