package dse

import (
	"encoding/json"
	"fmt"
	"os"

	"customfit/internal/machine"
)

// resultsJSON is the serialized form of Results (Stats durations encode
// as nanoseconds via time.Duration's integer representation). The
// schema only grows: files saved before Stats gained Failures and the
// per-phase time breakdown (Phases) still load, with those fields
// zero-valued.
type resultsJSON struct {
	Archs   []archJSON              `json:"archs"`
	Benches []string                `json:"benches"`
	Cost    []float64               `json:"cost"`
	Eval    map[string][]Evaluation `json:"eval"`
	Stats   Stats                   `json:"stats"`
}

type archJSON struct {
	A, M, R, P2, L2, C int
}

// JSON encodes the results in the persisted schema (the same bytes
// Save writes). It is the wire format of cfp-serve's explore jobs, so
// a server-side exploration round-trips through FromJSON into the
// exact Results a local run would have produced.
func (r *Results) JSON() ([]byte, error) {
	out := resultsJSON{
		Benches: r.Benches,
		Cost:    r.Cost,
		Eval:    r.Eval,
		Stats:   r.Stats,
	}
	for _, a := range r.Archs {
		out.Archs = append(out.Archs, archJSON{a.ALUs, a.MULs, a.Regs, a.L2Ports, a.L2Lat, a.Clusters})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("dse: encode results: %w", err)
	}
	return data, nil
}

// FromJSON decodes results encoded by JSON (or saved by Save).
func FromJSON(data []byte) (*Results, error) {
	var in resultsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("dse: decode results: %w", err)
	}
	r := &Results{
		Benches: in.Benches,
		Cost:    in.Cost,
		Eval:    in.Eval,
		Stats:   in.Stats,
	}
	for _, a := range in.Archs {
		r.Archs = append(r.Archs, machine.Arch{
			ALUs: a.A, MULs: a.M, Regs: a.R, L2Ports: a.P2, L2Lat: a.L2, Clusters: a.C,
		})
	}
	return r, nil
}

// Save writes the results to path as JSON.
func (r *Results) Save(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads results saved by Save.
func Load(path string) (*Results, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", path, err)
	}
	return r, nil
}
