package dse

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

func TestHeavyPair(t *testing.T) {
	ev := NewEvaluator()
	for i := 0; i < 3; i++ {
		ev.Evaluate(bench.ByName("C"), machine.Arch{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8})
		ev.Evaluate(bench.ByName("C"), machine.Arch{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 2, L2Lat: 4, Clusters: 2})
	}
}
