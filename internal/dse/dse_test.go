package dse

import (
	"math"
	"os"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

// smallSpace is a fast, representative subspace for tests.
var smallSpace = []machine.Arch{
	machine.Baseline,
	{ALUs: 2, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 4, Clusters: 1},
	{ALUs: 4, MULs: 2, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 4},
	{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 4},
	{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 1},
	{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2},
	{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8},
	{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 1, L2Lat: 4, Clusters: 4},
}

func smallExplorer(benches ...string) *Explorer {
	e := NewExplorer()
	e.Archs = smallSpace
	e.Width = 48
	if len(benches) > 0 {
		e.Benchmarks = nil
		for _, n := range benches {
			e.Benchmarks = append(e.Benchmarks, bench.ByName(n))
		}
	}
	return e
}

func TestExplorerSmallSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a miniature exploration")
	}
	e := smallExplorer("A", "D", "G", "H")
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Benches {
		for i, ev := range res.Eval[b] {
			if ev.Failed {
				t.Errorf("%s on %s failed", b, res.Archs[i])
				continue
			}
			if ev.Speedup <= 0 {
				t.Errorf("%s on %s: speedup %f", b, res.Archs[i], ev.Speedup)
			}
		}
		// The baseline must have speedup exactly 1.
		if su := res.Eval[b][0].Speedup; math.Abs(su-1) > 1e-9 {
			t.Errorf("%s baseline speedup = %f, want 1", b, su)
		}
	}
	// A richer machine should beat the baseline on every benchmark.
	richIdx := 5 // (8 4 256 2 2 2)
	for _, b := range res.Benches {
		if su := res.Eval[b][richIdx].Speedup; su <= 1 {
			t.Errorf("%s on rich machine: speedup %f, want > 1", b, su)
		}
	}
	if res.Stats.Runs < int64(len(res.Benches)*len(res.Archs)) {
		t.Errorf("compilation count %d implausibly low", res.Stats.Runs)
	}
}

func TestUnrollSweepStopsAtSpill(t *testing.T) {
	ev := NewEvaluator()
	ev.Width = 48
	// The register-starved machine must stop unrolling early on the
	// register-hungry FIR, while the 512-register machine unrolls on.
	starved := machine.Arch{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8}
	rich := machine.Arch{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 4}
	a := bench.ByName("A")
	es := ev.Evaluate(a, starved)
	er := ev.Evaluate(a, rich)
	if es.Failed || er.Failed {
		t.Fatalf("evaluation failed: starved=%v rich=%v", es.Failed, er.Failed)
	}
	if es.Unroll > er.Unroll {
		t.Errorf("starved machine unrolled %d > rich machine %d", es.Unroll, er.Unroll)
	}
	if er.Time >= es.Time {
		t.Errorf("rich machine slower (%f) than starved (%f) on A", er.Time, es.Time)
	}
}

func TestScatterFrontier(t *testing.T) {
	e := smallExplorer("G")
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Scatter("G")
	if len(pts) == 0 {
		t.Fatal("no scatter points")
	}
	// Frontier must be strictly increasing in speedup along cost.
	lastSu := 0.0
	for _, p := range pts {
		if p.Best {
			if p.Speedup <= lastSu {
				t.Errorf("frontier not increasing at cost %.2f", p.Cost)
			}
			lastSu = p.Speedup
		}
	}
	// Each design point appears at most once.
	seen := map[[5]int]bool{}
	for _, p := range pts {
		k := [5]int{p.Arch.ALUs, p.Arch.MULs, p.Arch.Regs, p.Arch.L2Ports, p.Arch.L2Lat}
		if seen[k] {
			t.Errorf("design point %v appears twice", k)
		}
		seen[k] = true
	}
}

func TestSelectConstrainedRangeSemantics(t *testing.T) {
	e := smallExplorer("A", "D", "G", "H")
	// Restrict displayed benches to the evaluated subset for this test.
	old := DisplayBenches
	DisplayBenches = []string{"A", "D", "G", "H"}
	defer func() { DisplayBenches = old }()

	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	cap := 10.0
	zero := res.SelectConstrained(cap, 0)
	ten := res.SelectConstrained(cap, 0.10)
	inf := res.SelectConstrained(cap, math.Inf(1))
	if len(zero) != 4 || len(ten) != 4 || len(inf) != 4 {
		t.Fatalf("row counts: %d %d %d, want 4 each", len(zero), len(ten), len(inf))
	}
	for i := range zero {
		if zero[i].Cost > cap {
			t.Errorf("%s: cost %f exceeds cap", zero[i].Target, zero[i].Cost)
		}
		// Range=0 maximizes own speedup; Range=10%% may give some up.
		if ten[i].OwnSpeedup > zero[i].OwnSpeedup+1e-9 {
			t.Errorf("%s: 10%% range beat range 0 on own speedup", ten[i].Target)
		}
		if ten[i].OwnSpeedup < 0.9*zero[i].OwnSpeedup-1e-9 {
			t.Errorf("%s: 10%% range selection fell below the floor (%f < 0.9*%f)",
				ten[i].Target, ten[i].OwnSpeedup, zero[i].OwnSpeedup)
		}
		// Wider range can only help the average.
		if ten[i].Average < zero[i].Average-1e-9 {
			t.Errorf("%s: widening range hurt the average", ten[i].Target)
		}
		if inf[i].Average < ten[i].Average-1e-9 {
			t.Errorf("%s: infinite range hurt the average", inf[i].Target)
		}
	}
	// Range=∞ picks the same architecture for every target.
	for i := 1; i < len(inf); i++ {
		if inf[i].ArchIdx != inf[0].ArchIdx {
			t.Error("Range=∞ rows disagree on the architecture")
		}
	}
	bo := res.BestOverall(cap)
	if bo == nil || bo.ArchIdx != inf[0].ArchIdx {
		t.Error("BestOverall disagrees with Range=∞ selection")
	}
}

func TestSpreadAtCost(t *testing.T) {
	e := smallExplorer("A", "H")
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.SpreadAtCost("A", 8, 0.5)
	if lo <= 0 || hi < lo {
		t.Errorf("spread = [%f, %f], want 0 < lo <= hi", lo, hi)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	r := syntheticResults()
	r.Stats = Stats{Runs: 42, Architectures: len(r.Archs), Benchmarks: len(r.Benches)}
	path := t.TempDir() + "/results.json"
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Archs) != len(r.Archs) || back.Archs[1] != r.Archs[1] {
		t.Errorf("archs did not round-trip: %v vs %v", back.Archs, r.Archs)
	}
	if back.Stats.Runs != 42 {
		t.Errorf("stats did not round-trip: %+v", back.Stats)
	}
	for _, b := range r.Benches {
		for i := range r.Eval[b] {
			if back.Eval[b][i].Speedup != r.Eval[b][i].Speedup {
				t.Fatalf("eval %s[%d] did not round-trip", b, i)
			}
		}
	}
	// Selection on loaded results must work identically.
	a := r.SelectConstrained(10, 0)
	bsel := back.SelectConstrained(10, 0)
	if len(a) != len(bsel) || (len(a) > 0 && a[0].ArchIdx != bsel[0].ArchIdx) {
		t.Error("selection differs after round-trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestEvaluatorCachesPreparedIR(t *testing.T) {
	ev := NewEvaluator()
	ev.Width = 32
	b := bench.ByName("G")
	a1 := machine.Baseline
	a2 := machine.Arch{ALUs: 2, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 4, Clusters: 1}
	e1 := ev.Evaluate(b, a1)
	n1 := ev.Compilations.Load()
	e2 := ev.Evaluate(b, a2)
	n2 := ev.Compilations.Load()
	if e1.Failed || e2.Failed {
		t.Fatal("evaluation failed")
	}
	// The second evaluation must reuse the prepared IR (compilations
	// grow only by the second arch's unroll sweep, not by preparation
	// failures).
	if n2-n1 > int64(len(UnrollFactors)) {
		t.Errorf("second evaluation ran %d compiles (> unroll sweep)", n2-n1)
	}
}

// TestReferenceWidthInsensitivity: the choice of reference row width
// must not change the conclusions — speedups measured at 48 and 192
// pixels must agree within a few percent once the pixel loop dominates.
func TestReferenceWidthInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles benchmarks at two widths")
	}
	arch := machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2}
	for _, name := range []string{"A", "D", "G", "H"} {
		b := bench.ByName(name)
		su := func(width int) float64 {
			ev := NewEvaluator()
			ev.Width = width
			base := ev.Evaluate(b, machine.Baseline)
			rich := ev.Evaluate(b, arch)
			if base.Failed || rich.Failed {
				t.Fatalf("%s at width %d failed", name, width)
			}
			return base.Time / rich.Time
		}
		a, c := su(48), su(192)
		if diff := math.Abs(a-c) / c; diff > 0.10 {
			t.Errorf("%s: speedup %.2f at width 48 vs %.2f at 192 (%.0f%% drift)",
				name, a, c, 100*diff)
		}
	}
}
