package dse

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

// TestSignatureClassesCompileIdentically is the property behind the
// memoization: with the memo disabled, every architecture in the full
// space must produce exactly the same backend sweep as its signature
// class representative — same chosen unroll, static cycles, spill count
// and failure status — and the same cycle-time derate, so the memoized
// Evaluation (including Time) is exact, not approximate.
func TestSignatureClassesCompileIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full 762-arch space")
	}
	if raceEnabled {
		t.Skip("full-space compilation is minutes-slow under the race detector")
	}
	ev := NewEvaluator()
	ev.Width = 48
	ev.DisableMemo = true
	b := bench.ByName("G")
	reps := map[archSig]Evaluation{}
	repArch := map[archSig]machine.Arch{}
	dupes := 0
	for _, a := range machine.FullSpace() {
		sig := sigOf(a)
		got := ev.Evaluate(b, a)
		rep, ok := reps[sig]
		if !ok {
			reps[sig] = got
			repArch[sig] = a
			continue
		}
		dupes++
		if got.Unroll != rep.Unroll || got.Cycles != rep.Cycles ||
			got.Spilled != rep.Spilled || got.Failed != rep.Failed {
			t.Errorf("%v compiles differently from its class representative %v: (u=%d cyc=%d spill=%d fail=%v) vs (u=%d cyc=%d spill=%d fail=%v)",
				a, repArch[sig], got.Unroll, got.Cycles, got.Spilled, got.Failed,
				rep.Unroll, rep.Cycles, rep.Spilled, rep.Failed)
		}
		if d1, d2 := ev.Cycle.Derate(a), ev.Cycle.Derate(repArch[sig]); d1 != d2 {
			t.Errorf("%v derate %.15g differs from representative %v derate %.15g",
				a, d1, repArch[sig], d2)
		}
	}
	if dupes == 0 {
		t.Fatal("full space has no signature-isomorphic arrangements; the memo is untestable")
	}
	t.Logf("%d signature classes cover %d architectures (%d memoizable)",
		len(reps), len(machine.FullSpace()), dupes)
}

// TestMemoMatchesDirectCompile checks the memo end to end on a known
// signature-isomorphic pair: 2 MULs vs 4 MULs across 4 clusters both
// floor to MULsPC=1, so the backend cannot tell them apart. The
// memoized evaluator must return exactly what a memo-less evaluator
// computes for each, and must count the hit's logical runs.
func TestMemoMatchesDirectCompile(t *testing.T) {
	a1 := machine.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 4}
	a2 := machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 4}
	if sigOf(a1) != sigOf(a2) {
		t.Fatalf("test premise broken: %v and %v have different signatures", a1, a2)
	}
	b := bench.ByName("G")

	memod := NewEvaluator()
	memod.Width = 48
	direct := NewEvaluator()
	direct.Width = 48
	direct.DisableMemo = true

	m1 := memod.Evaluate(b, a1)
	runsAfterMiss := memod.Compilations.Load()
	m2 := memod.Evaluate(b, a2)
	runsAfterHit := memod.Compilations.Load()
	d1 := direct.Evaluate(b, a1)
	d2 := direct.Evaluate(b, a2)

	if m1 != d1 {
		t.Errorf("memoized %v = %+v, direct = %+v", a1, m1, d1)
	}
	if m2 != d2 {
		t.Errorf("memoized %v = %+v, direct = %+v", a2, m2, d2)
	}
	// Same class, so even the raw cycles agree across the pair.
	if m1.Cycles != m2.Cycles || m1.Unroll != m2.Unroll || m1.Spilled != m2.Spilled {
		t.Errorf("isomorphic pair disagrees: %+v vs %+v", m1, m2)
	}
	// The hit must re-count the cached sweep's runs (logical Table 3
	// accounting), doubling the counter rather than leaving it flat.
	if runsAfterHit != 2*runsAfterMiss {
		t.Errorf("Compilations after hit = %d, want %d (logical re-count of the %d-run sweep)",
			runsAfterHit, 2*runsAfterMiss, runsAfterMiss)
	}
}
