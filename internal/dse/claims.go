package dse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Claims quantifies the paper's headline conclusions from an
// exploration's results:
//
//  1. "Specialization is very valuable: the differences between
//     architectural choices, even among reasonable-seeming architectures
//     having similar costs, can be very great, often a factor of 5."
//  2. "Specialization is also very dangerous. A reasonable choice of
//     architecture to fit one algorithm can be a very poor choice for
//     another, even in the same domain" — including the Table 9 story
//     where one kernel "gets into pathologically bad trouble and runs at
//     about 17% of its performance on the architecture made for it."
//  3. Backing off a little (RANGE) recovers most of the average.
type Claims struct {
	// SpreadByBench is, per benchmark, the largest best/worst speedup
	// ratio among architectures within ±25% of the same cost.
	SpreadByBench map[string]float64
	// WorstCrossFraction is the paper's pathology metric at cost<10:
	// min over targets of (speedup on the machine fit for another
	// target) / (speedup on its own machine).
	WorstCrossFraction float64
	WorstCrossTarget   string
	WorstCrossDonor    string
	// BackoffRecovery is avg(Range=50%) / avg(Range=0%) at cost<10,
	// averaged over targets (>1 means backing off helped the average).
	BackoffRecovery float64
}

// ComputeClaims derives the headline numbers.
func (r *Results) ComputeClaims() *Claims {
	c := &Claims{SpreadByBench: map[string]float64{}}

	// Claim 1: spread at similar cost. Scan cost anchors across the
	// space and keep each benchmark's maximum spread.
	anchors := []float64{2, 4, 6, 8, 10, 14}
	for _, b := range DisplayBenches {
		best := 0.0
		for _, a := range anchors {
			lo, hi := r.SpreadAtCost(b, a, 0.25)
			if lo > 0 && hi/lo > best {
				best = hi / lo
			}
		}
		c.SpreadByBench[b] = best
	}

	// Claim 2: design for one, run another, at the medium cost cap.
	zero := r.SelectConstrained(10, 0)
	own := map[string]float64{}
	pick := map[string]int{}
	for _, ch := range zero {
		own[ch.Target] = ch.OwnSpeedup
		pick[ch.Target] = ch.ArchIdx
	}
	c.WorstCrossFraction = math.Inf(1)
	for _, target := range DisplayBenches {
		if own[target] <= 0 {
			continue
		}
		for _, donor := range DisplayBenches {
			if donor == target {
				continue
			}
			idx, ok := pick[donor]
			if !ok {
				continue
			}
			su := r.Eval[target][idx].Speedup
			if f := su / own[target]; f < c.WorstCrossFraction {
				c.WorstCrossFraction = f
				c.WorstCrossTarget = target
				c.WorstCrossDonor = donor
			}
		}
	}

	// Claim 3: RANGE=50% average recovery vs RANGE=0 at cost<10.
	fifty := r.SelectConstrained(10, 0.50)
	sumZero, sumFifty, n := 0.0, 0.0, 0
	f50 := map[string]Choice{}
	for _, ch := range fifty {
		f50[ch.Target] = ch
	}
	for _, ch := range zero {
		if other, ok := f50[ch.Target]; ok {
			sumZero += ch.Average
			sumFifty += other.Average
			n++
		}
	}
	if n > 0 && sumZero > 0 {
		c.BackoffRecovery = sumFifty / sumZero
	}
	return c
}

// String renders the claims next to the paper's statements.
func (c *Claims) String() string {
	var sb strings.Builder
	sb.WriteString("Headline claims (paper §5 Conclusions):\n\n")
	sb.WriteString("1. spread among similar-cost (±25%) architectures, per benchmark\n")
	sb.WriteString("   (paper: \"often a factor of 5 (and sometimes much more)\"):\n")
	var names []string
	for b := range c.SpreadByBench {
		names = append(names, b)
	}
	sort.Strings(names)
	over5 := 0
	for _, b := range names {
		fmt.Fprintf(&sb, "     %-5s %5.1fx\n", b, c.SpreadByBench[b])
		if c.SpreadByBench[b] >= 5 {
			over5++
		}
	}
	fmt.Fprintf(&sb, "   %d of %d benchmarks show a >=5x spread\n\n", over5, len(names))
	fmt.Fprintf(&sb, "2. worst design-for-one-run-another fraction at cost<10\n")
	fmt.Fprintf(&sb, "   (paper: \"one application ... runs at about 17%% of its performance\"):\n")
	fmt.Fprintf(&sb, "     %s on %s's machine runs at %.0f%% of its own-machine speedup\n\n",
		c.WorstCrossTarget, c.WorstCrossDonor, 100*c.WorstCrossFraction)
	fmt.Fprintf(&sb, "3. average-speedup recovery from a 50%% back-off at cost<10\n")
	fmt.Fprintf(&sb, "   (paper: GEF's average went from 3.9 to 5.8, a 1.49x recovery):\n")
	fmt.Fprintf(&sb, "     mean avg(Range=50%%) / avg(Range=0) = %.2fx\n", c.BackoffRecovery)
	return sb.String()
}
