// Package dse implements the paper's design-space exploration loop
// (Section 2.2): for every candidate architecture, retarget the
// compiler, compile every benchmark at increasing unroll factors until
// the registers spill, measure performance against the baseline
// machine, and feed cost/performance into the constrained selection
// mechanisms of Tables 8-10 and the scatter diagrams of Figures 3-4.
package dse

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"customfit/internal/bench"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/opt"
	"customfit/internal/sched"
)

// UnrollFactors is the sweep of unroll factors, tried in order until
// the compiler spills (the paper's stopping rule).
var UnrollFactors = []int{1, 2, 4, 8}

// Evaluation is one (benchmark, architecture) measurement.
type Evaluation struct {
	Arch    machine.Arch
	Bench   string
	Unroll  int     // unroll factor that produced the best time
	Cycles  int64   // simulated-equivalent cycles on the reference workload
	Time    float64 // Cycles × cycle-time derating
	Speedup float64 // baseline time / Time (filled by the explorer)
	Spilled int     // registers spilled at the chosen unroll
	Failed  bool    // no unroll factor compiled (never expected at u=1)
}

// prepared caches the architecture-independent compilation artifacts of
// one benchmark at one unroll factor: the optimized+unrolled kernel
// (wrapped with its shared pre-scheduling skeleton cache) and the
// per-block execution counts on the reference workload (block visit
// counts do not depend on the target architecture). The once gives the
// entry singleflight semantics: concurrent workers racing on a cold
// (benchmark, unroll) key build it exactly once, off the cache lock.
type prepared struct {
	once   sync.Once
	kernel *sched.Prepared
	visits map[string]int64
	err    error
}

// fnEntry is the once-guarded lowered IR of one benchmark.
type fnEntry struct {
	once sync.Once
	fn   *ir.Func
	err  error
}

// sweepResult is the architecture-signature-invariant part of one
// unroll sweep: everything Evaluate computes except the cycle-time
// derate. runs is how many backend compilations the sweep performed
// (memoized hits re-count them as logical runs, the paper's Table 3
// accounting).
type sweepResult struct {
	unroll  int
	cycles  int64
	spilled int
	failed  bool
	runs    int64
}

// sweepEntry is a once-guarded memoized sweep for one signature class.
type sweepEntry struct {
	once sync.Once
	res  sweepResult
}

// memoKey identifies a memoized sweep: the backend sees only the
// benchmark kernel and the architecture's backend signature.
type memoKey struct {
	bench string
	sig   archSig
}

// Evaluator compiles benchmarks for architectures with caching.
type Evaluator struct {
	// Width is the reference workload width in pixels.
	Width int
	// Seed generates the reference workload.
	Seed int64
	// Cycle is the cycle-time model applied to raw cycles.
	Cycle machine.CycleModel
	// DisableMemo turns off arch-signature memoization so every
	// evaluation runs real backend compiles (benchmarks, equivalence
	// tests).
	DisableMemo bool

	mu    sync.Mutex
	cache map[string]map[int]*prepared // bench -> unroll -> artifacts
	fns   map[string]*fnEntry          // bench -> lowered IR
	memo  map[memoKey]*sweepEntry      // signature class -> sweep

	// Compilations counts backend runs (the paper's Table 3 "# runs").
	// Signature-memoized evaluations count the cached sweep's runs: the
	// paper's metric is logical compilations, not deduplicated work
	// (dse.compile_memo_hits tracks the dedup).
	Compilations atomic.Int64

	// Cumulative phase time (nanoseconds), attributing wall time to
	// compile (backend runs) vs simulate (reference interpreter runs).
	// Summed across workers, so totals can exceed wall time.
	compileNS  atomic.Int64
	simulateNS atomic.Int64
}

// PhaseTimes reports cumulative time spent compiling and simulating
// (reference runs) across all evaluations so far.
func (e *Evaluator) PhaseTimes() (compile, simulate time.Duration) {
	return time.Duration(e.compileNS.Load()), time.Duration(e.simulateNS.Load())
}

// NewEvaluator returns an evaluator with the standard reference
// workload (96 pixels, seed 1).
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Width: 96,
		Seed:  1,
		Cycle: machine.DefaultCycleModel,
		cache: map[string]map[int]*prepared{},
		fns:   map[string]*fnEntry{},
		memo:  map[memoKey]*sweepEntry{},
	}
}

// compileFn returns the lowered IR for b, building it exactly once even
// under concurrent callers.
func (e *Evaluator) compileFn(sp *obs.Span, b *bench.Benchmark) (*ir.Func, error) {
	e.mu.Lock()
	ent, ok := e.fns[b.Name]
	if !ok {
		ent = &fnEntry{}
		e.fns[b.Name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.fn, ent.err = b.CompileSpan(sp)
	})
	return ent.fn, ent.err
}

// prepare returns (cached) prepared IR and visit counts for b at unroll
// u, recording frontend/opt/reference-run telemetry under sp on a cache
// miss. The per-key once means two workers can never duplicate a
// frontend compile or reference run of the same (benchmark, unroll).
func (e *Evaluator) prepare(sp *obs.Span, b *bench.Benchmark, u int) *prepared {
	e.mu.Lock()
	byU, ok := e.cache[b.Name]
	if !ok {
		byU = map[int]*prepared{}
		e.cache[b.Name] = byU
	}
	p, ok := byU[u]
	if !ok {
		p = &prepared{}
		byU[u] = p
	}
	e.mu.Unlock()
	p.once.Do(func() {
		fn, err := e.compileFn(sp, b)
		if err != nil {
			p.err = err
			return
		}
		g, err := opt.PrepareSpan(sp, fn, u)
		if err != nil {
			p.err = err
			return
		}
		p.kernel = sched.NewPrepared(g)
		vsp := obs.Under(sp, "sim.reference").Str("bench", b.Name).Int("unroll", int64(u))
		t0 := time.Now()
		p.visits, p.err = e.countVisits(b, g)
		e.simulateNS.Add(int64(time.Since(t0)))
		vsp.End()
	})
	return p
}

// countVisits interprets the prepared IR over the reference workload
// and records how many times each block executes.
func (e *Evaluator) countVisits(b *bench.Benchmark, g *ir.Func) (map[string]int64, error) {
	c := b.NewCase(e.Width, e.Seed).Clone()
	env := c.Env()
	env.Visits = map[string]int64{}
	if _, err := ir.Interp(g, env); err != nil {
		return nil, fmt.Errorf("dse: reference run of %s: %w", b.Name, err)
	}
	return env.Visits, nil
}

// Evaluate compiles benchmark b for arch, sweeping unroll factors until
// the compiler spills, and returns the best-performing compilation.
func (e *Evaluator) Evaluate(b *bench.Benchmark, arch machine.Arch) Evaluation {
	return e.EvaluateScratch(b, arch, nil)
}

// EvaluateScratch is Evaluate threading a per-worker scratch arena
// through the backend (see sched.Scratch; pass nil to allocate one per
// compile).
func (e *Evaluator) EvaluateScratch(b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) Evaluation {
	esp := obs.StartSpan("evaluate")
	if esp != nil {
		esp.Str("bench", b.Name).Str("arch", arch.String())
		defer esp.End()
	}
	var sw sweepResult
	if e.DisableMemo {
		sw = e.runSweep(esp, b, arch, sc)
	} else {
		key := memoKey{bench: b.Name, sig: sigOf(arch)}
		e.mu.Lock()
		ent, ok := e.memo[key]
		if !ok {
			ent = &sweepEntry{}
			e.memo[key] = ent
		}
		e.mu.Unlock()
		hit := true
		ent.once.Do(func() {
			ent.res = e.runSweep(esp, b, arch, sc)
			hit = false
		})
		sw = ent.res
		if hit {
			// The memoized sweep stands in for this arrangement's
			// compilations: count them as logical runs (Table 3) and
			// record the dedup.
			e.Compilations.Add(sw.runs)
			obs.GetCounter("dse.compiles").Add(sw.runs)
			obs.GetCounter("dse.compile_memo_hits").Inc()
		}
	}
	ev := Evaluation{
		Arch:    arch,
		Bench:   b.Name,
		Unroll:  sw.unroll,
		Cycles:  sw.cycles,
		Spilled: sw.spilled,
		Failed:  sw.failed,
	}
	if !sw.failed {
		// The derate is the only architecture-specific factor the
		// backend result does not cover; it is constant and positive
		// across the sweep, so the min-cycles sweep winner is also the
		// min-time winner.
		ev.Time = float64(sw.cycles) * e.Cycle.Derate(arch)
	}
	if esp != nil {
		esp.Int("unroll", int64(ev.Unroll)).Int("cycles", ev.Cycles)
	}
	if ev.Failed {
		obs.GetCounter("dse.eval_failures").Inc()
	}
	return ev
}

// runSweep performs the real unroll-until-spill sweep for one
// (benchmark, architecture), returning the signature-invariant result.
func (e *Evaluator) runSweep(esp *obs.Span, b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) sweepResult {
	sw := sweepResult{failed: true}
	for _, u := range UnrollFactors {
		p := e.prepare(esp, b, u)
		if p.err != nil {
			break // unrollable limit reached (op budget etc.)
		}
		t0 := time.Now()
		res, err := sched.CompilePrepared(esp, p.kernel, arch, sc)
		e.compileNS.Add(int64(time.Since(t0)))
		e.Compilations.Add(1)
		sw.runs++
		obs.GetCounter("dse.compiles").Inc()
		if err != nil {
			if errors.Is(err, sched.ErrNoFit) {
				obs.GetCounter("dse.compile_nofit").Inc()
				break // paper rule: stop at this unroll and all larger
			}
			obs.GetCounter("dse.compile_errors").Inc()
			break
		}
		cycles := res.Prog.StaticCycles(p.visits)
		if sw.failed || cycles < sw.cycles {
			sw.failed = false
			sw.unroll = u
			sw.cycles = cycles
			sw.spilled = res.Spilled
		}
		if res.Spilled > 0 {
			break // spilled: stop considering larger unroll factors
		}
	}
	return sw
}
