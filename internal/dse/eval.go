// Package dse implements the paper's design-space exploration loop
// (Section 2.2): for every candidate architecture, retarget the
// compiler, compile every benchmark at increasing unroll factors until
// the registers spill, measure performance against the baseline
// machine, and feed cost/performance into the constrained selection
// mechanisms of Tables 8-10 and the scatter diagrams of Figures 3-4.
package dse

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"customfit/internal/bench"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/opt"
	"customfit/internal/sched"
)

// UnrollFactors is the sweep of unroll factors, tried in order until
// the compiler spills (the paper's stopping rule).
var UnrollFactors = []int{1, 2, 4, 8}

// Evaluation is one (benchmark, architecture) measurement.
type Evaluation struct {
	Arch    machine.Arch
	Bench   string
	Unroll  int     // unroll factor that produced the best time
	Cycles  int64   // simulated-equivalent cycles on the reference workload
	Time    float64 // Cycles × cycle-time derating
	Speedup float64 // baseline time / Time (filled by the explorer)
	Spilled int     // registers spilled at the chosen unroll
	Failed  bool    // no unroll factor compiled (never expected at u=1)
}

// prepared caches the architecture-independent compilation artifacts of
// one benchmark at one unroll factor: the optimized+unrolled IR and the
// per-block execution counts on the reference workload (block visit
// counts do not depend on the target architecture).
type prepared struct {
	fn     *ir.Func
	visits map[string]int64
	err    error
}

// Evaluator compiles benchmarks for architectures with caching.
type Evaluator struct {
	// Width is the reference workload width in pixels.
	Width int
	// Seed generates the reference workload.
	Seed int64
	// Cycle is the cycle-time model applied to raw cycles.
	Cycle machine.CycleModel

	mu    sync.Mutex
	cache map[string]map[int]*prepared // bench -> unroll -> artifacts
	fns   map[string]*ir.Func          // bench -> lowered IR
	// Compilations counts backend runs (the paper's Table 3 "# runs").
	Compilations int64

	// Cumulative phase time (nanoseconds), attributing wall time to
	// compile (backend runs) vs simulate (reference interpreter runs).
	// Summed across workers, so totals can exceed wall time.
	compileNS  atomic.Int64
	simulateNS atomic.Int64
}

// PhaseTimes reports cumulative time spent compiling and simulating
// (reference runs) across all evaluations so far.
func (e *Evaluator) PhaseTimes() (compile, simulate time.Duration) {
	return time.Duration(e.compileNS.Load()), time.Duration(e.simulateNS.Load())
}

// NewEvaluator returns an evaluator with the standard reference
// workload (96 pixels, seed 1).
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Width: 96,
		Seed:  1,
		Cycle: machine.DefaultCycleModel,
		cache: map[string]map[int]*prepared{},
		fns:   map[string]*ir.Func{},
	}
}

// prepare returns (cached) prepared IR and visit counts for b at unroll
// u, recording frontend/opt/reference-run telemetry under sp on a cache
// miss.
func (e *Evaluator) prepare(sp *obs.Span, b *bench.Benchmark, u int) *prepared {
	e.mu.Lock()
	byU, ok := e.cache[b.Name]
	if !ok {
		byU = map[int]*prepared{}
		e.cache[b.Name] = byU
	}
	if p, ok := byU[u]; ok {
		e.mu.Unlock()
		return p
	}
	fn := e.fns[b.Name]
	e.mu.Unlock()

	if fn == nil {
		var err error
		fn, err = b.CompileSpan(sp)
		if err != nil {
			p := &prepared{err: err}
			e.mu.Lock()
			byU[u] = p
			e.mu.Unlock()
			return p
		}
		e.mu.Lock()
		e.fns[b.Name] = fn
		e.mu.Unlock()
	}

	p := &prepared{}
	g, err := opt.PrepareSpan(sp, fn, u)
	if err != nil {
		p.err = err
	} else {
		p.fn = g
		vsp := obs.Under(sp, "sim.reference").Str("bench", b.Name).Int("unroll", int64(u))
		t0 := time.Now()
		p.visits, p.err = e.countVisits(b, g)
		e.simulateNS.Add(int64(time.Since(t0)))
		vsp.End()
	}
	e.mu.Lock()
	byU[u] = p
	e.mu.Unlock()
	return p
}

// countVisits interprets the prepared IR over the reference workload
// and records how many times each block executes.
func (e *Evaluator) countVisits(b *bench.Benchmark, g *ir.Func) (map[string]int64, error) {
	c := b.NewCase(e.Width, e.Seed).Clone()
	env := c.Env()
	env.Visits = map[string]int64{}
	if _, err := ir.Interp(g, env); err != nil {
		return nil, fmt.Errorf("dse: reference run of %s: %w", b.Name, err)
	}
	return env.Visits, nil
}

// Evaluate compiles benchmark b for arch, sweeping unroll factors until
// the compiler spills, and returns the best-performing compilation.
func (e *Evaluator) Evaluate(b *bench.Benchmark, arch machine.Arch) Evaluation {
	esp := obs.StartSpan("evaluate")
	if esp != nil {
		esp.Str("bench", b.Name).Str("arch", arch.String())
		defer esp.End()
	}
	ev := Evaluation{Arch: arch, Bench: b.Name, Failed: true}
	derate := e.Cycle.Derate(arch)
	for _, u := range UnrollFactors {
		p := e.prepare(esp, b, u)
		if p.err != nil {
			break // unrollable limit reached (op budget etc.)
		}
		t0 := time.Now()
		res, err := sched.CompileSpan(esp, p.fn, arch)
		e.compileNS.Add(int64(time.Since(t0)))
		e.mu.Lock()
		e.Compilations++
		e.mu.Unlock()
		obs.GetCounter("dse.compiles").Inc()
		if err != nil {
			if errors.Is(err, sched.ErrNoFit) {
				obs.GetCounter("dse.compile_nofit").Inc()
				break // paper rule: stop at this unroll and all larger
			}
			obs.GetCounter("dse.compile_errors").Inc()
			break
		}
		cycles := res.Prog.StaticCycles(p.visits)
		t := float64(cycles) * derate
		if ev.Failed || t < ev.Time {
			ev.Failed = false
			ev.Unroll = u
			ev.Cycles = cycles
			ev.Time = t
			ev.Spilled = res.Spilled
		}
		if res.Spilled > 0 {
			break // spilled: stop considering larger unroll factors
		}
	}
	if esp != nil {
		esp.Int("unroll", int64(ev.Unroll)).Int("cycles", ev.Cycles)
	}
	if ev.Failed {
		obs.GetCounter("dse.eval_failures").Inc()
	}
	return ev
}
