// Package dse implements the paper's design-space exploration loop
// (Section 2.2): for every candidate architecture, retarget the
// compiler, compile every benchmark at increasing unroll factors until
// the registers spill, measure performance against the baseline
// machine, and feed cost/performance into the constrained selection
// mechanisms of Tables 8-10 and the scatter diagrams of Figures 3-4.
package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"customfit/internal/bench"
	"customfit/internal/evcache"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/opt"
	"customfit/internal/sched"
)

// UnrollFactors is the sweep of unroll factors, tried in order until
// the compiler spills (the paper's stopping rule).
var UnrollFactors = []int{1, 2, 4, 8}

// ErrCancelled is returned (wrapped) by context-threaded entry points
// when the caller's context ends before the work completes. It always
// wraps the context's own error, so both
// errors.Is(err, dse.ErrCancelled) and
// errors.Is(err, context.Canceled) (or DeadlineExceeded) hold.
var ErrCancelled = errors.New("dse: cancelled")

// cancelledErr wraps ctx's error in ErrCancelled.
func cancelledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}

// Evaluation is one (benchmark, architecture) measurement.
type Evaluation struct {
	Arch    machine.Arch
	Bench   string
	Unroll  int     // unroll factor that produced the best time
	Cycles  int64   // simulated-equivalent cycles on the reference workload
	Time    float64 // Cycles × cycle-time derating
	Speedup float64 // baseline time / Time (filled by the explorer)
	Spilled int     // registers spilled at the chosen unroll
	Failed  bool    // no unroll factor compiled (never expected at u=1)
	// Cancelled marks an evaluation abandoned because the caller's
	// context ended. Cancelled work is not a compile failure: Failed
	// stays false, and the explorer accounts it separately.
	Cancelled bool `json:",omitempty"`
}

// prepared caches the architecture-independent compilation artifacts of
// one benchmark at one unroll factor: the optimized+unrolled kernel
// (wrapped with its shared pre-scheduling skeleton cache) and the
// per-block execution counts on the reference workload (block visit
// counts do not depend on the target architecture). The once gives the
// entry singleflight semantics: concurrent workers racing on a cold
// (benchmark, unroll) key build it exactly once, off the cache lock.
type prepared struct {
	once   sync.Once
	kernel *sched.Prepared
	visits map[string]int64
	err    error
}

// fnEntry is the once-guarded lowered IR of one benchmark.
type fnEntry struct {
	once sync.Once
	fn   *ir.Func
	err  error
}

// sweepResult is the architecture-signature-invariant part of one
// unroll sweep: everything Evaluate computes except the cycle-time
// derate. runs is how many backend compilations the sweep performed
// (memoized hits re-count them as logical runs, the paper's Table 3
// accounting). cancelled marks a sweep abandoned mid-way because the
// context ended; cancelled sweeps are never memoized or cached.
type sweepResult struct {
	unroll    int
	cycles    int64
	spilled   int
	failed    bool
	cancelled bool
	runs      int64
}

// sweepEntry is a once-guarded memoized sweep for one signature class.
type sweepEntry struct {
	once sync.Once
	res  sweepResult
}

// memoKey identifies a memoized sweep: the backend sees only the
// benchmark kernel and the architecture's backend signature.
type memoKey struct {
	bench string
	sig   archSig
}

// Evaluator compiles benchmarks for architectures with caching.
type Evaluator struct {
	// Width is the reference workload width in pixels.
	Width int
	// Seed generates the reference workload.
	Seed int64
	// Cycle is the cycle-time model applied to raw cycles.
	Cycle machine.CycleModel
	// DisableMemo turns off arch-signature memoization so every
	// evaluation runs real backend compiles (benchmarks, equivalence
	// tests). It also bypasses Cache: both layers exist to avoid
	// backend work, which is exactly what DisableMemo runs measure.
	DisableMemo bool
	// DisableDelta turns off delta compilation (the per-kernel cache of
	// reusable block schedules and allocation verdicts that makes
	// one-parameter neighbor re-evaluation cheap; see
	// sched.CompilePreparedDelta and docs/PERFORMANCE.md). Results are
	// bit-identical either way — the switch exists for measurement and
	// A/B verification, not correctness.
	DisableDelta bool
	// Cache, when set, persists evaluation sweeps across processes:
	// content-addressed by hash(kernel source, unroll policy, compiler
	// fingerprint, reference workload) × backend signature (see
	// internal/evcache and docs/PERFORMANCE.md). Exact by the same
	// argument as the signature memo; a warm cache makes a re-run of
	// the full sweep near-instant.
	Cache *evcache.Cache

	mu    sync.Mutex
	cache map[string]map[int]*prepared // bench -> unroll -> artifacts
	fns   map[string]*fnEntry          // bench -> lowered IR
	memo  map[memoKey]*sweepEntry      // signature class -> sweep
	keys  map[string]string            // bench -> kernel-class hash

	// Compilations counts backend runs (the paper's Table 3 "# runs").
	// Signature-memoized evaluations count the cached sweep's runs: the
	// paper's metric is logical compilations, not deduplicated work
	// (dse.compile_memo_hits tracks the dedup).
	Compilations atomic.Int64

	// Cumulative phase time (nanoseconds), attributing wall time to
	// compile (backend runs) vs simulate (reference interpreter runs).
	// Summed across workers, so totals can exceed wall time.
	compileNS  atomic.Int64
	simulateNS atomic.Int64
}

// PhaseTimes reports cumulative time spent compiling and simulating
// (reference runs) across all evaluations so far.
func (e *Evaluator) PhaseTimes() (compile, simulate time.Duration) {
	return time.Duration(e.compileNS.Load()), time.Duration(e.simulateNS.Load())
}

// NewEvaluator returns an evaluator with the standard reference
// workload (96 pixels, seed 1).
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Width: 96,
		Seed:  1,
		Cycle: machine.DefaultCycleModel,
		cache: map[string]map[int]*prepared{},
		fns:   map[string]*fnEntry{},
		memo:  map[memoKey]*sweepEntry{},
	}
}

// compileFn returns the lowered IR for b, building it exactly once even
// under concurrent callers.
func (e *Evaluator) compileFn(sp *obs.Span, b *bench.Benchmark) (*ir.Func, error) {
	e.mu.Lock()
	ent, ok := e.fns[b.Name]
	if !ok {
		ent = &fnEntry{}
		e.fns[b.Name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.fn, ent.err = b.CompileSpan(sp)
	})
	return ent.fn, ent.err
}

// prepare returns (cached) prepared IR and visit counts for b at unroll
// u, recording frontend/opt/reference-run telemetry under sp on a cache
// miss. The per-key once means two workers can never duplicate a
// frontend compile or reference run of the same (benchmark, unroll).
func (e *Evaluator) prepare(sp *obs.Span, b *bench.Benchmark, u int) *prepared {
	e.mu.Lock()
	byU, ok := e.cache[b.Name]
	if !ok {
		byU = map[int]*prepared{}
		e.cache[b.Name] = byU
	}
	p, ok := byU[u]
	if !ok {
		p = &prepared{}
		byU[u] = p
	}
	e.mu.Unlock()
	p.once.Do(func() {
		fn, err := e.compileFn(sp, b)
		if err != nil {
			p.err = err
			return
		}
		g, err := opt.PrepareSpan(sp, fn, u)
		if err != nil {
			p.err = err
			return
		}
		p.kernel = sched.NewPrepared(g)
		vsp := obs.Under(sp, "sim.reference").Str("bench", b.Name).Int("unroll", int64(u))
		t0 := time.Now()
		p.visits, p.err = e.countVisits(b, g)
		e.simulateNS.Add(int64(time.Since(t0)))
		vsp.End()
	})
	return p
}

// countVisits interprets the prepared IR over the reference workload
// and records how many times each block executes.
func (e *Evaluator) countVisits(b *bench.Benchmark, g *ir.Func) (map[string]int64, error) {
	c := b.NewCase(e.Width, e.Seed).Clone()
	env := c.Env()
	env.Visits = map[string]int64{}
	if _, err := ir.Interp(g, env); err != nil {
		return nil, fmt.Errorf("dse: reference run of %s: %w", b.Name, err)
	}
	return env.Visits, nil
}

// Evaluate compiles benchmark b for arch, sweeping unroll factors until
// the compiler spills, and returns the best-performing compilation.
func (e *Evaluator) Evaluate(b *bench.Benchmark, arch machine.Arch) Evaluation {
	return e.EvaluateCtx(context.Background(), b, arch)
}

// EvaluateCtx is Evaluate under a context: a cancelled ctx abandons the
// sweep between backend compiles and returns an Evaluation marked
// Cancelled (never Failed). Results are identical to Evaluate whenever
// ctx stays live.
func (e *Evaluator) EvaluateCtx(ctx context.Context, b *bench.Benchmark, arch machine.Arch) Evaluation {
	return e.EvaluateScratchCtx(ctx, b, arch, nil)
}

// EvaluateScratch is Evaluate threading a per-worker scratch arena
// through the backend (see sched.Scratch; pass nil to allocate one per
// compile).
func (e *Evaluator) EvaluateScratch(b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) Evaluation {
	return e.EvaluateScratchCtx(context.Background(), b, arch, sc)
}

// EvaluateScratchCtx is EvaluateScratch under a context (see
// EvaluateCtx for the cancellation contract).
func (e *Evaluator) EvaluateScratchCtx(ctx context.Context, b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) Evaluation {
	// StartSpanCtx parents the evaluation under the exploration's span
	// when one rides ctx (each evaluation forks its own track).
	esp := obs.StartSpanCtx(ctx, "evaluate")
	if esp != nil {
		esp.Str("bench", b.Name).Str("arch", arch.String())
		defer esp.End()
	}
	var sw sweepResult
	if e.DisableMemo {
		sw = e.runSweep(ctx, esp, b, arch, sc)
	} else {
		sw = e.memoSweep(ctx, esp, b, arch, sc)
	}
	ev := Evaluation{
		Arch:      arch,
		Bench:     b.Name,
		Unroll:    sw.unroll,
		Cycles:    sw.cycles,
		Spilled:   sw.spilled,
		Failed:    sw.failed,
		Cancelled: sw.cancelled,
	}
	if !sw.failed && !sw.cancelled {
		// The derate is the only architecture-specific factor the
		// backend result does not cover; it is constant and positive
		// across the sweep, so the min-cycles sweep winner is also the
		// min-time winner.
		ev.Time = float64(sw.cycles) * e.Cycle.Derate(arch)
	}
	if esp != nil {
		esp.Int("unroll", int64(ev.Unroll)).Int("cycles", ev.Cycles)
	}
	if ev.Failed {
		obs.GetCounter("dse.eval_failures").Inc()
	}
	if ev.Cancelled {
		obs.GetCounter("dse.eval_cancelled").Inc()
	}
	return ev
}

// memoSweep resolves one evaluation through the arch-signature memo.
// Cancelled computes never stay memoized: the poisoned entry is dropped
// so a later (live) caller recomputes it, and a live waiter that
// coalesced onto a cancelled compute retries instead of inheriting the
// cancellation.
func (e *Evaluator) memoSweep(ctx context.Context, esp *obs.Span, b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) sweepResult {
	key := memoKey{bench: b.Name, sig: sigOf(arch)}
	for {
		e.mu.Lock()
		ent, ok := e.memo[key]
		if !ok {
			ent = &sweepEntry{}
			e.memo[key] = ent
		}
		e.mu.Unlock()
		hit := true
		ent.once.Do(func() {
			ent.res = e.sweepThroughCache(ctx, esp, b, arch, sc)
			hit = false
		})
		sw := ent.res
		if !sw.cancelled {
			if hit {
				// The memoized sweep stands in for this arrangement's
				// compilations: count them as logical runs (Table 3) and
				// record the dedup.
				e.Compilations.Add(sw.runs)
				obs.GetCounter("dse.compiles").Add(sw.runs)
				obs.GetCounter("dse.compile_memo_hits").Inc()
			}
			return sw
		}
		e.mu.Lock()
		if e.memo[key] == ent {
			delete(e.memo, key)
		}
		e.mu.Unlock()
		if !hit || ctx.Err() != nil {
			return sw // our own compute was cancelled, or we are too
		}
		// A live caller coalesced onto someone else's cancelled compute:
		// retry against a fresh memo entry.
	}
}

// sweepThroughCache resolves one signature class's sweep through the
// persistent cache when one is attached, running the real sweep only
// on a cache miss. A hit stands in for this class's compilations the
// same way a memo hit does: the cached sweep's runs are re-counted as
// logical runs (Table 3 accounting), so Results and Stats are
// bit-identical whether the cache is cold, warm, or absent.
func (e *Evaluator) sweepThroughCache(ctx context.Context, esp *obs.Span, b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) sweepResult {
	if e.Cache == nil {
		return e.runSweep(ctx, esp, b, arch, sc)
	}
	key := CacheKey(e.kernelClass(b), arch)
	ce, hit, err := e.Cache.DoErr(b.Name, key, func() (evcache.Entry, error) {
		sw := e.runSweep(ctx, esp, b, arch, sc)
		if sw.cancelled {
			// Abort the singleflight: a half-finished sweep must never be
			// persisted or handed to coalesced waiters as the real result.
			return evcache.Entry{}, cancelledErr(ctx)
		}
		return evcache.Entry{
			Unroll:  sw.unroll,
			Cycles:  sw.cycles,
			Spilled: sw.spilled,
			Failed:  sw.failed,
			Runs:    sw.runs,
		}, nil
	})
	if err != nil {
		return sweepResult{cancelled: true}
	}
	if hit {
		e.Compilations.Add(ce.Runs)
		obs.GetCounter("dse.compiles").Add(ce.Runs)
	}
	return sweepResult{
		unroll:  ce.Unroll,
		cycles:  ce.Cycles,
		spilled: ce.Spilled,
		failed:  ce.Failed,
		runs:    ce.Runs,
	}
}

// KernelClass returns a benchmark's content-addressed kernel-class
// hash for a reference workload of the given width and seed:
// everything a sweep result depends on besides the backend signature —
// the kernel source, the unroll policy, the compiler fingerprint
// (backend version + latency constants + the frontend/opt pipeline
// version), and the reference workload whose visit counts weight the
// cycle totals. Cost and cycle-time models are deliberately excluded:
// they are applied outside the backend, so retuning them never
// invalidates cached sweeps. Exported so the distributed coordinator
// can address cache entries without an Evaluator (warm-up shipping).
func KernelClass(b *bench.Benchmark, width int, seed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "kernel=%s\x00%s\x00unroll=%v\x00%s\x00prep-v%d\x00workload=%dx seed %d",
		b.Name, b.Source, UnrollFactors, sched.Fingerprint(), prepPipelineVersion, width, seed)
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// CacheKey returns the evcache key of one architecture within a kernel
// class (KernelClass); the cache shard name is the benchmark name.
// This is the fleet-wide content address: every layer — the evaluator,
// the serving endpoints, the coordinator's warm-up pushes — derives
// exactly this key, which is what makes "compile anything at most once
// across the whole fleet" possible.
func CacheKey(kernelClass string, a machine.Arch) string {
	return kernelClass + ":" + sigOf(a).key()
}

// kernelClass memoizes KernelClass for this evaluator's workload.
func (e *Evaluator) kernelClass(b *bench.Benchmark) string {
	e.mu.Lock()
	if k, ok := e.keys[b.Name]; ok {
		e.mu.Unlock()
		return k
	}
	e.mu.Unlock()
	k := KernelClass(b, e.Width, e.Seed)
	e.mu.Lock()
	if e.keys == nil {
		e.keys = map[string]string{}
	}
	e.keys[b.Name] = k
	e.mu.Unlock()
	return k
}

// prepPipelineVersion fingerprints the architecture-independent
// preparation pipeline (frontend lowering, opt passes, unrolling,
// reference interpretation). Bump it when any of those change
// observable IR or visit counts; cached sweeps self-invalidate.
const prepPipelineVersion = 1

// CacheCovers reports whether the attached persistent cache already
// holds an entry for every (b, arch) pair — in which case an explorer
// can skip the prepare warm-up (frontend compile plus reference run)
// entirely, the dominant cost of a fully warm re-run.
func (e *Evaluator) CacheCovers(b *bench.Benchmark, archs []machine.Arch) bool {
	if e.Cache == nil || e.DisableMemo {
		return false
	}
	kc := e.kernelClass(b)
	for _, a := range archs {
		if !e.Cache.Contains(b.Name, CacheKey(kc, a)) {
			return false
		}
	}
	return true
}

// LowerBoundCycles returns an admissible lower bound on the unroll
// sweep's best cycle count for b on arch, without compiling: for each
// unroll factor it sums sched.LowerBound's per-block bounds weighted
// by the reference workload's block visit counts, and takes the
// minimum across factors (the sweep keeps its own minimum over a
// subset of those factors, so the bound can never exceed the real
// result). ok is false when the benchmark cannot be prepared at all.
func (e *Evaluator) LowerBoundCycles(b *bench.Benchmark, arch machine.Arch) (bound int64, ok bool) {
	if !arch.Ops.Empty() {
		// The per-block bounds are computed on the pristine
		// (pre-rewrite) blocks; a custom-op rewrite can shorten the
		// critical path below them, so no admissible bound exists for
		// op-enabled architectures. SpeedupBound turns this into "never
		// prune".
		return 0, false
	}
	best := int64(-1)
	for _, u := range UnrollFactors {
		p := e.prepare(nil, b, u)
		if p.err != nil {
			break
		}
		lbs := sched.LowerBound(p.kernel, arch)
		var total int64
		for i, blk := range p.kernel.F.Blocks {
			total += int64(lbs[i]) * p.visits[blk.Name]
		}
		if best < 0 || total < best {
			best = total
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// SpeedupBound builds an admissible upper bound on the
// speedup-under-cost-cap objective (the cost-capped selector's search
// objective): -Inf over the cap, else baselineTime divided by the
// smallest time the architecture could possibly achieve
// (LowerBoundCycles × its exact cycle-time derate). Since the cycle
// bound never exceeds the real sweep result and the derate is
// architecture-exact, the returned value always ≥ the real speedup —
// so search strategies may prune candidates whose bound cannot beat
// their incumbent without changing what they find (search.Bound).
func (e *Evaluator) SpeedupBound(b *bench.Benchmark, baselineTime float64, cost machine.CostModel, costCap float64) func(machine.Arch) float64 {
	return func(a machine.Arch) float64 {
		if cost.Cost(a) > costCap {
			return math.Inf(-1) // exactly the objective's value: infeasible
		}
		lb, ok := e.LowerBoundCycles(b, a)
		if !ok || lb <= 0 {
			return math.Inf(1) // cannot bound: never prune
		}
		return baselineTime / (float64(lb) * e.Cycle.Derate(a))
	}
}

// runSweep performs the real unroll-until-spill sweep for one
// (benchmark, architecture), returning the signature-invariant result.
// Cancellation is observed between backend compiles (each is
// milliseconds), so a cancelled sweep returns promptly with cancelled
// set and failed cleared — abandoned work is not a compile failure.
func (e *Evaluator) runSweep(ctx context.Context, esp *obs.Span, b *bench.Benchmark, arch machine.Arch, sc *sched.Scratch) sweepResult {
	sw := sweepResult{failed: true}
	for _, u := range UnrollFactors {
		if ctx.Err() != nil {
			sw.cancelled = true
			sw.failed = false
			return sw
		}
		p := e.prepare(esp, b, u)
		if p.err != nil {
			break // unrollable limit reached (op budget etc.)
		}
		t0 := time.Now()
		var res *sched.Result
		var err error
		if e.DisableDelta {
			res, err = sched.CompilePrepared(esp, p.kernel, arch, sc)
		} else {
			res, err = sched.CompilePreparedDelta(esp, p.kernel, arch, sc)
		}
		e.compileNS.Add(int64(time.Since(t0)))
		e.Compilations.Add(1)
		sw.runs++
		obs.GetCounter("dse.compiles").Inc()
		if err != nil {
			if errors.Is(err, sched.ErrNoFit) {
				obs.GetCounter("dse.compile_nofit").Inc()
				break // paper rule: stop at this unroll and all larger
			}
			obs.GetCounter("dse.compile_errors").Inc()
			break
		}
		cycles := res.Prog.StaticCycles(p.visits)
		if sw.failed || cycles < sw.cycles {
			sw.failed = false
			sw.unroll = u
			sw.cycles = cycles
			sw.spilled = res.Spilled
		}
		if res.Spilled > 0 {
			break // spilled: stop considering larger unroll factors
		}
	}
	return sw
}
