package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// traceEvent is the Chrome trace_event wire format for one complete
// ("ph":"X") event, loadable in chrome://tracing and Perfetto.
// Timestamps and durations are microseconds since collector start.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int64   `json:"tid"`
	// Trace/Span/Parent carry the span's distributed identity alongside
	// the Chrome fields; viewers ignore them, tests and tooling use them
	// to check cross-process parentage.
	Trace  string                 `json:"trace_id,omitempty"`
	Span   string                 `json:"span_id,omitempty"`
	Parent string                 `json:"parent_id,omitempty"`
	Args   map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the JSON Object Format variant of the trace format (an
// object with a traceEvents array), which both viewers accept.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace emits every recorded span as Chrome trace_event JSON.
// Events are ordered by (track, start, longest-first) so nested spans
// serialize parents before children deterministically.
func (c *Collector) WriteTrace(w io.Writer) error {
	evs := c.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TID != evs[j].TID {
			return evs[i].TID < evs[j].TID
		}
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Dur > evs[j].Dur
	})
	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, e := range evs {
		te := traceEvent{
			Name:   e.Name,
			Ph:     "X",
			TS:     float64(e.Start.Nanoseconds()) / 1e3,
			Dur:    float64(e.Dur.Nanoseconds()) / 1e3,
			PID:    1,
			TID:    e.TID,
			Trace:  e.Trace.String(),
			Span:   e.ID.String(),
			Parent: e.Parent.String(),
		}
		if len(e.Attrs) > 0 {
			te.Args = make(map[string]interface{}, len(e.Attrs))
			for _, a := range e.Attrs {
				te.Args[a.Key] = a.Value()
			}
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteTraceFile writes the Chrome trace to path.
func (c *Collector) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
