package obs

// Prometheus text exposition (format version 0.0.4) for the collector,
// plus a standalone format validator used by tests and the fleet smoke
// check. Metric naming: every family is prefixed "cfp_", dots and other
// non-identifier runes become underscores, counters gain "_total", and
// histograms export as summaries with p50/p95/p99 quantile labels (see
// the naming table in docs/OBSERVABILITY.md).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the collector's counters, gauges, histograms
// and per-span-name totals in the Prometheus text exposition format.
// Output is deterministically sorted.
func (c *Collector) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	c.cmu.Lock()
	counterNames := sortedKeys(c.counters)
	counterVals := make(map[string]int64, len(c.counters))
	for name, ct := range c.counters {
		counterVals[name] = ct.Value()
	}
	c.cmu.Unlock()
	for _, name := range counterNames {
		fam := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Counter %s.\n", fam, promHelpEscape(name))
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		fmt.Fprintf(bw, "%s %d\n", fam, counterVals[name])
	}

	c.gmu.Lock()
	gaugeNames := make([]string, 0, len(c.gauges))
	for name := range c.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	gaugeVals := make(map[string]float64, len(c.gauges))
	for name, v := range c.gauges {
		gaugeVals[name] = v
	}
	c.gmu.Unlock()
	for _, name := range gaugeNames {
		fam := promName(name)
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n", fam, promHelpEscape(name))
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(bw, "%s %s\n", fam, promFloat(gaugeVals[name]))
	}

	c.hmu.Lock()
	histNames := sortedKeys(c.hists)
	hists := make(map[string]*Histogram, len(c.hists))
	for name, h := range c.hists {
		hists[name] = h
	}
	c.hmu.Unlock()
	for _, name := range histNames {
		h := hists[name]
		count, sum, min, max := h.Summary()
		qs := h.Quantiles(0.5, 0.95, 0.99)
		fam := promName(name)
		fmt.Fprintf(bw, "# HELP %s Summary %s.\n", fam, promHelpEscape(name))
		fmt.Fprintf(bw, "# TYPE %s summary\n", fam)
		for i, q := range []string{"0.5", "0.95", "0.99"} {
			fmt.Fprintf(bw, "%s{quantile=%q} %s\n", fam, q, promFloat(qs[i]))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", fam, promFloat(sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, count)
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n%s_min %s\n", fam, fam, promFloat(min))
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %s\n", fam, fam, promFloat(max))
	}

	// Per-span-name totals, one family with a span label (mirrors the
	// "spans" section of the JSON dump).
	type spanAgg struct {
		count   int64
		seconds float64
	}
	aggs := map[string]spanAgg{}
	for _, e := range c.Events() {
		a := aggs[e.Name]
		a.count++
		a.seconds += e.Dur.Seconds()
		aggs[e.Name] = a
	}
	spanNames := make([]string, 0, len(aggs))
	for name := range aggs {
		spanNames = append(spanNames, name)
	}
	sort.Strings(spanNames)
	if len(spanNames) > 0 {
		fmt.Fprintf(bw, "# HELP cfp_span_seconds_total Total seconds spent in spans, by span name.\n")
		fmt.Fprintf(bw, "# TYPE cfp_span_seconds_total counter\n")
		for _, name := range spanNames {
			fmt.Fprintf(bw, "cfp_span_seconds_total{span=%q} %s\n",
				promLabelEscape(name), promFloat(aggs[name].seconds))
		}
		fmt.Fprintf(bw, "# HELP cfp_span_count_total Completed spans, by span name.\n")
		fmt.Fprintf(bw, "# TYPE cfp_span_count_total counter\n")
		for _, name := range spanNames {
			fmt.Fprintf(bw, "cfp_span_count_total{span=%q} %d\n",
				promLabelEscape(name), aggs[name].count)
		}
	}

	fmt.Fprintf(bw, "# HELP cfp_uptime_seconds Seconds since the collector started.\n")
	fmt.Fprintf(bw, "# TYPE cfp_uptime_seconds gauge\n")
	fmt.Fprintf(bw, "cfp_uptime_seconds %s\n", promFloat(c.now().Seconds()))

	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps an internal dotted metric name ("dse.worker_busy_seconds")
// to a Prometheus family name ("cfp_dse_worker_busy_seconds").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("cfp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case '0' <= c && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float sample value (Prometheus accepts Go's
// shortest form, plus NaN/Inf spellings which strconv produces too).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHelpEscape escapes a HELP text per the exposition format.
func promHelpEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabelEscape escapes a label value body; callers quote it with %q,
// which already handles \, " and newlines, so this is the identity kept
// for symmetry and future non-%q call sites.
func promLabelEscape(s string) string { return s }

// LintPrometheus validates r as Prometheus text exposition format
// (version 0.0.4): name syntax, float sample values, label quoting, a
// TYPE line preceding every sample's family, and no duplicate TYPE
// declarations. Returns the first violation with its line number.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	typed := map[string]string{}
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				typed[name] = typ
			case "HELP":
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
				}
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if !familyTyped(typed, name) {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		val := strings.Fields(rest)
		if len(val) < 1 || len(val) > 2 {
			return fmt.Errorf("line %d: expected value [timestamp], got %q", lineNo, rest)
		}
		if _, err := strconv.ParseFloat(val[0], 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, val[0])
		}
		if len(val) == 2 {
			if _, err := strconv.ParseInt(val[1], 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", lineNo, val[1])
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

// splitSample splits "name{labels} value" into the metric name and the
// remainder after the optional label set, validating label syntax.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Parse {k="v",...} with escaped quotes.
	j := i + 1
	for j < len(line) && line[j] != '}' {
		start := j
		for j < len(line) && line[j] != '=' {
			j++
		}
		if j >= len(line) || !validLabelName(line[start:j]) {
			return "", "", fmt.Errorf("bad label name in %q", line)
		}
		j++ // '='
		if j >= len(line) || line[j] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		j++
		for j < len(line) && line[j] != '"' {
			if line[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(line) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		j++ // closing quote
		if j < len(line) && line[j] == ',' {
			j++
		}
	}
	if j >= len(line) {
		return "", "", fmt.Errorf("unterminated label set in %q", line)
	}
	j++ // '}'
	if j >= len(line) || line[j] != ' ' {
		return "", "", fmt.Errorf("missing value after labels in %q", line)
	}
	return name, line[j+1:], nil
}

// familyTyped reports whether name, or its family after stripping a
// summary/histogram suffix, has a TYPE declaration.
func familyTyped(typed map[string]string, name string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, ok := typed[base]; ok {
				return true
			}
		}
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
