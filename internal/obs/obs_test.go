package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	olog "customfit/internal/obs/log"
)

// install swaps in a fresh collector and restores the disabled state
// when the test ends.
func install(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector()
	Install(c)
	t.Cleanup(func() { Install(nil) })
	return c
}

// fakeClock replaces c's clock with one that advances step per call.
func fakeClock(c *Collector, step time.Duration) {
	var tick time.Duration
	c.nowFn = func() time.Duration {
		tick += step
		return tick
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	c := install(t)
	root := StartSpan("compile")
	root.Str("kernel", "A")
	inner := root.Child("opt")
	leaf := inner.Child("opt.clean").Int("instrs_before", 10).Int("instrs_after", 7)
	leaf.End()
	inner.End()
	other := StartSpan("sim")
	other.End()
	root.End()

	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	rt, ok1 := byName["compile"]
	op, ok2 := byName["opt"]
	cl, ok3 := byName["opt.clean"]
	sm, ok4 := byName["sim"]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing events: %v", byName)
	}
	// Children share the root's track; unrelated roots get their own.
	if op.TID != rt.TID || cl.TID != rt.TID {
		t.Errorf("children not on root track: root %d opt %d clean %d", rt.TID, op.TID, cl.TID)
	}
	if sm.TID == rt.TID {
		t.Error("independent root spans must get distinct tracks")
	}
	// Nesting: each child starts no earlier and ends no later than its
	// parent.
	within := func(outer, innerE Event) bool {
		return innerE.Start >= outer.Start &&
			innerE.Start+innerE.Dur <= outer.Start+outer.Dur
	}
	if !within(rt, op) || !within(op, cl) {
		t.Errorf("child spans not nested: root %+v opt %+v clean %+v", rt, op, cl)
	}
	// Attributes survive with types intact.
	var sawBefore, sawAfter bool
	for _, a := range cl.Attrs {
		switch a.Key {
		case "instrs_before":
			sawBefore = a.Value() == int64(10)
		case "instrs_after":
			sawAfter = a.Value() == int64(7)
		}
	}
	if !sawBefore || !sawAfter {
		t.Errorf("attrs lost: %+v", cl.Attrs)
	}
}

func TestUnderParentAndRoot(t *testing.T) {
	c := install(t)
	root := StartSpan("root")
	Under(root, "child").End()
	Under(nil, "orphan").End()
	root.End()
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	tids := map[string]int64{}
	for _, e := range evs {
		tids[e.Name] = e.TID
	}
	if tids["child"] != tids["root"] {
		t.Error("Under(parent, ...) must join the parent's track")
	}
	if tids["orphan"] == tids["root"] {
		t.Error("Under(nil, ...) must start a fresh track")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := install(t)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				GetCounter("test.compiles").Inc()
				GetCounter("test.bytes").Add(3)
				GetHistogram("test.lat").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("test.compiles").Value(); got != workers*perWorker {
		t.Errorf("compiles = %d, want %d", got, workers*perWorker)
	}
	if got := c.Counter("test.bytes").Value(); got != 3*workers*perWorker {
		t.Errorf("bytes = %d, want %d", got, 3*workers*perWorker)
	}
	count, sum, min, max := c.Histogram("test.lat").Summary()
	if count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", count, workers*perWorker)
	}
	if min != 0 || max != perWorker-1 {
		t.Errorf("histogram min/max = %v/%v, want 0/%v", min, max, perWorker-1)
	}
	wantSum := float64(workers) * float64(perWorker-1) * float64(perWorker) / 2
	if sum != wantSum {
		t.Errorf("histogram sum = %v, want %v", sum, wantSum)
	}
}

// TestDisabledPathAllocatesNothing pins the nil-sink fast path: with no
// collector installed, the full instrumentation surface must not
// allocate (this is what keeps bench_test.go numbers honest).
func TestDisabledPathAllocatesNothing(t *testing.T) {
	Install(nil)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("compile")
		child := sp.Child("opt").Int("instrs", 42).Float("ratio", 0.5).Str("arch", "a")
		child.End()
		Under(sp, "sched").End()
		sp.End()
		GetCounter("dse.compiles").Inc()
		GetCounter("dse.compiles").Add(7)
		GetHistogram("dse.busy").Observe(1.5)
		SetGauge("dse.rate", 2.5)
		_ = Enabled()
		// Propagation surface: contexts, wire conversion, forking.
		csp := StartSpanCtx(ctx, "evaluate")
		_ = ContextWithSpan(ctx, csp)
		_ = csp.Context()
		csp.Fork("dist.shard").End()
		csp.AdoptRemote(nil)
		_ = csp.TakeSubtree()
		csp.End()
		_ = SpanFromContext(ctx)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

// TestDisabledLoggingAllocatesNothing pins the nil-logger fast path of
// obs/log: with no logger installed, a full builder chain must not
// allocate (the builder API exists precisely to dodge the variadic
// backing array slog's own call shape would force).
func TestDisabledLoggingAllocatesNothing(t *testing.T) {
	olog.Install(nil)
	err := errForAllocTest
	allocs := testing.AllocsPerRun(1000, func() {
		olog.Info("job finished").Str("job", "j-1").Int("n", 3).
			Float("ratio", 0.5).Dur("dur", time.Second).Err(err).Log()
		olog.Debug("detail").Str("k", "v").Log()
		olog.Default().Warn("w").Log()
	})
	if allocs != 0 {
		t.Errorf("disabled logging allocates %.1f per op, want 0", allocs)
	}
}

var errForAllocTest = errors.New("boom")

func TestMetricsDump(t *testing.T) {
	c := install(t)
	fakeClock(c, 250*time.Microsecond)
	GetCounter("dse.compiles").Add(12)
	SetGauge("dse.compiles_per_sec", 48.5)
	GetHistogram("dse.worker_busy_seconds").Observe(1.5)
	GetHistogram("dse.worker_busy_seconds").Observe(0.5)
	sp := StartSpan("evaluate")
	sp.Child("sched").End()
	sp.End()

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		ElapsedSeconds float64            `json:"elapsed_seconds"`
		Counters       map[string]int64   `json:"counters"`
		Gauges         map[string]float64 `json:"gauges"`
		Histograms     map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"histograms"`
		Spans map[string]struct {
			Count   int64   `json:"count"`
			TotalMS float64 `json:"total_ms"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Counters["dse.compiles"] != 12 {
		t.Errorf("counter = %d, want 12", out.Counters["dse.compiles"])
	}
	if out.Gauges["dse.compiles_per_sec"] != 48.5 {
		t.Errorf("gauge = %v, want 48.5", out.Gauges["dse.compiles_per_sec"])
	}
	h := out.Histograms["dse.worker_busy_seconds"]
	if h.Count != 2 || h.Mean != 1.0 {
		t.Errorf("histogram = %+v, want count 2 mean 1", h)
	}
	if out.Spans["evaluate"].Count != 1 || out.Spans["sched"].Count != 1 {
		t.Errorf("span totals missing: %+v", out.Spans)
	}
	if out.Spans["evaluate"].TotalMS <= 0 {
		t.Error("span total must be positive")
	}
	if out.ElapsedSeconds <= 0 {
		t.Error("elapsed must be positive")
	}
}

func TestDisabledEntryPointsReturnNil(t *testing.T) {
	Install(nil)
	if Enabled() {
		t.Fatal("no collector installed but Enabled() = true")
	}
	if StartSpan("x") != nil || GetCounter("c") != nil || GetHistogram("h") != nil {
		t.Error("disabled entry points must return nil sinks")
	}
	if Active() != nil {
		t.Error("Active() must be nil when disabled")
	}
	// And the nil sinks must be inert, not panicky.
	var sp *Span
	sp.Child("y").Int("k", 1).Str("s", "v").Float("f", 1).End()
	sp.End()
	var ct *Counter
	ct.Inc()
	if ct.Value() != 0 {
		t.Error("nil counter value must be 0")
	}
	var h *Histogram
	h.Observe(1)
	if n, _, _, _ := h.Summary(); n != 0 {
		t.Error("nil histogram must stay empty")
	}
}
