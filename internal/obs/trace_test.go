package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCollector records a fixed little pipeline trace under a
// deterministic clock (each now() call advances exactly 1ms) and a
// deterministic ID sequence (idState reset, so trace/span IDs are
// stable across runs).
func goldenCollector() *Collector {
	c := NewCollector()
	fakeClock(c, time.Millisecond)
	idState.Store(0)
	Install(c)
	defer Install(nil)

	root := StartSpan("compile").Str("kernel", "A").Str("arch", "4 2 256 1 4 2")
	opt := root.Child("opt")
	clean := opt.Child("opt.clean").Int("instrs_before", 12).Int("instrs_after", 9)
	clean.End()
	opt.End()
	sim := StartSpan("sim").Int("cycles", 640)
	sim.End()
	root.End()
	return c
}

// TestTraceGolden pins the exact Chrome trace_event JSON we emit, so an
// accidental format change (field rename, ordering, indentation) shows
// up as a readable diff. Regenerate with: go test ./internal/obs -update
func TestTraceGolden(t *testing.T) {
	c := goldenCollector()
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceShape checks the structural invariants any trace viewer
// relies on, independent of the exact golden bytes.
func TestTraceShape(t *testing.T) {
	c := goldenCollector()
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int64                  `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		byName[e.Name] = i
		if e.Ph != "X" {
			t.Errorf("%s: ph = %q, want \"X\" (complete event)", e.Name, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("%s: negative ts/dur: %v/%v", e.Name, e.TS, e.Dur)
		}
		if e.PID != 1 {
			t.Errorf("%s: pid = %d, want 1", e.Name, e.PID)
		}
	}
	// Within a track, events are sorted by start time with parents
	// (longer spans) before their children, so viewers nest correctly.
	comp := out.TraceEvents[byName["compile"]]
	clean := out.TraceEvents[byName["opt.clean"]]
	if byName["compile"] > byName["opt"] || byName["opt"] > byName["opt.clean"] {
		t.Error("parent spans must serialize before their children")
	}
	if clean.TS < comp.TS || clean.TS+clean.Dur > comp.TS+comp.Dur {
		t.Error("child span not contained in parent on the trace timeline")
	}
	// Attributes come through as args with native JSON types.
	if comp.Args["kernel"] != "A" {
		t.Errorf("compile args = %v, want kernel:A", comp.Args)
	}
	if v, ok := clean.Args["instrs_after"].(float64); !ok || v != 9 {
		t.Errorf("opt.clean args = %v, want instrs_after:9", clean.Args)
	}
}
