package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	install(t)
	sp := StartSpan("serve.job")
	defer sp.End()
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("live span context invalid: %+v", sc)
	}
	hdr := sc.TraceParent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("bad traceparent %q", hdr)
	}
	got, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) rejected", hdr)
	}
	if got != sc {
		t.Errorf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, ok := ParseTraceParent(valid); !ok {
		t.Fatal("valid header rejected")
	}
	bad := []string{
		"",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",      // short
		"zz-0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // bad version
		"00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01",   // non-hex trace
		"00-00000000000000000000000000000000-0123456789abcdef-01",   // zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",   // zero span
		"00x0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // bad dash
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-x", // long
	}
	for _, h := range bad {
		if _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want rejection", h)
		}
	}
}

func TestStartSpanInAdoptsRemoteContext(t *testing.T) {
	c := install(t)
	remote := SpanContext{Trace: TraceID{1, 2, 3}, Span: SpanID{9, 8, 7}}
	sp := StartSpanIn(remote, "serve.job")
	child := sp.Child("evaluate")
	child.End()
	sp.End()
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Trace != remote.Trace {
			t.Errorf("%s: trace %s, want remote %s", e.Name, e.Trace, remote.Trace)
		}
	}
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["serve.job"].Parent != remote.Span {
		t.Errorf("serve.job parent %s, want remote span %s", byName["serve.job"].Parent, remote.Span)
	}
	if byName["evaluate"].Parent != byName["serve.job"].ID {
		t.Errorf("evaluate not parented under serve.job")
	}
}

func TestStartSpanCtxParentsUnderContextSpan(t *testing.T) {
	c := install(t)
	root := StartSpan("dist.explore")
	ctx := ContextWithSpan(context.Background(), root)
	sp := StartSpanCtx(ctx, "dse.explore")
	sp.End()
	root.End()
	evs := c.Events()
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	de := byName["dse.explore"]
	re := byName["dist.explore"]
	if de.Trace != re.Trace || de.Parent != re.ID {
		t.Errorf("dse.explore not a child of dist.explore: %+v vs %+v", de, re)
	}
	// Without a context span it must start a fresh root.
	orphan := StartSpanCtx(context.Background(), "lone")
	orphan.End()
	var oe Event
	for _, e := range c.Events() {
		if e.Name == "lone" {
			oe = e
		}
	}
	if oe.Trace == re.Trace || oe.Parent != (SpanID{}) {
		t.Errorf("orphan span inherited identity: %+v", oe)
	}
}

func TestTakeSubtreeRemovesOnlyDescendants(t *testing.T) {
	c := install(t)
	job := StartSpan("serve.job")
	ev := job.Child("evaluate")
	ev.Child("sched").End()
	ev.End()
	other := StartSpan("unrelated")
	other.End()
	job.End()

	evs := job.TakeSubtree()
	names := make([]string, len(evs))
	for i, e := range evs {
		names[i] = e.Name
	}
	if len(evs) != 3 {
		t.Fatalf("TakeSubtree got %v, want [sched evaluate serve.job] in some order", names)
	}
	for _, e := range evs {
		if e.Name == "unrelated" {
			t.Fatalf("TakeSubtree stole an unrelated root: %v", names)
		}
	}
	rest := c.Events()
	if len(rest) != 1 || rest[0].Name != "unrelated" {
		t.Errorf("collector left with %+v, want only the unrelated root", rest)
	}
	// Taking again yields nothing: the subtree was removed.
	if again := job.TakeSubtree(); len(again) != 0 {
		t.Errorf("second TakeSubtree returned %d events, want 0", len(again))
	}
}

func TestAdoptRemoteMergesIntoLocalTrace(t *testing.T) {
	// Worker side: a job span with children, captured and wired.
	wc := install(t)
	remote := SpanContext{Trace: TraceID{0xaa}, Span: SpanID{0xbb}}
	job := StartSpanIn(remote, "serve.job")
	job.Str("kind", "explore")
	ev := job.Child("evaluate")
	ev.Int("archs", 24)
	ev.End()
	job.End()
	wire := ToWire(job.TakeSubtree())
	if len(wire) != 2 {
		t.Fatalf("wire: %d spans, want 2", len(wire))
	}
	Install(nil)

	// Coordinator side: adopt under a dist.shard span.
	cc := install(t)
	_ = wc // worker collector no longer installed
	rootSpan := StartSpan("dist.explore")
	shard := rootSpan.Fork("dist.shard")
	shard.AdoptRemote(wire)
	shard.End()
	rootSpan.End()

	evs := cc.Events()
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	se, ok := byName["serve.job"]
	if !ok {
		t.Fatalf("adopted serve.job missing: %+v", evs)
	}
	sh := byName["dist.shard"]
	if se.Trace != sh.Trace {
		t.Errorf("adopted span kept foreign trace %s, want %s", se.Trace, sh.Trace)
	}
	if se.Parent != sh.ID {
		t.Errorf("adopted root parent %s, want dist.shard %s", se.Parent, sh.ID)
	}
	ee := byName["evaluate"]
	if ee.Parent != se.ID || ee.Trace != sh.Trace {
		t.Errorf("adopted child lost its chain: %+v", ee)
	}
	if se.Start < sh.Start {
		t.Errorf("adopted span starts before its shard: %v < %v", se.Start, sh.Start)
	}
	// Attributes survive the wire round trip.
	found := false
	for _, a := range se.Attrs {
		if a.Key == "kind" && a.Value() == "explore" {
			found = true
		}
	}
	if !found {
		t.Errorf("adopted span lost attrs: %+v", se.Attrs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	install(t)
	h := GetHistogram("dse.eval_seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	qs := h.Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("got %d quantiles, want 3", len(qs))
	}
	if qs[0] < 45 || qs[0] > 55 {
		t.Errorf("p50 = %v, want ~50", qs[0])
	}
	if qs[1] < 90 || qs[1] > 100 {
		t.Errorf("p95 = %v, want ~95", qs[1])
	}
	if qs[2] < qs[1] || qs[2] > 100 {
		t.Errorf("p99 = %v, want >= p95 and <= 100", qs[2])
	}
	var nilH *Histogram
	if got := nilH.Quantiles(0.5); got != nil {
		t.Errorf("nil histogram quantiles = %v, want nil", got)
	}
}
