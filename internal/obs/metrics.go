package obs

import (
	"encoding/json"
	"io"
	"os"
)

// histJSON is the exported summary of one histogram. P50/P95/P99 are
// reservoir estimates (see Histogram.Quantiles).
type histJSON struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// spanJSON aggregates all completed spans sharing one name — the
// per-phase totals of the metrics dump.
type spanJSON struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// metricsJSON is the flat metrics dump: everything a headless run needs
// to answer "where did the time go" without opening the trace.
type metricsJSON struct {
	ElapsedSeconds float64             `json:"elapsed_seconds"`
	Counters       map[string]int64    `json:"counters"`
	Gauges         map[string]float64  `json:"gauges"`
	Histograms     map[string]histJSON `json:"histograms"`
	Spans          map[string]spanJSON `json:"spans"`
}

// WriteMetrics emits counters, gauges, histogram summaries and
// per-span-name totals as indented JSON.
func (c *Collector) WriteMetrics(w io.Writer) error {
	out := metricsJSON{
		ElapsedSeconds: c.now().Seconds(),
		Counters:       map[string]int64{},
		Gauges:         map[string]float64{},
		Histograms:     map[string]histJSON{},
		Spans:          map[string]spanJSON{},
	}
	c.cmu.Lock()
	for name, ct := range c.counters {
		out.Counters[name] = ct.Value()
	}
	c.cmu.Unlock()
	c.gmu.Lock()
	for name, v := range c.gauges {
		out.Gauges[name] = v
	}
	c.gmu.Unlock()
	c.hmu.Lock()
	for name, h := range c.hists {
		count, sum, min, max := h.Summary()
		hj := histJSON{Count: count, Sum: sum, Min: min, Max: max}
		if count > 0 {
			hj.Mean = sum / float64(count)
			qs := h.Quantiles(0.5, 0.95, 0.99)
			hj.P50, hj.P95, hj.P99 = qs[0], qs[1], qs[2]
		}
		out.Histograms[name] = hj
	}
	c.hmu.Unlock()
	for _, e := range c.Events() {
		sj := out.Spans[e.Name]
		sj.Count++
		sj.TotalMS += float64(e.Dur.Nanoseconds()) / 1e6
		out.Spans[e.Name] = sj
	}
	for name, sj := range out.Spans {
		sj.MeanMS = sj.TotalMS / float64(sj.Count)
		out.Spans[name] = sj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteMetricsFile writes the metrics dump to path.
func (c *Collector) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
