// Package log is the toolchain's structured logging layer on top of
// log/slog: a process-global logger with text or JSON output selected
// by the -log-format/-log-level flags on every command (see cli.Tool),
// and job-ID/shard-ID/trace-ID attributes threaded through serve and
// dist so a line on a worker correlates with the coordinator's shard
// and trace (docs/OBSERVABILITY.md "Correlated logging").
//
// Like obs spans, disabled logging must cost nothing on hot paths. The
// API is therefore a nil-receiver builder rather than slog's variadic
// calls: Info(msg) returns nil unless the level is enabled, and every
// chained attribute method no-ops on nil — no allocation, not even the
// variadic backing array Go would otherwise materialize at the call
// site regardless of the level check inside.
package log

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// Logger wraps an slog.Logger. A nil *Logger is the disabled path:
// every method no-ops.
type Logger struct {
	s   *slog.Logger
	lvl slog.Level
}

// def is the process-global logger; nil means logging is disabled.
var def atomic.Pointer[Logger]

// Install sets the process-global logger. Install(nil) disables it.
func Install(l *Logger) { def.Store(l) }

// Default returns the installed logger, or nil when disabled.
func Default() *Logger { return def.Load() }

// Setup builds a Logger writing to w. format is "text" or "json";
// level is one of slog's names (debug, info, warn, error), case-
// insensitive. It does not install the logger — callers decide.
func Setup(w io.Writer, format, level string) (*Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("log level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("log format %q: want text or json", format)
	}
	return &Logger{s: slog.New(h), lvl: lvl}, nil
}

// New wraps an existing slog.Logger at the given minimum level.
func New(s *slog.Logger, lvl slog.Level) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s, lvl: lvl}
}

// With returns a logger whose every entry carries attrs. Nil-safe.
func (l *Logger) With(attrs ...slog.Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return &Logger{s: l.s.With(args...), lvl: l.lvl}
}

// Entry is one in-flight log record being built. A nil *Entry (level
// disabled or logger nil) no-ops through the whole chain.
type Entry struct {
	l     *Logger
	lv    slog.Level
	msg   string
	attrs []slog.Attr
}

func (l *Logger) entry(lv slog.Level, msg string) *Entry {
	if l == nil || lv < l.lvl {
		return nil
	}
	return &Entry{l: l, lv: lv, msg: msg}
}

// Debug starts a debug-level entry (nil when the level is disabled).
func (l *Logger) Debug(msg string) *Entry { return l.entry(slog.LevelDebug, msg) }

// Info starts an info-level entry (nil when the level is disabled).
func (l *Logger) Info(msg string) *Entry { return l.entry(slog.LevelInfo, msg) }

// Warn starts a warn-level entry (nil when the level is disabled).
func (l *Logger) Warn(msg string) *Entry { return l.entry(slog.LevelWarn, msg) }

// Error starts an error-level entry (nil when the level is disabled).
func (l *Logger) Error(msg string) *Entry { return l.entry(slog.LevelError, msg) }

// Str attaches a string attribute; returns e for chaining.
func (e *Entry) Str(key, v string) *Entry {
	if e != nil {
		e.attrs = append(e.attrs, slog.String(key, v))
	}
	return e
}

// Int attaches an integer attribute; returns e for chaining.
func (e *Entry) Int(key string, v int64) *Entry {
	if e != nil {
		e.attrs = append(e.attrs, slog.Int64(key, v))
	}
	return e
}

// Float attaches a float attribute; returns e for chaining.
func (e *Entry) Float(key string, v float64) *Entry {
	if e != nil {
		e.attrs = append(e.attrs, slog.Float64(key, v))
	}
	return e
}

// Dur attaches a duration attribute; returns e for chaining.
func (e *Entry) Dur(key string, v time.Duration) *Entry {
	if e != nil {
		e.attrs = append(e.attrs, slog.Duration(key, v))
	}
	return e
}

// Err attaches the error under key "err" (skipped when err is nil).
func (e *Entry) Err(err error) *Entry {
	if e != nil && err != nil {
		e.attrs = append(e.attrs, slog.String("err", err.Error()))
	}
	return e
}

// Log emits the entry. Terminal: the entry must not be reused.
func (e *Entry) Log() {
	if e == nil {
		return
	}
	e.l.s.LogAttrs(context.Background(), e.lv, e.msg, e.attrs...)
}

// Debug starts a debug entry on the installed logger (nil when
// disabled, so the whole chain no-ops).
func Debug(msg string) *Entry { return Default().Debug(msg) }

// Info starts an info entry on the installed logger.
func Info(msg string) *Entry { return Default().Info(msg) }

// Warn starts a warn entry on the installed logger.
func Warn(msg string) *Entry { return Default().Warn(msg) }

// Error starts an error entry on the installed logger.
func Error(msg string) *Entry { return Default().Error(msg) }
