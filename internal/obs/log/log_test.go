package log

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSetupTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := Setup(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped").Str("k", "v").Log()
	l.Warn("kept").Int("n", 7).Log()
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line emitted at warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "n=7") {
		t.Errorf("warn line missing or unattributed:\n%s", out)
	}
}

func TestSetupJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := Setup(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("shard dispatched").
		Str("job", "j-42").
		Int("archs", 96).
		Float("ratio", 0.25).
		Dur("dur", 1500*time.Millisecond).
		Err(errors.New("boom")).
		Log()
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "shard dispatched" || rec["job"] != "j-42" ||
		rec["archs"] != float64(96) || rec["err"] != "boom" {
		t.Errorf("record missing attrs: %v", rec)
	}
}

func TestSetupRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Setup(&buf, "yaml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := Setup(&buf, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestNilSafety(t *testing.T) {
	var l *Logger
	// Every chain on a nil logger must no-op without panicking.
	l.Info("x").Str("a", "b").Int("n", 1).Err(errors.New("e")).Log()
	l.With(slog.String("a", "b")).Error("y").Log()
	if New(nil, slog.LevelInfo) != nil {
		t.Error("New(nil) != nil")
	}
}

func TestWithAttachesAttrs(t *testing.T) {
	var buf bytes.Buffer
	l, err := Setup(&buf, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	jl := l.With(slog.String("job", "j-7"), slog.String("trace", "abc"))
	jl.Info("running").Log()
	out := buf.String()
	if !strings.Contains(out, "job=j-7") || !strings.Contains(out, "trace=abc") {
		t.Errorf("With attrs missing:\n%s", out)
	}
}

func TestInstallDefault(t *testing.T) {
	var buf bytes.Buffer
	l, err := Setup(&buf, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	Install(l)
	defer Install(nil)
	Info("global line").Log()
	if !strings.Contains(buf.String(), "global line") {
		t.Errorf("package-level Info not routed to installed logger:\n%s", buf.String())
	}
}
