// Package obs is the toolchain's zero-dependency telemetry subsystem:
// nestable timed spans over the compilation pipeline, race-safe
// process-wide counters/histograms/gauges for the parallel explorer and
// the simulator, and exporters for Chrome trace_event JSON and a flat
// metrics dump (see docs/OBSERVABILITY.md for the span taxonomy and
// metric names).
//
// Collection is off by default. Until Install is called every entry
// point takes the nil-sink fast path: StartSpan returns a nil *Span,
// GetCounter/GetHistogram return nil, and every method is nil-receiver
// safe — no allocation, no lock, a single atomic load. Hot paths can
// therefore be instrumented unconditionally without disturbing
// bench_test.go numbers.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// active is the installed process-global collector; nil means disabled.
var active atomic.Pointer[Collector]

// Install sets the process-global collector. Install(nil) disables
// collection again. Not intended to be toggled concurrently with
// instrumented work: spans started under one collector flush to it
// regardless of later installs.
func Install(c *Collector) { active.Store(c) }

// Active returns the installed collector, or nil when disabled.
func Active() *Collector { return active.Load() }

// Enabled reports whether a collector is installed.
func Enabled() bool { return active.Load() != nil }

// Collector accumulates spans and metrics for one process (or test).
type Collector struct {
	start time.Time
	// nowFn returns time since start; tests override it for
	// deterministic traces.
	nowFn   func() time.Duration
	nextTID atomic.Int64

	mu     sync.Mutex
	events []Event

	cmu      sync.Mutex
	counters map[string]*Counter

	hmu   sync.Mutex
	hists map[string]*Histogram

	gmu    sync.Mutex
	gauges map[string]float64
}

// NewCollector returns an empty collector clocked by the wall clock.
func NewCollector() *Collector {
	c := &Collector{
		start:    time.Now(),
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]float64{},
	}
	c.nowFn = func() time.Duration { return time.Since(c.start) }
	return c
}

func (c *Collector) now() time.Duration { return c.nowFn() }

// Events returns a snapshot of the recorded span events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// attrKind discriminates Attr payloads without interface boxing (which
// would allocate on every attribute even for ints).
type attrKind uint8

const (
	attrInt attrKind = iota + 1
	attrFloat
	attrStr
)

// Attr is one key/value span attribute.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Value returns the attribute's payload for export.
func (a Attr) Value() interface{} {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	default:
		return a.s
	}
}

// Event is one completed span.
type Event struct {
	Name string
	TID  int64 // track: root spans get fresh tracks, children inherit
	// Trace/ID/Parent are the span's distributed identity: every span
	// carries a trace ID shared by its whole tree (across processes,
	// via traceparent propagation — see SpanContext) and a unique span
	// ID; Parent is the zero SpanID for trace roots.
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Span is an in-flight timed region. A nil *Span is the disabled path:
// every method no-ops and Child returns nil, so instrumented code never
// branches on Enabled().
type Span struct {
	c      *Collector
	name   string
	tid    int64
	trace  TraceID
	id     SpanID
	parent SpanID
	start  time.Duration
	attrs  []Attr
}

// StartSpan begins a root span of a fresh trace on a fresh track.
// Returns nil (a no-op span) when no collector is installed.
func StartSpan(name string) *Span {
	c := active.Load()
	if c == nil {
		return nil
	}
	return &Span{c: c, name: name, tid: c.nextTID.Add(1),
		trace: newTraceID(), id: newSpanID(), start: c.now()}
}

// StartSpanIn begins a root span continuing a propagated trace: the
// span joins sc's trace with sc's span as its parent (the cross-process
// analogue of Child). An invalid sc degrades to StartSpan. Returns nil
// when no collector is installed.
func StartSpanIn(sc SpanContext, name string) *Span {
	s := StartSpan(name)
	if s != nil && sc.Valid() {
		s.trace = sc.Trace
		s.parent = sc.Span
	}
	return s
}

// Under returns a child of parent when parent is non-nil, otherwise a
// new root span. It lets pipeline stages nest under a caller's span
// while still producing a standalone trace when invoked directly.
func Under(parent *Span, name string) *Span {
	if parent != nil {
		return parent.Child(name)
	}
	return StartSpan(name)
}

// Child begins a nested span on the parent's track, inheriting the
// parent's trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{c: s.c, name: name, tid: s.tid,
		trace: s.trace, id: newSpanID(), parent: s.id, start: s.c.now()}
}

// Fork begins a child span on its own fresh track: same trace, parented
// under s, but rendered as an independent timeline. Use it for
// concurrent subtasks whose spans would overlap illegibly on the
// parent's track (the explorer forks one track per evaluation).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{c: s.c, name: name, tid: s.c.nextTID.Add(1),
		trace: s.trace, id: newSpanID(), parent: s.id, start: s.c.now()}
}

// Int attaches an integer attribute; returns s for chaining.
func (s *Span) Int(key string, v int64) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: v})
	}
	return s
}

// Float attaches a float attribute; returns s for chaining.
func (s *Span) Float(key string, v float64) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: v})
	}
	return s
}

// Str attaches a string attribute; returns s for chaining.
func (s *Span) Str(key, v string) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: v})
	}
	return s
}

// End completes the span and records it with its collector.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.c.now()
	s.c.mu.Lock()
	s.c.events = append(s.c.events, Event{
		Name:   s.name,
		TID:    s.tid,
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start,
		Dur:    end - s.start,
		Attrs:  s.attrs,
	})
	s.c.mu.Unlock()
}

// Counter is a monotonically increasing atomic metric. A nil *Counter
// no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use.
func (c *Collector) Counter(name string) *Counter {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	ct, ok := c.counters[name]
	if !ok {
		ct = &Counter{}
		c.counters[name] = ct
	}
	return ct
}

// GetCounter returns the named counter of the installed collector, or
// nil (a no-op counter) when disabled.
func GetCounter(name string) *Counter {
	c := active.Load()
	if c == nil {
		return nil
	}
	return c.Counter(name)
}

// histReservoirSize bounds the per-histogram sample reservoir backing
// quantile estimates. 1024 samples keep p99 within a few percent while
// capping memory per histogram.
const histReservoirSize = 1024

// Histogram is a race-safe summary (count/sum/min/max plus reservoir
// quantile estimates) of observations. A nil *Histogram no-ops.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	// sample is a uniform reservoir over all observations; rng is a
	// per-histogram xorshift64 state (deterministic seed, so tests and
	// repeated runs see stable sampling decisions).
	sample []float64
	rng    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.sample) < histReservoirSize {
		h.sample = append(h.sample, v)
	} else {
		// Classic reservoir replacement: the nth observation displaces a
		// random slot with probability size/n.
		if h.rng == 0 {
			h.rng = 0x9E3779B97F4A7C15
		}
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		if i := h.rng % uint64(h.count); i < histReservoirSize {
			h.sample[i] = v
		}
	}
	h.mu.Unlock()
}

// Quantiles returns reservoir-estimated quantiles for each q in qs
// (each in [0,1], nearest-rank on the sampled distribution). Zeros when
// no observations were recorded; nil for a nil histogram.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	s := append([]float64(nil), h.sample...)
	h.mu.Unlock()
	out := make([]float64, len(qs))
	if len(s) == 0 {
		return out
	}
	sort.Float64s(s)
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(s) {
			rank = len(s)
		}
		out[i] = s[rank-1]
	}
	return out
}

// Summary returns (count, sum, min, max); zeros for a nil histogram.
func (h *Histogram) Summary() (count int64, sum, min, max float64) {
	if h == nil {
		return 0, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max
}

// Histogram returns the named histogram, creating it on first use.
func (c *Collector) Histogram(name string) *Histogram {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	h, ok := c.hists[name]
	if !ok {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// GetHistogram returns the named histogram of the installed collector,
// or nil (a no-op histogram) when disabled.
func GetHistogram(name string) *Histogram {
	c := active.Load()
	if c == nil {
		return nil
	}
	return c.Histogram(name)
}

// SetGauge records a point-in-time value on c (e.g. compiles/sec at the
// end of an exploration).
func (c *Collector) SetGauge(name string, v float64) {
	c.gmu.Lock()
	c.gauges[name] = v
	c.gmu.Unlock()
}

// SetGauge records a gauge on the installed collector; no-op when
// disabled.
func SetGauge(name string, v float64) {
	if c := active.Load(); c != nil {
		c.SetGauge(name, v)
	}
}
