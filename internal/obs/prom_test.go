package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusLints(t *testing.T) {
	c := install(t)
	fakeClock(c, 250*time.Microsecond)
	GetCounter("dse.compiles").Add(12)
	GetCounter("serve.jobs_submitted").Inc()
	SetGauge("serve.queue_depth", 3)
	SetGauge("dse.compiles_per_sec", 48.5)
	h := GetHistogram("dse.eval_seconds")
	for i := 0; i < 50; i++ {
		h.Observe(float64(i) / 10)
	}
	sp := StartSpan("evaluate")
	sp.Child("sched").End()
	sp.End()

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# TYPE cfp_dse_compiles_total counter",
		"cfp_dse_compiles_total 12",
		"# TYPE cfp_serve_queue_depth gauge",
		"cfp_serve_queue_depth 3",
		"# TYPE cfp_dse_eval_seconds summary",
		`cfp_dse_eval_seconds{quantile="0.5"}`,
		`cfp_dse_eval_seconds{quantile="0.99"}`,
		"cfp_dse_eval_seconds_sum",
		"cfp_dse_eval_seconds_count 50",
		`cfp_span_seconds_total{span="evaluate"}`,
		`cfp_span_count_total{span="sched"}`,
		"cfp_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestLintPrometheusRejectsGarbage(t *testing.T) {
	bad := []string{
		"no value\n",                     // sample without value
		"cfp_x{label=unquoted} 1\n",      // unquoted label value
		"cfp_x 1\ncfp_x 2\ncfp_y nan3\n", // malformed float
		"# TYPE cfp_x counter\n",         // family with no samples
		"9leading_digit 1\n",             // invalid metric name
	}
	for _, s := range bad {
		if err := LintPrometheus(strings.NewReader(s)); err == nil {
			t.Errorf("LintPrometheus accepted %q", s)
		}
	}
	good := "# HELP cfp_x help text\n# TYPE cfp_x counter\ncfp_x{a=\"b\",c=\"d e\"} 1 1712000000\n"
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("LintPrometheus rejected valid input: %v", err)
	}
}
