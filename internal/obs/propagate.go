package obs

// Cross-process trace propagation: span identity (TraceID/SpanID), the
// traceparent wire header, context threading, per-subtree capture, and
// the WireSpan JSON form that lets a cfp-serve worker ship a job's
// spans back to the dist coordinator for re-parenting into one fleet
// trace (see docs/OBSERVABILITY.md "One fleet, one trace").

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID identifies a whole span tree, across processes. The zero
// value is invalid.
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value is invalid
// (it marks "no parent" on trace roots).
type SpanID [8]byte

// String renders the ID as lowercase hex ("" for the zero ID).
func (t TraceID) String() string {
	if t == (TraceID{}) {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String renders the ID as lowercase hex ("" for the zero ID).
func (s SpanID) String() string {
	if s == (SpanID{}) {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// idState drives the lock-free ID generator: a counter on a golden-ratio
// stride pushed through a splitmix64 finalizer, seeded once from
// crypto/rand. Unique within a process and collision-resistant across a
// fleet without taking a lock or allocating on span start.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	// crypto/rand.Read never fails on supported platforms; a zero seed
	// would still yield unique in-process IDs.
	_, _ = crand.Read(seed[:])
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

func nextID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func newTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// SpanContext is the propagatable identity of a span: enough for a
// remote process to start children in the same trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool {
	return sc.Trace != (TraceID{}) && sc.Span != (SpanID{})
}

// TraceParent renders the context as a W3C traceparent-style header
// value: "00-<32 hex trace>-<16 hex span>-01". Empty for an invalid
// context.
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], sc.Trace[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sc.Span[:])
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}

// ParseTraceParent parses a traceparent-style header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any 2-hex version and
// flags field; ok is false for malformed values or all-zero IDs.
func ParseTraceParent(v string) (sc SpanContext, ok bool) {
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if !isHex(v[:2]) || !isHex(v[53:]) {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// Context returns the span's propagatable identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// spanCtxKey keys the current span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span. A nil sp
// returns ctx unchanged, so the disabled path stays allocation-free.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpanCtx begins a span parented under the context's current span
// (on its own track, via Fork — callers are typically concurrent), or a
// fresh root span when ctx carries none. Nil/no-op when disabled.
func StartSpanCtx(ctx context.Context, name string) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Fork(name)
	}
	return StartSpan(name)
}

// TakeSubtree removes and returns every recorded event in s's subtree —
// s's own event (if already ended) plus all transitive children — in
// recording order. Other traces and unrelated spans of the same trace
// stay in the collector untouched. Used by serve to extract exactly one
// job's spans for the wire, which also keeps a long-running server's
// collector from accumulating events without bound. Nil-safe.
func (s *Span) TakeSubtree() []Event {
	if s == nil {
		return nil
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// Children index over this trace only; parent links always point at
	// already-started spans, so one pass suffices.
	kids := make(map[SpanID][]int)
	for i, e := range c.events {
		if e.Trace == s.trace && e.Parent != (SpanID{}) {
			kids[e.Parent] = append(kids[e.Parent], i)
		}
	}
	take := make(map[int]bool)
	stack := []SpanID{s.id}
	for i, e := range c.events {
		if e.Trace == s.trace && e.ID == s.id {
			take[i] = true // s's own event, if s already ended
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range kids[id] {
			if !take[i] {
				take[i] = true
				stack = append(stack, c.events[i].ID)
			}
		}
	}
	if len(take) == 0 {
		return nil
	}
	out := make([]Event, 0, len(take))
	rest := c.events[:0]
	for i, e := range c.events {
		if take[i] {
			out = append(out, e)
		} else {
			rest = append(rest, e)
		}
	}
	// Zero the tail so dropped events don't pin attr slices.
	for i := len(rest); i < len(c.events); i++ {
		c.events[i] = Event{}
	}
	c.events = rest
	return out
}

// WireSpan is the JSON form of one completed span as shipped between
// processes (a worker returns its job's spans in JobStatus.Spans).
// Times are microseconds relative to the earliest span in the batch, so
// the receiver can rebase them onto its own clock.
type WireSpan struct {
	Name    string         `json:"name"`
	TraceID string         `json:"trace_id"`
	SpanID  string         `json:"span_id"`
	Parent  string         `json:"parent_id,omitempty"`
	Track   int64          `json:"track"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// ToWire converts events (as returned by TakeSubtree) to their wire
// form, rebasing start times to the batch's earliest span.
func ToWire(events []Event) []WireSpan {
	if len(events) == 0 {
		return nil
	}
	base := events[0].Start
	for _, e := range events[1:] {
		if e.Start < base {
			base = e.Start
		}
	}
	out := make([]WireSpan, 0, len(events))
	for _, e := range events {
		w := WireSpan{
			Name:    e.Name,
			TraceID: e.Trace.String(),
			SpanID:  e.ID.String(),
			Parent:  e.Parent.String(),
			Track:   e.TID,
			StartUS: int64((e.Start - base) / time.Microsecond),
			DurUS:   int64(e.Dur / time.Microsecond),
		}
		if len(e.Attrs) > 0 {
			w.Attrs = make(map[string]any, len(e.Attrs))
			for _, a := range e.Attrs {
				w.Attrs[a.Key] = a.Value()
			}
		}
		out = append(out, w)
	}
	return out
}

// AdoptRemote grafts wire spans from another process into s's trace:
// their trace ID is rewritten to s's, remote roots (spans whose parent
// is absent from the batch) are re-parented under s, each distinct
// remote track gets a fresh local track, and start times are rebased
// onto s's start (clocks across processes aren't comparable; the batch
// keeps its internal relative timing). Nil-safe: a disabled coordinator
// drops the spans.
func (s *Span) AdoptRemote(spans []WireSpan) {
	if s == nil || len(spans) == 0 {
		return
	}
	c := s.c
	present := make(map[string]bool, len(spans))
	for _, w := range spans {
		present[w.SpanID] = true
	}
	tracks := make(map[int64]int64)
	evs := make([]Event, 0, len(spans))
	for _, w := range spans {
		e := Event{
			Name:  w.Name,
			Trace: s.trace,
			Start: s.start + time.Duration(w.StartUS)*time.Microsecond,
			Dur:   time.Duration(w.DurUS) * time.Microsecond,
		}
		e.ID = parseSpanID(w.SpanID)
		if w.Parent != "" && present[w.Parent] {
			e.Parent = parseSpanID(w.Parent)
		} else {
			e.Parent = s.id
		}
		tid, ok := tracks[w.Track]
		if !ok {
			tid = c.nextTID.Add(1)
			tracks[w.Track] = tid
		}
		e.TID = tid
		e.Attrs = attrsFromMap(w.Attrs)
		evs = append(evs, e)
	}
	c.mu.Lock()
	c.events = append(c.events, evs...)
	c.mu.Unlock()
}

func parseSpanID(s string) SpanID {
	var id SpanID
	if len(s) == 16 {
		_, _ = hex.Decode(id[:], []byte(s))
	}
	return id
}

// attrsFromMap rebuilds span attributes from their wire form in
// deterministic (sorted-key) order. JSON round-tripping collapses ints
// to float64; values are restored by dynamic type.
func attrsFromMap(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(m))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			attrs = append(attrs, Attr{Key: k, kind: attrStr, s: v})
		case float64:
			if v == float64(int64(v)) {
				attrs = append(attrs, Attr{Key: k, kind: attrInt, i: int64(v)})
			} else {
				attrs = append(attrs, Attr{Key: k, kind: attrFloat, f: v})
			}
		case int64:
			attrs = append(attrs, Attr{Key: k, kind: attrInt, i: v})
		case bool:
			s := "false"
			if v {
				s = "true"
			}
			attrs = append(attrs, Attr{Key: k, kind: attrStr, s: s})
		}
	}
	return attrs
}
