package vliw

import (
	"strings"
	"testing"

	"customfit/internal/ir"
	"customfit/internal/machine"
)

func tinyProgram() (*Program, *ir.Func) {
	f := ir.NewFunc("t")
	b := f.NewBlock("entry")
	r0, r1 := f.NewReg(), f.NewReg()
	i1 := ir.NewInstr(ir.OpMov, r0, ir.Imm(3))
	i2 := ir.NewInstr(ir.OpAdd, r1, ir.R(r0), ir.Imm(4))
	ret := &ir.Instr{Op: ir.OpRet, Dest: ir.NoReg}
	b.Append(i1)
	b.Append(i2)
	b.Append(ret)
	p := &Program{
		Arch: machine.Baseline,
		F:    f,
		Blocks: []*Block{{
			IR:  b,
			Len: 3,
			Ops: []Op{
				{Instr: i1, Cycle: 0},
				{Instr: i2, Cycle: 1},
				{Instr: ret, Cycle: 2},
			},
		}},
	}
	return p, f
}

func TestCountsAndIPC(t *testing.T) {
	p, _ := tinyProgram()
	if p.BundleCount() != 3 {
		t.Errorf("BundleCount = %d, want 3", p.BundleCount())
	}
	if p.OpCount() != 3 {
		t.Errorf("OpCount = %d, want 3", p.OpCount())
	}
	if ipc := p.IPC(); ipc != 1.0 {
		t.Errorf("IPC = %f, want 1", ipc)
	}
}

func TestStaticCycles(t *testing.T) {
	p, _ := tinyProgram()
	got := p.StaticCycles(map[string]int64{"entry0": 5})
	if got != 15 {
		t.Errorf("StaticCycles = %d, want 15", got)
	}
}

func TestStringRendersBundles(t *testing.T) {
	p, _ := tinyProgram()
	s := p.String()
	for _, want := range []string{"entry0:", "3 bundles", "mov", "add", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("assembly missing %q:\n%s", want, s)
		}
	}
}

func TestBlockFor(t *testing.T) {
	p, f := tinyProgram()
	if p.BlockFor(f.Blocks[0]) == nil {
		t.Error("BlockFor lost the block")
	}
	other := f.NewBlock("x")
	if p.BlockFor(other) != nil {
		t.Error("BlockFor invented a schedule")
	}
}

func TestUtilization(t *testing.T) {
	p, _ := tinyProgram()
	u := p.Utilization()
	// 2 ALU ops over 3 bundles × 1 ALU.
	if u.ALU < 0.6 || u.ALU > 0.7 {
		t.Errorf("ALU utilization = %f, want ~0.67", u.ALU)
	}
	if u.Moves != 0 || u.Bus != 0 {
		t.Errorf("single-cluster program reports moves/bus usage: %+v", u)
	}
}

func TestIPCAndEmpty(t *testing.T) {
	empty := &Program{Arch: machine.Baseline, F: ir.NewFunc("e")}
	if empty.IPC() != 0 || empty.BundleCount() != 0 || empty.OpCount() != 0 {
		t.Error("empty program metrics nonzero")
	}
	if empty.StaticCycles(map[string]int64{}) != 0 {
		t.Error("empty program cycles nonzero")
	}
}
