// Package vliw defines the scheduled-program representation produced by
// the compiler backend: per-block cycle-by-cycle operation placements
// on a concrete clustered architecture, plus register-pressure and
// spill metadata the explorer consumes.
package vliw

import (
	"fmt"
	"sort"
	"strings"

	"customfit/internal/ir"
	"customfit/internal/machine"
)

// Op is one operation placed in the schedule.
type Op struct {
	Instr *ir.Instr
	Cycle int // issue cycle within the block
	// Cluster is the executing cluster (for XMov: the destination
	// cluster whose register file receives the value).
	Cluster int
	// SrcCluster is the cluster whose ALU issue slot an XMov occupies;
	// equal to Cluster for every other operation.
	SrcCluster int
}

// Block is the schedule of one basic block.
type Block struct {
	IR  *ir.Block
	Len int  // cycles per execution of this block
	Ops []Op // sorted by (Cycle, Cluster)
	// SchedPeak is the scheduler's own per-cluster peak live-value
	// count while building this block (diagnostics; the allocator's
	// exact measurement is authoritative).
	SchedPeak []int
	// Forced counts pressure-deadlock placements that exceeded the
	// scheduler's live-value budget.
	Forced int
}

// Program is a fully scheduled kernel for one architecture.
type Program struct {
	Arch machine.Arch
	F    *ir.Func
	// Blocks is parallel to F.Blocks.
	Blocks []*Block
	// RegCluster maps each virtual register to its home cluster.
	RegCluster []int
	// Spills is the number of virtual registers the allocator had to
	// spill (the paper's unroll-until-spill signal).
	Spills int
	// MaxLive is the per-cluster peak register pressure.
	MaxLive []int
	// PhysAssign maps each virtual register to a physical register
	// within its cluster (-1 when never materialized).
	PhysAssign []int
	// Blame counts, per virtual register, how many scheduler pressure
	// stalls the register was occupying a saturated cluster for. The
	// compile driver spills the most-blamed registers first.
	Blame []int
}

// BlockFor returns the schedule of an IR block.
func (p *Program) BlockFor(b *ir.Block) *Block {
	for _, sb := range p.Blocks {
		if sb.IR == b {
			return sb
		}
	}
	return nil
}

// StaticCycles computes total executed cycles given per-block visit
// counts (obtained once per kernel from the IR interpreter; block visit
// counts do not depend on the architecture).
func (p *Program) StaticCycles(visits map[string]int64) int64 {
	var total int64
	for _, sb := range p.Blocks {
		total += int64(sb.Len) * visits[sb.IR.Name]
	}
	return total
}

// BundleCount returns the total number of instruction words (cycles
// summed over blocks) in the program image.
func (p *Program) BundleCount() int {
	n := 0
	for _, sb := range p.Blocks {
		n += sb.Len
	}
	return n
}

// OpCount returns the number of scheduled operations.
func (p *Program) OpCount() int {
	n := 0
	for _, sb := range p.Blocks {
		n += len(sb.Ops)
	}
	return n
}

// String renders the schedule as readable VLIW assembly, one bundle per
// line with cluster-tagged slots.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; kernel %s on %s  (%d bundles, %d ops)\n",
		p.F.Name, p.Arch, p.BundleCount(), p.OpCount())
	for _, blk := range p.Blocks {
		fmt.Fprintf(&sb, "%s:  ; %d cycles\n", blk.IR.Name, blk.Len)
		byCycle := map[int][]Op{}
		for _, op := range blk.Ops {
			byCycle[op.Cycle] = append(byCycle[op.Cycle], op)
		}
		for c := 0; c < blk.Len; c++ {
			ops := byCycle[c]
			sort.Slice(ops, func(i, j int) bool { return ops[i].Cluster < ops[j].Cluster })
			fmt.Fprintf(&sb, "  %4d:", c)
			if len(ops) == 0 {
				sb.WriteString("  nop")
			}
			for _, op := range ops {
				fmt.Fprintf(&sb, "  c%d{%s}", op.Cluster, op.Instr)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// IPC returns the achieved operations-per-bundle across the whole
// program image (a static ILP measure).
func (p *Program) IPC() float64 {
	if p.BundleCount() == 0 {
		return 0
	}
	return float64(p.OpCount()) / float64(p.BundleCount())
}

// Utilization summarizes how busy each resource class is across the
// program image (static slot occupancy, weighted by nothing — per-
// bundle averages over all blocks).
type Utilization struct {
	// ALU is the fraction of ALU issue slots filled (including
	// multiplies and the source side of inter-cluster moves).
	ALU float64
	// MUL is the fraction of multiply-capable slots used by multiplies.
	MUL float64
	// L1 and L2 are the fraction of bundles issuing an access to each
	// memory level.
	L1, L2 float64
	// Bus is the fraction of global bus slots used by inter-cluster
	// moves (0 on single-cluster machines).
	Bus float64
	// Moves is the fraction of all operations that are inter-cluster
	// copies — the clustering tax.
	Moves float64
}

// Utilization computes static resource occupancy.
func (p *Program) Utilization() Utilization {
	var u Utilization
	bundles := p.BundleCount()
	if bundles == 0 {
		return u
	}
	aluSlots := float64(bundles * p.Arch.ALUs)
	mulSlots := float64(bundles * p.Arch.MULs)
	busSlots := float64(bundles * p.Arch.Buses())
	var alu, mul, l1, l2, bus, moves, ops float64
	for _, sb := range p.Blocks {
		for _, op := range sb.Ops {
			ops++
			switch op.Instr.Op {
			case ir.OpXMov:
				alu++
				bus++
				moves++
			case ir.OpMul:
				alu++
				mul++
			case ir.OpLoad, ir.OpStore:
				if op.Instr.Mem.Space == ir.L1 {
					l1++
				} else {
					l2++
				}
			case ir.OpBr, ir.OpCBr, ir.OpRet, ir.OpNop:
			default:
				alu++
			}
		}
	}
	u.ALU = alu / aluSlots
	if mulSlots > 0 {
		u.MUL = mul / mulSlots
	}
	u.L1 = l1 / float64(bundles)
	u.L2 = l2 / float64(bundles)
	if busSlots > 0 {
		u.Bus = bus / busSlots
	}
	if ops > 0 {
		u.Moves = moves / ops
	}
	return u
}
