// Package bench implements the paper's benchmark suite (Tables 1 and
// 2): the individual color/image-processing kernels A, C, D, E, F, G, H
// and the jammed combinations GF, GEF, DH, DHEF, each as CKC source
// plus a bit-exact golden Go implementation and a deterministic input
// generator. The golden models are the correctness oracle for the whole
// compiler: every benchmark must produce identical memory images under
// the golden model, the IR interpreter, and the cycle-accurate VLIW
// simulator.
package bench

import (
	"fmt"
	"sort"

	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/obs"
)

// Benchmark is one kernel of the suite.
type Benchmark struct {
	// Name is the paper's single/multi-letter tag: "A", "C", ... "DHEF".
	Name string
	// Desc matches the paper's Table 1/2 description.
	Desc string
	// Source is the CKC program text (one kernel).
	Source string
	// NewCase builds a workload of the given width with deterministic
	// pseudo-random contents derived from seed.
	NewCase func(width int, seed int64) *Case
}

// Case is a concrete workload: kernel arguments, memory bindings, a
// golden-model runner and the list of output memories to compare.
type Case struct {
	Args []int32
	Mem  map[string][]int32
	// Outputs are the memory names the golden model fills and
	// verification compares.
	Outputs []string
	// Golden computes the expected contents of the output memories
	// (operating on copies; the case itself is not mutated).
	Golden func() map[string][]int32
}

// Clone returns a deep copy of the case's memory bindings so a run
// cannot contaminate later runs.
func (c *Case) Clone() *Case {
	nc := &Case{
		Args:    append([]int32(nil), c.Args...),
		Mem:     map[string][]int32{},
		Outputs: c.Outputs,
		Golden:  c.Golden,
	}
	for k, v := range c.Mem {
		nc.Mem[k] = append([]int32(nil), v...)
	}
	return nc
}

// Env builds an interpreter/simulator environment from the case.
func (c *Case) Env() *ir.Env {
	env := ir.NewEnv(c.Args...)
	for k, v := range c.Mem {
		env.Bind(k, v)
	}
	return env
}

// Compile parses and lowers the benchmark's kernel to IR.
func (b *Benchmark) Compile() (*ir.Func, error) {
	return b.CompileSpan(nil)
}

// CompileSpan is Compile with frontend telemetry spans under sp.
func (b *Benchmark) CompileSpan(sp *obs.Span) (*ir.Func, error) {
	fn, err := cc.CompileKernelSpan(sp, b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return fn, nil
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
	return b
}

// ByName returns a registered benchmark or nil.
func ByName(name string) *Benchmark { return registry[name] }

// Individual returns the paper's Table 1 kernels in order.
func Individual() []*Benchmark {
	return list("A", "C", "D", "E", "F", "G", "H")
}

// Jammed returns the paper's Table 2 fused kernels in order.
func Jammed() []*Benchmark {
	return list("GF", "GEF", "DH", "DHEF")
}

// All returns every benchmark, individual first.
func All() []*Benchmark {
	return append(Individual(), Jammed()...)
}

// Names returns all registered names, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func list(names ...string) []*Benchmark {
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		b := registry[n]
		if b == nil {
			panic("bench: unregistered benchmark " + n)
		}
		out = append(out, b)
	}
	return out
}

// xorshift is the deterministic input generator shared by all cases.
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(seed*2685821657736338717 + 1442695040888963407)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// byteVal returns a pseudo-random pixel component in [0, 255].
func (x *xorshift) byteVal() int32 { return int32(x.next() & 0xff) }

// rgbRow generates an interleaved RGB row of w pixels (3w entries),
// with mild spatial correlation so the data resembles imagery rather
// than noise.
func rgbRow(r *xorshift, w int) []int32 {
	row := make([]int32, 3*w)
	cur := [3]int32{r.byteVal(), r.byteVal(), r.byteVal()}
	for i := 0; i < w; i++ {
		for c := 0; c < 3; c++ {
			delta := int32(r.next()%31) - 15
			cur[c] += delta
			if cur[c] < 0 {
				cur[c] = 0
			}
			if cur[c] > 255 {
				cur[c] = 255
			}
			row[i*3+c] = cur[c]
		}
	}
	return row
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
