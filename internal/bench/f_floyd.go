package bench

// Benchmark F: halftoning via standard Floyd-Steinberg error diffusion,
// following the paper's Figure 1 (fixed weights 7/16, 3/16, 5/16, 1/16;
// no stochastic update). The kernel produces triplets of 1-bit
// halftoned pixels packed into bytes, diffusing quantization error
// rightward through the Err scalars (a genuine serial recurrence that
// caps ILP) and downward through the persistent errBuf row.
//
// Fixed point: pixel values are scaled by 2^3 (the paper's
// (2*8)-13 = 3 shift), threshold 128<<3, full scale 255<<3.

// FMaxWidth bounds F's row width (errBuf is statically sized).
const FMaxWidth = 1024

const fSource = `
short errBuf[3078];
kernel fsd(byte linein[], byte lineout[], int plane_size) {
	int i;
	int errT[3]; int errOff[3]; int errC[3]; int oldE[3]; int outb[3];
	int bitmask; int op;
	errC[0] = 0; errC[1] = 0; errC[2] = 0;
	errT[0] = errBuf[0]; errT[1] = errBuf[1]; errT[2] = errBuf[2];
	outb[0] = 0; outb[1] = 0; outb[2] = 0;
	bitmask = 128;
	op = 0;
	for (i = 0; i < plane_size; i++) {
		int color;
		for (color = 0; color < 3; color++) {
			int e; int bit;
			errOff[color] = errT[color];
			errT[color] = errBuf[3 + i * 3 + color];
			oldE[color] = errC[color];
			e = errT[color] + ((errC[color] * 7 + 8) >> 4) + (linein[i * 3 + color] << 3);
			bit = e > (128 << 3);
			outb[color] = bit ? outb[color] | bitmask : outb[color];
			e = bit ? e - (255 << 3) : e;
			errC[color] = e;
			errOff[color] += (e * 3 + 8) >> 4;
			errT[color] = (e * 5 + oldE[color] + 8) >> 4;
			errBuf[i * 3 + color] = errOff[color];
			lineout[op + color] = outb[color];
		}
		if (bitmask == 1) {
			op += 3;
			outb[0] = 0; outb[1] = 0; outb[2] = 0;
			bitmask = 128;
		} else {
			bitmask = bitmask >> 1;
		}
	}
}`

// goldenF mirrors fsd exactly, including the persistent errBuf update.
// It returns the expected lineout and errBuf contents.
func goldenF(linein, errBufIn []int32, w int) (lineout, errBuf []int32) {
	errBuf = append([]int32(nil), errBufIn...)
	lineout = make([]int32, 3*(w/8+2))
	var errC, errT, errOff, oldE, outb [3]int32
	for c := 0; c < 3; c++ {
		errT[c] = int32(int16(errBuf[c]))
	}
	bitmask := int32(128)
	op := 0
	for i := 0; i < w; i++ {
		for c := 0; c < 3; c++ {
			errOff[c] = errT[c]
			errT[c] = int32(int16(errBuf[3+i*3+c]))
			oldE[c] = errC[c]
			e := errT[c] + ((errC[c]*7 + 8) >> 4) + (linein[i*3+c] << 3)
			bit := e > 128<<3
			if bit {
				outb[c] |= bitmask
				e -= 255 << 3
			}
			errC[c] = e
			errOff[c] += (e*3 + 8) >> 4
			errT[c] = (e*5 + oldE[c] + 8) >> 4
			errBuf[i*3+c] = int32(int16(errOff[c]))
			lineout[op+c] = outb[c] & 0xff
		}
		if bitmask == 1 {
			op += 3
			outb = [3]int32{}
			bitmask = 128
		} else {
			bitmask >>= 1
		}
	}
	return lineout, errBuf
}

var benchF = register(&Benchmark{
	Name:   "F",
	Desc:   "Halftoning via standard Floyd-Steinberg error diffusion",
	Source: fSource,
	NewCase: func(width int, seed int64) *Case {
		if width > FMaxWidth {
			width = FMaxWidth
		}
		r := newRand(seed)
		in := rgbRow(r, width)
		errBuf := make([]int32, 3078)
		for i := 0; i < 3*width+3; i++ {
			errBuf[i] = int32(int16(r.next()%512)) - 256 // plausible leftover row error
		}
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"linein":  in,
				"lineout": make([]int32, 3*(width/8+2)),
				"errBuf":  errBuf,
			},
			Outputs: []string{"lineout", "errBuf"},
			Golden: func() map[string][]int32 {
				lo, eb := goldenF(in, errBuf, width)
				return map[string][]int32{"lineout": lo, "errBuf": eb}
			},
		}
	},
})
