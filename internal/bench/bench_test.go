package bench

import (
	"errors"
	"testing"

	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sched"
	"customfit/internal/sim"
)

// checkOutputs compares the bound memories named in c.Outputs against
// the golden model's expectations.
func checkOutputs(t *testing.T, tag string, c *Case, got map[string][]int32) {
	t.Helper()
	want := c.Golden()
	for _, name := range c.Outputs {
		w, g := want[name], got[name]
		if len(g) < len(w) {
			t.Fatalf("%s: output %q has %d elements, want %d", tag, name, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", tag, name, i, g[i], w[i])
			}
		}
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		fn, err := b.Compile()
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if fn.Loop == nil {
			t.Errorf("%s: no pixel loop", b.Name)
		}
	}
}

func TestGoldenVsInterpreter(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			fn, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 8, 33, 64} {
				for seed := int64(1); seed <= 2; seed++ {
					c := b.NewCase(w, seed)
					run := c.Clone()
					if _, err := ir.Interp(fn, run.Env()); err != nil {
						t.Fatalf("w=%d seed=%d: %v", w, seed, err)
					}
					checkOutputs(t, b.Name, c, run.Mem)
				}
			}
		})
	}
}

func TestLoopBodiesCollapseForUnrolling(t *testing.T) {
	// Every benchmark's pixel loop must if-convert into a single block,
	// or the explorer cannot vary the unroll factor.
	for _, b := range All() {
		fn, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		g, err := opt.Prepare(fn, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if g.Loop == nil || !g.Loop.SingleBlock() {
			t.Errorf("%s: pixel loop body did not collapse to one block", b.Name)
		}
	}
}

func TestGoldenVsSimulatorAcrossArchs(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every benchmark for several machines")
	}
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2},
		{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8},
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			fn, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range []int{1, 2} {
				prepared, err := opt.Prepare(fn, u)
				if err != nil {
					t.Fatalf("u=%d: %v", u, err)
				}
				for _, arch := range archs {
					res, err := sched.Compile(prepared, arch)
					if err != nil {
						// Pressure non-convergence above u=1 mirrors the
						// paper's spill-stop: the explorer simply will
						// not use this unroll factor on this machine.
						if u > 1 && errors.Is(err, sched.ErrNoFit) {
							continue
						}
						t.Fatalf("u=%d %s: %v", u, arch, err)
					}
					if err := sched.Validate(res.Prog); err != nil {
						t.Fatalf("u=%d %s: %v", u, arch, err)
					}
					c := b.NewCase(19, 7)
					run := c.Clone()
					if _, err := sim.Run(res.Prog, run.Env()); err != nil {
						t.Fatalf("u=%d %s: %v", u, arch, err)
					}
					checkOutputs(t, b.Name, c, run.Mem)
					// And again through the allocator's PHYSICAL register
					// assignment: identical output proves no two live
					// ranges share a register.
					phys := c.Clone()
					if _, err := sim.RunPhysical(res.Prog, phys.Env()); err != nil {
						t.Fatalf("u=%d %s (physical): %v", u, arch, err)
					}
					checkOutputs(t, b.Name+"/phys", c, phys.Mem)
				}
			}
		})
	}
}

func TestJammedEquivalenceToComposition(t *testing.T) {
	// The jammed goldens are compositions by construction; this checks
	// the jammed KERNELS against those compositions at a larger width,
	// which is the paper's Table 2 claim (same computation, one loop).
	for _, b := range Jammed() {
		fn, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		c := b.NewCase(96, 3)
		run := c.Clone()
		if _, err := ir.Interp(fn, run.Env()); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		checkOutputs(t, b.Name, c, run.Mem)
	}
}

func TestRegistryShape(t *testing.T) {
	if got := len(Individual()); got != 7 {
		t.Errorf("individual benchmarks = %d, want 7", got)
	}
	if got := len(Jammed()); got != 4 {
		t.Errorf("jammed benchmarks = %d, want 4", got)
	}
	if ByName("A") == nil || ByName("DHEF") == nil || ByName("ZZ") != nil {
		t.Error("ByName lookup broken")
	}
	for _, b := range All() {
		if b.Desc == "" || b.Source == "" || b.NewCase == nil {
			t.Errorf("%s: incomplete registration", b.Name)
		}
	}
}

func TestCaseCloneIsolation(t *testing.T) {
	b := ByName("D")
	c := b.NewCase(8, 1)
	cl := c.Clone()
	cl.Mem["in"][0] = 999
	if c.Mem["in"][0] == 999 {
		t.Error("Clone shares memory with original")
	}
}

func TestInputGeneratorDeterminism(t *testing.T) {
	a1 := ByName("A").NewCase(16, 42)
	a2 := ByName("A").NewCase(16, 42)
	for name := range a1.Mem {
		m1, m2 := a1.Mem[name], a2.Mem[name]
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("case generation not deterministic at %s[%d]", name, i)
			}
		}
	}
	b := ByName("A").NewCase(16, 43)
	same := true
	for i, v := range a1.Mem["in0"] {
		if b.Mem["in0"][i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical inputs")
	}
}

// TestFloydSteinbergDensityProperty checks the *meaning* of F, not just
// self-consistency: over a long uniform-gray row, the density of 1-bits
// in the halftone must track the input brightness (that is what error
// diffusion is for).
func TestFloydSteinbergDensityProperty(t *testing.T) {
	fn, err := ByName("F").Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Error diffusion pushes 9/16 of each pixel's error to the next
	// row via errBuf, so the density property holds for a *page*, not a
	// single first row: run many rows reusing the persistent error
	// buffer (exactly how the paper's FSDline is called per scanline)
	// and measure the later rows.
	width := 256
	rows := 24
	for _, gray := range []int32{0, 32, 128, 200, 255} {
		in := make([]int32, 3*width)
		for i := range in {
			in[i] = gray
		}
		errBuf := make([]int32, 3078)
		ones, total := 0, 0
		for row := 0; row < rows; row++ {
			lineout := make([]int32, 3*(width/8+2))
			env := ir.NewEnv(int32(width)).
				Bind("linein", in).Bind("lineout", lineout).Bind("errBuf", errBuf)
			if _, err := ir.Interp(fn, env); err != nil {
				t.Fatal(err)
			}
			if row < rows/2 {
				continue // let the error field reach steady state
			}
			for byteIdx := 0; byteIdx < width/8; byteIdx++ {
				v := lineout[byteIdx*3]
				for b := 0; b < 8; b++ {
					if v&(1<<b) != 0 {
						ones++
					}
					total++
				}
			}
		}
		density := float64(ones) / float64(total)
		want := float64(gray) / 255
		if diff := density - want; diff > 0.06 || diff < -0.06 {
			t.Errorf("gray %d: halftone density %.3f, want ~%.3f", gray, density, want)
		}
	}
}

// TestMedianFilterRemovesImpulse: H must reject single-pixel impulse
// noise in an otherwise flat region (the filter's purpose).
func TestMedianFilterRemovesImpulse(t *testing.T) {
	fn, err := ByName("H").Compile()
	if err != nil {
		t.Fatal(err)
	}
	width := 32
	flat := func() []int32 {
		r := make([]int32, 3*(width+2))
		for i := range r {
			r[i] = 100
		}
		return r
	}
	r0, r1, r2 := flat(), flat(), flat()
	r1[3*10] = 255 // impulse in channel 0 at column 10 of the middle row
	out := make([]int32, 3*width)
	env := ir.NewEnv(int32(width)).Bind("r0", r0).Bind("r1", r1).Bind("r2", r2).Bind("out", out)
	if _, err := ir.Interp(fn, env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < width; i++ {
		for c := 0; c < 3; c++ {
			if out[i*3+c] != 100 {
				t.Errorf("out[%d,c%d] = %d, want 100 (impulse must vanish)", i, c, out[i*3+c])
			}
		}
	}
}

// TestColorConversionRoundTrip: D followed by E must approximately
// recover the input (fixed-point JPEG conversion is lossy by a couple
// of counts, not more).
func TestColorConversionRoundTrip(t *testing.T) {
	d, err := ByName("D").Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := ByName("E").Compile()
	if err != nil {
		t.Fatal(err)
	}
	width := 64
	c := ByName("D").NewCase(width, 5)
	in := c.Mem["in"]
	mid := make([]int32, 3*width)
	out := make([]int32, 3*width)
	if _, err := ir.Interp(d, ir.NewEnv(int32(width)).Bind("in", in).Bind("out", mid)); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Interp(e, ir.NewEnv(int32(width)).Bind("in", mid).Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		diff := out[i] - in[i]
		if diff < -4 || diff > 4 {
			t.Errorf("roundtrip[%d]: %d -> %d (|diff| > 4)", i, in[i], out[i])
		}
	}
}

// TestBenchmarkCharacters pins each kernel's computational signature —
// the properties the paper's architecture preferences are built on. If
// a source edit changed A into something mul-light or H into something
// mul-heavy, the whole evaluation would silently lose its meaning.
func TestBenchmarkCharacters(t *testing.T) {
	mix := func(name string) (muls, alus, loads, stores int) {
		fn, err := ByName(name).Compile()
		if err != nil {
			t.Fatal(err)
		}
		g, err := opt.Prepare(fn, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range g.Loop.Header.Instrs {
			switch {
			case in.Op == ir.OpMul:
				muls++
			case in.Op == ir.OpLoad:
				loads++
			case in.Op == ir.OpStore:
				stores++
			case in.Op.IsALU():
				alus++
			}
		}
		return
	}

	// A: multiply-dominated (the 7x7 convolution's irreducible coefs).
	aMul, aAlu, _, _ := mix("A")
	if aMul < 60 {
		t.Errorf("A has %d multiplies per pixel, want >= 60 (mul-dominated)", aMul)
	}
	// H: compare/select only — no multiplies at all in the loop.
	hMul, hAlu, _, _ := mix("H")
	if hMul != 0 {
		t.Errorf("H has %d multiplies, want 0 (pure ALU)", hMul)
	}
	if hAlu < 100 {
		t.Errorf("H has %d ALU ops, want >= 100 (median network)", hAlu)
	}
	// D: 7 un-reducible conversion multiplies per pixel (9 BT.601
	// coefficients minus the two 32768 = 2^15 factors, which reduce to
	// shifts).
	dMul, _, _, _ := mix("D")
	if dMul != 7 {
		t.Errorf("D has %d multiplies, want 7", dMul)
	}
	// G: everything strength-reduces — no real multiplies.
	gMul, _, _, _ := mix("G")
	if gMul != 0 {
		t.Errorf("G has %d multiplies, want 0 (x1..x4 reduce to shifts)", gMul)
	}
	// F: the error weights 7/3/5 reduce; no multiplies survive.
	fMul, _, fLoads, fStores := mix("F")
	if fMul != 0 {
		t.Errorf("F has %d multiplies, want 0", fMul)
	}
	if fLoads < 6 || fStores < 6 {
		t.Errorf("F memory traffic %d loads / %d stores, want >= 6 each (errBuf + pixels)", fLoads, fStores)
	}
	// A's ALU count stays below its mul count only if reassociation has
	// not exploded; sanity-bound the ratio.
	if aAlu > 6*aMul {
		t.Errorf("A ALU/mul ratio %d/%d implausible", aAlu, aMul)
	}
}
