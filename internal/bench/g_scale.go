package bench

// Benchmark G: 1-D bilinear scaling by an integral factor (paper Table
// 1). Each input pixel produces ScaleFactor output pixels interpolated
// between it and its right neighbour with weights s/ScaleFactor. The
// tiny multiplies (by 1..4) strength-reduce to shifts and adds, so G is
// pure ALU work with streaming loads/stores — it wants issue width and
// L2 bandwidth, not multipliers or a big register file.

// ScaleFactor is G's integral scaling factor.
const ScaleFactor = 4

const gSource = `
kernel scale1d(byte in[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int c;
		for (c = 0; c < 3; c++) {
			int a; int b; int s;
			a = in[i * 3 + c];
			b = in[(i + 1) * 3 + c];
			for (s = 0; s < 4; s++) {
				out[(i * 4 + s) * 3 + c] = ((4 - s) * a + s * b + 2) >> 2;
			}
		}
	}
}`

// goldenG mirrors scale1d exactly: input has w+1 pixels, output 4*w.
func goldenG(in []int32, w int) []int32 {
	out := make([]int32, 3*ScaleFactor*w)
	for i := 0; i < w; i++ {
		for c := 0; c < 3; c++ {
			a := in[i*3+c]
			b := in[(i+1)*3+c]
			for s := 0; s < ScaleFactor; s++ {
				out[(i*ScaleFactor+s)*3+c] = (int32(ScaleFactor-s)*a + int32(s)*b + 2) >> 2
			}
		}
	}
	return out
}

var benchG = register(&Benchmark{
	Name:   "G",
	Desc:   "1D bilinear scaling by integral factors along columns",
	Source: gSource,
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		in := rgbRow(r, width+1)
		return &Case{
			Args:    []int32{int32(width)},
			Mem:     map[string][]int32{"in": in, "out": make([]int32, 3*ScaleFactor*width)},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenG(in, width)}
			},
		}
	},
})
