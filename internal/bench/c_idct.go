package bench

// Benchmark C: inverse DCT with dequantization of the coefficients,
// using the Arai, Agui and Nakajima scaled algorithm (paper Table 1,
// citing [1, 22]) in the integer formulation popularized by the JPEG
// reference implementation: 8-bit fixed-point butterflies with the AAN
// rotation constants 1.414≈362/256, 1.847≈473/256, 1.082≈277/256 and
// 2.613≈669/256. Each 8x8 block runs eight dequantizing column passes
// into an L1 workspace, then eight row passes producing level-shifted,
// clamped bytes.
//
// C is the suite's "big straight-line block" benchmark: one block is
// ~1400 operations with abundant ILP but also a 64-word memory-resident
// workspace, so it rewards wide machines with short-latency memory.

// cQuant is a standard luminance quantization table (quality ~75).
var cQuant = [64]int32{
	8, 6, 5, 8, 12, 20, 26, 31,
	6, 6, 7, 10, 13, 29, 30, 28,
	7, 7, 8, 12, 20, 29, 35, 28,
	7, 9, 11, 15, 26, 44, 40, 31,
	9, 11, 19, 28, 34, 55, 52, 39,
	12, 18, 28, 32, 41, 52, 57, 46,
	25, 32, 39, 44, 52, 61, 60, 51,
	36, 46, 48, 49, 56, 50, 52, 50,
}

func cSource() string {
	src := "const int qt[64] = {"
	for i, v := range cQuant {
		if i > 0 {
			src += ","
		}
		src += itoa(v)
	}
	src += `};
kernel idct8(short in[], byte out[], int n) {
	int i;
	int ws[64];
	for (i = 0; i < n; i++) {
		int base; int k; int j;
		base = i * 64;
		for (k = 0; k < 8; k++) {
			int t0; int t1; int t2; int t3; int t4; int t5; int t6; int t7;
			int t10; int t11; int t12; int t13;
			int z5; int z10; int z11; int z12; int z13;
			t0 = in[base + k] * qt[k];
			t1 = in[base + k + 16] * qt[k + 16];
			t2 = in[base + k + 32] * qt[k + 32];
			t3 = in[base + k + 48] * qt[k + 48];
			t10 = t0 + t2;
			t11 = t0 - t2;
			t13 = t1 + t3;
			t12 = (((t1 - t3) * 362) >> 8) - t13;
			t0 = t10 + t13;
			t3 = t10 - t13;
			t1 = t11 + t12;
			t2 = t11 - t12;
			t4 = in[base + k + 8] * qt[k + 8];
			t5 = in[base + k + 24] * qt[k + 24];
			t6 = in[base + k + 40] * qt[k + 40];
			t7 = in[base + k + 56] * qt[k + 56];
			z13 = t6 + t5;
			z10 = t6 - t5;
			z11 = t4 + t7;
			z12 = t4 - t7;
			t7 = z11 + z13;
			t11 = ((z11 - z13) * 362) >> 8;
			z5 = (((z10 + z12) * 473) >> 8);
			t10 = ((z12 * 277) >> 8) - z5;
			t12 = z5 - ((z10 * 669) >> 8);
			t6 = t12 - t7;
			t5 = t11 - t6;
			t4 = t10 + t5;
			ws[k] = t0 + t7;
			ws[k + 56] = t0 - t7;
			ws[k + 8] = t1 + t6;
			ws[k + 48] = t1 - t6;
			ws[k + 16] = t2 + t5;
			ws[k + 40] = t2 - t5;
			ws[k + 32] = t3 + t4;
			ws[k + 24] = t3 - t4;
		}
		for (j = 0; j < 8; j++) {
			int t0; int t1; int t2; int t3; int t4; int t5; int t6; int t7;
			int t10; int t11; int t12; int t13;
			int z5; int z10; int z11; int z12; int z13; int r;
			r = j * 8;
			t10 = ws[r] + ws[r + 4];
			t11 = ws[r] - ws[r + 4];
			t13 = ws[r + 2] + ws[r + 6];
			t12 = (((ws[r + 2] - ws[r + 6]) * 362) >> 8) - t13;
			t0 = t10 + t13;
			t3 = t10 - t13;
			t1 = t11 + t12;
			t2 = t11 - t12;
			z13 = ws[r + 5] + ws[r + 3];
			z10 = ws[r + 5] - ws[r + 3];
			z11 = ws[r + 1] + ws[r + 7];
			z12 = ws[r + 1] - ws[r + 7];
			t7 = z11 + z13;
			t11 = ((z11 - z13) * 362) >> 8;
			z5 = (((z10 + z12) * 473) >> 8);
			t10 = ((z12 * 277) >> 8) - z5;
			t12 = z5 - ((z10 * 669) >> 8);
			t6 = t12 - t7;
			t5 = t11 - t6;
			t4 = t10 + t5;
			out[base + r]     = clamp(((t0 + t7) >> 6) + 128, 0, 255);
			out[base + r + 7] = clamp(((t0 - t7) >> 6) + 128, 0, 255);
			out[base + r + 1] = clamp(((t1 + t6) >> 6) + 128, 0, 255);
			out[base + r + 6] = clamp(((t1 - t6) >> 6) + 128, 0, 255);
			out[base + r + 2] = clamp(((t2 + t5) >> 6) + 128, 0, 255);
			out[base + r + 5] = clamp(((t2 - t5) >> 6) + 128, 0, 255);
			out[base + r + 4] = clamp(((t3 + t4) >> 6) + 128, 0, 255);
			out[base + r + 3] = clamp(((t3 - t4) >> 6) + 128, 0, 255);
		}
	}
}`
	return src
}

func itoa(v int32) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func mult8(x, k int32) int32 { return (x * k) >> 8 }

// idct1D runs the shared AAN butterfly on eight values (already
// dequantized for column passes).
func idct1D(v [8]int32) [8]int32 {
	t10 := v[0] + v[4]
	t11 := v[0] - v[4]
	t13 := v[2] + v[6]
	t12 := mult8(v[2]-v[6], 362) - t13
	t0 := t10 + t13
	t3 := t10 - t13
	t1 := t11 + t12
	t2 := t11 - t12
	z13 := v[5] + v[3]
	z10 := v[5] - v[3]
	z11 := v[1] + v[7]
	z12 := v[1] - v[7]
	t7 := z11 + z13
	t11 = mult8(z11-z13, 362)
	z5 := mult8(z10+z12, 473)
	t10 = mult8(z12, 277) - z5
	t12 = z5 - mult8(z10, 669)
	t6 := t12 - t7
	t5 := t11 - t6
	t4 := t10 + t5
	return [8]int32{t0 + t7, t1 + t6, t2 + t5, t3 - t4, t3 + t4, t2 - t5, t1 - t6, t0 - t7}
}

// goldenC mirrors idct8 exactly: n blocks of 64 int16 coefficients in,
// n*64 clamped level-shifted bytes out.
func goldenC(in []int32, n int) []int32 {
	out := make([]int32, 64*n)
	for b := 0; b < n; b++ {
		base := b * 64
		var ws [64]int32
		for k := 0; k < 8; k++ {
			var col [8]int32
			for y := 0; y < 8; y++ {
				col[y] = int32(int16(in[base+k+8*y])) * cQuant[k+8*y]
			}
			r := idct1D(col)
			for y := 0; y < 8; y++ {
				ws[k+8*y] = r[y]
			}
		}
		for j := 0; j < 8; j++ {
			var row [8]int32
			copy(row[:], ws[j*8:j*8+8])
			r := idct1D(row)
			for x := 0; x < 8; x++ {
				out[base+j*8+x] = clamp255((r[x] >> 6) + 128)
			}
		}
	}
	return out
}

var benchC = register(&Benchmark{
	Name:   "C",
	Desc:   "Inverse DCT transform with dequantization (Arai-Agui-Nakajima)",
	Source: cSource(),
	NewCase: func(width int, seed int64) *Case {
		// Interpret width as pixels: one 8x8 block per 8 pixels.
		blocks := width / 8
		if blocks < 1 {
			blocks = 1
		}
		r := newRand(seed)
		in := make([]int32, 64*blocks)
		for b := 0; b < blocks; b++ {
			// DC plus sparse decaying AC coefficients, like real JPEG data.
			in[b*64] = int32(r.next()%512) - 256
			for k := 1; k < 64; k++ {
				if r.next()%4 == 0 {
					mag := int64(96 / (1 + k/8))
					in[b*64+k] = int32(int64(r.next())%(2*mag+1) - mag)
				}
			}
		}
		return &Case{
			Args: []int32{int32(blocks)},
			Mem: map[string][]int32{
				"in":  in,
				"out": make([]int32, 64*blocks),
			},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenC(in, blocks)}
			},
		}
	},
})
