package bench

import "fmt"

// The jammed benchmarks (paper Table 2) fuse pipelines of the
// individual kernels into single loops, "avoiding the intermediate
// memory store/load otherwise needed". Because every intermediate
// value stays in registers at full precision (all intermediates are
// already byte-range after their clamps), the fused kernels compute
// bit-identically to the composition of the individual golden models —
// which is exactly how their goldens are built here.

// fsStep emits the Floyd-Steinberg inner step for channel variable
// `color`, pixel-value expression pix, and error-row index expression
// j3 (three times the output pixel index).
func fsStep(pix, j3 string) string {
	return fmt.Sprintf(`				errOff[color] = errT[color];
				errT[color] = errBuf[3 + %[2]s + color];
				oldE[color] = errC[color];
				e = errT[color] + ((errC[color] * 7 + 8) >> 4) + ((%[1]s) << 3);
				bit = e > (128 << 3);
				outb[color] = bit ? outb[color] | bitmask : outb[color];
				e = bit ? e - (255 << 3) : e;
				errC[color] = e;
				errOff[color] += (e * 3 + 8) >> 4;
				errT[color] = (e * 5 + oldE[color] + 8) >> 4;
				errBuf[%[2]s + color] = errOff[color];
				lineout[op + color] = outb[color];
`, pix, j3)
}

// fsPrologue declares and initializes the Floyd-Steinberg state.
const fsPrologue = `	int errT[3]; int errOff[3]; int errC[3]; int oldE[3]; int outb[3];
	int bitmask; int op;
	errC[0] = 0; errC[1] = 0; errC[2] = 0;
	errT[0] = errBuf[0]; errT[1] = errBuf[1]; errT[2] = errBuf[2];
	outb[0] = 0; outb[1] = 0; outb[2] = 0;
	bitmask = 128;
	op = 0;
`

// fsAdvance emits the per-output-pixel bitmask/byte-pointer update.
const fsAdvance = `			if (bitmask == 1) {
				op += 3;
				outb[0] = 0; outb[1] = 0; outb[2] = 0;
				bitmask = 128;
			} else {
				bitmask = bitmask >> 1;
			}
`

// ---------------------------------------------------------------- GF

func gfSource() string {
	return `short errBuf[12342];
kernel gf(byte linein[], byte lineout[], int n) {
	int i;
` + fsPrologue + `	for (i = 0; i < n; i++) {
		int s;
		for (s = 0; s < 4; s++) {
			int px[3]; int color;
			for (color = 0; color < 3; color++) {
				px[color] = ((4 - s) * linein[i * 3 + color] + s * linein[(i + 1) * 3 + color] + 2) >> 2;
			}
			for (color = 0; color < 3; color++) {
				int e; int bit;
` + fsStep("px[color]", "(i * 4 + s) * 3") + `			}
` + fsAdvance + `		}
	}
}`
}

var benchGF = register(&Benchmark{
	Name:   "GF",
	Desc:   "1D bilinear scaling followed by Floyd-Steinberg halftoning",
	Source: gfSource(),
	NewCase: func(width int, seed int64) *Case {
		if width*ScaleFactor > FMaxWidth*4 {
			width = FMaxWidth
		}
		r := newRand(seed)
		in := rgbRow(r, width+1)
		wOut := width * ScaleFactor
		errBuf := make([]int32, 12342)
		for i := 0; i < 3*wOut+3; i++ {
			errBuf[i] = int32(int16(r.next()%512)) - 256
		}
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"linein":  in,
				"lineout": make([]int32, 3*(wOut/8+2)),
				"errBuf":  errBuf,
			},
			Outputs: []string{"lineout", "errBuf"},
			Golden: func() map[string][]int32 {
				scaled := goldenG(in, width)
				lo, eb := goldenF(scaled, errBuf, wOut)
				return map[string][]int32{"lineout": lo, "errBuf": eb}
			},
		}
	},
})

// --------------------------------------------------------------- GEF

func gefSource() string {
	return `short errBuf[12342];
kernel gef(byte linein[], byte lineout[], int n) {
	int i;
` + fsPrologue + `	for (i = 0; i < n; i++) {
		int s;
		for (s = 0; s < 4; s++) {
			int px[3]; int rgb[3]; int color;
			int y; int cb; int cr;
			for (color = 0; color < 3; color++) {
				px[color] = ((4 - s) * linein[i * 3 + color] + s * linein[(i + 1) * 3 + color] + 2) >> 2;
			}
			y  = px[0];
			cb = px[1] - 128;
			cr = px[2] - 128;
			rgb[0] = clamp(y + ((91881 * cr + 32768) >> 16), 0, 255);
			rgb[1] = clamp(y - ((22554 * cb + 46802 * cr + 32768) >> 16), 0, 255);
			rgb[2] = clamp(y + ((116130 * cb + 32768) >> 16), 0, 255);
			for (color = 0; color < 3; color++) {
				int e; int bit;
` + fsStep("rgb[color]", "(i * 4 + s) * 3") + `			}
` + fsAdvance + `		}
	}
}`
}

var benchGEF = register(&Benchmark{
	Name:   "GEF",
	Desc:   "1D bilinear scaling, YCbCr→RGB conversion, Floyd-Steinberg halftoning",
	Source: gefSource(),
	NewCase: func(width int, seed int64) *Case {
		if width*ScaleFactor > FMaxWidth*4 {
			width = FMaxWidth
		}
		r := newRand(seed)
		in := rgbRow(r, width+1)
		wOut := width * ScaleFactor
		errBuf := make([]int32, 12342)
		for i := 0; i < 3*wOut+3; i++ {
			errBuf[i] = int32(int16(r.next()%512)) - 256
		}
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"linein":  in,
				"lineout": make([]int32, 3*(wOut/8+2)),
				"errBuf":  errBuf,
			},
			Outputs: []string{"lineout", "errBuf"},
			Golden: func() map[string][]int32 {
				scaled := goldenG(in, width)
				rgb := goldenE(scaled, wOut)
				lo, eb := goldenF(rgb, errBuf, wOut)
				return map[string][]int32{"lineout": lo, "errBuf": eb}
			},
		}
	},
})

// ---------------------------------------------------------------- DH

// dhConvert emits RGB→YCbCr conversion of the 3x3 neighbourhood into
// the scalarizable ycc[27] window: ycc[(row*3+x)*3+ch].
func dhConvert() string {
	s := `			for (x = 0; x < 3; x++) {
`
	for row := 0; row < 3; row++ {
		s += fmt.Sprintf(`				r = r%[1]d[(i + x) * 3];
				g = r%[1]d[(i + x) * 3 + 1];
				b = r%[1]d[(i + x) * 3 + 2];
				ycc[(%[1]d * 3 + x) * 3]     = clamp((19595 * r + 38470 * g + 7471 * b + 32768) >> 16, 0, 255);
				ycc[(%[1]d * 3 + x) * 3 + 1] = clamp(((0 - 11059) * r - 21709 * g + 32768 * b + 8421376 + 32768) >> 16, 0, 255);
				ycc[(%[1]d * 3 + x) * 3 + 2] = clamp((32768 * r - 27439 * g - 5329 * b + 8421376 + 32768) >> 16, 0, 255);
`, row)
	}
	return s + "			}\n"
}

// dhMedian emits the 9-sample median network over ycc for channel c
// into scalar `med`.
const dhMedian = `				lo0 = min(min(ycc[0 + c], ycc[9 + c]), ycc[18 + c]);
				hi0 = max(max(ycc[0 + c], ycc[9 + c]), ycc[18 + c]);
				mid0 = ycc[0 + c] + ycc[9 + c] + ycc[18 + c] - lo0 - hi0;
				lo1 = min(min(ycc[3 + c], ycc[12 + c]), ycc[21 + c]);
				hi1 = max(max(ycc[3 + c], ycc[12 + c]), ycc[21 + c]);
				mid1 = ycc[3 + c] + ycc[12 + c] + ycc[21 + c] - lo1 - hi1;
				lo2 = min(min(ycc[6 + c], ycc[15 + c]), ycc[24 + c]);
				hi2 = max(max(ycc[6 + c], ycc[15 + c]), ycc[24 + c]);
				mid2 = ycc[6 + c] + ycc[15 + c] + ycc[24 + c] - lo2 - hi2;
				mxlo = max(max(lo0, lo1), lo2);
				mnhi = min(min(hi0, hi1), hi2);
				lom = min(min(mid0, mid1), mid2);
				him = max(max(mid0, mid1), mid2);
				mdm = mid0 + mid1 + mid2 - lom - him;
				med = mdm + mxlo + mnhi - min(min(mdm, mxlo), mnhi) - max(max(mdm, mxlo), mnhi);
`

// dhDecls declares the median network scalars.
const dhDecls = `			int lo0; int lo1; int lo2; int hi0; int hi1; int hi2;
			int mid0; int mid1; int mid2; int mxlo; int mnhi; int lom; int him; int mdm; int med;
`

func dhSource() string {
	return `kernel dh(byte r0[], byte r1[], byte r2[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int ycc[27]; int x; int c;
		int r; int g; int b;
		{
` + dhConvert() + `		}
		for (c = 0; c < 3; c++) {
` + dhDecls + dhMedian + `			out[i * 3 + c] = med;
		}
	}
}`
}

// goldenDHInputs converts three RGB rows of width w+2 and medians them.
func goldenDH(r0, r1, r2 []int32, w int) []int32 {
	d0 := goldenD(r0, w+2)
	d1 := goldenD(r1, w+2)
	d2 := goldenD(r2, w+2)
	return goldenH(d0, d1, d2, w)
}

var benchDH = register(&Benchmark{
	Name:   "DH",
	Desc:   "RGB→YCbCr color space conversion followed by a 3x3 median filter",
	Source: dhSource(),
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		r0 := rgbRow(r, width+2)
		r1 := rgbRow(r, width+2)
		r2 := rgbRow(r, width+2)
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"r0": r0, "r1": r1, "r2": r2,
				"out": make([]int32, 3*width),
			},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenDH(r0, r1, r2, width)}
			},
		}
	},
})

// -------------------------------------------------------------- DHEF

func dhefSource() string {
	return `short errBuf[3078];
kernel dhef(byte r0[], byte r1[], byte r2[], byte lineout[], int n) {
	int i;
` + fsPrologue + `	for (i = 0; i < n; i++) {
		int ycc[27]; int med3v[3]; int rgb[3]; int x; int c;
		int r; int g; int b; int yy; int cb; int cr;
		{
` + dhConvert() + `		}
		for (c = 0; c < 3; c++) {
` + dhDecls + dhMedian + `			med3v[c] = med;
		}
		yy = med3v[0];
		cb = med3v[1] - 128;
		cr = med3v[2] - 128;
		rgb[0] = clamp(yy + ((91881 * cr + 32768) >> 16), 0, 255);
		rgb[1] = clamp(yy - ((22554 * cb + 46802 * cr + 32768) >> 16), 0, 255);
		rgb[2] = clamp(yy + ((116130 * cb + 32768) >> 16), 0, 255);
		{
			int color;
			for (color = 0; color < 3; color++) {
				int e; int bit;
` + fsStep("rgb[color]", "i * 3") + `			}
` + fsAdvance + `		}
	}
}`
}

var benchDHEF = register(&Benchmark{
	Name:   "DHEF",
	Desc:   "RGB→YCbCr, 3x3 median, YCbCr→RGB, Floyd-Steinberg halftoning",
	Source: dhefSource(),
	NewCase: func(width int, seed int64) *Case {
		if width > FMaxWidth {
			width = FMaxWidth
		}
		r := newRand(seed)
		r0 := rgbRow(r, width+2)
		r1 := rgbRow(r, width+2)
		r2 := rgbRow(r, width+2)
		errBuf := make([]int32, 3078)
		for i := 0; i < 3*width+3; i++ {
			errBuf[i] = int32(int16(r.next()%512)) - 256
		}
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"r0": r0, "r1": r1, "r2": r2,
				"lineout": make([]int32, 3*(width/8+2)),
				"errBuf":  errBuf,
			},
			Outputs: []string{"lineout", "errBuf"},
			Golden: func() map[string][]int32 {
				med := goldenDH(r0, r1, r2, width)
				rgb := goldenE(med, width)
				lo, eb := goldenF(rgb, errBuf, width)
				return map[string][]int32{"lineout": lo, "errBuf": eb}
			},
		}
	},
})
