package bench

// Benchmarks D and E: color space conversion between RGB and YCbCr as
// specified by the JPEG standard (paper Table 1), in 16-bit fixed
// point. D converts RGB→YCbCr; E is the inverse. Both are 9 multiplies
// per pixel by large constants that do not strength-reduce — these are
// the kernels that justify IMUL-capable ALUs without demanding the
// register file A needs.

// BT.601 coefficients scaled by 2^16, as used by the JPEG reference
// implementation.
const dSource = `
kernel rgb2ycc(byte in[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int r; int g; int b;
		r = in[i * 3];
		g = in[i * 3 + 1];
		b = in[i * 3 + 2];
		out[i * 3]     = clamp((19595 * r + 38470 * g + 7471 * b + 32768) >> 16, 0, 255);
		out[i * 3 + 1] = clamp(((0 - 11059) * r - 21709 * g + 32768 * b + 8421376 + 32768) >> 16, 0, 255);
		out[i * 3 + 2] = clamp((32768 * r - 27439 * g - 5329 * b + 8421376 + 32768) >> 16, 0, 255);
	}
}`

// goldenD mirrors rgb2ycc exactly (8421376 = 128 << 16).
func goldenD(in []int32, w int) []int32 {
	out := make([]int32, 3*w)
	for i := 0; i < w; i++ {
		r, g, b := in[i*3], in[i*3+1], in[i*3+2]
		out[i*3] = clamp255((19595*r + 38470*g + 7471*b + 32768) >> 16)
		out[i*3+1] = clamp255((-11059*r - 21709*g + 32768*b + 8421376 + 32768) >> 16)
		out[i*3+2] = clamp255((32768*r - 27439*g - 5329*b + 8421376 + 32768) >> 16)
	}
	return out
}

var benchD = register(&Benchmark{
	Name:   "D",
	Desc:   "Color conversion from the RGB to the YCbCr color space (JPEG)",
	Source: dSource,
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		in := rgbRow(r, width)
		return &Case{
			Args:    []int32{int32(width)},
			Mem:     map[string][]int32{"in": in, "out": make([]int32, 3*width)},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenD(in, width)}
			},
		}
	},
})

const eSource = `
kernel ycc2rgb(byte in[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int y; int cb; int cr;
		y  = in[i * 3];
		cb = in[i * 3 + 1] - 128;
		cr = in[i * 3 + 2] - 128;
		out[i * 3]     = clamp(y + ((91881 * cr + 32768) >> 16), 0, 255);
		out[i * 3 + 1] = clamp(y - ((22554 * cb + 46802 * cr + 32768) >> 16), 0, 255);
		out[i * 3 + 2] = clamp(y + ((116130 * cb + 32768) >> 16), 0, 255);
	}
}`

// goldenE mirrors ycc2rgb exactly.
func goldenE(in []int32, w int) []int32 {
	out := make([]int32, 3*w)
	for i := 0; i < w; i++ {
		y, cb, cr := in[i*3], in[i*3+1]-128, in[i*3+2]-128
		out[i*3] = clamp255(y + ((91881*cr + 32768) >> 16))
		out[i*3+1] = clamp255(y - ((22554*cb + 46802*cr + 32768) >> 16))
		out[i*3+2] = clamp255(y + ((116130*cb + 32768) >> 16))
	}
	return out
}

var benchE = register(&Benchmark{
	Name:   "E",
	Desc:   "Color conversion from the YCbCr to the RGB color space (JPEG)",
	Source: eSource,
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		in := rgbRow(r, width)
		return &Case{
			Args:    []int32{int32(width)},
			Mem:     map[string][]int32{"in": in, "out": make([]int32, 3*width)},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenE(in, width)}
			},
		}
	},
})
