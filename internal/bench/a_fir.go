package bench

import "fmt"

// Benchmark A: symmetric FIR filter implemented as a 7x7 convolution
// over a full-color RGB image (paper Table 1). Seven input rows produce
// one output row; the kernel is the separable outer product of the
// symmetric tap vector {3,8,13,16,13,8,3} (sum 64), so the 2-D weights
// sum to 4096 and the result normalizes with a single >>12.
//
// The character the paper reports for A: multiply-dominated (147
// multiplies per pixel) with 49 loop-invariant coefficients that a good
// compiler keeps live in registers — so A loves large register files
// and many IMUL-capable ALUs, and collapses on register-starved
// machines where the coefficients must be rematerialized through the
// single L1 port.

const firTaps = 7

var firVector = [firTaps]int32{3, 8, 13, 16, 13, 8, 3}

func firCoef() [firTaps * firTaps]int32 {
	var c [firTaps * firTaps]int32
	for y := 0; y < firTaps; y++ {
		for x := 0; x < firTaps; x++ {
			c[y*firTaps+x] = firVector[y] * firVector[x]
		}
	}
	return c
}

func firSource() string {
	coef := firCoef()
	src := "const int coef["
	src += fmt.Sprintf("%d] = {", len(coef))
	for i, v := range coef {
		if i > 0 {
			src += ","
		}
		src += fmt.Sprintf("%d", v)
	}
	src += `};
kernel fir7x7(byte in0[], byte in1[], byte in2[], byte in3[], byte in4[], byte in5[], byte in6[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int c;
		for (c = 0; c < 3; c++) {
			int acc; int kx;
			acc = 0;
			for (kx = 0; kx < 7; kx++) {
				acc += in0[(i + kx) * 3 + c] * coef[0 * 7 + kx];
				acc += in1[(i + kx) * 3 + c] * coef[1 * 7 + kx];
				acc += in2[(i + kx) * 3 + c] * coef[2 * 7 + kx];
				acc += in3[(i + kx) * 3 + c] * coef[3 * 7 + kx];
				acc += in4[(i + kx) * 3 + c] * coef[4 * 7 + kx];
				acc += in5[(i + kx) * 3 + c] * coef[5 * 7 + kx];
				acc += in6[(i + kx) * 3 + c] * coef[6 * 7 + kx];
			}
			out[i * 3 + c] = (acc + 2048) >> 12;
		}
	}
}`
	return src
}

// goldenFIR mirrors the kernel arithmetic exactly.
func goldenFIR(rows [firTaps][]int32, w int) []int32 {
	coef := firCoef()
	out := make([]int32, 3*w)
	for i := 0; i < w; i++ {
		for c := 0; c < 3; c++ {
			acc := int32(0)
			for ky := 0; ky < firTaps; ky++ {
				for kx := 0; kx < firTaps; kx++ {
					acc += rows[ky][(i+kx)*3+c] * coef[ky*firTaps+kx]
				}
			}
			out[i*3+c] = (acc + 2048) >> 12
		}
	}
	return out
}

var benchA = register(&Benchmark{
	Name:   "A",
	Desc:   "FIR symmetrical filter implemented using a 7x7 convolution kernel",
	Source: firSource(),
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		var rows [firTaps][]int32
		mem := map[string][]int32{}
		for k := 0; k < firTaps; k++ {
			rows[k] = rgbRow(r, width+firTaps-1)
			mem[fmt.Sprintf("in%d", k)] = rows[k]
		}
		mem["out"] = make([]int32, 3*width)
		return &Case{
			Args:    []int32{int32(width)},
			Mem:     mem,
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenFIR(rows, width)}
			},
		}
	},
})
