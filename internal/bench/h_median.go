package bench

// Benchmark H: 3x3 median filter using the standard algorithm (paper
// Table 1: "not using a smart version of the median"). Each channel's
// nine neighbourhood samples run through the classic triple-sort
// median network: sort the three column triples (min/max plus the
// sum-minus-min-minus-max trick for the middle), then take
// med3(max-of-lows, med3-of-mids, min-of-highs). Everything is
// compare/select — H is the suite's pure issue-width benchmark: it
// wants as many plain ALUs as possible, needs no multiplier, and keeps
// few values live, which is why the paper's H machine is the ALU-rich
// register-poor (16 4 128 1 4 8).
const hSource = `
kernel median3x3(byte r0[], byte r1[], byte r2[], byte out[], int n) {
	int i;
	for (i = 0; i < n; i++) {
		int c;
		for (c = 0; c < 3; c++) {
			int p0; int p1; int p2; int p3; int p4; int p5; int p6; int p7; int p8;
			int lo0; int lo1; int lo2; int hi0; int hi1; int hi2; int mid0; int mid1; int mid2;
			int mxlo; int mnhi; int mdm; int lom; int him;
			p0 = r0[i * 3 + c]; p1 = r0[(i + 1) * 3 + c]; p2 = r0[(i + 2) * 3 + c];
			p3 = r1[i * 3 + c]; p4 = r1[(i + 1) * 3 + c]; p5 = r1[(i + 2) * 3 + c];
			p6 = r2[i * 3 + c]; p7 = r2[(i + 1) * 3 + c]; p8 = r2[(i + 2) * 3 + c];
			lo0 = min(min(p0, p3), p6);
			hi0 = max(max(p0, p3), p6);
			mid0 = p0 + p3 + p6 - lo0 - hi0;
			lo1 = min(min(p1, p4), p7);
			hi1 = max(max(p1, p4), p7);
			mid1 = p1 + p4 + p7 - lo1 - hi1;
			lo2 = min(min(p2, p5), p8);
			hi2 = max(max(p2, p5), p8);
			mid2 = p2 + p5 + p8 - lo2 - hi2;
			mxlo = max(max(lo0, lo1), lo2);
			mnhi = min(min(hi0, hi1), hi2);
			lom = min(min(mid0, mid1), mid2);
			him = max(max(mid0, mid1), mid2);
			mdm = mid0 + mid1 + mid2 - lom - him;
			out[i * 3 + c] = mdm + mxlo + mnhi - min(min(mdm, mxlo), mnhi) - max(max(mdm, mxlo), mnhi);
		}
	}
}`

// goldenH mirrors median3x3 exactly.
func goldenH(r0, r1, r2 []int32, w int) []int32 {
	out := make([]int32, 3*w)
	med3 := func(a, b, c int32) int32 {
		lo := minI(minI(a, b), c)
		hi := maxI(maxI(a, b), c)
		return a + b + c - lo - hi
	}
	for i := 0; i < w; i++ {
		for c := 0; c < 3; c++ {
			var col [3][3]int32
			rows := [3][]int32{r0, r1, r2}
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					col[x][y] = rows[y][(i+x)*3+c]
				}
			}
			var lo, hi, mid [3]int32
			for x := 0; x < 3; x++ {
				lo[x] = minI(minI(col[x][0], col[x][1]), col[x][2])
				hi[x] = maxI(maxI(col[x][0], col[x][1]), col[x][2])
				mid[x] = col[x][0] + col[x][1] + col[x][2] - lo[x] - hi[x]
			}
			mxlo := maxI(maxI(lo[0], lo[1]), lo[2])
			mnhi := minI(minI(hi[0], hi[1]), hi[2])
			mdm := med3(mid[0], mid[1], mid[2])
			out[i*3+c] = med3(mdm, mxlo, mnhi)
		}
	}
	return out
}

func minI(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

var benchH = register(&Benchmark{
	Name:   "H",
	Desc:   "3x3 median filter using the standard algorithm",
	Source: hSource,
	NewCase: func(width int, seed int64) *Case {
		r := newRand(seed)
		r0 := rgbRow(r, width+2)
		r1 := rgbRow(r, width+2)
		r2 := rgbRow(r, width+2)
		return &Case{
			Args: []int32{int32(width)},
			Mem: map[string][]int32{
				"r0": r0, "r1": r1, "r2": r2,
				"out": make([]int32, 3*width),
			},
			Outputs: []string{"out"},
			Golden: func() map[string][]int32 {
				return map[string][]int32{"out": goldenH(r0, r1, r2, width)}
			},
		}
	},
})
