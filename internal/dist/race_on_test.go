//go:build race

package dist

// raceEnabled: the race detector is on. See race_off_test.go.
const raceEnabled = true
