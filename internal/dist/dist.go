// Package dist is the distributed exploration coordinator: it shards a
// design-space exploration across a fleet of cfp-serve workers over
// their HTTP/JSON job API and merges the shard results into a
// dse.Results bit-identical to a single local run.
//
// Determinism is the design center. The grid is resolved exactly like a
// local run (Sample thinning, baseline ensured), shards are whole
// backend-signature classes (dse.SigKey) so per-class memoization — and
// with it the paper's Table-3 logical runs accounting — reproduces
// per-shard, and the merge subtracts every shard's out-of-grid baseline
// work (Stats.BaselineRuns) so the merged Runs equals a local run's.
// Per-cell Evaluations are bit-identical because the whole pipeline is
// deterministic and speedups are single IEEE divisions against the same
// baseline time.
//
// Robustness is first-class: workers are admitted via /healthz (which
// also publishes capacity and the backend fingerprint — a
// fingerprint-mismatched worker is refused), failed shard attempts
// retry with exponential backoff and jitter on the surviving fleet,
// a worker that keeps failing is taken out of rotation, stragglers are
// hedged (the slowest shard is duplicated on an idle worker, first
// result wins, the loser is cancelled with DELETE), and cancelling the
// coordinator's context drains the fleet. See docs/DISTRIBUTED.md.
//
// Telemetry: counters dist.shards, dist.retries, dist.hedges,
// dist.worker_failures; spans dist.explore (root) and dist.shard (one
// per attempt, attributed with bench, arch count and worker).
package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"customfit/internal/bench"
	"customfit/internal/dse"
	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/machine"
	"customfit/internal/obs"
	olog "customfit/internal/obs/log"
	"customfit/internal/sched"
	"customfit/internal/serve"
)

// Options configures a distributed exploration. Workers is required;
// everything else defaults to the local-run equivalents.
type Options struct {
	// Workers are the base URLs of the cfp-serve nodes ("http://host:port").
	Workers []string
	// Benchmarks restricts the suite (nil = the paper's full suite).
	Benchmarks []*bench.Benchmark
	// Archs restricts the space (nil = machine.FullSpace()).
	Archs []machine.Arch
	// Ops, when non-nil, crosses the grid with the custom-op catalog
	// exactly like a local run (core.ExploreOptions.Ops): every machine
	// is explored op-free and with the full catalog enabled. Shards of
	// op-enabled architectures carry the catalog and an explicit request
	// schema on the wire; op-unaware workers refuse them (409) and the
	// admission fingerprint gate keeps them out of the fleet entirely.
	Ops *machine.OpSet
	// Sample > 1 keeps every Nth machine, baseline always retained —
	// identical to a local run's thinning.
	Sample int
	// Width is the reference workload width (default 96).
	Width int
	// ShardsPerWorker scales the shard count: the grid is cut into
	// roughly fleet-capacity × ShardsPerWorker units (default 3), small
	// enough to rebalance around a dead worker, large enough to amortize
	// per-shard overhead.
	ShardsPerWorker int
	// MaxRetries bounds per-shard redispatch attempts (default 4);
	// exceeding it fails the whole exploration.
	MaxRetries int
	// RetryBackoff is the base backoff before a shard retry (default
	// 500ms), doubled per retry with ±50% jitter.
	RetryBackoff time.Duration
	// HedgeAfter is how long a shard may run with the rest of the fleet
	// idle before it is duplicated on another worker (default 30s;
	// negative disables hedging).
	HedgeAfter time.Duration
	// PollInterval is the job-status polling period (default 200ms).
	PollInterval time.Duration
	// Client overrides the HTTP client (tests; default http.DefaultClient).
	Client *http.Client
	// Cache is the coordinator's local evaluation cache (optional).
	// With PushWarmup it is the source of warm-up shipping; it is
	// never consulted for results — workers evaluate, the coordinator
	// merges.
	Cache *evcache.Cache
	// PushWarmup ships cache warm-up with shards: before dispatching a
	// shard, every entry the coordinator's Cache holds for the shard's
	// signature classes (plus the baseline) is pushed to the worker's
	// /v1/cache endpoint, so the worker pre-admits them and compiles
	// nothing the fleet has seen before. Shards are whole dse.SigKey
	// classes, so pushes are disjoint across shards of one benchmark.
	// Push failures are non-fatal: the worker just computes cold.
	PushWarmup bool
	// CacheMode "off" disables evaluation caching fleet-wide: every
	// shard request carries it, so workers run cold even when they have
	// their own caches attached (the operator's -cache=off is honored
	// everywhere, not just coordinator-side).
	CacheMode string
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Width <= 0 {
		out.Width = 96
	}
	if out.ShardsPerWorker <= 0 {
		out.ShardsPerWorker = 3
	}
	if out.MaxRetries <= 0 {
		out.MaxRetries = 4
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 500 * time.Millisecond
	}
	if out.HedgeAfter == 0 {
		out.HedgeAfter = 30 * time.Second
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 200 * time.Millisecond
	}
	if out.Client == nil {
		out.Client = http.DefaultClient
	}
	return out
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	url      string
	capacity int
	inflight int
	// load is the worker's reported queued+running job count at
	// admission: the fleet is ordered idle-first, so dispatch prefers
	// workers with no pre-existing traffic.
	load int
	// fails counts consecutive failed attempts; two in a row take the
	// worker out of rotation (dist.worker_failures).
	fails int
	dead  bool
}

// attempt is one dispatch of one unit to one worker. jobID and aborted
// are written by different goroutines (the attempt's own and the
// coordinator's) under mu.
type attempt struct {
	id     int
	u      *unit
	worker *workerState
	start  time.Time

	mu      sync.Mutex
	jobID   string
	aborted bool
}

func (a *attempt) setJob(id string) {
	a.mu.Lock()
	a.jobID = id
	a.mu.Unlock()
}

func (a *attempt) job() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.jobID
}

// abort marks the attempt coordinator-cancelled and returns the job to
// DELETE ("" when none was submitted yet).
func (a *attempt) abort() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.aborted = true
	return a.jobID
}

func (a *attempt) isAborted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aborted
}

// outcome is an attempt's terminal report into the coordinator loop.
type outcome struct {
	a   *attempt
	res *dse.Results
	err error
	// requeue re-enqueues a unit after its backoff (a is nil then).
	requeue *unit
}

// Explore runs the sharded exploration across opts.Workers and returns
// Results bit-identical (modulo wall-clock timing fields) to a local
// run with the same Benchmarks/Archs/Sample/Width. Cancelling ctx
// cancels every in-flight shard job on the fleet and returns an error
// wrapping dse.ErrCancelled.
func Explore(ctx context.Context, opts Options) (*dse.Results, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers given")
	}
	o := opts.withDefaults()
	benches := o.Benchmarks
	if benches == nil {
		benches = bench.All()
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("dist: no benchmarks given")
	}

	sp := obs.StartSpanCtx(ctx, "dist.explore")
	defer sp.End()

	cl := &client{http: o.Client, poll: o.PollInterval}
	fleet, err := admitFleet(ctx, cl, o.Workers)
	if err != nil {
		return nil, err
	}
	capacity := 0
	for _, w := range fleet {
		capacity += w.capacity
	}
	grid := resolveGrid(o.Archs, o.Sample, o.Ops)
	opSet, err := gridOpSet(grid)
	if err != nil {
		return nil, err
	}
	units := partitionUnits(grid, benches, capacity*o.ShardsPerWorker)
	dispatchable := 0
	for _, u := range units {
		if u.aliasOf == nil {
			dispatchable++
		}
	}
	obs.GetCounter("dist.shards").Add(int64(dispatchable))
	sp.Int("workers", int64(len(fleet))).Int("shards", int64(dispatchable)).Int("archs", int64(len(grid)))
	olog.Info("distributed exploration starting").
		Int("workers", int64(len(fleet))).Int("shards", int64(dispatchable)).
		Int("archs", int64(len(grid))).
		Str("trace", sp.Context().Trace.String()).Log()

	var opsWire []string
	if opSet != nil {
		opsWire = opSet.Wire()
	}
	c := &coordinator{
		opts:     o,
		client:   cl,
		fleet:    fleet,
		units:    units,
		grid:     grid,
		opsWire:  opsWire,
		benches:  benches,
		root:     sp,
		events:   make(chan outcome, len(units)+len(fleet)),
		loopDone: make(chan struct{}),
		cacheOff: strings.EqualFold(o.CacheMode, "off"),
	}
	if o.PushWarmup && o.Cache != nil && !c.cacheOff {
		c.kcs = make(map[string]string, len(benches))
		for _, b := range benches {
			// Workers evaluate with the default evaluator (seed 1), so
			// warm-up keys must be derived the same way.
			c.kcs[b.Name] = dse.KernelClass(b, o.Width, 1)
		}
		c.pushers = make(map[string]*fleetcache.Client, len(fleet))
		for _, w := range fleet {
			c.pushers[w.url] = fleetcache.New(w.url, o.Client)
		}
	}
	return c.run(ctx)
}

// admitFleet health-checks every worker and refuses a fleet that cannot
// produce a correct run: an unreachable or draining worker is an error
// (the operator listed it explicitly), and so is a backend fingerprint
// differing from the coordinator's — mixed code generators would merge
// non-identical shards silently.
func admitFleet(ctx context.Context, cl *client, urls []string) ([]*workerState, error) {
	want := sched.Fingerprint()
	fleet := make([]*workerState, 0, len(urls))
	for _, raw := range urls {
		url := strings.TrimRight(raw, "/")
		h, err := cl.health(ctx, url)
		if err != nil {
			return nil, fmt.Errorf("dist: worker %s failed health check: %w", url, err)
		}
		if h.Fingerprint != want {
			return nil, fmt.Errorf("dist: worker %s backend fingerprint %q does not match coordinator %q; refusing (mixed backends break bit-identical merges)",
				url, h.Fingerprint, want)
		}
		capacity := h.Workers
		if capacity < 1 {
			capacity = 1
		}
		load := h.Queued + h.Running
		olog.Debug("worker admitted").
			Str("worker", url).Int("capacity", int64(capacity)).
			Int("load", int64(load)).Log()
		fleet = append(fleet, &workerState{url: url, capacity: capacity, load: load})
	}
	// Idle-first: dispatch picks the first free worker, so ordering the
	// fleet by reported load routes shards away from busy nodes. Stable,
	// so equally loaded workers keep the operator's listing order (and
	// the common all-idle fleet is ordered exactly as listed).
	sort.SliceStable(fleet, func(i, j int) bool { return fleet[i].load < fleet[j].load })
	return fleet, nil
}

// coordinator owns the dispatch loop. All unit/worker state is touched
// only from run's goroutine; attempts communicate through events.
type coordinator struct {
	opts    Options
	client  *client
	fleet   []*workerState
	units   []*unit
	grid    []machine.Arch
	benches []*bench.Benchmark
	// opsWire is the grid's shared custom-op catalog in wire form (nil
	// for op-free grids); shards whose tuples enable ops carry it.
	opsWire []string

	// root is the run's dist.explore span; every dist.shard span forks
	// from it, so the whole fleet's telemetry shares one trace.
	root *obs.Span

	events   chan outcome
	loopDone chan struct{}
	bg       sync.WaitGroup // background job cancellations
	rng      *rand.Rand

	nextAttempt int
	pending     []*unit
	doneUnits   int
	needUnits   int

	// Warm-up shipping (PushWarmup): kcs maps bench name to its kernel
	// class under this run's width/seed, pushers holds one cache client
	// per admitted worker. Both are built once before dispatch and read
	// only from attempt goroutines thereafter. cacheOff propagates
	// -cache=off fleet-wide via ExploreRequest.Cache.
	kcs      map[string]string
	pushers  map[string]*fleetcache.Client
	cacheOff bool
}

func (c *coordinator) run(ctx context.Context) (*dse.Results, error) {
	start := time.Now()
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	c.rng = rand.New(rand.NewSource(1)) // jitter only; determinism of results never depends on it

	for _, u := range c.units {
		if u.aliasOf == nil {
			c.pending = append(c.pending, u)
			c.needUnits++
		}
	}

	tick := c.opts.HedgeAfter / 4
	if tick <= 0 || c.opts.HedgeAfter < 0 {
		tick = time.Second
	}
	if tick < c.opts.PollInterval {
		tick = c.opts.PollInterval
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	fail := func(err error) (*dse.Results, error) {
		stopRun()
		c.shutdown()
		return nil, err
	}

	for c.doneUnits < c.needUnits {
		if err := c.dispatch(runCtx); err != nil {
			return fail(err)
		}
		select {
		case oc := <-c.events:
			if err := c.handle(oc); err != nil {
				return fail(err)
			}
		case <-ticker.C:
			c.maybeHedge(runCtx)
		case <-ctx.Done():
			return fail(fmt.Errorf("%w: %w", dse.ErrCancelled, context.Cause(ctx)))
		}
	}
	c.shutdown()
	return c.merge(start)
}

// shutdown ends the loop's side channels and reaps every outstanding
// job on the fleet (best effort, bounded wait) so an aborted or
// cancelled coordinator leaves no stray work running.
func (c *coordinator) shutdown() {
	close(c.loopDone)
	for _, u := range c.units {
		for _, a := range u.attempts {
			if id := a.abort(); id != "" {
				c.cancelJob(a.worker.url, id)
			}
		}
	}
	done := make(chan struct{})
	go func() {
		c.bg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
}

// cancelJob DELETEs a job in the background.
func (c *coordinator) cancelJob(workerURL, jobID string) {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		c.client.cancel(workerURL, jobID)
	}()
}

// dispatch assigns pending units to free fleet slots (FIFO units,
// first free worker). A fully dead fleet is a hard error.
func (c *coordinator) dispatch(ctx context.Context) error {
	alive := false
	for _, w := range c.fleet {
		if !w.dead {
			alive = true
			break
		}
	}
	if !alive {
		return fmt.Errorf("dist: all %d workers failed", len(c.fleet))
	}
	for len(c.pending) > 0 {
		u := c.pending[0]
		w := c.freeWorker(nil)
		if w == nil {
			return nil
		}
		c.pending = c.pending[1:]
		c.launch(ctx, u, w)
	}
	return nil
}

// freeWorker returns the first alive worker with spare capacity,
// excluding `not` (hedges must land on a different machine than the
// attempt they duplicate).
func (c *coordinator) freeWorker(not *workerState) *workerState {
	for _, w := range c.fleet {
		if !w.dead && w != not && w.inflight < w.capacity {
			return w
		}
	}
	return nil
}

// launch starts one attempt of u on w. The attempt's dist.shard span
// forks from the run's dist.explore root, and its span context rides
// the explore request as a traceparent: the worker then records the
// job's spans into the same trace and ships them back with the result,
// where AdoptRemote grafts them under this shard span — one fleet, one
// trace. A disabled coordinator (no collector) sends no traceparent,
// so workers skip span capture entirely.
func (c *coordinator) launch(ctx context.Context, u *unit, w *workerState) {
	c.nextAttempt++
	a := &attempt{id: c.nextAttempt, u: u, worker: w, start: time.Now()}
	u.attempts[a.id] = a
	w.inflight++
	sp := c.root.Fork("dist.shard")
	sp.Str("bench", u.bench).Int("archs", int64(len(u.tuples))).
		Str("worker", w.url).Int("unit", int64(u.id))
	req := serve.ExploreRequest{
		Benchmarks:  []string{u.bench},
		Width:       c.opts.Width,
		Archs:       u.tuples,
		TraceParent: sp.Context().TraceParent(),
	}
	if c.cacheOff {
		req.Cache = "off"
	}
	// Only shards that actually enable ops carry the catalog and the
	// explicit schema — op-free shards stay byte-identical to the
	// 6-tuple era on the wire.
	for _, t := range u.tuples {
		if strings.Contains(t, " ops=") {
			req.Ops = c.opsWire
			req.Schema = serve.SchemaVersion
			break
		}
	}
	go func() {
		c.warmupPush(u, w)
		res, spans, err := c.client.runShard(ctx, a, req)
		sp.AdoptRemote(spans)
		sp.End()
		select {
		case c.events <- outcome{a: a, res: res, err: err}:
		case <-c.loopDone:
		}
	}()
}

// warmupPush ships the coordinator cache's warm entries for u's
// signature classes to w before the shard runs, so the worker
// pre-admits them and recompiles nothing the fleet already knows.
// Shards are whole dse.SigKey classes, so pushes for different shards
// of one benchmark are disjoint; the baseline entry is included because
// every shard evaluates the baseline out-of-grid. Failures are
// non-fatal — the worker just computes cold.
func (c *coordinator) warmupPush(u *unit, w *workerState) {
	if c.pushers == nil {
		return
	}
	kc := c.kcs[u.bench]
	pusher := c.pushers[w.url]
	if kc == "" || pusher == nil {
		return
	}
	seen := make(map[string]bool, len(u.indices)+1)
	var recs []evcache.Record
	push := func(a machine.Arch) {
		key := dse.CacheKey(kc, a)
		if seen[key] {
			return
		}
		seen[key] = true
		if e, ok := c.opts.Cache.Peek(u.bench, key); ok {
			recs = append(recs, evcache.Record{Key: key, Entry: e})
		}
	}
	push(machine.Baseline)
	for _, gi := range u.indices {
		push(c.grid[gi])
	}
	if len(recs) == 0 {
		return
	}
	if err := pusher.StoreBatch(u.bench, recs); err != nil {
		obs.GetCounter("dist.warmup_push_errors").Inc()
		olog.Warn("cache warm-up push failed").
			Str("worker", w.url).Str("bench", u.bench).Str("err", err.Error()).Log()
		return
	}
	obs.GetCounter("dist.warmup_pushes").Inc()
	obs.GetCounter("dist.warmup_entries").Add(int64(len(recs)))
	olog.Debug("cache warm-up pushed").
		Str("worker", w.url).Str("bench", u.bench).Int("entries", int64(len(recs))).Log()
}
func (c *coordinator) handle(oc outcome) error {
	if oc.requeue != nil {
		c.pending = append(c.pending, oc.requeue)
		return nil
	}
	a, u, w := oc.a, oc.a.u, oc.a.worker
	w.inflight--
	delete(u.attempts, a.id)

	switch {
	case oc.err == nil:
		w.fails = 0
		if !u.done {
			u.done = true
			u.res = oc.res
			c.doneUnits++
			// First result wins: reap the losing hedge, if any.
			for _, loser := range u.attempts {
				if id := loser.abort(); id != "" {
					c.cancelJob(loser.worker.url, id)
				}
			}
		}
		return nil

	case errors.Is(oc.err, errAttemptAborted):
		// We cancelled it ourselves (hedge loser); nothing to do.
		return nil

	case isPermanent(oc.err):
		return fmt.Errorf("dist: shard %d (%s, %d archs): %w", u.id, u.bench, len(u.tuples), oc.err)
	}

	// Retryable failure: penalize the worker, then retry or hedge-absorb.
	olog.Warn("shard attempt failed").
		Int("shard", int64(u.id)).Str("bench", u.bench).
		Str("worker", w.url).Err(oc.err).Log()
	if w.fails++; w.fails >= 2 && !w.dead {
		w.dead = true
		obs.GetCounter("dist.worker_failures").Inc()
		olog.Warn("worker removed from rotation").
			Str("worker", w.url).Int("consecutive_failures", int64(w.fails)).Log()
	}
	if u.done || len(u.attempts) > 0 {
		// A sibling attempt already finished the unit or is still
		// running it; this failure costs nothing.
		return nil
	}
	u.retries++
	obs.GetCounter("dist.retries").Inc()
	if u.retries > c.opts.MaxRetries {
		return fmt.Errorf("dist: shard %d (%s, %d archs) failed %d times, giving up: %w",
			u.id, u.bench, len(u.tuples), u.retries, oc.err)
	}
	olog.Info("shard retry scheduled").
		Int("shard", int64(u.id)).Int("retry", int64(u.retries)).Log()
	// Exponential backoff with ±50% jitter, off the loop goroutine.
	delay := c.opts.RetryBackoff << (u.retries - 1)
	delay = time.Duration(float64(delay) * (0.5 + c.rng.Float64()))
	timer := time.NewTimer(delay)
	go func() {
		defer timer.Stop()
		select {
		case <-timer.C:
			select {
			case c.events <- outcome{requeue: u}:
			case <-c.loopDone:
			}
		case <-c.loopDone:
		}
	}()
	return nil
}

// maybeHedge duplicates the longest-running lone shard onto an idle
// worker once the queue is drained: a straggler (slow or silently dying
// worker) must not hold the whole run hostage. One hedge per unit;
// first result wins and the loser is cancelled.
func (c *coordinator) maybeHedge(ctx context.Context) {
	if c.opts.HedgeAfter < 0 || len(c.pending) > 0 {
		return
	}
	var oldest *attempt
	for _, u := range c.units {
		if u.done || u.hedged || u.aliasOf != nil || len(u.attempts) != 1 {
			continue
		}
		for _, a := range u.attempts {
			if time.Since(a.start) >= c.opts.HedgeAfter && (oldest == nil || a.start.Before(oldest.start)) {
				oldest = a
			}
		}
	}
	if oldest == nil {
		return
	}
	w := c.freeWorker(oldest.worker)
	if w == nil {
		return
	}
	oldest.u.hedged = true
	obs.GetCounter("dist.hedges").Inc()
	olog.Info("hedging straggler shard").
		Int("shard", int64(oldest.u.id)).
		Str("slow_worker", oldest.worker.url).Str("hedge_worker", w.url).
		Dur("running_for", time.Since(oldest.start)).Log()
	c.launch(ctx, oldest.u, w)
}

// merge assembles the shard results into the Results a local run over
// the same grid would have produced. Cell values are copied verbatim
// (the pipeline is deterministic, so they are bit-identical); costs are
// computed locally with the default model (same IEEE arithmetic); and
// Runs is Σ(shard.Runs − shard.BaselineRuns) — each shard's out-of-grid
// baseline work is subtracted, leaving exactly the logical runs a
// single run over the full grid counts (the baseline's own grid cell is
// inside exactly one shard, where BaselineRuns is 0).
func (c *coordinator) merge(start time.Time) (*dse.Results, error) {
	res := &dse.Results{
		Archs:   c.grid,
		Eval:    map[string][]dse.Evaluation{},
		CostMdl: machine.DefaultCostModel,
	}
	for _, b := range c.benches {
		res.Benches = append(res.Benches, b.Name)
		res.Eval[b.Name] = make([]dse.Evaluation, len(c.grid))
	}
	res.Cost = make([]float64, len(c.grid))
	for i, a := range c.grid {
		res.Cost[i] = machine.DefaultCostModel.Cost(a)
	}

	var runs, failures int64
	var phases dse.PhaseTimes
	for _, u := range c.units {
		src := u
		if u.aliasOf != nil {
			src = u.aliasOf
		}
		r := src.res
		if r == nil {
			return nil, fmt.Errorf("dist: shard %d has no result", u.id)
		}
		evs := r.Eval[u.bench]
		if len(evs) != len(u.indices) {
			return nil, fmt.Errorf("dist: shard %d returned %d evaluations for %d archs", u.id, len(evs), len(u.indices))
		}
		for k, gi := range u.indices {
			res.Eval[u.bench][gi] = evs[k]
		}
		if u.aliasOf == nil {
			runs += r.Stats.Runs - r.Stats.BaselineRuns
			failures += r.Stats.Failures
			phases.Compile += r.Stats.Phases.Compile
			phases.Simulate += r.Stats.Phases.Simulate
			phases.CostModel += r.Stats.Phases.CostModel
		}
	}
	wall := time.Since(start)
	res.Stats = dse.Stats{
		Runs:          runs,
		Architectures: len(c.grid),
		DesignPoints:  len(machine.DesignSpace()),
		Benchmarks:    len(c.benches),
		WallTime:      wall,
		Failures:      failures,
		Phases:        phases,
	}
	if len(c.grid) > 0 {
		res.Stats.PerArch = wall / time.Duration(len(c.grid))
	}
	if runs > 0 {
		res.Stats.PerRun = wall / time.Duration(runs)
	}
	return res, nil
}
