package dist

import (
	"encoding/json"
	"fmt"
	"strconv"

	"customfit/internal/bench"
	"customfit/internal/dse"
	"customfit/internal/machine"
)

// archTuple renders an architecture in the positional wire form the
// serve API parses ("a m r p2 l2 c", plus " ops=<hexmask>" for
// op-enabled machines — cli.ParseArchOps's input, without Arch.String's
// parentheses).
func archTuple(a machine.Arch) string {
	s := fmt.Sprintf("%d %d %d %d %d %d", a.ALUs, a.MULs, a.Regs, a.L2Ports, a.L2Lat, a.Clusters)
	if !a.Ops.Empty() {
		s += " ops=" + strconv.FormatUint(a.Ops.Mask, 16)
	}
	return s
}

// resolveGrid applies Archs, Sample and Ops exactly like a local run
// (core.ExploreOptions.resolveArchs): nil means the full concrete
// space, Sample > 1 keeps every Nth machine, the baseline is appended
// when absent, and a non-nil op catalog then crosses the whole grid
// with its default enable masks. The coordinator always explores a
// grid that contains the baseline — that is what makes the merged
// Stats.Runs equal a single local run's (every shard's out-of-grid
// baseline work is subtracted; the one grid cell that owns the
// baseline is counted once, here).
func resolveGrid(archs []machine.Arch, sample int, set *machine.OpSet) []machine.Arch {
	if archs == nil {
		archs = machine.FullSpace()
	}
	if sample > 1 {
		var thinned []machine.Arch
		for i := 0; i < len(archs); i += sample {
			thinned = append(thinned, archs[i])
		}
		archs = thinned
	}
	found := false
	for _, a := range archs {
		if a == machine.Baseline {
			found = true
			break
		}
	}
	if !found {
		archs = append(append([]machine.Arch(nil), archs...), machine.Baseline)
	}
	if set != nil {
		archs = machine.CrossOps(archs, set, machine.DefaultMasks(set))
	}
	return archs
}

// gridOpSet returns the single custom-op catalog the grid's op-enabled
// members draw from (nil for an op-free grid), or an error on a mixed
// grid — shards of one exploration must share one catalog, like one
// Results file.
func gridOpSet(grid []machine.Arch) (*machine.OpSet, error) {
	var set *machine.OpSet
	for _, a := range grid {
		if a.Ops.Empty() {
			continue
		}
		if set == nil {
			set = a.Ops.Set
		} else if set != a.Ops.Set {
			return nil, fmt.Errorf("dist: grid architectures draw from different op catalogs")
		}
	}
	return set, nil
}

// unit is one shard of the (benchmark × architecture) grid: a single
// benchmark against a subset of the grid built from whole backend
// signature classes. indices are positions in the coordinator's grid,
// ascending; tuples is the parallel wire form. A unit whose key matches
// an earlier unit's (possible only when the grid holds duplicate archs)
// becomes an alias: it is never dispatched and shares the primary's
// result at merge time — the coordinator-side analogue of serve's
// in-flight coalescing.
type unit struct {
	id      int
	bench   string
	indices []int
	tuples  []string
	key     string
	aliasOf *unit

	// Scheduling state, owned by the coordinator loop.
	retries  int
	hedged   bool
	attempts map[int]*attempt
	done     bool
	res      *dse.Results
}

// partitionUnits shards the exploration. Archs are grouped by backend
// signature class (dse.SigKey) in first-seen grid order and whole
// classes are packed into chunks, so every shard reproduces exactly the
// per-class memoization a local run would have had for its cells: one
// physical sweep per (benchmark, class), every member arch charged the
// class sweep's logical runs. Each benchmark is split into roughly
// targetUnits/len(benches) chunks of near-equal arch count (never
// splitting a class).
func partitionUnits(grid []machine.Arch, benches []*bench.Benchmark, targetUnits int) []*unit {
	// Signature classes, first-seen order, members in grid order.
	var classes [][]int
	classAt := map[string]int{}
	for i, a := range grid {
		k := dse.SigKey(a)
		ci, ok := classAt[k]
		if !ok {
			ci = len(classes)
			classAt[k] = ci
			classes = append(classes, nil)
		}
		classes[ci] = append(classes[ci], i)
	}

	perBench := targetUnits / len(benches)
	if perBench < 1 {
		perBench = 1
	}
	if perBench > len(classes) {
		perBench = len(classes)
	}
	chunks := chunkClasses(classes, perBench, len(grid))

	var units []*unit
	byKey := map[string]*unit{}
	for _, b := range benches {
		for _, chunk := range chunks {
			u := &unit{
				id:       len(units),
				bench:    b.Name,
				indices:  chunk,
				attempts: map[int]*attempt{},
			}
			for _, gi := range chunk {
				u.tuples = append(u.tuples, archTuple(grid[gi]))
			}
			u.key = shardKey(u.bench, u.tuples)
			if prior, ok := byKey[u.key]; ok {
				u.aliasOf = prior
			} else {
				byKey[u.key] = u
			}
			units = append(units, u)
		}
	}
	return units
}

// chunkClasses packs whole classes into k chunks of near-equal total
// arch count, preserving class order. Deterministic: the same grid
// always shards the same way. k must be ≤ len(classes).
func chunkClasses(classes [][]int, k, total int) [][]int {
	chunks := make([][]int, 0, k)
	remaining := total
	ci := 0
	for c := 0; c < k; c++ {
		chunksLeft := k - c
		target := (remaining + chunksLeft - 1) / chunksLeft
		var chunk []int
		for ci < len(classes) {
			if c == k-1 {
				// Last chunk takes everything left.
				chunk = append(chunk, classes[ci]...)
				ci++
				continue
			}
			classesLeft := len(classes) - ci
			// Leave at least one class for each later chunk, and stop
			// once this chunk has reached its share.
			if len(chunk) > 0 && (classesLeft <= chunksLeft-1 || len(chunk)+len(classes[ci]) > target) {
				break
			}
			chunk = append(chunk, classes[ci]...)
			ci++
		}
		remaining -= len(chunk)
		chunks = append(chunks, chunk)
	}
	return chunks
}

// shardKey canonically encodes everything that affects a shard's
// result, mirroring serve's coalesce key: two units with equal keys are
// the same work.
func shardKey(bench string, tuples []string) string {
	data, _ := json.Marshal(struct {
		Bench string
		Archs []string
	}{bench, tuples})
	return string(data)
}
