package dist

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"customfit/internal/core"
	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/obs"
	"customfit/internal/serve"
)

// startWorkerTB is startWorker for any testing.TB (benchmarks too).
func startWorkerTB(tb testing.TB, opts serve.Options) *httptest.Server {
	tb.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return ts
}

// fleetWorker spins up a cfp-serve worker whose local cache is tiered
// onto hub's /v1/cache endpoints — the production -cache-peer topology.
func fleetWorker(tb testing.TB, hubURL string, col *obs.Collector) (*httptest.Server, *evcache.Cache) {
	tb.Helper()
	c, err := evcache.Open("")
	if err != nil {
		tb.Fatal(err)
	}
	c.SetRemote(fleetcache.New(hubURL, nil), evcache.RemoteOptions{})
	tb.Cleanup(func() { _ = c.Close() })
	ts := startWorkerTB(tb, serve.Options{Workers: 2, Collector: col, Cache: c})
	return ts, c
}

// TestGoldenFleetWarmThreePass is the fleet cache's golden test — three
// passes over one shared tier:
//
//  1. cold fleet {A,B}: everything computes, write-behind fills the hub
//  2. warm fleet {A,B}: zero new compilations anywhere
//  3. fresh worker C joins {A,B,C}: C compiles ~nothing — every shard it
//     is handed reads through to entries the fleet already computed
//
// All three merges must be bit-identical to each other and to a local
// run: the cache tier is a pure accelerator.
func TestGoldenFleetWarmThreePass(t *testing.T) {
	col := installCollector(t)
	hubCache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hubCache.Close() })
	// The hub serves only cache traffic; it is not in the worker list.
	hub := startWorker(t, serve.Options{Workers: 1, Collector: col, Cache: hubCache})
	wA, cA := fleetWorker(t, hub.URL, col)
	wB, cB := fleetWorker(t, hub.URL, col)

	opts := fastOpts(wA.URL, wB.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32

	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"), Sample: 24, Width: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := canonicalJSON(t, want)

	// Pass 1: cold fleet.
	r1, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if g := canonicalJSON(t, r1); g != wantJSON {
		t.Errorf("cold fleet results diverge from local run")
	}
	coldComputes := cA.Stats().Computes + cB.Stats().Computes
	if coldComputes == 0 {
		t.Fatal("cold fleet reported zero computes — test is not exercising the backend")
	}
	// Drain write-behind so the hub holds the whole run before pass 2.
	cA.SyncRemote()
	cB.SyncRemote()

	// Pass 2: warm fleet — no new compilation anywhere.
	r2, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if g := canonicalJSON(t, r2); g != wantJSON {
		t.Errorf("warm fleet results diverge from local run")
	}
	if n := cA.Stats().Computes + cB.Stats().Computes; n != coldComputes {
		t.Errorf("warm fleet computed %d new sweeps, want 0", n-coldComputes)
	}

	// Pass 3: a fresh worker joins the warm fleet. Every shard it gets
	// reads through to the hub, so it performs ~0 backend compilations.
	wC, cC := fleetWorker(t, hub.URL, col)
	opts3 := fastOpts(wA.URL, wB.URL, wC.URL)
	opts3.Benchmarks = benchesByName("G")
	opts3.Sample = 24
	opts3.Width = 32
	r3, err := Explore(context.Background(), opts3)
	if err != nil {
		t.Fatal(err)
	}
	if g := canonicalJSON(t, r3); g != wantJSON {
		t.Errorf("warm fleet + fresh worker results diverge from local run")
	}
	st := cC.Stats()
	if st.Computes != 0 {
		t.Errorf("fresh worker computed %d sweeps against a warm fleet, want 0", st.Computes)
	}
	if st.NetHits == 0 && st.Hits == 0 {
		t.Error("fresh worker recorded no cache hits at all — was it even dispatched shards?")
	}
	if v := col.Counter("evcache.net_hits").Value(); v == 0 {
		t.Error("evcache.net_hits = 0 across the three passes")
	}
}

// TestWarmupPushFreshWorker covers coordinator-side warm-up shipping:
// with PushWarmup, a coordinator whose own cache is warm pushes each
// shard's entries to the worker before dispatch, so even a worker with
// no cache peer compiles nothing.
func TestWarmupPushFreshWorker(t *testing.T) {
	col := installCollector(t)
	coordCache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the coordinator's cache with a local run of the same space.
	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"), Sample: 24, Width: 32, Cache: coordCache,
	})
	if err != nil {
		t.Fatal(err)
	}

	wCache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, serve.Options{Workers: 2, Collector: col, Cache: wCache})

	opts := fastOpts(w.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	opts.Cache = coordCache
	opts.PushWarmup = true
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("warm-up-pushed results diverge from local run")
	}
	if n := wCache.Stats().Computes; n != 0 {
		t.Errorf("worker computed %d sweeps despite warm-up push, want 0", n)
	}
	if v := col.Counter("dist.warmup_pushes").Value(); v == 0 {
		t.Error("dist.warmup_pushes = 0, want every shard preceded by a push")
	}
	if v := col.Counter("dist.warmup_entries").Value(); v == 0 {
		t.Error("dist.warmup_entries = 0, want warm entries shipped")
	}
}

// TestCacheModeOffPropagates: the coordinator's -cache=off must ride
// every shard request — workers with their own caches attached leave
// them untouched, and no warm-up is pushed.
func TestCacheModeOffPropagates(t *testing.T) {
	col := installCollector(t)
	wCache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, serve.Options{Workers: 2, Collector: col, Cache: wCache})

	coordCache, err := evcache.Open("")
	if err != nil {
		t.Fatal(err)
	}
	coordCache.Put("G", "poison-detector", evcache.Entry{Cycles: 1, Runs: 1})

	opts := fastOpts(w.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	opts.Cache = coordCache
	opts.PushWarmup = true
	opts.CacheMode = "off"
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"), Sample: 24, Width: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("cache-off distributed results diverge from local run")
	}
	if n := wCache.Resident(); n != 0 {
		t.Errorf("worker cache holds %d entries after a -cache=off fleet run, want 0 (untouched)", n)
	}
	if v := col.Counter("dist.warmup_pushes").Value(); v != 0 {
		t.Errorf("dist.warmup_pushes = %d with -cache=off, want 0", v)
	}
}

// BenchmarkFleetWarm measures the fleet-cache payoff end to end: a
// distributed exploration over a warm two-worker fleet sharing one hub
// tier. The work left is dispatch, cache lookups and the merge — no
// backend compilation (make bench-diff gates this number).
func BenchmarkFleetWarm(b *testing.B) {
	col := obs.NewCollector()
	obs.Install(col)
	defer obs.Install(nil)
	hubCache, err := evcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer hubCache.Close()
	hub := startWorkerTB(b, serve.Options{Workers: 1, Collector: col, Cache: hubCache})
	wA, cA := fleetWorker(b, hub.URL, col)
	wB, cB := fleetWorker(b, hub.URL, col)

	opts := Options{
		Workers:      []string{wA.URL, wB.URL},
		Benchmarks:   benchesByName("G"),
		Sample:       24,
		Width:        32,
		PollInterval: 5 * time.Millisecond,
		RetryBackoff: 2 * time.Millisecond,
	}
	// Warm pass fills every tier.
	if _, err := Explore(context.Background(), opts); err != nil {
		b.Fatal(err)
	}
	cA.SyncRemote()
	cB.SyncRemote()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explore(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}
