package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"customfit/internal/evcache"
	"customfit/internal/obs"
	"customfit/internal/serve"
)

// chromeTrace mirrors obs's Chrome trace JSON for assertions.
type chromeTrace struct {
	TraceEvents []struct {
		Name   string `json:"name"`
		Trace  string `json:"trace_id"`
		Span   string `json:"span_id"`
		Parent string `json:"parent_id"`
	} `json:"traceEvents"`
}

// exploreFleetTraced runs a small sampled exploration over an
// in-process two-worker fleet sharing one collector, and returns the
// collector holding the merged trace.
func exploreFleetTraced(t *testing.T) *obs.Collector {
	t.Helper()
	col := installCollector(t)
	w1 := startWorker(t, serve.Options{Workers: 2, Collector: col})
	w2 := startWorker(t, serve.Options{Workers: 2, Collector: col})

	opts := fastOpts(w1.URL, w2.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	if _, err := Explore(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	return col
}

// TestMergedTraceOneFleetOneTrace is the tentpole acceptance test:
// distributed exploration over a fleet must produce ONE merged Chrome
// trace — worker-side compile/sched/sim spans re-parented under the
// coordinator's dist.shard spans, all sharing the coordinator's trace
// ID.
func TestMergedTraceOneFleetOneTrace(t *testing.T) {
	col := exploreFleetTraced(t)

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// One fleet, one trace: every span shares the coordinator's ID.
	traces := map[string]int{}
	byID := map[string]int{} // span_id -> index
	names := map[string]int{}
	for i, e := range tr.TraceEvents {
		if e.Trace == "" || e.Span == "" {
			t.Fatalf("event %q missing identity: %+v", e.Name, e)
		}
		traces[e.Trace]++
		byID[e.Span] = i
		names[e.Name]++
	}
	if len(traces) != 1 {
		t.Fatalf("merged trace holds %d distinct trace IDs, want 1: %v (names %v)", len(traces), traces, names)
	}

	if names["dist.explore"] != 1 {
		t.Errorf("dist.explore roots = %d, want 1", names["dist.explore"])
	}
	if names["dist.shard"] < 2 {
		t.Errorf("dist.shard spans = %d, want >= 2 (two workers)", names["dist.shard"])
	}
	// Worker-side pipeline phases made it across the wire.
	for _, phase := range []string{"serve.job", "dse.explore", "evaluate", "sched", "sim.reference"} {
		if names[phase] == 0 {
			t.Errorf("merged trace missing worker-side %q spans (got %v)", phase, names)
		}
	}

	// Parent chains from worker-side work must reach a dist.shard and
	// then the dist.explore root without leaving the trace.
	reaches := func(from int, target string) bool {
		for hops := 0; hops < 64; hops++ {
			e := tr.TraceEvents[from]
			if e.Name == target {
				return true
			}
			if e.Parent == "" {
				return false
			}
			next, ok := byID[e.Parent]
			if !ok {
				return false
			}
			from = next
		}
		return false
	}
	checked := 0
	for i, e := range tr.TraceEvents {
		if e.Name != "evaluate" && e.Name != "sched" && e.Name != "sim.reference" {
			continue
		}
		checked++
		if !reaches(i, "dist.shard") {
			t.Fatalf("%s span %s does not chain up to a dist.shard", e.Name, e.Span)
		}
		if !reaches(i, "dist.explore") {
			t.Fatalf("%s span %s does not chain up to the dist.explore root", e.Name, e.Span)
		}
	}
	if checked == 0 {
		t.Fatal("no worker-side phase spans to check")
	}
}

// TestFleetSmokeArtifacts drives an in-process fleet sharing a cache
// hub — a cold pass, then a warm pass on a fresh worker that must be
// served from the fleet tier — and writes the merged Chrome trace plus
// a Prometheus scrape as files: to $CFP_SMOKE_ARTIFACT_DIR when set
// (CI uploads them as build artifacts), else a test temp dir,
// validating both on the way out.
func TestFleetSmokeArtifacts(t *testing.T) {
	col := installCollector(t)
	hubCache, err := evcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hubCache.Close() })
	hub := startWorker(t, serve.Options{Workers: 1, Collector: col, Cache: hubCache})
	wA, cA := fleetWorker(t, hub.URL, col)

	opts := fastOpts(wA.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	if _, err := Explore(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	cA.SyncRemote()

	// Warm pass on a worker that has never computed anything: its only
	// source is the fleet tier, so the scrape must show net-cache hits.
	wB, _ := fleetWorker(t, hub.URL, col)
	warm := fastOpts(wB.URL)
	warm.Benchmarks = benchesByName("G")
	warm.Sample = 24
	warm.Width = 32
	if _, err := Explore(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	dir := os.Getenv("CFP_SMOKE_ARTIFACT_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "fleet-trace.json")
	if err := col.WriteTraceFile(tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("artifact trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("artifact trace is empty")
	}

	promPath := filepath.Join(dir, "fleet-metrics.prom")
	f, err := os.Create(promPath)
	if err != nil {
		t.Fatal(err)
	}
	werr := col.WritePrometheus(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		t.Fatalf("writing prometheus artifact: %v / %v", werr, cerr)
	}
	pd, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(pd)); err != nil {
		t.Fatalf("prometheus artifact does not lint: %v", err)
	}
	if !strings.Contains(string(pd), "cfp_dist_shards_total") {
		t.Errorf("prometheus artifact missing cfp_dist_shards_total:\n%.400s", pd)
	}
	if hits := promValue(t, string(pd), "cfp_evcache_net_hits_total"); hits <= 0 {
		t.Errorf("cfp_evcache_net_hits_total = %g after the warm-fleet pass, want > 0", hits)
	}
}

// promValue extracts a sample value from a Prometheus exposition dump.
func promValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in scrape:\n%.400s", name, scrape)
	return 0
}

// TestConcurrentExportDuringExploration races the exporters against a
// live fleet exploration: scraping /metrics-style output (JSON,
// Prometheus and Chrome trace) while spans and counters are being
// recorded must be safe. Meaningful mainly under -race.
func TestConcurrentExportDuringExploration(t *testing.T) {
	col := installCollector(t)
	w1 := startWorker(t, serve.Options{Workers: 2, Collector: col})
	w2 := startWorker(t, serve.Options{Workers: 2, Collector: col})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = col.WriteMetrics(io.Discard)
			_ = col.WritePrometheus(io.Discard)
			_ = col.WriteTrace(io.Discard)
		}
	}()

	opts := fastOpts(w1.URL, w2.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	_, err := Explore(context.Background(), opts)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
}
