package dist

import (
	"context"
	"testing"

	"customfit/internal/core"
	"customfit/internal/machine"
	"customfit/internal/serve"
)

// TestDistributedOpAwareMatchesLocal is the op-axis leg of the
// distributed-equals-local guarantee: an op-crossed sampled grid
// sharded over two workers must merge to results bit-identical
// (canonical JSON, shared catalog and masks included) to a local run
// with the same catalog.
func TestDistributedOpAwareMatchesLocal(t *testing.T) {
	col := installCollector(t)
	set, err := machine.ParseOpCatalog([]string{
		"mac/3/2:mul $0 $1;add %0 $2",
		"add_add/3/1:add $0 $1;add %0 $2",
	})
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, serve.Options{Workers: 2, Collector: col})
	w2 := startWorker(t, serve.Options{Workers: 2, Collector: col})

	opts := fastOpts(w1.URL, w2.URL)
	opts.Benchmarks = benchesByName("A")
	opts.Sample = 48
	opts.Width = 32
	opts.Ops = set
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("A"),
		Sample:     48,
		Width:      32,
		Ops:        set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("op-aware distributed results diverge from local run\ndistributed: %.400s\nlocal:       %.400s", g, w)
	}
	hasOps := false
	for _, a := range got.Archs {
		if !a.Ops.Empty() {
			hasOps = true
			break
		}
	}
	if !hasOps {
		t.Error("merged grid lost its op-enabled architectures")
	}
}
