package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"customfit/internal/bench"
	"customfit/internal/core"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/sched"
	"customfit/internal/serve"
)

// startWorker spins up a real cfp-serve node behind httptest.
func startWorker(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return ts
}

// installCollector isolates obs counters per test (serve.New would
// otherwise install a process-wide one on first use).
func installCollector(t *testing.T) *obs.Collector {
	t.Helper()
	col := obs.NewCollector()
	obs.Install(col)
	t.Cleanup(func() { obs.Install(nil) })
	return col
}

// canonicalJSON strips the wall-clock timing fields (the only
// legitimately nondeterministic part of Results) and returns the rest
// as one JSON string, so equality means bit-identical measurements,
// grid, costs and accounting.
func canonicalJSON(t *testing.T, res *dse.Results) string {
	t.Helper()
	res.Stats.WallTime = 0
	res.Stats.PerArch = 0
	res.Stats.PerRun = 0
	res.Stats.Phases = dse.PhaseTimes{}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// fastOpts tightens the latency knobs for tests.
func fastOpts(workers ...string) Options {
	return Options{
		Workers:      workers,
		PollInterval: 10 * time.Millisecond,
		RetryBackoff: 2 * time.Millisecond,
	}
}

func benchesByName(names ...string) []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, n := range names {
		out = append(out, bench.ByName(n))
	}
	return out
}

// TestDistributedMatchesLocalSampled runs a thinned grid on a
// two-worker fleet and requires the merged Results to be bit-identical
// (canonical JSON) to a local run with the same options — including the
// logical runs accounting.
func TestDistributedMatchesLocalSampled(t *testing.T) {
	col := installCollector(t)
	w1 := startWorker(t, serve.Options{Workers: 2, Collector: col})
	w2 := startWorker(t, serve.Options{Workers: 2, Collector: col})

	opts := fastOpts(w1.URL, w2.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"),
		Sample:     24,
		Width:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("distributed results diverge from local run\ndistributed: %.400s\nlocal:       %.400s", g, w)
	}
	if got.Stats.BaselineRuns != 0 {
		t.Errorf("merged BaselineRuns = %d, want 0 (baseline is in the grid)", got.Stats.BaselineRuns)
	}
	if v := col.Counter("dist.shards").Value(); v < 2 {
		t.Errorf("dist.shards = %d, want at least one shard per fleet slot", v)
	}
}

// TestGoldenDistributedFullSpace is the distributed leg of the golden
// full-space equivalence: the full 762-arch grid on the golden
// benchmarks, sharded over two workers, must merge to the exact golden
// snapshot a local run pins (testdata shared with internal/dse).
func TestGoldenDistributedFullSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("explores the full 762-arch space")
	}
	if raceEnabled {
		t.Skip("full-space exploration is minutes-slow under the race detector")
	}
	col := installCollector(t)
	w1 := startWorker(t, serve.Options{Workers: 2, Collector: col})
	w2 := startWorker(t, serve.Options{Workers: 2, Collector: col})

	opts := fastOpts(w1.URL, w2.URL)
	opts.Benchmarks = benchesByName("G", "F", "DH")
	opts.Width = 48
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dse.Load("../dse/testdata/golden_fullspace.json")
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		if got.Stats.Runs != want.Stats.Runs {
			t.Errorf("merged Runs = %d, golden has %d (distributed accounting must preserve Table 3)",
				got.Stats.Runs, want.Stats.Runs)
		}
		t.Errorf("distributed full-space results diverge from the golden snapshot")
	}
}

// flakyWorker proxies a serve handler until killed, after which every
// request (including in-flight polls) gets a 500 — the coordinator's
// view of a worker dying mid-run.
type flakyWorker struct {
	h      http.Handler
	killed atomic.Bool
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.killed.Load() {
		http.Error(w, "worker killed by test", http.StatusInternalServerError)
		return
	}
	f.h.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/explore" {
		f.killed.Store(true)
	}
}

// TestWorkerDiesMidShard kills a worker right after it accepts its
// first shard: the coordinator must retry the orphaned shards on the
// survivor and still merge bit-identically to a local run.
func TestWorkerDiesMidShard(t *testing.T) {
	col := installCollector(t)
	survivor := startWorker(t, serve.Options{Workers: 2, Collector: col})

	dying := serve.New(serve.Options{Workers: 2, Collector: col})
	flaky := &flakyWorker{h: dying.Handler()}
	dyingTS := httptest.NewServer(flaky)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = dying.Shutdown(ctx)
		dyingTS.Close()
	})

	// The dying worker is listed first so dispatch sends it shards.
	opts := fastOpts(dyingTS.URL, survivor.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	opts.MaxRetries = 6
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"),
		Sample:     24,
		Width:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("results after worker death diverge from local run")
	}
	if v := col.Counter("dist.retries").Value(); v == 0 {
		t.Error("dist.retries = 0, want retries after the worker died")
	}
	if v := col.Counter("dist.worker_failures").Value(); v == 0 {
		t.Error("dist.worker_failures = 0, want the dead worker out of rotation")
	}
}

// fakeWorker is a minimal hand-rolled worker: healthy, accepts every
// shard, but its jobs never finish. It drives the hedging and
// cancellation paths deterministically.
type fakeWorker struct {
	fingerprint string
	capacity    int
	deletes     atomic.Int64
	submits     atomic.Int64
}

func (f *fakeWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		fmt.Fprintf(w, `{"status":"ok","workers":%d,"fingerprint":%q}`, f.capacity, f.fingerprint)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/explore":
		id := f.submits.Add(1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"stuck%d","state":"queued"}`, id)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		fmt.Fprint(w, `{"id":"stuck","kind":"explore","state":"running"}`)
	case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		f.deletes.Add(1)
		fmt.Fprint(w, `{"id":"stuck","kind":"explore","state":"cancelled"}`)
	default:
		http.NotFound(w, r)
	}
}

// TestHedgeStraggler wedges one shard on a black-hole worker: the
// coordinator must duplicate it on the healthy worker (first result
// wins), cancel the loser with DELETE, and still merge bit-identically.
func TestHedgeStraggler(t *testing.T) {
	col := installCollector(t)
	healthy := startWorker(t, serve.Options{Workers: 2, Collector: col})
	stuck := &fakeWorker{fingerprint: sched.Fingerprint(), capacity: 1}
	stuckTS := httptest.NewServer(stuck)
	t.Cleanup(stuckTS.Close)

	// Black hole first in the list so dispatch parks a shard there.
	opts := fastOpts(stuckTS.URL, healthy.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 24
	opts.Width = 32
	opts.HedgeAfter = time.Millisecond
	got, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Explore(context.Background(), core.ExploreOptions{
		Benchmarks: benchesByName("G"),
		Sample:     24,
		Width:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonicalJSON(t, got), canonicalJSON(t, want); g != w {
		t.Errorf("hedged results diverge from local run")
	}
	if v := col.Counter("dist.hedges").Value(); v == 0 {
		t.Error("dist.hedges = 0, want the wedged shard hedged onto the healthy worker")
	}
	if stuck.deletes.Load() == 0 {
		t.Error("losing hedge attempt was never cancelled with DELETE")
	}
}

// TestFingerprintMismatch: a worker whose backend fingerprint differs
// from the coordinator's must be refused before any work is dispatched.
func TestFingerprintMismatch(t *testing.T) {
	installCollector(t)
	good := startWorker(t, serve.Options{Workers: 1})
	bad := httptest.NewServer(&fakeWorker{fingerprint: "backend-v0;bogus", capacity: 1})
	t.Cleanup(bad.Close)

	opts := fastOpts(good.URL, bad.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 64
	opts.Width = 32
	_, err := Explore(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Explore error = %v, want fingerprint refusal", err)
	}
}

// TestCancellation: cancelling the coordinator's context must abort the
// run with ErrCancelled and DELETE the in-flight shard jobs.
func TestCancellation(t *testing.T) {
	installCollector(t)
	stuck := &fakeWorker{fingerprint: sched.Fingerprint(), capacity: 2}
	stuckTS := httptest.NewServer(stuck)
	t.Cleanup(stuckTS.Close)

	opts := fastOpts(stuckTS.URL)
	opts.Benchmarks = benchesByName("G")
	opts.Sample = 64
	opts.Width = 32
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let at least one shard get submitted, then pull the plug.
		for stuck.submits.Load() == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		cancel()
	}()
	_, err := Explore(ctx, opts)
	if !errors.Is(err, dse.ErrCancelled) {
		t.Fatalf("Explore error = %v, want ErrCancelled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for stuck.deletes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled run never issued DELETE for its in-flight jobs")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPartitionInvariants checks the sharding algebra directly: classes
// stay whole, every grid cell is covered exactly once per benchmark,
// and duplicate-arch grids alias rather than re-dispatch.
func TestPartitionInvariants(t *testing.T) {
	grid := resolveGrid(nil, 8, nil)
	benches := benchesByName("G", "F")
	units := partitionUnits(grid, benches, 6)

	classOfUnit := map[string]map[string]int{} // bench -> sig -> unit id
	covered := map[string]map[int]bool{}
	for _, u := range units {
		if classOfUnit[u.bench] == nil {
			classOfUnit[u.bench] = map[string]int{}
			covered[u.bench] = map[int]bool{}
		}
		for _, gi := range u.indices {
			if covered[u.bench][gi] {
				t.Fatalf("grid cell (%s, %d) covered twice", u.bench, gi)
			}
			covered[u.bench][gi] = true
			sig := dse.SigKey(grid[gi])
			if prev, ok := classOfUnit[u.bench][sig]; ok && prev != u.id {
				t.Fatalf("signature class %q split across units %d and %d", sig, prev, u.id)
			}
			classOfUnit[u.bench][sig] = u.id
		}
	}
	for _, b := range benches {
		if len(covered[b.Name]) != len(grid) {
			t.Fatalf("%s: %d of %d grid cells covered", b.Name, len(covered[b.Name]), len(grid))
		}
	}

	// Baseline must be in the resolved grid even when thinning skips it.
	found := false
	for _, a := range grid {
		if a == machine.Baseline {
			found = true
		}
	}
	if !found {
		t.Error("resolveGrid dropped the baseline")
	}

	// A duplicated grid dedups into aliases sharing one dispatch.
	dup := []machine.Arch{machine.Baseline, machine.Baseline}
	du := partitionUnits(dup, benchesByName("G"), 4)
	aliases := 0
	for _, u := range du {
		if u.aliasOf != nil {
			aliases++
		}
	}
	if len(du) > 1 && aliases == 0 {
		t.Errorf("duplicate-arch grid produced %d units and no aliases", len(du))
	}
}

// TestShardKeyStability pins the dedup key to its canonical encoding:
// identical work must always coalesce, different work never.
func TestShardKeyStability(t *testing.T) {
	a := shardKey("G", []string{"1 1 64 1 8 1"})
	b := shardKey("G", []string{"1 1 64 1 8 1"})
	c := shardKey("F", []string{"1 1 64 1 8 1"})
	if a != b {
		t.Error("identical shards got different keys")
	}
	if a == c {
		t.Error("different benches share a key")
	}
	var decoded struct{ Bench string }
	if err := json.Unmarshal([]byte(a), &decoded); err != nil || decoded.Bench != "G" {
		t.Errorf("shard key is not canonical JSON: %q", a)
	}
}
