//go:build !race

package dist

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_on_test.go). The heavyweight full-space test
// skips under the detector: instrumentation makes it minutes-slow
// without exercising any concurrency the fast tests do not.
const raceEnabled = false
