package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"customfit/internal/dse"
	"customfit/internal/obs"
	"customfit/internal/serve"
)

// permanentError marks a failure no retry can fix (a malformed request,
// a deterministic job failure): the coordinator aborts the whole run
// instead of burning retries on it.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err} }

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// errAttemptAborted reports that the coordinator itself cancelled this
// attempt (a hedge lost the race, or the run is shutting down): not a
// worker failure, not retryable, just cleanup.
var errAttemptAborted = errors.New("dist: attempt aborted by coordinator")

// client speaks the cfp-serve HTTP/JSON job API.
type client struct {
	http *http.Client
	poll time.Duration
}

// health fetches a worker's /healthz. Any non-200 (including 503 while
// draining) is an error.
func (c *client) health(ctx context.Context, workerURL string) (serve.HealthResponse, error) {
	var h serve.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: %s", httpError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// submit POSTs one shard's exploration and returns the job id. A 400 is
// permanent (the request itself is broken); 503 and transport errors
// are retryable.
func (c *client) submit(ctx context.Context, workerURL string, ereq serve.ExploreRequest) (string, error) {
	body, err := json.Marshal(ereq)
	if err != nil {
		return "", permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		return "", permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ereq.TraceParent != "" {
		// Also as a header, so trace-aware proxies between coordinator
		// and worker see the propagation (the body field wins server-side).
		req.Header.Set("traceparent", ereq.TraceParent)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var sub serve.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", fmt.Errorf("submit: %w", err)
		}
		return sub.ID, nil
	case resp.StatusCode == http.StatusBadRequest:
		return "", permanent(fmt.Errorf("submit: %s", httpError(resp)))
	default:
		return "", fmt.Errorf("submit: %s", httpError(resp))
	}
}

// jobStatus fetches one job snapshot.
func (c *client) jobStatus(ctx context.Context, workerURL, jobID string) (serve.JobStatus, error) {
	var st serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("job %s: %s", jobID, httpError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("job %s: %w", jobID, err)
	}
	return st, nil
}

// cancel best-effort DELETEs a job on its own short deadline — it is
// called while the run's context is already cancelled (shutdown) or to
// reap a hedge loser, so it must not inherit either.
func (c *client) cancel(workerURL, jobID string) {
	ctx, stop := context.WithTimeout(context.Background(), 3*time.Second)
	defer stop()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, workerURL+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// runShard submits one attempt's shard and polls it to a terminal
// state, returning the decoded shard Results plus the worker-side spans
// the job captured (non-nil only when ereq carried a TraceParent).
// Worker death mid-run surfaces as consecutive poll failures
// (connection errors) and is reported as a retryable error.
func (c *client) runShard(ctx context.Context, a *attempt, ereq serve.ExploreRequest) (*dse.Results, []obs.WireSpan, error) {
	jobID, err := c.submit(ctx, a.worker.url, ereq)
	if err != nil {
		return nil, nil, err
	}
	a.setJob(jobID)
	pollFails := 0
	timer := time.NewTimer(c.poll)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
		case <-ctx.Done():
			go c.cancel(a.worker.url, jobID)
			return nil, nil, ctx.Err()
		}
		st, err := c.jobStatus(ctx, a.worker.url, jobID)
		if err != nil {
			if ctx.Err() != nil {
				go c.cancel(a.worker.url, jobID)
				return nil, nil, ctx.Err()
			}
			if pollFails++; pollFails >= 3 {
				return nil, nil, fmt.Errorf("worker %s unreachable polling job %s: %w", a.worker.url, jobID, err)
			}
			timer.Reset(c.poll)
			continue
		}
		pollFails = 0
		switch st.State {
		case serve.StateDone:
			res, err := dse.FromJSON(st.Result)
			if err != nil {
				return nil, nil, permanent(fmt.Errorf("worker %s job %s: %w", a.worker.url, jobID, err))
			}
			return res, st.Spans, nil
		case serve.StateFailed:
			// Deterministic pipeline: a failed shard fails everywhere.
			return nil, nil, permanent(fmt.Errorf("worker %s job %s failed: %s", a.worker.url, jobID, st.Error))
		case serve.StateCancelled:
			if a.isAborted() {
				return nil, nil, errAttemptAborted
			}
			// Cancelled server-side (drain past deadline): retry elsewhere.
			return nil, nil, fmt.Errorf("worker %s cancelled job %s: %s", a.worker.url, jobID, st.Error)
		}
		timer.Reset(c.poll)
	}
}

// httpError renders a non-2xx response, preferring the JSON error body.
func httpError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e serve.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
}
