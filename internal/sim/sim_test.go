package sim

import (
	"math"
	"strings"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sched"
	"customfit/internal/vliw"
)

const simSrc = `
	kernel saxpyish(int x[], int y[], int out[], int n) {
		int i;
		for (i = 0; i < n; i++) {
			out[i] = x[i] * 3 + y[i];
		}
	}`

func compileKernel(t *testing.T, src string, arch machine.Arch, u int) *vliw.Program {
	t.Helper()
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Compile(prepared, arch)
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog
}

func TestRunMatchesInterpreter(t *testing.T) {
	prog := compileKernel(t, simSrc, machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2}, 2)
	n := int32(13)
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(i * 7)
		y[i] = int32(100 - i)
	}
	out := make([]int32, n)
	st, err := Run(prog, ir.NewEnv(n).Bind("x", x).Bind("y", y).Bind("out", out))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < n; i++ {
		if want := x[i]*3 + y[i]; out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if st.Cycles <= 0 || st.Ops <= 0 || st.Bundles <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.MemAccesses != int64(3*n) {
		t.Errorf("mem accesses = %d, want %d", st.MemAccesses, 3*n)
	}
}

func TestStaticCyclesMatchesSimulatedEverywhere(t *testing.T) {
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 4},
	}
	for _, arch := range archs {
		prog := compileKernel(t, simSrc, arch, 4)
		n := int32(21)
		env := ir.NewEnv(n).
			Bind("x", make([]int32, n)).Bind("y", make([]int32, n)).Bind("out", make([]int32, n))
		st, err := Run(prog, env)
		if err != nil {
			t.Fatal(err)
		}
		if got := prog.StaticCycles(st.BlockVisits); got != st.Cycles {
			t.Errorf("%s: static %d != simulated %d", arch, got, st.Cycles)
		}
	}
}

func TestRunRejectsUnboundParam(t *testing.T) {
	prog := compileKernel(t, simSrc, machine.Baseline, 1)
	_, err := Run(prog, ir.NewEnv(4))
	if err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Errorf("err = %v, want unbound-parameter error", err)
	}
}

func TestRunDetectsOutOfBounds(t *testing.T) {
	prog := compileKernel(t, simSrc, machine.Baseline, 1)
	n := int32(8)
	_, err := Run(prog, ir.NewEnv(n).
		Bind("x", make([]int32, 2)). // too small
		Bind("y", make([]int32, n)).
		Bind("out", make([]int32, n)))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("err = %v, want bounds error", err)
	}
}

func TestZeroTripLoop(t *testing.T) {
	prog := compileKernel(t, simSrc, machine.Baseline, 4)
	out := []int32{77}
	st, err := Run(prog, ir.NewEnv(0).
		Bind("x", []int32{1}).Bind("y", []int32{2}).Bind("out", out))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 77 {
		t.Error("zero-trip run wrote memory")
	}
	if st.Cycles <= 0 {
		t.Error("no cycles counted for prologue/exit")
	}
}

func TestSimulatorAgreesWithInterpOnRecurrence(t *testing.T) {
	src := `
		kernel acc(int in[], int out[], int n) {
			int i; int s;
			s = 0;
			for (i = 0; i < n; i++) {
				s = (s >> 1) + in[i];
				out[i] = s;
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	prog := compileKernel(t, src, machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2}, 4)
	n := int32(29)
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(i*13%97 - 40)
	}
	ref := make([]int32, n)
	got := make([]int32, n)
	if _, err := ir.Interp(fn, ir.NewEnv(n).Bind("in", in).Bind("out", ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, ir.NewEnv(n).Bind("in", in).Bind("out", got)); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

// TestLatencySemanticsHandBuilt builds a schedule by hand that reads a
// register in the same cycle an in-flight write would land later,
// checking the reads-at-issue / commit-after-latency contract directly.
func TestLatencySemanticsHandBuilt(t *testing.T) {
	f := ir.NewFunc("lat")
	m := f.AddMem(&ir.MemRef{Name: "out", Space: ir.L2, Elem: ir.ElemI32, Size: 4, IsParam: true})
	b := f.NewBlock("entry")
	r0, r1 := f.NewReg(), f.NewReg()
	i0 := ir.NewInstr(ir.OpMov, r0, ir.Imm(1))            // cycle 0: r0 <- 1
	i1 := ir.NewInstr(ir.OpMul, r1, ir.R(r0), ir.Imm(10)) // cycle 1: r1 <- 10 (lands at 3)
	// cycle 2: read r1 BEFORE the mul commits? No: mul latency is 2, so
	// a cycle-3 reader sees 10 and a same-cycle-as-commit reader at
	// cycle 3 sees it too. Schedule an anti-dependent rewrite of r0 at
	// cycle 1 (same cycle as the mul reads it): the mul must still see
	// the old value 1.
	i2 := ir.NewInstr(ir.OpMov, r0, ir.Imm(99)) // cycle 1: r0 <- 99 (anti, same cycle)
	i3 := &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(0), ir.R(r1)}, Mem: m, Elem: ir.ElemI32} // cycle 3: out[0] <- r1
	i4 := &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(1), ir.R(r0)}, Mem: m, Elem: ir.ElemI32} // cycle 3: out[1] <- r0
	ret := &ir.Instr{Op: ir.OpRet, Dest: ir.NoReg}
	for _, in := range []*ir.Instr{i0, i1, i2, i3, i4, ret} {
		b.Append(in)
	}
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 64, L2Ports: 2, L2Lat: 2, Clusters: 1}
	prog := &vliw.Program{
		Arch: arch,
		F:    f,
		Blocks: []*vliw.Block{{
			IR:  b,
			Len: 6,
			Ops: []vliw.Op{
				{Instr: i0, Cycle: 0},
				{Instr: i1, Cycle: 1},
				{Instr: i2, Cycle: 1},
				{Instr: i3, Cycle: 3},
				{Instr: i4, Cycle: 3},
				{Instr: ret, Cycle: 5},
			},
		}},
		RegCluster: make([]int, f.NumRegs()),
	}
	out := make([]int32, 4)
	if _, err := Run(prog, ir.NewEnv().Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	// The mul read r0 at issue (cycle 1) before the same-cycle rewrite:
	// r1 = 1*10 = 10 (not 990). The store at 3 sees the committed mul.
	if out[0] != 10 {
		t.Errorf("out[0] = %d, want 10 (mul must read pre-rewrite r0)", out[0])
	}
	if out[1] != 99 {
		t.Errorf("out[1] = %d, want 99", out[1])
	}
}

// TestDynamicOccupancyHandCounted checks the cycle-weighted occupancy
// attribution on a hand-built schedule where every tally can be counted
// on paper. Schedule (arch: 4 ALUs, 2 MULs, 2 L2 ports, L2 lat 2; 6
// cycles):
//
//	cycle 0: mov            -> 1 ALU op
//	cycle 1: mul, mov       -> 2 ALU ops, 1 MUL op
//	cycle 2: (empty)        -> stall
//	cycle 3: store, store   -> 2 L2 accesses × 2 port-cycles each
//	cycle 4: (empty)        -> stall
//	cycle 5: ret            -> no resource
//
// Hand counts: ALUBusy 3, MULBusy 1, L2Busy 4, StallCycles 2;
// ALUOcc 3/24, MULOcc 1/12, L2Occ 4/12 (the bounding resource).
func TestDynamicOccupancyHandCounted(t *testing.T) {
	f := ir.NewFunc("occ")
	m := f.AddMem(&ir.MemRef{Name: "out", Space: ir.L2, Elem: ir.ElemI32, Size: 4, IsParam: true})
	b := f.NewBlock("entry")
	r0, r1 := f.NewReg(), f.NewReg()
	i0 := ir.NewInstr(ir.OpMov, r0, ir.Imm(1))
	i1 := ir.NewInstr(ir.OpMul, r1, ir.R(r0), ir.Imm(10))
	i2 := ir.NewInstr(ir.OpMov, r0, ir.Imm(99))
	i3 := &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(0), ir.R(r1)}, Mem: m, Elem: ir.ElemI32}
	i4 := &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(1), ir.R(r0)}, Mem: m, Elem: ir.ElemI32}
	ret := &ir.Instr{Op: ir.OpRet, Dest: ir.NoReg}
	for _, in := range []*ir.Instr{i0, i1, i2, i3, i4, ret} {
		b.Append(in)
	}
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 64, L2Ports: 2, L2Lat: 2, Clusters: 1}
	prog := &vliw.Program{
		Arch: arch,
		F:    f,
		Blocks: []*vliw.Block{{
			IR:  b,
			Len: 6,
			Ops: []vliw.Op{
				{Instr: i0, Cycle: 0},
				{Instr: i1, Cycle: 1},
				{Instr: i2, Cycle: 1},
				{Instr: i3, Cycle: 3},
				{Instr: i4, Cycle: 3},
				{Instr: ret, Cycle: 5},
			},
		}},
		RegCluster: make([]int, f.NumRegs()),
	}
	st, err := Run(prog, ir.NewEnv().Bind("out", make([]int32, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if st.ALUBusy != 3 || st.MULBusy != 1 || st.L1Busy != 0 || st.L2Busy != 4 {
		t.Errorf("busy tallies = ALU %d MUL %d L1 %d L2 %d, want 3 1 0 4",
			st.ALUBusy, st.MULBusy, st.L1Busy, st.L2Busy)
	}
	if st.StallCycles != 2 {
		t.Errorf("stall cycles = %d, want 2", st.StallCycles)
	}
	almost := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !almost(st.ALUOcc, 3.0/24) || !almost(st.MULOcc, 1.0/12) ||
		!almost(st.L1Occ, 0) || !almost(st.L2Occ, 4.0/12) {
		t.Errorf("occupancy = ALU %.4f MUL %.4f L1 %.4f L2 %.4f, want 0.1250 0.0833 0 0.3333",
			st.ALUOcc, st.MULOcc, st.L1Occ, st.L2Occ)
	}
	if st.Bound != "l2" {
		t.Errorf("bound = %q, want \"l2\" (highest occupancy)", st.Bound)
	}
}

// TestDynamicOccupancyAgreesWithStatic: for a single-block kernel the
// dynamic ALU occupancy must equal the static slot utilization (every
// bundle executes the same number of times).
func TestDynamicOccupancyAgreesWithStatic(t *testing.T) {
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2}
	prog := compileKernel(t, simSrc, arch, 2)
	n := int32(16)
	env := ir.NewEnv(n).
		Bind("x", make([]int32, n)).Bind("y", make([]int32, n)).Bind("out", make([]int32, n))
	st, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if st.ALUOcc <= 0 || st.ALUOcc > 1 {
		t.Errorf("ALU occupancy %.4f out of (0,1]", st.ALUOcc)
	}
	if st.Bound == "none" {
		t.Error("a non-trivial run must be bounded by some resource")
	}
	// Weight each block's static op counts by its visit count to get the
	// expected dynamic ALU tally.
	var wantALU int64
	for _, sb := range prog.Blocks {
		visits := st.BlockVisits[sb.IR.Name]
		for _, op := range sb.Ops {
			switch op.Instr.Op {
			case ir.OpNop, ir.OpBr, ir.OpCBr, ir.OpRet, ir.OpLoad, ir.OpStore:
			default:
				wantALU += visits
			}
		}
	}
	if st.ALUBusy != wantALU {
		t.Errorf("dynamic ALU tally %d != visit-weighted static %d", st.ALUBusy, wantALU)
	}
}

// TestLatencyViolationVisible: if a schedule reads a result before its
// producer's latency has elapsed, the simulator exposes the stale value
// (no interlocks) — this documents why sched.Validate exists.
func TestLatencyViolationVisible(t *testing.T) {
	f := ir.NewFunc("stale")
	m := f.AddMem(&ir.MemRef{Name: "out", Space: ir.L2, Elem: ir.ElemI32, Size: 2, IsParam: true})
	b := f.NewBlock("entry")
	r0, r1 := f.NewReg(), f.NewReg()
	i0 := ir.NewInstr(ir.OpMul, r0, ir.Imm(6), ir.Imm(7)) // lat 2: lands at cycle 2
	i1 := ir.NewInstr(ir.OpMov, r1, ir.R(r0))             // scheduled too early (cycle 1)
	i2 := &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{ir.Imm(0), ir.R(r1)}, Mem: m, Elem: ir.ElemI32}
	ret := &ir.Instr{Op: ir.OpRet, Dest: ir.NoReg}
	for _, in := range []*ir.Instr{i0, i1, i2, ret} {
		b.Append(in)
	}
	arch := machine.Arch{ALUs: 2, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 2, Clusters: 1}
	prog := &vliw.Program{
		Arch: arch, F: f,
		Blocks: []*vliw.Block{{
			IR: b, Len: 5,
			Ops: []vliw.Op{
				{Instr: i0, Cycle: 0},
				{Instr: i1, Cycle: 1}, // violates mul latency
				{Instr: i2, Cycle: 3},
				{Instr: ret, Cycle: 4},
			},
		}},
		RegCluster: make([]int, f.NumRegs()),
	}
	out := make([]int32, 2)
	if _, err := Run(prog, ir.NewEnv().Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	if out[0] == 42 {
		t.Error("stale read returned the completed value; exposed-latency semantics broken")
	}
}

func TestRunPhysicalErrorPaths(t *testing.T) {
	prog := compileKernel(t, simSrc, machine.Baseline, 1)
	n := int32(4)
	mkEnv := func() *ir.Env {
		return ir.NewEnv(n).
			Bind("x", make([]int32, n)).Bind("y", make([]int32, n)).Bind("out", make([]int32, n))
	}
	// Happy path first.
	if _, err := RunPhysical(prog, mkEnv()); err != nil {
		t.Fatalf("physical run failed: %v", err)
	}
	// Missing assignment.
	saved := prog.PhysAssign
	prog.PhysAssign = nil
	if _, err := RunPhysical(prog, mkEnv()); err == nil {
		t.Error("nil assignment accepted")
	}
	prog.PhysAssign = saved
	// Unbound parameter array.
	if _, err := RunPhysical(prog, ir.NewEnv(n)); err == nil {
		t.Error("unbound parameter accepted")
	}
	// Argument count mismatch.
	if _, err := RunPhysical(prog, ir.NewEnv()); err == nil {
		t.Error("arg count mismatch accepted")
	}
}

func TestRunPhysicalAcrossClusters(t *testing.T) {
	// Exercise cross-cluster moves through physical register files.
	prog := compileKernel(t, simSrc, machine.Arch{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 4}, 4)
	n := int32(17)
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(i)
		y[i] = int32(1000 - i)
	}
	out := make([]int32, n)
	if _, err := RunPhysical(prog, ir.NewEnv(n).Bind("x", x).Bind("y", y).Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < n; i++ {
		if want := x[i]*3 + y[i]; out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}
