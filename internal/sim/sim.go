// Package sim is the cycle-accurate simulator for scheduled VLIW
// programs. It executes bundles with real latency semantics — operands
// are read at issue, results commit after the producer's latency,
// stores become visible to the next cycle — and verifies global memory
// port occupancy across block boundaries. Running the same kernel
// through sim and through the plain IR interpreter and comparing memory
// images is the pipeline's end-to-end correctness oracle.
package sim

import (
	"context"
	"fmt"
	"sort"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/vliw"
)

// Stats reports a simulation run. Beyond the raw counts it attributes
// cycles to datapath resources: the *Busy fields are dynamic,
// execution-weighted tallies (unlike the static, per-image
// vliw.Utilization), the *Occ fields normalize them to fractions of the
// available slot- or port-cycles, and Bound names the resource with the
// highest occupancy — the best single answer to "what bounded this
// run".
type Stats struct {
	Cycles      int64
	Ops         int64
	Bundles     int64
	BlockVisits map[string]int64
	MemAccesses int64

	// ALUBusy counts issued operations occupying an ALU slot (ALU ops,
	// multiplies, and the source slot of inter-cluster moves).
	ALUBusy int64
	// MULBusy counts issued multiplies (each also occupies an ALU slot).
	MULBusy int64
	// L1Busy / L2Busy count port-cycles reserved on each memory level
	// (an L2 access holds a port for the architecture's L2 latency).
	L1Busy, L2Busy int64
	// CUBusy counts issued custom (fused) operations on the per-cluster
	// custom-op units; zero on op-free architectures.
	CUBusy int64
	// StallCycles counts executed cycles that issued no operation.
	StallCycles int64
	// ALUOcc..CUOcc are the *Busy tallies normalized to the fraction of
	// available slot-cycles (ALU/MUL/CU) or port-cycles (L1/L2).
	ALUOcc, MULOcc, L1Occ, L2Occ, CUOcc float64
	// Bound is "alu", "mul", "l1", "l2", "cu", or "none": the resource
	// class with the highest dynamic occupancy.
	Bound string
}

// occTally accumulates dynamic occupancy during a run; one note() call
// per executed cycle.
type occTally struct {
	alu, mul, l1, l2, cu, stalls int64
}

func (o *occTally) note(bundle []vliw.Op, arch machine.Arch) {
	if len(bundle) == 0 {
		o.stalls++
		return
	}
	for _, op := range bundle {
		switch op.Instr.Op {
		case ir.OpNop, ir.OpBr, ir.OpCBr, ir.OpRet:
		case ir.OpLoad, ir.OpStore:
			if op.Instr.Mem.Space == ir.L1 {
				o.l1 += machine.L1Occupancy
			} else {
				o.l2 += int64(arch.L2Lat)
			}
		case ir.OpMul:
			o.alu++
			o.mul++
		case ir.OpFused:
			o.cu++ // custom unit; no ALU issue slot charged
		default: // ALU ops, including the source slot of an XMov
			o.alu++
		}
	}
}

// finalize folds the tally into st and computes occupancy fractions.
func (st *Stats) finalize(arch machine.Arch, o *occTally) {
	st.ALUBusy, st.MULBusy = o.alu, o.mul
	st.L1Busy, st.L2Busy = o.l1, o.l2
	st.CUBusy = o.cu
	st.StallCycles = o.stalls
	st.Bound = "none"
	if st.Cycles == 0 {
		return
	}
	cyc := float64(st.Cycles)
	if arch.ALUs > 0 {
		st.ALUOcc = float64(o.alu) / (cyc * float64(arch.ALUs))
	}
	if arch.MULs > 0 {
		st.MULOcc = float64(o.mul) / (cyc * float64(arch.MULs))
	}
	st.L1Occ = float64(o.l1) / cyc // single L1 port
	if arch.L2Ports > 0 {
		st.L2Occ = float64(o.l2) / (cyc * float64(arch.L2Ports))
	}
	if !arch.Ops.Empty() {
		st.CUOcc = float64(o.cu) / (cyc * float64(arch.Clusters))
	}
	best := 0.0
	for _, r := range []struct {
		name string
		occ  float64
	}{{"alu", st.ALUOcc}, {"mul", st.MULOcc}, {"l1", st.L1Occ}, {"l2", st.L2Occ}, {"cu", st.CUOcc}} {
		if r.occ > best {
			best = r.occ
			st.Bound = r.name
		}
	}
}

type pendingWrite struct {
	at  int64
	reg ir.Reg
	val int32
}

// Run executes prog against env (same binding conventions as
// ir.Interp), mutating bound memories, and returns cycle-accurate
// statistics.
func Run(prog *vliw.Program, env *ir.Env) (*Stats, error) {
	return RunCtx(context.Background(), prog, env)
}

// RunCtx is Run with the sim span parented under the context's current
// span (obs.SpanFromContext) — a traced serve job's simulation then
// joins the job's trace instead of starting an orphan root.
func RunCtx(ctx context.Context, prog *vliw.Program, env *ir.Env) (*Stats, error) {
	f := prog.F
	sp := obs.StartSpanCtx(ctx, "sim")
	if sp != nil {
		sp.Str("kernel", f.Name).Str("arch", prog.Arch.String())
	}
	defer sp.End()
	if len(env.Args) != len(f.Params) {
		return nil, fmt.Errorf("sim %s: %d args for %d params", f.Name, len(env.Args), len(f.Params))
	}
	regs := make([]int32, f.NumRegs())
	for i, p := range f.Params {
		regs[p.Reg] = env.Args[i]
	}
	mems := make(map[*ir.MemRef][]int32, len(f.Mems))
	for _, m := range f.Mems {
		data, ok := env.Mem[m.Name]
		if !ok {
			if m.IsParam {
				return nil, fmt.Errorf("sim %s: parameter array %q not bound", f.Name, m.Name)
			}
			data = make([]int32, m.Size)
			env.Mem[m.Name] = data
		}
		if m.Size > 0 && len(data) < m.Size {
			return nil, fmt.Errorf("sim %s: memory %q has %d elements, needs %d", f.Name, m.Name, len(data), m.Size)
		}
		for i, v := range m.Init {
			data[i] = v
		}
		mems[m] = data
	}

	// Pre-sort each block's ops by cycle.
	type blockImage struct {
		sb      *vliw.Block
		byCycle [][]vliw.Op
	}
	images := map[*ir.Block]*blockImage{}
	for _, sb := range prog.Blocks {
		img := &blockImage{sb: sb, byCycle: make([][]vliw.Op, sb.Len)}
		ops := append([]vliw.Op(nil), sb.Ops...)
		sort.Slice(ops, func(i, j int) bool { return ops[i].Cycle < ops[j].Cycle })
		for _, op := range ops {
			img.byCycle[op.Cycle] = append(img.byCycle[op.Cycle], op)
		}
		images[sb.IR] = img
	}

	st := &Stats{BlockVisits: map[string]int64{}}
	var occ occTally
	var pend []pendingWrite
	var now int64
	l1FreeAt := int64(0)
	l2FreeAt := make([]int64, prog.Arch.L2Ports)

	commit := func(upto int64) {
		kept := pend[:0]
		for _, w := range pend {
			if w.at <= upto {
				regs[w.reg] = w.val
			} else {
				kept = append(kept, w)
			}
		}
		pend = kept
	}
	read := func(o ir.Operand) int32 {
		if o.IsImm() {
			return o.Imm
		}
		return regs[o.Reg]
	}

	blk := f.Entry()
	maxCycles := int64(env.MaxSteps)
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}

	for blk != nil {
		img := images[blk]
		if img == nil {
			return nil, fmt.Errorf("sim %s: block %s has no schedule", f.Name, blk.Name)
		}
		st.BlockVisits[blk.Name]++
		st.Bundles += int64(img.sb.Len)
		var next *ir.Block
		done := false
		for t := 0; t < img.sb.Len; t++ {
			commit(now)
			// Phase 1: reads and load sampling (start of cycle).
			type result struct {
				op   vliw.Op
				vals []int32
			}
			bundle := img.byCycle[t]
			occ.note(bundle, prog.Arch)
			results := make([]result, 0, len(bundle))
			for _, op := range bundle {
				in := op.Instr
				vals := make([]int32, len(in.Args))
				for i, a := range in.Args {
					vals[i] = read(a)
				}
				results = append(results, result{op, vals})
			}
			// Phase 2: effects. Loads sample memory before this cycle's
			// stores commit (a same-cycle store is not yet visible),
			// matching the dependence model's store→load distance of 1.
			for pass := 0; pass < 2; pass++ {
				for _, r := range results {
					in := r.op.Instr
					if (in.Op == ir.OpStore) != (pass == 1) {
						continue
					}
					st.Ops++
					switch in.Op {
					case ir.OpNop:
					case ir.OpLoad:
						data := mems[in.Mem]
						idx := int(r.vals[0]) + int(in.Off)
						if idx < 0 || idx >= len(data) {
							return nil, fmt.Errorf("sim %s/%s@%d: load %s[%d] out of bounds (len %d)",
								f.Name, blk.Name, t, in.Mem.Name, idx, len(data))
						}
						if err := reservePort(in, now, &l1FreeAt, l2FreeAt, prog.Arch); err != nil {
							return nil, fmt.Errorf("sim %s/%s@%d: %w", f.Name, blk.Name, t, err)
						}
						st.MemAccesses++
						pend = append(pend, pendingWrite{
							at:  now + int64(ddg.Latency(in, prog.Arch)),
							reg: in.Dest,
							val: in.Elem.Extend(data[idx]),
						})
					case ir.OpStore:
						data := mems[in.Mem]
						idx := int(r.vals[0]) + int(in.Off)
						if idx < 0 || idx >= len(data) {
							return nil, fmt.Errorf("sim %s/%s@%d: store %s[%d] out of bounds (len %d)",
								f.Name, blk.Name, t, in.Mem.Name, idx, len(data))
						}
						if err := reservePort(in, now, &l1FreeAt, l2FreeAt, prog.Arch); err != nil {
							return nil, fmt.Errorf("sim %s/%s@%d: %w", f.Name, blk.Name, t, err)
						}
						st.MemAccesses++
						data[idx] = in.Elem.Truncate(r.vals[1])
					case ir.OpBr:
						next = in.Targets[0]
					case ir.OpCBr:
						if r.vals[0] != 0 {
							next = in.Targets[0]
						} else {
							next = in.Targets[1]
						}
					case ir.OpRet:
						done = true
					case ir.OpFused:
						pend = append(pend, pendingWrite{
							at:  now + int64(ddg.Latency(in, prog.Arch)),
							reg: in.Dest,
							val: in.Fused.Eval(r.vals),
						})
					default:
						pend = append(pend, pendingWrite{
							at:  now + int64(ddg.Latency(in, prog.Arch)),
							reg: in.Dest,
							val: in.Op.Eval(r.vals...),
						})
					}
				}
			}
			now++
			st.Cycles++
			if st.Cycles > maxCycles {
				return nil, fmt.Errorf("sim %s: exceeded %d cycles", f.Name, maxCycles)
			}
		}
		if done {
			break
		}
		if next == nil {
			return nil, fmt.Errorf("sim %s: block %s fell through without a branch", f.Name, blk.Name)
		}
		blk = next
	}
	commit(now)
	if len(pend) != 0 {
		return nil, fmt.Errorf("sim %s: %d writes still in flight at exit", f.Name, len(pend))
	}
	st.finalize(prog.Arch, &occ)
	if sp != nil {
		sp.Int("cycles", st.Cycles).Int("ops", st.Ops).Str("bound", st.Bound)
		obs.GetCounter("sim.runs").Inc()
		obs.GetCounter("sim.cycles").Add(st.Cycles)
	}
	return st, nil
}

// reservePort enforces non-pipelined memory port occupancy across the
// whole run, including across block boundaries.
func reservePort(in *ir.Instr, now int64, l1FreeAt *int64, l2FreeAt []int64, arch machine.Arch) error {
	if in.Mem.Space == ir.L1 {
		if *l1FreeAt > now {
			return fmt.Errorf("L1 port busy until %d at cycle %d (scheduler bug)", *l1FreeAt, now)
		}
		*l1FreeAt = now + machine.L1Occupancy
		return nil
	}
	for i := range l2FreeAt {
		if l2FreeAt[i] <= now {
			l2FreeAt[i] = now + int64(arch.L2Lat)
			return nil
		}
	}
	return fmt.Errorf("all %d L2 ports busy at cycle %d (scheduler bug)", len(l2FreeAt), now)
}
