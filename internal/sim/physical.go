package sim

import (
	"fmt"
	"sort"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/vliw"
)

// RunPhysical executes prog through the register allocator's physical
// assignment: every virtual register access is mapped to its assigned
// physical register in its home cluster's register file. Two live
// ranges sharing a physical register by mistake corrupt each other's
// values here, so bit-equality of RunPhysical output with the golden
// model is an end-to-end proof of the allocation — something the
// structural checks in regalloc cannot give.
//
// Requires a program whose allocation fit (PhysAssign populated).
func RunPhysical(prog *vliw.Program, env *ir.Env) (*Stats, error) {
	f := prog.F
	if prog.PhysAssign == nil {
		return nil, fmt.Errorf("sim: program has no physical assignment")
	}
	if len(env.Args) != len(f.Params) {
		return nil, fmt.Errorf("sim: %d args for %d params", len(env.Args), len(f.Params))
	}
	rc := prog.Arch.RegsPC()
	files := make([][]int32, prog.Arch.Clusters)
	for c := range files {
		files[c] = make([]int32, rc)
	}
	locate := func(r ir.Reg) (int, int, error) {
		c := 0
		if int(r) < len(prog.RegCluster) {
			c = prog.RegCluster[r]
		}
		if int(r) >= len(prog.PhysAssign) || prog.PhysAssign[r] < 0 {
			return 0, 0, fmt.Errorf("sim: virtual register v%d has no physical assignment", r)
		}
		p := prog.PhysAssign[r]
		if p >= rc {
			return 0, 0, fmt.Errorf("sim: v%d assigned phys %d beyond file size %d", r, p, rc)
		}
		return c, p, nil
	}
	for i, prm := range f.Params {
		c, p, err := locate(prm.Reg)
		if err != nil {
			return nil, err
		}
		files[c][p] = env.Args[i]
	}

	mems := make(map[*ir.MemRef][]int32, len(f.Mems))
	for _, m := range f.Mems {
		data, ok := env.Mem[m.Name]
		if !ok {
			if m.IsParam {
				return nil, fmt.Errorf("sim: parameter array %q not bound", m.Name)
			}
			data = make([]int32, m.Size)
			env.Mem[m.Name] = data
		}
		for i, v := range m.Init {
			data[i] = v
		}
		mems[m] = data
	}

	type physWrite struct {
		at   int64
		c, p int
		val  int32
	}
	var pend []physWrite
	commit := func(upto int64) {
		kept := pend[:0]
		for _, w := range pend {
			if w.at <= upto {
				files[w.c][w.p] = w.val
			} else {
				kept = append(kept, w)
			}
		}
		pend = kept
	}

	images := map[*ir.Block][][]vliw.Op{}
	lens := map[*ir.Block]int{}
	for _, sb := range prog.Blocks {
		byCycle := make([][]vliw.Op, sb.Len)
		ops := append([]vliw.Op(nil), sb.Ops...)
		sort.Slice(ops, func(i, j int) bool { return ops[i].Cycle < ops[j].Cycle })
		for _, op := range ops {
			byCycle[op.Cycle] = append(byCycle[op.Cycle], op)
		}
		images[sb.IR] = byCycle
		lens[sb.IR] = sb.Len
	}

	st := &Stats{BlockVisits: map[string]int64{}}
	var occ occTally
	var now int64
	blk := f.Entry()
	maxCycles := int64(env.MaxSteps)
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	read := func(o ir.Operand) (int32, error) {
		if o.IsImm() {
			return o.Imm, nil
		}
		c, p, err := locate(o.Reg)
		if err != nil {
			return 0, err
		}
		return files[c][p], nil
	}

	for blk != nil {
		byCycle, ok := images[blk]
		if !ok {
			return nil, fmt.Errorf("sim: block %s has no schedule", blk.Name)
		}
		st.BlockVisits[blk.Name]++
		st.Bundles += int64(lens[blk])
		var next *ir.Block
		done := false
		for t := 0; t < lens[blk]; t++ {
			commit(now)
			type result struct {
				op   vliw.Op
				vals []int32
			}
			occ.note(byCycle[t], prog.Arch)
			var results []result
			for _, op := range byCycle[t] {
				vals := make([]int32, len(op.Instr.Args))
				for i, a := range op.Instr.Args {
					v, err := read(a)
					if err != nil {
						return nil, err
					}
					vals[i] = v
				}
				results = append(results, result{op, vals})
			}
			for pass := 0; pass < 2; pass++ {
				for _, r := range results {
					in := r.op.Instr
					if (in.Op == ir.OpStore) != (pass == 1) {
						continue
					}
					st.Ops++
					switch in.Op {
					case ir.OpNop:
					case ir.OpLoad:
						data := mems[in.Mem]
						idx := int(r.vals[0]) + int(in.Off)
						if idx < 0 || idx >= len(data) {
							return nil, fmt.Errorf("sim: load %s[%d] out of bounds", in.Mem.Name, idx)
						}
						c, p, err := locate(in.Dest)
						if err != nil {
							return nil, err
						}
						st.MemAccesses++
						pend = append(pend, physWrite{
							at: now + int64(ddg.Latency(in, prog.Arch)),
							c:  c, p: p, val: in.Elem.Extend(data[idx]),
						})
					case ir.OpStore:
						data := mems[in.Mem]
						idx := int(r.vals[0]) + int(in.Off)
						if idx < 0 || idx >= len(data) {
							return nil, fmt.Errorf("sim: store %s[%d] out of bounds", in.Mem.Name, idx)
						}
						st.MemAccesses++
						data[idx] = in.Elem.Truncate(r.vals[1])
					case ir.OpBr:
						next = in.Targets[0]
					case ir.OpCBr:
						if r.vals[0] != 0 {
							next = in.Targets[0]
						} else {
							next = in.Targets[1]
						}
					case ir.OpRet:
						done = true
					case ir.OpFused:
						c, p, err := locate(in.Dest)
						if err != nil {
							return nil, err
						}
						pend = append(pend, physWrite{
							at: now + int64(ddg.Latency(in, prog.Arch)),
							c:  c, p: p, val: in.Fused.Eval(r.vals),
						})
					default:
						c, p, err := locate(in.Dest)
						if err != nil {
							return nil, err
						}
						pend = append(pend, physWrite{
							at: now + int64(ddg.Latency(in, prog.Arch)),
							c:  c, p: p, val: in.Op.Eval(r.vals...),
						})
					}
				}
			}
			now++
			st.Cycles++
			if st.Cycles > maxCycles {
				return nil, fmt.Errorf("sim: exceeded %d cycles", maxCycles)
			}
		}
		if done {
			break
		}
		if next == nil {
			return nil, fmt.Errorf("sim: block %s fell through", blk.Name)
		}
		blk = next
	}
	commit(now)
	st.finalize(prog.Arch, &occ)
	return st, nil
}
