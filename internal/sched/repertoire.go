package sched

import (
	"customfit/internal/ir"
	"customfit/internal/opt"
)

// FuseMinMax rewrites compare+select idioms into single-cycle min/max
// operations for targets whose ALU repertoire includes them
// (machine.Arch.MinMax). This is the backend half of the paper's
// opcode-choice axis: "This methodology allows us to give any opcode
// choice to the compiler" — the architecture-independent IR never
// contains OpMin/OpMax; they appear only after retargeting.
//
// Patterns (a, b any operands; the compare's result may have other
// users, in which case the compare itself survives):
//
//	c = a <  b ; d = select c, a, b   →  d = min a, b
//	c = a <  b ; d = select c, b, a   →  d = max a, b
//	c = a >  b ; d = select c, a, b   →  d = max a, b
//	c = a >  b ; d = select c, b, a   →  d = min a, b
//
// (<= and >= fuse identically: on ties both arms are equal.)
//
// Returns the number of selects fused. Call before Partition; follow
// with opt.Clean to sweep compares that became dead.
func FuseMinMax(f *ir.Func) int {
	fused := 0
	for _, b := range f.Blocks {
		// Map from compare destination to its instruction, block-local.
		cmps := map[ir.Reg]*ir.Instr{}
		for _, in := range b.Instrs {
			if in.Op.IsCmp() && in.Dest != ir.NoReg {
				cmps[in.Dest] = in
			} else if in.Op.HasDest() {
				delete(cmps, in.Dest)
			}
			if in.Op != ir.OpSelect || !in.Args[0].IsReg() {
				continue
			}
			cmp, ok := cmps[in.Args[0].Reg]
			if !ok {
				continue
			}
			var lessLike bool
			switch cmp.Op {
			case ir.OpCmpLT, ir.OpCmpLE:
				lessLike = true
			case ir.OpCmpGT, ir.OpCmpGE:
				lessLike = false
			default:
				continue
			}
			a, bb := cmp.Args[0], cmp.Args[1]
			t, e := in.Args[1], in.Args[2]
			var op ir.Op
			switch {
			case t == a && e == bb:
				op = ir.OpMin
			case t == bb && e == a:
				op = ir.OpMax
			default:
				continue
			}
			if !lessLike {
				if op == ir.OpMin {
					op = ir.OpMax
				} else {
					op = ir.OpMin
				}
			}
			in.Op = op
			in.Args = []ir.Operand{a, bb}
			fused++
		}
	}
	if fused > 0 {
		opt.Clean(f) // sweep compares with no remaining users
	}
	return fused
}
