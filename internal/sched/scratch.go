package sched

import (
	"customfit/internal/regalloc"
	"customfit/internal/vliw"
)

// Scratch is a per-worker arena of reusable scheduling and allocation
// buffers. One compile's transient state — ready heaps, per-cycle
// resource tables, liveness bitsets, the allocator's segment builders —
// dominates the backend's allocation profile when the explorer runs
// hundreds of compiles per architecture class, so workers keep one
// Scratch each and thread it through CompilePrepared.
//
// A Scratch is NOT safe for concurrent use; share Prepared kernels
// across workers, never a Scratch.
type Scratch struct {
	// per-block scheduler state (sized to the block's op count)
	unschedPreds []int32
	earliest     []int32
	ready        []int32
	deferred     []int32

	// per-function pressure state (sized to the register count)
	isLive    []bool
	immortal  []bool
	remaining []int32
	live      []int
	stuck     []bool

	// flattened per-cycle resource tables
	res resources

	// Delta-path program assembly arenas (see delta.go): the blame
	// buffer, the block-pointer table, the entry-id table, and the
	// vliw.Program shell are all owned by the Scratch, so a fully
	// cache-hit neighbor re-evaluation assembles its Result without
	// heap allocation. A Result produced through these arenas is valid
	// only until the next compile that uses the same Scratch.
	blame      []int
	progBlocks []*vliw.Block
	entryIDs   []uint32
	prog       vliw.Program
	result     Result

	// RA is the register allocator's scratch arena, threaded through
	// regalloc.AllocateWith by the compile driver.
	RA *regalloc.Scratch
}

// NewScratch returns an empty scratch arena. Buffers grow on first use
// and are retained across compiles.
func NewScratch() *Scratch {
	return &Scratch{RA: regalloc.NewScratch()}
}

// grow32 returns buf resized to n entries with every entry zeroed,
// reusing capacity, and stores the resized slice back.
func grow32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// growBool is grow32 for bool buffers.
func growBool(buf *[]bool, n int) []bool {
	s := *buf
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = false
		}
	}
	*buf = s
	return s
}

// growInt is grow32 for int buffers.
func growInt(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}
