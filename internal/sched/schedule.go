package sched

import (
	"container/heap"
	"fmt"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/vliw"
)

// Schedule list-schedules every block of a partitioned function against
// the architecture's resource model, producing a vliw.Program (without
// register allocation; see Compile for the full driver).
//
// The resource model per cycle:
//
//   - each cluster issues at most ALUsPC ALU-class operations, of which
//     at most MULsPC may be multiplies; inter-cluster moves charge their
//     source cluster's ALU issue;
//   - each cluster has 1 L1 access path and L2PathsPC L2 access paths;
//   - globally, the single L1 port is busy LatL1 cycles per access and
//     each of the p2 L2 ports is busy l2 cycles per access
//     (non-pipelined memories, paper Table 4);
//   - at most Buses() inter-cluster moves issue per cycle;
//   - the single branch unit lives on cluster 0.
//
// Priority is latency-weighted critical-path height. Issue is
// register-pressure throttled: an operation that would push its
// cluster's live-value count past the register file (minus a small
// reserve) is deferred while anything else can make progress, which is
// how schedules degrade gracefully on register-starved machines instead
// of demanding impossible allocations. Pressure the throttle cannot
// avoid (long-lived loop invariants) is the spill iteration's job.
func Schedule(f *ir.Func, arch machine.Arch, pl *Placement) (*vliw.Program, error) {
	cap := arch.RegsPC() - pressureReserve
	if AblatePressureThrottle {
		cap = 1 << 20 // effectively unlimited: classic pressure-blind greedy
	}
	return ScheduleWithCap(f, arch, pl, cap)
}

// AblatePressureThrottle disables the scheduler's live-value budget,
// reverting to the classic pressure-blind greedy list scheduler (an
// ablation switch; see EXPERIMENTS.md).
var AblatePressureThrottle bool

// ScheduleWithCap schedules with an explicit per-cluster live-value
// budget. The compile driver tightens the cap across failing spill
// iterations: a lower cap serializes the schedule, trading ILP for
// register pressure exactly the way a production compiler degrades on
// register-starved machines.
func ScheduleWithCap(f *ir.Func, arch machine.Arch, pl *Placement, cap int) (*vliw.Program, error) {
	return ScheduleMode(f, arch, pl, cap, false)
}

// ScheduleMode additionally selects in-order priority, the
// pressure-safe fallback used after repeated allocation failures.
func ScheduleMode(f *ir.Func, arch machine.Arch, pl *Placement, cap int, inOrder bool) (*vliw.Program, error) {
	prog := &vliw.Program{
		Arch:       arch,
		F:          f,
		RegCluster: pl.RegCluster,
	}
	lv := opt.ComputeLiveness(f)
	prog.Blame = make([]int, f.NumRegs())
	for _, b := range f.Blocks {
		sb, err := scheduleBlock(f, b, arch, pl, lv, cap, prog.Blame, inOrder)
		if err != nil {
			return nil, fmt.Errorf("sched %s/%s: %w", f.Name, b.Name, err)
		}
		prog.Blocks = append(prog.Blocks, sb)
	}
	return prog, nil
}

// pressureReserve is how many registers per cluster the throttle keeps
// in hand for allocation conservatism (live intervals are coarser than
// the scheduler's exact liveness).
const pressureReserve = 2

// readyQueue is a max-heap on (Height, then earlier program order), or
// pure program order when inOrder is set (the pressure-safe fallback:
// program order is a valid execution order, so the front of the queue
// is always placeable and pressure tracks the program-order peak).
type readyQueue struct {
	nodes   []*ddg.Node
	inOrder bool
}

func (q readyQueue) Len() int { return len(q.nodes) }
func (q readyQueue) Less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if q.inOrder {
		return a.Index < b.Index
	}
	if a.Height != b.Height {
		return a.Height > b.Height
	}
	return a.Index < b.Index
}
func (q readyQueue) Swap(i, j int) { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *readyQueue) Push(x interface{}) {
	q.nodes = append(q.nodes, x.(*ddg.Node))
}
func (q *readyQueue) Pop() interface{} {
	old := q.nodes
	n := len(old)
	x := old[n-1]
	q.nodes = old[:n-1]
	return x
}

// resources tracks per-cycle slot usage and port occupancy.
type resources struct {
	arch machine.Arch
	// per cycle, per cluster slot counters (grown on demand)
	alu [][]int
	mul [][]int
	l1p [][]int
	l2p [][]int
	bus []int
	br  []int
	// global non-pipelined port free-times
	l1FreeAt int
	l2FreeAt []int
}

func newResources(arch machine.Arch) *resources {
	return &resources{arch: arch, l2FreeAt: make([]int, arch.L2Ports)}
}

// growTo batch-extends per-cycle slot tracking.
func (rs *resources) growTo(cycle int) {
	nc := rs.arch.Clusters
	for len(rs.bus) <= cycle {
		target := cap(rs.bus)
		if target <= cycle {
			target = cycle + 256
		}
		for len(rs.bus) < target+1 {
			rs.alu = append(rs.alu, make([]int, nc))
			rs.mul = append(rs.mul, make([]int, nc))
			rs.l1p = append(rs.l1p, make([]int, nc))
			rs.l2p = append(rs.l2p, make([]int, nc))
			rs.bus = append(rs.bus, 0)
			rs.br = append(rs.br, 0)
		}
	}
}

// tryPlace checks and reserves machine resources for in at the cycle.
func (rs *resources) tryPlace(in *ir.Instr, cycle int, pl *Placement) bool {
	rs.growTo(cycle)
	a := rs.arch
	c := pl.Cluster(in)
	switch in.Op {
	case ir.OpXMov:
		src := pl.SrcCluster(in)
		if rs.alu[cycle][src] >= a.ALUsPC() || rs.bus[cycle] >= a.Buses() {
			return false
		}
		rs.alu[cycle][src]++
		rs.bus[cycle]++
	case ir.OpMul:
		if rs.alu[cycle][c] >= a.ALUsPC() || rs.mul[cycle][c] >= a.MULsPC() {
			return false
		}
		rs.alu[cycle][c]++
		rs.mul[cycle][c]++
	case ir.OpLoad, ir.OpStore:
		if in.Mem.Space == ir.L1 {
			if rs.l1p[cycle][c] >= 1 || rs.l1FreeAt > cycle {
				return false
			}
			rs.l1p[cycle][c]++
			rs.l1FreeAt = cycle + machine.L1Occupancy
		} else {
			if rs.l2p[cycle][c] >= a.L2PathsPC() {
				return false
			}
			port := -1
			for i, free := range rs.l2FreeAt {
				if free <= cycle {
					port = i
					break
				}
			}
			if port < 0 {
				return false
			}
			rs.l2p[cycle][c]++
			rs.l2FreeAt[port] = cycle + a.L2Lat
		}
	case ir.OpBr, ir.OpCBr, ir.OpRet:
		if rs.br[cycle] >= 1 {
			return false
		}
		rs.br[cycle]++
	case ir.OpNop:
	default: // plain ALU op (incl. mov, select, compares)
		if rs.alu[cycle][c] >= a.ALUsPC() {
			return false
		}
		rs.alu[cycle][c]++
	}
	return true
}

// pressure tracks exact per-cluster live-value counts as the schedule
// is built.
type pressure struct {
	cap        int // per-cluster live-value budget
	live       []int
	peak       []int
	isLive     []bool
	remaining  []int // uses left within the block
	immortal   []bool
	regCluster []int
}

func newPressure(f *ir.Func, b *ir.Block, arch machine.Arch, pl *Placement, lv *opt.Liveness, cap int) *pressure {
	n := f.NumRegs()
	p := &pressure{
		cap:        cap,
		live:       make([]int, arch.Clusters),
		peak:       make([]int, arch.Clusters),
		isLive:     make([]bool, n),
		remaining:  make([]int, n),
		immortal:   make([]bool, n),
		regCluster: pl.RegCluster,
	}
	if p.cap < 3 {
		p.cap = 3
	}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			if a.IsReg() {
				p.remaining[a.Reg]++
			}
		}
	}
	for r := ir.Reg(0); int(r) < n; r++ {
		if lv.LiveOut(b, r) {
			p.immortal[r] = true
		}
		if lv.LiveIn(b, r) && (p.remaining[r] > 0 || p.immortal[r]) {
			p.isLive[r] = true
			p.live[p.clusterOf(r)]++
		}
	}
	return p
}

func (p *pressure) clusterOf(r ir.Reg) int {
	if int(r) < len(p.regCluster) {
		return p.regCluster[r]
	}
	return 0
}

// wouldExceed reports whether placing in now pushes its destination
// cluster past the budget, accounting for argument deaths.
func (p *pressure) wouldExceed(in *ir.Instr) bool {
	if p.cap <= 0 || !in.Op.HasDest() {
		return false
	}
	limit := p.cap
	cd := p.clusterOf(in.Dest)
	delta := 0
	if !p.isLive[in.Dest] {
		delta++
	}
	seen := map[ir.Reg]bool{}
	for _, a := range in.Args {
		if !a.IsReg() || seen[a.Reg] {
			continue
		}
		seen[a.Reg] = true
		if p.isLive[a.Reg] && !p.immortal[a.Reg] && p.remaining[a.Reg] == 1 &&
			p.clusterOf(a.Reg) == cd && a.Reg != in.Dest {
			delta--
		}
	}
	return p.live[cd]+delta > limit
}

// place updates liveness state for a placed instruction.
func (p *pressure) place(in *ir.Instr) {
	seen := map[ir.Reg]bool{}
	for _, a := range in.Args {
		if !a.IsReg() {
			continue
		}
		p.remaining[a.Reg]--
		if seen[a.Reg] {
			continue
		}
		seen[a.Reg] = true
		if p.remaining[a.Reg] <= 0 && !p.immortal[a.Reg] && p.isLive[a.Reg] {
			p.isLive[a.Reg] = false
			p.live[p.clusterOf(a.Reg)]--
		}
	}
	if in.Op.HasDest() && !p.isLive[in.Dest] {
		p.isLive[in.Dest] = true
		cd := p.clusterOf(in.Dest)
		p.live[cd]++
		if p.live[cd] > p.peak[cd] {
			p.peak[cd] = p.live[cd]
		}
	}
}

func scheduleBlock(f *ir.Func, b *ir.Block, arch machine.Arch, pl *Placement, lv *opt.Liveness, cap int, blame []int, inOrder bool) (*vliw.Block, error) {
	g := ddg.Build(b, arch)
	n := len(g.Nodes)
	sb := &vliw.Block{IR: b}
	if n == 0 {
		return sb, nil
	}

	unschedPreds := make([]int, n)
	earliest := make([]int, n)
	for i, nd := range g.Nodes {
		unschedPreds[i] = len(nd.Preds)
	}
	ready := readyQueue{inOrder: inOrder}
	for i, nd := range g.Nodes {
		if unschedPreds[i] == 0 {
			heap.Push(&ready, nd)
		}
	}
	rs := newResources(arch)
	pr := newPressure(f, b, arch, pl, lv, cap)
	placed := 0
	cycle := 0
	cycles := make([]int, n)
	var deferred []*ddg.Node
	cooloff := 0 // cycles to wait after a forced placement before forcing again
	maxCycles := 64*n + 4096

	for placed < n {
		if cycle > maxCycles {
			return nil, fmt.Errorf("schedule did not converge after %d cycles (%d/%d ops placed)", cycle, placed, n)
		}
		deferred = deferred[:0]
		placedThisCycle := 0
		pressureDeferrals := 0
		// Scanning the whole ready set every cycle is quadratic; after
		// enough candidates fail, the rest of the heap almost certainly
		// cannot issue this cycle either.
		scanBudget := 8 * (arch.ALUs + arch.L2Ports + arch.Clusters + 4)
		for ready.Len() > 0 && scanBudget > 0 {
			scanBudget--
			nd := heap.Pop(&ready).(*ddg.Node)
			if earliest[nd.Index] > cycle {
				deferred = append(deferred, nd)
				continue
			}
			if pr.wouldExceed(nd.Instr) {
				pressureDeferrals++
				deferred = append(deferred, nd)
				continue
			}
			if !rs.tryPlace(nd.Instr, cycle, pl) {
				deferred = append(deferred, nd)
				continue
			}
			pr.place(nd.Instr)
			cycles[nd.Index] = cycle
			sb.Ops = append(sb.Ops, vliw.Op{
				Instr:      nd.Instr,
				Cycle:      cycle,
				Cluster:    pl.Cluster(nd.Instr),
				SrcCluster: pl.SrcCluster(nd.Instr),
			})
			placed++
			placedThisCycle++
			for _, e := range nd.Succs {
				if t := cycle + e.MinDelta; t > earliest[e.To.Index] {
					earliest[e.To.Index] = t
				}
				unschedPreds[e.To.Index]--
				if unschedPreds[e.To.Index] == 0 {
					heap.Push(&ready, e.To)
				}
			}
		}
		// Pressure deadlock: every issuable candidate would overflow the
		// budget, and the consumers that would relieve it are not ready
		// because these very candidates block them. Force exactly one
		// through, preferring the operation that completes some
		// successor's operand set (so a pressure-reducing consumer
		// becomes ready soonest), then critical-path height.
		if cooloff > 0 {
			cooloff--
		}
		if placedThisCycle == 0 && pressureDeferrals > 0 && cooloff == 0 {
			// Blame the values occupying the saturated clusters: they
			// are what a pressure-aware compiler would spill.
			stuck := map[int]bool{}
			for _, nd := range deferred {
				if earliest[nd.Index] <= cycle && nd.Instr.Op.HasDest() {
					stuck[pr.clusterOf(nd.Instr.Dest)] = true
				}
			}
			for r := 0; r < len(pr.isLive) && r < len(blame); r++ {
				if pr.isLive[r] && stuck[pr.clusterOf(ir.Reg(r))] {
					blame[r]++
				}
			}
			var best *ddg.Node
			bestKey := [2]int{-1, -1 << 30}
			for _, nd := range deferred {
				if earliest[nd.Index] > cycle {
					continue
				}
				enables := 0
				for _, e := range nd.Succs {
					if unschedPreds[e.To.Index] == 1 {
						enables++ // nd is the successor's last unscheduled input
					}
				}
				// Tie-break by PROGRAM order, not priority: the frontend
				// emits expressions depth-first, so program order is the
				// register-lean (Sethi-Ullman-like) evaluation order —
				// exactly what a fully serialized machine should follow.
				key := [2]int{enables, -nd.Index}
				if key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
					best, bestKey = nd, key
				}
			}
			if best != nil && rs.tryPlace(best.Instr, cycle, pl) {
				sb.Forced++
				// Let the admitted value's consumer catch up (producer
				// latency) before forcing more pressure in.
				cooloff = 1 + ddg.Latency(best.Instr, arch)
				pr.place(best.Instr)
				cycles[best.Index] = cycle
				sb.Ops = append(sb.Ops, vliw.Op{
					Instr:      best.Instr,
					Cycle:      cycle,
					Cluster:    pl.Cluster(best.Instr),
					SrcCluster: pl.SrcCluster(best.Instr),
				})
				placed++
				for _, e := range best.Succs {
					if t := cycle + e.MinDelta; t > earliest[e.To.Index] {
						earliest[e.To.Index] = t
					}
					unschedPreds[e.To.Index]--
					if unschedPreds[e.To.Index] == 0 {
						heap.Push(&ready, e.To)
					}
				}
				for i, nd := range deferred {
					if nd == best {
						deferred = append(deferred[:i], deferred[i+1:]...)
						break
					}
				}
			}
		}
		ready.nodes = append(ready.nodes, deferred...)
		heap.Init(&ready)
		cycle++
	}
	last := 0
	for _, c := range cycles {
		if c > last {
			last = c
		}
	}
	sb.Len = last + 1
	sb.SchedPeak = pr.peak
	return sb, nil
}
