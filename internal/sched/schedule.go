package sched

import (
	"fmt"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/vliw"
)

// Schedule list-schedules every block of a partitioned function against
// the architecture's resource model, producing a vliw.Program (without
// register allocation; see Compile for the full driver).
//
// The resource model per cycle:
//
//   - each cluster issues at most ALUsPC ALU-class operations, of which
//     at most MULsPC may be multiplies; inter-cluster moves charge their
//     source cluster's ALU issue;
//   - each cluster has 1 L1 access path and L2PathsPC L2 access paths;
//   - globally, the single L1 port is busy LatL1 cycles per access and
//     each of the p2 L2 ports is busy l2 cycles per access
//     (non-pipelined memories, paper Table 4);
//   - at most Buses() inter-cluster moves issue per cycle;
//   - the single branch unit lives on cluster 0.
//
// Priority is latency-weighted critical-path height. Issue is
// register-pressure throttled: an operation that would push its
// cluster's live-value count past the register file (minus a small
// reserve) is deferred while anything else can make progress, which is
// how schedules degrade gracefully on register-starved machines instead
// of demanding impossible allocations. Pressure the throttle cannot
// avoid (long-lived loop invariants) is the spill iteration's job.
func Schedule(f *ir.Func, arch machine.Arch, pl *Placement) (*vliw.Program, error) {
	cap := arch.RegsPC() - pressureReserve
	if AblatePressureThrottle {
		cap = 1 << 20 // effectively unlimited: classic pressure-blind greedy
	}
	return ScheduleWithCap(f, arch, pl, cap)
}

// AblatePressureThrottle disables the scheduler's live-value budget,
// reverting to the classic pressure-blind greedy list scheduler (an
// ablation switch; see EXPERIMENTS.md).
var AblatePressureThrottle bool

// ScheduleWithCap schedules with an explicit per-cluster live-value
// budget. The compile driver tightens the cap across failing spill
// iterations: a lower cap serializes the schedule, trading ILP for
// register pressure exactly the way a production compiler degrades on
// register-starved machines.
func ScheduleWithCap(f *ir.Func, arch machine.Arch, pl *Placement, cap int) (*vliw.Program, error) {
	return ScheduleMode(f, arch, pl, cap, false)
}

// ScheduleMode additionally selects in-order priority, the
// pressure-safe fallback used after repeated allocation failures.
func ScheduleMode(f *ir.Func, arch machine.Arch, pl *Placement, cap int, inOrder bool) (*vliw.Program, error) {
	prog, _, err := scheduleFunc(f, arch, pl, cap, inOrder, nil, NewScratch())
	return prog, err
}

// scheduleFunc is the scheduling engine: it builds (or reuses) the
// dependence skeleton of every block and list-schedules them, returning
// the program together with the liveness analysis it computed so the
// compile driver can hand the same analysis to the register allocator.
// skels, when non-nil, must be per-block skeletons built from a function
// whose blocks are instruction-for-instruction identical to f's (the
// Prepared cache guarantees this).
func scheduleFunc(f *ir.Func, arch machine.Arch, pl *Placement, cap int, inOrder bool, skels []*ddg.Skeleton, sc *Scratch) (*vliw.Program, *opt.Liveness, error) {
	prog := &vliw.Program{
		Arch:       arch,
		F:          f,
		RegCluster: pl.RegCluster,
	}
	lv := opt.ComputeLiveness(f)
	prog.Blame = make([]int, f.NumRegs())
	for bi, b := range f.Blocks {
		var sk *ddg.Skeleton
		if skels != nil {
			sk = skels[bi]
		} else {
			sk = ddg.BuildSkeleton(b, arch)
		}
		sb, _, err := scheduleBlock(f, b, arch, pl, lv, cap, prog.Blame, inOrder, sk, sc)
		if err != nil {
			return nil, nil, fmt.Errorf("sched %s/%s: %w", f.Name, b.Name, err)
		}
		prog.Blocks = append(prog.Blocks, sb)
	}
	return prog, lv, nil
}

// pressureReserve is how many registers per cluster the throttle keeps
// in hand for allocation conservatism (live intervals are coarser than
// the scheduler's exact liveness).
const pressureReserve = 2

// readyHeap is a min-heap of instruction indices ordered by descending
// critical-path height (ties to earlier program order), or pure program
// order when inOrder is set (the pressure-safe fallback: program order
// is a valid execution order, so the front of the queue is always
// placeable and pressure tracks the program-order peak). The ordering
// is total — no two entries compare equal — so the pop sequence is
// independent of heap layout.
type readyHeap struct {
	idx     []int32
	heights []int
	inOrder bool
}

func (q *readyHeap) less(a, b int32) bool {
	if q.inOrder {
		return a < b
	}
	if q.heights[a] != q.heights[b] {
		return q.heights[a] > q.heights[b]
	}
	return a < b
}

func (q *readyHeap) push(x int32) {
	q.idx = append(q.idx, x)
	i := len(q.idx) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.idx[i], q.idx[p]) {
			break
		}
		q.idx[i], q.idx[p] = q.idx[p], q.idx[i]
		i = p
	}
}

func (q *readyHeap) pop() int32 {
	top := q.idx[0]
	n := len(q.idx) - 1
	q.idx[0] = q.idx[n]
	q.idx = q.idx[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

func (q *readyHeap) down(i int) {
	n := len(q.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(q.idx[r], q.idx[l]) {
			m = r
		}
		if !q.less(q.idx[m], q.idx[i]) {
			return
		}
		q.idx[i], q.idx[m] = q.idx[m], q.idx[i]
		i = m
	}
}

func (q *readyHeap) reinit() {
	for i := len(q.idx)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// resources tracks per-cycle slot usage and port occupancy in flat
// row-major tables (cycle*clusters + cluster), reused across blocks via
// the Scratch arena.
type resources struct {
	arch machine.Arch
	nc   int
	rows int // per-cycle rows currently valid (zeroed)
	// per cycle, per cluster slot counters
	alu, mul, l1p, l2p, cu []int32
	// per cycle global counters
	bus, br []int32
	// global non-pipelined port free-times
	l1FreeAt int
	l2FreeAt []int
}

func (rs *resources) reset(arch machine.Arch) {
	rs.arch = arch
	rs.nc = arch.Clusters
	rs.rows = 0
	rs.l1FreeAt = 0
	rs.l2FreeAt = growInt(&rs.l2FreeAt, arch.L2Ports)
}

// growTo batch-extends per-cycle slot tracking, zeroing only the newly
// exposed rows (earlier rows carry this block's live counts).
func (rs *resources) growTo(cycle int) {
	if cycle < rs.rows {
		return
	}
	rows := rs.rows + 256
	for rows <= cycle {
		rows += 256
	}
	rs.alu = growRows(rs.alu, rs.rows*rs.nc, rows*rs.nc)
	rs.mul = growRows(rs.mul, rs.rows*rs.nc, rows*rs.nc)
	rs.l1p = growRows(rs.l1p, rs.rows*rs.nc, rows*rs.nc)
	rs.l2p = growRows(rs.l2p, rs.rows*rs.nc, rows*rs.nc)
	rs.cu = growRows(rs.cu, rs.rows*rs.nc, rows*rs.nc)
	rs.bus = growRows(rs.bus, rs.rows, rows)
	rs.br = growRows(rs.br, rs.rows, rows)
	rs.rows = rows
}

// growRows resizes s to n entries, keeping the first used entries and
// zeroing the rest, reusing capacity where possible.
func growRows(s []int32, used, n int) []int32 {
	if cap(s) < n {
		ns := make([]int32, n)
		copy(ns, s[:used])
		return ns
	}
	s = s[:n]
	for i := used; i < n; i++ {
		s[i] = 0
	}
	return s
}

// tryPlace checks and reserves machine resources for in at the cycle.
func (rs *resources) tryPlace(in *ir.Instr, cycle int, pl *Placement) bool {
	rs.growTo(cycle)
	a := rs.arch
	c := pl.Cluster(in)
	row := cycle * rs.nc
	switch in.Op {
	case ir.OpXMov:
		src := pl.SrcCluster(in)
		if int(rs.alu[row+src]) >= a.ALUsPC() || int(rs.bus[cycle]) >= a.Buses() {
			return false
		}
		rs.alu[row+src]++
		rs.bus[cycle]++
	case ir.OpMul:
		if int(rs.alu[row+c]) >= a.ALUsPC() || int(rs.mul[row+c]) >= a.MULsPC() {
			return false
		}
		rs.alu[row+c]++
		rs.mul[row+c]++
	case ir.OpLoad, ir.OpStore:
		if in.Mem.Space == ir.L1 {
			if rs.l1p[row+c] >= 1 || rs.l1FreeAt > cycle {
				return false
			}
			rs.l1p[row+c]++
			rs.l1FreeAt = cycle + machine.L1Occupancy
		} else {
			if int(rs.l2p[row+c]) >= a.L2PathsPC() {
				return false
			}
			port := -1
			for i, free := range rs.l2FreeAt {
				if free <= cycle {
					port = i
					break
				}
			}
			if port < 0 {
				return false
			}
			rs.l2p[row+c]++
			rs.l2FreeAt[port] = cycle + a.L2Lat
		}
	case ir.OpFused:
		// One pipelined custom-op unit per cluster: it accepts one fused
		// op per cycle without charging an ALU issue slot (the unit's
		// silicon and register ports are priced by the cost and derate
		// models instead).
		if rs.cu[row+c] >= 1 {
			return false
		}
		rs.cu[row+c]++
	case ir.OpBr, ir.OpCBr, ir.OpRet:
		if rs.br[cycle] >= 1 {
			return false
		}
		rs.br[cycle]++
	case ir.OpNop:
	default: // plain ALU op (incl. mov, select, compares)
		if int(rs.alu[row+c]) >= a.ALUsPC() {
			return false
		}
		rs.alu[row+c]++
	}
	return true
}

// pressure tracks exact per-cluster live-value counts as the schedule
// is built. All state except the escaping peak slice lives in the
// Scratch arena.
type pressure struct {
	cap        int // per-cluster live-value budget
	live       []int
	peak       []int
	isLive     []bool
	remaining  []int32 // uses left within the block
	immortal   []bool
	regCluster []int

	// Reuse certificate (see schedCert): the largest live-value count
	// any wouldExceed check compared against the budget, and whether
	// any check actually fired.
	maxChecked int
	bound      bool
}

func (p *pressure) init(f *ir.Func, b *ir.Block, arch machine.Arch, pl *Placement, lv *opt.Liveness, cap int, sc *Scratch) {
	n := f.NumRegs()
	p.cap = cap
	p.live = growInt(&sc.live, arch.Clusters)
	p.peak = make([]int, arch.Clusters) // escapes via vliw.Block.SchedPeak
	p.isLive = growBool(&sc.isLive, n)
	p.remaining = grow32(&sc.remaining, n)
	p.immortal = growBool(&sc.immortal, n)
	p.regCluster = pl.RegCluster
	if p.cap < 3 {
		p.cap = 3
	}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			if a.IsReg() {
				p.remaining[a.Reg]++
			}
		}
	}
	for r := ir.Reg(0); int(r) < n; r++ {
		if lv.LiveOut(b, r) {
			p.immortal[r] = true
		}
		if lv.LiveIn(b, r) && (p.remaining[r] > 0 || p.immortal[r]) {
			p.isLive[r] = true
			p.live[p.clusterOf(r)]++
		}
	}
}

func (p *pressure) clusterOf(r ir.Reg) int {
	if int(r) < len(p.regCluster) {
		return p.regCluster[r]
	}
	return 0
}

// wouldExceed reports whether placing in now pushes its destination
// cluster past the budget, accounting for argument deaths. Duplicate
// register arguments are detected by scanning the (tiny) argument list
// rather than a heap-allocated set.
func (p *pressure) wouldExceed(in *ir.Instr) bool {
	if p.cap <= 0 || !in.Op.HasDest() {
		return false
	}
	limit := p.cap
	cd := p.clusterOf(in.Dest)
	delta := 0
	if !p.isLive[in.Dest] {
		delta++
	}
	for ai, a := range in.Args {
		if !a.IsReg() || dupArg(in.Args[:ai], a.Reg) {
			continue
		}
		if p.isLive[a.Reg] && !p.immortal[a.Reg] && p.remaining[a.Reg] == 1 &&
			p.clusterOf(a.Reg) == cd && a.Reg != in.Dest {
			delta--
		}
	}
	v := p.live[cd] + delta
	if v > p.maxChecked {
		p.maxChecked = v
	}
	if v > limit {
		p.bound = true
		return true
	}
	return false
}

// dupArg reports whether reg already appeared among the earlier args.
func dupArg(args []ir.Operand, reg ir.Reg) bool {
	for _, a := range args {
		if a.IsReg() && a.Reg == reg {
			return true
		}
	}
	return false
}

// place updates liveness state for a placed instruction.
func (p *pressure) place(in *ir.Instr) {
	for ai, a := range in.Args {
		if !a.IsReg() {
			continue
		}
		p.remaining[a.Reg]--
		if dupArg(in.Args[:ai], a.Reg) {
			continue
		}
		if p.remaining[a.Reg] <= 0 && !p.immortal[a.Reg] && p.isLive[a.Reg] {
			p.isLive[a.Reg] = false
			p.live[p.clusterOf(a.Reg)]--
		}
	}
	if in.Op.HasDest() && !p.isLive[in.Dest] {
		p.isLive[in.Dest] = true
		cd := p.clusterOf(in.Dest)
		p.live[cd]++
		if p.live[cd] > p.peak[cd] {
			p.peak[cd] = p.live[cd]
		}
	}
}

// schedCert is the reuse certificate of one block schedule: the
// dynamic bounds that, together with the exact resource parameters the
// block's instructions can observe, let the delta compiler (delta.go)
// prove a cached schedule is the one this run would rebuild. The
// scheduler's decision sequence depends on the budget and the scan
// limit only through comparisons against live-value counts and pop
// counts; as long as a new budget clears every count the recorded run
// compared (and the recorded run never hit either limit), the decision
// sequence — and therefore the schedule — is bit-identical.
type schedCert struct {
	// maxPressure is the largest live-value count any budget check
	// compared; pressureBound records whether a check ever fired
	// (deferral or forced placement), which makes the schedule depend
	// on the exact budget value.
	maxPressure   int
	pressureBound bool
	// maxScan is the most ready-queue pops any single cycle performed;
	// scanBound records whether a cycle exhausted its scan budget with
	// candidates still queued, which makes the schedule depend on the
	// exact scan budget.
	maxScan   int
	scanBound bool
}

func scheduleBlock(f *ir.Func, b *ir.Block, arch machine.Arch, pl *Placement, lv *opt.Liveness, cap int, blame []int, inOrder bool, sk *ddg.Skeleton, sc *Scratch) (*vliw.Block, schedCert, error) {
	var cert schedCert
	ins := b.Instrs
	n := len(ins)
	sb := &vliw.Block{IR: b}
	if n == 0 {
		return sb, cert, nil
	}

	unschedPreds := grow32(&sc.unschedPreds, n)
	earliest := grow32(&sc.earliest, n)
	for i, np := range sk.NPreds {
		unschedPreds[i] = int32(np)
	}
	ready := readyHeap{idx: sc.ready[:0], heights: sk.Heights, inOrder: inOrder}
	for i := 0; i < n; i++ {
		if unschedPreds[i] == 0 {
			ready.push(int32(i))
		}
	}
	rs := &sc.res
	rs.reset(arch)
	var pr pressure
	pr.init(f, b, arch, pl, lv, cap, sc)
	placed := 0
	cycle := 0
	last := 0
	deferred := sc.deferred[:0]
	cooloff := 0 // cycles to wait after a forced placement before forcing again
	maxCycles := 64*n + 4096
	sb.Ops = make([]vliw.Op, 0, n)

	emit := func(i int32) {
		in := ins[i]
		pr.place(in)
		if cycle > last {
			last = cycle
		}
		sb.Ops = append(sb.Ops, vliw.Op{
			Instr:      in,
			Cycle:      cycle,
			Cluster:    pl.Cluster(in),
			SrcCluster: pl.SrcCluster(in),
		})
		placed++
		for _, e := range sk.Succs[i] {
			if t := int32(cycle + e.MinDelta); t > earliest[e.To] {
				earliest[e.To] = t
			}
			unschedPreds[e.To]--
			if unschedPreds[e.To] == 0 {
				ready.push(int32(e.To))
			}
		}
	}

	for placed < n {
		if cycle > maxCycles {
			sc.ready, sc.deferred = ready.idx[:0], deferred[:0]
			return nil, cert, fmt.Errorf("schedule did not converge after %d cycles (%d/%d ops placed)", cycle, placed, n)
		}
		deferred = deferred[:0]
		placedThisCycle := 0
		pressureDeferrals := 0
		// Scanning the whole ready set every cycle is quadratic; after
		// enough candidates fail, the rest of the heap almost certainly
		// cannot issue this cycle either.
		scanBudget := 8 * (arch.ALUs + arch.L2Ports + arch.Clusters + 4)
		scanStart := scanBudget
		for len(ready.idx) > 0 && scanBudget > 0 {
			scanBudget--
			i := ready.pop()
			if int(earliest[i]) > cycle {
				deferred = append(deferred, i)
				continue
			}
			if pr.wouldExceed(ins[i]) {
				pressureDeferrals++
				deferred = append(deferred, i)
				continue
			}
			if !rs.tryPlace(ins[i], cycle, pl) {
				deferred = append(deferred, i)
				continue
			}
			emit(i)
			placedThisCycle++
		}
		if pops := scanStart - scanBudget; pops > cert.maxScan {
			cert.maxScan = pops
		}
		if scanBudget == 0 && len(ready.idx) > 0 {
			cert.scanBound = true
		}
		// Pressure deadlock: every issuable candidate would overflow the
		// budget, and the consumers that would relieve it are not ready
		// because these very candidates block them. Force exactly one
		// through, preferring the operation that completes some
		// successor's operand set (so a pressure-reducing consumer
		// becomes ready soonest), then critical-path height.
		if cooloff > 0 {
			cooloff--
		}
		if placedThisCycle == 0 && pressureDeferrals > 0 && cooloff == 0 {
			// Blame the values occupying the saturated clusters: they
			// are what a pressure-aware compiler would spill.
			stuck := growBool(&sc.stuck, arch.Clusters)
			for _, i := range deferred {
				if int(earliest[i]) <= cycle && ins[i].Op.HasDest() {
					stuck[pr.clusterOf(ins[i].Dest)] = true
				}
			}
			for r := 0; r < len(pr.isLive) && r < len(blame); r++ {
				if pr.isLive[r] && stuck[pr.clusterOf(ir.Reg(r))] {
					blame[r]++
				}
			}
			best := int32(-1)
			bestKey := [2]int{-1, -1 << 30}
			for _, i := range deferred {
				if int(earliest[i]) > cycle {
					continue
				}
				enables := 0
				for _, e := range sk.Succs[i] {
					if unschedPreds[e.To] == 1 {
						enables++ // i is the successor's last unscheduled input
					}
				}
				// Tie-break by PROGRAM order, not priority: the frontend
				// emits expressions depth-first, so program order is the
				// register-lean (Sethi-Ullman-like) evaluation order —
				// exactly what a fully serialized machine should follow.
				key := [2]int{enables, -int(i)}
				if key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
					best, bestKey = i, key
				}
			}
			if best >= 0 && rs.tryPlace(ins[best], cycle, pl) {
				sb.Forced++
				// Let the admitted value's consumer catch up (producer
				// latency) before forcing more pressure in.
				cooloff = 1 + ddg.Latency(ins[best], arch)
				emit(best)
				for i, d := range deferred {
					if d == best {
						deferred = append(deferred[:i], deferred[i+1:]...)
						break
					}
				}
			}
		}
		ready.idx = append(ready.idx, deferred...)
		ready.reinit()
		cycle++
	}
	sc.ready, sc.deferred = ready.idx[:0], deferred[:0]
	sb.Len = last + 1
	sb.SchedPeak = pr.peak
	cert.maxPressure = pr.maxChecked
	cert.pressureBound = pr.bound
	return sb, cert, nil
}
