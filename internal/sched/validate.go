package sched

import (
	"fmt"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/vliw"
)

// Validate independently re-checks a scheduled program: every
// dependence edge's minimum issue distance is respected, every resource
// bound holds in every cycle, memory ports drain before block ends, and
// the terminator issues last. It recomputes the dependence graph from
// scratch, so scheduler and validator can only agree by being right.
func Validate(prog *vliw.Program) error {
	a := prog.Arch
	for _, sb := range prog.Blocks {
		if err := validateBlock(sb, a, prog); err != nil {
			return fmt.Errorf("validate %s/%s: %w", prog.F.Name, sb.IR.Name, err)
		}
	}
	return nil
}

func validateBlock(sb *vliw.Block, a machine.Arch, prog *vliw.Program) error {
	cycleOf := map[*ir.Instr]int{}
	clusterOf := map[*ir.Instr]int{}
	srcOf := map[*ir.Instr]int{}
	for _, op := range sb.Ops {
		cycleOf[op.Instr] = op.Cycle
		clusterOf[op.Instr] = op.Cluster
		srcOf[op.Instr] = op.SrcCluster
	}
	if len(sb.Ops) != len(sb.IR.Instrs) {
		return fmt.Errorf("%d ops scheduled for %d instructions", len(sb.Ops), len(sb.IR.Instrs))
	}

	// Dependences.
	g := ddg.Build(sb.IR, a)
	for _, nd := range g.Nodes {
		for _, e := range nd.Succs {
			from, okF := cycleOf[nd.Instr]
			to, okT := cycleOf[e.To.Instr]
			if !okF || !okT {
				return fmt.Errorf("instruction missing from schedule")
			}
			if to-from < e.MinDelta {
				return fmt.Errorf("dependence violated: %s@%d -> %s@%d needs >= %d",
					nd.Instr, from, e.To.Instr, to, e.MinDelta)
			}
		}
	}

	// Resources.
	type slot struct{ alu, mul, l1, l2, br, cu int }
	use := make([]slot, sb.Len)
	useBus := make([]int, sb.Len)
	perCluster := make([][]slot, a.Clusters)
	for c := range perCluster {
		perCluster[c] = make([]slot, sb.Len)
	}
	l1Busy := -1
	l2Busy := make([]int, 0, 64) // issue times of L2 accesses, checked greedily

	for _, op := range sb.Ops {
		in, cy := op.Instr, op.Cycle
		if cy < 0 || cy >= sb.Len {
			return fmt.Errorf("%s at cycle %d outside block length %d", in, cy, sb.Len)
		}
		switch in.Op {
		case ir.OpXMov:
			perCluster[op.SrcCluster][cy].alu++
			useBus[cy]++
		case ir.OpMul:
			perCluster[op.Cluster][cy].alu++
			perCluster[op.Cluster][cy].mul++
		case ir.OpLoad, ir.OpStore:
			if in.Mem.Space == ir.L1 {
				perCluster[op.Cluster][cy].l1++
				if cy < l1Busy {
					return fmt.Errorf("L1 port busy at cycle %d (free at %d)", cy, l1Busy)
				}
				l1Busy = cy + machine.L1Occupancy
				if l1Busy > sb.Len {
					return fmt.Errorf("L1 access at %d not drained by block end %d", cy, sb.Len)
				}
			} else {
				perCluster[op.Cluster][cy].l2++
				l2Busy = append(l2Busy, cy)
			}
		case ir.OpBr, ir.OpCBr, ir.OpRet:
			use[cy].br++
			if cy != sb.Len-1 {
				return fmt.Errorf("terminator at cycle %d, block length %d", cy, sb.Len)
			}
		case ir.OpFused:
			// Fused ops issue on the cluster's custom unit (pipelined,
			// one per cycle), not on an ALU slot — mirroring tryPlace.
			perCluster[op.Cluster][cy].cu++
		case ir.OpNop:
		default:
			perCluster[op.Cluster][cy].alu++
		}
		_ = clusterOf
		_ = srcOf
	}
	for cy := 0; cy < sb.Len; cy++ {
		if use[cy].br > 1 {
			return fmt.Errorf("two branches at cycle %d", cy)
		}
		if useBus[cy] > a.Buses() {
			return fmt.Errorf("bus oversubscribed at cycle %d: %d > %d", cy, useBus[cy], a.Buses())
		}
		for c := 0; c < a.Clusters; c++ {
			s := perCluster[c][cy]
			if s.alu > a.ALUsPC() {
				return fmt.Errorf("cluster %d issues %d ALU ops at cycle %d (max %d)", c, s.alu, cy, a.ALUsPC())
			}
			if s.mul > a.MULsPC() {
				return fmt.Errorf("cluster %d issues %d MULs at cycle %d (max %d)", c, s.mul, cy, a.MULsPC())
			}
			if s.l1 > 1 {
				return fmt.Errorf("cluster %d issues %d L1 accesses at cycle %d", c, s.l1, cy)
			}
			if s.l2 > a.L2PathsPC() {
				return fmt.Errorf("cluster %d issues %d L2 accesses at cycle %d (max %d)", c, s.l2, cy, a.L2PathsPC())
			}
			if s.cu > 1 {
				return fmt.Errorf("cluster %d issues %d fused ops at cycle %d (custom unit is 1/cycle)", c, s.cu, cy)
			}
		}
	}
	// Greedy port feasibility for the p2 interchangeable L2 ports.
	freeAt := make([]int, a.L2Ports)
	sortInts(l2Busy)
	for _, t := range l2Busy {
		best := -1
		for i := range freeAt {
			if freeAt[i] <= t && (best < 0 || freeAt[i] > freeAt[best]) {
				best = i
			}
		}
		if best < 0 {
			return fmt.Errorf("L2 ports oversubscribed around cycle %d", t)
		}
		freeAt[best] = t + a.L2Lat
		if freeAt[best] > sb.Len {
			return fmt.Errorf("L2 access at %d not drained by block end %d", t, sb.Len)
		}
	}
	return nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
