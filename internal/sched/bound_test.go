package sched

import (
	"strings"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/opt"
)

// TestLowerBoundAdmissible is the load-bearing property of the search
// pruning layer: for every block of every (kernel, unroll,
// architecture) combination, the no-compile bound must not exceed the
// cycles the real backend schedule spends per execution of that block
// — including schedules lengthened by spill code.
func TestLowerBoundAdmissible(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 2, 4} {
		g, err := opt.Prepare(fn, u)
		if err != nil {
			t.Fatalf("Prepare(u=%d): %v", u, err)
		}
		prep := NewPrepared(g)
		for _, arch := range testArchs {
			lbs := LowerBound(prep, arch)
			if len(lbs) != len(g.Blocks) {
				t.Fatalf("u=%d %s: %d bounds for %d blocks", u, arch, len(lbs), len(g.Blocks))
			}
			res, err := CompilePrepared(nil, prep, arch, nil)
			if err != nil {
				continue // ErrNoFit etc: nothing to compare against
			}
			byName := map[string]int{}
			for _, sb := range res.Prog.Blocks {
				byName[sb.IR.Name] = sb.Len
			}
			for i, b := range g.Blocks {
				got, ok := byName[b.Name]
				if !ok {
					continue
				}
				if lbs[i] > got {
					t.Errorf("u=%d %s block %s: bound %d exceeds real schedule %d (inadmissible)",
						u, arch, b.Name, lbs[i], got)
				}
				if len(b.Instrs) > 0 && lbs[i] < 1 {
					t.Errorf("u=%d %s block %s: bound %d for nonempty block", u, arch, b.Name, lbs[i])
				}
			}
		}
	}
}

// TestLowerBoundTightOnWideMachines sanity-checks the bound is not
// vacuous: on the baseline 1-wide machine the resource terms must bite
// (bound well above 1 for the loop body), and bounds must not increase
// as the machine gets strictly more parallel at fixed latency.
func TestLowerBoundTightOnWideMachines(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := opt.Prepare(fn, 1)
	if err != nil {
		t.Fatal(err)
	}
	prep := NewPrepared(g)
	narrow := testArchs[0] // baseline
	wide := narrow
	wide.ALUs, wide.MULs, wide.Regs, wide.L2Ports = 16, 8, 512, 4
	nb := LowerBound(prep, narrow)
	wb := LowerBound(prep, wide)
	sumN, sumW := 0, 0
	for i := range nb {
		sumN += nb[i]
		sumW += wb[i]
		if wb[i] > nb[i] {
			t.Errorf("block %d: bound grew from %d to %d with strictly more resources",
				i, nb[i], wb[i])
		}
	}
	if sumN <= sumW {
		t.Errorf("narrow bound %d not above wide bound %d: resource terms never bite", sumN, sumW)
	}
}

func TestFingerprintStableAndDescriptive(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not deterministic: %q vs %q", a, b)
	}
	for _, want := range []string{"backend-v", "lat(", "spill="} {
		if !strings.Contains(a, want) {
			t.Errorf("fingerprint %q missing %q", a, want)
		}
	}
}
