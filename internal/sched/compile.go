package sched

import (
	"errors"
	"fmt"
	"sort"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/ops"
	"customfit/internal/regalloc"
	"customfit/internal/vliw"
)

// MaxSpillIterations bounds the schedule → allocate → spill loop.
const MaxSpillIterations = 32

// ErrNoFit reports that register pressure could not be brought within
// the target's register files at this unroll factor. The explorer
// treats it exactly like the paper treats the first spill: stop
// considering this unroll factor and all larger ones.
var ErrNoFit = errors.New("register pressure does not fit")

// DebugCompileLog, when set, receives per-iteration compile diagnostics
// (test instrumentation).
var DebugCompileLog func(format string, args ...interface{})

// Result is a completed compilation for one architecture.
type Result struct {
	Prog *vliw.Program
	// Spilled is the number of virtual registers spilled or
	// rematerialized to make the program fit the register files — the
	// explorer's unroll-until-spill signal.
	Spilled int
	// Iterations is how many schedule/allocate rounds were needed.
	Iterations int
}

// Compile runs the backend on a prepared (optimized, unrolled) kernel:
// cluster partitioning, list scheduling, register allocation, and the
// spill iteration until the program fits the target's register files.
// The input function is not mutated.
func Compile(prepared *ir.Func, arch machine.Arch) (*Result, error) {
	return CompileSpan(nil, prepared, arch)
}

// CompileSpan is Compile with each backend stage (partition, schedule,
// regalloc, spill) recorded as telemetry spans nested under sp.
func CompileSpan(sp *obs.Span, prepared *ir.Func, arch machine.Arch) (*Result, error) {
	return CompilePrepared(sp, NewPrepared(prepared), arch, nil)
}

// CompilePrepared is the explorer's hot path: it compiles a shared
// Prepared kernel for one architecture, reusing the kernel's cached
// dependence skeletons (per L2 latency class) and the caller's Scratch
// arena. prep may be shared across concurrent workers; sc may not
// (pass nil to allocate a private one). The prepared IR is not mutated.
func CompilePrepared(sp *obs.Span, prep *Prepared, arch machine.Arch, sc *Scratch) (*Result, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	csp := obs.Under(sp, "sched")
	if csp != nil {
		csp.Str("kernel", prep.F.Name).Str("arch", arch.String())
	}
	defer csp.End()
	if sc == nil {
		sc = NewScratch()
	}
	work := prep.F.Clone()
	if !arch.Ops.Empty() {
		ops.Rewrite(work, arch.Ops)
	}
	if arch.MinMax {
		FuseMinMax(work)
	}
	spilled := 0
	alreadySpilled := map[ir.Reg]bool{}
	cap := arch.RegsPC() - 2
	// The cached skeletons describe prep.F's pristine blocks, so they
	// apply only while work is instruction-identical to them: single
	// cluster (partitioning inserts no copies), no min/max or custom-op
	// fusion, and no spill rewrites yet.
	singleCluster := arch.Clusters <= 1
	pristine := arch.Ops.Empty() && !arch.MinMax
	for iter := 1; iter <= MaxSpillIterations; iter++ {
		var g *ir.Func
		psp := csp.Child("sched.partition").Int("iter", int64(iter))
		var pl *Placement
		if singleCluster {
			// Partitioning a single-cluster machine only stamps cluster
			// 0 on every instruction — idempotent, so the work copy is
			// scheduled in place with no per-iteration clone at all.
			g = work
			pl = Partition(g, arch)
		} else {
			// Clustered machines rewrite the instruction stream (copy
			// insertion, operand localization), so partitioning clones:
			// one fused pass instead of Clone followed by Partition.
			g, pl = PartitionClone(work, arch)
		}
		psp.End()
		var skels []*ddg.Skeleton
		if singleCluster && pristine && iter == 1 {
			skels = prep.skeletons(arch)
		}
		// After two failed greedy rounds, fall back to program-order
		// priority: a valid execution order whose pressure tracks the
		// source's depth-first evaluation, trading ILP for fit.
		inOrder := iter >= 3
		ssp := csp.Child("sched.schedule").Int("iter", int64(iter))
		prog, lv, err := scheduleFunc(g, arch, pl, cap, inOrder, skels, sc)
		if err != nil {
			ssp.End()
			return nil, err
		}
		ssp.Int("bundles", int64(prog.BundleCount())).Int("ops", int64(prog.OpCount())).End()
		ra := regalloc.AllocateWith(csp, prog, lv, sc.RA)
		if DebugCompileLog != nil {
			DebugCompileLog("iter %d inorder=%v cap=%d maxlive=%v fits=%v bundles=%d", iter, inOrder, cap, ra.MaxLive, ra.Fits, prog.BundleCount())
		}
		if ra.Fits {
			prog.Spills = spilled
			prog.MaxLive = ra.MaxLive
			prog.PhysAssign = ra.Assign
			csp.Int("iterations", int64(iter)).Int("spilled", int64(spilled))
			return &Result{Prog: prog, Spilled: spilled, Iterations: iter}, nil
		}
		spsp := csp.Child("sched.spill").Int("iter", int64(iter))
		// Spill candidates must exist in the pre-partition IR (ids
		// below work's register count; partitioning appends copies).
		// Prefer the registers the scheduler blamed for its pressure
		// stalls; fall back to the allocator's longest live ranges.
		var victims []ir.Reg
		limit := ir.Reg(work.NumRegs())
		// Spill decisively: re-partitioning between rounds adds ±2-3 of
		// placement noise per cluster, so small batches just oscillate.
		// Scale with the total overflow across clusters.
		want := 4
		total := 0
		for _, o := range ra.Overflow {
			total += o
		}
		if 2*total+4 > want {
			want = 2*total + 4
		}
		for _, v := range ra.Victims {
			if len(victims) >= want {
				break
			}
			if v < limit && !alreadySpilled[v] {
				victims = append(victims, v)
				alreadySpilled[v] = true
			}
		}
		overflowing := map[int]bool{}
		for c, o := range ra.Overflow {
			if o > 0 {
				overflowing[c] = true
			}
		}
		type blamed struct {
			r ir.Reg
			n int
		}
		var byBlame []blamed
		for r, n := range prog.Blame {
			if n > 0 && ir.Reg(r) < limit && !alreadySpilled[ir.Reg(r)] &&
				r < len(prog.RegCluster) && overflowing[prog.RegCluster[r]] {
				byBlame = append(byBlame, blamed{ir.Reg(r), n})
			}
		}
		sort.Slice(byBlame, func(i, j int) bool { return byBlame[i].n > byBlame[j].n })
		for _, bl := range byBlame {
			victims = append(victims, bl.r)
			alreadySpilled[bl.r] = true
			if len(victims) >= want {
				break
			}
		}
		if len(victims) == 0 {
			spsp.End()
			return nil, fmt.Errorf("sched %s on %s: pressure %v exceeds %d regs/cluster with no spillable candidates",
				prep.F.Name, arch, ra.MaxLive, ra.Capacity)
		}
		n := SpillRewrite(work, victims)
		spsp.Int("victims", int64(len(victims))).Int("rewritten", int64(n)).End()
		if n == 0 {
			return nil, fmt.Errorf("sched %s on %s: spill made no progress (pressure %v)",
				prep.F.Name, arch, ra.MaxLive)
		}
		spilled += n
		// The cap stays fixed: shrinking it only multiplies forced
		// placements. In-order mode plus spilling is what converges.
		// Deliberately no Clean here: CSE would merge the per-use
		// reloads back into one long-lived value and undo the spill.
	}
	return nil, fmt.Errorf("sched %s on %s after %d spill rounds: %w",
		prep.F.Name, arch, MaxSpillIterations, ErrNoFit)
}
