package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sim"
)

// Random-kernel torture: generate kernels with random arithmetic
// bodies, loop-carried state and stores, compile them for random
// architectures at random unroll factors, and require that the
// cycle-accurate simulation of the scheduled program produces exactly
// the memory image of the plain IR interpreter. This closes the loop
// over every backend component at once: partitioning, scheduling,
// pressure throttling, spilling and the simulator.

// randomKernel emits a CKC kernel whose loop body mixes pure
// expressions over in[i], loop-carried scalars, and scratch stores.
func randomKernel(r *rand.Rand) string {
	expr := func(vars []string, depth int) string {
		var gen func(d int) string
		ops := []string{"+", "-", "*", "&", "|", "^"}
		gen = func(d int) string {
			if d <= 0 || r.Intn(3) == 0 {
				if r.Intn(2) == 0 {
					return vars[r.Intn(len(vars))]
				}
				return fmt.Sprintf("%d", r.Intn(64)-32)
			}
			switch r.Intn(6) {
			case 0:
				return fmt.Sprintf("(%s >> %d)", gen(d-1), r.Intn(6))
			case 1:
				return fmt.Sprintf("(%s << %d)", gen(d-1), r.Intn(4))
			case 2:
				return fmt.Sprintf("(%s ? %s : %s)", gen(d-1), gen(d-1), gen(d-1))
			case 3:
				return fmt.Sprintf("min(%s, %s)", gen(d-1), gen(d-1))
			default:
				return fmt.Sprintf("(%s %s %s)", gen(d-1), ops[r.Intn(len(ops))], gen(d-1))
			}
		}
		return gen(depth)
	}
	nCarried := 1 + r.Intn(3)
	src := "kernel fz(int in[], int out[], int n) {\n\tint i;\n"
	vars := []string{"v"}
	for k := 0; k < nCarried; k++ {
		src += fmt.Sprintf("\tint s%d;\n\ts%d = %d;\n", k, k, r.Intn(100))
		vars = append(vars, fmt.Sprintf("s%d", k))
	}
	src += "\tfor (i = 0; i < n; i++) {\n\t\tint v;\n\t\tv = in[i];\n"
	for k := 0; k < nCarried; k++ {
		src += fmt.Sprintf("\t\ts%d = %s;\n", k, expr(vars, 3))
	}
	src += fmt.Sprintf("\t\tout[i] = %s;\n\t}\n", expr(vars, 3))
	// Final state visible after the loop.
	src += "\tout[n] = s0;\n}\n"
	return src
}

func randomArch(r *rand.Rand, space []machine.Arch) machine.Arch {
	return space[r.Intn(len(space))]
}

func TestRandomKernelsAcrossRandomMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles dozens of random kernels")
	}
	r := rand.New(rand.NewSource(424242))
	space := machine.FullSpace()
	trials := 150
	for trial := 0; trial < trials; trial++ {
		src := randomKernel(r)
		fn, err := cc.CompileKernel(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		u := []int{1, 2, 4}[r.Intn(3)]
		prepared, err := opt.Prepare(fn, u)
		if err != nil {
			t.Fatalf("trial %d: prepare u=%d: %v", trial, u, err)
		}
		arch := randomArch(r, space)
		res, err := Compile(prepared, arch)
		if err != nil {
			// Pressure non-convergence is a legal outcome at high unroll
			// on starved machines; anything else is a bug.
			t.Fatalf("trial %d: compile on %s u=%d: %v\n%s", trial, arch, u, err, src)
		}
		if err := Validate(res.Prog); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := int32(5 + r.Intn(20))
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(r.Intn(512) - 256)
		}
		ref := make([]int32, n+1)
		got := make([]int32, n+1)
		if _, err := ir.Interp(fn, ir.NewEnv(n).Bind("in", in).Bind("out", ref)); err != nil {
			t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
		}
		if _, err := sim.Run(res.Prog, ir.NewEnv(n).Bind("in", in).Bind("out", got)); err != nil {
			t.Fatalf("trial %d: sim on %s: %v\n%s", trial, arch, err, src)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("trial %d on %s u=%d: out[%d] = %d, want %d\n%s",
					trial, arch, u, i, got[i], ref[i], src)
			}
		}
		// And once more through the physical register assignment.
		gotPhys := make([]int32, n+1)
		if _, err := sim.RunPhysical(res.Prog, ir.NewEnv(n).Bind("in", in).Bind("out", gotPhys)); err != nil {
			t.Fatalf("trial %d: physical sim on %s: %v\n%s", trial, arch, err, src)
		}
		for i := range ref {
			if ref[i] != gotPhys[i] {
				t.Fatalf("trial %d on %s u=%d (physical): out[%d] = %d, want %d\n%s",
					trial, arch, u, i, gotPhys[i], ref[i], src)
			}
		}
	}
}
