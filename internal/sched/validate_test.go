package sched

import (
	"strings"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/vliw"
)

// compileValid returns a known-good program to corrupt.
func compileValid(t *testing.T) *vliw.Program {
	t.Helper()
	fn, err := cc.CompileKernel(`
		kernel v(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i] = in[i] * 5 + (in[i] >> 2);
			}
		}`)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prepared, machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Prog); err != nil {
		t.Fatalf("clean program invalid: %v", err)
	}
	return res.Prog
}

// loopBlock returns the largest scheduled block (the unrolled loop).
func loopBlock(p *vliw.Program) *vliw.Block {
	var best *vliw.Block
	for _, sb := range p.Blocks {
		if best == nil || len(sb.Ops) > len(best.Ops) {
			best = sb
		}
	}
	return best
}

func TestValidateCatchesDependenceViolation(t *testing.T) {
	p := compileValid(t)
	lb := loopBlock(p)
	// Force a consumer to issue at cycle 0 (before its producers).
	moved := false
	for i := range lb.Ops {
		if lb.Ops[i].Cycle > 2 && lb.Ops[i].Instr.Op.HasDest() {
			lb.Ops[i].Cycle = 0
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("no candidate op")
	}
	err := Validate(p)
	if err == nil {
		t.Fatal("corrupted schedule validated")
	}
	if !strings.Contains(err.Error(), "violated") && !strings.Contains(err.Error(), "issues") &&
		!strings.Contains(err.Error(), "busy") {
		t.Errorf("unexpected error kind: %v", err)
	}
}

func TestValidateCatchesResourceOversubscription(t *testing.T) {
	p := compileValid(t)
	lb := loopBlock(p)
	// Pile every ALU op of the block into cycle of the first op while
	// keeping dependence order intact is hard; instead clone one op
	// several times into the same cycle to blow the ALU limit.
	var alu *vliw.Op
	for i := range lb.Ops {
		if lb.Ops[i].Instr.Op.IsALU() {
			alu = &lb.Ops[i]
			break
		}
	}
	if alu == nil {
		t.Skip("no ALU op")
	}
	for k := 0; k < 8; k++ {
		dup := *alu
		dup.Instr = dup.Instr.Clone()
		lb.Ops = append(lb.Ops, dup)
	}
	if err := Validate(p); err == nil {
		t.Fatal("oversubscribed schedule validated")
	}
}

func TestValidateCatchesEarlyTerminator(t *testing.T) {
	p := compileValid(t)
	lb := loopBlock(p)
	for i := range lb.Ops {
		if lb.Ops[i].Instr.Op.IsTerminator() {
			lb.Ops[i].Cycle = 0
			break
		}
	}
	if err := Validate(p); err == nil {
		t.Fatal("early terminator validated")
	}
}

func TestValidateCatchesMissingOp(t *testing.T) {
	p := compileValid(t)
	lb := loopBlock(p)
	lb.Ops = lb.Ops[:len(lb.Ops)-1]
	if err := Validate(p); err == nil {
		t.Fatal("schedule with missing op validated")
	}
}
