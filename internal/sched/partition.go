// Package sched implements the architecture-dependent backend: cluster
// partitioning with explicit inter-cluster moves, cycle-driven list
// scheduling against the machine's resource model, and the
// schedule/allocate/spill iteration driver.
package sched

import (
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

// Placement is the result of cluster partitioning: a home cluster for
// every virtual register. Instructions carry their executing cluster in
// ir.Instr.Cluster (set by Partition). For an OpXMov, that is the
// destination cluster and the issue slot is charged to the source.
type Placement struct {
	RegCluster []int
}

// Cluster returns the executing (destination) cluster of in.
func (pl *Placement) Cluster(in *ir.Instr) int {
	return int(in.Cluster)
}

// SrcCluster returns the cluster whose ALU issue slot in occupies: the
// source cluster for inter-cluster moves, the executing cluster
// otherwise.
func (pl *Placement) SrcCluster(in *ir.Instr) int {
	if in.Op == ir.OpXMov && in.Args[0].IsReg() {
		return pl.RegCluster[in.Args[0].Reg]
	}
	return int(in.Cluster)
}

// balanceWeight prices an inter-cluster copy against load imbalance: a
// cluster must be ahead by this many operations before moving an op
// away from its operands wins. High enough that dependence chains stay
// cluster-local (each hop costs LatMove plus a bus slot) while
// independent chains — unrolled iterations, color channels — still
// spread; the scatter diagrams are very sensitive to this constant.
const balanceWeight = 8

// Partition assigns every virtual register and instruction to a cluster
// and inserts explicit OpXMov copies wherever an operation consumes a
// value homed in another cluster, mutating f in place.
//
// The policy is a bottom-up greedy in the spirit of the BUG family:
// walk each block in program (dependence) order; place each value on
// the cluster minimizing inter-cluster copies, with a load-balance term
// so wide expression trees spread across clusters instead of clumping
// where their first operands happen to live. Registers live across
// blocks get a fixed home cluster at their first definition; scalar
// parameters arrive on cluster 0; the branch unit (and so every branch
// condition) lives on cluster 0.
func Partition(f *ir.Func, arch machine.Arch) *Placement {
	return partition(f, f, nil, arch)
}

// PartitionClone partitions a copy of src, leaving src untouched: the
// clone and the cluster assignment are produced in one fused pass over
// the instruction stream instead of a deep Clone followed by an
// in-place Partition — the compile driver's per-spill-iteration path
// for clustered machines.
func PartitionClone(src *ir.Func, arch machine.Arch) (*ir.Func, *Placement) {
	nf, bmap := src.CloneShell()
	pl := partition(src, nf, bmap, arch)
	nf.ComputeCFG()
	return nf, pl
}

// partition runs the partitioner reading src's blocks and writing dst's
// (dst == src for the in-place form). bmap, non-nil only in clone mode,
// remaps cloned branch targets into dst.
func partition(src, dst *ir.Func, bmap map[*ir.Block]*ir.Block, arch machine.Arch) *Placement {
	p := &partitioner{
		f:     dst,
		bmap:  bmap,
		nc:    arch.Clusters,
		pl:    &Placement{},
		homed: map[ir.Reg]bool{},
		fixed: map[ir.Reg]bool{},
	}
	p.pl.RegCluster = make([]int, src.NumRegs())
	if p.nc <= 1 {
		for bi, b := range src.Blocks {
			if bmap == nil {
				for _, in := range b.Instrs {
					in.Cluster = 0
				}
				continue
			}
			nb := dst.Blocks[bi]
			nb.Instrs = make([]*ir.Instr, 0, len(b.Instrs))
			for _, in := range b.Instrs {
				cp := p.emitCopy(in)
				cp.Cluster = 0
				nb.Instrs = append(nb.Instrs, cp)
			}
		}
		return p.pl
	}
	lv := opt.ComputeLiveness(src)
	for _, b := range src.Blocks {
		for r := ir.Reg(0); int(r) < src.NumRegs(); r++ {
			if lv.LiveIn(b, r) {
				p.fixed[r] = true
			}
		}
	}
	for _, prm := range src.Params {
		p.setHome(prm.Reg, 0)
	}
	for bi, b := range src.Blocks {
		p.block(b, dst.Blocks[bi])
	}
	return p.pl
}

type partitioner struct {
	f     *ir.Func
	bmap  map[*ir.Block]*ir.Block // nil when partitioning in place
	nc    int
	pl    *Placement
	homed map[ir.Reg]bool
	fixed map[ir.Reg]bool
}

// emitCopy clones in for the output function in clone mode (remapping
// branch targets), or returns in itself when partitioning in place.
func (p *partitioner) emitCopy(in *ir.Instr) *ir.Instr {
	if p.bmap == nil {
		return in
	}
	cp := in.Clone()
	for i, t := range cp.Targets {
		cp.Targets[i] = p.bmap[t]
	}
	return cp
}

func (p *partitioner) setHome(r ir.Reg, c int) {
	for int(r) >= len(p.pl.RegCluster) {
		p.pl.RegCluster = append(p.pl.RegCluster, 0)
	}
	p.pl.RegCluster[r] = c
	p.homed[r] = true
}

func (p *partitioner) homeOf(r ir.Reg) (int, bool) {
	if !p.homed[r] {
		return 0, false
	}
	return p.pl.RegCluster[r], true
}

type copyKey struct {
	r ir.Reg
	c int
}

func (p *partitioner) block(b, dst *ir.Block) {
	load := make([]int, p.nc)
	memLoad := make([]int, p.nc)
	copies := map[copyKey]ir.Reg{}
	var out []*ir.Instr

	// Live-value estimate per cluster, maintained in program order, so
	// placement balances register pressure as well as issue slots.
	liveCnt := make([]int, p.nc)
	remaining := map[ir.Reg]int{}
	isLive := map[ir.Reg]bool{}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			if a.IsReg() {
				remaining[a.Reg]++
			}
		}
	}
	noteUse := func(a ir.Operand) {
		if !a.IsReg() {
			return
		}
		remaining[a.Reg]--
		if remaining[a.Reg] <= 0 && isLive[a.Reg] {
			isLive[a.Reg] = false
			if home, ok := p.homeOf(a.Reg); ok {
				liveCnt[home]--
			}
		}
	}
	noteDef := func(r ir.Reg, c int) {
		if r == ir.NoReg || isLive[r] {
			return
		}
		isLive[r] = true
		liveCnt[c]++
	}

	// Loads with immediate addresses (spill reloads, rematerialized
	// constants) have no operand anchoring them to a cluster, so their
	// placement is deferred until the first consumer: landing them in
	// the consumer's cluster avoids a long-lived cross-cluster copy —
	// critical under register pressure, when these loads are exactly
	// the values being staged through memory.
	pending := map[ir.Reg]*ir.Instr{}
	var pendingOrder []ir.Reg // deterministic end-of-block resolution
	resolvePending := func(r ir.Reg, c int) {
		ld, ok := pending[r]
		if !ok {
			return
		}
		delete(pending, r)
		p.setHome(r, c)
		ld.Cluster = int16(c)
		memLoad[c]++
	}

	localize := func(a ir.Operand, c int) ir.Operand {
		if !a.IsReg() {
			return a
		}
		src, ok := p.homeOf(a.Reg)
		if !ok {
			p.setHome(a.Reg, c) // defensive adoption
			return a
		}
		if src == c {
			return a
		}
		if cp, ok := copies[copyKey{a.Reg, c}]; ok {
			return ir.R(cp)
		}
		nr := p.f.NewReg()
		p.setHome(nr, c)
		mv := ir.NewInstr(ir.OpXMov, nr, ir.R(a.Reg))
		mv.Cluster = int16(c)
		out = append(out, mv)
		copies[copyKey{a.Reg, c}] = nr
		load[src]++ // the move occupies an issue slot on the source cluster
		noteDef(nr, c)
		return ir.R(nr)
	}

	chooseCluster := func(args []ir.Operand, isMem bool) int {
		best, bestCost := 0, int(^uint(0)>>1)
		for c := 0; c < p.nc; c++ {
			cost := 0
			for _, a := range args {
				if !a.IsReg() {
					continue
				}
				if home, ok := p.homeOf(a.Reg); ok && home != c {
					if _, cached := copies[copyKey{a.Reg, c}]; !cached {
						cost += balanceWeight
					}
				}
			}
			if isMem {
				cost += memLoad[c]
			} else {
				cost += load[c]
			}
			cost += liveCnt[c]
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		return best
	}

	invalidate := func(r ir.Reg) {
		for c := 0; c < p.nc; c++ {
			delete(copies, copyKey{r, c})
		}
	}

	resolveArgs := func(in *ir.Instr, c int) {
		for _, a := range in.Args {
			if a.IsReg() {
				resolvePending(a.Reg, c)
			}
		}
	}

	for _, orig := range b.Instrs {
		in := p.emitCopy(orig)
		switch in.Op {
		case ir.OpBr, ir.OpRet:
			in.Cluster = 0
			out = append(out, in)
		case ir.OpCBr:
			resolveArgs(in, 0)
			orig := in.Args[0]
			in.Args[0] = localize(in.Args[0], 0)
			noteUse(orig)
			in.Cluster = 0
			out = append(out, in)
		case ir.OpStore:
			c := chooseCluster(in.Args, true)
			resolveArgs(in, c)
			for i := range in.Args {
				orig := in.Args[i]
				in.Args[i] = localize(in.Args[i], c)
				noteUse(orig)
			}
			in.Cluster = int16(c)
			memLoad[c]++
			out = append(out, in)
		default:
			// Immediate-address loads wait for their first consumer.
			if in.Op == ir.OpLoad && in.Args[0].IsImm() && in.Dest != ir.NoReg &&
				!p.fixed[in.Dest] {
				pending[in.Dest] = in
				pendingOrder = append(pendingOrder, in.Dest)
				out = append(out, in)
				continue
			}
			// Value-producing operation.
			c, forced := 0, false
			if in.Dest != ir.NoReg && p.fixed[in.Dest] {
				if home, ok := p.homeOf(in.Dest); ok {
					c, forced = home, true
				}
			}
			if !forced {
				c = chooseCluster(in.Args, in.Op == ir.OpLoad)
			}
			resolveArgs(in, c)
			if in.Op == ir.OpMov && in.Args[0].IsReg() {
				if home, ok := p.homeOf(in.Args[0].Reg); ok && home != c {
					// A move whose source lives elsewhere IS an
					// inter-cluster move.
					in.Op = ir.OpXMov
					in.Cluster = int16(c)
					load[home]++
					noteUse(in.Args[0])
					noteDef(in.Dest, c)
					p.define(in, c, invalidate)
					out = append(out, in)
					continue
				}
			}
			for i := range in.Args {
				orig := in.Args[i]
				in.Args[i] = localize(in.Args[i], c)
				noteUse(orig)
			}
			in.Cluster = int16(c)
			if in.Op == ir.OpLoad {
				memLoad[c]++
			} else {
				load[c]++
			}
			noteDef(in.Dest, c)
			p.define(in, c, invalidate)
			out = append(out, in)
		}
	}
	// Loads never consumed inside this block take the balanced default,
	// resolved in program order for deterministic code generation.
	for _, r := range pendingOrder {
		ld, ok := pending[r]
		if !ok {
			continue // already resolved at a use
		}
		c := chooseCluster(ld.Args, true)
		delete(pending, r)
		p.setHome(r, c)
		ld.Cluster = int16(c)
		memLoad[c]++
	}
	dst.Instrs = out
}

func (p *partitioner) define(in *ir.Instr, c int, invalidate func(ir.Reg)) {
	if in.Dest == ir.NoReg {
		return
	}
	p.setHome(in.Dest, c)
	invalidate(in.Dest)
}
