package sched

import (
	"fmt"

	"customfit/internal/ir"
	"customfit/internal/machine"
)

// BackendVersion is bumped whenever the backend's code generation
// changes in a way that can alter cycle counts — scheduler heuristics,
// spill policy, partitioning, allocation. It feeds the compiler
// fingerprint that content-addresses the persistent evaluation cache
// (internal/evcache): bumping it invalidates every cached sweep.
const BackendVersion = 1

// Fingerprint identifies the backend's code-generation behavior for
// content-addressed caching: the manually-bumped BackendVersion plus
// the fixed machine-template constants the schedule depends on, so a
// latency-model change invalidates cached sweeps even without a
// version bump.
func Fingerprint() string {
	return fmt.Sprintf("backend-v%d;lat(alu=%d,mul=%d,l1=%d/%d,mv=%d);buses=%d;spill=%d;reserve=%d;ops-v1",
		BackendVersion, machine.LatALU, machine.LatMUL, machine.LatL1, machine.L1Occupancy,
		machine.LatMove, machine.MaxBuses, MaxSpillIterations, pressureReserve)
}

// opCounts tallies one pristine block's operation classes, the inputs
// to the resource-side lower bounds. Architecture-independent, so it is
// computed once per Prepared kernel.
type opCounts struct {
	alu, mul, l1, l2, br int
}

// countsOf returns per-block operation-class tallies, built on first
// use and cached on the Prepared kernel.
func (p *Prepared) countsOf() []opCounts {
	p.countsOnce.Do(func() {
		p.counts = make([]opCounts, len(p.F.Blocks))
		for i, b := range p.F.Blocks {
			c := &p.counts[i]
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpMul:
					c.alu++
					c.mul++
				case ir.OpLoad, ir.OpStore:
					if in.Mem.Space == ir.L1 {
						c.l1++
					} else {
						c.l2++
					}
				case ir.OpBr, ir.OpCBr, ir.OpRet:
					c.br++
				case ir.OpNop:
				default: // plain ALU class (mov, select, compares, arithmetic)
					c.alu++
				}
			}
		}
	})
	return p.counts
}

// LowerBound computes, without scheduling, an admissible per-block
// lower bound (in cycles) on the backend's schedule length for prep's
// kernel on arch — in the spirit of the resource/recurrence bounds
// used by optimal software pipelining. Per block it takes the max of:
//
//   - the latency-weighted critical-path height from the cached
//     ddg.Skeleton (recurrence bound; only when the block ends in a
//     terminator, whose drain edges make the height an issue-cycle
//     bound);
//   - ⌈ALU-class ops / total ALU issue slots⌉ and the multiply analog
//     (⌈muls / (MULsPC·Clusters)⌉);
//   - L1 accesses (the single L1 port accepts one access per cycle);
//   - ⌈L2 accesses · l2 / p2⌉ — each access holds one of the p2
//     non-pipelined ports for the full l2 latency (falling back to
//     ⌈L2 accesses / p2⌉ for terminator-less blocks, where occupancy
//     may drain past the block end);
//   - branch-unit serialization (one branch per cycle).
//
// Every component only ignores constraints the scheduler enforces
// (pressure throttling, per-cluster memory paths, copy insertion,
// spill code), all of which can only lengthen the real schedule, so
// bound ≤ actual holds for every architecture and spill outcome. The
// search layer uses it to prove candidates cannot beat an incumbent
// without paying for a compile.
func LowerBound(prep *Prepared, arch machine.Arch) []int {
	skels := prep.skeletons(arch)
	counts := prep.countsOf()
	aluCap := arch.ALUsPC() * arch.Clusters
	mulCap := arch.MULsPC() * arch.Clusters
	out := make([]int, len(skels))
	for i, sk := range skels {
		c := counts[i]
		lb := 0
		if sk.HasTerm {
			lb = sk.CriticalPath()
		} else if len(sk.Heights) > 0 {
			lb = 1
		}
		if v := ceil(c.alu, aluCap); v > lb {
			lb = v
		}
		if v := ceil(c.mul, mulCap); v > lb {
			lb = v
		}
		if v := c.l1 * machine.L1Occupancy; v > lb {
			lb = v
		}
		l2 := ceil(c.l2, arch.L2Ports)
		if sk.HasTerm {
			l2 = ceil(c.l2*arch.L2Lat, arch.L2Ports)
		}
		if l2 > lb {
			lb = l2
		}
		if c.br > lb {
			lb = c.br
		}
		out[i] = lb
	}
	return out
}

func ceil(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
