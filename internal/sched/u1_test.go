package sched

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

func TestU1CompilesEverywhere(t *testing.T) {
	archs := []machine.Arch{
		machine.Baseline,
		{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8},
		{ALUs: 16, MULs: 4, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 16},
		{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 8, Clusters: 1},
	}
	for _, b := range bench.All() {
		fn, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		prepared, err := opt.Prepare(fn, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, arch := range archs {
			res, err := Compile(prepared, arch)
			if err != nil {
				t.Errorf("%s u=1 %s: %v", b.Name, arch, err)
				continue
			}
			t.Logf("%s u=1 %s: spilled=%d iters=%d", b.Name, arch, res.Spilled, res.Iterations)
		}
	}
}
