package sched

import (
	"sync"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/ops"
	"customfit/internal/opt"
	"customfit/internal/regalloc"
	"customfit/internal/vliw"
)

// Delta compilation: the explorer's stochastic strategies evaluate
// one-parameter neighbors of architectures they have already compiled,
// so almost all backend work is provably repeatable. A deltaState
// caches, per (Clusters, MinMax) class of one Prepared kernel, the
// transforms that rewrite the instruction stream (min/max fusion,
// cluster partitioning) together with their liveness analysis, then
// keeps a small per-block cache of finished schedules keyed by the
// exact resource parameters each block can observe plus the dynamic
// certificates scheduleBlock records (schedCert). A second, tiny memo
// keyed by the identity of the per-block schedules caches the register
// allocator's verdict, so a fully warm neighbor move performs no
// scheduling and no allocation at all — just cache probes and program
// assembly out of the Scratch arena.
//
// Correctness is by reconstruction, not approximation: a cached block
// is reused only when every architecture parameter the scheduler read
// while building it compares equal (or provably never mattered — see
// blockInfo and schedCert), so the delta path returns bit-identical
// programs to CompilePrepared's first iteration. Anything the delta
// path cannot prove — a spill, a scheduler error, a pressure-bound
// block under a different budget — falls back to the full driver.

// deltaKey selects a cached partition class. Custom-op rewriting,
// min/max fusion and cluster partitioning are the only transforms that
// rewrite the instruction stream before scheduling, and each reads
// exactly one architecture parameter (Ops, MinMax, Clusters). The ops
// component is the enabled-spec content key, so two masks enabling the
// same specs share a class.
type deltaKey struct {
	clusters int
	minmax   bool
	ops      string
}

// blockInfo records which architecture parameters a block's
// instructions can observe during scheduling. A parameter no
// instruction reads cannot affect the block's schedule, so cached
// entries ignore it when matching.
type blockInfo struct {
	hasALU bool // any op occupying an ALU issue slot (incl. mul, xmov)
	hasMul bool // any multiply (reads MULsPC)
	hasL2  bool // any L2 access (reads L2PathsPC/L2Ports/L2Lat, and the
	// skeleton's latency/occupancy edges depend on L2Lat)
}

// blockEntry is one cached block schedule: the exact parameters it was
// built under, the certificates that extend its validity (schedCert),
// and the finished immutable schedule.
type blockEntry struct {
	id      uint32 // state-unique, never reused (allocMemo identity)
	aluPC   int
	mulPC   int
	l2Lat   int
	l2Ports int
	capEff  int // effective (clamped) live-value budget
	budget  int // per-cycle ready-scan budget
	cert    schedCert
	sb      *vliw.Block
}

// allocEntry memoizes one successful register allocation over a
// particular combination of cached block schedules (identified by
// entry ids). maxPhys is the highest physical register the coloring
// used: any capacity above both maxLive and maxPhys reproduces the
// identical allocation, because the lowest-free-register search never
// consults capacity below the registers it actually assigns.
type allocEntry struct {
	ids     []uint32
	maxLive []int
	assign  []int
	maxPhys int
}

const (
	// deltaBlockEntries caps cached schedules per block per state; the
	// ring evicts round-robin. Results never depend on cache contents,
	// only time does, so the bound is purely a memory ceiling for
	// full-space sweeps.
	deltaBlockEntries = 8
	// deltaAllocEntries caps memoized allocation verdicts per state.
	deltaAllocEntries = 8
)

// deltaState caches the partition class's compile artifacts. The
// partitioned clone, placement, liveness and block infos are immutable
// after the once; the schedule/alloc caches are mutex-guarded. Safe
// for concurrent use by many workers.
type deltaState struct {
	once   sync.Once
	g      *ir.Func
	pl     *Placement
	lv     *opt.Liveness
	info   []blockInfo
	shared bool // pristine single-cluster: reuse Prepared's skeletons

	mu       sync.Mutex
	nextID   uint32
	blocks   [][]blockEntry
	blockPos []int
	skels    map[int]*skelSet // own per-L2Lat skeletons when !shared
	allocs   []allocEntry
	allocPos int
}

// delta returns the state for arch's partition class, building it on
// first use (once per class, off the cache lock).
func (p *Prepared) delta(arch machine.Arch) *deltaState {
	key := deltaKey{clusters: arch.Clusters, minmax: arch.MinMax, ops: arch.Ops.Key()}
	p.mu.Lock()
	if p.deltas == nil {
		p.deltas = make(map[deltaKey]*deltaState)
	}
	ds := p.deltas[key]
	if ds == nil {
		ds = &deltaState{}
		p.deltas[key] = ds
	}
	p.mu.Unlock()
	ds.once.Do(func() { ds.build(p.F, arch) })
	return ds
}

// build replays exactly what CompilePrepared's first iteration does to
// the instruction stream for this class: clone, optionally rewrite
// custom ops and fuse min/max, partition. The clone keeps every
// per-compile mutation off the shared Prepared (Partition stamps
// clusters in place, and ComputeLiveness recomputes the CFG).
func (ds *deltaState) build(src *ir.Func, arch machine.Arch) {
	work := src.Clone()
	if !arch.Ops.Empty() {
		ops.Rewrite(work, arch.Ops)
	}
	if arch.MinMax {
		FuseMinMax(work)
	}
	if arch.Clusters <= 1 {
		ds.g = work
		ds.pl = Partition(work, arch)
	} else {
		ds.g, ds.pl = PartitionClone(work, arch)
	}
	ds.shared = arch.Clusters <= 1 && !arch.MinMax && arch.Ops.Empty()
	ds.lv = opt.ComputeLiveness(ds.g)
	ds.info = make([]blockInfo, len(ds.g.Blocks))
	ds.blocks = make([][]blockEntry, len(ds.g.Blocks))
	ds.blockPos = make([]int, len(ds.g.Blocks))
	for i, b := range ds.g.Blocks {
		bi := &ds.info[i]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMul:
				bi.hasALU, bi.hasMul = true, true
			case ir.OpXMov:
				bi.hasALU = true
			case ir.OpLoad, ir.OpStore:
				if in.Mem.Space != ir.L1 {
					bi.hasL2 = true
				}
			case ir.OpFused:
				// Custom ops issue on the per-cluster custom unit: fixed
				// one-per-cycle throughput and a spec-carried latency, so
				// they observe no matchable architecture parameter.
			case ir.OpBr, ir.OpCBr, ir.OpRet, ir.OpNop:
			default: // plain ALU class, mirroring resources.tryPlace
				bi.hasALU = true
			}
		}
	}
}

// skeletons returns per-block dependence skeletons for arch's L2
// latency class over the state's partitioned function. The pristine
// single-cluster state shares the Prepared's skeleton cache (its
// blocks are instruction-identical); fused or clustered states keep
// their own, which extends skeleton reuse to machines the original
// driver rebuilt them for every compile.
func (ds *deltaState) skeletons(p *Prepared, arch machine.Arch) []*ddg.Skeleton {
	if ds.shared {
		return p.skeletons(arch)
	}
	ds.mu.Lock()
	if ds.skels == nil {
		ds.skels = make(map[int]*skelSet)
	}
	s := ds.skels[arch.L2Lat]
	if s == nil {
		s = &skelSet{}
		ds.skels[arch.L2Lat] = s
	}
	ds.mu.Unlock()
	s.once.Do(func() {
		s.blocks = make([]*ddg.Skeleton, len(ds.g.Blocks))
		for i, b := range ds.g.Blocks {
			s.blocks[i] = ddg.BuildSkeleton(b, arch)
		}
	})
	return s.blocks
}

// deltaParams are the arch-derived values a cached block entry is
// matched against.
type deltaParams struct {
	aluPC   int
	mulPC   int
	l2Lat   int
	l2Ports int
	capEff  int
	budget  int
}

// lookup returns a cached schedule for block bi valid under p, or nil.
// The hit rule mirrors the scheduler's parameter reads: a parameter is
// compared only when the block can observe it, and the budget/scan
// limits match either exactly (when the recorded run hit them) or by
// dominance over the recorded certificates (when it provably never
// did). The schedule block is immutable, so it is safe to share across
// workers and programs after the lock is dropped.
func (ds *deltaState) lookup(bi int, p deltaParams) (*vliw.Block, uint32, bool) {
	info := ds.info[bi]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for i := range ds.blocks[bi] {
		e := &ds.blocks[bi][i]
		if info.hasALU && e.aluPC != p.aluPC {
			continue
		}
		if info.hasMul && e.mulPC != p.mulPC {
			continue
		}
		if info.hasL2 && (e.l2Lat != p.l2Lat || e.l2Ports != p.l2Ports) {
			continue
		}
		if e.cert.pressureBound {
			if e.capEff != p.capEff {
				continue
			}
		} else if p.capEff < e.cert.maxPressure {
			continue
		}
		if e.cert.scanBound {
			if e.budget != p.budget {
				continue
			}
		} else if p.budget < e.cert.maxScan {
			continue
		}
		return e.sb, e.id, true
	}
	return nil, 0, false
}

// insert records a freshly scheduled block, evicting round-robin past
// the per-block cap, and returns the entry's id.
func (ds *deltaState) insert(bi int, p deltaParams, cert schedCert, sb *vliw.Block) uint32 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.nextID++
	e := blockEntry{
		id: ds.nextID, aluPC: p.aluPC, mulPC: p.mulPC,
		l2Lat: p.l2Lat, l2Ports: p.l2Ports, capEff: p.capEff,
		budget: p.budget, cert: cert, sb: sb,
	}
	if len(ds.blocks[bi]) < deltaBlockEntries {
		ds.blocks[bi] = append(ds.blocks[bi], e)
	} else {
		ds.blocks[bi][ds.blockPos[bi]] = e
		ds.blockPos[bi] = (ds.blockPos[bi] + 1) % deltaBlockEntries
	}
	return e.id
}

// allocLookup returns a memoized allocation (peak pressure, physical
// assignment) for this exact combination of block schedules at the
// given per-cluster capacity, or ok=false.
func (ds *deltaState) allocLookup(ids []uint32, capacity int) (maxLive, assign []int, ok bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
outer:
	for i := range ds.allocs {
		ae := &ds.allocs[i]
		if len(ae.ids) != len(ids) || ae.maxPhys >= capacity {
			continue
		}
		for j := range ids {
			if ae.ids[j] != ids[j] {
				continue outer
			}
		}
		for _, m := range ae.maxLive {
			if m > capacity {
				continue outer
			}
		}
		return ae.maxLive, ae.assign, true
	}
	return nil, nil, false
}

// allocInsert memoizes a successful allocation. All slices are copied:
// the caller's live in scratch arenas.
func (ds *deltaState) allocInsert(ids []uint32, maxLive, assign []int) (ml, as []int) {
	ae := allocEntry{
		ids:     append([]uint32(nil), ids...),
		maxLive: append([]int(nil), maxLive...),
		assign:  append([]int(nil), assign...),
		maxPhys: -1,
	}
	for _, p := range ae.assign {
		if p > ae.maxPhys {
			ae.maxPhys = p
		}
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(ds.allocs) < deltaAllocEntries {
		ds.allocs = append(ds.allocs, ae)
	} else {
		ds.allocs[ds.allocPos] = ae
		ds.allocPos = (ds.allocPos + 1) % deltaAllocEntries
	}
	return ae.maxLive, ae.assign
}

// CompilePreparedDelta is CompilePrepared routed through the delta
// cache: it attempts the cheap one-iteration reconstruction and falls
// back to the full driver whenever the delta path cannot prove the
// result (spills, scheduler errors, unprovable reuse). Results are
// bit-identical to CompilePrepared in every case.
//
// The returned Result's Program shell, block table and blame buffer
// live in sc's arenas when the delta path succeeds: the Result is
// valid only until the next compile through the same Scratch. Callers
// that retain programs should use CompilePrepared.
func CompilePreparedDelta(sp *obs.Span, prep *Prepared, arch machine.Arch, sc *Scratch) (*Result, error) {
	res, ok, err := CompileDelta(sp, prep, arch, sc)
	if err != nil {
		return nil, err
	}
	if ok {
		return res, nil
	}
	obs.GetCounter("sched.delta_fallbacks").Inc()
	return CompilePrepared(sp, prep, arch, sc)
}

// CompileDelta attempts the delta-path compile. ok=false means the
// caller must run the full CompilePrepared (the program needs spill
// iterations, or scheduling failed — the full driver reproduces the
// identical error). See CompilePreparedDelta for the Result's arena
// lifetime.
func CompileDelta(sp *obs.Span, prep *Prepared, arch machine.Arch, sc *Scratch) (*Result, bool, error) {
	if err := arch.Validate(); err != nil {
		return nil, false, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	ds := prep.delta(arch)
	params := deltaParams{
		aluPC:   arch.ALUsPC(),
		mulPC:   arch.MULsPC(),
		l2Lat:   arch.L2Lat,
		l2Ports: arch.L2Ports,
		budget:  8 * (arch.ALUs + arch.L2Ports + arch.Clusters + 4),
	}
	capRaw := arch.RegsPC() - pressureReserve
	params.capEff = capRaw
	if params.capEff < 3 {
		params.capEff = 3
	}

	csp := obs.Under(sp, "sched.delta")
	if csp != nil {
		csp.Str("kernel", prep.F.Name).Str("arch", arch.String())
		defer csp.End()
	}

	blame := growInt(&sc.blame, ds.g.NumRegs())
	blocks := sc.progBlocks[:0]
	ids := sc.entryIDs[:0]
	var skels []*ddg.Skeleton
	hits := 0
	for bi := range ds.g.Blocks {
		sb, id, ok := ds.lookup(bi, params)
		if !ok {
			if skels == nil {
				skels = ds.skeletons(prep, arch)
			}
			fresh, cert, err := scheduleBlock(ds.g, ds.g.Blocks[bi], arch, ds.pl, ds.lv, capRaw, blame, false, skels[bi], sc)
			if err != nil {
				// The full driver reproduces this error with its own
				// wrapping; don't duplicate the formatting here.
				return nil, false, nil
			}
			sb, id = fresh, ds.insert(bi, params, cert, fresh)
		} else {
			hits++
		}
		blocks = append(blocks, sb)
		ids = append(ids, id)
	}
	sc.progBlocks = blocks[:0]
	sc.entryIDs = ids[:0]
	obs.GetCounter("sched.delta_block_hits").Add(int64(hits))
	obs.GetCounter("sched.delta_block_misses").Add(int64(len(blocks) - hits))

	prog := &sc.prog
	*prog = vliw.Program{
		Arch:       arch,
		F:          ds.g,
		Blocks:     blocks,
		RegCluster: ds.pl.RegCluster,
		Blame:      blame,
	}

	capacity := arch.RegsPC()
	maxLive, assign, ok := ds.allocLookup(ids, capacity)
	if !ok {
		ra := regalloc.AllocateReuse(csp, prog, ds.lv, sc.RA)
		if !ra.Fits {
			return nil, false, nil
		}
		maxLive, assign = ds.allocInsert(ids, ra.MaxLive, ra.Assign)
	} else {
		obs.GetCounter("sched.delta_alloc_hits").Inc()
	}
	prog.Spills = 0
	prog.MaxLive = maxLive
	prog.PhysAssign = assign
	if csp != nil {
		csp.Int("block_hits", int64(hits)).Int("blocks", int64(len(blocks)))
	}
	res := &sc.result
	*res = Result{Prog: prog, Spilled: 0, Iterations: 1}
	return res, true, nil
}
