package sched

import (
	"testing"

	"customfit/internal/bench"
	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sim"
)

func TestFuseMinMaxPatterns(t *testing.T) {
	src := `
		kernel m(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int a; int b;
				a = in[i * 2];
				b = in[i * 2 + 1];
				out[i * 4]     = a < b ? a : b;
				out[i * 4 + 1] = a < b ? b : a;
				out[i * 4 + 2] = a > b ? a : b;
				out[i * 4 + 3] = min(a, max(b, 7));
			}
		}`
	kfn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(kfn, 1)
	if err != nil {
		t.Fatal(err)
	}
	work := prepared.Clone()
	fused := FuseMinMax(work)
	if fused < 4 {
		t.Errorf("fused %d selects, want >= 4\n%s", fused, work)
	}
	mins, maxs, selects := 0, 0, 0
	for _, b := range work.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMin:
				mins++
			case ir.OpMax:
				maxs++
			case ir.OpSelect:
				selects++
			}
		}
	}
	if mins == 0 || maxs == 0 {
		t.Errorf("min=%d max=%d after fusion", mins, maxs)
	}

	// Correctness end-to-end on a MinMax machine.
	arch := machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 1, MinMax: true}
	res, err := Compile(prepared, arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Prog); err != nil {
		t.Fatal(err)
	}
	n := int32(9)
	in := make([]int32, 2*n)
	for i := range in {
		in[i] = int32((i*37)%19 - 9)
	}
	ref := make([]int32, 4*n)
	got := make([]int32, 4*n)
	if _, err := ir.Interp(kfn, ir.NewEnv(n).Bind("in", in).Bind("out", ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(res.Prog, ir.NewEnv(n).Bind("in", in).Bind("out", got)); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestMinMaxSpeedsUpMedian(t *testing.T) {
	// The 3x3 median is pure compare/select; a min/max repertoire must
	// shrink its schedule at identical cost parameters.
	fn, err := bench.ByName("H").Compile()
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain := machine.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 2}
	withMM := plain.WithMinMax()
	rp, err := Compile(prepared, plain)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Compile(prepared, withMM)
	if err != nil {
		t.Fatal(err)
	}
	lp := rp.Prog.BlockFor(rp.Prog.F.Loop.Header).Len
	lm := rm.Prog.BlockFor(rm.Prog.F.Loop.Header).Len
	if lm >= lp {
		t.Errorf("min/max repertoire did not shrink H's loop: %d vs %d", lm, lp)
	}
	t.Logf("H loop length: %d plain, %d with min/max (%.0f%% shorter)",
		lp, lm, 100*(1-float64(lm)/float64(lp)))
}
