package sched

import (
	"customfit/internal/ir"
)

// SpillMemName is the L1 array backing spilled registers.
const SpillMemName = "spill$"

// SpillRewrite inserts spill code for the given virtual registers into
// f (the pre-partition IR): after every definition the value is stored
// to a Level-1 spill slot and before every use it is reloaded into a
// fresh temporary. Values defined by a single constant-table load are
// rematerialized instead — the load is sunk back to its use sites,
// undoing LICM's hoist (cheaper than store+reload, and exactly the
// pressure/bandwidth trade the paper's pathological FIR case shows).
//
// Returns the number of registers actually rewritten.
func SpillRewrite(f *ir.Func, regs []ir.Reg) int {
	done := 0
	for _, r := range regs {
		if rewriteOne(f, r) {
			done++
		}
	}
	return done
}

func rewriteOne(f *ir.Func, r ir.Reg) bool {
	// Collect definitions and uses.
	type site struct {
		b   *ir.Block
		idx int
	}
	var defs, uses []site
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			for _, a := range in.Args {
				if a.IsReg() && a.Reg == r {
					uses = append(uses, site{b, i})
					break
				}
			}
			if in.Op.HasDest() && in.Dest == r {
				defs = append(defs, site{b, i})
			}
		}
	}
	if len(uses) == 0 {
		return false // nothing to relieve
	}

	// Rematerialization: single def by a constant-table load.
	if len(defs) == 1 {
		d := defs[0].b.Instrs[defs[0].idx]
		if d.Op == ir.OpLoad && d.Mem.Const && d.Args[0].IsImm() {
			rematerialize(f, r, d)
			return true
		}
	}

	isParam := false
	for _, p := range f.Params {
		if p.Reg == r {
			isParam = true
		}
	}
	if len(defs) == 0 && !isParam {
		return false
	}

	spill := f.MemByName(SpillMemName)
	if spill == nil {
		spill = f.AddMem(&ir.MemRef{Name: SpillMemName, Space: ir.L1, Elem: ir.ElemI32})
	}
	slot := int32(spill.Size)
	spill.Size++

	// Insert per block, rebuilding instruction lists. Stores follow
	// defs; loads into fresh temps precede uses.
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			usesR := false
			for _, a := range in.Args {
				if a.IsReg() && a.Reg == r {
					usesR = true
				}
			}
			if usesR {
				t := f.NewReg()
				out = append(out, &ir.Instr{
					Op: ir.OpLoad, Dest: t,
					Args: []ir.Operand{ir.Imm(slot)},
					Mem:  spill, Elem: ir.ElemI32,
				})
				for i, a := range in.Args {
					if a.IsReg() && a.Reg == r {
						in.Args[i] = ir.R(t)
					}
				}
			}
			out = append(out, in)
			if in.Op.HasDest() && in.Dest == r {
				out = append(out, &ir.Instr{
					Op: ir.OpStore, Dest: ir.NoReg,
					Args: []ir.Operand{ir.Imm(slot), ir.R(r)},
					Mem:  spill, Elem: ir.ElemI32,
				})
			}
		}
		b.Instrs = out
	}
	if isParam {
		// The incoming value must reach the slot before any reload.
		entry := f.Entry()
		st := &ir.Instr{
			Op: ir.OpStore, Dest: ir.NoReg,
			Args: []ir.Operand{ir.Imm(slot), ir.R(r)},
			Mem:  spill, Elem: ir.ElemI32,
		}
		entry.Instrs = append([]*ir.Instr{st}, entry.Instrs...)
	}
	return true
}

// rematerialize deletes the hoisted constant load defining r and
// replays it in front of every use.
func rematerialize(f *ir.Func, r ir.Reg, def *ir.Instr) {
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if in == def {
				continue // drop the hoisted load
			}
			usesR := false
			for _, a := range in.Args {
				if a.IsReg() && a.Reg == r {
					usesR = true
				}
			}
			if usesR {
				t := f.NewReg()
				cp := def.Clone()
				cp.Dest = t
				out = append(out, cp)
				for i, a := range in.Args {
					if a.IsReg() && a.Reg == r {
						in.Args[i] = ir.R(t)
					}
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}
