package sched

import (
	"fmt"
	"sync"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/machine"
	"customfit/internal/opt"
)

// TestCompilePreparedConcurrentSharing drives the explorer's sharing
// contract: one Prepared kernel shared by many goroutines, each with a
// private Scratch arena, across architectures that hit every skeleton
// path (cached single-cluster, clustered, spilling). Every concurrent
// compile must reproduce the serial Result exactly. `make race` runs
// this under the race detector to vet the skeleton singleflight.
func TestCompilePreparedConcurrentSharing(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := opt.Prepare(fn, 2)
	if err != nil {
		t.Fatal(err)
	}

	type shape struct{ spilled, iters, bundles, ops int }
	ref := map[machine.Arch]shape{}
	for _, arch := range testArchs {
		res, err := Compile(g, arch)
		if err != nil {
			t.Fatalf("serial Compile %s: %v", arch, err)
		}
		ref[arch] = shape{res.Spilled, res.Iterations, res.Prog.BundleCount(), res.Prog.OpCount()}
	}

	prep := NewPrepared(g)
	const workers = 8
	errs := make(chan error, workers*len(testArchs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScratch()
			for _, arch := range testArchs {
				res, err := CompilePrepared(nil, prep, arch, sc)
				if err != nil {
					errs <- fmt.Errorf("concurrent compile %s: %v", arch, err)
					continue
				}
				got := shape{res.Spilled, res.Iterations, res.Prog.BundleCount(), res.Prog.OpCount()}
				if got != ref[arch] {
					errs <- fmt.Errorf("%s: concurrent result %+v, serial %+v", arch, got, ref[arch])
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
