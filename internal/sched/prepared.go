package sched

import (
	"sync"

	"customfit/internal/ddg"
	"customfit/internal/ir"
	"customfit/internal/machine"
)

// Prepared wraps an optimized+unrolled kernel with a cache of the
// architecture-independent pre-scheduling artifacts that every backend
// run over the same kernel would otherwise rebuild: the per-block
// dependence skeletons and latency-weighted critical-path heights.
//
// The dependence rules read exactly one architecture parameter — the
// Level-2 latency (ddg.Latency / ddg.Occupancy) — so skeletons are
// cached per L2 latency class and shared by every architecture in the
// class. The cached skeletons describe F's pristine blocks; the compile
// driver only consults them while the working copy is still
// instruction-for-instruction identical to F (first spill iteration,
// single cluster, no min/max fusion).
//
// A Prepared is immutable after construction apart from the internal
// cache and is safe for concurrent use by many workers.
type Prepared struct {
	F *ir.Func

	mu     sync.Mutex
	skels  map[int]*skelSet         // L2 latency class -> per-block skeletons
	deltas map[deltaKey]*deltaState // partition class -> delta-compile cache

	// Per-block operation-class tallies for LowerBound, built once on
	// first use (architecture-independent; see bound.go).
	countsOnce sync.Once
	counts     []opCounts
}

// skelSet carries per-key once semantics so two workers racing on a
// cold latency class build it exactly once without holding the cache
// lock during construction.
type skelSet struct {
	once   sync.Once
	blocks []*ddg.Skeleton
}

// NewPrepared wraps an optimized kernel for repeated compilation. The
// caller must not mutate f afterwards.
func NewPrepared(f *ir.Func) *Prepared {
	return &Prepared{F: f}
}

// skeletons returns the per-block dependence skeletons for arch's
// latency class, building them on first use.
func (p *Prepared) skeletons(arch machine.Arch) []*ddg.Skeleton {
	p.mu.Lock()
	if p.skels == nil {
		p.skels = make(map[int]*skelSet)
	}
	s := p.skels[arch.L2Lat]
	if s == nil {
		s = &skelSet{}
		p.skels[arch.L2Lat] = s
	}
	p.mu.Unlock()
	s.once.Do(func() {
		s.blocks = make([]*ddg.Skeleton, len(p.F.Blocks))
		for i, b := range p.F.Blocks {
			s.blocks[i] = ddg.BuildSkeleton(b, arch)
		}
	})
	return s.blocks
}
