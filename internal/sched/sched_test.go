package sched

import (
	"math/rand"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/opt"
	"customfit/internal/sim"
)

// testArchs is a spread of machines covering the template's axes:
// baseline, wide single-cluster, clustered, register-starved, and
// memory-rich.
var testArchs = []machine.Arch{
	machine.Baseline,
	{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 1},
	{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 4},
	{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 2},
	{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8},
	{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 8, Clusters: 4},
}

const pipeSrc = `
	const int coef[4] = {3, 17, 17, 3};
	kernel pipe(byte in[], byte out[], int n) {
		int i; int carry;
		carry = 0;
		for (i = 0; i < n; i++) {
			int acc; int k;
			acc = carry;
			for (k = 0; k < 4; k++) {
				acc += in[i + k] * coef[k];
			}
			if (acc > 255 << 5) { carry = 1; acc = 255 << 5; } else { carry = 0; }
			out[i] = acc >> 5;
		}
	}`

// compileAndCompare compiles src at the given unroll factor for each
// architecture, validates the schedule, simulates it, and compares the
// memory image and visit-weighted cycles against the IR interpreter.
func compileAndCompare(t *testing.T, src string, u int, widths []int32) {
	t.Helper()
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatalf("CompileKernel: %v", err)
	}
	prepared, err := opt.Prepare(fn, u)
	if err != nil {
		t.Fatalf("Prepare(u=%d): %v", u, err)
	}
	r := rand.New(rand.NewSource(int64(u)))
	for _, arch := range testArchs {
		res, err := Compile(prepared, arch)
		if err != nil {
			t.Fatalf("Compile %s u=%d: %v", arch, u, err)
		}
		if err := Validate(res.Prog); err != nil {
			t.Fatalf("Validate %s u=%d: %v\n%s", arch, u, err, res.Prog)
		}
		for _, n := range widths {
			in := make([]int32, int(n)+8)
			for i := range in {
				in[i] = r.Int31n(256)
			}
			outRef := make([]int32, int(n)+4)
			outSim := make([]int32, int(n)+4)

			refEnv := ir.NewEnv(n).Bind("in", in).Bind("out", outRef)
			if _, err := ir.Interp(fn, refEnv); err != nil {
				t.Fatalf("Interp: %v", err)
			}
			simEnv := ir.NewEnv(n).Bind("in", in).Bind("out", outSim)
			stats, err := sim.Run(res.Prog, simEnv)
			if err != nil {
				t.Fatalf("sim %s u=%d n=%d: %v\n%s", arch, u, n, err, res.Prog)
			}
			for i := range outRef {
				if outRef[i] != outSim[i] {
					t.Fatalf("%s u=%d n=%d: out[%d] = %d, want %d", arch, u, n, i, outSim[i], outRef[i])
				}
			}
			// Static cycle accounting must agree with simulation.
			static := res.Prog.StaticCycles(stats.BlockVisits)
			if static != stats.Cycles {
				t.Errorf("%s u=%d n=%d: static cycles %d != simulated %d", arch, u, n, static, stats.Cycles)
			}
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	for _, u := range []int{1, 2, 4} {
		compileAndCompare(t, pipeSrc, u, []int32{0, 1, 5, 17, 32})
	}
}

func TestPipelineRecurrenceKernel(t *testing.T) {
	// Serial error-diffusion-style recurrence with a local scratch array
	// and narrow stores.
	src := `
		short errbuf[64];
		kernel diffuse(byte in[], byte out[], int n) {
			int i; int err;
			err = 0;
			for (i = 0; i < n; i++) {
				int v;
				v = in[i] + ((err * 7 + 8) >> 4) + (errbuf[i] >> 1);
				out[i] = v > 255 ? 255 : v;
				err = v > 255 ? v - 255 : 0;
				errbuf[i] = err;
			}
		}`
	for _, u := range []int{1, 4} {
		compileAndCompare(t, src, u, []int32{0, 3, 16, 33})
	}
}

func TestWiderMachinesNotSlower(t *testing.T) {
	// A resource-rich machine should never need more cycles than the
	// baseline on the same unrolled IR (speedups come later from
	// derating and cost; raw cycles must be monotone-ish).
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 4)
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(a machine.Arch) int64 {
		res, err := Compile(prepared, a)
		if err != nil {
			t.Fatalf("Compile %s: %v", a, err)
		}
		in := make([]int32, 72)
		for i := range in {
			in[i] = int32(i * 7 % 256)
		}
		env := ir.NewEnv(64).Bind("in", in).Bind("out", make([]int32, 68))
		stats, err := sim.Run(res.Prog, env)
		if err != nil {
			t.Fatalf("sim %s: %v", a, err)
		}
		return stats.Cycles
	}
	base := cycles(machine.Baseline)
	rich := cycles(machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 2, Clusters: 1})
	if rich > base {
		t.Errorf("rich machine %d cycles > baseline %d", rich, base)
	}
	if rich == base {
		t.Logf("warning: no cycle win from the rich machine (base=%d)", base)
	}
}

func TestSpillPathTriggersOnTinyRegfile(t *testing.T) {
	// 16 registers per cluster with a 16-tap FIR at unroll 8 must spill
	// but still compile and compute correctly.
	src := `
		const int w[16] = {1,2,3,4,5,6,7,8,8,7,6,5,4,3,2,1};
		kernel fir16(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int acc; int k;
				acc = 0;
				for (k = 0; k < 16; k++) { acc += in[i+k] * w[k]; }
				out[i] = acc >> 6;
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 8)
	if err != nil {
		t.Fatal(err)
	}
	tiny := machine.Arch{ALUs: 16, MULs: 4, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 8}
	res, err := Compile(prepared, tiny)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if res.Spilled == 0 {
		t.Error("expected spills on a 16-regs-per-cluster machine")
	}
	if err := Validate(res.Prog); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	in := make([]int32, 48)
	for i := range in {
		in[i] = int32((i*13 + 5) % 128)
	}
	outRef := make([]int32, 32)
	outSim := make([]int32, 32)
	if _, err := ir.Interp(fn, ir.NewEnv(32).Bind("in", in).Bind("out", outRef)); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(res.Prog, ir.NewEnv(32).Bind("in", in).Bind("out", outSim)); err != nil {
		t.Fatal(err)
	}
	for i := range outRef {
		if outRef[i] != outSim[i] {
			t.Fatalf("out[%d] = %d, want %d", i, outSim[i], outRef[i])
		}
	}
}

func TestClusteringInsertsMovesAndKeepsCorrectness(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	arch := machine.Arch{ALUs: 8, MULs: 2, Regs: 256, L2Ports: 1, L2Lat: 4, Clusters: 4}
	res, err := Compile(prepared, arch)
	if err != nil {
		t.Fatal(err)
	}
	xmovs := 0
	clustersUsed := map[int]bool{}
	for _, sb := range res.Prog.Blocks {
		for _, op := range sb.Ops {
			if op.Instr.Op == ir.OpXMov {
				xmovs++
			}
			clustersUsed[op.Cluster] = true
		}
	}
	if xmovs == 0 {
		t.Error("4-cluster machine scheduled no inter-cluster moves")
	}
	if len(clustersUsed) < 2 {
		t.Errorf("work not distributed: only clusters %v used", clustersUsed)
	}
}

func TestPartitionSingleClusterIsIdentity(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := prepared.Clone()
	before := g.NumInstrs()
	pl := Partition(g, machine.Baseline)
	if g.NumInstrs() != before {
		t.Errorf("single-cluster partition changed instruction count: %d -> %d", before, g.NumInstrs())
	}
	for _, c := range pl.RegCluster {
		if c != 0 {
			t.Fatal("register homed off cluster 0 on a 1-cluster machine")
		}
	}
}

// TestCompileDeterministic: retargeting the same prepared kernel twice
// must yield identical schedules (reproducible experiments depend on
// it; map-iteration order must never leak into code generation).
func TestCompileDeterministic(t *testing.T) {
	fn, err := cc.CompileKernel(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := opt.Prepare(fn, 4)
	if err != nil {
		t.Fatal(err)
	}
	arch := machine.Arch{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 4}
	shape := func() string {
		res, err := Compile(prepared, arch)
		if err != nil {
			t.Fatal(err)
		}
		return res.Prog.String()
	}
	a := shape()
	for i := 0; i < 4; i++ {
		if b := shape(); a != b {
			t.Fatalf("compilation %d differs:\n%s\nvs\n%s", i, a, b)
		}
	}
}
