package cc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"customfit/internal/ir"
)

// This file pits randomly generated CKC expressions against a direct
// AST evaluator: the expression is compiled through the full frontend
// and interpreted, and the result must match evaluating the same tree
// in Go with C semantics. Hundreds of random trees exercise operator
// precedence, ternaries, builtins, casts and the power-of-two
// division lowering in combination.

type exprGen struct {
	r     *rand.Rand
	depth int
}

// gen returns (source fragment, evaluator) for a random expression over
// the variables a, b, c.
func (g *exprGen) gen(d int) (string, func(a, b, c int32) int32) {
	if d >= g.depth || g.r.Intn(4) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return "a", func(a, _, _ int32) int32 { return a }
		case 1:
			return "b", func(_, b, _ int32) int32 { return b }
		case 2:
			return "c", func(_, _, c int32) int32 { return c }
		default:
			v := int32(g.r.Intn(200) - 100)
			return fmt.Sprintf("(%d)", v), func(_, _, _ int32) int32 { return v }
		}
	}
	ls, lf := g.gen(d + 1)
	rs, rf := g.gen(d + 1)
	switch g.r.Intn(14) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) + rf(a, b, c) }
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) - rf(a, b, c) }
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) * rf(a, b, c) }
	case 3:
		sh := g.r.Intn(8)
		return fmt.Sprintf("(%s << %d)", ls, sh), func(a, b, c int32) int32 { return lf(a, b, c) << sh }
	case 4:
		sh := g.r.Intn(8)
		return fmt.Sprintf("(%s >> %d)", ls, sh), func(a, b, c int32) int32 { return lf(a, b, c) >> sh }
	case 5:
		return fmt.Sprintf("(%s & %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) & rf(a, b, c) }
	case 6:
		return fmt.Sprintf("(%s | %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) | rf(a, b, c) }
	case 7:
		return fmt.Sprintf("(%s ^ %s)", ls, rs), func(a, b, c int32) int32 { return lf(a, b, c) ^ rf(a, b, c) }
	case 8:
		cs, cf := g.gen(d + 1)
		return fmt.Sprintf("(%s ? %s : %s)", cs, ls, rs), func(a, b, c int32) int32 {
			if cf(a, b, c) != 0 {
				return lf(a, b, c)
			}
			return rf(a, b, c)
		}
	case 9:
		return fmt.Sprintf("min(%s, %s)", ls, rs), func(a, b, c int32) int32 {
			l, r := lf(a, b, c), rf(a, b, c)
			if l < r {
				return l
			}
			return r
		}
	case 10:
		return fmt.Sprintf("(%s < %s)", ls, rs), func(a, b, c int32) int32 {
			if lf(a, b, c) < rf(a, b, c) {
				return 1
			}
			return 0
		}
	case 11:
		pw := int32(1) << (1 + g.r.Intn(4))
		return fmt.Sprintf("(%s / %d)", ls, pw), func(a, b, c int32) int32 { return lf(a, b, c) / pw }
	case 12:
		return fmt.Sprintf("(byte)(%s)", ls), func(a, b, c int32) int32 { return lf(a, b, c) & 0xff }
	default:
		return fmt.Sprintf("abs(%s)", ls), func(a, b, c int32) int32 {
			v := lf(a, b, c)
			if v < 0 {
				return -v
			}
			return v
		}
	}
}

func TestRandomExpressionsAgainstDirectEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(20260705))
	inputs := [][3]int32{
		{0, 0, 0}, {1, -1, 2}, {255, 128, 7}, {-100, 99, -3},
		{2147483647, -2147483648, 1}, {12345, -9876, 42},
	}
	for trial := 0; trial < 200; trial++ {
		g := &exprGen{r: r, depth: 4}
		src, eval := g.gen(0)
		kernel := fmt.Sprintf(`kernel f(int out[], int a, int b, int c) { out[0] = %s; }`, src)
		fn, err := CompileKernel(kernel)
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, src, err)
		}
		for _, in := range inputs {
			out := []int32{0}
			env := ir.NewEnv(in[0], in[1], in[2]).Bind("out", out)
			if _, err := ir.Interp(fn, env); err != nil {
				t.Fatalf("trial %d: interp %q: %v", trial, src, err)
			}
			if want := eval(in[0], in[1], in[2]); out[0] != want {
				t.Fatalf("trial %d: %s with (a,b,c)=%v = %d, want %d",
					trial, src, in, out[0], want)
			}
		}
	}
}

func TestRandomExpressionsSurviveParsing(t *testing.T) {
	// Unparenthesized mixes stress precedence handling: regenerate the
	// trees without the outer parens by stripping them and re-parsing.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g := &exprGen{r: r, depth: 3}
		src, _ := g.gen(0)
		flat := strings.ReplaceAll(src, "(", " ( ")
		kernel := fmt.Sprintf(`kernel f(int out[], int a, int b, int c) { out[0] = %s; }`, flat)
		if _, err := CompileKernel(kernel); err != nil {
			t.Fatalf("trial %d: %q: %v", trial, flat, err)
		}
	}
}
