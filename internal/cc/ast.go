package cc

import "customfit/internal/ir"

// Type is a CKC storage type. All scalar arithmetic is 32-bit; narrower
// types only matter for array element storage.
type Type uint8

const (
	TInt Type = iota
	TShort
	TUShort
	TByte
	TSByte
)

// Elem maps a CKC type to the IR element type.
func (t Type) Elem() ir.ElemType {
	switch t {
	case TShort:
		return ir.ElemI16
	case TUShort:
		return ir.ElemU16
	case TByte:
		return ir.ElemU8
	case TSByte:
		return ir.ElemI8
	default:
		return ir.ElemI32
	}
}

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TShort:
		return "short"
	case TUShort:
		return "ushort"
	case TByte:
		return "byte"
	case TSByte:
		return "sbyte"
	}
	return "?"
}

// File is a parsed CKC translation unit: top-level array declarations
// (globals and constant tables, all resident in L1) and kernels.
type File struct {
	Globals []*VarDecl
	Kernels []*Kernel
}

// Kernel is a kernel definition.
type Kernel struct {
	Name   string
	Params []*ParamDecl
	Body   *BlockStmt
	Pos    Pos
}

// ParamDecl declares a kernel parameter: a scalar int or an unsized
// array (`byte in[]`). Array parameters are bound by the caller and live
// in L2 memory.
type ParamDecl struct {
	Name    string
	Type    Type
	IsArray bool
	Pos     Pos
}

// VarDecl declares a scalar variable or array. Arrays declared inside a
// kernel (or at top level) reside in L1 memory.
type VarDecl struct {
	Name    string
	Type    Type
	IsArray bool
	Size    Expr   // array length (must be constant); nil for scalars
	Init    Expr   // scalar initializer, or nil
	Inits   []Expr // array initializer list, or nil
	IsConst bool   // read-only table
	Pos     Pos
}

// Stmt is a CKC statement.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// AssignStmt is `lhs op= rhs` (Op == ASSIGN for plain assignment) or a
// `++`/`--` statement normalized to `+= 1` / `-= 1` by the parser.
type AssignStmt struct {
	LHS *LValue
	Op  Kind // ASSIGN, PLUSEQ, ...
	RHS Expr
	Pos Pos
}

// ForStmt is a C for loop. CKC requires the canonical counting shape
// `for (v = lo; v < hi; v++)` (or `v = ...` reusing a declared scalar).
type ForStmt struct {
	Var  string // induction variable name
	Init Expr   // initial value
	Cond Expr   // full condition expression, must be `v < bound`
	Body *BlockStmt
	Pos  Pos
}

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // possibly nil; `else if` nests as a one-stmt block
	Pos  Pos
}

// ReturnStmt returns from the kernel (kernels are void).
type ReturnStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()  {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*ForStmt) stmtNode()    {}
func (*IfStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode() {}

// LValue is an assignable location: a scalar variable or array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Pos   Pos
}

// Expr is a CKC expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int32
	Pos Pos
}

// VarRef reads a scalar variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Pos   Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

// UnaryExpr is -x, ~x or !x.
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// CondExpr is the ternary operator c ? a : b, lowered to a select (both
// arms are evaluated; CKC expressions are side-effect free).
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// CastExpr is (type)x; only the byte/short casts have an effect
// (masking/sign-extension), (int)x is the identity.
type CastExpr struct {
	Type Type
	X    Expr
	Pos  Pos
}

// CallExpr invokes one of the builtins: min, max, abs, clamp. They lower
// to compare/select sequences.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*IntLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CondExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}

func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *VarRef) ExprPos() Pos     { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *CondExpr) ExprPos() Pos   { return e.Pos }
func (e *CastExpr) ExprPos() Pos   { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
