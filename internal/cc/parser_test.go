package cc

import (
	"strings"
	"testing"
)

func TestParseKernelShape(t *testing.T) {
	f, err := Parse(`
		const short coef[3] = {1, 2, 3};
		kernel scale(byte in[], byte out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i] = (in[i] * coef[1] + 8) >> 4;
			}
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "coef" || !f.Globals[0].IsConst {
		t.Fatalf("globals wrong: %+v", f.Globals)
	}
	if len(f.Globals[0].Inits) != 3 {
		t.Fatalf("coef inits = %d, want 3", len(f.Globals[0].Inits))
	}
	if len(f.Kernels) != 1 {
		t.Fatalf("kernels = %d, want 1", len(f.Kernels))
	}
	k := f.Kernels[0]
	if k.Name != "scale" || len(k.Params) != 3 {
		t.Fatalf("kernel shape wrong: %s %d params", k.Name, len(k.Params))
	}
	if !k.Params[0].IsArray || k.Params[2].IsArray {
		t.Error("param array flags wrong")
	}
	if len(k.Body.Stmts) != 2 {
		t.Fatalf("body stmts = %d, want 2", len(k.Body.Stmts))
	}
	loop, ok := k.Body.Stmts[1].(*ForStmt)
	if !ok || loop.Var != "i" {
		t.Fatalf("second stmt not a for over i: %T", k.Body.Stmts[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse(`kernel k(int a, int b, int c) { int x; x = a + b * c; }`)
	if err != nil {
		t.Fatal(err)
	}
	asn := f.Kernels[0].Body.Stmts[1].(*AssignStmt)
	add, ok := asn.RHS.(*BinaryExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("top op = %v, want +", asn.RHS)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != STAR {
		t.Fatalf("rhs of + is %T, want *", add.R)
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	f, err := Parse(`kernel k(int a) { int x; x = a ? 1 : a ? 2 : 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	asn := f.Kernels[0].Body.Stmts[1].(*AssignStmt)
	outer := asn.RHS.(*CondExpr)
	if _, ok := outer.Else.(*CondExpr); !ok {
		t.Fatalf("else arm = %T, want nested CondExpr", outer.Else)
	}
}

func TestParseCastVsParen(t *testing.T) {
	f, err := Parse(`kernel k(int a) { int x; x = (byte) a; x = (a) + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	s1 := f.Kernels[0].Body.Stmts[1].(*AssignStmt)
	if _, ok := s1.RHS.(*CastExpr); !ok {
		t.Fatalf("first RHS = %T, want CastExpr", s1.RHS)
	}
	s2 := f.Kernels[0].Body.Stmts[2].(*AssignStmt)
	if _, ok := s2.RHS.(*BinaryExpr); !ok {
		t.Fatalf("second RHS = %T, want BinaryExpr", s2.RHS)
	}
}

func TestParseIncDecNormalized(t *testing.T) {
	f, err := Parse(`kernel k(int a) { int x; x++; x--; x += 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	inc := f.Kernels[0].Body.Stmts[1].(*AssignStmt)
	if inc.Op != PLUSEQ || !isLitOne(inc.RHS) {
		t.Error("x++ not normalized to += 1")
	}
	dec := f.Kernels[0].Body.Stmts[2].(*AssignStmt)
	if dec.Op != MINUSEQ || !isLitOne(dec.RHS) {
		t.Error("x-- not normalized to -= 1")
	}
}

func TestParseIfElseChain(t *testing.T) {
	f, err := Parse(`kernel k(int a) { int x; if (a > 0) x = 1; else if (a < 0) x = 2; else { x = 3; } }`)
	if err != nil {
		t.Fatal(err)
	}
	top := f.Kernels[0].Body.Stmts[1].(*IfStmt)
	if top.Else == nil || len(top.Else.Stmts) != 1 {
		t.Fatal("else-if chain not nested")
	}
	if _, ok := top.Else.Stmts[0].(*IfStmt); !ok {
		t.Fatalf("else body = %T, want IfStmt", top.Else.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"kernel", "expected identifier"},
		{"kernel k(int a) { x = ; }", "expected expression"},
		{"kernel k(int a) { for (a; a < 3; a++) {} }", "expected assignment"},
		{"kernel k(int a) { for (a = 0; a < 3; a += 2) {} }", "for-post"},
		{"int x;", "must be arrays"}, // caught by Check, not Parse
		{"kernel k(int a) { if a { } }", "expected ("},
		{"kernel k(int a) {", "unterminated block"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err == nil {
			err = Check(f)
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestParseTrailingCommaInInit(t *testing.T) {
	f, err := Parse(`const int t[2] = {1, 2,}; kernel k(int a) { }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals[0].Inits) != 2 {
		t.Fatalf("inits = %d, want 2", len(f.Globals[0].Inits))
	}
}

func TestParseCompoundOpsOnArrays(t *testing.T) {
	f, err := Parse(`kernel k(int a[], int n) { a[0] += 3; a[1] <<= 2; a[2]++; }`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := f.Kernels[0].Body.Stmts
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if stmts[0].(*AssignStmt).Op != PLUSEQ || stmts[1].(*AssignStmt).Op != SHLEQ {
		t.Error("compound ops mis-parsed")
	}
}

func TestParseForSingleStatementBody(t *testing.T) {
	f, err := Parse(`kernel k(int o[], int n) { int i; for (i = 0; i < n; i++) o[i] = i; }`)
	if err != nil {
		t.Fatal(err)
	}
	loop := f.Kernels[0].Body.Stmts[1].(*ForStmt)
	if len(loop.Body.Stmts) != 1 {
		t.Errorf("single-statement for body = %d stmts", len(loop.Body.Stmts))
	}
}

func TestParseUnaryChains(t *testing.T) {
	f, err := Parse(`kernel k(int a) { int x; x = - - a; x = ~~a; x = !!a; x = -~!a; }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels[0].Body.Stmts) != 5 {
		t.Error("unary chains mis-parsed")
	}
}

func TestParseEmptyKernelAndSemicolons(t *testing.T) {
	f, err := Parse(`kernel k(int a) { ;;; }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels[0].Body.Stmts) != 0 {
		t.Error("stray semicolons produced statements")
	}
}
