package cc

import "fmt"

// Parser is a recursive-descent parser for CKC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a CKC translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.file()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, describe(p.cur()))
	}
	return p.next(), nil
}

func describe(t Token) string {
	if t.Kind == IDENT || t.Kind == NUMBER {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return fmt.Sprintf("%q", t.Kind.String())
}

func isTypeKw(k Kind) bool {
	switch k {
	case KWInt, KWShort, KWUShort, KWByte, KWSByte:
		return true
	}
	return false
}

func typeOf(k Kind) Type {
	switch k {
	case KWShort:
		return TShort
	case KWUShort:
		return TUShort
	case KWByte:
		return TByte
	case KWSByte:
		return TSByte
	default:
		return TInt
	}
}

func (p *Parser) file() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		switch {
		case p.at(KWKernel):
			k, err := p.kernel()
			if err != nil {
				return nil, err
			}
			f.Kernels = append(f.Kernels, k)
		case p.at(KWConst) || isTypeKw(p.cur().Kind):
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, d)
		default:
			return nil, errf(p.cur().Pos, "expected declaration or kernel, found %s", describe(p.cur()))
		}
	}
	return f, nil
}

func (p *Parser) kernel() (*Kernel, error) {
	kw, _ := p.expect(KWKernel)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	k := &Kernel{Name: name.Text, Pos: kw.Pos}
	for !p.at(RPAREN) {
		if len(k.Params) > 0 {
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
		if !isTypeKw(p.cur().Kind) {
			return nil, errf(p.cur().Pos, "expected parameter type, found %s", describe(p.cur()))
		}
		ty := typeOf(p.next().Kind)
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		pd := &ParamDecl{Name: pn.Text, Type: ty, Pos: pn.Pos}
		if p.accept(LBRACK) {
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			pd.IsArray = true
		}
		k.Params = append(k.Params, pd)
	}
	p.next() // RPAREN
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

// varDecl parses `[const] type name;`, `[const] type name = expr;`,
// `[const] type name[N];` or `[const] type name[N] = {a, b, ...};`.
func (p *Parser) varDecl() (*VarDecl, error) {
	d := &VarDecl{}
	if p.accept(KWConst) {
		d.IsConst = true
	}
	if !isTypeKw(p.cur().Kind) {
		return nil, errf(p.cur().Pos, "expected type, found %s", describe(p.cur()))
	}
	d.Type = typeOf(p.next().Kind)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	d.Pos = name.Pos
	if p.accept(LBRACK) {
		d.IsArray = true
		size, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Size = size
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
	}
	if p.accept(ASSIGN) {
		if d.IsArray {
			if _, err := p.expect(LBRACE); err != nil {
				return nil, err
			}
			for !p.at(RBRACE) {
				if len(d.Inits) > 0 {
					if _, err := p.expect(COMMA); err != nil {
						return nil, err
					}
					if p.at(RBRACE) { // trailing comma
						break
					}
				}
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Inits = append(d.Inits, e)
			}
			p.next() // RBRACE
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // RBRACE
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch {
	case p.accept(SEMI):
		return nil, nil
	case p.at(LBRACE):
		return p.block()
	case p.at(KWConst) || isTypeKw(p.cur().Kind):
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case p.at(KWFor):
		return p.forStmt()
	case p.at(KWIf):
		return p.ifStmt()
	case p.at(KWReturn):
		t := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos}, nil
	case p.at(IDENT):
		s, err := p.assign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, errf(p.cur().Pos, "expected statement, found %s", describe(p.cur()))
}

func isAssignOp(k Kind) bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PERCENTEQ, SHLEQ, SHREQ,
		ANDEQ, OREQ, XOREQ:
		return true
	}
	return false
}

// assign parses `lvalue op= expr`, `lvalue++` or `lvalue--` (without the
// trailing semicolon, so forStmt can reuse it).
func (p *Parser) assign() (*AssignStmt, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: name.Text, Pos: name.Pos}
	if p.accept(LBRACK) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		lv.Index = idx
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
	}
	t := p.cur()
	switch {
	case t.Kind == PLUSPLUS:
		p.next()
		return &AssignStmt{LHS: lv, Op: PLUSEQ, RHS: &IntLit{Val: 1, Pos: t.Pos}, Pos: t.Pos}, nil
	case t.Kind == MINUSMINUS:
		p.next()
		return &AssignStmt{LHS: lv, Op: MINUSEQ, RHS: &IntLit{Val: 1, Pos: t.Pos}, Pos: t.Pos}, nil
	case isAssignOp(t.Kind):
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lv, Op: t.Kind, RHS: rhs, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected assignment operator, found %s", describe(t))
}

// forStmt parses the canonical counting loop
// `for (v = init; v < bound; v++) body` (<= is also accepted and
// normalized to < during checking).
func (p *Parser) forStmt() (Stmt, error) {
	kw := p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	initStmt, err := p.assign()
	if err != nil {
		return nil, err
	}
	if initStmt.Op != ASSIGN || initStmt.LHS.Index != nil {
		return nil, errf(initStmt.Pos, "for-init must be a scalar assignment `v = expr`")
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	post, err := p.assign()
	if err != nil {
		return nil, err
	}
	if post.LHS.Index != nil || post.LHS.Name != initStmt.LHS.Name ||
		post.Op != PLUSEQ || !isLitOne(post.RHS) {
		return nil, errf(post.Pos, "for-post must be `%s++`", initStmt.LHS.Name)
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	var body *BlockStmt
	if p.at(LBRACE) {
		body, err = p.block()
		if err != nil {
			return nil, err
		}
	} else {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = &BlockStmt{Pos: kw.Pos}
		if s != nil {
			body.Stmts = []Stmt{s}
		}
	}
	return &ForStmt{Var: initStmt.LHS.Name, Init: initStmt.RHS, Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func isLitOne(e Expr) bool {
	l, ok := e.(*IntLit)
	return ok && l.Val == 1
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	thenBlk, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: thenBlk, Pos: kw.Pos}
	if p.accept(KWElse) {
		elseBlk, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		st.Else = elseBlk
	}
	return st, nil
}

func (p *Parser) stmtAsBlock() (*BlockStmt, error) {
	if p.at(LBRACE) {
		return p.block()
	}
	pos := p.cur().Pos
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	if s != nil {
		b.Stmts = []Stmt{s}
	}
	return b, nil
}

// Expression parsing: precedence climbing following C.

var binPrec = map[Kind]int{
	OROR:   1,
	ANDAND: 2,
	PIPE:   3,
	CARET:  4,
	AMP:    5,
	EQ:     6, NE: 6,
	LT: 7, LE: 7, GT: 7, GE: 7,
	SHL: 8, SHR: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	cond, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(QUESTION) {
		return cond, nil
	}
	q := p.next()
	thenE, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	elseE, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: thenE, Else: elseE, Pos: q.Pos}, nil
}

func (p *Parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *Parser) unary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case MINUS, TILDE, BANG:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*IntLit); ok && t.Kind == MINUS {
			return &IntLit{Val: -lit.Val, Pos: t.Pos}, nil
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	case PLUS:
		p.next()
		return p.unary()
	case LPAREN:
		// Either a cast `(type) x` or a parenthesized expression.
		if isTypeKw(p.toks[p.pos+1].Kind) && p.toks[p.pos+2].Kind == RPAREN {
			p.next()
			ty := typeOf(p.next().Kind)
			p.next() // RPAREN
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: ty, X: x, Pos: t.Pos}, nil
		}
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		return &IntLit{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		p.next()
		switch {
		case p.at(LPAREN):
			p.next()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			for !p.at(RPAREN) {
				if len(call.Args) > 0 {
					if _, err := p.expect(COMMA); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // RPAREN
			return call, nil
		case p.at(LBRACK):
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Pos: t.Pos}, nil
		}
		return &VarRef{Name: t.Text, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}
