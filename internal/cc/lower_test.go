package cc

import (
	"testing"
	"testing/quick"

	"customfit/internal/ir"
)

// run compiles a single-kernel source and interprets it.
func run(t *testing.T, src string, env *ir.Env) *ir.Func {
	t.Helper()
	fn, err := CompileKernel(src)
	if err != nil {
		t.Fatalf("CompileKernel: %v", err)
	}
	if _, err := ir.Interp(fn, env); err != nil {
		t.Fatalf("Interp: %v\nIR:\n%s", err, fn)
	}
	return fn
}

func TestLowerScaleKernel(t *testing.T) {
	src := `
		kernel scale(byte in[], byte out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i] = (in[i] * 3 + 8) >> 4;
			}
		}`
	in := []int32{0, 10, 100, 255, 7}
	out := make([]int32, 5)
	run(t, src, ir.NewEnv(5).Bind("in", in).Bind("out", out))
	for i, v := range in {
		want := (v*3 + 8) >> 4
		if out[i] != want&0xff {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want&0xff)
		}
	}
}

func TestLowerFullUnrollAndConstTable(t *testing.T) {
	src := `
		const int w[4] = {1, 3, 3, 1};
		kernel fir(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int acc; int c;
				acc = 0;
				for (c = 0; c < 4; c++) {
					acc += in[i + c] * w[c];
				}
				out[i] = acc >> 3;
			}
		}`
	in := []int32{8, 16, 24, 32, 40, 48, 56}
	out := make([]int32, 4)
	fn := run(t, src, ir.NewEnv(4).Bind("in", in).Bind("out", out))
	for i := 0; i < 4; i++ {
		want := (in[i] + 3*in[i+1] + 3*in[i+2] + in[i+3]) >> 3
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	// The constant inner loop must be fully unrolled: exactly one
	// runtime loop recorded, and no second backedge in the CFG.
	if fn.Loop == nil {
		t.Fatal("pixel loop not recorded")
	}
	backedges := 0
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if s == b {
				backedges++
			}
		}
	}
	if backedges != 1 {
		t.Errorf("self-loop backedges = %d, want 1 (inner loop should be unrolled)", backedges)
	}
}

func TestLowerDivisionSemantics(t *testing.T) {
	src := `
		kernel div(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i * 2] = in[i] / 8;
				out[i * 2 + 1] = in[i] % 8;
			}
		}`
	in := []int32{17, -17, 0, -1, 64, -64, 7, -8}
	out := make([]int32, 16)
	run(t, src, ir.NewEnv(int32(len(in))).Bind("in", in).Bind("out", out))
	for i, v := range in {
		if out[i*2] != v/8 {
			t.Errorf("%d / 8 = %d, want %d (C truncation)", v, out[i*2], v/8)
		}
		if out[i*2+1] != v%8 {
			t.Errorf("%d %% 8 = %d, want %d", v, out[i*2+1], v%8)
		}
	}
}

func TestLowerDivisionPropertyMatchesGo(t *testing.T) {
	fn, err := CompileKernel(`
		kernel d(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) { out[i] = in[i] / 16; }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v int32) bool {
		in := []int32{v}
		out := []int32{0}
		if _, err := ir.Interp(fn, ir.NewEnv(1).Bind("in", in).Bind("out", out)); err != nil {
			return false
		}
		return out[0] == v/16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerIfElseHomeRegMerge(t *testing.T) {
	src := `
		kernel sign(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int s;
				if (in[i] > 0) { s = 1; }
				else if (in[i] < 0) { s = 0 - 1; }
				else { s = 0; }
				out[i] = s;
			}
		}`
	in := []int32{5, -5, 0, 2147483647, -2147483648}
	out := make([]int32, 5)
	run(t, src, ir.NewEnv(5).Bind("in", in).Bind("out", out))
	want := []int32{1, -1, 0, 1, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("sign(%d) = %d, want %d", in[i], out[i], want[i])
		}
	}
}

func TestLowerTernaryAndBuiltins(t *testing.T) {
	src := `
		kernel f(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int v;
				v = in[i];
				out[i * 4] = v > 100 ? v - 100 : v;
				out[i * 4 + 1] = min(v, 50);
				out[i * 4 + 2] = abs(v);
				out[i * 4 + 3] = clamp(v, 0, 255);
			}
		}`
	in := []int32{150, -7, 42, 300}
	out := make([]int32, 16)
	run(t, src, ir.NewEnv(4).Bind("in", in).Bind("out", out))
	for i, v := range in {
		w0 := v
		if v > 100 {
			w0 = v - 100
		}
		w1 := min(v, int32(50))
		w2 := v
		if v < 0 {
			w2 = -v
		}
		w3 := min(max(v, 0), 255)
		got := out[i*4 : i*4+4]
		if got[0] != w0 || got[1] != w1 || got[2] != w2 || got[3] != w3 {
			t.Errorf("in=%d: got %v, want [%d %d %d %d]", v, got, w0, w1, w2, w3)
		}
	}
}

func TestLowerCasts(t *testing.T) {
	src := `
		kernel c(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i * 4] = (byte) in[i];
				out[i * 4 + 1] = (sbyte) in[i];
				out[i * 4 + 2] = (ushort) in[i];
				out[i * 4 + 3] = (short) in[i];
			}
		}`
	in := []int32{0x1ff, -1, 0x18000, 0x7fff}
	out := make([]int32, 16)
	run(t, src, ir.NewEnv(4).Bind("in", in).Bind("out", out))
	for i, v := range in {
		want := []int32{v & 0xff, int32(int8(v)), v & 0xffff, int32(int16(v))}
		for j, w := range want {
			if out[i*4+j] != w {
				t.Errorf("cast %d of %#x = %d, want %d", j, v, out[i*4+j], w)
			}
		}
	}
}

func TestLowerLogicalOps(t *testing.T) {
	src := `
		kernel l(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int v;
				v = in[i];
				out[i * 3] = (v > 0) && (v < 10);
				out[i * 3 + 1] = (v < 0) || (v > 10);
				out[i * 3 + 2] = !v;
			}
		}`
	in := []int32{5, -3, 0, 20}
	out := make([]int32, 12)
	run(t, src, ir.NewEnv(4).Bind("in", in).Bind("out", out))
	for i, v := range in {
		want := []int32{cb(v > 0 && v < 10), cb(v < 0 || v > 10), cb(v == 0)}
		for j, w := range want {
			if out[i*3+j] != w {
				t.Errorf("logical %d of %d = %d, want %d", j, v, out[i*3+j], w)
			}
		}
	}
}

func TestLowerShortCircuitValuesNotRequired(t *testing.T) {
	// CKC evaluates both sides of && (documented divergence): both sides
	// must be side-effect free, which the grammar guarantees. 2 && 1
	// must still be 1, not 2&1=0.
	src := `
		kernel l(int out[], int a, int b) {
			out[0] = a && b;
		}`
	out := []int32{9}
	run(t, src, ir.NewEnv(2, 1).Bind("out", out))
	if out[0] != 1 {
		t.Errorf("2 && 1 = %d, want 1", out[0])
	}
}

func TestLowerLoopInfoShape(t *testing.T) {
	fn, err := CompileKernel(`
		kernel k(byte o[], int n) {
			int i;
			for (i = 0; i < n; i++) { o[i] = 0; }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	l := fn.Loop
	if l == nil {
		t.Fatal("LoopInfo missing")
	}
	if !l.SingleBlock() {
		t.Error("simple loop should be single-block")
	}
	if l.Step != 1 {
		t.Errorf("Step = %d, want 1", l.Step)
	}
	// Rotated form: preheader ends in cbr to {header, exit}.
	term := l.Preheader.Terminator()
	if term == nil || term.Op != ir.OpCBr || term.Targets[0] != l.Header || term.Targets[1] != l.Exit {
		t.Errorf("preheader terminator wrong: %v", term)
	}
	lterm := l.Latch.Terminator()
	if lterm == nil || lterm.Op != ir.OpCBr || lterm.Targets[0] != l.Header {
		t.Errorf("latch terminator wrong: %v", lterm)
	}
}

func TestLowerZeroTripPixelLoop(t *testing.T) {
	src := `
		kernel k(int out[], int n) {
			int i;
			for (i = 0; i < n; i++) { out[i] = 7; }
		}`
	out := []int32{42}
	run(t, src, ir.NewEnv(0).Bind("out", out))
	if out[0] != 42 {
		t.Errorf("zero-trip loop wrote memory: out[0] = %d", out[0])
	}
}

func TestLowerGlobalPersistence(t *testing.T) {
	// Globals keep state across invocations when the caller reuses the
	// same environment buffers (Floyd-Steinberg's error buffer pattern).
	src := `
		int acc[1];
		kernel accumulate(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				acc[0] += in[i];
				out[i] = acc[0];
			}
		}`
	fn, err := CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	accBuf := []int32{0}
	in := []int32{1, 2, 3}
	out := make([]int32, 3)
	env := ir.NewEnv(3).Bind("in", in).Bind("out", out).Bind("acc", accBuf)
	if _, err := ir.Interp(fn, env); err != nil {
		t.Fatal(err)
	}
	if out[2] != 6 || accBuf[0] != 6 {
		t.Errorf("first pass: out[2]=%d acc=%d, want 6 6", out[2], accBuf[0])
	}
	if _, err := ir.Interp(fn, env); err != nil {
		t.Fatal(err)
	}
	if accBuf[0] != 12 {
		t.Errorf("second pass acc = %d, want 12", accBuf[0])
	}
}

func TestLowerLEBound(t *testing.T) {
	src := `
		kernel k(int out[], int n) {
			int i;
			for (i = 0; i <= n; i++) { out[i] = i; }
		}`
	out := make([]int32, 4)
	run(t, src, ir.NewEnv(3).Bind("out", out))
	for i := int32(0); i < 4; i++ {
		if out[i] != i {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i)
		}
	}
}

func TestLowerVerifiesAllKernels(t *testing.T) {
	fns, err := Compile(`
		kernel a(int o[], int n) { int i; for (i = 0; i < n; i++) { o[i] = i * i; } }
		kernel b(int o[], int n) { int i; for (i = 0; i < n; i++) { o[i] = i + i; } }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 {
		t.Fatalf("kernels = %d, want 2", len(fns))
	}
	for _, fn := range fns {
		if err := fn.Verify(); err != nil {
			t.Errorf("%s: %v", fn.Name, err)
		}
	}
}

func min(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func TestLowerUnaryChainSemantics(t *testing.T) {
	src := `
		kernel u(int out[], int a) {
			out[0] = - - a;
			out[1] = ~~a;
			out[2] = !!a;
			out[3] = -a + ~a;
		}`
	for _, a := range []int32{0, 5, -7, 2147483647} {
		out := make([]int32, 4)
		run(t, src, ir.NewEnv(a).Bind("out", out))
		nb := int32(0)
		if a != 0 {
			nb = 1
		}
		want := []int32{a, a, nb, -a + ^a}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("a=%d out[%d] = %d, want %d", a, i, out[i], want[i])
			}
		}
	}
}

func TestLowerArrayCompoundOps(t *testing.T) {
	src := `
		kernel c(int a[], int n) {
			a[0] += 5;
			a[1] *= 3;
			a[2] >>= 1;
			a[3]++;
		}`
	arr := []int32{10, 10, 10, 10}
	run(t, src, ir.NewEnv(4).Bind("a", arr))
	want := []int32{15, 30, 5, 11}
	for i := range want {
		if arr[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, arr[i], want[i])
		}
	}
}
