package cc

import (
	"strings"
	"testing"
)

func checkErr(t *testing.T, src, frag string) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	err = Check(f)
	if frag == "" {
		if err != nil {
			t.Errorf("Check(%q) = %v, want nil", src, err)
		}
		return
	}
	if err == nil || !strings.Contains(err.Error(), frag) {
		t.Errorf("Check(%q) = %v, want containing %q", src, err, frag)
	}
}

func TestCheckAcceptsValidKernel(t *testing.T) {
	checkErr(t, `
		short errBuf[256];
		const int w[4] = {1, 3, 3, 1};
		kernel k(byte in[], byte out[], int n) {
			int i;
			int acc;
			for (i = 0; i < n; i++) {
				int c;
				acc = 0;
				for (c = 0; c < 4; c++) {
					acc += in[i + c] * w[c];
				}
				out[i] = (byte) (acc >> 3);
			}
		}
	`, "")
}

func TestCheckUndeclared(t *testing.T) {
	checkErr(t, `kernel k(int a) { int x; x = y + 1; }`, `undeclared variable "y"`)
	checkErr(t, `kernel k(int a) { z = 1; }`, `undeclared variable "z"`)
	checkErr(t, `kernel k(int a) { int x; x = t[0]; }`, `undeclared array "t"`)
}

func TestCheckScalarArrayMisuse(t *testing.T) {
	checkErr(t, `kernel k(byte in[], int a) { int x; x = in + 1; }`, "without an index")
	checkErr(t, `kernel k(byte in[], int a) { in = 3; }`, "without an index")
	checkErr(t, `kernel k(int a) { int x; x = a[0]; }`, "cannot index scalar")
	checkErr(t, `kernel k(int a) { a[1] = 2; }`, "cannot index scalar")
}

func TestCheckConstArray(t *testing.T) {
	checkErr(t, `const int t[2] = {1, 2}; kernel k(int a) { t[0] = 5; }`, "const array")
	checkErr(t, `const int t[2]; kernel k(int a) { }`, "must have an initializer")
	checkErr(t, `int t[2] = {1, 2, 3}; kernel k(int a) { }`, "3 initializers for 2")
}

func TestCheckDivisionRestrictions(t *testing.T) {
	checkErr(t, `kernel k(int a) { int x; x = a / 3; }`, "power-of-two")
	checkErr(t, `kernel k(int a) { int x; x = a % 6; }`, "power-of-two")
	checkErr(t, `kernel k(int a) { int x; x = a / a; }`, "power-of-two")
	checkErr(t, `kernel k(int a) { int x; x = a / 8; x = a % 16; }`, "")
}

func TestCheckDuplicates(t *testing.T) {
	checkErr(t, `kernel k(int a, int a) { }`, "duplicate parameter")
	checkErr(t, `kernel k(int a) { int x; int x; }`, "duplicate declaration")
	// Shadowing in an inner scope is allowed.
	checkErr(t, `kernel k(int a) { int x; { int x; x = 1; } }`, "")
}

func TestCheckLoopStructure(t *testing.T) {
	// Two runtime loops at top level: rejected.
	checkErr(t, `kernel k(int n) {
		int i; int j;
		for (i = 0; i < n; i++) { }
		for (j = 0; j < n; j++) { }
	}`, "more than one runtime-bound loop")
	// Runtime loop nested in an if: rejected.
	checkErr(t, `kernel k(int n) {
		int i;
		if (n > 0) { for (i = 0; i < n; i++) { } }
	}`, "top level")
	// Constant inner loop nested in the pixel loop: fine.
	checkErr(t, `kernel k(byte o[], int n) {
		int i;
		for (i = 0; i < n; i++) {
			int c;
			for (c = 0; c < 3; c++) { o[i * 3 + c] = 0; }
		}
	}`, "")
	// Assigning the induction variable inside the loop: rejected.
	checkErr(t, `kernel k(int n) {
		int i;
		for (i = 0; i < n; i++) { i = 0; }
	}`, "loop variable")
	// Assigning the bound inside the loop: rejected.
	checkErr(t, `kernel k(byte o[], int n) {
		int i;
		for (i = 0; i < n; i++) { n = 3; }
	}`, "loop variable")
}

func TestCheckBuiltins(t *testing.T) {
	checkErr(t, `kernel k(int a) { int x; x = min(a, 3); x = clamp(x, 0, 255); x = abs(x); }`, "")
	checkErr(t, `kernel k(int a) { int x; x = min(a); }`, "expects 2 arguments")
	checkErr(t, `kernel k(int a) { int x; x = frobnicate(a); }`, "unknown function")
}

func TestCheckConstScalar(t *testing.T) {
	checkErr(t, `kernel k(int a) { const int x = 3; }`, "only to arrays")
}

func TestCheckZeroTripConstLoop(t *testing.T) {
	checkErr(t, `kernel k(int a) { int i; for (i = 0; i < 0; i++) { } }`, "never executes")
}

func TestEvalConst(t *testing.T) {
	cases := []struct {
		src  string
		want int32
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"-5 >> 1", -3},
		{"1 << 10", 1024},
		{"~0", -1},
		{"!3", 0},
		{"7 / 2", 3},
		{"-7 / 2", -3},
		{"1 ? 42 : 7", 42},
		{"(byte)300", 44},
		{"(short)0x8000", -32768},
		{"3 < 4", 1},
		{"1 && 0", 0},
		{"1 || 0", 1},
	}
	for _, c := range cases {
		f, err := Parse("kernel k(int a) { int x; x = " + c.src + "; }")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		e := f.Kernels[0].Body.Stmts[1].(*AssignStmt).RHS
		got, ok := EvalConst(e)
		if !ok || got != c.want {
			t.Errorf("EvalConst(%q) = %d,%v, want %d", c.src, got, ok, c.want)
		}
	}
	// Non-constant expressions must report !ok.
	f, _ := Parse("kernel k(int a) { int x; x = a + 1; }")
	e := f.Kernels[0].Body.Stmts[1].(*AssignStmt).RHS
	if _, ok := EvalConst(e); ok {
		t.Error("EvalConst(a+1) = ok, want not constant")
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Compile("kernel k(int a) {\n\tint x;\n\tx = y;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	var ce *Error
	if !errorsAs(err, &ce) {
		t.Fatalf("error %T does not carry a position", err)
	}
	if ce.Pos.Line != 3 {
		t.Errorf("error at line %d, want 3: %v", ce.Pos.Line, err)
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("rendered error lacks position: %v", err)
	}
}

// errorsAs is a minimal errors.As for *Error without importing errors
// in several places.
func errorsAs(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
