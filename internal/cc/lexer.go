package cc

import (
	"strconv"
)

// Lexer tokenizes CKC source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream (terminated
// by an EOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		base := 10
		if c == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
			base = 16
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
				lx.advance()
			}
			if lx.off == start+2 {
				return Token{}, errf(pos, "malformed hex literal")
			}
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		text := lx.src[start:lx.off]
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		v, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return Token{}, errf(pos, "integer literal %q out of 32-bit range", text)
		}
		return Token{Kind: NUMBER, Text: text, Val: int32(uint32(v)), Pos: pos}, nil
	}
	// Operators and punctuation, longest match first.
	three := ""
	if lx.off+3 <= len(lx.src) {
		three = lx.src[lx.off : lx.off+3]
	}
	two := ""
	if lx.off+2 <= len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	if k, ok := threeCharOps[three]; ok {
		lx.advance()
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: three, Pos: pos}, nil
	}
	if k, ok := twoCharOps[two]; ok {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: two, Pos: pos}, nil
	}
	if k, ok := oneCharOps[c]; ok {
		lx.advance()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

var threeCharOps = map[string]Kind{
	"<<=": SHLEQ, ">>=": SHREQ,
}

var twoCharOps = map[string]Kind{
	"+=": PLUSEQ, "-=": MINUSEQ, "*=": STAREQ, "/=": SLASHEQ, "%=": PERCENTEQ,
	"&=": ANDEQ, "|=": OREQ, "^=": XOREQ,
	"++": PLUSPLUS, "--": MINUSMINUS,
	"<<": SHL, ">>": SHR, "&&": ANDAND, "||": OROR,
	"==": EQ, "!=": NE, "<=": LE, ">=": GE,
}

var oneCharOps = map[byte]Kind{
	'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE, '[': LBRACK,
	']': RBRACK, ';': SEMI, ',': COMMA, '?': QUESTION, ':': COLON,
	'=': ASSIGN, '+': PLUS, '-': MINUS, '*': STAR, '/': SLASH,
	'%': PERCENT, '<': LT, '>': GT, '&': AMP, '|': PIPE, '^': CARET,
	'~': TILDE, '!': BANG,
}
