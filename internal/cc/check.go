package cc

import "fmt"

// MaxFullUnroll is the largest constant trip count the frontend fully
// unrolls at lowering time. Constant-trip loops up to this bound (color
// channels, filter taps, DCT lanes) disappear into straight-line code;
// anything larger, or any loop with a runtime bound, must be the
// kernel's single streaming "pixel loop".
const MaxFullUnroll = 64

// Check validates a parsed CKC file: name resolution, scalar/array
// usage, constant restrictions (division only by power-of-two literals),
// and the canonical loop structure the backend depends on (exactly one
// runtime-trip pixel loop per kernel, at the top level of the body).
func Check(f *File) error {
	c := &checker{}
	globals := newScope(nil)
	for _, g := range f.Globals {
		if err := c.checkGlobal(globals, g); err != nil {
			return err
		}
	}
	for _, k := range f.Kernels {
		if err := c.checkKernel(globals, k); err != nil {
			return err
		}
	}
	return nil
}

type symKind uint8

const (
	scalarSym symKind = iota
	arraySym
)

type csym struct {
	kind    symKind
	isConst bool
	size    int // arrays; 0 = unsized parameter
}

type cscope struct {
	parent *cscope
	syms   map[string]*csym
}

func newScope(parent *cscope) *cscope {
	return &cscope{parent: parent, syms: map[string]*csym{}}
}

func (s *cscope) lookup(name string) *csym {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *cscope) declare(name string, sym *csym) bool {
	if _, dup := s.syms[name]; dup {
		return false
	}
	s.syms[name] = sym
	return true
}

type checker struct {
	// pixelLoops counts runtime-trip loops in the current kernel.
	pixelLoops int
	// loopVars tracks induction/bound variables of enclosing loops that
	// must not be assigned inside their bodies.
	frozen map[string]bool
}

func (c *checker) checkGlobal(globals *cscope, d *VarDecl) error {
	if !d.IsArray {
		return errf(d.Pos, "top-level declarations must be arrays (scalar %q)", d.Name)
	}
	if err := c.checkArrayDecl(globals, d); err != nil {
		return err
	}
	if !globals.declare(d.Name, &csym{kind: arraySym, isConst: d.IsConst, size: c.mustConstSize(d)}) {
		return errf(d.Pos, "duplicate declaration of %q", d.Name)
	}
	return nil
}

func (c *checker) mustConstSize(d *VarDecl) int {
	v, _ := EvalConst(d.Size)
	return int(v)
}

func (c *checker) checkArrayDecl(sc *cscope, d *VarDecl) error {
	size, ok := EvalConst(d.Size)
	if !ok {
		return errf(d.Pos, "array %q size must be a constant expression", d.Name)
	}
	if size <= 0 {
		return errf(d.Pos, "array %q size must be positive, got %d", d.Name, size)
	}
	if d.IsConst && len(d.Inits) == 0 {
		return errf(d.Pos, "const array %q must have an initializer", d.Name)
	}
	if len(d.Inits) > int(size) {
		return errf(d.Pos, "array %q has %d initializers for %d elements", d.Name, len(d.Inits), size)
	}
	for _, e := range d.Inits {
		if _, ok := EvalConst(e); !ok {
			return errf(e.ExprPos(), "array initializer for %q must be constant", d.Name)
		}
	}
	if d.Init != nil {
		return errf(d.Pos, "array %q cannot have a scalar initializer", d.Name)
	}
	return nil
}

func (c *checker) checkKernel(globals *cscope, k *Kernel) error {
	c.pixelLoops = 0
	c.frozen = map[string]bool{}
	sc := newScope(globals)
	for _, p := range k.Params {
		sym := &csym{kind: scalarSym}
		if p.IsArray {
			sym.kind = arraySym
		} else if p.Type != TInt {
			return errf(p.Pos, "scalar parameter %q must have type int", p.Name)
		}
		if !sc.declare(p.Name, sym) {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
	}
	return c.checkBlock(sc, k.Body, true)
}

// checkBlock validates a statement block. topLevel marks the kernel's
// outermost block, the only place a pixel loop may appear.
func (c *checker) checkBlock(sc *cscope, b *BlockStmt, topLevel bool) error {
	inner := newScope(sc)
	for _, s := range b.Stmts {
		if err := c.checkStmt(inner, s, topLevel); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(sc *cscope, s Stmt, topLevel bool) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(sc, st, false)
	case *DeclStmt:
		return c.checkDecl(sc, st.Decl)
	case *AssignStmt:
		return c.checkAssign(sc, st)
	case *ForStmt:
		return c.checkFor(sc, st, topLevel)
	case *IfStmt:
		if err := c.checkExpr(sc, st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(sc, st.Then, false); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(sc, st.Else, false)
		}
		return nil
	case *ReturnStmt:
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

func (c *checker) checkDecl(sc *cscope, d *VarDecl) error {
	if d.IsArray {
		if err := c.checkArrayDecl(sc, d); err != nil {
			return err
		}
		if !sc.declare(d.Name, &csym{kind: arraySym, isConst: d.IsConst, size: c.mustConstSize(d)}) {
			return errf(d.Pos, "duplicate declaration of %q", d.Name)
		}
		return nil
	}
	if d.IsConst {
		return errf(d.Pos, "const applies only to arrays (scalar %q)", d.Name)
	}
	if d.Init != nil {
		if err := c.checkExpr(sc, d.Init); err != nil {
			return err
		}
	}
	if !sc.declare(d.Name, &csym{kind: scalarSym}) {
		return errf(d.Pos, "duplicate declaration of %q", d.Name)
	}
	return nil
}

func (c *checker) checkAssign(sc *cscope, st *AssignStmt) error {
	sym := sc.lookup(st.LHS.Name)
	if sym == nil {
		return errf(st.LHS.Pos, "undeclared variable %q", st.LHS.Name)
	}
	if st.LHS.Index == nil {
		if sym.kind != scalarSym {
			return errf(st.LHS.Pos, "cannot assign to array %q without an index", st.LHS.Name)
		}
		if c.frozen[st.LHS.Name] {
			return errf(st.LHS.Pos, "cannot assign to loop variable %q inside its loop", st.LHS.Name)
		}
	} else {
		if sym.kind != arraySym {
			return errf(st.LHS.Pos, "cannot index scalar %q", st.LHS.Name)
		}
		if sym.isConst {
			return errf(st.LHS.Pos, "cannot assign to const array %q", st.LHS.Name)
		}
		if err := c.checkExpr(sc, st.LHS.Index); err != nil {
			return err
		}
	}
	return c.checkExpr(sc, st.RHS)
}

func (c *checker) checkFor(sc *cscope, st *ForStmt, topLevel bool) error {
	sym := sc.lookup(st.Var)
	if sym == nil {
		return errf(st.Pos, "undeclared loop variable %q", st.Var)
	}
	if sym.kind != scalarSym {
		return errf(st.Pos, "loop variable %q must be a scalar", st.Var)
	}
	if err := c.checkExpr(sc, st.Init); err != nil {
		return err
	}
	bound, le, err := c.loopBound(st)
	if err != nil {
		return err
	}
	_ = le
	if err := c.checkExpr(sc, bound); err != nil {
		return err
	}
	trip, isConst := c.constTrip(st)
	if isConst && trip <= MaxFullUnroll {
		// Fully unrolled at lowering: body checked with the induction
		// variable frozen (it becomes a constant binding).
		if trip <= 0 {
			return errf(st.Pos, "constant loop over %q never executes", st.Var)
		}
		c.frozen[st.Var] = true
		defer delete(c.frozen, st.Var)
		return c.checkBlock(sc, st.Body, false)
	}
	// Runtime-trip pixel loop.
	if !topLevel {
		return errf(st.Pos, "runtime-bound loop over %q must be at the top level of the kernel", st.Var)
	}
	c.pixelLoops++
	if c.pixelLoops > 1 {
		return errf(st.Pos, "kernel has more than one runtime-bound loop; fuse them or make inner trips constant")
	}
	if bv, ok := bound.(*VarRef); ok {
		bsym := sc.lookup(bv.Name)
		if bsym == nil || bsym.kind != scalarSym {
			return errf(bv.Pos, "loop bound %q must be a scalar", bv.Name)
		}
		c.frozen[bv.Name] = true
		defer delete(c.frozen, bv.Name)
	}
	c.frozen[st.Var] = true
	defer delete(c.frozen, st.Var)
	return c.checkBlock(sc, st.Body, false)
}

// loopBound extracts the bound expression from the loop condition,
// which must have the shape `v < bound` or `v <= bound`.
func (c *checker) loopBound(st *ForStmt) (Expr, bool, error) {
	be, ok := st.Cond.(*BinaryExpr)
	if !ok || (be.Op != LT && be.Op != LE) {
		return nil, false, errf(st.Pos, "loop condition must be `%s < bound` or `%s <= bound`", st.Var, st.Var)
	}
	vr, ok := be.L.(*VarRef)
	if !ok || vr.Name != st.Var {
		return nil, false, errf(st.Pos, "loop condition must compare the loop variable %q", st.Var)
	}
	switch be.R.(type) {
	case *IntLit, *VarRef:
	default:
		return nil, false, errf(be.R.ExprPos(), "loop bound must be a literal or a variable")
	}
	return be.R, be.Op == LE, nil
}

// constTrip returns the loop's trip count if both the initial value and
// the bound are compile-time constants.
func (c *checker) constTrip(st *ForStmt) (int, bool) {
	init, ok1 := EvalConst(st.Init)
	bound, le, err := c.loopBound(st)
	if err != nil {
		return 0, false
	}
	bv, ok2 := EvalConst(bound)
	if !ok1 || !ok2 {
		return 0, false
	}
	trip := int(bv - init)
	if le {
		trip++
	}
	return trip, true
}

func (c *checker) checkExpr(sc *cscope, e Expr) error {
	switch ex := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		sym := sc.lookup(ex.Name)
		if sym == nil {
			return errf(ex.Pos, "undeclared variable %q", ex.Name)
		}
		if sym.kind != scalarSym {
			return errf(ex.Pos, "array %q used without an index", ex.Name)
		}
		return nil
	case *IndexExpr:
		sym := sc.lookup(ex.Name)
		if sym == nil {
			return errf(ex.Pos, "undeclared array %q", ex.Name)
		}
		if sym.kind != arraySym {
			return errf(ex.Pos, "cannot index scalar %q", ex.Name)
		}
		return c.checkExpr(sc, ex.Index)
	case *BinaryExpr:
		if err := c.checkExpr(sc, ex.L); err != nil {
			return err
		}
		if err := c.checkExpr(sc, ex.R); err != nil {
			return err
		}
		if ex.Op == SLASH || ex.Op == PERCENT {
			v, ok := EvalConst(ex.R)
			if !ok || v <= 0 || v&(v-1) != 0 {
				return errf(ex.Pos, "division/modulo only by positive power-of-two constants (the template has no divide unit)")
			}
		}
		return nil
	case *UnaryExpr:
		return c.checkExpr(sc, ex.X)
	case *CondExpr:
		if err := c.checkExpr(sc, ex.Cond); err != nil {
			return err
		}
		if err := c.checkExpr(sc, ex.Then); err != nil {
			return err
		}
		return c.checkExpr(sc, ex.Else)
	case *CastExpr:
		return c.checkExpr(sc, ex.X)
	case *CallExpr:
		arity, ok := builtinArity[ex.Name]
		if !ok {
			return errf(ex.Pos, "unknown function %q (builtins: min, max, abs, clamp)", ex.Name)
		}
		if len(ex.Args) != arity {
			return errf(ex.Pos, "%s expects %d arguments, got %d", ex.Name, arity, len(ex.Args))
		}
		for _, a := range ex.Args {
			if err := c.checkExpr(sc, a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("cc: unknown expression %T", e)
}

var builtinArity = map[string]int{"min": 2, "max": 2, "abs": 1, "clamp": 3}

// EvalConst folds a constant expression, reporting success. Variable
// references are not constant (full-unroll constant bindings are handled
// during lowering, not here).
func EvalConst(e Expr) (int32, bool) {
	switch ex := e.(type) {
	case nil:
		return 0, false
	case *IntLit:
		return ex.Val, true
	case *UnaryExpr:
		v, ok := EvalConst(ex.X)
		if !ok {
			return 0, false
		}
		switch ex.Op {
		case MINUS:
			return -v, true
		case TILDE:
			return ^v, true
		case BANG:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *CastExpr:
		v, ok := EvalConst(ex.X)
		if !ok {
			return 0, false
		}
		return ex.Type.Elem().Extend(v), true
	case *BinaryExpr:
		l, ok1 := EvalConst(ex.L)
		r, ok2 := EvalConst(ex.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		return evalConstBin(ex.Op, l, r)
	case *CondExpr:
		c, ok := EvalConst(ex.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return EvalConst(ex.Then)
		}
		return EvalConst(ex.Else)
	}
	return 0, false
}

func evalConstBin(op Kind, l, r int32) (int32, bool) {
	switch op {
	case PLUS:
		return l + r, true
	case MINUS:
		return l - r, true
	case STAR:
		return l * r, true
	case SLASH:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case PERCENT:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case SHL:
		return l << (uint32(r) & 31), true
	case SHR:
		return l >> (uint32(r) & 31), true
	case AMP:
		return l & r, true
	case PIPE:
		return l | r, true
	case CARET:
		return l ^ r, true
	case EQ:
		return cb(l == r), true
	case NE:
		return cb(l != r), true
	case LT:
		return cb(l < r), true
	case LE:
		return cb(l <= r), true
	case GT:
		return cb(l > r), true
	case GE:
		return cb(l >= r), true
	case ANDAND:
		return cb(l != 0 && r != 0), true
	case OROR:
		return cb(l != 0 || r != 0), true
	}
	return 0, false
}

func cb(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
