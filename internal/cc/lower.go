package cc

import (
	"fmt"
	"math/bits"

	"customfit/internal/ir"
	"customfit/internal/obs"
)

// Compile parses, checks and lowers CKC source, returning one ir.Func
// per kernel.
func Compile(src string) ([]*ir.Func, error) {
	return CompileSpan(nil, src)
}

// CompileSpan is Compile with its frontend phases (parse, check, lower)
// recorded as telemetry spans under sp (or as root spans when sp is
// nil and a collector is installed).
func CompileSpan(sp *obs.Span, src string) ([]*ir.Func, error) {
	psp := obs.Under(sp, "parse").Int("source_bytes", int64(len(src)))
	file, err := Parse(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	ksp := obs.Under(sp, "check")
	err = Check(file)
	ksp.End()
	if err != nil {
		return nil, err
	}
	lsp := obs.Under(sp, "lower")
	fns, err := LowerFile(file)
	lsp.Int("kernels", int64(len(fns))).End()
	return fns, err
}

// CompileKernel is Compile for sources containing a single kernel.
func CompileKernel(src string) (*ir.Func, error) {
	return CompileKernelSpan(nil, src)
}

// CompileKernelSpan is CompileKernel with telemetry spans under sp.
func CompileKernelSpan(sp *obs.Span, src string) (*ir.Func, error) {
	fns, err := CompileSpan(sp, src)
	if err != nil {
		return nil, err
	}
	if len(fns) != 1 {
		return nil, fmt.Errorf("cc: source defines %d kernels, want 1", len(fns))
	}
	return fns[0], nil
}

// LowerFile lowers every kernel in a checked file to IR. Each function
// gets its own MemRef instances for the file's globals; the simulator
// binds them by name.
func LowerFile(f *File) ([]*ir.Func, error) {
	var out []*ir.Func
	for _, k := range f.Kernels {
		fn, err := lowerKernel(f, k)
		if err != nil {
			return nil, err
		}
		fn.RemoveUnreachable()
		if err := fn.Verify(); err != nil {
			return nil, fmt.Errorf("cc: internal error lowering %s: %w", k.Name, err)
		}
		out = append(out, fn)
	}
	return out, nil
}

type lsymKind uint8

const (
	lScalar lsymKind = iota
	lArray
	lConstVal // full-unroll induction binding
)

type lsym struct {
	kind lsymKind
	reg  ir.Reg     // lScalar home register
	mem  *ir.MemRef // lArray
	val  int32      // lConstVal
}

type lscope struct {
	parent *lscope
	syms   map[string]*lsym
}

func (s *lscope) lookup(name string) *lsym {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type lowerer struct {
	f       *ir.Func
	cur     *ir.Block
	memSeq  int
	retSeen bool
}

func lowerKernel(file *File, k *Kernel) (*ir.Func, error) {
	lw := &lowerer{f: ir.NewFunc(k.Name)}
	globalScope := &lscope{syms: map[string]*lsym{}}

	for _, g := range file.Globals {
		size, _ := EvalConst(g.Size)
		mem := &ir.MemRef{
			Name:   g.Name,
			Space:  ir.L1,
			Elem:   g.Type.Elem(),
			Size:   int(size),
			Global: true,
			Const:  g.IsConst,
			Init:   constInits(g),
		}
		lw.f.AddMem(mem)
		globalScope.syms[g.Name] = &lsym{kind: lArray, mem: mem}
	}

	paramScope := &lscope{parent: globalScope, syms: map[string]*lsym{}}
	for _, p := range k.Params {
		if p.IsArray {
			mem := &ir.MemRef{
				Name:    p.Name,
				Space:   ir.L2,
				Elem:    p.Type.Elem(),
				IsParam: true,
			}
			lw.f.AddMem(mem)
			paramScope.syms[p.Name] = &lsym{kind: lArray, mem: mem}
		} else {
			pp := lw.f.AddScalarParam(p.Name)
			paramScope.syms[p.Name] = &lsym{kind: lScalar, reg: pp.Reg}
		}
	}

	lw.cur = lw.f.NewBlock("entry")
	if err := lw.block(paramScope, k.Body); err != nil {
		return nil, err
	}
	if lw.cur.Terminator() == nil {
		lw.cur.Append(&ir.Instr{Op: ir.OpRet, Dest: ir.NoReg})
	}
	return lw.f, nil
}

func constInits(d *VarDecl) []int32 {
	if len(d.Inits) == 0 {
		return nil
	}
	out := make([]int32, len(d.Inits))
	for i, e := range d.Inits {
		v, _ := EvalConst(e)
		out[i] = d.Type.Elem().Truncate(v)
	}
	return out
}

// emit appends a pure instruction, constant-folding when all operands
// are immediates, and returns the result operand.
func (lw *lowerer) emit(op ir.Op, args ...ir.Operand) ir.Operand {
	allImm := true
	for _, a := range args {
		if !a.IsImm() {
			allImm = false
			break
		}
	}
	if allImm {
		vals := make([]int32, len(args))
		for i, a := range args {
			vals[i] = a.Imm
		}
		return ir.Imm(op.Eval(vals...))
	}
	dest := lw.f.NewReg()
	lw.cur.Append(ir.NewInstr(op, dest, args...))
	return ir.R(dest)
}

// emitTo appends `mov dest, src` (no folding; dest is a home register).
func (lw *lowerer) emitTo(dest ir.Reg, src ir.Operand) {
	lw.cur.Append(ir.NewInstr(ir.OpMov, dest, src))
}

func (lw *lowerer) block(parent *lscope, b *BlockStmt) error {
	sc := &lscope{parent: parent, syms: map[string]*lsym{}}
	for _, s := range b.Stmts {
		if err := lw.stmt(sc, s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(sc *lscope, s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return lw.block(sc, st)
	case *DeclStmt:
		return lw.decl(sc, st.Decl)
	case *AssignStmt:
		return lw.assign(sc, st)
	case *IfStmt:
		return lw.ifStmt(sc, st)
	case *ForStmt:
		return lw.forStmt(sc, st)
	case *ReturnStmt:
		lw.cur.Append(&ir.Instr{Op: ir.OpRet, Dest: ir.NoReg})
		lw.cur = lw.f.NewBlock("dead")
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

func (lw *lowerer) decl(sc *lscope, d *VarDecl) error {
	if d.IsArray {
		size, _ := EvalConst(d.Size)
		name := d.Name
		if lw.f.MemByName(name) != nil {
			lw.memSeq++
			name = fmt.Sprintf("%s$%d", d.Name, lw.memSeq)
		}
		mem := &ir.MemRef{
			Name:  name,
			Space: ir.L1,
			Elem:  d.Type.Elem(),
			Size:  int(size),
			Const: d.IsConst,
			Init:  constInits(d),
		}
		lw.f.AddMem(mem)
		sc.syms[d.Name] = &lsym{kind: lArray, mem: mem}
		return nil
	}
	home := lw.f.NewReg()
	init := ir.Imm(0) // CKC zero-initializes scalars (documented divergence from C)
	if d.Init != nil {
		v, err := lw.expr(sc, d.Init)
		if err != nil {
			return err
		}
		init = v
	}
	lw.emitTo(home, init)
	sc.syms[d.Name] = &lsym{kind: lScalar, reg: home}
	return nil
}

func (lw *lowerer) assign(sc *lscope, st *AssignStmt) error {
	sym := sc.lookup(st.LHS.Name)
	if sym == nil {
		return errf(st.LHS.Pos, "undeclared variable %q", st.LHS.Name)
	}
	// Compute the new value. Compound assignment reads the old value.
	var old ir.Operand
	var idx ir.Operand
	if st.LHS.Index != nil {
		v, err := lw.expr(sc, st.LHS.Index)
		if err != nil {
			return err
		}
		idx = v
	}
	if st.Op != ASSIGN {
		if st.LHS.Index == nil {
			old = ir.R(sym.reg)
		} else {
			old = lw.load(sym.mem, idx)
		}
	}
	rhs, err := lw.expr(sc, st.RHS)
	if err != nil {
		return err
	}
	val := rhs
	if st.Op != ASSIGN {
		val, err = lw.binOp(compoundBase(st.Op), old, rhs, st.Pos)
		if err != nil {
			return err
		}
	}
	if st.LHS.Index == nil {
		lw.emitTo(sym.reg, val)
		return nil
	}
	lw.cur.Append(&ir.Instr{
		Op: ir.OpStore, Dest: ir.NoReg,
		Args: []ir.Operand{idx, val},
		Mem:  sym.mem, Elem: sym.mem.Elem,
	})
	return nil
}

func compoundBase(k Kind) Kind {
	switch k {
	case PLUSEQ:
		return PLUS
	case MINUSEQ:
		return MINUS
	case STAREQ:
		return STAR
	case SLASHEQ:
		return SLASH
	case PERCENTEQ:
		return PERCENT
	case SHLEQ:
		return SHL
	case SHREQ:
		return SHR
	case ANDEQ:
		return AMP
	case OREQ:
		return PIPE
	case XOREQ:
		return CARET
	}
	panic(fmt.Sprintf("cc: not a compound assignment op: %s", k))
}

func (lw *lowerer) load(mem *ir.MemRef, idx ir.Operand) ir.Operand {
	dest := lw.f.NewReg()
	lw.cur.Append(&ir.Instr{
		Op: ir.OpLoad, Dest: dest,
		Args: []ir.Operand{idx},
		Mem:  mem, Elem: mem.Elem,
	})
	return ir.R(dest)
}

func (lw *lowerer) ifStmt(sc *lscope, st *IfStmt) error {
	cond, err := lw.expr(sc, st.Cond)
	if err != nil {
		return err
	}
	if cond.IsImm() {
		// Statically decided branch: lower only the taken arm.
		if cond.Imm != 0 {
			return lw.block(sc, st.Then)
		}
		if st.Else != nil {
			return lw.block(sc, st.Else)
		}
		return nil
	}
	thenB := lw.f.NewBlock("then")
	join := lw.f.NewBlock("join")
	elseB := join
	if st.Else != nil {
		elseB = lw.f.NewBlock("else")
	}
	lw.cur.Append(&ir.Instr{
		Op: ir.OpCBr, Dest: ir.NoReg,
		Args:    []ir.Operand{cond},
		Targets: []*ir.Block{thenB, elseB},
	})
	lw.cur = thenB
	if err := lw.block(sc, st.Then); err != nil {
		return err
	}
	if lw.cur.Terminator() == nil {
		lw.cur.Append(&ir.Instr{Op: ir.OpBr, Dest: ir.NoReg, Targets: []*ir.Block{join}})
	}
	if st.Else != nil {
		lw.cur = elseB
		if err := lw.block(sc, st.Else); err != nil {
			return err
		}
		if lw.cur.Terminator() == nil {
			lw.cur.Append(&ir.Instr{Op: ir.OpBr, Dest: ir.NoReg, Targets: []*ir.Block{join}})
		}
	}
	lw.cur = join
	return nil
}

func (lw *lowerer) forStmt(sc *lscope, st *ForStmt) error {
	sym := sc.lookup(st.Var)
	if sym == nil || sym.kind != lScalar {
		return errf(st.Pos, "loop variable %q must be a declared scalar", st.Var)
	}
	bound, le := loopBoundExpr(st)
	initV, initConst := EvalConst(st.Init)
	boundV, boundConst := EvalConst(bound)
	if initConst && boundConst {
		trip := int(boundV - initV)
		if le {
			trip++
		}
		if trip <= MaxFullUnroll {
			return lw.fullUnroll(sc, st, initV, trip)
		}
	}
	return lw.pixelLoop(sc, st, sym, bound, le)
}

func loopBoundExpr(st *ForStmt) (Expr, bool) {
	be := st.Cond.(*BinaryExpr) // shape validated by Check
	return be.R, be.Op == LE
}

// fullUnroll expands a constant-trip loop by binding the induction
// variable to each constant value in turn. The loop variable's home
// register is left holding its final value, matching C semantics.
func (lw *lowerer) fullUnroll(sc *lscope, st *ForStmt, init int32, trip int) error {
	inner := &lscope{parent: sc, syms: map[string]*lsym{}}
	bind := &lsym{kind: lConstVal}
	inner.syms[st.Var] = bind
	for k := 0; k < trip; k++ {
		bind.val = init + int32(k)
		if err := lw.block(inner, st.Body); err != nil {
			return err
		}
	}
	// Final value visible after the loop.
	outer := sc.lookup(st.Var)
	lw.emitTo(outer.reg, ir.Imm(init+int32(trip)))
	return nil
}

// pixelLoop lowers the kernel's runtime-trip streaming loop in rotated
// form and records LoopInfo for the unroller and scheduler.
func (lw *lowerer) pixelLoop(sc *lscope, st *ForStmt, sym *lsym, bound Expr, le bool) error {
	if lw.f.Loop != nil {
		return errf(st.Pos, "kernel has more than one runtime-bound loop")
	}
	limit, err := lw.expr(sc, bound)
	if err != nil {
		return err
	}
	if le {
		limit = lw.emit(ir.OpAdd, limit, ir.Imm(1))
	}
	initV, err := lw.expr(sc, st.Init)
	if err != nil {
		return err
	}
	lw.emitTo(sym.reg, initV)

	pre := lw.cur
	body := lw.f.NewBlock("loop")
	exit := lw.f.NewBlock("exit")
	guard := lw.emit(ir.OpCmpLT, ir.R(sym.reg), limit)
	lw.appendCBr(guard, body, exit)

	lw.cur = body
	if err := lw.block(sc, st.Body); err != nil {
		return err
	}
	if lw.cur.Terminator() != nil {
		return errf(st.Pos, "return inside the pixel loop is not supported")
	}
	latch := lw.cur
	// Control tail: i' = i + 1; i = i'; t = i' < limit; cbr t, body, exit.
	nxt := lw.emit(ir.OpAdd, ir.R(sym.reg), ir.Imm(1))
	lw.emitTo(sym.reg, nxt)
	back := lw.emit(ir.OpCmpLT, nxt, limit)
	lw.appendCBr(back, body, exit)

	lw.f.Loop = &ir.LoopInfo{
		Preheader: pre,
		Header:    body,
		Latch:     latch,
		Exit:      exit,
		IndVar:    sym.reg,
		Limit:     limit,
		Step:      1,
	}
	lw.cur = exit
	return nil
}

func (lw *lowerer) appendCBr(cond ir.Operand, t, f *ir.Block) {
	if cond.IsImm() {
		target := f
		if cond.Imm != 0 {
			target = t
		}
		lw.cur.Append(&ir.Instr{Op: ir.OpBr, Dest: ir.NoReg, Targets: []*ir.Block{target}})
		return
	}
	lw.cur.Append(&ir.Instr{
		Op: ir.OpCBr, Dest: ir.NoReg,
		Args:    []ir.Operand{cond},
		Targets: []*ir.Block{t, f},
	})
}

// expr lowers an expression to an operand (immediate when constant).
func (lw *lowerer) expr(sc *lscope, e Expr) (ir.Operand, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ir.Imm(ex.Val), nil
	case *VarRef:
		sym := sc.lookup(ex.Name)
		if sym == nil {
			return ir.Operand{}, errf(ex.Pos, "undeclared variable %q", ex.Name)
		}
		switch sym.kind {
		case lConstVal:
			return ir.Imm(sym.val), nil
		case lScalar:
			return ir.R(sym.reg), nil
		}
		return ir.Operand{}, errf(ex.Pos, "array %q used without an index", ex.Name)
	case *IndexExpr:
		sym := sc.lookup(ex.Name)
		if sym == nil || sym.kind != lArray {
			return ir.Operand{}, errf(ex.Pos, "undeclared array %q", ex.Name)
		}
		idx, err := lw.expr(sc, ex.Index)
		if err != nil {
			return ir.Operand{}, err
		}
		return lw.load(sym.mem, idx), nil
	case *BinaryExpr:
		l, err := lw.expr(sc, ex.L)
		if err != nil {
			return ir.Operand{}, err
		}
		r, err := lw.expr(sc, ex.R)
		if err != nil {
			return ir.Operand{}, err
		}
		return lw.binOp(ex.Op, l, r, ex.Pos)
	case *UnaryExpr:
		x, err := lw.expr(sc, ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		switch ex.Op {
		case MINUS:
			return lw.emit(ir.OpSub, ir.Imm(0), x), nil
		case TILDE:
			return lw.emit(ir.OpXor, x, ir.Imm(-1)), nil
		case BANG:
			return lw.emit(ir.OpCmpEQ, x, ir.Imm(0)), nil
		}
		return ir.Operand{}, errf(ex.Pos, "unsupported unary operator %s", ex.Op)
	case *CondExpr:
		c, err := lw.expr(sc, ex.Cond)
		if err != nil {
			return ir.Operand{}, err
		}
		t, err := lw.expr(sc, ex.Then)
		if err != nil {
			return ir.Operand{}, err
		}
		f, err := lw.expr(sc, ex.Else)
		if err != nil {
			return ir.Operand{}, err
		}
		return lw.emit(ir.OpSelect, c, t, f), nil
	case *CastExpr:
		x, err := lw.expr(sc, ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		switch ex.Type {
		case TInt:
			return x, nil
		case TByte:
			return lw.emit(ir.OpAnd, x, ir.Imm(0xff)), nil
		case TUShort:
			return lw.emit(ir.OpAnd, x, ir.Imm(0xffff)), nil
		case TSByte:
			t := lw.emit(ir.OpShl, x, ir.Imm(24))
			return lw.emit(ir.OpShrA, t, ir.Imm(24)), nil
		case TShort:
			t := lw.emit(ir.OpShl, x, ir.Imm(16))
			return lw.emit(ir.OpShrA, t, ir.Imm(16)), nil
		}
		return ir.Operand{}, errf(ex.Pos, "unsupported cast")
	case *CallExpr:
		return lw.builtin(sc, ex)
	}
	return ir.Operand{}, fmt.Errorf("cc: unknown expression %T", e)
}

func (lw *lowerer) builtin(sc *lscope, ex *CallExpr) (ir.Operand, error) {
	args := make([]ir.Operand, len(ex.Args))
	for i, a := range ex.Args {
		v, err := lw.expr(sc, a)
		if err != nil {
			return ir.Operand{}, err
		}
		args[i] = v
	}
	switch ex.Name {
	case "min":
		c := lw.emit(ir.OpCmpLT, args[0], args[1])
		return lw.emit(ir.OpSelect, c, args[0], args[1]), nil
	case "max":
		c := lw.emit(ir.OpCmpGT, args[0], args[1])
		return lw.emit(ir.OpSelect, c, args[0], args[1]), nil
	case "abs":
		neg := lw.emit(ir.OpSub, ir.Imm(0), args[0])
		c := lw.emit(ir.OpCmpLT, args[0], ir.Imm(0))
		return lw.emit(ir.OpSelect, c, neg, args[0]), nil
	case "clamp":
		cLo := lw.emit(ir.OpCmpLT, args[0], args[1])
		lo := lw.emit(ir.OpSelect, cLo, args[1], args[0])
		cHi := lw.emit(ir.OpCmpGT, lo, args[2])
		return lw.emit(ir.OpSelect, cHi, args[2], lo), nil
	}
	return ir.Operand{}, errf(ex.Pos, "unknown function %q", ex.Name)
}

// binOp lowers a binary operation, handling the operators that need
// expansion: logical and/or normalize to booleans, division and modulo
// by power-of-two constants expand to shift sequences with the C
// round-toward-zero fixup.
func (lw *lowerer) binOp(op Kind, l, r ir.Operand, pos Pos) (ir.Operand, error) {
	switch op {
	case PLUS:
		return lw.emit(ir.OpAdd, l, r), nil
	case MINUS:
		return lw.emit(ir.OpSub, l, r), nil
	case STAR:
		return lw.emit(ir.OpMul, l, r), nil
	case SHL:
		return lw.emit(ir.OpShl, l, r), nil
	case SHR:
		// C's >> on signed int is arithmetic on every relevant target.
		return lw.emit(ir.OpShrA, l, r), nil
	case AMP:
		return lw.emit(ir.OpAnd, l, r), nil
	case PIPE:
		return lw.emit(ir.OpOr, l, r), nil
	case CARET:
		return lw.emit(ir.OpXor, l, r), nil
	case EQ:
		return lw.emit(ir.OpCmpEQ, l, r), nil
	case NE:
		return lw.emit(ir.OpCmpNE, l, r), nil
	case LT:
		return lw.emit(ir.OpCmpLT, l, r), nil
	case LE:
		return lw.emit(ir.OpCmpLE, l, r), nil
	case GT:
		return lw.emit(ir.OpCmpGT, l, r), nil
	case GE:
		return lw.emit(ir.OpCmpGE, l, r), nil
	case ANDAND:
		lb := lw.toBool(l)
		rb := lw.toBool(r)
		return lw.emit(ir.OpAnd, lb, rb), nil
	case OROR:
		lb := lw.toBool(l)
		rb := lw.toBool(r)
		return lw.emit(ir.OpOr, lb, rb), nil
	case SLASH, PERCENT:
		if !r.IsImm() || r.Imm <= 0 || r.Imm&(r.Imm-1) != 0 {
			return ir.Operand{}, errf(pos, "division/modulo only by positive power-of-two constants")
		}
		return lw.divPow2(op, l, r.Imm), nil
	}
	return ir.Operand{}, errf(pos, "unsupported binary operator %s", op)
}

// toBool normalizes a value to 0/1 for logical connectives.
func (lw *lowerer) toBool(x ir.Operand) ir.Operand {
	return lw.emit(ir.OpCmpNE, x, ir.Imm(0))
}

// divPow2 expands x / 2^k (or x % 2^k) with C truncation semantics:
//
//	bias = (x >> 31) & (2^k - 1)   // 2^k-1 if x negative, else 0
//	q    = (x + bias) >> k
//	rem  = x - (q << k)
func (lw *lowerer) divPow2(op Kind, x ir.Operand, c int32) ir.Operand {
	k := int32(bits.TrailingZeros32(uint32(c)))
	if k == 0 { // division by 1
		if op == SLASH {
			return x
		}
		return ir.Imm(0)
	}
	sign := lw.emit(ir.OpShrA, x, ir.Imm(31))
	bias := lw.emit(ir.OpAnd, sign, ir.Imm(c-1))
	biased := lw.emit(ir.OpAdd, x, bias)
	q := lw.emit(ir.OpShrA, biased, ir.Imm(k))
	if op == SLASH {
		return q
	}
	back := lw.emit(ir.OpShl, q, ir.Imm(k))
	return lw.emit(ir.OpSub, x, back)
}
