// Package cc implements the frontend for CKC ("custom-fit kernel C"),
// the restricted C dialect in which the paper's image-processing
// benchmarks are written. CKC covers what the paper's kernels need —
// fixed-point integer arithmetic, arrays in the two-level memory
// hierarchy, for loops, if/else, the ternary operator — and deliberately
// nothing more. Division and modulo are allowed only by power-of-two
// constants (the kernels are fixed-point; there is no divide unit in the
// architecture template).
//
// The pipeline is Lex → Parse → Check → Lower, producing an ir.Func.
package cc

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KWKernel
	KWInt
	KWShort
	KWUShort
	KWByte
	KWSByte
	KWConst
	KWFor
	KWIf
	KWElse
	KWReturn

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	QUESTION // ?
	COLON    // :

	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PERCENTEQ  // %=
	SHLEQ      // <<=
	SHREQ      // >>=
	ANDEQ      // &=
	OREQ       // |=
	XOREQ      // ^=
	PLUSPLUS   // ++
	MINUSMINUS // --

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	SHL     // <<
	SHR     // >>
	AMP     // &
	PIPE    // |
	CARET   // ^
	TILDE   // ~
	BANG    // !
	ANDAND  // &&
	OROR    // ||
	EQ      // ==
	NE      // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KWKernel: "kernel", KWInt: "int", KWShort: "short", KWUShort: "ushort",
	KWByte: "byte", KWSByte: "sbyte", KWConst: "const", KWFor: "for",
	KWIf: "if", KWElse: "else", KWReturn: "return",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[",
	RBRACK: "]", SEMI: ";", COMMA: ",", QUESTION: "?", COLON: ":",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PERCENTEQ: "%=", SHLEQ: "<<=", SHREQ: ">>=", ANDEQ: "&=", OREQ: "|=",
	XOREQ: "^=", PLUSPLUS: "++", MINUSMINUS: "--",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	SHL: "<<", SHR: ">>", AMP: "&", PIPE: "|", CARET: "^", TILDE: "~",
	BANG: "!", ANDAND: "&&", OROR: "||", EQ: "==", NE: "!=",
	LT: "<", LE: "<=", GT: ">", GE: ">=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"kernel": KWKernel, "int": KWInt, "short": KWShort, "ushort": KWUShort,
	"byte": KWByte, "sbyte": KWSByte, "const": KWConst, "for": KWFor,
	"if": KWIf, "else": KWElse, "return": KWReturn,
}

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifier text or literal text
	Val  int32  // numeric value for NUMBER
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a frontend diagnostic with position information.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
