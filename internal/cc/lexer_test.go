package cc

import "testing"

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("kernel f(int n) { x <<= 3; y = 0x1F + 12; /* c */ // d\n }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{
		KWKernel, IDENT, LPAREN, KWInt, IDENT, RPAREN, LBRACE,
		IDENT, SHLEQ, NUMBER, SEMI,
		IDENT, ASSIGN, NUMBER, PLUS, NUMBER, SEMI,
		RBRACE, EOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[9].Val != 3 {
		t.Errorf("shift literal = %d, want 3", toks[9].Val)
	}
	if toks[13].Val != 0x1f {
		t.Errorf("hex literal = %d, want 31", toks[13].Val)
	}
}

func TestLexOperatorsLongestMatch(t *testing.T) {
	toks, err := Lex("a >>= b >> c > d == e = f")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, SHREQ, IDENT, SHR, IDENT, GT, IDENT, EQ, IDENT, ASSIGN, IDENT, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %s, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %s, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"@", "/* unterminated", "0x", "99999999999999"}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexHexMax(t *testing.T) {
	toks, err := Lex("0xFFFFFFFF")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != -1 {
		t.Errorf("0xFFFFFFFF = %d, want -1 (wraparound)", toks[0].Val)
	}
}
