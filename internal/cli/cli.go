// Package cli holds small helpers shared by the cfp-* command-line
// tools.
package cli

import (
	"fmt"

	"customfit/internal/machine"
)

// ParseArch parses the paper's positional architecture tuple
// "a m r p2 l2 c" (e.g. "8 2 128 1 4 4") and validates it.
func ParseArch(s string) (machine.Arch, error) {
	var a machine.Arch
	n, err := fmt.Sscanf(s, "%d %d %d %d %d %d",
		&a.ALUs, &a.MULs, &a.Regs, &a.L2Ports, &a.L2Lat, &a.Clusters)
	if err != nil || n != 6 {
		return a, fmt.Errorf("architecture must be six integers \"a m r p2 l2 c\", got %q", s)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}
