// Package cli holds small helpers shared by the cfp-* command-line
// tools: architecture-tuple parsing and the Tool builder that
// registers the standard cross-cutting flags every tool repeats —
// telemetry (-trace, -metrics, -pprof), the persistent evaluation
// cache (-cache-dir, -cache) and bound-guided pruning (-prune) — and
// owns their lifecycle (start, lazy cache open, flush-on-close).
package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"customfit/internal/evcache"
	"customfit/internal/fleetcache"
	"customfit/internal/machine"
	"customfit/internal/obs"
	olog "customfit/internal/obs/log"
	"customfit/internal/sched"
)

// ParseArch parses the paper's positional architecture tuple
// "a m r p2 l2 c" (e.g. "8 2 128 1 4 4") and validates it.
func ParseArch(s string) (machine.Arch, error) {
	var a machine.Arch
	n, err := fmt.Sscanf(s, "%d %d %d %d %d %d",
		&a.ALUs, &a.MULs, &a.Regs, &a.L2Ports, &a.L2Lat, &a.Clusters)
	if err != nil || n != 6 {
		return a, fmt.Errorf("architecture must be six integers \"a m r p2 l2 c\", got %q", s)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// ParseArchOps parses the op-aware wire tuple: the positional 6-tuple
// optionally followed by " ops=<hexmask>" naming an enable mask over
// set (FormatArch's output). A suffix with a nil set is an error — the
// receiver has no catalog to resolve the mask against.
func ParseArchOps(s string, set *machine.OpSet) (machine.Arch, error) {
	tuple, suffix, found := strings.Cut(s, " ops=")
	a, err := ParseArch(tuple)
	if err != nil || !found {
		return a, err
	}
	if set == nil {
		return a, fmt.Errorf("op-enabled architecture %q without an op catalog", s)
	}
	mask, err := strconv.ParseUint(suffix, 16, 64)
	if err != nil {
		return a, fmt.Errorf("bad op mask in %q: %v", s, err)
	}
	a = a.WithOps(set, mask)
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// FormatArch renders an architecture in the positional wire form
// ParseArchOps reads: "a m r p2 l2 c", plus " ops=<hexmask>" when the
// architecture enables custom ops.
func FormatArch(a machine.Arch) string {
	s := fmt.Sprintf("%d %d %d %d %d %d", a.ALUs, a.MULs, a.Regs, a.L2Ports, a.L2Lat, a.Clusters)
	if !a.Ops.Empty() {
		s += " ops=" + strconv.FormatUint(a.Ops.Mask, 16)
	}
	return s
}

// Telemetry carries the standard observability flag values and the
// collector they enable. Collection stays off (the obs nil-sink fast
// path) unless -trace or -metrics is given.
type Telemetry struct {
	TracePath   string
	MetricsPath string
	PprofAddr   string

	collector *obs.Collector
}

// AddTelemetryFlags registers -trace, -metrics and -pprof on the
// default flag set. Call before flag.Parse; call Start after it and
// Stop before exiting.
func AddTelemetryFlags() *Telemetry {
	return AddTelemetryFlagsTo(flag.CommandLine)
}

// AddTelemetryFlagsTo registers the telemetry flags on fs.
func AddTelemetryFlagsTo(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.TracePath, "trace", "",
		"write pipeline spans to FILE as Chrome trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev)")
	fs.StringVar(&t.MetricsPath, "metrics", "",
		"write a JSON metrics dump (counters, gauges, histograms, per-phase span totals) to FILE on exit")
	fs.StringVar(&t.PprofAddr, "pprof", "",
		"serve Go net/http/pprof on ADDR (e.g. localhost:6060) for live CPU/heap profiling")
	return t
}

// CacheConfig carries the persistent evaluation-cache flag values
// (-cache-dir, -cache, -cache-peer). Zero-valued it opens nothing: the
// cache is opt-in via -cache-dir or -cache-peer.
type CacheConfig struct {
	Dir  string
	Mode string
	// Peer is a cfp-serve base URL whose /v1/cache endpoints back the
	// local cache as a fleet-shared second tier (read-through on miss,
	// async write-behind on compute).
	Peer string
}

// AddCacheFlags registers -cache-dir and -cache on the default flag
// set. Call before flag.Parse; call Open after it.
func AddCacheFlags() *CacheConfig {
	return AddCacheFlagsTo(flag.CommandLine)
}

// AddCacheFlagsTo registers the cache flags on fs.
func AddCacheFlagsTo(fs *flag.FlagSet) *CacheConfig {
	c := &CacheConfig{}
	fs.StringVar(&c.Dir, "cache-dir", "",
		"persist evaluation sweeps under DIR (content-addressed; identical results, warm re-runs skip all backend work — see docs/PERFORMANCE.md)")
	fs.StringVar(&c.Mode, "cache", "on",
		`"off" ignores -cache-dir for this run (cold measurement without clearing the directory)`)
	fs.StringVar(&c.Peer, "cache-peer", "",
		"cfp-serve URL backing the cache as a fleet-shared tier: misses read through to the peer, computes write behind to it (see docs/PERFORMANCE.md)")
	return c
}

// Open opens the configured cache, or returns nil (no caching) when
// neither -cache-dir nor -cache-peer was given, or -cache=off. With
// only -cache-peer the local tier is memory-resident (no persistence)
// and the peer supplies warm entries. Callers must Close a non-nil
// cache before exiting to flush dirty shards and drain write-behind.
func (c *CacheConfig) Open() (*evcache.Cache, error) {
	if c.Mode == "off" || (c.Dir == "" && c.Peer == "") {
		return nil, nil
	}
	cc, err := evcache.Open(c.Dir)
	if err != nil {
		return nil, err
	}
	if c.Peer != "" {
		peer := c.Peer
		if !strings.Contains(peer, "://") {
			peer = "http://" + peer
		}
		cc.SetRemote(fleetcache.New(peer, nil), evcache.RemoteOptions{})
	}
	return cc, nil
}

// Tool bundles the cross-cutting flag wiring shared by every cfp-*
// command: telemetry always, plus the evaluation-cache and -prune
// flags for the tools that opt in. Construct it before flag.Parse,
// Start it after, and defer Close:
//
//	tool := cli.NewTool("cfp-explore", cli.WithCache())
//	flag.Parse()
//	if err := tool.Start(); err != nil { tool.Fatal(err) }
//	defer tool.Close()
type Tool struct {
	// Name prefixes diagnostics ("cfp-explore: ...").
	Name string
	// Telemetry is the -trace/-metrics/-pprof flag set (always
	// registered).
	Telemetry *Telemetry
	// CacheCfg is non-nil when WithCache registered -cache-dir/-cache.
	CacheCfg *CacheConfig
	// Prune is non-nil when WithPrune registered -prune.
	Prune *bool
	// OpsSel / OpsN are non-nil when WithOps registered -ops/-ops-n:
	// the custom-op selector ("off", "auto" or a catalog file path —
	// resolve with core.ResolveOps) and the auto-mined set size.
	OpsSel *string
	OpsN   *int

	// LogFormat and LogLevel hold the -log-format/-log-level values;
	// Start builds the process-global structured logger from them.
	LogFormat string
	LogLevel  string

	version     *bool
	cache       *evcache.Cache
	cacheOpened bool
}

// VersionString renders the tool's identity line: module version, Go
// runtime, and the backend code-generation fingerprint. The fingerprint
// is the part that matters operationally — the distributed coordinator
// refuses workers whose fingerprint differs from its own, since mixed
// backends would silently break bit-identical merges.
func VersionString(name string) string {
	ver := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		ver = bi.Main.Version
	}
	return fmt.Sprintf("%s %s %s backend %s", name, ver, runtime.Version(), sched.Fingerprint())
}

// ToolOption customizes NewTool.
type ToolOption func(*Tool, *flag.FlagSet)

// WithCache registers the persistent evaluation-cache flags
// (-cache-dir, -cache).
func WithCache() ToolOption {
	return func(t *Tool, fs *flag.FlagSet) { t.CacheCfg = AddCacheFlagsTo(fs) }
}

// WithOps registers -ops and -ops-n: the custom-op axis of the
// extensible architecture template (docs/CUSTOMOPS.md).
func WithOps() ToolOption {
	return func(t *Tool, fs *flag.FlagSet) {
		t.OpsSel = fs.String("ops", "off",
			`custom-op axis: "off" (the paper's 6-tuple template), "auto" (mine fused-op candidates from the benchmarks' dataflow graphs), or a catalog FILE of op specs, one "name/nin/lat: step; ..." per line`)
		t.OpsN = fs.Int("ops-n", 0,
			"with -ops=auto, keep the top N mined candidates (0 = default)")
	}
}

// WithPrune registers -prune with the given default (bound-guided
// pruning of deterministic search strategies; see sched.LowerBound).
func WithPrune(def bool) ToolOption {
	return func(t *Tool, fs *flag.FlagSet) {
		t.Prune = fs.Bool("prune", def,
			"bound-guided pruning for the deterministic strategies (exact: identical optima, fewer compiles; see sched.LowerBound)")
	}
}

// NewTool registers the standard flags on the default flag set. Call
// before flag.Parse.
func NewTool(name string, opts ...ToolOption) *Tool {
	return NewToolOn(flag.CommandLine, name, opts...)
}

// NewToolOn is NewTool on an explicit flag set (tests).
func NewToolOn(fs *flag.FlagSet, name string, opts ...ToolOption) *Tool {
	t := &Tool{Name: name, Telemetry: AddTelemetryFlagsTo(fs)}
	t.version = fs.Bool("version", false,
		"print the tool version (module version, Go runtime, backend fingerprint) and exit")
	fs.StringVar(&t.LogFormat, "log-format", "text",
		`structured log output on stderr: "text" (key=value) or "json" (one object per line)`)
	fs.StringVar(&t.LogLevel, "log-level", "info",
		"minimum log level: debug, info, warn or error")
	for _, o := range opts {
		o(t, fs)
	}
	return t
}

// Start brings up everything the parsed flags asked for (telemetry
// collector, pprof listener). Call after flag.Parse. When -version was
// given it prints the identity line and exits 0 before starting
// anything.
func (t *Tool) Start() error {
	if t.version != nil && *t.version {
		fmt.Println(VersionString(t.Name))
		os.Exit(0)
	}
	lg, err := olog.Setup(os.Stderr, t.LogFormat, t.LogLevel)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	olog.Install(lg)
	return t.Telemetry.Start()
}

// OpenCache lazily opens the configured evaluation cache, or returns
// nil when the tool has no cache flags, -cache-dir was not given, or
// -cache=off. The Tool owns the cache: Close flushes it.
func (t *Tool) OpenCache() (*evcache.Cache, error) {
	if t.cacheOpened {
		return t.cache, nil
	}
	if t.CacheCfg == nil {
		return nil, nil
	}
	c, err := t.CacheCfg.Open()
	if err != nil {
		return nil, err
	}
	t.cache, t.cacheOpened = c, true
	return c, nil
}

// Close flushes the cache and the telemetry sinks, reporting failures
// to stderr under the tool's name (shutdown errors should not mask the
// tool's own output or exit status).
func (t *Tool) Close() {
	if t.cache != nil {
		if err := t.cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: cache: %v\n", t.Name, err)
		}
		t.cache, t.cacheOpened = nil, false
	}
	if err := t.Telemetry.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: telemetry: %v\n", t.Name, err)
	}
}

// Fatal prints err under the tool's name, closes the tool (flushing
// telemetry and cache), and exits 1.
func (t *Tool) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
	t.Close()
	os.Exit(1)
}

// Start installs a collector if -trace or -metrics was given and starts
// the pprof listener if -pprof was given.
func (t *Telemetry) Start() error {
	if t.TracePath != "" || t.MetricsPath != "" {
		t.collector = obs.NewCollector()
		obs.Install(t.collector)
	}
	if t.PprofAddr != "" {
		ln, err := net.Listen("tcp", t.PprofAddr)
		if err != nil {
			return fmt.Errorf("cli: pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof serving on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			// DefaultServeMux carries the pprof handlers (blank import).
			_ = http.Serve(ln, nil)
		}()
	}
	return nil
}

// Stop flushes the trace and metrics files (when requested) and
// uninstalls the collector.
func (t *Telemetry) Stop() error {
	if t.collector == nil {
		return nil
	}
	obs.Install(nil)
	if t.TracePath != "" {
		if err := t.collector.WriteTraceFile(t.TracePath); err != nil {
			return err
		}
	}
	if t.MetricsPath != "" {
		if err := t.collector.WriteMetricsFile(t.MetricsPath); err != nil {
			return err
		}
	}
	return nil
}
