// Package cli holds small helpers shared by the cfp-* command-line
// tools: architecture-tuple parsing, the standard telemetry flags
// (-trace, -metrics, -pprof) that wire internal/obs into every tool,
// and the persistent evaluation-cache flags (-cache-dir, -cache).
package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"

	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/obs"
)

// ParseArch parses the paper's positional architecture tuple
// "a m r p2 l2 c" (e.g. "8 2 128 1 4 4") and validates it.
func ParseArch(s string) (machine.Arch, error) {
	var a machine.Arch
	n, err := fmt.Sscanf(s, "%d %d %d %d %d %d",
		&a.ALUs, &a.MULs, &a.Regs, &a.L2Ports, &a.L2Lat, &a.Clusters)
	if err != nil || n != 6 {
		return a, fmt.Errorf("architecture must be six integers \"a m r p2 l2 c\", got %q", s)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// Telemetry carries the standard observability flag values and the
// collector they enable. Collection stays off (the obs nil-sink fast
// path) unless -trace or -metrics is given.
type Telemetry struct {
	TracePath   string
	MetricsPath string
	PprofAddr   string

	collector *obs.Collector
}

// AddTelemetryFlags registers -trace, -metrics and -pprof on the
// default flag set. Call before flag.Parse; call Start after it and
// Stop before exiting.
func AddTelemetryFlags() *Telemetry {
	return AddTelemetryFlagsTo(flag.CommandLine)
}

// AddTelemetryFlagsTo registers the telemetry flags on fs.
func AddTelemetryFlagsTo(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.TracePath, "trace", "",
		"write pipeline spans to FILE as Chrome trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev)")
	fs.StringVar(&t.MetricsPath, "metrics", "",
		"write a JSON metrics dump (counters, gauges, histograms, per-phase span totals) to FILE on exit")
	fs.StringVar(&t.PprofAddr, "pprof", "",
		"serve Go net/http/pprof on ADDR (e.g. localhost:6060) for live CPU/heap profiling")
	return t
}

// CacheConfig carries the persistent evaluation-cache flag values
// (-cache-dir, -cache). Zero-valued it opens nothing: the cache is
// opt-in via -cache-dir.
type CacheConfig struct {
	Dir  string
	Mode string
}

// AddCacheFlags registers -cache-dir and -cache on the default flag
// set. Call before flag.Parse; call Open after it.
func AddCacheFlags() *CacheConfig {
	return AddCacheFlagsTo(flag.CommandLine)
}

// AddCacheFlagsTo registers the cache flags on fs.
func AddCacheFlagsTo(fs *flag.FlagSet) *CacheConfig {
	c := &CacheConfig{}
	fs.StringVar(&c.Dir, "cache-dir", "",
		"persist evaluation sweeps under DIR (content-addressed; identical results, warm re-runs skip all backend work — see docs/PERFORMANCE.md)")
	fs.StringVar(&c.Mode, "cache", "on",
		`"off" ignores -cache-dir for this run (cold measurement without clearing the directory)`)
	return c
}

// Open opens the configured cache, or returns nil (no caching) when
// -cache-dir was not given or -cache=off. Callers must Close a non-nil
// cache before exiting to flush dirty shards.
func (c *CacheConfig) Open() (*evcache.Cache, error) {
	if c.Dir == "" || c.Mode == "off" {
		return nil, nil
	}
	return evcache.Open(c.Dir)
}

// Start installs a collector if -trace or -metrics was given and starts
// the pprof listener if -pprof was given.
func (t *Telemetry) Start() error {
	if t.TracePath != "" || t.MetricsPath != "" {
		t.collector = obs.NewCollector()
		obs.Install(t.collector)
	}
	if t.PprofAddr != "" {
		ln, err := net.Listen("tcp", t.PprofAddr)
		if err != nil {
			return fmt.Errorf("cli: pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof serving on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			// DefaultServeMux carries the pprof handlers (blank import).
			_ = http.Serve(ln, nil)
		}()
	}
	return nil
}

// Stop flushes the trace and metrics files (when requested) and
// uninstalls the collector.
func (t *Telemetry) Stop() error {
	if t.collector == nil {
		return nil
	}
	obs.Install(nil)
	if t.TracePath != "" {
		if err := t.collector.WriteTraceFile(t.TracePath); err != nil {
			return err
		}
	}
	if t.MetricsPath != "" {
		if err := t.collector.WriteMetricsFile(t.MetricsPath); err != nil {
			return err
		}
	}
	return nil
}
