package cli

import (
	"flag"
	"runtime"
	"strings"
	"testing"

	"customfit/internal/machine"
	"customfit/internal/sched"
)

func TestParseArch(t *testing.T) {
	a, err := ParseArch("8 2 128 1 4 4")
	if err != nil {
		t.Fatal(err)
	}
	want := machine.Arch{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 4}
	if a != want {
		t.Errorf("ParseArch = %v, want %v", a, want)
	}
}

func TestParseArchErrors(t *testing.T) {
	cases := []struct {
		in, frag string
	}{
		{"8 2 128 1 4", "six integers"},
		{"a b c d e f", "six integers"},
		{"", "six integers"},
		{"0 1 64 1 4 1", "out of range"},    // zero ALUs invalid
		{"8 2 128 1 4 3", "divisible"},      // clusters don't divide
		{"8 2 128 9 4 1", "L2Ports"},        // too many ports
		{"8 2 128 1 99 1", "L2Lat"},         // latency out of range
		{"4 2 64 1 8 8", "clusters exceed"}, // more clusters than ALUs
	}
	for _, c := range cases {
		_, err := ParseArch(c.in)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseArch(%q) = %v, want error containing %q", c.in, err, c.frag)
		}
	}
}

func TestToolFlagRegistrationAndCache(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tool := NewToolOn(fs, "test-tool", WithCache(), WithPrune(true))
	dir := t.TempDir()
	if err := fs.Parse([]string{"-cache-dir", dir, "-prune=false"}); err != nil {
		t.Fatal(err)
	}
	// Every standard cross-cutting flag must be registered exactly once.
	for _, name := range []string{"trace", "metrics", "pprof", "cache-dir", "cache", "prune", "version"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if tool.Prune == nil || *tool.Prune {
		t.Error("-prune=false not honored")
	}
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	c1, err := tool.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	if c1 == nil {
		t.Fatal("OpenCache returned nil with -cache-dir set")
	}
	if c2, _ := tool.OpenCache(); c2 != c1 {
		t.Error("OpenCache not idempotent")
	}
	tool.Close()
}

func TestToolCacheOffModes(t *testing.T) {
	// No cache flags registered at all.
	fs := flag.NewFlagSet("plain", flag.ContinueOnError)
	plain := NewToolOn(fs, "plain")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c, err := plain.OpenCache(); err != nil || c != nil {
		t.Errorf("cacheless tool OpenCache = (%v, %v), want (nil, nil)", c, err)
	}
	plain.Close()

	// Flags registered, -cache=off given.
	fs2 := flag.NewFlagSet("off", flag.ContinueOnError)
	off := NewToolOn(fs2, "off", WithCache())
	if err := fs2.Parse([]string{"-cache-dir", t.TempDir(), "-cache", "off"}); err != nil {
		t.Fatal(err)
	}
	if c, err := off.OpenCache(); err != nil || c != nil {
		t.Errorf("-cache=off OpenCache = (%v, %v), want (nil, nil)", c, err)
	}
	off.Close()
}

// TestVersionString pins the identity line every tool prints for
// -version: tool name, Go runtime, and the backend code-generation
// fingerprint the distributed coordinator gates fleet admission on.
func TestVersionString(t *testing.T) {
	v := VersionString("cfp-test")
	if !strings.HasPrefix(v, "cfp-test ") {
		t.Errorf("VersionString = %q, want tool-name prefix", v)
	}
	if !strings.Contains(v, runtime.Version()) {
		t.Errorf("VersionString = %q, missing Go runtime %q", v, runtime.Version())
	}
	if !strings.Contains(v, sched.Fingerprint()) {
		t.Errorf("VersionString = %q, missing backend fingerprint %q", v, sched.Fingerprint())
	}
	if strings.Contains(v, "\n") {
		t.Errorf("VersionString = %q, want a single line", v)
	}
}
