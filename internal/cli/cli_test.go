package cli

import (
	"strings"
	"testing"

	"customfit/internal/machine"
)

func TestParseArch(t *testing.T) {
	a, err := ParseArch("8 2 128 1 4 4")
	if err != nil {
		t.Fatal(err)
	}
	want := machine.Arch{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 1, L2Lat: 4, Clusters: 4}
	if a != want {
		t.Errorf("ParseArch = %v, want %v", a, want)
	}
}

func TestParseArchErrors(t *testing.T) {
	cases := []struct {
		in, frag string
	}{
		{"8 2 128 1 4", "six integers"},
		{"a b c d e f", "six integers"},
		{"", "six integers"},
		{"0 1 64 1 4 1", "out of range"},    // zero ALUs invalid
		{"8 2 128 1 4 3", "divisible"},      // clusters don't divide
		{"8 2 128 9 4 1", "L2Ports"},        // too many ports
		{"8 2 128 1 99 1", "L2Lat"},         // latency out of range
		{"4 2 64 1 8 8", "clusters exceed"}, // more clusters than ALUs
	}
	for _, c := range cases {
		_, err := ParseArch(c.in)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseArch(%q) = %v, want error containing %q", c.in, err, c.frag)
		}
	}
}
