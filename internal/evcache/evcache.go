// Package evcache is the explorer's persistent, content-addressed
// evaluation cache: a two-level store (an in-memory LRU in front of
// on-disk JSON-lines shards) keyed by hashes that cover everything an
// evaluation sweep can observe — the kernel source, the unroll policy,
// the compiler fingerprint, the reference workload, and the target's
// backend signature. A re-run of the full design-space sweep against a
// warm cache is near-instant, and an interrupted sweep resumes warm.
//
// Layout: one shard file per benchmark under the cache directory
// (`<bench>.jsonl`), each starting with a versioned header line.
// Loading a shard whose header does not match the current
// SchemaVersion silently discards it — a stale schema self-invalidates
// rather than poisoning results. Shards are rewritten wholesale
// through a temp file plus atomic rename, so a crashed or interrupted
// writer can never leave a half-written shard behind: readers see
// either the old complete file or the new one.
//
// Concurrency: every method is safe for concurrent use. Do gives
// lookups singleflight semantics — workers racing on the same cold key
// share one compute instead of duplicating the miss.
//
// Fleet tier: SetRemote attaches a Store (typically
// internal/fleetcache's HTTP client against a cfp-serve peer) and the
// cache becomes the local level of a fleet-wide two-level cache — a
// local miss reads through the remote before computing, and local
// computes are shipped back via an async bounded write-behind queue
// that never blocks the evaluate hot path. A failing remote degrades
// the cache to local-only behind a circuit breaker; it never fails a
// lookup. See docs/PERFORMANCE.md.
//
// Telemetry (when an obs collector is installed): `evcache.hits`,
// `evcache.misses`, `evcache.coalesced` (misses absorbed by an
// in-flight compute), `evcache.bytes` (shard bytes read + written),
// `evcache.invalidated` (shards discarded on schema mismatch) and
// `evcache.corrupt_lines` (undecodable shard lines skipped at load,
// typically a line truncated by a crash mid-flush). The fleet tier
// adds `evcache.net_hits`, `evcache.net_misses`, `evcache.net_errors`,
// `evcache.net_degraded` (circuit-breaker trips),
// `evcache.writebehind_flushes`, `evcache.writebehind_dropped` and the
// `evcache.net_fetch_seconds` latency histogram (p50/p95 via the obs
// reservoir).
package evcache

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"customfit/internal/obs"
)

// SchemaVersion is stamped into every shard header. Bump it whenever
// the Entry encoding or the key derivation changes shape; old shards
// are then ignored on load instead of being misread.
const SchemaVersion = 1

// headerMagic identifies a shard file as ours.
const headerMagic = "cfp-evcache"

// autoFlushDirty bounds how many unflushed entries a shard may pin in
// memory before it is written back inline.
const autoFlushDirty = 4096

// DefaultMaxEntries is the default in-memory LRU capacity. Entries are
// a few dozen bytes, so the default comfortably holds several
// full-space sweeps; lower it with SetMaxEntries for constrained runs.
const DefaultMaxEntries = 1 << 18

// Entry is one cached evaluation sweep: the architecture-signature
// invariant outcome of compiling a kernel at every unroll factor until
// spill. Cycle-time derating and datapath cost are deliberately
// excluded — both are recomputed from models outside the backend, so
// model changes never invalidate the cache.
type Entry struct {
	Unroll  int   `json:"u"`
	Cycles  int64 `json:"c"`
	Spilled int   `json:"s"`
	Failed  bool  `json:"f,omitempty"`
	// Runs is how many backend compilations the sweep performed, so a
	// cache hit can re-count them as logical runs (the paper's Table 3
	// accounting, matching the arch-signature memo layer).
	Runs int64 `json:"r"`
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64 // misses served by waiting on an in-flight compute
	BytesRead int64
	BytesWrit int64
	// CorruptLines counts shard lines skipped at load because they did
	// not decode (typically one truncated trailing line from a crash
	// mid-flush). The rest of the shard still loads.
	CorruptLines int64
	// Computes counts Do/DoErr calls that fell through both cache
	// levels and ran the compute here — the fleet test's "backend
	// compilations actually performed by this process" signal.
	Computes int64
	// NetHits/NetMisses/NetErrors count remote-tier read-throughs (only
	// meaningful after SetRemote). Errors also feed the circuit breaker
	// that degrades the cache to local-only.
	NetHits   int64
	NetMisses int64
	NetErrors int64
	// WriteBehindFlushed counts entries shipped to the remote tier;
	// WriteBehindDropped counts entries dropped because the bounded
	// queue was full or the remote refused the batch.
	WriteBehindFlushed int64
	WriteBehindDropped int64
}

// Cache is the two-level store. The zero value is not usable; call
// Open.
type Cache struct {
	dir string // "" = memory-only (no persistence)

	mu     sync.Mutex
	max    int
	shards map[string]*shard
	lru    *list.List // of *node; front = most recently used
	n      int        // resident entries
	flight map[string]*flight
	stats  Stats

	// remote is the optional network tier (SetRemote), read without the
	// lock — it is set once before concurrent use.
	remote *remoteState
	// Read-path circuit breaker (under mu): consecutive failures and
	// the deadline until which the remote is skipped.
	netFails     int
	netDownUntil time.Time
}

// node is one resident entry, linked into the LRU.
type node struct {
	shard string
	key   string
	e     Entry
	dirty bool // not yet persisted (always false when memory-only)
}

// shard is the in-memory view of one on-disk shard file.
type shard struct {
	loaded  bool
	entries map[string]*list.Element
	dirty   int // unflushed entries
}

// flight coordinates singleflight computes: waiters block on done and
// then read e (or err, when the compute aborted without producing an
// entry — nothing was stored, and waiters retry or propagate).
type flight struct {
	done chan struct{}
	e    Entry
	err  error
}

type header struct {
	Magic  string `json:"evcache"`
	Schema int    `json:"schema"`
}

// Open returns a cache persisting under dir, creating the directory if
// needed. An empty dir yields a memory-only cache (useful for tests
// and single-process warm sharing).
func Open(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("evcache: %w", err)
		}
	}
	return &Cache{
		dir:    dir,
		max:    DefaultMaxEntries,
		shards: map[string]*shard{},
		lru:    list.New(),
		flight: map[string]*flight{},
	}, nil
}

// SetMaxEntries adjusts the in-memory LRU capacity. Dirty entries are
// pinned until flushed, so the cache may transiently exceed the cap by
// up to the auto-flush threshold per shard.
func (c *Cache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	c.max = n
	c.evictLocked()
}

// Dir returns the backing directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of hit/miss/IO counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the cached entry for (shardName, key), consulting memory
// first and the shard file on first touch of the shard.
func (c *Cache) Get(shardName, key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.loadLocked(shardName)
	if el, ok := s.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hitLocked()
		return el.Value.(*node).e, true
	}
	c.missLocked()
	return Entry{}, false
}

// Contains reports whether (shardName, key) is resident without
// touching hit/miss accounting or LRU order (used to decide whether
// warm-up work can be skipped).
func (c *Cache) Contains(shardName, key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.loadLocked(shardName)
	_, ok := s.entries[key]
	return ok
}

// Put stores an entry, scheduling it for persistence on the next
// flush (or inline once the shard accumulates enough dirty entries).
// With a remote tier attached, the entry is also enqueued for
// write-behind: a direct Put is new local data the fleet has not seen.
func (c *Cache) Put(shardName, key string, e Entry) {
	c.mu.Lock()
	s := c.loadLocked(shardName)
	c.insertLocked(s, shardName, key, e, c.dir != "")
	c.autoFlushLocked(shardName, s)
	c.mu.Unlock()
	c.writeBehind(shardName, key, e)
}

// Do returns the cached entry for (shardName, key), computing and
// storing it on a miss. Concurrent callers racing on the same cold key
// share a single compute: the first runs it, the rest block and reuse
// its result. The boolean reports whether the entry came from the
// cache (including a shared in-flight compute) rather than this
// caller's own compute.
func (c *Cache) Do(shardName, key string, compute func() Entry) (Entry, bool) {
	e, hit, _ := c.DoErr(shardName, key, func() (Entry, error) { return compute(), nil })
	return e, hit
}

// DoErr is Do for computes that can abort (typically on context
// cancellation): a compute returning an error stores nothing — the key
// stays cold, so a later caller recomputes it cleanly. Waiters
// coalesced onto an aborted compute retry the lookup themselves rather
// than inheriting the aborter's error; a waiter whose own compute then
// aborts propagates its own error.
func (c *Cache) DoErr(shardName, key string, compute func() (Entry, error)) (Entry, bool, error) {
	fkey := shardName + "\x00" + key
	for {
		c.mu.Lock()
		s := c.loadLocked(shardName)
		if el, ok := s.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.hitLocked()
			e := el.Value.(*node).e
			c.mu.Unlock()
			return e, true, nil
		}
		if f, ok := c.flight[fkey]; ok {
			c.stats.Coalesced++
			obs.GetCounter("evcache.coalesced").Inc()
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // aborted in flight: retry with our own compute
			}
			return f.e, true, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flight[fkey] = f
		c.missLocked()
		c.mu.Unlock()

		// Read through the remote tier before computing: a sweep compiled
		// anywhere in the fleet is fetched, not recompiled. The fetch
		// rides the singleflight, so racing callers share one network
		// round trip exactly as they would share one compute. Remote hits
		// are admitted locally (persisted like any entry) but never
		// enqueued for write-behind — the fleet already has them.
		if re, ok := c.remoteLookup(shardName, key); ok {
			f.e = re
			c.settleFlight(shardName, key, f, fkey, true)
			return re, true, nil
		}

		f.e, f.err = compute()
		c.mu.Lock()
		c.stats.Computes++
		c.mu.Unlock()
		c.settleFlight(shardName, key, f, fkey, f.err == nil)
		if f.err == nil {
			c.writeBehind(shardName, key, f.e)
		}
		return f.e, false, f.err
	}
}

// settleFlight stores a finished flight's entry (when store is set),
// clears the flight and wakes waiters. The shard is re-resolved under
// the lock: a concurrent DropShard may have detached the view the
// caller loaded before computing.
func (c *Cache) settleFlight(shardName, key string, f *flight, fkey string, store bool) {
	c.mu.Lock()
	s := c.loadLocked(shardName)
	if store {
		c.insertLocked(s, shardName, key, f.e, c.dir != "")
	}
	delete(c.flight, fkey)
	c.autoFlushLocked(shardName, s)
	c.mu.Unlock()
	close(f.done)
}

// Flush persists every dirty shard via temp-file + atomic rename.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	for name, s := range c.shards {
		if s.dirty == 0 {
			continue
		}
		if err := c.flushShardLocked(name, s); err != nil {
			return err
		}
	}
	return nil
}

// Close drains the write-behind queue (when a remote tier is
// attached), flushes dirty shards, and renders further writes
// best-effort-only. It is the caller's shutdown hook; the cache
// remains readable afterwards.
func (c *Cache) Close() error {
	c.stopWriteBehind()
	return c.Flush()
}

func (c *Cache) hitLocked() {
	c.stats.Hits++
	obs.GetCounter("evcache.hits").Inc()
}

func (c *Cache) missLocked() {
	c.stats.Misses++
	obs.GetCounter("evcache.misses").Inc()
}

// loadLocked returns shardName's in-memory view, reading its file on
// first touch. Unreadable files, foreign files and stale schemas are
// treated as an empty shard.
func (c *Cache) loadLocked(name string) *shard {
	s := c.shards[name]
	if s == nil {
		s = &shard{entries: map[string]*list.Element{}}
		c.shards[name] = s
	}
	if s.loaded {
		return s
	}
	s.loaded = true
	if c.dir == "" {
		return s
	}
	f, err := os.Open(c.shardPath(name))
	if err != nil {
		return s // no shard on disk yet
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return s
	}
	var h header
	line := sc.Bytes()
	if json.Unmarshal(line, &h) != nil || h.Magic != headerMagic || h.Schema != SchemaVersion {
		obs.GetCounter("evcache.invalidated").Inc()
		return s // stale or foreign: self-invalidate by ignoring it
	}
	read := int64(len(line))
	for sc.Scan() {
		b := sc.Bytes()
		var r Record
		// A torn tail line (a crash mid-flush before the atomic rename
		// landed, or filesystem truncation) or junk is skipped, not
		// fatal: one bad line must never cost the rest of the shard.
		if json.Unmarshal(b, &r) != nil || r.Key == "" {
			c.stats.CorruptLines++
			obs.GetCounter("evcache.corrupt_lines").Inc()
			continue
		}
		read += int64(len(b))
		c.insertLocked(s, name, r.Key, r.Entry, false)
	}
	c.stats.BytesRead += read
	obs.GetCounter("evcache.bytes").Add(read)
	return s
}

// insertLocked adds or refreshes one entry and evicts past capacity.
func (c *Cache) insertLocked(s *shard, shardName, key string, e Entry, dirty bool) {
	if el, ok := s.entries[key]; ok {
		nd := el.Value.(*node)
		if dirty && !nd.dirty {
			s.dirty++
		}
		nd.e = e
		nd.dirty = nd.dirty || dirty
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&node{shard: shardName, key: key, e: e, dirty: dirty})
	s.entries[key] = el
	c.n++
	if dirty {
		s.dirty++
	}
	c.evictLocked()
}

// evictLocked drops least-recently-used clean entries down to
// capacity. Dirty entries are pinned (their data exists nowhere else)
// until a flush cleans them.
func (c *Cache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.n > c.max; {
		nd := el.Value.(*node)
		prev := el.Prev()
		if !nd.dirty {
			c.lru.Remove(el)
			delete(c.shards[nd.shard].entries, nd.key)
			c.n--
		}
		el = prev
	}
}

// autoFlushLocked writes a shard back once it accumulates enough
// unflushed entries, bounding pinned memory on long sweeps.
func (c *Cache) autoFlushLocked(name string, s *shard) {
	if c.dir == "" || s.dirty < autoFlushDirty {
		return
	}
	// Flush failures here are deferred to the explicit Flush/Close,
	// which reports them; the entries stay dirty and pinned.
	_ = c.flushShardLocked(name, s)
}

// flushShardLocked rewrites one shard: the on-disk records (which may
// include entries long evicted from memory) merged with every resident
// entry, written to a temp file and atomically renamed into place.
func (c *Cache) flushShardLocked(name string, s *shard) error {
	merged := map[string]Entry{}
	order := []string{} // stable-ish: disk order then new keys
	if f, err := os.Open(c.shardPath(name)); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		if sc.Scan() {
			var h header
			if json.Unmarshal(sc.Bytes(), &h) == nil && h.Magic == headerMagic && h.Schema == SchemaVersion {
				for sc.Scan() {
					var r Record
					if json.Unmarshal(sc.Bytes(), &r) == nil && r.Key != "" {
						if _, ok := merged[r.Key]; !ok {
							order = append(order, r.Key)
						}
						merged[r.Key] = r.Entry
					}
				}
			}
		}
		f.Close()
	}
	for key, el := range s.entries {
		if _, ok := merged[key]; !ok {
			order = append(order, key)
		}
		merged[key] = el.Value.(*node).e
	}

	tmp, err := os.CreateTemp(c.dir, "."+sanitize(name)+".tmp-*")
	if err != nil {
		return fmt.Errorf("evcache: flush %s: %w", name, err)
	}
	w := bufio.NewWriter(tmp)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	hb, _ := json.Marshal(header{Magic: headerMagic, Schema: SchemaVersion})
	if err := count(w.Write(append(hb, '\n'))); err == nil {
		for _, key := range order {
			rb, merr := json.Marshal(Record{Key: key, Entry: merged[key]})
			if merr != nil {
				err = merr
				break
			}
			if err = count(w.Write(append(rb, '\n'))); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		// Durability, step 1: the data must be on stable storage before
		// the rename can publish it.
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), c.shardPath(name))
	}
	if err == nil {
		// Durability, step 2: the rename itself is atomic but not
		// durable until the directory is fsynced — without this a crash
		// right after Flush could lose the whole renamed shard file.
		err = syncDir(c.dir)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("evcache: flush %s: %w", name, err)
	}
	c.stats.BytesWrit += written
	obs.GetCounter("evcache.bytes").Add(written)
	for _, el := range s.entries {
		el.Value.(*node).dirty = false
	}
	s.dirty = 0
	c.evictLocked() // formerly pinned entries may now be evictable
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

func (c *Cache) shardPath(name string) string {
	return filepath.Join(c.dir, sanitize(name)+".jsonl")
}

// sanitize maps a shard (benchmark) name onto a safe file stem.
func sanitize(name string) string {
	if name == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
