package evcache

import (
	"os"
	"sort"
)

// Record is one shard line on the wire and on disk: a cache key plus
// its entry. It is the unit the fleet protocol batches (see Store and
// internal/fleetcache).
type Record struct {
	Key string `json:"k"`
	Entry
}

// Store is the cache-tier contract: the local disk cache implements it
// (so a cfp-serve process can serve its cache to the fleet), and
// internal/fleetcache implements it over HTTP against another
// cfp-serve's /v1/cache endpoints. Composing the two — a local Cache
// with a remote Store attached via SetRemote — yields the fleet-wide
// two-level cache: local hit → remote read-through → compute, with
// async batched write-behind (see docs/PERFORMANCE.md).
type Store interface {
	// Lookup returns the entry for (shard, key) and whether it was
	// found. A non-nil error means the tier itself failed (unreachable,
	// version-refused) — not that the key is merely absent.
	Lookup(shard, key string) (Entry, bool, error)
	// StoreBatch admits a batch of records into shard. Admission is
	// terminal: a Store never forwards admitted records to its own
	// remote tier, so chained caches cannot echo entries in a loop.
	StoreBatch(shard string, recs []Record) error
	// Missing filters keys down to those the store does not hold
	// (batched has-checks, so warm-up pushes can skip what the far side
	// already has).
	Missing(shard string, keys []string) ([]string, error)
}

var _ Store = (*Cache)(nil)

// Lookup implements Store over the local cache (always a nil error —
// the local tier cannot be unreachable).
func (c *Cache) Lookup(shard, key string) (Entry, bool, error) {
	e, ok := c.Get(shard, key)
	return e, ok, nil
}

// StoreBatch admits records into the local cache: they are persisted
// like Put entries but never enqueued to the write-behind queue — the
// fleet sent them here, echoing them back would just bounce entries
// around the tier.
func (c *Cache) StoreBatch(shard string, recs []Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.loadLocked(shard)
	for _, r := range recs {
		if r.Key == "" {
			continue
		}
		c.insertLocked(s, shard, r.Key, r.Entry, c.dir != "")
	}
	c.autoFlushLocked(shard, s)
	return nil
}

// Missing implements Store's batched has-check against the local cache.
func (c *Cache) Missing(shard string, keys []string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.loadLocked(shard)
	var out []string
	for _, k := range keys {
		if _, ok := s.entries[k]; !ok {
			out = append(out, k)
		}
	}
	return out, nil
}

// Peek returns an entry without touching hit/miss accounting, LRU
// order, or the remote tier. Warm-up push scans use it so shipping
// entries to workers does not skew the coordinator cache's stats.
func (c *Cache) Peek(shard, key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.loadLocked(shard)
	if el, ok := s.entries[key]; ok {
		return el.Value.(*node).e, true
	}
	return Entry{}, false
}

// Resident returns the number of entries currently held in memory
// (the serving-side GC budget is expressed against this).
func (c *Cache) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ShardNames returns every shard name this process has touched, sorted.
// Shards load lazily on first touch, so any shard that was read,
// written or served is listed; untouched files from earlier processes
// are not (they cost no memory, which is what GC bounds).
func (c *Cache) ShardNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.shards))
	for name := range c.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DropShard evicts one whole shard: every resident entry — dirty ones
// included — and the on-disk file. This is the GC primitive (see
// internal/serve's reference-counted eviction); a concurrent compute
// for the shard simply re-creates it on insert.
func (c *Cache) DropShard(name string) error {
	c.mu.Lock()
	if s := c.shards[name]; s != nil {
		for _, el := range s.entries {
			c.lru.Remove(el)
			c.n--
		}
		delete(c.shards, name)
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	if err := os.Remove(c.shardPath(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
