package evcache

import (
	"sync"
	"time"

	"customfit/internal/obs"
)

// RemoteOptions tunes the remote tier attached by SetRemote. The zero
// value picks the defaults below.
type RemoteOptions struct {
	// QueueDepth bounds the write-behind queue (default 4096). A full
	// queue drops new entries (counted on evcache.writebehind_dropped)
	// instead of ever blocking the evaluate hot path.
	QueueDepth int
	// BatchSize caps how many queued entries one flush coalesces
	// (default 256).
	BatchSize int
	// FailureThreshold is how many consecutive read-through failures
	// trip the circuit breaker (default 3).
	FailureThreshold int
	// Cooldown is how long a tripped breaker keeps the remote tier out
	// of the read path (default 30s). Write-behind keeps trying — its
	// failures only cost counters, never the job.
	Cooldown time.Duration
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	return o
}

// wbItem is one queued write-behind entry.
type wbItem struct {
	shard string
	key   string
	e     Entry
}

// remoteState is everything SetRemote attaches: the tier, its options,
// the write-behind machinery and the read-path circuit breaker.
type remoteState struct {
	store Store
	opts  RemoteOptions

	ch       chan wbItem
	sync     chan chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// SetRemote attaches a remote tier and starts its write-behind flusher.
// Call once, before the cache is used concurrently; the caller still
// owns the cache and must Close it (which drains the queue). Reads go
// local hit → remote read-through → compute; locally computed entries
// are enqueued for async batched write-behind. A failing remote only
// degrades the cache to local-only (counted, circuit-broken) — it never
// fails a lookup or a job.
func (c *Cache) SetRemote(r Store, opts RemoteOptions) {
	if r == nil {
		return
	}
	rs := &remoteState{
		store: r,
		opts:  opts.withDefaults(),
		sync:  make(chan chan struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	rs.ch = make(chan wbItem, rs.opts.QueueDepth)
	c.remote = rs
	go c.writeBehindLoop(rs)
}

// remoteLookup is the read-through: consult the remote tier for a key
// both local levels missed. Failures count toward the circuit breaker;
// a tripped breaker skips the remote entirely for Cooldown, so a dead
// peer costs one timeout per threshold window, not one per lookup.
func (c *Cache) remoteLookup(shardName, key string) (Entry, bool) {
	rs := c.remote
	if rs == nil {
		return Entry{}, false
	}
	c.mu.Lock()
	down := time.Now().Before(c.netDownUntil)
	c.mu.Unlock()
	if down {
		return Entry{}, false
	}
	t0 := time.Now()
	e, ok, err := rs.store.Lookup(shardName, key)
	obs.GetHistogram("evcache.net_fetch_seconds").Observe(time.Since(t0).Seconds())
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.stats.NetErrors++
		obs.GetCounter("evcache.net_errors").Inc()
		if c.netFails++; c.netFails >= rs.opts.FailureThreshold {
			c.netDownUntil = time.Now().Add(rs.opts.Cooldown)
			c.netFails = 0
			obs.GetCounter("evcache.net_degraded").Inc()
		}
		return Entry{}, false
	}
	c.netFails = 0
	if ok {
		c.stats.NetHits++
		obs.GetCounter("evcache.net_hits").Inc()
		return e, true
	}
	c.stats.NetMisses++
	obs.GetCounter("evcache.net_misses").Inc()
	return Entry{}, false
}

// writeBehind enqueues one locally computed entry for async flush.
// Never blocks: a full queue drops the entry (the local tier still
// holds it; the fleet just re-computes it once somewhere else).
func (c *Cache) writeBehind(shardName, key string, e Entry) {
	rs := c.remote
	if rs == nil {
		return
	}
	select {
	case rs.ch <- wbItem{shard: shardName, key: key, e: e}:
	case <-rs.stop:
	default:
		c.mu.Lock()
		c.stats.WriteBehindDropped++
		c.mu.Unlock()
		obs.GetCounter("evcache.writebehind_dropped").Inc()
	}
}

// writeBehindLoop is the single flusher goroutine: it batches whatever
// is queued (coalescing bursts into per-shard StoreBatch calls) and
// services sync/stop barriers by draining first.
func (c *Cache) writeBehindLoop(rs *remoteState) {
	defer close(rs.done)
	for {
		select {
		case it := <-rs.ch:
			c.flushWB(rs, c.collectWB(rs, it))
		case ack := <-rs.sync:
			c.drainWB(rs)
			close(ack)
		case <-rs.stop:
			c.drainWB(rs)
			return
		}
	}
}

// collectWB coalesces everything already queued behind first (up to
// BatchSize) into per-shard batches.
func (c *Cache) collectWB(rs *remoteState, first wbItem) map[string][]Record {
	batch := map[string][]Record{first.shard: {{Key: first.key, Entry: first.e}}}
	for n := 1; n < rs.opts.BatchSize; n++ {
		select {
		case it := <-rs.ch:
			batch[it.shard] = append(batch[it.shard], Record{Key: it.key, Entry: it.e})
		default:
			return batch
		}
	}
	return batch
}

func (c *Cache) drainWB(rs *remoteState) {
	for {
		select {
		case it := <-rs.ch:
			c.flushWB(rs, c.collectWB(rs, it))
		default:
			return
		}
	}
}

// flushWB ships one coalesced batch. A failed shard batch is dropped
// and counted — the entries live on locally, and a retry storm against
// a dead peer would be worse than one fleet-side recompute.
func (c *Cache) flushWB(rs *remoteState, batch map[string][]Record) {
	for shard, recs := range batch {
		if err := rs.store.StoreBatch(shard, recs); err != nil {
			c.mu.Lock()
			c.stats.WriteBehindDropped += int64(len(recs))
			c.stats.NetErrors++
			c.mu.Unlock()
			obs.GetCounter("evcache.writebehind_dropped").Add(int64(len(recs)))
			obs.GetCounter("evcache.net_errors").Inc()
			continue
		}
		c.mu.Lock()
		c.stats.WriteBehindFlushed += int64(len(recs))
		c.mu.Unlock()
		obs.GetCounter("evcache.writebehind_flushes").Inc()
	}
}

// SyncRemote blocks until every write-behind entry enqueued before the
// call has been offered to the remote store (shutdown hooks and tests;
// the hot path never calls this).
func (c *Cache) SyncRemote() {
	rs := c.remote
	if rs == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case rs.sync <- ack:
		<-ack
	case <-rs.done:
	}
}

// stopWriteBehind ends the flusher after a final drain (bounded wait).
func (c *Cache) stopWriteBehind() {
	rs := c.remote
	if rs == nil {
		return
	}
	rs.stopOnce.Do(func() { close(rs.stop) })
	select {
	case <-rs.done:
	case <-time.After(5 * time.Second):
	}
}
