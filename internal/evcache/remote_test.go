package evcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stubStore is a controllable remote tier for the two-level tests.
type stubStore struct {
	mu      sync.Mutex
	entries map[string]Entry // shard+"\x00"+key
	lookups int
	puts    int
	fail    bool // every call errors
}

func newStubStore() *stubStore { return &stubStore{entries: map[string]Entry{}} }

func (s *stubStore) Lookup(shard, key string) (Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	if s.fail {
		return Entry{}, false, errors.New("stub: remote down")
	}
	e, ok := s.entries[shard+"\x00"+key]
	return e, ok, nil
}

func (s *stubStore) StoreBatch(shard string, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.fail {
		return errors.New("stub: remote down")
	}
	for _, r := range recs {
		s.entries[shard+"\x00"+r.Key] = r.Entry
	}
	return nil
}

func (s *stubStore) Missing(shard string, keys []string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return nil, errors.New("stub: remote down")
	}
	var out []string
	for _, k := range keys {
		if _, ok := s.entries[shard+"\x00"+k]; !ok {
			out = append(out, k)
		}
	}
	return out, nil
}

func (s *stubStore) set(shard, key string, e Entry) {
	s.mu.Lock()
	s.entries[shard+"\x00"+key] = e
	s.mu.Unlock()
}

func (s *stubStore) get(shard, key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[shard+"\x00"+key]
	return e, ok
}

func (s *stubStore) setFail(v bool) {
	s.mu.Lock()
	s.fail = v
	s.mu.Unlock()
}

func (s *stubStore) calls() (lookups, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookups, s.puts
}

func TestStoreInterfaceRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "k1", Entry: testEntry(1)},
		{Key: "k2", Entry: testEntry(2)},
		{Key: "", Entry: testEntry(3)}, // empty keys are skipped
	}
	if err := c.StoreBatch("G", recs); err != nil {
		t.Fatal(err)
	}
	if e, ok, lerr := c.Lookup("G", "k1"); !ok || lerr != nil || e != testEntry(1) {
		t.Fatalf("Lookup k1 = %+v, %v, %v", e, ok, lerr)
	}
	if e, ok := c.Peek("G", "k2"); !ok || e != testEntry(2) {
		t.Fatalf("Peek k2 = %+v, %v", e, ok)
	}
	miss, err := c.Missing("G", []string{"k1", "k2", "k3"})
	if err != nil || len(miss) != 1 || miss[0] != "k3" {
		t.Fatalf("Missing = %v, %v; want [k3]", miss, err)
	}
	if n := c.Resident(); n != 2 {
		t.Errorf("Resident = %d, want 2", n)
	}
	names := c.ShardNames()
	if len(names) != 1 || names[0] != "G" {
		t.Errorf("ShardNames = %v, want [G]", names)
	}
	// Admitted records persist like Put entries.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains("G", "k1") || !c2.Contains("G", "k2") {
		t.Error("StoreBatch records lost across reopen")
	}
}

func TestDropShard(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("G", "k1", testEntry(1))
	c.Put("DH", "k2", testEntry(2))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropShard("G"); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 1 {
		t.Errorf("Resident = %d after drop, want 1", c.Resident())
	}
	// Dropped on disk too: a reopen must not resurrect it.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Contains("G", "k1") {
		t.Error("dropped shard resurrected from disk")
	}
	if !c2.Contains("DH", "k2") {
		t.Error("unrelated shard lost by DropShard")
	}
	// Dropping an absent shard is a no-op, not an error.
	if err := c2.DropShard("nope"); err != nil {
		t.Errorf("DropShard of absent shard: %v", err)
	}
}

// TestDurableReopenAfterFlush covers the fsync'd flush path end to end:
// after Flush returns, a fresh Open must see every record — the flush
// syncs the shard file and its directory, so the rename is durable, not
// merely buffered.
func TestDurableReopenAfterFlush(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		c.Put("G", fmt.Sprintf("k%d", i), testEntry(i))
		c.Put("DH", fmt.Sprintf("k%d", i), testEntry(i+n))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deliberately NOT Close: the flush alone must be durable.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if e, ok := c2.Get("G", fmt.Sprintf("k%d", i)); !ok || e != testEntry(i) {
			t.Fatalf("G/k%d = %+v, %v after flush+reopen", i, e, ok)
		}
		if e, ok := c2.Get("DH", fmt.Sprintf("k%d", i)); !ok || e != testEntry(i+n) {
			t.Fatalf("DH/k%d = %+v, %v after flush+reopen", i, e, ok)
		}
	}
	if st := c2.Stats(); st.Misses != 0 {
		t.Errorf("reopen stats %+v: want full coverage, zero misses", st)
	}
}

func TestReadThroughHit(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	remote.set("G", "warm", testEntry(7))
	c.SetRemote(remote, RemoteOptions{})
	defer c.Close()

	computes := 0
	e, hit := c.Do("G", "warm", func() Entry {
		computes++
		return testEntry(999)
	})
	if computes != 0 {
		t.Fatalf("compute ran %d times for a remote-warm key", computes)
	}
	if !hit || e != testEntry(7) {
		t.Fatalf("Do = %+v, hit=%v; want remote entry, hit", e, hit)
	}
	// The entry is now local: the next lookup is a local hit, no net.
	lookupsBefore, _ := remote.calls()
	if e, ok := c.Get("G", "warm"); !ok || e != testEntry(7) {
		t.Fatal("read-through entry not admitted locally")
	}
	if lookupsAfter, _ := remote.calls(); lookupsAfter != lookupsBefore {
		t.Error("local hit still consulted the remote")
	}
	st := c.Stats()
	if st.NetHits != 1 || st.Computes != 0 {
		t.Errorf("stats %+v: want 1 net hit, 0 computes", st)
	}
	// A remote hit must not echo back over write-behind.
	c.SyncRemote()
	if _, puts := remote.calls(); puts != 0 {
		t.Errorf("remote hit echoed back as %d put batches", puts)
	}
}

func TestWriteBehindPropagates(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	c.SetRemote(remote, RemoteOptions{})
	defer c.Close()

	e, hit := c.Do("G", "cold", func() Entry { return testEntry(3) })
	if hit || e != testEntry(3) {
		t.Fatalf("Do = %+v, hit=%v; want computed miss", e, hit)
	}
	c.Put("G", "direct", testEntry(4))
	c.SyncRemote()
	if got, ok := remote.get("G", "cold"); !ok || got != testEntry(3) {
		t.Errorf("computed entry not written behind: %+v, %v", got, ok)
	}
	if got, ok := remote.get("G", "direct"); !ok || got != testEntry(4) {
		t.Errorf("Put entry not written behind: %+v, %v", got, ok)
	}
	st := c.Stats()
	if st.NetMisses != 1 || st.Computes != 1 || st.WriteBehindFlushed != 2 {
		t.Errorf("stats %+v: want 1 net miss, 1 compute, 2 flushed", st)
	}
}

// TestRemoteUnavailableDegrades covers the required failure mode: a dead
// remote never fails a job — lookups compute locally, errors are counted,
// and the circuit breaker stops consulting the peer after the threshold.
func TestRemoteUnavailableDegrades(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	remote.setFail(true)
	c.SetRemote(remote, RemoteOptions{FailureThreshold: 3, Cooldown: time.Hour})
	defer c.Close()

	for i := 0; i < 10; i++ {
		e, hit := c.Do("G", fmt.Sprintf("k%d", i), func() Entry { return testEntry(i) })
		if hit || e != testEntry(i) {
			t.Fatalf("k%d: Do = %+v, hit=%v with remote down", i, e, hit)
		}
	}
	lookups, _ := remote.calls()
	if lookups != 3 {
		t.Errorf("remote consulted %d times, want exactly FailureThreshold=3 before the breaker trips", lookups)
	}
	st := c.Stats()
	if st.NetErrors < 3 || st.Computes != 10 {
		t.Errorf("stats %+v: want >=3 net errors, 10 computes", st)
	}

	// Recovery: a fresh cache (cooldown elapsed is equivalent) sees the
	// healed remote again.
	remote.setFail(false)
	remote.set("G", "healed", testEntry(42))
	c2, _ := Open("")
	c2.SetRemote(remote, RemoteOptions{})
	defer c2.Close()
	if e, hit := c2.Do("G", "healed", func() Entry { return testEntry(0) }); !hit || e != testEntry(42) {
		t.Errorf("healed remote not consulted: %+v, %v", e, hit)
	}
}

// TestWriteBehindFailureCounted: write-behind failures cost counters,
// never the job, and never block.
func TestWriteBehindFailureCounted(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	remote.setFail(true)
	c.SetRemote(remote, RemoteOptions{})

	c.Put("G", "k", testEntry(1))
	c.SyncRemote()
	st := c.Stats()
	if st.WriteBehindDropped != 1 || st.WriteBehindFlushed != 0 {
		t.Errorf("stats %+v: want 1 dropped, 0 flushed with remote down", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTierConcurrentRace exercises read-through, write-behind, direct
// puts and whole-shard eviction concurrently — the -race coverage the
// fleet tier requires. Assertions are minimal; the value is the
// interleaving under the race detector.
func TestTierConcurrentRace(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	for i := 0; i < 25; i++ {
		remote.set("G", fmt.Sprintf("warm%d", i), testEntry(i))
	}
	c.SetRemote(remote, RemoteOptions{QueueDepth: 64, BatchSize: 8})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				shard := []string{"G", "DH"}[i%2]
				switch i % 5 {
				case 0: // read-through candidates
					c.Do("G", fmt.Sprintf("warm%d", i%25), func() Entry { return testEntry(i) })
				case 1: // cold computes → write-behind
					c.Do(shard, fmt.Sprintf("cold%d-%d", w, i), func() Entry { return testEntry(i) })
				case 2:
					c.Put(shard, fmt.Sprintf("put%d", i%40), testEntry(i))
				case 3:
					c.Get(shard, fmt.Sprintf("put%d", i%40))
				default:
					if i%30 == 4 {
						_ = c.DropShard("DH")
					} else {
						c.StoreBatch(shard, []Record{{Key: fmt.Sprintf("adm%d", i%20), Entry: testEntry(i)}})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	c.SyncRemote()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsWriteBehind: Close must drain the queue so a process
// exiting right after an exploration still ships its computes.
func TestCloseDrainsWriteBehind(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newStubStore()
	c.SetRemote(remote, RemoteOptions{})
	const n = 100
	for i := 0; i < n; i++ {
		c.Put("G", fmt.Sprintf("k%d", i), testEntry(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < n; i++ {
		if _, ok := remote.get("G", fmt.Sprintf("k%d", i)); ok {
			got++
		}
	}
	if got != n {
		t.Errorf("%d/%d entries reached the remote after Close", got, n)
	}
}
