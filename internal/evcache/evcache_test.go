package evcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"customfit/internal/obs"
)

func testEntry(i int) Entry {
	return Entry{Unroll: 1 << (i % 4), Cycles: int64(1000 + i), Spilled: i % 3, Runs: int64(i%4 + 1)}
}

func TestMemoryOnlyRoundtrip(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("G", "k1"); ok {
		t.Fatal("hit on empty cache")
	}
	e := testEntry(1)
	c.Put("G", "k1", e)
	got, ok := c.Get("G", "k1")
	if !ok || got != e {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, e)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit 1 miss", st)
	}
	if err := c.Flush(); err != nil {
		t.Errorf("memory-only Flush: %v", err)
	}
}

func TestPersistAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c1.Put("G", fmt.Sprintf("k%d", i), testEntry(i))
	}
	c1.Put("DH", "other", testEntry(99))
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, ok := c2.Get("G", fmt.Sprintf("k%d", i))
		if !ok || got != testEntry(i) {
			t.Fatalf("after reopen, k%d = %+v, %v", i, got, ok)
		}
	}
	if !c2.Contains("DH", "other") {
		t.Error("second shard lost across reopen")
	}
	if st := c2.Stats(); st.Misses != 0 || st.BytesRead == 0 {
		t.Errorf("warm reopen stats %+v: want zero misses, nonzero bytes read", st)
	}
}

// TestFlushMergesEvictedEntries verifies the rewrite-on-flush merges
// on-disk records that have since been evicted from memory: shrinking
// the LRU must never shrink the persisted shard.
func TestFlushMergesEvictedEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("G", "old", testEntry(1))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.SetMaxEntries(1) // evicts "old" (now clean) once something new arrives
	c.Put("G", "new", testEntry(2))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains("G", "old") || !c2.Contains("G", "new") {
		t.Error("flush dropped evicted on-disk entries")
	}
}

func TestSchemaMismatchSelfInvalidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "G.jsonl")
	stale := fmt.Sprintf("{\"evcache\":%q,\"schema\":%d}\n{\"k\":\"k1\",\"u\":1,\"c\":5,\"s\":0,\"r\":1}\n",
		headerMagic, SchemaVersion+1)
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("G", "k1"); ok {
		t.Fatal("stale-schema shard served an entry")
	}
	// Foreign junk must be equally harmless.
	if err := os.WriteFile(filepath.Join(dir, "DH.jsonl"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("DH", "k1"); ok {
		t.Fatal("junk shard served an entry")
	}
	// A fresh write replaces the stale shard with the current schema.
	c.Put("G", "k2", testEntry(3))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains("G", "k2") || c2.Contains("G", "k1") {
		t.Error("rewrite did not supersede the stale shard")
	}
}

func TestLRUEvictsCleanKeepsDirty(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxEntries(4)
	for i := 0; i < 10; i++ {
		c.Put("G", fmt.Sprintf("k%d", i), testEntry(i))
	}
	// All entries are dirty (never flushed), so nothing may be evicted:
	// a dirty entry's data exists nowhere else.
	for i := 0; i < 10; i++ {
		if !c.Contains("G", fmt.Sprintf("k%d", i)) {
			t.Fatalf("dirty entry k%d evicted", i)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flush cleans (and re-evicts down to capacity)...
	resident := 0
	for i := 0; i < 10; i++ {
		if c.Contains("G", fmt.Sprintf("k%d", i)) {
			resident++
		}
	}
	if resident > 4 {
		t.Errorf("%d entries resident after flush, cap is 4", resident)
	}
	// ...but evicted entries remain retrievable from disk via reopen.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !c2.Contains("G", fmt.Sprintf("k%d", i)) {
			t.Fatalf("k%d lost after eviction + flush", i)
		}
	}
}

func TestDoSingleflight(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var computes int32
	var mu sync.Mutex
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]Entry, workers)
	hits := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			e, hit := c.Do("G", "hot", func() Entry {
				mu.Lock()
				computes++
				mu.Unlock()
				return testEntry(7)
			})
			results[w], hits[w] = e, hit
		}(w)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	misses := 0
	for w := 0; w < workers; w++ {
		if results[w] != testEntry(7) {
			t.Fatalf("worker %d got %+v", w, results[w])
		}
		if !hits[w] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d workers report their own compute, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != workers-1 {
		t.Errorf("stats %+v after singleflight of %d workers", st, workers)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%50)
				shard := []string{"G", "F", "DH"}[i%3]
				switch i % 4 {
				case 0:
					c.Put(shard, key, testEntry(i))
				case 1:
					c.Get(shard, key)
				case 2:
					c.Do(shard, key, func() Entry { return testEntry(i) })
				default:
					c.Contains(shard, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeShardNames(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("../evil/name", "k", testEntry(1))
	c.Put("", "k", testEntry(2))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.ContainsAny(de.Name(), "/\\") || strings.HasPrefix(de.Name(), "..") {
			t.Errorf("unsafe shard file %q", de.Name())
		}
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains("../evil/name", "k") || !c2.Contains("", "k") {
		t.Error("sanitized shards not retrievable")
	}
}

// TestCorruptTrailingLineSkipped hand-corrupts a flushed shard the way
// a crash mid-append or filesystem truncation would — a torn final JSON
// line plus a junk line — and verifies the reopen skips exactly the bad
// lines (bumping Stats.CorruptLines and the evcache.corrupt_lines
// counter) while every intact record survives.
func TestCorruptTrailingLineSkipped(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c1.Put("G", fmt.Sprintf("k%d", i), testEntry(i))
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-JSON and append a junk line after it.
	path := filepath.Join(dir, "G.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("shard has %d lines, want header + records", len(lines))
	}
	last := lines[len(lines)-1]
	lines[len(lines)-1] = last[:len(last)/2] // torn tail
	lines = append(lines, "!!not json!!")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	col := obs.NewCollector()
	obs.Install(col)
	defer obs.Install(nil)
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Everything before the torn tail must survive; exactly one record
	// (the torn one) is gone. Which one was last in the file — and so
	// torn — depends on flush order, so track the survivors by key.
	var survivors []string
	for i := 0; i < 8; i++ {
		if k := fmt.Sprintf("k%d", i); c2.Contains("G", k) {
			survivors = append(survivors, k)
		}
	}
	if len(survivors) != 7 {
		t.Errorf("%d of 8 records survived the torn tail, want 7", len(survivors))
	}
	if st := c2.Stats(); st.CorruptLines != 2 {
		t.Errorf("Stats.CorruptLines = %d, want 2 (torn tail + junk line)", st.CorruptLines)
	}
	if v := col.Counter("evcache.corrupt_lines").Value(); v != 2 {
		t.Errorf("evcache.corrupt_lines counter = %d, want 2", v)
	}

	// The shard stays writable: the next flush rewrites a clean file.
	c2.Put("G", "fresh", testEntry(42))
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Contains("G", "fresh") {
		t.Error("fresh record lost after flushing a previously corrupted shard")
	}
	for _, k := range survivors {
		if !c3.Contains("G", k) {
			t.Errorf("record %s lost after flushing a previously corrupted shard", k)
		}
	}
	if st := c3.Stats(); st.CorruptLines != 0 {
		t.Errorf("rewritten shard still reports %d corrupt lines", st.CorruptLines)
	}
}
