package core

import (
	"fmt"
	"os"
	"strings"

	"customfit/internal/bench"
	"customfit/internal/dse"
	"customfit/internal/machine"
	"customfit/internal/ops"
)

// MineOps mines custom-op candidates from the benchmarks' kernel DDGs
// on the standard reference workload (see internal/ops and
// docs/CUSTOMOPS.md), ranked best-first by frequency × latency saved.
func MineOps(benchmarks []*bench.Benchmark, width int) ([]ops.Candidate, error) {
	ev := dse.NewEvaluator()
	if width > 0 {
		ev.Width = width
	}
	return ev.MineOps(benchmarks)
}

// AutoOps mines the benchmarks and selects the top-scoring op set of at
// most n specs (the dse default when n <= 0); nil when nothing
// qualifies.
func AutoOps(benchmarks []*bench.Benchmark, width, n int) (*machine.OpSet, error) {
	ev := dse.NewEvaluator()
	if width > 0 {
		ev.Width = width
	}
	return ev.AutoOps(benchmarks, n)
}

// ResolveOps resolves a CLI-style op-set selector (the -ops flag):
//
//   - "" or "off": nil (the classic 6-tuple exploration);
//   - "auto": mine the benchmarks and keep the top n candidates
//     (default size when n <= 0);
//   - anything else: a path to a catalog file of codec texts
//     ("mac/3/2: mul $0 $1; add %0 $2"), one per line, with '#'
//     comments and blank lines ignored.
func ResolveOps(sel string, benchmarks []*bench.Benchmark, width, n int) (*machine.OpSet, error) {
	switch sel {
	case "", "off":
		return nil, nil
	case "auto":
		return AutoOps(benchmarks, width, n)
	}
	data, err := os.ReadFile(sel)
	if err != nil {
		return nil, fmt.Errorf("customfit: op catalog: %w", err)
	}
	var texts []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		texts = append(texts, line)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("customfit: op catalog %s is empty", sel)
	}
	set, err := machine.ParseOpCatalog(texts)
	if err != nil {
		return nil, fmt.Errorf("customfit: op catalog %s: %w", sel, err)
	}
	return set, nil
}
