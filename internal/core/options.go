package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"customfit/internal/bench"
	"customfit/internal/dse"
	"customfit/internal/evcache"
	"customfit/internal/machine"
	"customfit/internal/search"
)

// Sentinel errors of the facade. Every context-threaded entry point
// classifies its failures into one of these (wrapped, so errors.Is
// works) or returns an untyped internal error.
var (
	// ErrCancelled reports that the caller's context ended before the
	// work completed. It is dse.ErrCancelled, and always also matches
	// the underlying context.Canceled / context.DeadlineExceeded.
	ErrCancelled = dse.ErrCancelled
	// ErrInfeasible reports that no architecture satisfies the given
	// constraints (typically the cost cap).
	ErrInfeasible = errors.New("customfit: no architecture satisfies the constraints")
	// ErrBadKernel reports that CKC source failed to parse or lower.
	ErrBadKernel = errors.New("customfit: kernel does not compile")
)

// ExploreOptions configures a design-space exploration. The zero value
// explores the full concrete space on the paper's full benchmark suite
// with default models — the paper's Table 3 run.
type ExploreOptions struct {
	// Benchmarks to evaluate (nil = the paper's full suite).
	Benchmarks []*bench.Benchmark
	// Archs restricts the space (nil = machine.FullSpace()).
	Archs []machine.Arch
	// Sample > 1 keeps every Nth machine of the space, always retaining
	// the baseline so speedups stay defined.
	Sample int
	// ExactArchs explores exactly Archs as given: Sample is ignored and
	// the baseline machine is not appended when absent (speedups are
	// still measured against it — the explorer evaluates an out-of-grid
	// baseline and accounts those compilations in Stats.BaselineRuns).
	// Shard dispatch (internal/dist) relies on this to keep distributed
	// runs accounting-identical to a single local run.
	ExactArchs bool
	// Width is the reference workload width in pixels (default 96).
	Width int
	// Parallelism bounds concurrent compile workers (default
	// GOMAXPROCS).
	Parallelism int
	// DisableMemo turns off arch-signature memoization and the
	// persistent cache (see docs/PERFORMANCE.md).
	DisableMemo bool
	// DisableDelta turns off delta compilation (the block-schedule reuse
	// cache behind cheap neighbor re-evaluation; see docs/PERFORMANCE.md).
	// Results are bit-identical either way.
	DisableDelta bool
	// CacheDir, when non-empty, persists evaluation sweeps under this
	// directory (content-addressed; results identical, warm re-runs
	// near-instant — see docs/PERFORMANCE.md).
	CacheDir string
	// Cache is a pre-opened evaluation cache, taking precedence over
	// CacheDir. The caller keeps ownership (it is not closed here);
	// long-lived processes such as cfp-serve share one cache across
	// requests this way. External callers use CacheDir instead.
	Cache *evcache.Cache
	// Progress, if set, receives monotonically increasing snapshots
	// while exploring (see dse.ProgressInfo for the contract).
	Progress func(dse.ProgressInfo)
	// Ops, when non-nil, crosses the explored grid with the custom-op
	// axis: every architecture appears once op-free and once with the
	// whole catalog enabled (machine.CrossOps with machine.DefaultMasks;
	// per-op granularity is the search strategies' job). Nil keeps the
	// classic 6-tuple exploration bit-identical. Ignored under
	// ExactArchs — there the caller crosses the grid itself (the
	// distributed coordinator pre-crosses before sharding).
	Ops *machine.OpSet
}

// resolveArchs applies Archs and Sample, keeping the baseline present
// (unless ExactArchs pins the grid verbatim).
func (o *ExploreOptions) resolveArchs() []machine.Arch {
	archs := o.Archs
	if archs == nil {
		archs = machine.FullSpace()
	}
	if o.ExactArchs {
		return archs
	}
	if o.Sample > 1 {
		var thinned []machine.Arch
		for i := 0; i < len(archs); i += o.Sample {
			thinned = append(thinned, archs[i])
		}
		archs = thinned
	}
	archs = ensureBaseline(archs)
	if o.Ops != nil {
		archs = machine.CrossOps(archs, o.Ops, machine.DefaultMasks(o.Ops))
	}
	return archs
}

// openCache resolves the cache the options ask for: the pre-opened one,
// or a fresh one under CacheDir. ownClose reports whether the caller
// must close it.
func (o *ExploreOptions) openCache() (c *evcache.Cache, ownClose bool, err error) {
	if o.Cache != nil {
		return o.Cache, false, nil
	}
	if o.CacheDir == "" {
		return nil, false, nil
	}
	c, err = evcache.Open(o.CacheDir)
	return c, true, err
}

// Explore runs the design-space exploration described by opts under
// ctx. Cancelling ctx stops scheduling new evaluations immediately and
// returns an error wrapping ErrCancelled; an uncancelled run's Results
// are bit-identical to the equivalent dse.Explorer run (warm or cold
// cache).
func Explore(ctx context.Context, opts ExploreOptions) (*dse.Results, error) {
	e := dse.NewExplorer()
	if opts.Benchmarks != nil {
		e.Benchmarks = opts.Benchmarks
	}
	e.Archs = opts.resolveArchs()
	e.Width = opts.Width
	e.Workers = opts.Parallelism
	e.DisableMemo = opts.DisableMemo
	e.DisableDelta = opts.DisableDelta
	e.Progress = opts.Progress
	cache, own, err := opts.openCache()
	if err != nil {
		return nil, err
	}
	e.Cache = cache
	res, rerr := e.RunCtx(ctx)
	if own && cache != nil {
		if cerr := cache.Close(); rerr == nil && cerr != nil {
			return nil, cerr
		}
	}
	return res, rerr
}

// FitOptions configures a custom-fit search (the paper's headline
// loop). Benchmarks and CostCap are required; the embedded exploration
// knobs default like ExploreOptions.
type FitOptions struct {
	// Benchmarks the architecture is fit to (required).
	Benchmarks []*bench.Benchmark
	// CostCap is the datapath cost budget relative to the baseline.
	CostCap float64
	// Range backs the selection off pure specialization: 0 picks the
	// feasible architecture with the best mean speedup on Benchmarks;
	// Range > 0 (e.g. 0.10) picks, among feasible architectures within
	// Range of that best mean, the cheapest one (ties broken by
	// speedup) — the paper's Section 4.2 "within 10% of the best"
	// designer scenario.
	Range float64
	// Archs / Sample / Width / Parallelism / CacheDir as in
	// ExploreOptions.
	Archs       []machine.Arch
	Sample      int
	Width       int
	Parallelism int
	CacheDir    string
	// Cache as in ExploreOptions (pre-opened, caller-owned).
	Cache *evcache.Cache
	// Progress as in ExploreOptions.
	Progress func(dse.ProgressInfo)
	// Ops as in ExploreOptions: crosses the fitted grid with the
	// custom-op axis, letting the selection trade datapath area for
	// fused-instruction cycles under the same cost cap.
	Ops *machine.OpSet
}

// CustomFitCtx explores the space and selects the best architecture for
// opts.Benchmarks under opts.CostCap. It returns ErrInfeasible (wrapped)
// when no explored architecture fits the cap, and ErrCancelled when ctx
// ends first.
func CustomFitCtx(ctx context.Context, opts FitOptions) (*FitResult, error) {
	if len(opts.Benchmarks) == 0 {
		return nil, fmt.Errorf("customfit: no benchmarks given")
	}
	res, err := Explore(ctx, ExploreOptions{
		Benchmarks:  opts.Benchmarks,
		Archs:       opts.Archs,
		Sample:      opts.Sample,
		Width:       opts.Width,
		Parallelism: opts.Parallelism,
		CacheDir:    opts.CacheDir,
		Cache:       opts.Cache,
		Progress:    opts.Progress,
		Ops:         opts.Ops,
	})
	if err != nil {
		return nil, err
	}
	return pickBestRange(res, opts.Benchmarks, opts.CostCap, opts.Range)
}

// SearchOptions configures a search-strategy comparison (the paper's
// third research question): how close do cheap strategies come to the
// exhaustive optimum for one benchmark under a cost cap.
type SearchOptions struct {
	// Benchmark to fit (required).
	Benchmark *bench.Benchmark
	// CostCap is the cost budget; candidates over it score -Inf.
	CostCap float64
	// Space restricts the candidate set (nil = search.SubLattice()).
	Space []machine.Arch
	// Ops, when non-nil, crosses the (possibly sampled) space with the
	// custom-op catalog (machine.CrossOps with the default masks); the
	// strategies then explore op toggles as single-parameter moves.
	Ops *machine.OpSet
	// Sample > 1 keeps every Nth machine of the space.
	Sample int
	// Width is the reference workload width (default 64, matching
	// cfp-search).
	Width int
	// Seed drives the stochastic strategies.
	Seed int64
	// Prune enables bound-guided pruning for the deterministic
	// strategies (exact: identical optima, fewer compiles).
	Prune bool
	// DisableDelta turns off delta compilation in the evaluator backing
	// the objective (see ExploreOptions.DisableDelta).
	DisableDelta bool
	// CacheDir / Cache as in ExploreOptions.
	CacheDir string
	Cache    *evcache.Cache
}

// SearchCompare runs every search strategy against the real
// compile-and-measure objective under ctx and normalizes scores to the
// exhaustive optimum. Cancelling ctx stops the in-flight strategy
// promptly and returns ErrCancelled (wrapped).
func SearchCompare(ctx context.Context, opts SearchOptions) ([]search.Result, error) {
	if opts.Benchmark == nil {
		return nil, fmt.Errorf("customfit: no benchmark given")
	}
	space := opts.Space
	if space == nil {
		space = search.SubLattice()
	}
	if opts.Sample > 1 {
		var thinned []machine.Arch
		for i := 0; i < len(space); i += opts.Sample {
			thinned = append(thinned, space[i])
		}
		space = thinned
	}
	if opts.Ops != nil {
		space = machine.CrossOps(space, opts.Ops, machine.DefaultMasks(opts.Ops))
	}
	ev := dse.NewEvaluator()
	ev.DisableDelta = opts.DisableDelta
	if opts.Width > 0 {
		ev.Width = opts.Width
	} else {
		ev.Width = 64
	}
	eo := ExploreOptions{CacheDir: opts.CacheDir, Cache: opts.Cache}
	cache, own, err := eo.openCache()
	if err != nil {
		return nil, err
	}
	ev.Cache = cache
	if own {
		defer cache.Close()
	}
	baseline := ev.EvaluateCtx(ctx, opts.Benchmark, machine.Baseline)
	if baseline.Cancelled {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
	}
	if baseline.Failed {
		return nil, fmt.Errorf("customfit: baseline evaluation failed for %s", opts.Benchmark.Name)
	}
	cost := machine.DefaultCostModel
	obj := func(a machine.Arch) float64 {
		if cost.Cost(a) > opts.CostCap {
			return math.Inf(-1)
		}
		e := ev.EvaluateCtx(ctx, opts.Benchmark, a)
		if e.Failed || e.Cancelled {
			return math.Inf(-1)
		}
		return baseline.Time / e.Time
	}
	var bound search.Bound
	if opts.Prune {
		bound = ev.SpeedupBound(opts.Benchmark, baseline.Time, cost, opts.CostCap)
	}
	out, err := search.CompareCtx(ctx, space, search.Objective(obj), bound, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return out, nil
}

// pickBestRange is pickBest extended with the Range back-off: Range = 0
// keeps pickBest's pure-specialization choice; Range > 0 takes, among
// cap-feasible architectures whose mean speedup on the target
// benchmarks is within Range of the best achievable mean, the cheapest
// (ties broken by higher speedup).
func pickBestRange(res *dse.Results, benchmarks []*bench.Benchmark, costCap, rng float64) (*FitResult, error) {
	if rng <= 0 {
		return pickBest(res, benchmarks, costCap)
	}
	type cand struct {
		idx  int
		mean float64
	}
	var cands []cand
	bestMean := -1.0
	for i := range res.Archs {
		if res.Cost[i] > costCap {
			continue
		}
		sum, ok := 0.0, true
		for _, b := range benchmarks {
			ev := res.Eval[b.Name][i]
			if ev.Failed {
				ok = false
				break
			}
			sum += ev.Speedup
		}
		if !ok {
			continue
		}
		mean := sum / float64(len(benchmarks))
		cands = append(cands, cand{i, mean})
		if mean > bestMean {
			bestMean = mean
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: cost cap %.1f", ErrInfeasible, costCap)
	}
	floor := bestMean * (1 - rng)
	best := -1
	bestMeanAt := -1.0
	for _, c := range cands {
		if c.mean < floor {
			continue
		}
		if best < 0 ||
			res.Cost[c.idx] < res.Cost[best] ||
			(res.Cost[c.idx] == res.Cost[best] && c.mean > bestMeanAt) {
			best, bestMeanAt = c.idx, c.mean
		}
	}
	out := &FitResult{
		Best:     res.Archs[best],
		Cost:     res.Cost[best],
		Speedups: map[string]float64{},
		Results:  res,
	}
	for _, b := range benchmarks {
		out.Speedups[b.Name] = res.Eval[b.Name][best].Speedup
	}
	return out, nil
}
