// Package core is the high-level facade over the custom-fit toolchain:
// compile a CKC kernel for any architecture in the template, simulate
// it cycle-accurately, explore the design space, and "custom-fit" an
// architecture to an application under a cost budget — the paper's
// end-to-end loop as a library.
package core

import (
	"context"
	"fmt"

	"customfit/internal/bench"
	"customfit/internal/cc"
	"customfit/internal/dse"
	"customfit/internal/ir"
	"customfit/internal/machine"
	"customfit/internal/obs"
	"customfit/internal/opt"
	"customfit/internal/sched"
	"customfit/internal/sim"
	"customfit/internal/vliw"
)

// Kernel is a parsed and lowered CKC kernel ready for retargeting.
type Kernel struct {
	Name string
	fn   *ir.Func
}

// ParseKernel compiles CKC source containing exactly one kernel.
// Frontend failures wrap ErrBadKernel.
func ParseKernel(src string) (*Kernel, error) {
	return ParseKernelCtx(context.Background(), src)
}

// ParseKernelCtx is ParseKernel with its frontend span parented under
// the context's current span (obs.SpanFromContext), so a traced job's
// parse work lands inside the job's trace.
func ParseKernelCtx(ctx context.Context, src string) (*Kernel, error) {
	sp := obs.StartSpanCtx(ctx, "frontend")
	fn, err := cc.CompileKernelSpan(sp, src)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadKernel, err)
	}
	return &Kernel{Name: fn.Name, fn: fn}, nil
}

// IR returns the lowered (unoptimized) IR listing.
func (k *Kernel) IR() string { return k.fn.String() }

// Compiled is a kernel scheduled for one concrete architecture.
type Compiled struct {
	Kernel  *Kernel
	Arch    machine.Arch
	Unroll  int
	Spilled int
	Prog    *vliw.Program
}

// Compile retargets the kernel to arch at the given unroll factor,
// running the full pipeline: optimize, unroll, partition, schedule,
// allocate (with spilling if needed), validate.
func (k *Kernel) Compile(arch machine.Arch, unroll int) (*Compiled, error) {
	return k.CompileCtx(context.Background(), arch, unroll)
}

// CompileCtx is Compile with the compile span parented under the
// context's current span (see ParseKernelCtx).
func (k *Kernel) CompileCtx(ctx context.Context, arch machine.Arch, unroll int) (*Compiled, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpanCtx(ctx, "compile")
	if sp != nil {
		sp.Str("kernel", k.Name).Str("arch", arch.String()).Int("unroll", int64(unroll))
	}
	defer sp.End()
	prepared, err := opt.PrepareSpan(sp, k.fn, unroll)
	if err != nil {
		return nil, err
	}
	res, err := sched.CompileSpan(sp, prepared, arch)
	if err != nil {
		return nil, err
	}
	vsp := sp.Child("sched.validate")
	err = sched.Validate(res.Prog)
	vsp.End()
	if err != nil {
		return nil, fmt.Errorf("core: internal scheduling error: %w", err)
	}
	return &Compiled{
		Kernel:  k,
		Arch:    arch,
		Unroll:  unroll,
		Spilled: res.Spilled,
		Prog:    res.Prog,
	}, nil
}

// Assembly renders the scheduled VLIW program.
func (c *Compiled) Assembly() string { return c.Prog.String() }

// RunStats reports a simulation.
type RunStats struct {
	Cycles      int64
	Ops         int64
	Bundles     int64
	MemAccesses int64
	IPC         float64
	// Time is Cycles scaled by the architecture's cycle-time derating —
	// the paper's performance metric.
	Time float64
	// Dynamic, cycle-weighted resource occupancy (see sim.Stats):
	// fractions of available ALU/MUL slot-cycles and L1/L2 port-cycles
	// actually used, plus the resource that bounded the run.
	ALUOcc, MULOcc, L1Occ, L2Occ float64
	StallCycles                  int64
	Bound                        string
}

// newRunStats converts simulator statistics to the facade's form.
func newRunStats(st *sim.Stats, arch machine.Arch) *RunStats {
	ipc := 0.0
	if st.Cycles > 0 {
		ipc = float64(st.Ops) / float64(st.Cycles)
	}
	return &RunStats{
		Cycles:      st.Cycles,
		Ops:         st.Ops,
		Bundles:     st.Bundles,
		MemAccesses: st.MemAccesses,
		IPC:         ipc,
		Time:        float64(st.Cycles) * machine.DefaultCycleModel.Derate(arch),
		ALUOcc:      st.ALUOcc,
		MULOcc:      st.MULOcc,
		L1Occ:       st.L1Occ,
		L2Occ:       st.L2Occ,
		StallCycles: st.StallCycles,
		Bound:       st.Bound,
	}
}

// Run executes the compiled kernel on the cycle-accurate simulator.
// args are scalar parameters in declaration order; mem binds arrays by
// name (mutated in place).
func (c *Compiled) Run(args []int32, mem map[string][]int32) (*RunStats, error) {
	return c.RunCtx(context.Background(), args, mem)
}

// RunCtx is Run with the simulation span parented under the context's
// current span (see ParseKernelCtx).
func (c *Compiled) RunCtx(ctx context.Context, args []int32, mem map[string][]int32) (*RunStats, error) {
	env := ir.NewEnv(args...)
	for name, data := range mem {
		env.Bind(name, data)
	}
	st, err := sim.RunCtx(ctx, c.Prog, env)
	if err != nil {
		return nil, err
	}
	return newRunStats(st, c.Arch), nil
}

// RunPhysical is Run through the register allocator's physical
// assignment: every access goes to the assigned physical register in
// its cluster's file, so the run additionally proves the allocation
// conflict-free.
func (c *Compiled) RunPhysical(args []int32, mem map[string][]int32) (*RunStats, error) {
	env := ir.NewEnv(args...)
	for name, data := range mem {
		env.Bind(name, data)
	}
	st, err := sim.RunPhysical(c.Prog, env)
	if err != nil {
		return nil, err
	}
	return newRunStats(st, c.Arch), nil
}

// Interpret runs the kernel's (unscheduled) IR directly — the semantic
// reference, useful for validating against Run.
func (k *Kernel) Interpret(args []int32, mem map[string][]int32) error {
	env := ir.NewEnv(args...)
	for name, data := range mem {
		env.Bind(name, data)
	}
	_, err := ir.Interp(k.fn, env)
	return err
}

// FitResult is the outcome of a custom-fit run.
type FitResult struct {
	// Best is the selected architecture.
	Best machine.Arch
	// Cost is its datapath cost relative to the baseline.
	Cost float64
	// Speedups per benchmark, relative to the baseline machine.
	Speedups map[string]float64
	// Results is the full exploration for further analysis.
	Results *dse.Results
}

// CustomFit searches the full design space for the architecture that
// maximizes mean speedup over the given benchmarks without exceeding
// costCap — the paper's headline flow. Pass a single benchmark to
// specialize for one algorithm (and read the Results to see what that
// choice does to everything else).
//
// Deprecated: use CustomFitCtx with FitOptions (cancellable, and
// carries the cache/width/parallelism knobs). This wrapper runs it
// under a background context.
func CustomFit(benchmarks []*bench.Benchmark, costCap float64) (*FitResult, error) {
	return CustomFitCtx(context.Background(), FitOptions{Benchmarks: benchmarks, CostCap: costCap})
}

// CustomFitIn is CustomFit over a caller-chosen architecture subset
// (e.g. a sampled space for quick runs).
//
// Deprecated: use CustomFitCtx with FitOptions.Archs.
func CustomFitIn(benchmarks []*bench.Benchmark, costCap float64, archs []machine.Arch) (*FitResult, error) {
	return CustomFitCtx(context.Background(), FitOptions{Benchmarks: benchmarks, CostCap: costCap, Archs: archs})
}

func ensureBaseline(archs []machine.Arch) []machine.Arch {
	for _, a := range archs {
		if a == machine.Baseline {
			return archs
		}
	}
	return append(append([]machine.Arch(nil), archs...), machine.Baseline)
}

func pickBest(res *dse.Results, benchmarks []*bench.Benchmark, costCap float64) (*FitResult, error) {
	best, bestScore := -1, -1.0
	for i := range res.Archs {
		if res.Cost[i] > costCap {
			continue
		}
		sum, ok := 0.0, true
		for _, b := range benchmarks {
			ev := res.Eval[b.Name][i]
			if ev.Failed {
				ok = false
				break
			}
			sum += ev.Speedup
		}
		if !ok {
			continue
		}
		if avg := sum / float64(len(benchmarks)); avg > bestScore {
			best, bestScore = i, avg
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("%w: cost cap %.1f", ErrInfeasible, costCap)
	}
	out := &FitResult{
		Best:     res.Archs[best],
		Cost:     res.Cost[best],
		Speedups: map[string]float64{},
		Results:  res,
	}
	for _, b := range benchmarks {
		out.Speedups[b.Name] = res.Eval[b.Name][best].Speedup
	}
	return out, nil
}
