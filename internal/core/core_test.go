package core

import (
	"strings"
	"testing"

	"customfit/internal/bench"
	"customfit/internal/machine"
)

const coreSrc = `
	kernel double(int in[], int out[], int n) {
		int i;
		for (i = 0; i < n; i++) { out[i] = in[i] * 2; }
	}`

func TestParseCompileRun(t *testing.T) {
	k, err := ParseKernel(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "double" {
		t.Errorf("Name = %q", k.Name)
	}
	if !strings.Contains(k.IR(), "kernel double") {
		t.Error("IR dump missing header")
	}
	c, err := k.Compile(machine.Arch{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Assembly(), "bundles") {
		t.Error("assembly missing header")
	}
	in := []int32{1, 2, 3, 4, 5}
	out := make([]int32, 5)
	st, err := c.Run([]int32{5}, map[string][]int32{"in": in, "out": out})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		if out[i] != 2*v {
			t.Errorf("out[%d] = %d, want %d", i, out[i], 2*v)
		}
	}
	if st.Cycles <= 0 || st.Time < float64(st.Cycles) {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestCompileRejectsInvalidArch(t *testing.T) {
	k, _ := ParseKernel(coreSrc)
	if _, err := k.Compile(machine.Arch{ALUs: 3, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 4, Clusters: 2}, 1); err == nil {
		t.Error("invalid architecture accepted")
	}
}

func TestInterpretAgreesWithRun(t *testing.T) {
	k, _ := ParseKernel(coreSrc)
	in := []int32{7, 8, 9}
	ref := make([]int32, 3)
	if err := k.Interpret([]int32{3}, map[string][]int32{"in": in, "out": ref}); err != nil {
		t.Fatal(err)
	}
	c, err := k.Compile(machine.Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int32, 3)
	if _, err := c.Run([]int32{3}, map[string][]int32{"in": in, "out": got}); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("out[%d]: interp %d vs sim %d", i, ref[i], got[i])
		}
	}
}

func TestCustomFitInPicksWithinBudget(t *testing.T) {
	space := []machine.Arch{
		machine.Baseline,
		{ALUs: 4, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 4, Clusters: 2},
		{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 4, L2Lat: 2, Clusters: 2},
		{ALUs: 16, MULs: 8, Regs: 512, L2Ports: 4, L2Lat: 2, Clusters: 2},
	}
	d := bench.ByName("D")
	fit, err := CustomFitIn([]*bench.Benchmark{d}, 8, space)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Cost > 8 {
		t.Errorf("selected cost %.2f over budget", fit.Cost)
	}
	if fit.Speedups["D"] < 1 {
		t.Errorf("fit speedup %.2f < 1", fit.Speedups["D"])
	}
	// An absurdly small budget must fail cleanly.
	if _, err := CustomFitIn([]*bench.Benchmark{d}, 0.1, space); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestRunPhysicalMatchesRun(t *testing.T) {
	k, _ := ParseKernel(coreSrc)
	c, err := k.Compile(machine.Arch{ALUs: 8, MULs: 4, Regs: 256, L2Ports: 2, L2Lat: 4, Clusters: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	a := make([]int32, 8)
	b := make([]int32, 8)
	s1, err := c.Run([]int32{8}, map[string][]int32{"in": in, "out": a})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.RunPhysical([]int32{8}, map[string][]int32{"in": in, "out": b})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("out[%d]: virtual %d vs physical %d", i, a[i], b[i])
		}
	}
	if s1.Cycles != s2.Cycles {
		t.Errorf("cycles differ: %d vs %d", s1.Cycles, s2.Cycles)
	}
}
