package machine

import "math"

// The paper publishes sample outputs of its cost and cycle models
// (Tables 6 and 7) but not the underlying fitting constants k1..k5,
// which were "computed from observation of existing designs". We
// recover the constants by fitting the published model form to the
// published outputs. The fit quality is asserted in tests and reported
// in EXPERIMENTS.md.

// arch6 builds an Arch from the paper's positional 6-tuple.
func arch6(a, m, r, p2, l2, c int) Arch {
	return Arch{ALUs: a, MULs: m, Regs: r, L2Ports: p2, L2Lat: l2, Clusters: c}
}

// CostPoint is one row of the paper's Table 6.
type CostPoint struct {
	Arch Arch
	Cost float64
}

// Table6 is the paper's Table 6: example architecture costs relative to
// the baseline. All rows have one L2 memory port; the paper's column
// order is (IALU, IMUL, L2MEM, REGS, Clusters).
var Table6 = []CostPoint{
	{arch6(1, 1, 64, 1, 8, 1), 1.0},
	{arch6(2, 1, 64, 1, 8, 1), 1.7},
	{arch6(4, 2, 128, 1, 8, 1), 6.5},
	{arch6(4, 2, 128, 1, 8, 2), 3.6},
	{arch6(8, 4, 256, 1, 8, 1), 28.7},
	{arch6(8, 4, 256, 1, 8, 2), 13.1},
	{arch6(8, 4, 256, 1, 8, 4), 7.4},
	{arch6(16, 8, 512, 1, 8, 1), 93.4},
	{arch6(16, 8, 512, 1, 8, 2), 38.4},
	{arch6(16, 8, 512, 1, 8, 4), 19.0},
	{arch6(16, 8, 512, 1, 8, 8), 12.2},
}

// CyclePoint is one row of the paper's Table 7.
type CyclePoint struct {
	Arch   Arch
	Derate float64
}

// Table7 is the paper's Table 7: cycle-speed derating factors.
var Table7 = []CyclePoint{
	{arch6(1, 1, 64, 1, 8, 1), 1.0},
	{arch6(2, 1, 64, 1, 8, 1), 1.1},
	{arch6(4, 2, 128, 1, 8, 1), 1.5},
	{arch6(4, 2, 128, 1, 8, 2), 1.1},
	{arch6(8, 4, 256, 1, 8, 1), 2.7},
	{arch6(8, 4, 256, 1, 8, 2), 1.4},
	{arch6(8, 4, 256, 1, 8, 4), 1.1},
	{arch6(16, 8, 512, 1, 8, 1), 7.3},
	{arch6(16, 8, 512, 1, 8, 2), 2.7},
	{arch6(16, 8, 512, 1, 8, 4), 1.5},
	{arch6(16, 8, 512, 1, 8, 8), 1.1},
}

// costObjective is the sum of squared log-ratio errors of a candidate
// model against Table 6. Log-space errors weight a 2× miss on a cheap
// machine the same as a 2× miss on an expensive one.
func costObjective(cm CostModel) float64 {
	s := 0.0
	for _, pt := range Table6 {
		pred := cm.Cost(pt.Arch)
		d := math.Log(pred / pt.Cost)
		s += d * d
	}
	return s
}

// FitCostModel recovers K2, K4, K5 (K3 is the scale anchor, fixed at 1)
// by cyclic coordinate descent with shrinking step sizes. The objective
// is smooth and low-dimensional; this converges well past the accuracy
// the published two-significant-digit table supports.
func FitCostModel() CostModel {
	cm := CostModel{K2: 0.01, K3: 1, K4: 10, K5: 20}
	params := []*float64{&cm.K2, &cm.K4, &cm.K5}
	step := []float64{0.01, 10, 20}
	for iter := 0; iter < 200; iter++ {
		improved := false
		for i, p := range params {
			base := costObjective(cm)
			for _, dir := range []float64{1, -1} {
				old := *p
				cand := old + dir*step[i]
				if cand <= 0 {
					continue
				}
				*p = cand
				if costObjective(cm) < base {
					improved = true
					break
				}
				*p = old
			}
		}
		if !improved {
			for i := range step {
				step[i] *= 0.5
			}
		}
		if step[0] < 1e-7 {
			break
		}
	}
	return cm
}

// FitCycleModel recovers Gamma by golden-section search against Table 7.
func FitCycleModel() CycleModel {
	obj := func(g float64) float64 {
		cm := CycleModel{Gamma: g}
		s := 0.0
		for _, pt := range Table7 {
			d := math.Log(cm.Derate(pt.Arch) / pt.Derate)
			s += d * d
		}
		return s
	}
	lo, hi := 1e-5, 0.1
	phi := (math.Sqrt(5) - 1) / 2
	for i := 0; i < 200; i++ {
		m1 := hi - phi*(hi-lo)
		m2 := lo + phi*(hi-lo)
		if obj(m1) < obj(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return CycleModel{Gamma: (lo + hi) / 2}
}

// MaxRelErrCost returns the worst-case relative error of a cost model
// against Table 6.
func MaxRelErrCost(cm CostModel) float64 {
	worst := 0.0
	for _, pt := range Table6 {
		e := math.Abs(cm.Cost(pt.Arch)-pt.Cost) / pt.Cost
		if e > worst {
			worst = e
		}
	}
	return worst
}

// MaxRelErrCycle returns the worst-case relative error of a cycle model
// against Table 7.
func MaxRelErrCycle(cm CycleModel) float64 {
	worst := 0.0
	for _, pt := range Table7 {
		e := math.Abs(cm.Derate(pt.Arch)-pt.Derate) / pt.Derate
		if e > worst {
			worst = e
		}
	}
	return worst
}
