package machine

// The design space follows the paper's Table 4 ranges:
//
//   - ALUs a ∈ {1, 2, 4, 8, 16}
//   - IMUL-capable ALUs m ∈ {a/4, a/2}, at least 1
//   - total registers r ∈ {64, 128, 256, 512}
//   - L2 memory ports p2 ∈ {1, 2, 4}, single L1 port always
//   - L2 latency l2 ∈ {2, 4, 8} cycles, non-pipelined
//   - clusters c ∈ {1, 2, 4, 8, 16}
//
// with two sanity constraints: no more L2 ports than ALUs (p2 ≤ a), and
// at least 8 registers per ALU (r ≥ 8·a, which still admits the paper's
// register-starved pathological point (16 4 128 1 4 8)). The paper
// explored 191 architectures but does not publish the exact membership;
// this enumeration of its published ranges yields a slightly larger
// superset (the count is asserted in tests and reported in
// EXPERIMENTS.md).

var (
	aluChoices = []int{1, 2, 4, 8, 16}
	regChoices = []int{64, 128, 256, 512}
	p2Choices  = []int{1, 2, 4}
	l2Choices  = []int{2, 4, 8}
)

// mulChoices returns the IMUL counts allowed for a given ALU count:
// a/4 and a/2, at least 1, deduplicated.
func mulChoices(alus int) []int {
	lo := alus / 4
	if lo < 1 {
		lo = 1
	}
	hi := alus / 2
	if hi < 1 {
		hi = 1
	}
	if lo == hi {
		return []int{lo}
	}
	return []int{lo, hi}
}

// DesignSpace enumerates the unclustered design points (cluster count
// fixed at 1). Cluster arrangements are a second axis: the explorer
// evaluates each point under every valid cluster count (see
// ClusterArrangements) and keeps the best, as the paper does.
func DesignSpace() []Arch {
	var out []Arch
	for _, a := range aluChoices {
		for _, m := range mulChoices(a) {
			for _, r := range regChoices {
				if r < 8*a {
					continue // starvation floor: at least 8 regs/ALU
				}
				for _, p2 := range p2Choices {
					if p2 > a {
						continue // more memory ports than ALUs is wasted wiring
					}
					for _, l2 := range l2Choices {
						out = append(out, Arch{ALUs: a, MULs: m, Regs: r, L2Ports: p2, L2Lat: l2, Clusters: 1})
					}
				}
			}
		}
	}
	return out
}

// ClusterArrangements returns the valid cluster counts for a design
// point: divisors of the ALU and register counts, at most 8 clusters,
// keeping at least one ALU and sixteen registers per cluster. Both
// floors come from the paper's published results: no selected
// architecture has more than 8 clusters or fewer than 16 registers per
// cluster (the pathological (16 4 128 1 4 8) point is the minimum), and
// the paper's cluster-correction methodology was calibrated on "a few
// significant architecture data points" that never include 16 clusters.
func ClusterArrangements(a Arch) []int {
	var out []int
	for _, c := range []int{1, 2, 4, 8} {
		if c > a.ALUs {
			break
		}
		if a.ALUs%c != 0 || a.Regs%c != 0 {
			continue
		}
		if a.Regs/c < 16 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// WithMinMax returns a copy with the min/max ALU repertoire extension
// (the opcode-choice axis; see EXPERIMENTS.md).
func (a Arch) WithMinMax() Arch {
	a.MinMax = true
	return a
}

// WithClusters returns a copy of the design point with the given
// cluster count.
func (a Arch) WithClusters(c int) Arch {
	a.Clusters = c
	return a
}

// FullSpace enumerates every (design point × cluster arrangement)
// combination — the complete set of concrete machines the explorer
// compiles for.
func FullSpace() []Arch {
	var out []Arch
	for _, a := range DesignSpace() {
		for _, c := range ClusterArrangements(a) {
			out = append(out, a.WithClusters(c))
		}
	}
	return out
}
