// Package machine models the paper's parameterized clustered-VLIW
// architecture template: its free parameters (Table 4), derived
// parameters (Table 5), datapath cost model (Table 6), cycle-speed
// derating model (Table 7), and the enumerated design space the
// explorer searches.
package machine

import (
	"fmt"
)

// Arch is one point in the design space, described by the paper's
// 6-tuple (a, m, r, p2, l2, c).
type Arch struct {
	ALUs     int // a: total integer ALUs, 1..16
	MULs     int // m: ALUs capable of integer multiply, a/4..a/2, >= 1
	Regs     int // r: total registers across all clusters, 64..512
	L2Ports  int // p2: parallel accesses to Level-2 memory, 1..4
	L2Lat    int // l2: Level-2 access latency in cycles, 2..8, non-pipelined
	Clusters int // c: number of clusters, 1..16

	// MinMax extends the ALU repertoire with single-cycle signed
	// min/max operations — the opcode-choice axis the paper's
	// methodology supports but its experiment deliberately excluded
	// ("the only choice presented in this experiment is whether or not
	// a given ALU is capable of integer multiply"). Not part of the
	// standard design space; see the repertoire-extension experiment in
	// EXPERIMENTS.md.
	MinMax bool

	// Ops extends the template with application-defined custom
	// operations: fused instruction clusters mined from the kernels'
	// DDGs (internal/ops), executed on one dedicated custom unit per
	// cluster. The zero value is the classic 6-tuple machine; because
	// OpSets are content-interned, Arch remains comparable (== and map
	// keys keep working) with this field populated. Omitted from JSON
	// when empty so op-free results stay byte-identical to the 6-tuple
	// era. See docs/CUSTOMOPS.md.
	Ops OpConfig `json:",omitzero"`
}

// Baseline is the paper's reference machine: 1 IMUL-capable ALU, 64
// registers, 1 L1 reference and 1 L2 reference (8-cycle latency), in a
// single cluster. Cost and cycle models are normalized so this machine
// costs 1.0 and has derating 1.0.
var Baseline = Arch{ALUs: 1, MULs: 1, Regs: 64, L2Ports: 1, L2Lat: 8, Clusters: 1}

// Fixed machine characteristics shared by every architecture in the
// template (paper Table 4).
const (
	LatALU = 1 // all integer ALU operations
	LatMUL = 2 // integer multiply, pipelined
	// LatL1 is the Level-1 (global/scratch) memory latency. The paper
	// gives L1 a "fixed throughput for all the experiments"; we model it
	// pipelined at one access per cycle with 3-cycle latency — the only
	// reading under which the paper's published Floyd-Steinberg and
	// IDCT speedups are reachable at all (see EXPERIMENTS.md).
	LatL1 = 3
	// L1Occupancy is how long an access holds the single L1 port.
	L1Occupancy = 1
	LatMove     = 2 // inter-cluster move across the global connections
	// MaxBuses caps the global inter-cluster connections: the template
	// shares a fixed set of global wires (as the Multiflow TRACE did),
	// so heavily clustered machines do not get free all-to-all
	// bandwidth.
	MaxBuses = 4
)

// String renders the paper's architecture tuple, e.g. "(8 2 128 1 4 4)";
// op-extended machines carry a "+ops:<hexmask>" suffix.
func (a Arch) String() string {
	s := fmt.Sprintf("(%d %d %d %d %d %d)", a.ALUs, a.MULs, a.Regs, a.L2Ports, a.L2Lat, a.Clusters)
	if !a.Ops.Empty() {
		s += fmt.Sprintf("+ops:%x", a.Ops.Mask)
	}
	return s
}

// Validate checks that the architecture is well-formed and within the
// template's parameter ranges.
func (a Arch) Validate() error {
	switch {
	case a.ALUs < 1 || a.ALUs > 16:
		return fmt.Errorf("machine: ALUs %d out of range [1,16]", a.ALUs)
	case a.MULs < 1 || a.MULs > a.ALUs:
		return fmt.Errorf("machine: MULs %d out of range [1,%d]", a.MULs, a.ALUs)
	case a.Regs < 16 || a.Regs > 1024:
		return fmt.Errorf("machine: Regs %d out of range [16,1024]", a.Regs)
	case a.L2Ports < 1 || a.L2Ports > 4:
		return fmt.Errorf("machine: L2Ports %d out of range [1,4]", a.L2Ports)
	case a.L2Lat < 2 || a.L2Lat > 8:
		return fmt.Errorf("machine: L2Lat %d out of range [2,8]", a.L2Lat)
	case a.Clusters < 1 || a.Clusters > 16:
		return fmt.Errorf("machine: Clusters %d out of range [1,16]", a.Clusters)
	case a.Clusters > a.ALUs:
		return fmt.Errorf("machine: %d clusters exceed %d ALUs", a.Clusters, a.ALUs)
	case a.ALUs%a.Clusters != 0:
		return fmt.Errorf("machine: %d ALUs not divisible by %d clusters", a.ALUs, a.Clusters)
	case a.Regs%a.Clusters != 0:
		return fmt.Errorf("machine: %d registers not divisible by %d clusters", a.Regs, a.Clusters)
	case a.MULs > a.Clusters && a.MULs%a.Clusters != 0:
		return fmt.Errorf("machine: %d MULs not divisible by %d clusters", a.MULs, a.Clusters)
	}
	return a.Ops.Validate()
}

// ALUsPC returns integer ALUs per cluster.
func (a Arch) ALUsPC() int { return a.ALUs / a.Clusters }

// MULsPC returns IMUL-capable ALUs per cluster. When there are fewer
// MULs than clusters, each cluster still gets one (the template keeps
// clusters nearly identical, and at least one IMUL is always present);
// the cost model accounts for the real total.
func (a Arch) MULsPC() int {
	m := a.MULs / a.Clusters
	if m < 1 {
		m = 1
	}
	return m
}

// RegsPC returns registers per cluster.
func (a Arch) RegsPC() int { return a.Regs / a.Clusters }

// L2PathsPC returns each cluster's access paths into Level-2 memory.
// Global bandwidth stays p2 accesses/cycle; this is the per-cluster
// wiring that shows up in register-file port counts.
func (a Arch) L2PathsPC() int { return ceilDiv(a.L2Ports, a.Clusters) }

// MemPathsPC returns each cluster's total memory access paths: one into
// Level-1 plus its share of Level-2 ports.
func (a Arch) MemPathsPC() int { return 1 + a.L2PathsPC() }

// RegPorts returns the per-cluster register-file port count, the
// paper's derived parameter p(a, l) = 3a + 2l with a and l per-cluster.
// A custom-op unit (Ops) adds its own ports on top: it retires work
// that would otherwise occupy ALU issue slots, so it shares the operand
// network for two of its reads and pays for the rest — max(0, NIn−2)
// extra reads plus one write, with NIn the widest enabled op's operand
// count. The quadratic cycle-time derate (CycleModel) therefore prices
// the custom unit automatically.
func (a Arch) RegPorts() int { return 3*a.ALUsPC() + 2*a.MemPathsPC() + a.cuPorts() }

// cuPorts is the custom unit's register-file port charge (0 without
// custom ops).
func (a Arch) cuPorts() int {
	if a.Ops.Empty() {
		return 0
	}
	extra := a.Ops.MaxIn() - 2
	if extra < 0 {
		extra = 0
	}
	return extra + 1
}

// Buses returns the number of global inter-cluster connections
// available per cycle for explicit cross-cluster moves: one channel per
// pair of clusters, at least one once the machine is clustered.
func (a Arch) Buses() int {
	if a.Clusters <= 1 {
		return 0
	}
	b := a.Clusters / 2
	if b < 1 {
		b = 1
	}
	if b > MaxBuses {
		b = MaxBuses
	}
	return b
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
