package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBaselineIsUnitCost(t *testing.T) {
	if c := DefaultCostModel.Cost(Baseline); math.Abs(c-1) > 1e-12 {
		t.Errorf("baseline cost = %g, want 1", c)
	}
	if d := DefaultCycleModel.Derate(Baseline); math.Abs(d-1) > 1e-12 {
		t.Errorf("baseline derate = %g, want 1", d)
	}
}

func TestDerivedParameters(t *testing.T) {
	cases := []struct {
		a            Arch
		aluPC, regPC int
		ports        int
	}{
		{Baseline, 1, 64, 7},
		{arch6(8, 4, 256, 1, 8, 1), 8, 256, 28},
		{arch6(8, 4, 256, 1, 8, 2), 4, 128, 16},
		{arch6(8, 4, 256, 1, 8, 4), 2, 64, 10},
		{arch6(16, 8, 512, 1, 8, 8), 2, 64, 10},
		{arch6(16, 4, 128, 1, 4, 8), 2, 16, 10},
		{arch6(8, 2, 128, 4, 4, 2), 4, 64, 18}, // l_c = 1 + ceil(4/2) = 3
	}
	for _, c := range cases {
		if got := c.a.ALUsPC(); got != c.aluPC {
			t.Errorf("%v ALUsPC = %d, want %d", c.a, got, c.aluPC)
		}
		if got := c.a.RegsPC(); got != c.regPC {
			t.Errorf("%v RegsPC = %d, want %d", c.a, got, c.regPC)
		}
		if got := c.a.RegPorts(); got != c.ports {
			t.Errorf("%v RegPorts = %d, want %d", c.a, got, c.ports)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []Arch{
		arch6(0, 1, 64, 1, 8, 1),    // no ALUs
		arch6(4, 5, 64, 1, 8, 1),    // more MULs than ALUs
		arch6(4, 2, 64, 5, 8, 1),    // too many L2 ports
		arch6(4, 2, 64, 1, 1, 1),    // L2 latency out of range
		arch6(4, 2, 64, 1, 8, 3),    // ALUs not divisible by clusters
		arch6(4, 2, 100, 1, 8, 8),   // regs not divisible by clusters
		arch6(4, 2, 64, 1, 8, 8),    // more clusters than ALUs
		arch6(32, 16, 512, 1, 8, 1), // too many ALUs
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", a)
		}
	}
	if err := Baseline.Validate(); err != nil {
		t.Errorf("Validate(baseline) = %v", err)
	}
}

func TestCostModelAgainstPaperTable6(t *testing.T) {
	// The paper's table is internally inconsistent with its own formula
	// (see cost.go), so exact agreement is impossible; assert the
	// least-squares fit stays within 25% worst-case and 10% median.
	if e := MaxRelErrCost(DefaultCostModel); e > 0.25 {
		t.Errorf("worst-case Table 6 error = %.3f, want <= 0.25", e)
	}
	var errs []float64
	for _, pt := range Table6 {
		errs = append(errs, math.Abs(DefaultCostModel.Cost(pt.Arch)-pt.Cost)/pt.Cost)
	}
	if m := median(errs); m > 0.12 {
		t.Errorf("median Table 6 error = %.3f, want <= 0.12", m)
	}
}

func TestCycleModelAgainstPaperTable7(t *testing.T) {
	if e := MaxRelErrCycle(DefaultCycleModel); e > 0.08 {
		t.Errorf("worst-case Table 7 error = %.3f, want <= 0.08", e)
	}
}

func TestDefaultModelsMatchFreshFit(t *testing.T) {
	cm := FitCostModel()
	if math.Abs(cm.K2-DefaultCostModel.K2) > 0.002 ||
		math.Abs(cm.K4-DefaultCostModel.K4)/DefaultCostModel.K4 > 0.1 ||
		math.Abs(cm.K5-DefaultCostModel.K5)/DefaultCostModel.K5 > 0.1 {
		t.Errorf("fresh fit %+v drifted from baked-in defaults %+v", cm, DefaultCostModel)
	}
	cy := FitCycleModel()
	if math.Abs(cy.Gamma-DefaultCycleModel.Gamma)/DefaultCycleModel.Gamma > 0.05 {
		t.Errorf("fresh cycle fit %g drifted from default %g", cy.Gamma, DefaultCycleModel.Gamma)
	}
}

func TestCostMonotonicity(t *testing.T) {
	// Adding resources at fixed cluster count never reduces cost.
	grow := []func(Arch) Arch{
		func(a Arch) Arch { a.ALUs *= 2; a.MULs *= 2; return a },
		func(a Arch) Arch { a.Regs *= 2; return a },
		func(a Arch) Arch { a.MULs = a.ALUs; return a },
		func(a Arch) Arch { a.L2Ports *= 2; return a },
	}
	for _, base := range DesignSpace() {
		for i, g := range grow {
			bigger := g(base)
			if bigger.Validate() != nil {
				continue
			}
			if DefaultCostModel.Cost(bigger) < DefaultCostModel.Cost(base)-1e-9 {
				t.Errorf("grow[%d]: cost(%v)=%.2f < cost(%v)=%.2f", i,
					bigger, DefaultCostModel.Cost(bigger), base, DefaultCostModel.Cost(base))
			}
		}
	}
}

func TestClusteringReducesCostAndDerate(t *testing.T) {
	// Splitting a wide machine into clusters reduces both area and the
	// cycle-time penalty (the whole point of clustering, paper §3.1).
	wide := arch6(16, 8, 512, 1, 8, 1)
	for _, c := range []int{2, 4, 8} {
		split := wide.WithClusters(c)
		if DefaultCostModel.Cost(split) >= DefaultCostModel.Cost(wide) {
			t.Errorf("cost with %d clusters not cheaper", c)
		}
		if DefaultCycleModel.Derate(split) >= DefaultCycleModel.Derate(wide) {
			t.Errorf("derate with %d clusters not lower", c)
		}
	}
}

func TestDesignSpaceSize(t *testing.T) {
	sp := DesignSpace()
	// The paper searched 191 architectures; our reconstruction of its
	// published ranges yields this fixed superset (documented in
	// EXPERIMENTS.md). Pin the count so accidental changes are caught.
	if len(sp) != 234 {
		t.Errorf("design space = %d points, want 234", len(sp))
	}
	seen := map[Arch]bool{}
	for _, a := range sp {
		if err := a.Validate(); err != nil {
			t.Errorf("invalid point %v: %v", a, err)
		}
		if seen[a] {
			t.Errorf("duplicate point %v", a)
		}
		seen[a] = true
	}
	// The paper's pathological architecture must be present.
	if !seen[arch6(16, 4, 128, 1, 4, 1)] {
		t.Error("(16 4 128 1 4 .) missing from space")
	}
}

func TestFullSpaceClusterings(t *testing.T) {
	for _, a := range FullSpace() {
		if err := a.Validate(); err != nil {
			t.Errorf("invalid clustered point %v: %v", a, err)
		}
	}
	// Spot-check: 16-ALU 128-reg machines allow c ∈ {1,2,4,8} (16
	// clusters would leave 8 registers each, below the paper's floor).
	cs := ClusterArrangements(arch6(16, 4, 128, 1, 4, 1))
	want := []int{1, 2, 4, 8}
	if len(cs) != len(want) {
		t.Fatalf("arrangements = %v, want %v", cs, want)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("arrangements = %v, want %v", cs, want)
		}
	}
}

func TestRegPortsProperty(t *testing.T) {
	// p = 3a + 2l per cluster, so ports grow with ALUs per cluster and
	// never go below the 1-ALU 2-path minimum of 7.
	f := func(ai, ci uint8) bool {
		alus := []int{1, 2, 4, 8, 16}[int(ai)%5]
		clusters := 1
		for _, c := range []int{1, 2, 4, 8, 16} {
			if c <= alus && alus%c == 0 && int(ci)%5 >= 0 {
				clusters = c
			}
			if c > int(ci) {
				break
			}
		}
		a := Arch{ALUs: alus, MULs: 1, Regs: 64 * alus, L2Ports: 1, L2Lat: 4, Clusters: clusters}
		return a.RegPorts() >= 7 && a.RegPorts() == 3*a.ALUsPC()+2*a.MemPathsPC()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

func TestBusesCapped(t *testing.T) {
	if b := (arch6(16, 4, 512, 1, 4, 1)).Buses(); b != 0 {
		t.Errorf("single cluster buses = %d, want 0", b)
	}
	if b := (arch6(16, 4, 512, 1, 4, 2)).Buses(); b != 1 {
		t.Errorf("2-cluster buses = %d, want 1", b)
	}
	if b := (arch6(16, 4, 512, 1, 4, 8)).Buses(); b != MaxBuses {
		t.Errorf("8-cluster buses = %d, want %d (cap)", b, MaxBuses)
	}
}

func TestWithMinMax(t *testing.T) {
	a := Baseline.WithMinMax()
	if !a.MinMax || Baseline.MinMax {
		t.Error("WithMinMax must copy, not mutate")
	}
	if a.WithClusters(1) == Baseline {
		t.Error("MinMax lost through WithClusters")
	}
}
