package machine

// CostModel computes the relative silicon cost of a datapath, following
// the paper's Section 3.3:
//
//	COST = c · X_dp(p) · (Y_reg(r,p) + Y_alu(a) + Y_mul(m))
//
// with per-cluster quantities, X_dp(p) = k1·p, Y_reg(r,p) = r·(k2·p+k3),
// Y_alu(a) = k4·a and Y_mul(m) = k5·m. Costs are reported relative to
// the baseline machine, so k1 and the overall scale cancel; K3 is fixed
// at 1 and K2, K4, K5 carry the shape. The default constants are fit
// against the paper's published Table 6 (see calibrate.go), playing the
// role of the paper's "fitting parameters computed from observation of
// existing designs".
type CostModel struct {
	K2, K3, K4, K5 float64
}

// DefaultCostModel holds the constants produced by FitCostModel against
// the paper's Table 6 (see TestDefaultCostModelMatchesFit).
//
// Note: the paper's Table 6 is internally inconsistent with its own
// published formula (e.g. (16 8 512 . . 2) has exactly twice the
// per-cluster structure of (8 4 256 . . 1) yet costs 38.4 vs 28.7, not
// 57.4), so no constants reproduce it exactly; the fit is the
// least-squares reconciliation, with ~23% worst-case and ~8% median
// error. See EXPERIMENTS.md.
var DefaultCostModel = CostModel{K2: 0.018144, K3: 1, K4: 20.95, K5: 19.6875}

// raw returns the unnormalized cluster-count × datapath area.
func (cm CostModel) raw(a Arch) float64 {
	p := float64(a.RegPorts())
	rc := float64(a.RegsPC())
	ac := float64(a.ALUsPC())
	// The cost of multiplier capability tracks the real total, not the
	// per-cluster minimum of one.
	mTotal := float64(a.MULs)
	c := float64(a.Clusters)
	yreg := rc * (cm.K2*p + cm.K3)
	yalu := cm.K4 * ac
	ymul := cm.K5 * mTotal / c
	return c * p * (yreg + yalu + ymul + cm.yops(a))
}

// yops prices the per-cluster custom-op unit (machine.Arch.Ops): the
// chained datapath is a fixed cascade of the enabled ops' internal
// stages, so its area is the sum of the ALU- and multiplier-stage areas
// it hardwires — the same K4/K5 figures as the general-purpose units,
// per enabled op. Op-free architectures pay nothing, keeping the
// 6-tuple cost surface bit-identical to the paper's.
func (cm CostModel) yops(a Arch) float64 {
	if a.Ops.Empty() {
		return 0
	}
	area := 0.0
	for _, s := range a.Ops.Enabled() {
		area += cm.K4*float64(s.ALUSteps()) + cm.K5*float64(s.MULSteps())
	}
	return area
}

// Cost returns the architecture's cost relative to the baseline.
func (cm CostModel) Cost(a Arch) float64 {
	return cm.raw(a) / cm.raw(Baseline)
}

// CycleModel computes the cycle-time derating factor of Section 3.4: a
// quadratic penalty in the per-cluster register-file port count, under
// the assumption that the register read stage limits cycle time.
//
//	derate(p) = (1 + Gamma·p²) / (1 + Gamma·p_baseline²)
type CycleModel struct {
	Gamma float64
}

// DefaultCycleModel holds the constant fit against the paper's Table 7.
var DefaultCycleModel = CycleModel{Gamma: 0.0026142}

// Derate returns the cycle-time multiplier relative to the baseline
// (1.0 for the baseline; larger is slower).
func (cm CycleModel) Derate(a Arch) float64 {
	f := func(p int) float64 {
		pf := float64(p)
		return 1 + cm.Gamma*pf*pf
	}
	return f(a.RegPorts()) / f(Baseline.RegPorts())
}
