package machine

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"customfit/internal/ir"
)

// MaxFusedIn bounds a custom op's external operand count: the custom
// unit's register-file read ports (and the fused instruction word's
// operand fields) are wired for at most this many inputs. Matches the
// classic 4-input custom-instruction constraint of the ByoRISC /
// ISA-extension literature the miner follows.
const MaxFusedIn = 4

// MaxOpSetSize bounds how many custom ops one architecture may enable:
// OpConfig.Mask is a uint64, and the design space must stay enumerable.
const MaxOpSetSize = 16

// OpSet is an immutable, interned catalog of custom-op specs in
// canonical order (lexicographic by spec key). Equal content yields the
// identical *OpSet pointer — NewOpSet interns by content — so Arch
// stays a comparable value type (usable as a map key and with ==) even
// with an op-set axis: OpConfig carries the *OpSet plus an enable mask,
// and two configs built from the same catalog content compare equal
// regardless of where (or from which wire message) they were parsed.
type OpSet struct {
	key   string
	specs []*ir.FusedSpec
}

// opSetIntern is the process-global content-interning registry.
var (
	opSetMu     sync.Mutex
	opSetIntern = map[string]*OpSet{}
)

// NewOpSet builds (or returns the interned) op set holding the given
// specs. Specs are validated, deduplicated by content key, and sorted
// canonically; the input slice is not retained.
func NewOpSet(specs []*ir.FusedSpec) (*OpSet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("machine: empty op set")
	}
	byKey := make(map[string]*ir.FusedSpec, len(specs))
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.NIn > MaxFusedIn {
			return nil, fmt.Errorf("machine: fused %q has %d inputs, custom unit wires at most %d", s.Name, s.NIn, MaxFusedIn)
		}
		if prev, dup := byKey[s.Key()]; !dup || prev.Name > s.Name {
			byKey[s.Key()] = s // dedup by dataflow; keep the lexically first name
		}
	}
	if len(byKey) > MaxOpSetSize {
		return nil, fmt.Errorf("machine: op set has %d distinct ops, max %d", len(byKey), MaxOpSetSize)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	canon := make([]*ir.FusedSpec, len(keys))
	content := ""
	for i, k := range keys {
		canon[i] = byKey[k]
		if i > 0 {
			content += "|"
		}
		content += k
	}
	opSetMu.Lock()
	defer opSetMu.Unlock()
	if s, ok := opSetIntern[content]; ok {
		return s, nil
	}
	s := &OpSet{key: content, specs: canon}
	opSetIntern[content] = s
	return s, nil
}

// ParseOpCatalog builds an op set from codec texts ("mac/3/2: mul $0
// $1; add %0 $2" — see ir.ParseFusedSpec), the wire and file form.
func ParseOpCatalog(texts []string) (*OpSet, error) {
	specs := make([]*ir.FusedSpec, 0, len(texts))
	for _, t := range texts {
		s, err := ir.ParseFusedSpec(t)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return NewOpSet(specs)
}

// Len returns the number of ops in the catalog.
func (s *OpSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.specs)
}

// Spec returns the i-th spec in canonical order.
func (s *OpSet) Spec(i int) *ir.FusedSpec { return s.specs[i] }

// Specs returns the catalog in canonical order (do not mutate).
func (s *OpSet) Specs() []*ir.FusedSpec {
	if s == nil {
		return nil
	}
	return s.specs
}

// Key returns the catalog's canonical content key.
func (s *OpSet) Key() string {
	if s == nil {
		return ""
	}
	return s.key
}

// Wire renders the catalog as codec texts, the form ParseOpCatalog
// reads back (and ExploreRequest.Ops carries).
func (s *OpSet) Wire() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.specs))
	for i, sp := range s.specs {
		out[i] = sp.String()
	}
	return out
}

// FullMask enables every op in the catalog.
func (s *OpSet) FullMask() uint64 {
	if s == nil {
		return 0
	}
	return (uint64(1) << uint(len(s.specs))) - 1
}

// OpConfig is an architecture's custom-op configuration: which catalog
// it draws from and which of its ops are enabled. The zero value means
// "no custom ops" — the classic 6-tuple template. OpConfig is
// comparable (OpSets are content-interned), so Arch remains usable as a
// map key and with ==.
type OpConfig struct {
	Set  *OpSet
	Mask uint64
}

// Empty reports whether no custom op is enabled.
func (c OpConfig) Empty() bool { return c.Set == nil || c.Mask&c.Set.FullMask() == 0 }

// IsZero lets encoding/json's omitzero drop the field for op-free
// architectures, keeping their JSON byte-identical to the 6-tuple era.
func (c OpConfig) IsZero() bool { return c.Empty() }

// Count returns the number of enabled ops.
func (c OpConfig) Count() int {
	n := 0
	for i := 0; i < c.Set.Len(); i++ {
		if c.Mask&(1<<uint(i)) != 0 {
			n++
		}
	}
	return n
}

// Enabled returns the enabled specs in canonical order.
func (c OpConfig) Enabled() []*ir.FusedSpec {
	if c.Empty() {
		return nil
	}
	out := make([]*ir.FusedSpec, 0, c.Count())
	for i := 0; i < c.Set.Len(); i++ {
		if c.Mask&(1<<uint(i)) != 0 {
			out = append(out, c.Set.Spec(i))
		}
	}
	return out
}

// Key returns the stable content key of the enabled ops ("" when
// empty): the op component of backend signatures, cache keys and wire
// tuples. Only enabled ops contribute — two configs enabling the same
// ops out of different catalogs are the same architecture.
func (c OpConfig) Key() string {
	if c.Empty() {
		return ""
	}
	k := ""
	for i := 0; i < c.Set.Len(); i++ {
		if c.Mask&(1<<uint(i)) != 0 {
			if k != "" {
				k += "|"
			}
			k += c.Set.Spec(i).Key()
		}
	}
	return k
}

// Validate checks the mask against the catalog.
func (c OpConfig) Validate() error {
	if c.Set == nil {
		if c.Mask != 0 {
			return fmt.Errorf("machine: op mask %#x without a catalog", c.Mask)
		}
		return nil
	}
	if c.Mask&^c.Set.FullMask() != 0 {
		return fmt.Errorf("machine: op mask %#x exceeds catalog of %d ops", c.Mask, c.Set.Len())
	}
	return nil
}

// MaxIn returns the widest enabled op's operand count (0 when empty):
// the custom unit's register-read wiring, which the derate model reads
// through Arch.RegPorts.
func (c OpConfig) MaxIn() int {
	m := 0
	for _, s := range c.Enabled() {
		if s.NIn > m {
			m = s.NIn
		}
	}
	return m
}

// opConfigJSON is the wire form: the catalog as codec texts plus the
// enable mask in hex.
type opConfigJSON struct {
	Catalog []string `json:"catalog"`
	Mask    string   `json:"mask"`
}

// MarshalJSON encodes the config; the zero config encodes as null (and
// is normally omitted entirely via omitzero).
func (c OpConfig) MarshalJSON() ([]byte, error) {
	if c.Empty() {
		return []byte("null"), nil
	}
	return json.Marshal(opConfigJSON{Catalog: c.Set.Wire(), Mask: strconv.FormatUint(c.Mask, 16)})
}

// UnmarshalJSON decodes and re-interns the config, so a JSON round trip
// within one process yields a pointer-equal Set (and hence an Arch that
// compares == to the original).
func (c *OpConfig) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*c = OpConfig{}
		return nil
	}
	var w opConfigJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	set, err := ParseOpCatalog(w.Catalog)
	if err != nil {
		return err
	}
	mask, err := strconv.ParseUint(w.Mask, 16, 64)
	if err != nil {
		return fmt.Errorf("machine: bad op mask %q: %w", w.Mask, err)
	}
	cfg := OpConfig{Set: set, Mask: mask}
	if err := cfg.Validate(); err != nil {
		return err
	}
	*c = cfg
	return nil
}

// WithOps returns a copy of the architecture drawing from the given
// catalog with the given enable mask.
func (a Arch) WithOps(set *OpSet, mask uint64) Arch {
	a.Ops = OpConfig{Set: set, Mask: mask}
	if mask == 0 {
		a.Ops = OpConfig{}
	}
	return a
}

// CrossOps crosses a grid of architectures with an op-set axis: for
// each input architecture it emits one point per mask (mask 0 = the
// unmodified 6-tuple point). This is how the explorer extends the
// paper's design space with the instruction-set dimension.
func CrossOps(archs []Arch, set *OpSet, masks []uint64) []Arch {
	if set == nil || len(masks) == 0 {
		return archs
	}
	out := make([]Arch, 0, len(archs)*len(masks))
	for _, a := range archs {
		for _, m := range masks {
			out = append(out, a.WithOps(set, m))
		}
	}
	return out
}

// DefaultMasks is the standard op-axis crossing: the op-free point plus
// everything enabled. Joint exploration with per-op granularity is the
// search strategies' job (they toggle single ops as neighbor moves);
// the exhaustive grid keeps the multiplier at 2.
func DefaultMasks(set *OpSet) []uint64 {
	if set == nil || set.Len() == 0 {
		return nil
	}
	return []uint64{0, set.FullMask()}
}
