package opt

import "customfit/internal/ir"

// LICM hoists loop-invariant computations out of the kernel's
// single-block pixel loop into its preheader: pure ALU operations whose
// inputs are loop-invariant, and loads from constant tables with
// invariant addresses.
//
// Hoisted constant-table loads are the paper's register-pressure story:
// a 7x7 convolution keeps its 49 coefficients live across the loop,
// which is why benchmark A wants a large register file — and why it
// collapses on the 16-ALU 128-register machine, where the coefficients
// no longer fit and get respilled.
func LICM(f *ir.Func) {
	l := f.Loop
	if l == nil || !l.SingleBlock() || l.Preheader == nil {
		return
	}
	h := l.Header
	// Registers defined inside the loop body.
	definedIn := map[ir.Reg]bool{}
	defCount := map[ir.Reg]int{}
	for _, in := range h.Instrs {
		if in.Op.HasDest() {
			definedIn[in.Dest] = true
			defCount[in.Dest]++
		}
	}
	lv := ComputeLiveness(f)

	hoisted := map[ir.Reg]bool{}
	invariantArg := func(a ir.Operand) bool {
		if a.IsImm() {
			return true
		}
		return !definedIn[a.Reg] || hoisted[a.Reg]
	}
	canHoist := func(in *ir.Instr) bool {
		switch {
		case in.Op == ir.OpLoad:
			// Only constant tables, and only provably in-bounds constant
			// addresses: hoisting makes the load execute even when the
			// loop runs zero times, so it must be unconditionally safe.
			if !in.Mem.Const || !in.Args[0].IsImm() {
				return false
			}
			if e := int(in.Args[0].Imm) + int(in.Off); e < 0 || e >= in.Mem.Size {
				return false
			}
		case in.Op.IsALU():
		default:
			return false
		}
		if in.Dest == ir.NoReg || defCount[in.Dest] != 1 {
			return false
		}
		// Home registers carry a value into the loop; redefining them
		// before the loop would clobber it.
		if lv.LiveIn(h, in.Dest) {
			return false
		}
		for _, a := range in.Args {
			if !invariantArg(a) {
				return false
			}
		}
		return true
	}

	var moved []*ir.Instr
	for changed := true; changed; {
		changed = false
		var stay []*ir.Instr
		for _, in := range h.Instrs {
			if !in.Op.IsTerminator() && canHoist(in) && !hoisted[in.Dest] {
				hoisted[in.Dest] = true
				moved = append(moved, in)
				changed = true
				continue
			}
			stay = append(stay, in)
		}
		h.Instrs = stay
	}
	if len(moved) == 0 {
		return
	}
	// Insert before the preheader's terminator. Hoisted operations are
	// safe to execute even when the loop runs zero times: pure ops
	// cannot fault and constant-table loads have verified bounds.
	pre := l.Preheader
	term := pre.Instrs[len(pre.Instrs)-1]
	pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1], append(moved, term)...)
}
