package opt

import "customfit/internal/ir"

// MaxIfConvertOps bounds the number of instructions speculated per arm
// during if-conversion.
const MaxIfConvertOps = 64

// IfConvert converts if-then-else diamonds and if-then triangles whose
// arms are straight-line pure code into select sequences, then merges
// the resulting straight-line block chains. This is what collapses a
// kernel's pixel-loop body into the single basic block the unroller and
// scheduler need: both arms execute unconditionally and conditional
// writes become selects — the paper's "if-conversion" source
// transformation, applied automatically.
func IfConvert(f *ir.Func) {
	lv := ComputeLiveness(f)
	for changed := true; changed; {
		changed = false
		f.ComputeCFG()
		for _, b := range f.Blocks {
			if convertAt(f, b, lv) {
				changed = true
				f.RemoveUnreachable()
				lv = ComputeLiveness(f)
				break
			}
		}
	}
	mergeChains(f)
	Clean(f)
}

// convertAt tries to if-convert the branch terminating b.
func convertAt(f *ir.Func, b *ir.Block, lv *Liveness) bool {
	term := b.Terminator()
	if term == nil || term.Op != ir.OpCBr {
		return false
	}
	t, e := term.Targets[0], term.Targets[1]
	var join *ir.Block
	var arms []*ir.Block
	switch {
	case t != e && isConvertibleArm(t, b) && isConvertibleArm(e, b) &&
		armTarget(t) == armTarget(e):
		join = armTarget(t)
		arms = []*ir.Block{t, e}
	case isConvertibleArm(t, b) && armTarget(t) == e:
		// Triangle: cbr c, t, join.
		join = e
		arms = []*ir.Block{t, nil}
	case isConvertibleArm(e, b) && armTarget(e) == t:
		// Mirrored triangle: cbr c, join, e.
		join = t
		arms = []*ir.Block{nil, e}
	default:
		return false
	}
	if join == t && join == e {
		return false // degenerate
	}
	cond := term.Args[0]

	// Drop the cbr; speculate both arms with renamed definitions; then
	// select the surviving values.
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	finals := make([]map[ir.Reg]ir.Reg, 2)
	for i, arm := range arms {
		finals[i] = map[ir.Reg]ir.Reg{}
		if arm == nil {
			continue
		}
		rename := map[ir.Reg]ir.Reg{}
		for _, in := range arm.Body() {
			cp := in.Clone()
			for j, a := range cp.Args {
				if a.IsReg() {
					if nr, ok := rename[a.Reg]; ok {
						cp.Args[j] = ir.R(nr)
					}
				}
			}
			if cp.Op.HasDest() {
				nr := f.NewReg()
				rename[cp.Dest] = nr
				finals[i][cp.Dest] = nr
				cp.Dest = nr
			}
			b.Append(cp)
		}
	}
	// Emit selects for registers defined by either arm and live into the
	// join (expression temps die inside their arm and need none).
	written := map[ir.Reg]bool{}
	for i := range finals {
		for r := range finals[i] {
			written[r] = true
		}
	}
	var order []ir.Reg
	for r := ir.Reg(0); int(r) < f.NumRegs(); r++ {
		if written[r] {
			order = append(order, r)
		}
	}
	for _, r := range order {
		if !lv.LiveIn(join, r) && !usedBelow(join, r) {
			continue
		}
		tv, fv := ir.R(r), ir.R(r)
		if nr, ok := finals[0][r]; ok {
			tv = ir.R(nr)
		}
		if nr, ok := finals[1][r]; ok {
			fv = ir.R(nr)
		}
		b.Append(ir.NewInstr(ir.OpSelect, r, cond, tv, fv))
	}
	b.Append(&ir.Instr{Op: ir.OpBr, Dest: ir.NoReg, Targets: []*ir.Block{join}})
	return true
}

// usedBelow conservatively reports whether r might be read starting at
// block j; LiveIn already answers this, so this is belt-and-braces for
// stale liveness.
func usedBelow(j *ir.Block, r ir.Reg) bool {
	for _, in := range j.Instrs {
		for _, a := range in.Args {
			if a.IsReg() && a.Reg == r {
				return true
			}
		}
		if in.Op.HasDest() && in.Dest == r {
			return false
		}
	}
	return false
}

// isConvertibleArm reports whether blk is a straight-line, side-effect-
// free arm of a branch from pred: single predecessor, ends in an
// unconditional branch, and contains only pure ALU operations small
// enough to speculate.
func isConvertibleArm(blk, pred *ir.Block) bool {
	if blk == nil || len(blk.Preds) != 1 || blk.Preds[0] != pred {
		return false
	}
	term := blk.Terminator()
	if term == nil || term.Op != ir.OpBr {
		return false
	}
	body := blk.Body()
	if len(body) > MaxIfConvertOps {
		return false
	}
	for _, in := range body {
		if !in.Op.IsALU() {
			return false
		}
	}
	return true
}

func armTarget(blk *ir.Block) *ir.Block {
	if t := blk.Terminator(); t != nil && t.Op == ir.OpBr {
		return t.Targets[0]
	}
	return nil
}

// mergeChains splices each block ending in an unconditional branch to a
// single-predecessor block together with that block, rewiring loop
// metadata when the latch is absorbed.
func mergeChains(f *ir.Func) {
	for {
		f.ComputeCFG()
		merged := false
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			next := term.Targets[0]
			if next == b || len(next.Preds) != 1 {
				continue
			}
			if next == f.Entry() {
				continue
			}
			// Splice next into b.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], next.Instrs...)
			next.Instrs = nil
			if f.Loop != nil {
				if f.Loop.Latch == next {
					f.Loop.Latch = b
				}
				if f.Loop.Header == next {
					f.Loop.Header = b
				}
				if f.Loop.Preheader == next {
					f.Loop.Preheader = b
				}
			}
			// Remove next from Blocks.
			kept := f.Blocks[:0]
			for _, blk := range f.Blocks {
				if blk != next {
					kept = append(kept, blk)
				}
			}
			f.Blocks = kept
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}
