package opt

import "customfit/internal/ir"

// Reassociate rebalances chains of integer additions inside each block
// into binary trees. Two's-complement addition is exactly associative,
// so the transformation is semantics-preserving bit-for-bit.
//
// This is the classic trace-scheduling-compiler treatment of unrolled
// reductions: `acc += in[i+k]*w[k]` unrolled by U produces a serial
// chain of U·taps additions whose operands (the multiplies) would
// otherwise all sit live waiting for their slot in the chain. Balancing
// the chain turns an O(n) critical path into O(log n) and lets each
// product be consumed promptly — both the ILP the paper's speedups
// require and register pressure a real machine can afford.
func Reassociate(f *ir.Func) {
	lv := ComputeLiveness(f)
	for _, b := range f.Blocks {
		reassociateBlock(f, b, lv)
	}
	Clean(f) // removes the now-dead original chain instructions
}

// MinReassocLeaves is the chain length worth rebalancing.
const MinReassocLeaves = 4

func reassociateBlock(f *ir.Func, b *ir.Block, lv *Liveness) {
	useCount := map[ir.Reg]int{}
	defInstr := map[ir.Reg]*ir.Instr{}
	defCount := map[ir.Reg]int{}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			if a.IsReg() {
				useCount[a.Reg]++
			}
		}
		if in.Op.HasDest() {
			defInstr[in.Dest] = in
			defCount[in.Dest]++
		}
	}
	// chainLink returns the defining add when value r can be absorbed
	// into a chain: defined once in this block by a register-register
	// add, consumed exactly once, and dead outside the block.
	chainLink := func(r ir.Reg) (*ir.Instr, bool) {
		if defCount[r] != 1 || useCount[r] != 1 || lv.LiveOut(b, r) {
			return nil, false
		}
		in := defInstr[r]
		if in == nil || in.Op != ir.OpAdd || !in.Args[0].IsReg() || !in.Args[1].IsReg() {
			return nil, false
		}
		return in, true
	}
	// Single-consumer map for link detection.
	consumer := map[ir.Reg]*ir.Instr{}
	for _, in := range b.Instrs {
		for _, a := range in.Args {
			if a.IsReg() && useCount[a.Reg] == 1 {
				consumer[a.Reg] = in
			}
		}
	}
	isLink := func(in *ir.Instr) bool {
		if in.Op != ir.OpAdd || in.Dest == ir.NoReg {
			return false
		}
		if link, ok := chainLink(in.Dest); ok && link == in {
			// The single consumer must itself be an add for the value
			// to be part of a larger chain.
			c := consumer[in.Dest]
			return c != nil && c.Op == ir.OpAdd
		}
		return false
	}

	var out []*ir.Instr
	for _, in := range b.Instrs {
		// Chain roots: adds that are not themselves links.
		if in.Op != ir.OpAdd || isLink(in) {
			out = append(out, in)
			continue
		}
		var leaves []ir.Operand
		var gather func(a ir.Operand)
		gather = func(a ir.Operand) {
			if a.IsReg() {
				if link, ok := chainLink(a.Reg); ok {
					gather(link.Args[0])
					gather(link.Args[1])
					return
				}
			}
			leaves = append(leaves, a)
		}
		gather(in.Args[0])
		gather(in.Args[1])
		if len(leaves) < MinReassocLeaves {
			out = append(out, in)
			continue
		}
		// Balanced pairwise reduction; the final sum keeps the root's
		// destination register. The absorbed link adds stay in place
		// and die (their only consumer is gone); Clean removes them.
		level := leaves
		for len(level) > 1 {
			var next []ir.Operand
			for i := 0; i+1 < len(level); i += 2 {
				var dst ir.Reg
				if len(level) == 2 {
					dst = in.Dest
				} else {
					dst = f.NewReg()
				}
				out = append(out, ir.NewInstr(ir.OpAdd, dst, level[i], level[i+1]))
				next = append(next, ir.R(dst))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
	}
	b.Instrs = out
}
