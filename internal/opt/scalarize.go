package opt

import "customfit/internal/ir"

// MaxScalarizeElems bounds the size of local arrays promoted to
// registers. 64 covers an 8x8 DCT workspace: on machines with large
// register files the whole block stays register-resident (which is why
// the paper's IDCT wants 512 registers), while small machines pay spill
// traffic.
const MaxScalarizeElems = 64

// Scalarize promotes small kernel-local arrays whose every access uses
// a constant index into per-element registers. After the frontend fully
// unrolls constant-trip loops, scratch arrays indexed by unrolled
// counters (Floyd-Steinberg's Err[3], out[3]) become constant-indexed
// and turn into plain scalars, which is what frees the scheduler to
// software-overlap iterations.
//
// Parameter arrays and file-level globals are never scalarized: they
// are externally visible storage. Run Clean first so constant indices
// are immediates.
func Scalarize(f *ir.Func) {
	// Snapshot: scalarizeMem removes entries from f.Mems in place.
	mems := append([]*ir.MemRef(nil), f.Mems...)
	for _, m := range mems {
		if m.IsParam || m.Global || m.Size <= 0 || m.Size > MaxScalarizeElems {
			continue
		}
		if !allAccessesConstant(f, m) {
			continue
		}
		scalarizeMem(f, m)
	}
	Clean(f)
}

func allAccessesConstant(f *ir.Func, m *ir.MemRef) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Mem != m {
				continue
			}
			idx := in.Args[0]
			if !idx.IsImm() {
				return false
			}
			e := int(idx.Imm) + int(in.Off)
			if e < 0 || e >= m.Size {
				return false
			}
		}
	}
	return true
}

func scalarizeMem(f *ir.Func, m *ir.MemRef) {
	elems := make([]ir.Reg, m.Size)
	for i := range elems {
		elems[i] = f.NewReg()
	}
	// Initialize elements at function entry (locals start zeroed, with
	// declared initializers applied).
	entry := f.Entry()
	var inits []*ir.Instr
	for i, r := range elems {
		v := int32(0)
		if i < len(m.Init) {
			v = m.Init[i]
		}
		inits = append(inits, ir.NewInstr(ir.OpMov, r, ir.Imm(v)))
	}
	entry.Instrs = append(inits, entry.Instrs...)

	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if in.Mem != m {
				out = append(out, in)
				continue
			}
			e := int(in.Args[0].Imm) + int(in.Off)
			switch in.Op {
			case ir.OpLoad:
				// Stored values are kept in canonical (truncated) form,
				// so a load is a plain copy.
				out = append(out, ir.NewInstr(ir.OpMov, in.Dest, ir.R(elems[e])))
			case ir.OpStore:
				out = append(out, truncateTo(f, m.Elem, in.Args[1], elems[e], &out)...)
			}
		}
		b.Instrs = out
	}
	// Drop the MemRef.
	kept := f.Mems[:0]
	for _, mm := range f.Mems {
		if mm != m {
			kept = append(kept, mm)
		}
	}
	f.Mems = kept
}

// truncateTo emits the operations storing val into the element register
// dst with the narrowing semantics of the element type.
func truncateTo(f *ir.Func, elem ir.ElemType, val ir.Operand, dst ir.Reg, out *[]*ir.Instr) []*ir.Instr {
	if val.IsImm() {
		return []*ir.Instr{ir.NewInstr(ir.OpMov, dst, ir.Imm(elem.Truncate(val.Imm)))}
	}
	switch elem {
	case ir.ElemI32:
		return []*ir.Instr{ir.NewInstr(ir.OpMov, dst, val)}
	case ir.ElemU8:
		return []*ir.Instr{ir.NewInstr(ir.OpAnd, dst, val, ir.Imm(0xff))}
	case ir.ElemU16:
		return []*ir.Instr{ir.NewInstr(ir.OpAnd, dst, val, ir.Imm(0xffff))}
	case ir.ElemI8:
		t := f.NewReg()
		return []*ir.Instr{
			ir.NewInstr(ir.OpShl, t, val, ir.Imm(24)),
			ir.NewInstr(ir.OpShrA, dst, ir.R(t), ir.Imm(24)),
		}
	case ir.ElemI16:
		t := f.NewReg()
		return []*ir.Instr{
			ir.NewInstr(ir.OpShl, t, val, ir.Imm(16)),
			ir.NewInstr(ir.OpShrA, dst, ir.R(t), ir.Imm(16)),
		}
	}
	panic("opt: bad element type")
}
