package opt

import (
	"math/rand"
	"testing"

	"customfit/internal/cc"
	"customfit/internal/ir"
)

// execEnv runs fn with the given scalar args and named memories (copied
// fresh) and returns the final memory state.
func execEnv(t *testing.T, fn *ir.Func, args []int32, mems map[string][]int32) map[string][]int32 {
	t.Helper()
	env := ir.NewEnv(args...)
	for name, data := range mems {
		env.Bind(name, append([]int32(nil), data...))
	}
	if _, err := ir.Interp(fn, env); err != nil {
		t.Fatalf("Interp(%s): %v\nIR:\n%s", fn.Name, err, fn)
	}
	return env.Mem
}

// assertEquivalent checks that transform(clone of fn) computes the same
// memory state as fn across the given runs.
func assertEquivalent(t *testing.T, src string, transform func(*ir.Func) *ir.Func,
	runs []struct {
		args []int32
		mems map[string][]int32
	}) (*ir.Func, *ir.Func) {
	t.Helper()
	orig, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatalf("CompileKernel: %v", err)
	}
	opt := transform(orig.Clone())
	if err := opt.Verify(); err != nil {
		t.Fatalf("optimized IR does not verify: %v\n%s", err, opt)
	}
	for i, run := range runs {
		want := execEnv(t, orig, run.args, run.mems)
		got := execEnv(t, opt, run.args, run.mems)
		// Compare externally bound memories only: passes may legally
		// eliminate private local arrays.
		for name := range run.mems {
			w, g := want[name], got[name]
			if len(w) != len(g) {
				t.Fatalf("run %d: memory %q length %d vs %d", i, name, len(w), len(g))
			}
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("run %d: memory %q[%d] = %d, want %d\noptimized IR:\n%s",
						i, name, j, g[j], w[j], opt)
				}
			}
		}
	}
	return orig, opt
}

type runSpec = struct {
	args []int32
	mems map[string][]int32
}

func randomInts(r *rand.Rand, n int, lim int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int31n(2*lim) - lim
	}
	return out
}

func optimizeOnly(f *ir.Func) *ir.Func {
	if err := Optimize(f); err != nil {
		panic(err)
	}
	return f
}

func unrollBy(u int) func(*ir.Func) *ir.Func {
	return func(f *ir.Func) *ir.Func {
		if err := Optimize(f); err != nil {
			panic(err)
		}
		if err := Unroll(f, u); err != nil {
			panic(err)
		}
		return f
	}
}

const firSrc = `
	const int coef[4] = {3, 17, 17, 3};
	kernel fir(int in[], int out[], int n) {
		int i;
		for (i = 0; i < n; i++) {
			int acc; int k;
			acc = 0;
			for (k = 0; k < 4; k++) {
				acc += in[i + k] * coef[k];
			}
			out[i] = acc >> 5;
		}
	}`

func firRuns(r *rand.Rand) []runSpec {
	var runs []runSpec
	for _, n := range []int32{0, 1, 3, 7, 16} {
		runs = append(runs, runSpec{
			args: []int32{n},
			mems: map[string][]int32{
				"in":  randomInts(r, int(n)+4, 1000),
				"out": make([]int32, 20),
			},
		})
	}
	return runs
}

func TestOptimizePreservesFIR(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	_, opt := assertEquivalent(t, firSrc, optimizeOnly, firRuns(r))
	// LICM must have hoisted all coefficient loads out of the loop body.
	if opt.Loop == nil {
		t.Fatal("loop metadata lost")
	}
	for _, in := range opt.Loop.Header.Instrs {
		if in.Op == ir.OpLoad && in.Mem.Name == "coef" {
			t.Errorf("coefficient load still in loop body: %s", in)
		}
	}
}

func TestUnrollPreservesFIR(t *testing.T) {
	for _, u := range []int{2, 3, 4, 8} {
		u := u
		r := rand.New(rand.NewSource(int64(u)))
		assertEquivalent(t, firSrc, unrollBy(u), firRuns(r))
	}
}

const condSrc = `
	kernel thresh(int in[], int out[], int n) {
		int i; int run;
		run = 0;
		for (i = 0; i < n; i++) {
			int v;
			v = in[i];
			if (v > 100) {
				run = run + 1;
				v = v - 100;
			} else {
				run = 0;
			}
			out[i] = v + run;
		}
	}`

func condRuns(r *rand.Rand) []runSpec {
	var runs []runSpec
	for _, n := range []int32{0, 1, 5, 13} {
		runs = append(runs, runSpec{
			args: []int32{n},
			mems: map[string][]int32{
				"in":  randomInts(r, int(n), 200),
				"out": make([]int32, 16),
			},
		})
	}
	return runs
}

func TestIfConvertCollapsesLoopBody(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	_, opt := assertEquivalent(t, condSrc, optimizeOnly, condRuns(r))
	if opt.Loop == nil || !opt.Loop.SingleBlock() {
		t.Fatalf("pixel loop not collapsed to a single block:\n%s", opt)
	}
	// The branch is gone; selects carry the conditional updates.
	hasSelect := false
	for _, in := range opt.Loop.Header.Instrs {
		if in.Op == ir.OpSelect {
			hasSelect = true
		}
	}
	if !hasSelect {
		t.Error("no selects in if-converted body")
	}
}

func TestUnrollAfterIfConvert(t *testing.T) {
	for _, u := range []int{2, 4} {
		r := rand.New(rand.NewSource(int64(10 + u)))
		assertEquivalent(t, condSrc, unrollBy(u), condRuns(r))
	}
}

const scalarizeSrc = `
	int persist[2];
	kernel fs(int in[], int out[], int n) {
		int i;
		int err[3];
		err[0] = 0; err[1] = 0; err[2] = 0;
		for (i = 0; i < n; i++) {
			int c;
			for (c = 0; c < 3; c++) {
				err[c] = err[c] + in[i * 3 + c];
				out[i * 3 + c] = err[c] >> 1;
			}
			persist[0] = persist[0] + err[0];
		}
	}`

func TestScalarizePromotesLocalNotGlobal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var runs []runSpec
	for _, n := range []int32{0, 2, 6} {
		runs = append(runs, runSpec{
			args: []int32{n},
			mems: map[string][]int32{
				"in":      randomInts(r, int(n)*3, 500),
				"out":     make([]int32, 18),
				"persist": {5, 0},
			},
		})
	}
	_, opt := assertEquivalent(t, scalarizeSrc, optimizeOnly, runs)
	if opt.MemByName("err") != nil {
		t.Error("local array err not scalarized")
	}
	if opt.MemByName("persist") == nil {
		t.Error("global array persist wrongly scalarized")
	}
}

func TestStrengthReductionRemovesEasyMuls(t *testing.T) {
	src := `
		kernel m(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int v;
				v = in[i];
				out[i * 4] = v * 3;
				out[i * 4 + 1] = v * 16;
				out[i * 4 + 2] = v * 255;
				out[i * 4 + 3] = v * 10;
			}
		}`
	r := rand.New(rand.NewSource(4))
	var runs []runSpec
	for _, n := range []int32{0, 1, 4} {
		runs = append(runs, runSpec{
			args: []int32{n},
			mems: map[string][]int32{"in": randomInts(r, int(n), 30000), "out": make([]int32, 16)},
		})
	}
	_, opt := assertEquivalent(t, src, optimizeOnly, runs)
	muls := 0
	for _, b := range opt.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMul {
				muls++
			}
		}
	}
	// *3, *16 and *255 reduce to shifts/adds; *10 (and the i*4
	// addressing, which reduces too) leaves exactly one real multiply.
	if muls != 1 {
		t.Errorf("multiplies remaining = %d, want 1 (only v*10)\n%s", muls, opt)
	}
}

func TestCleanParallelAssignmentSwap(t *testing.T) {
	src := `
		kernel swap2(int out[], int n) {
			int x; int y; int i;
			x = 1; y = 2;
			for (i = 0; i < n; i++) {
				int t;
				t = x; x = y; y = t;
			}
			out[0] = x; out[1] = y;
		}`
	var runs []runSpec
	for _, n := range []int32{0, 1, 2, 5} {
		runs = append(runs, runSpec{args: []int32{n}, mems: map[string][]int32{"out": make([]int32, 2)}})
	}
	assertEquivalent(t, src, optimizeOnly, runs)
}

func TestCleanCSEAcrossUnrolledCopies(t *testing.T) {
	// After unrolling, the i*3 base computation must be shared across
	// copies and the +3k offsets folded into addressing.
	src := `
		kernel cp(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i * 3] = in[i * 3];
				out[i * 3 + 1] = in[i * 3 + 1];
				out[i * 3 + 2] = in[i * 3 + 2];
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Prepare(fn, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Count address-generation ALU ops in the unrolled body: one shl+add
	// (i*3) per loop body would be ideal; at most a few are acceptable,
	// but 4x the single-copy count means CSE failed.
	body := g.Loop.Header
	adds := 0
	for _, in := range body.Instrs {
		if in.Op == ir.OpShl || (in.Op == ir.OpAdd && in.Args[1].IsImm() && in.Args[1].Imm != 0) {
			adds++
		}
	}
	// i*3 = shl+add (2 ops) once, plus induction updates and guard
	// arithmetic. Anything well above ~10 means per-copy recomputation
	// survived.
	if adds > 10 {
		t.Errorf("address ALU ops in unrolled body = %d, want <= 10\n%s", adds, g)
	}
	// And the unrolled kernel still works.
	r := rand.New(rand.NewSource(9))
	for _, n := range []int32{0, 1, 4, 7} {
		in := randomInts(r, int(n)*3, 100)
		out1 := make([]int32, 24)
		out2 := make([]int32, 24)
		execInto := func(f *ir.Func, out []int32) {
			env := ir.NewEnv(n).Bind("in", in).Bind("out", out)
			if _, err := ir.Interp(f, env); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
		execInto(fn, out1)
		execInto(g, out2)
		for j := range out1 {
			if out1[j] != out2[j] {
				t.Fatalf("n=%d out[%d]: %d vs %d", n, j, out1[j], out2[j])
			}
		}
	}
}

func TestUnrollRejectsOversizedBody(t *testing.T) {
	fn, err := cc.CompileKernel(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Optimize(fn); err != nil {
		t.Fatal(err)
	}
	if err := Unroll(fn, MaxUnrolledOps); err == nil {
		t.Error("Unroll accepted a factor exceeding the op budget")
	}
}

func TestCleanIsIdempotent(t *testing.T) {
	fn, err := cc.CompileKernel(condSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Optimize(fn); err != nil {
		t.Fatal(err)
	}
	// Clean renumbers fresh temporaries, so compare structure: the
	// opcode sequence of every block must be unchanged.
	before := opShape(fn)
	Clean(fn)
	if after := opShape(fn); before != after {
		t.Errorf("Clean not structurally idempotent:\nbefore: %s\nafter:  %s", before, after)
	}
}

// opShape renders the opcode sequence of every block.
func opShape(f *ir.Func) string {
	s := ""
	for _, b := range f.Blocks {
		s += b.Name + "["
		for _, in := range b.Instrs {
			s += in.Op.String() + " "
		}
		s += "] "
	}
	return s
}

func TestLivenessSimpleLoop(t *testing.T) {
	fn, err := cc.CompileKernel(`
		kernel k(int out[], int n) {
			int i; int s;
			s = 0;
			for (i = 0; i < n; i++) { s += i; }
			out[0] = s;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(fn)
	l := fn.Loop
	// The accumulator home register is live around the loop.
	var sReg ir.Reg = -1
	for _, in := range fn.Entry().Instrs {
		if in.Op == ir.OpMov && len(in.Args) == 1 && in.Args[0].IsImm() && in.Args[0].Imm == 0 {
			sReg = in.Dest // first zero-init is i... take the last
		}
	}
	if sReg < 0 {
		t.Skip("could not identify accumulator register")
	}
	if !lv.LiveIn(l.Header, sReg) && !lv.LiveOut(l.Header, sReg) {
		t.Error("accumulator not live around loop")
	}
}

func TestReassociateBuildsBalancedTree(t *testing.T) {
	// a+b+c+d+e+f+g+h as a serial chain must become a depth-3 tree.
	src := `
		kernel r(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i] = in[i] + in[i+1] + in[i+2] + in[i+3] + in[i+4] + in[i+5] + in[i+6] + in[i+7];
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Optimize(fn); err != nil {
		t.Fatal(err)
	}
	// Measure the add-depth in the loop body: longest chain of adds.
	body := fn.Loop.Header
	depth := map[ir.Reg]int{}
	maxDepth := 0
	for _, in := range body.Instrs {
		if in.Op != ir.OpAdd || in.Dest == ir.NoReg {
			continue
		}
		d := 0
		for _, a := range in.Args {
			if a.IsReg() && depth[a.Reg]+1 > d {
				d = depth[a.Reg] + 1
			}
		}
		depth[in.Dest] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	// Balanced tree over 8 leaves: depth 3 (+1 slack for address adds).
	if maxDepth > 4 {
		t.Errorf("add depth = %d, want <= 4 (balanced tree)\n%s", maxDepth, fn)
	}
	// Semantics preserved.
	in := make([]int32, 16)
	for i := range in {
		in[i] = int32(i * i)
	}
	out := make([]int32, 8)
	if _, err := ir.Interp(fn, ir.NewEnv(8).Bind("in", in).Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := int32(0)
		for k := 0; k < 8; k++ {
			want += in[i+k]
		}
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestReassociateLeavesShortChains(t *testing.T) {
	src := `
		kernel s(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) { out[i] = in[i] + in[i+1] + 1; }
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Optimize(fn); err != nil {
		t.Fatal(err)
	}
	in := []int32{5, 7, 9}
	out := make([]int32, 2)
	if _, err := ir.Interp(fn, ir.NewEnv(2).Bind("in", in).Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	if out[0] != 13 || out[1] != 17 {
		t.Errorf("out = %v, want [13 17]", out)
	}
}
