package opt

import (
	"fmt"

	"customfit/internal/ir"
)

// MaxUnrolledOps caps the size of an unrolled loop body; unroll factors
// that would exceed it are rejected, as a production compiler's
// unrolling heuristics would.
const MaxUnrolledOps = 4096

// Unroll rewrites the kernel's pixel loop with unroll factor u:
//
//	pre:  g  = i+(u-1) < limit            ; cbr g, main, rempre
//	main: body×u ...; g' = i+(u-1) < limit; cbr g', main, rempre
//	rem:  original rotated loop handling the leftover iterations
//
// Each body copy is a verbatim clone: the induction variable's home
// register chains the copies together, and the intermediate increment
// and test operations of the inner copies become dead after Clean. The
// explorer raises u until the register allocator reports spilling —
// the paper's "when the compiler started spilling register contents for
// a given unrolling, we stopped considering that unrolling factor".
func Unroll(f *ir.Func, u int) error {
	if u < 1 {
		return fmt.Errorf("opt: unroll factor %d", u)
	}
	if u == 1 {
		return nil
	}
	l := f.Loop
	if l == nil {
		return fmt.Errorf("opt: %s has no pixel loop", f.Name)
	}
	if !l.SingleBlock() {
		return fmt.Errorf("opt: %s pixel loop body is not a single block (if-conversion failed?)", f.Name)
	}
	h := l.Header
	body := h.Body()
	if len(body)*u > MaxUnrolledOps {
		return fmt.Errorf("opt: unroll %d×%d ops exceeds budget %d", u, len(body), MaxUnrolledOps)
	}
	term := h.Terminator()
	if term.Op != ir.OpCBr || term.Targets[0] != h {
		return fmt.Errorf("opt: %s pixel loop is not in rotated form", f.Name)
	}

	main := f.NewBlock("unroll")
	remPre := f.NewBlock("rempre")

	// Guard helper: g = (i + u-1) < limit, evaluated on the given block.
	emitGuard := func(b *ir.Block) ir.Operand {
		t := f.NewReg()
		b.Append(ir.NewInstr(ir.OpAdd, t, ir.R(l.IndVar), ir.Imm(int32(u-1))))
		g := f.NewReg()
		b.Append(ir.NewInstr(ir.OpCmpLT, g, ir.R(t), l.Limit))
		return ir.R(g)
	}

	// Rewire the preheader: replace its old guard branch with the
	// stronger "at least u iterations left" test.
	pre := l.Preheader
	preTerm := pre.Terminator()
	if preTerm == nil || preTerm.Op != ir.OpCBr {
		return fmt.Errorf("opt: %s preheader lacks a guard branch", f.Name)
	}
	pre.Instrs = pre.Instrs[:len(pre.Instrs)-1]
	g0 := emitGuard(pre)
	pre.Append(&ir.Instr{Op: ir.OpCBr, Dest: ir.NoReg, Args: []ir.Operand{g0},
		Targets: []*ir.Block{main, remPre}})

	// Main block: u copies of the body (including each copy's increment
	// and now-dead test), then the back-edge guard.
	for k := 0; k < u; k++ {
		for _, in := range body {
			main.Append(in.Clone())
		}
	}
	gb := emitGuard(main)
	main.Append(&ir.Instr{Op: ir.OpCBr, Dest: ir.NoReg, Args: []ir.Operand{gb},
		Targets: []*ir.Block{main, remPre}})

	// Remainder: re-test, then run the original rotated loop.
	rem := f.NewBlock("rem")
	gr := f.NewReg()
	remPre.Append(ir.NewInstr(ir.OpCmpLT, gr, ir.R(l.IndVar), l.Limit))
	remPre.Append(&ir.Instr{Op: ir.OpCBr, Dest: ir.NoReg, Args: []ir.Operand{ir.R(gr)},
		Targets: []*ir.Block{rem, l.Exit}})
	for _, in := range body {
		rem.Append(in.Clone())
	}
	rt := f.NewReg()
	rem.Append(ir.NewInstr(ir.OpCmpLT, rt, ir.R(l.IndVar), l.Limit))
	rem.Append(&ir.Instr{Op: ir.OpCBr, Dest: ir.NoReg, Args: []ir.Operand{ir.R(rt)},
		Targets: []*ir.Block{rem, l.Exit}})

	f.Loop = &ir.LoopInfo{
		Preheader: pre,
		Header:    main,
		Latch:     main,
		Exit:      remPre,
		IndVar:    l.IndVar,
		Limit:     l.Limit,
		Step:      l.Step * int32(u),
	}
	f.RemoveUnreachable()
	Clean(f)
	// Unrolling concatenates the per-copy reduction chains into one long
	// serial chain; rebalance it so the copies can actually overlap.
	if !AblateReassociation {
		Reassociate(f)
	}
	return f.Verify()
}
