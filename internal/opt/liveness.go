// Package opt implements the optimizer passes of the custom-fit
// compiler: per-block cleanup (renaming, copy propagation, CSE,
// constant folding, strength reduction, addressing folds, dead-code
// elimination), scalar replacement of small local arrays,
// if-conversion, loop-invariant code motion, and pixel-loop unrolling.
//
// The IR discipline these passes maintain: "home" registers (scalar
// variables, loop counters) may be written in many blocks, but inside a
// cleaned block every definition is a fresh single-assignment temporary
// and home registers are written only by the block's final move group.
// This is the regional-renaming style of trace-scheduling compilers:
// it removes anti- and output-dependences inside the regions the
// scheduler works on, which is where the ILP the paper measures comes
// from.
package opt

import "customfit/internal/ir"

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	in, out map[*ir.Block]*regset
	nregs   int
}

// ComputeLiveness runs the standard backward dataflow over the CFG.
func ComputeLiveness(f *ir.Func) *Liveness {
	f.ComputeCFG()
	n := f.NumRegs()
	lv := &Liveness{
		in:    make(map[*ir.Block]*regset, len(f.Blocks)),
		out:   make(map[*ir.Block]*regset, len(f.Blocks)),
		nregs: n,
	}
	use := make(map[*ir.Block]*regset, len(f.Blocks))
	def := make(map[*ir.Block]*regset, len(f.Blocks))
	for _, b := range f.Blocks {
		u, d := newRegset(n), newRegset(n)
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a.IsReg() && !d.get(a.Reg) {
					u.set(a.Reg)
				}
			}
			if in.Op.HasDest() {
				d.set(in.Dest)
			}
		}
		use[b], def[b] = u, d
		lv.in[b] = newRegset(n)
		lv.out[b] = newRegset(n)
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.out[b]
			for _, s := range b.Succs {
				if out.unionWith(lv.in[s]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			nin := out.clone()
			nin.subtract(def[b])
			nin.unionWith(use[b])
			if lv.in[b].unionWith(nin) {
				changed = true
			}
		}
	}
	return lv
}

// LiveOut reports whether r is live on exit from b.
func (lv *Liveness) LiveOut(b *ir.Block, r ir.Reg) bool {
	s, ok := lv.out[b]
	return ok && int(r) < lv.nregs && s.get(r)
}

// LiveIn reports whether r is live on entry to b.
func (lv *Liveness) LiveIn(b *ir.Block, r ir.Reg) bool {
	s, ok := lv.in[b]
	return ok && int(r) < lv.nregs && s.get(r)
}

// regset is a dense register bitset.
type regset struct{ w []uint64 }

func newRegset(n int) *regset { return &regset{w: make([]uint64, (n+63)/64)} }

func (s *regset) set(r ir.Reg)      { s.w[r/64] |= 1 << (uint(r) % 64) }
func (s *regset) get(r ir.Reg) bool { return s.w[r/64]&(1<<(uint(r)%64)) != 0 }

func (s *regset) clone() *regset { return &regset{w: append([]uint64(nil), s.w...)} }

func (s *regset) unionWith(o *regset) bool {
	changed := false
	for i := range s.w {
		nw := s.w[i] | o.w[i]
		if nw != s.w[i] {
			s.w[i] = nw
			changed = true
		}
	}
	return changed
}

func (s *regset) subtract(o *regset) {
	for i := range s.w {
		s.w[i] &^= o.w[i]
	}
}
