package opt

import (
	"testing"
	"testing/quick"

	"customfit/internal/cc"
	"customfit/internal/ir"
)

func TestSimplifyIdentities(t *testing.T) {
	r1 := ir.R(1)
	cases := []struct {
		op   ir.Op
		args []ir.Operand
		want ir.Operand
		ok   bool
	}{
		{ir.OpAdd, []ir.Operand{r1, ir.Imm(0)}, r1, true},
		{ir.OpMul, []ir.Operand{r1, ir.Imm(1)}, r1, true},
		{ir.OpMul, []ir.Operand{r1, ir.Imm(0)}, ir.Imm(0), true},
		{ir.OpShl, []ir.Operand{r1, ir.Imm(0)}, r1, true},
		{ir.OpShl, []ir.Operand{ir.Imm(0), r1}, ir.Imm(0), true},
		{ir.OpAnd, []ir.Operand{r1, ir.Imm(0)}, ir.Imm(0), true},
		{ir.OpAnd, []ir.Operand{r1, ir.Imm(-1)}, r1, true},
		{ir.OpAnd, []ir.Operand{r1, r1}, r1, true},
		{ir.OpOr, []ir.Operand{r1, ir.Imm(0)}, r1, true},
		{ir.OpOr, []ir.Operand{r1, ir.Imm(-1)}, ir.Imm(-1), true},
		{ir.OpXor, []ir.Operand{r1, r1}, ir.Imm(0), true},
		{ir.OpSub, []ir.Operand{r1, r1}, ir.Imm(0), true},
		{ir.OpCmpEQ, []ir.Operand{r1, r1}, ir.Imm(1), true},
		{ir.OpCmpNE, []ir.Operand{r1, r1}, ir.Imm(0), true},
		{ir.OpCmpLT, []ir.Operand{r1, r1}, ir.Imm(0), true},
		{ir.OpSelect, []ir.Operand{ir.Imm(1), r1, ir.Imm(5)}, r1, true},
		{ir.OpSelect, []ir.Operand{ir.Imm(0), r1, ir.Imm(5)}, ir.Imm(5), true},
		{ir.OpSelect, []ir.Operand{ir.R(2), r1, r1}, r1, true},
		{ir.OpAdd, []ir.Operand{r1, ir.Imm(3)}, ir.Operand{}, false}, // no identity
		{ir.OpAdd, []ir.Operand{r1, ir.R(2)}, ir.Operand{}, false},
	}
	for _, c := range cases {
		got, ok := simplify(c.op, c.args)
		if ok != c.ok {
			t.Errorf("simplify(%s, %v) ok=%v, want %v", c.op, c.args, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("simplify(%s, %v) = %v, want %v", c.op, c.args, got, c.want)
		}
	}
}

// TestMulByConstSemantics compiles `out[i] = in[i] * C` for a spread of
// constants and checks against Go multiplication. Shapes covered:
// powers of two, 2^k±1 (strength-reduced), and irreducible constants.
func TestMulByConstSemantics(t *testing.T) {
	consts := []int32{0, 1, -1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33,
		255, 256, 257, -2, -8, -16, 10, 100, 362, 473, -473}
	for _, cst := range consts {
		src := `
			kernel m(int in[], int out[], int n) {
				int i;
				for (i = 0; i < n; i++) { out[i] = in[i] * ` + itoa(cst) + `; }
			}`
		fn, err := cc.CompileKernel(src)
		if err != nil {
			t.Fatalf("C=%d: %v", cst, err)
		}
		if err := Optimize(fn); err != nil {
			t.Fatalf("C=%d: %v", cst, err)
		}
		in := []int32{0, 1, -1, 12345, -9876, 2147483647, -2147483648}
		out := make([]int32, len(in))
		env := ir.NewEnv(int32(len(in))).Bind("in", in).Bind("out", out)
		if _, err := ir.Interp(fn, env); err != nil {
			t.Fatalf("C=%d: %v", cst, err)
		}
		for i, v := range in {
			if out[i] != v*cst {
				t.Errorf("C=%d: %d*%d = %d, want %d", cst, v, cst, out[i], v*cst)
			}
		}
	}
}

func itoa(v int32) string {
	if v < 0 {
		return "(0 - " + itoa(-v) + ")"
	}
	digits := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

// TestCleanLoadCSEWithStores checks epoch-based load CSE: loads of the
// same address merge only when no intervening store may alias.
func TestCleanLoadCSEWithStores(t *testing.T) {
	src := `
		kernel l(int a[], int b[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int x; int y; int z;
				x = a[i];
				b[i] = x + 1;
				y = a[i];
				a[i] = y + 2;
				z = a[i];
				out[i] = x + y + z;
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Optimize(fn); err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, in := range fn.Loop.Header.Instrs {
		if in.Op == ir.OpLoad && in.Mem.Name == "a" {
			loads++
		}
	}
	// x and y merge (store to b cannot alias a); z must reload after
	// the store to a.
	if loads != 2 {
		t.Errorf("loads of a[] = %d, want 2 (CSE across b-store, reload after a-store)\n%s", loads, fn)
	}
	// Semantics check.
	a := []int32{10, 20}
	b := make([]int32, 2)
	out := make([]int32, 2)
	if _, err := ir.Interp(fn, ir.NewEnv(2).Bind("a", a).Bind("b", b).Bind("out", out)); err != nil {
		t.Fatal(err)
	}
	// x=y=10, z=12 -> out=32; a becomes 12.
	if out[0] != 32 || a[0] != 12 || b[0] != 11 {
		t.Errorf("semantics: out=%d a=%d b=%d, want 32 12 11", out[0], a[0], b[0])
	}
}

// Property: Clean preserves the semantics of random single-expression
// kernels (complements the cc fuzz tests by running the whole
// optimizer).
func TestCleanPreservesRandomArithmetic(t *testing.T) {
	f := func(x, y int32, sh uint8) bool {
		src := `
			kernel p(int out[], int a, int b) {
				out[0] = ((a * 3 - b) << ` + itoa(int32(sh%5)) + `) ^ (a & b);
				out[1] = (a + b) * (a - b);
			}`
		fn, err := cc.CompileKernel(src)
		if err != nil {
			return false
		}
		ref := make([]int32, 2)
		if _, err := ir.Interp(fn, ir.NewEnv(x, y).Bind("out", ref)); err != nil {
			return false
		}
		if err := Optimize(fn); err != nil {
			return false
		}
		got := make([]int32, 2)
		if _, err := ir.Interp(fn, ir.NewEnv(x, y).Bind("out", got)); err != nil {
			return false
		}
		return ref[0] == got[0] && ref[1] == got[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
