package opt

import (
	"testing"

	"customfit/internal/cc"
	"customfit/internal/ir"
)

// TestAffineAddressCanonicalization checks that unrolled copies'
// strided accesses all share one base register with distinct constant
// offsets — the property the memory disambiguator needs to prove the
// copies independent.
func TestAffineAddressCanonicalization(t *testing.T) {
	src := `
		kernel strided(byte in[], byte out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				out[i * 3]     = in[i * 3];
				out[i * 3 + 1] = in[i * 3 + 1];
				out[i * 3 + 2] = in[i * 3 + 2];
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Prepare(fn, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every in/out access in the unrolled body must use the same index
	// register (per array) and offsets 0..11.
	bases := map[string]map[ir.Reg]bool{}
	offs := map[string]map[int32]bool{}
	for _, in := range g.Loop.Header.Instrs {
		if !in.Op.IsMem() || in.Mem.IsParam == false {
			continue
		}
		name := in.Mem.Name
		if bases[name] == nil {
			bases[name] = map[ir.Reg]bool{}
			offs[name] = map[int32]bool{}
		}
		if in.Args[0].IsReg() {
			bases[name][in.Args[0].Reg] = true
		}
		offs[name][in.Off] = true
	}
	for _, name := range []string{"in", "out"} {
		if len(bases[name]) != 1 {
			t.Errorf("%s accesses use %d base registers, want 1", name, len(bases[name]))
		}
		if len(offs[name]) != 12 {
			t.Errorf("%s accesses use %d distinct offsets, want 12", name, len(offs[name]))
		}
	}
}

// TestAffineExactUnderWraparound: the canonical rewrite must be exact
// two's-complement arithmetic, including deliberately overflowing
// scales.
func TestAffineExactUnderWraparound(t *testing.T) {
	src := `
		kernel w(int in[], int out[], int n) {
			int i;
			for (i = 0; i < n; i++) {
				int k;
				k = (i + 1) * 3 - 3;
				out[i] = in[k] + in[k + 3] - in[(i + 2) * 3 - 6];
			}
		}`
	fn, err := cc.CompileKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Prepare(fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := int32(6)
	in := make([]int32, 3*int(n)+8)
	for i := range in {
		in[i] = int32(i*i - 7)
	}
	ref := make([]int32, n)
	got := make([]int32, n)
	if _, err := ir.Interp(fn, ir.NewEnv(n).Bind("in", in).Bind("out", ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Interp(g, ir.NewEnv(n).Bind("in", in).Bind("out", got)); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
	// All three loads hit the same element chain: in[3i], in[3i+3],
	// in[3i] — the first and third must CSE to one load per index.
	loads := 0
	for _, in := range g.Loop.Header.Instrs {
		if in.Op == ir.OpLoad {
			loads++
		}
	}
	// Unroll 2: addresses 3i, 3i+3, 3i+3, 3i+6 -> 3 distinct loads.
	if loads > 3 {
		t.Errorf("loads in unrolled body = %d, want <= 3 (affine CSE)", loads)
	}
}
