package opt

import "customfit/internal/ir"

// Ablation switches. Production defaults are all false; the ablation
// experiments (see EXPERIMENTS.md and bench_test.go) flip them to
// measure how much each design choice contributes. Not safe to toggle
// concurrently with compilation.
var (
	// AblateReassociation skips reduction-tree rebalancing.
	AblateReassociation bool
	// AblateLICM skips loop-invariant code motion.
	AblateLICM bool
	// AblateIfConversion skips if-conversion (pixel loops with control
	// flow then cannot be unrolled).
	AblateIfConversion bool
)

// Optimize runs the architecture-independent pass pipeline:
//
//  1. Clean       — renaming, folding, CSE, strength reduction, DCE
//  2. Scalarize   — promote constant-indexed local arrays to registers
//  3. IfConvert   — collapse branchy pixel-loop bodies into selects
//  4. LICM        — hoist invariants (notably constant-table loads)
//  5. Clean       — tidy after motion
//  6. Reassociate — rebalance reduction chains into trees
//
// The result is the canonical pre-scheduling form: a single-block pixel
// loop when the kernel's control flow allows it.
func Optimize(f *ir.Func) error {
	Clean(f)
	Scalarize(f)
	if !AblateIfConversion {
		IfConvert(f)
	}
	if !AblateLICM {
		LICM(f)
	}
	Clean(f)
	if !AblateReassociation {
		Reassociate(f)
	}
	f.RemoveUnreachable()
	return f.Verify()
}

// Prepare clones f, optimizes it, and unrolls the pixel loop by u —
// the per-(architecture, unroll-factor) compilation entry point used by
// the explorer. The original function is never mutated.
func Prepare(f *ir.Func, u int) (*ir.Func, error) {
	g := f.Clone()
	if err := Optimize(g); err != nil {
		return nil, err
	}
	if u > 1 && g.Loop != nil {
		if err := Unroll(g, u); err != nil {
			return nil, err
		}
	}
	return g, nil
}
