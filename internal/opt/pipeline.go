package opt

import (
	"customfit/internal/ir"
	"customfit/internal/obs"
)

// Ablation switches. Production defaults are all false; the ablation
// experiments (see EXPERIMENTS.md and bench_test.go) flip them to
// measure how much each design choice contributes. Not safe to toggle
// concurrently with compilation.
var (
	// AblateReassociation skips reduction-tree rebalancing.
	AblateReassociation bool
	// AblateLICM skips loop-invariant code motion.
	AblateLICM bool
	// AblateIfConversion skips if-conversion (pixel loops with control
	// flow then cannot be unrolled).
	AblateIfConversion bool
)

// irSize measures a function for span attributes: basic blocks and
// instructions.
func irSize(f *ir.Func) (blocks, instrs int64) {
	return int64(len(f.Blocks)), int64(f.NumInstrs())
}

// tracedPass runs one pass under a span carrying the IR-size delta
// (blocks/instrs before→after), so pass cost and pass benefit are both
// visible in a trace. With no collector installed this is a plain call.
func tracedPass(parent *obs.Span, name string, f *ir.Func, pass func(*ir.Func)) {
	if parent == nil {
		pass(f)
		return
	}
	sp := parent.Child(name)
	b0, i0 := irSize(f)
	pass(f)
	b1, i1 := irSize(f)
	sp.Int("blocks_before", b0).Int("blocks_after", b1).
		Int("instrs_before", i0).Int("instrs_after", i1).End()
}

// Optimize runs the architecture-independent pass pipeline:
//
//  1. Clean       — renaming, folding, CSE, strength reduction, DCE
//  2. Scalarize   — promote constant-indexed local arrays to registers
//  3. IfConvert   — collapse branchy pixel-loop bodies into selects
//  4. LICM        — hoist invariants (notably constant-table loads)
//  5. Clean       — tidy after motion
//  6. Reassociate — rebalance reduction chains into trees
//
// The result is the canonical pre-scheduling form: a single-block pixel
// loop when the kernel's control flow allows it.
func Optimize(f *ir.Func) error {
	return OptimizeSpan(nil, f)
}

// OptimizeSpan is Optimize with per-pass telemetry spans nested under
// sp (or under a fresh root span when sp is nil and a collector is
// installed).
func OptimizeSpan(sp *obs.Span, f *ir.Func) error {
	osp := obs.Under(sp, "opt")
	defer osp.End()
	tracedPass(osp, "opt.clean", f, Clean)
	tracedPass(osp, "opt.scalarize", f, Scalarize)
	if !AblateIfConversion {
		tracedPass(osp, "opt.ifconvert", f, IfConvert)
	}
	if !AblateLICM {
		tracedPass(osp, "opt.licm", f, LICM)
	}
	tracedPass(osp, "opt.clean", f, Clean)
	if !AblateReassociation {
		tracedPass(osp, "opt.reassoc", f, Reassociate)
	}
	f.RemoveUnreachable()
	return f.Verify()
}

// Prepare clones f, optimizes it, and unrolls the pixel loop by u —
// the per-(architecture, unroll-factor) compilation entry point used by
// the explorer. The original function is never mutated.
func Prepare(f *ir.Func, u int) (*ir.Func, error) {
	return PrepareSpan(nil, f, u)
}

// PrepareSpan is Prepare with telemetry spans under sp.
func PrepareSpan(sp *obs.Span, f *ir.Func, u int) (*ir.Func, error) {
	g := f.Clone()
	if err := OptimizeSpan(sp, g); err != nil {
		return nil, err
	}
	if u > 1 && g.Loop != nil {
		usp := obs.Under(sp, "opt.unroll").Int("factor", int64(u))
		b0, i0 := irSize(g)
		err := Unroll(g, u)
		b1, i1 := irSize(g)
		usp.Int("blocks_before", b0).Int("blocks_after", b1).
			Int("instrs_before", i0).Int("instrs_after", i1).End()
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
